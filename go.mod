module newmad

go 1.22
