package drivers

import (
	"errors"
	"sync"
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/packet"
)

// Tests for the chaos-facing failure machinery: frame reclaim on connection
// failure, deliberate rail breaking (the flap fault), and the multi-rail
// bundle's automatic failover of reclaimed frames onto surviving rails.

// TestMeshFrameLossReclaim pins the frame-ownership contract the failover
// layer builds on: when a connection dies with frames aboard — one wedged
// mid-write, one fully queued behind it — the frames are handed back
// through the loss handler instead of vanishing, and every channel they
// occupied is released.
func TestMeshFrameLossReclaim(t *testing.T) {
	nodes, _, err := NewMeshCluster(2, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		nodes[0].Close()
		nodes[1].Close()
	}()

	var mu sync.Mutex
	var reclaimed []*packet.Frame
	nodes[0].SetFrameLossHandler(func(peer packet.NodeID, frames []*packet.Frame) {
		if peer != 1 {
			t.Errorf("loss reported for peer %d", peer)
		}
		mu.Lock()
		reclaimed = append(reclaimed, frames...)
		mu.Unlock()
	})
	idle := make(chan int, 16)
	nodes[0].SetIdleHandler(func(ch int) { idle <- ch })
	// Stall the receiver in the first frame's upcall so the big frame below
	// wedges mid-write against full kernel buffers.
	unblock := make(chan struct{})
	first := true
	nodes[1].SetRecvHandler(func(packet.NodeID, *packet.Frame) {
		if first {
			first = false
			<-unblock
		}
	})

	if err := nodes[0].Post(0, simpleFrame(0, 1, 64), 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "small frame written", func() bool { return nodes[0].ChannelIdle(0) })
	big := simpleFrame(0, 1, 8<<20)
	if err := nodes[0].Post(0, big, 0); err != nil {
		t.Fatal(err)
	}
	queued := simpleFrame(0, 1, 64<<10)
	if err := nodes[0].Post(1, queued, 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the big write wedge

	// Sever the connection under the wedged write.
	if !nodes[0].BreakPeer(1) {
		t.Fatal("BreakPeer on a live peer reported no break")
	}
	close(unblock)

	waitFor(t, 10*time.Second, "frames reclaimed", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(reclaimed) >= 2
	})
	mu.Lock()
	found := map[*packet.Frame]bool{}
	for _, f := range reclaimed {
		found[f] = true
	}
	mu.Unlock()
	if !found[big] || !found[queued] {
		t.Fatalf("reclaimed set missing posted frames (big=%v queued=%v)", found[big], found[queued])
	}
	if nodes[0].LostFrames() < 2 {
		t.Fatalf("LostFrames = %d, want >= 2", nodes[0].LostFrames())
	}
	waitFor(t, 5*time.Second, "channels released", func() bool {
		return nodes[0].ChannelIdle(0) && nodes[0].ChannelIdle(1)
	})
}

// TestMeshBreakPeerAndHeal: BreakPeer behaves exactly like a network-cut —
// down event, ErrPeerDown on Post, detection on the remote side — and the
// ordinary re-Dial heals it.
func TestMeshBreakPeerAndHeal(t *testing.T) {
	nodes, cleanup, err := NewMeshCluster(2, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	down := make(chan packet.NodeID, 4)
	nodes[0].SetPeerDownHandler(func(p packet.NodeID) { down <- p })
	recv := make(chan struct{}, 8)
	nodes[1].SetRecvHandler(func(packet.NodeID, *packet.Frame) { recv <- struct{}{} })

	if !nodes[0].BreakPeer(1) {
		t.Fatal("break reported no live connection")
	}
	if nodes[0].BreakPeer(1) {
		t.Fatal("second break on the same dead peer reported a break")
	}
	select {
	case p := <-down:
		if p != 1 {
			t.Fatalf("down fired for peer %d", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("down handler never fired after BreakPeer")
	}
	if !nodes[0].PeerDown(1) {
		t.Fatal("peer not down after BreakPeer")
	}
	if err := nodes[0].Post(0, simpleFrame(0, 1, 8), 0); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("post after break: %v, want ErrPeerDown", err)
	}
	// The remote side sees the reset on its inbound connection.
	waitFor(t, 5*time.Second, "remote down detection", func() bool { return nodes[1].PeerDown(0) })

	// Heal both directions and verify traffic flows.
	if err := nodes[0].Dial(1, nodes[1].Addr()); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Dial(0, nodes[0].Addr()); err != nil {
		t.Fatal(err)
	}
	if nodes[0].PeerDown(1) || nodes[1].PeerDown(0) {
		t.Fatal("peer still down after heal")
	}
	if err := nodes[0].Post(0, simpleFrame(0, 1, 8), 0); err != nil {
		t.Fatalf("post after heal: %v", err)
	}
	select {
	case <-recv:
	case <-time.After(5 * time.Second):
		t.Fatal("frame lost after heal")
	}
}

// TestMultiRailFailover breaks one of two rails with frames aboard and
// verifies the bundle re-routes the reclaimed frames onto the surviving
// rail: everything arrives (the mid-write ambiguous frame possibly twice —
// deduplication lives above the driver), the bundle does not report the
// peer down, and the failover counter shows the re-route happened.
func TestMultiRailFailover(t *testing.T) {
	nodes, cleanup, err := NewMultiRailMeshCluster(2, caps.RailProfiles(caps.TCP, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	var mu sync.Mutex
	gotPayload := map[byte]int{}
	unblock := make(chan struct{})
	first := true
	nodes[1].SetRecvHandler(func(_ packet.NodeID, f *packet.Frame) {
		stall := false
		mu.Lock()
		if first {
			first = false
			stall = true
		}
		for _, e := range f.Entries {
			if len(e.Payload) > 0 {
				gotPayload[e.Payload[0]]++
			}
		}
		mu.Unlock()
		if stall {
			<-unblock
		}
	})
	downFired := make(chan packet.NodeID, 4)
	nodes[1].SetIdleHandler(nil) // not used; exercise nil-handler path
	nodes[0].SetPeerDownHandler(func(p packet.NodeID) { downFired <- p })

	mark := func(size int, tag byte) *packet.Frame {
		f := simpleFrame(0, 1, size)
		f.Entries[0].Payload[0] = tag
		return f
	}

	// Rail 0 owns global channels [0, chansPerRail); wedge it mid-write.
	rail0chans := nodes[0].Rails()[0].NumChannels()
	if err := nodes[0].Post(0, mark(64, 1), 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "first frame written", func() bool { return nodes[0].ChannelIdle(0) })
	if err := nodes[0].Post(0, mark(8<<20, 2), 0); err != nil {
		t.Fatal(err)
	}
	if rail0chans < 2 {
		t.Fatalf("rail 0 has %d channels; test needs 2", rail0chans)
	}
	if err := nodes[0].Post(1, mark(64<<10, 3), 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Break rail 0 only; rail 1 survives.
	if !nodes[0].Rails()[0].BreakPeer(1) {
		t.Fatal("rail 0 break failed")
	}
	close(unblock)

	waitFor(t, 10*time.Second, "failover delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gotPayload[2] >= 1 && gotPayload[3] >= 1
	})
	if nodes[0].PeerDown(1) {
		t.Fatal("bundle reports peer down with a surviving rail")
	}
	select {
	case p := <-downFired:
		t.Fatalf("bundle down handler fired for peer %d with a rail surviving", p)
	default:
	}
	if nodes[0].Failovers() == 0 {
		t.Fatal("failover counter untouched — frames travelled some other way?")
	}

	// Break the last rail too: now the bundle peer-down fires.
	if !nodes[0].Rails()[1].BreakPeer(1) {
		t.Fatal("rail 1 break failed")
	}
	select {
	case p := <-downFired:
		if p != 1 {
			t.Fatalf("down fired for peer %d", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bundle down never fired after losing the last rail")
	}
	if !nodes[0].PeerDown(1) {
		t.Fatal("bundle peer not down with every rail broken")
	}
}
