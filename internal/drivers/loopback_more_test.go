package drivers

import (
	"net"
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/packet"
)

func TestLoopbackRejectsInvalidCaps(t *testing.T) {
	bad := caps.TCP
	bad.Bandwidth = 0
	if _, err := NewLoopback(0, bad); err == nil {
		t.Fatal("invalid caps accepted")
	}
}

func TestLoopbackDialErrors(t *testing.T) {
	a, err := NewLoopback(0, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Dial(1, "127.0.0.1:1"); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	// Dialing after close is refused.
	b, err := NewLoopback(1, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	b.Close()
	a.Close()
	if err := a.Dial(1, addr); err == nil {
		t.Fatal("dial after close accepted")
	}
}

func TestLoopbackRedial(t *testing.T) {
	// Re-dialing a peer replaces the connection; traffic still flows.
	nodes, cleanup, err := NewLoopbackCluster(2, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	if err := nodes[0].Dial(nodes[1].Node(), nodes[1].Addr()); err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{}, 1)
	nodes[1].SetRecvHandler(func(packet.NodeID, *packet.Frame) { got <- struct{}{} })
	if err := nodes[0].Post(0, simpleFrame(0, 1, 32), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("frame lost after redial")
	}
}

func TestLoopbackCorruptStreamClosesReader(t *testing.T) {
	// A peer that sends an absurd length prefix must not make the reader
	// allocate unboundedly; the stream is dropped.
	a, err := NewLoopback(0, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	// Handshake as node 9, then send a poisoned length.
	conn, err := dialRaw(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{0, 0, 0, 9}); err != nil { // hello: node 9
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil { // 4 GiB frame
		t.Fatal(err)
	}
	// Reader should close the connection; a subsequent write eventually
	// errors. Just ensure the process survives and Close still works.
	time.Sleep(50 * time.Millisecond)
}

// dialRaw opens a plain TCP connection for protocol-poisoning tests.
func dialRaw(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}
