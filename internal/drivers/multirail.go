package drivers

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"newmad/internal/caps"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// MultiRail bundles N mesh rail endpoints of one node into a single
// transport: each rail is a full Mesh — its own listener, its own TCP
// connection per peer, its own capability record — so a multi-rail node
// carries N independent connections to every peer, emulating multiple NICs
// (possibly of different technologies) on plain TCP.
//
// Two views exist over the same rails:
//
//   - The optimizer's view: Rails() returns the endpoints individually, and
//     the engine treats each as one rail with its own caps.Record — gather
//     limits, eager/rendezvous thresholds, bandwidth class — exactly as it
//     does for simulated multi-rail fabrics. This is how cluster boots
//     multi-rail engines.
//   - The transport view: MultiRail itself implements Driver/WallDriver
//     with the union of the rails' send channels, so the shared wall-clock
//     conformance suite (and any single-driver consumer) can exercise the
//     bundle as one endpoint. Post maps a global channel index onto
//     (rail, local channel); frames on the same rail stay FIFO, frames on
//     different rails race — the same guarantee real striped NICs give.
//
// Addr joins the per-rail listener addresses with commas and Dial splits
// them again, so the all-pairs wiring helper used by single-rail transports
// works unchanged.
//
// Failure semantics: the bundle treats a peer as down only when EVERY rail
// toward it has failed — one dead rail out of N is degraded capacity, not
// a dead peer. Frames a dying rail reclaims from its queue (see
// FrameLossHandler) automatically fail over onto a surviving rail toward
// the same peer, riding that rail's requeue slack so they never race the
// consumer for send channels; frames with no surviving rail wait in the
// bundle's failover queue for a heal (re-Dial). New posts mapped onto a
// dead rail's channels still fail with ErrPeerDown — the channel-busy
// contract has no honest way to borrow another rail's channel — and the
// consumer routes around using the remaining channels.
type MultiRail struct {
	node  packet.NodeID
	rails []*Mesh
	base  []int // global channel offset of each rail
	total int

	mu        sync.Mutex
	onDown    func(packet.NodeID)
	downFired map[packet.NodeID]bool
	failq     map[packet.NodeID][]*packet.Frame // reclaimed, no surviving rail yet
	failovers uint64                            // frames re-routed onto a surviving rail

	// failPending mirrors "failq is non-empty" so the per-frame idle path
	// stays lock-free in the (overwhelmingly common) fault-free steady
	// state; it may read stale for one idle cycle, never permanently.
	failPending atomic.Bool
}

var _ Driver = (*MultiRail)(nil)
var _ WallDriver = (*MultiRail)(nil)

// NewMeshRails creates one Mesh endpoint per capability profile for a node.
// Profile names must be distinct (use caps.RailProfiles to derive uniquely
// named variants of one base profile); listen optionally pins one TCP
// listen address per rail, defaulting to ephemeral localhost ports.
func NewMeshRails(node packet.NodeID, profiles []caps.Caps, listen []string) ([]*Mesh, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("drivers: multi-rail node %d needs at least one rail profile", node)
	}
	if listen != nil && len(listen) != len(profiles) {
		return nil, fmt.Errorf("drivers: %d listen addresses for %d rails", len(listen), len(profiles))
	}
	seen := make(map[string]bool, len(profiles))
	for _, p := range profiles {
		if seen[p.Name] {
			return nil, fmt.Errorf("drivers: duplicate rail profile %q on node %d (rail names must be distinct)", p.Name, node)
		}
		seen[p.Name] = true
	}
	rails := make([]*Mesh, len(profiles))
	for i, p := range profiles {
		addr := "127.0.0.1:0"
		if listen != nil {
			addr = listen[i]
		}
		m, err := NewMesh(node, p, addr)
		if err != nil {
			for _, prev := range rails[:i] {
				prev.Close()
			}
			return nil, err
		}
		rails[i] = m
	}
	return rails, nil
}

// NewMultiRail bundles the given rails (all belonging to the same node)
// into one transport endpoint.
func NewMultiRail(rails []*Mesh) (*MultiRail, error) {
	if len(rails) == 0 {
		return nil, fmt.Errorf("drivers: empty rail bundle")
	}
	mr := &MultiRail{
		node:      rails[0].Node(),
		rails:     rails,
		base:      make([]int, len(rails)),
		downFired: make(map[packet.NodeID]bool),
		failq:     make(map[packet.NodeID][]*packet.Frame),
	}
	for i, r := range rails {
		if r.Node() != mr.node {
			return nil, fmt.Errorf("drivers: rail %s belongs to node %d, bundle is node %d", r.Name(), r.Node(), mr.node)
		}
		mr.base[i] = mr.total
		mr.total += r.NumChannels()
	}
	// The bundle owns its rails' failure surface: per-rail peer-down events
	// aggregate into the all-rails-down bundle event, and reclaimed frames
	// enter the failover path.
	for i, r := range rails {
		i, r := i, r
		r.SetPeerDownHandler(func(peer packet.NodeID) { mr.railDown(peer) })
		r.SetFrameLossHandler(func(peer packet.NodeID, frames []*packet.Frame) {
			mr.railLost(i, peer, frames)
		})
	}
	return mr, nil
}

// NewMultiRailMesh creates a multi-rail endpoint: one Mesh per profile,
// bundled.
func NewMultiRailMesh(node packet.NodeID, profiles []caps.Caps, listen []string) (*MultiRail, error) {
	rails, err := NewMeshRails(node, profiles, listen)
	if err != nil {
		return nil, err
	}
	return NewMultiRail(rails)
}

// Rails returns the per-rail endpoints — the view the optimizer engine
// consumes, one Driver per rail with its own capability record.
func (mr *MultiRail) Rails() []*Mesh { return append([]*Mesh(nil), mr.rails...) }

// RailOf maps a global channel index to (rail index, rail-local channel).
func (mr *MultiRail) RailOf(ch int) (rail, local int, err error) {
	if ch < 0 || ch >= mr.total {
		return 0, 0, fmt.Errorf("drivers: multirail node %d has no channel %d", mr.node, ch)
	}
	for i := len(mr.rails) - 1; i >= 0; i-- {
		if ch >= mr.base[i] {
			return i, ch - mr.base[i], nil
		}
	}
	return 0, 0, fmt.Errorf("drivers: multirail node %d has no channel %d", mr.node, ch)
}

// Name identifies the bundle.
func (mr *MultiRail) Name() string {
	return fmt.Sprintf("multirail[%d]@n%d", len(mr.rails), mr.node)
}

// Node returns the local node id.
func (mr *MultiRail) Node() packet.NodeID { return mr.node }

// Caps returns the primary (first) rail's capability record. Consumers that
// schedule per rail use Rails() and read each rail's own record instead.
func (mr *MultiRail) Caps() caps.Caps { return mr.rails[0].Caps() }

// Mem returns the host memory model (shared by all rails of the node).
func (mr *MultiRail) Mem() memsim.Model { return mr.rails[0].Mem() }

// NumChannels returns the union send-unit count across rails.
func (mr *MultiRail) NumChannels() int { return mr.total }

// ChannelIdle reports availability of global channel ch.
func (mr *MultiRail) ChannelIdle(ch int) bool {
	ri, local, err := mr.RailOf(ch)
	if err != nil {
		return false
	}
	return mr.rails[ri].ChannelIdle(local)
}

// FirstIdle returns the lowest idle global channel.
func (mr *MultiRail) FirstIdle() (int, bool) {
	for i, r := range mr.rails {
		if ch, ok := r.FirstIdle(); ok {
			return mr.base[i] + ch, true
		}
	}
	return 0, false
}

// Post maps the global channel onto its rail and posts there.
func (mr *MultiRail) Post(ch int, f *packet.Frame, hostExtra simnet.Duration) error {
	ri, local, err := mr.RailOf(ch)
	if err != nil {
		return err
	}
	return mr.rails[ri].Post(local, f, hostExtra)
}

// SetIdleHandler installs the idle upcall, translated to global channels.
// Every idle also gives the failover queue a drain opportunity — requeue
// slack that was full when a rail died frees up as frames serialize — but
// the steady-state check is a single atomic load, not a lock.
func (mr *MultiRail) SetIdleHandler(fn IdleFunc) {
	for i, r := range mr.rails {
		base := mr.base[i]
		r.SetIdleHandler(func(ch int) {
			if mr.failPending.Load() {
				mr.drainFailq()
			}
			if fn != nil {
				fn(base + ch)
			}
		})
	}
}

// SetRecvHandler installs the delivery upcall on every rail.
func (mr *MultiRail) SetRecvHandler(fn RecvFunc) {
	for _, r := range mr.rails {
		r.SetRecvHandler(fn)
	}
}

// SetPeerDownHandler installs a callback fired once per peer that has lost
// its LAST surviving rail — one dead rail of several is degraded capacity
// the failover machinery absorbs, not a peer failure.
func (mr *MultiRail) SetPeerDownHandler(fn func(peer packet.NodeID)) {
	mr.mu.Lock()
	mr.onDown = fn
	mr.downFired = make(map[packet.NodeID]bool)
	mr.mu.Unlock()
}

// railDown is every rail's peer-down upcall: the bundle event fires only
// when no rail toward the peer remains.
func (mr *MultiRail) railDown(peer packet.NodeID) {
	if !mr.PeerDown(peer) {
		return // a sibling rail still carries the peer
	}
	mr.mu.Lock()
	fired := mr.downFired[peer]
	mr.downFired[peer] = true
	h := mr.onDown
	mr.mu.Unlock()
	if !fired && h != nil {
		h(peer)
	}
}

// railLost receives frames reclaimed from rail `from` after its connection
// toward peer failed, and fails them over onto a surviving rail. Frames no
// rail can carry right now wait in the failover queue for a heal.
func (mr *MultiRail) railLost(from int, peer packet.NodeID, frames []*packet.Frame) {
	var stranded []*packet.Frame
	for _, f := range frames {
		if !mr.tryFailover(from, peer, f) {
			stranded = append(stranded, f)
		}
	}
	if len(stranded) > 0 {
		mr.mu.Lock()
		mr.failq[peer] = append(mr.failq[peer], stranded...)
		mr.mu.Unlock()
		mr.failPending.Store(true)
	}
}

// tryFailover requeues one reclaimed frame on any surviving rail toward
// peer (skipping the rail it just fell off). Reports success.
func (mr *MultiRail) tryFailover(from int, peer packet.NodeID, f *packet.Frame) bool {
	for j, r := range mr.rails {
		if j == from || r.PeerDown(peer) {
			continue
		}
		if err := r.Requeue(f); err == nil {
			mr.mu.Lock()
			mr.failovers++
			mr.mu.Unlock()
			return true
		}
	}
	return false
}

// drainFailq retries stranded frames; called on idle upcalls (requeue
// slack frees as frames serialize) and after a heal (Dial).
func (mr *MultiRail) drainFailq() {
	mr.mu.Lock()
	if len(mr.failq) == 0 {
		mr.failPending.Store(false)
		mr.mu.Unlock()
		return
	}
	pending := mr.failq
	mr.failq = make(map[packet.NodeID][]*packet.Frame)
	mr.mu.Unlock()
	// Cleared optimistically; railLost re-raises it for whatever strands
	// again.
	mr.failPending.Store(false)
	for peer, frames := range pending {
		mr.railLost(-1, peer, frames)
	}
}

// Failovers returns the number of frames re-routed onto a surviving rail.
func (mr *MultiRail) Failovers() uint64 {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	return mr.failovers
}

// FailoverPending returns the number of reclaimed frames still waiting for
// any rail toward their peer to come back.
func (mr *MultiRail) FailoverPending() int {
	mr.mu.Lock()
	defer mr.mu.Unlock()
	n := 0
	for _, fs := range mr.failq {
		n += len(fs)
	}
	return n
}

// PeerDown reports whether EVERY rail toward the peer has failed — the
// bundle's reachability view. Per-rail liveness is Rails()[i].PeerDown.
func (mr *MultiRail) PeerDown(peer packet.NodeID) bool {
	for _, r := range mr.rails {
		if !r.PeerDown(peer) {
			return false
		}
	}
	return true
}

// Peers returns the ids of peers reachable on every rail, sorted.
func (mr *MultiRail) Peers() []packet.NodeID {
	count := make(map[packet.NodeID]int)
	for _, r := range mr.rails {
		for _, id := range r.Peers() {
			count[id]++
		}
	}
	out := make([]packet.NodeID, 0, len(count))
	for id, n := range count {
		if n == len(mr.rails) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Addr returns the comma-joined per-rail listener addresses.
func (mr *MultiRail) Addr() string {
	addrs := make([]string, len(mr.rails))
	for i, r := range mr.rails {
		addrs[i] = r.Addr()
	}
	return strings.Join(addrs, ",")
}

// Dial connects every local rail to the peer's matching rail listener;
// addr is the peer's Addr() (one address per rail, comma-joined).
func (mr *MultiRail) Dial(peer packet.NodeID, addr string) error {
	parts := strings.Split(addr, ",")
	if len(parts) != len(mr.rails) {
		return fmt.Errorf("drivers: dialing %d-rail node %d with %d addresses", len(mr.rails), peer, len(parts))
	}
	for i, r := range mr.rails {
		if err := r.Dial(peer, parts[i]); err != nil {
			return err
		}
	}
	// A heal: frames stranded while every rail was down can travel again.
	mr.mu.Lock()
	delete(mr.downFired, peer)
	mr.mu.Unlock()
	mr.drainFailq()
	return nil
}

// DialRail re-dials a single rail toward the peer — the heal for a
// rail-level flap (BreakPeer on one rail). addr is that rail's listener
// address on the peer.
func (mr *MultiRail) DialRail(rail int, peer packet.NodeID, addr string) error {
	if rail < 0 || rail >= len(mr.rails) {
		return fmt.Errorf("drivers: multirail node %d has no rail %d", mr.node, rail)
	}
	if err := mr.rails[rail].Dial(peer, addr); err != nil {
		return err
	}
	mr.mu.Lock()
	delete(mr.downFired, peer)
	mr.mu.Unlock()
	mr.drainFailq()
	return nil
}

// Close shuts every rail down; the first error wins.
func (mr *MultiRail) Close() error {
	var first error
	for _, r := range mr.rails {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NewMultiRailMeshCluster creates n fully connected localhost multi-rail
// nodes, each running one rail per profile. The returned cleanup closes
// every node.
func NewMultiRailMeshCluster(n int, profiles []caps.Caps) ([]*MultiRail, func(), error) {
	return newWallCluster(n, func(node packet.NodeID) (*MultiRail, error) {
		return NewMultiRailMesh(node, profiles, nil)
	})
}
