package drivers

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"newmad/internal/caps"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// Loopback is a real TCP driver over localhost sockets. It exists so the
// optimization engine is exercised against a genuinely asynchronous
// transport: idle upcalls arrive from sender goroutines, deliveries from
// reader goroutines, and the wall clock supplies the time base.
//
// Each node runs one listener. Channels are independent sender goroutines;
// a channel is busy from Post until its frame has been fully written to the
// destination socket. One TCP connection is maintained per destination node
// and shared by the channels under a write lock (frames are written
// atomically: 4-byte length prefix + encoded frame).
type Loopback struct {
	node packet.NodeID
	caps caps.Caps
	mem  memsim.Model

	ln net.Listener

	mu       sync.Mutex
	conns    map[packet.NodeID]*lconn
	accepted []net.Conn // inbound connections, closed on shutdown
	chans    []*lchan
	onIdle   IdleFunc
	onRecv   RecvFunc
	closed   bool
	wg       sync.WaitGroup
}

type lconn struct {
	mu sync.Mutex // serializes frame writes
	c  net.Conn
}

type lchan struct {
	busy bool
	work chan loopTx
}

type loopTx struct {
	dst packet.NodeID
	f   *packet.Frame
}

var _ Driver = (*Loopback)(nil)

// NewLoopback creates a node endpoint listening on 127.0.0.1 (ephemeral
// port). Wire the cluster together with ConnectLoopback, or use
// NewLoopbackCluster for the common all-pairs case.
func NewLoopback(node packet.NodeID, c caps.Caps) (*Loopback, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	l := &Loopback{
		node:  node,
		caps:  c,
		mem:   memsim.DefaultModel(),
		ln:    ln,
		conns: make(map[packet.NodeID]*lconn),
		chans: make([]*lchan, c.Channels),
	}
	for i := range l.chans {
		ch := &lchan{work: make(chan loopTx, 1)}
		l.chans[i] = ch
		l.wg.Add(1)
		go l.sender(i, ch)
	}
	l.wg.Add(1)
	go l.acceptLoop()
	return l, nil
}

// Addr returns the listener address other nodes dial.
func (l *Loopback) Addr() string { return l.ln.Addr().String() }

// Dial connects this node to a peer's listener so frames can be sent to it.
func (l *Loopback) Dial(peer packet.NodeID, addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	// Identify ourselves so the peer can attribute inbound frames (frames
	// carry Src too; the hello lets the peer reader start attributed).
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(l.node))
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		c.Close()
		return errors.New("drivers: loopback closed")
	}
	if old, dup := l.conns[peer]; dup {
		old.c.Close()
	}
	l.conns[peer] = &lconn{c: c}
	return nil
}

func (l *Loopback) acceptLoop() {
	defer l.wg.Done()
	for {
		c, err := l.ln.Accept()
		if err != nil {
			return // listener closed
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			c.Close()
			return
		}
		l.accepted = append(l.accepted, c)
		l.mu.Unlock()
		l.wg.Add(1)
		go l.reader(c)
	}
}

func (l *Loopback) reader(c net.Conn) {
	defer l.wg.Done()
	defer c.Close()
	br := bufio.NewReader(c)
	var hello [4]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return
	}
	src := packet.NodeID(binary.BigEndian.Uint32(hello[:]))
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenbuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenbuf[:])
		if n > 64<<20 {
			return // corrupt stream
		}
		// Pooled receive lifecycle, as in Mesh.reader: the handler chain
		// borrows the frame, the terminal consumer releases it.
		buf := packet.GetBuf(int(n))
		if _, err := io.ReadFull(br, buf.B); err != nil {
			packet.PutBuf(buf)
			return
		}
		f := packet.AcquireFrame()
		if _, err := packet.DecodeInto(f, buf.B); err != nil {
			packet.ReleaseFrame(f)
			packet.PutBuf(buf)
			return
		}
		f.SetBacking(buf)
		l.mu.Lock()
		h := l.onRecv
		l.mu.Unlock()
		if h != nil {
			h(src, f)
		} else {
			packet.ReleaseFrame(f)
		}
	}
}

func (l *Loopback) sender(idx int, ch *lchan) {
	defer l.wg.Done()
	var (
		vecScratch [][]byte // reused gather-list backing
		meta       []byte   // reused header scratch; gather segments alias it
	)
	for tx := range ch.work {
		l.mu.Lock()
		conn := l.conns[tx.dst]
		l.mu.Unlock()
		if conn != nil {
			// Vectored write: headers from the scratch block, payloads by
			// reference — no staging copy of the payload bytes.
			meta = append(meta[:0], 0, 0, 0, 0)
			binary.BigEndian.PutUint32(meta[0:4], uint32(tx.f.WireSize()))
			vecScratch, meta = tx.f.EncodeVec(vecScratch[:0], meta)
			conn.mu.Lock()
			bufs := net.Buffers(vecScratch)
			_, err := bufs.WriteTo(conn.c)
			conn.mu.Unlock()
			for i := range vecScratch {
				vecScratch[i] = nil // drop payload refs; backing is reused
			}
			if cap(meta) > maxScratch {
				// As in the mesh rails: one pathologically wide aggregate
				// must not pin a large header block to this channel.
				meta = nil
			}
			_ = err // a broken peer surfaces as missing deliveries in tests
		}
		// Written or undeliverable: either way this sender consumed the
		// frame terminally.
		packet.ReleaseFrame(tx.f)
		l.mu.Lock()
		ch.busy = false
		h := l.onIdle
		closed := l.closed
		l.mu.Unlock()
		if h != nil && !closed {
			h(idx)
		}
	}
}

// Name identifies the endpoint.
func (l *Loopback) Name() string { return fmt.Sprintf("loopback@n%d", l.node) }

// Node returns the local node id.
func (l *Loopback) Node() packet.NodeID { return l.node }

// Caps returns the capability record used for optimization decisions.
func (l *Loopback) Caps() caps.Caps { return l.caps }

// Mem returns the host memory model.
func (l *Loopback) Mem() memsim.Model { return l.mem }

// NumChannels returns the configured sender count.
func (l *Loopback) NumChannels() int { return len(l.chans) }

// ChannelIdle reports availability of channel ch.
func (l *Loopback) ChannelIdle(ch int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return !l.chans[ch].busy
}

// FirstIdle returns the lowest idle channel.
func (l *Loopback) FirstIdle() (int, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, c := range l.chans {
		if !c.busy {
			return i, true
		}
	}
	return 0, false
}

// Post hands the frame to the channel's sender goroutine. hostExtra is
// ignored: on a real transport, preparation already took real time.
//
// Encoding is deferred to the sender goroutine (as in Mesh), so the caller
// must treat the frame and its payloads as immutable once posted; a
// successfully written frame is released to the frame pool by the sender.
func (l *Loopback) Post(ch int, f *packet.Frame, _ simnet.Duration) error {
	if ch < 0 || ch >= len(l.chans) {
		return fmt.Errorf("drivers: loopback node %d has no channel %d", l.node, ch)
	}
	if f.Src != l.node {
		return fmt.Errorf("drivers: frame src %d posted on node %d", f.Src, l.node)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errors.New("drivers: loopback closed")
	}
	c := l.chans[ch]
	if c.busy {
		l.mu.Unlock()
		return ErrChannelBusy
	}
	if _, ok := l.conns[f.Dst]; !ok {
		l.mu.Unlock()
		return fmt.Errorf("drivers: node %d not connected to %d", l.node, f.Dst)
	}
	c.busy = true
	l.mu.Unlock()
	c.work <- loopTx{dst: f.Dst, f: f}
	return nil
}

// SetIdleHandler installs the idle upcall (called from sender goroutines).
func (l *Loopback) SetIdleHandler(fn IdleFunc) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onIdle = fn
}

// SetRecvHandler installs the delivery upcall (called from reader
// goroutines).
func (l *Loopback) SetRecvHandler(fn RecvFunc) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onRecv = fn
}

// Close shuts the listener, the connections and the sender goroutines down
// and waits for them.
func (l *Loopback) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	for _, c := range l.conns {
		c.c.Close()
	}
	for _, c := range l.accepted {
		c.Close()
	}
	for _, ch := range l.chans {
		close(ch.work)
	}
	l.mu.Unlock()
	err := l.ln.Close()
	l.wg.Wait()
	return err
}

// NewLoopbackCluster creates n fully connected loopback nodes sharing the
// given capability profile. The returned cleanup closes every node.
func NewLoopbackCluster(n int, c caps.Caps) ([]*Loopback, func(), error) {
	return newWallCluster(n, func(node packet.NodeID) (*Loopback, error) {
		return NewLoopback(node, c)
	})
}
