package drivers

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/packet"
)

// Ownership tests for the pooled frame lifecycle (DESIGN.md §5): a
// released frame (and its recycled wire buffer) must never be observable
// through any surviving reference. The scenarios below are exactly the
// paths where ownership changes hands off the happy path — the redial
// drain (frames written by a retiring owner), and failover reclaim (frames
// handed back from a dead connection). Run them under -race: pool
// corruption shows up as data races or as the payload fingerprints below
// going wrong.

// pooledFrame builds a pool-acquired single-entry data frame whose payload
// fingerprints its sequence number in every byte.
func pooledFrame(src, dst packet.NodeID, seq, size int) *packet.Frame {
	f := packet.AcquireFrame()
	f.Kind = packet.FrameData
	f.Src, f.Dst = src, dst
	payload := make([]byte, size)
	binary.BigEndian.PutUint32(payload, uint32(seq))
	for i := 4; i < len(payload); i++ {
		payload[i] = byte(seq)
	}
	f.Entries = append(f.Entries, packet.Entry{
		Flow: 1, Msg: 1, Seq: seq, Last: true, Payload: payload,
	})
	return f
}

// fingerprintSink collects received frames the way the engine does:
// payloads are copied out while the frame is borrowed, then the frame is
// terminally released (recycling its backing buffer). Corrupted or
// duplicated fingerprints convict a buffer recycled while still aliased.
type fingerprintSink struct {
	t  *testing.T
	mu sync.Mutex
	// got maps seq -> copies seen; bad counts corrupt payloads.
	got map[int]int
	bad int
}

func newFingerprintSink(t *testing.T) *fingerprintSink {
	return &fingerprintSink{t: t, got: map[int]int{}}
}

func (s *fingerprintSink) recv(_ packet.NodeID, f *packet.Frame) {
	s.mu.Lock()
	for i := range f.Entries {
		p := f.Entries[i].Payload
		if len(p) < 4 {
			s.bad++
			continue
		}
		seq := int(binary.BigEndian.Uint32(p))
		ok := seq == f.Entries[i].Seq
		for j := 4; j < len(p); j++ {
			if p[j] != byte(seq) {
				ok = false
				break
			}
		}
		if !ok {
			s.bad++
		} else {
			s.got[seq]++
		}
	}
	s.mu.Unlock()
	packet.ReleaseFrame(f)
}

func (s *fingerprintSink) distinct() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.got)
}

func (s *fingerprintSink) check(n int, dupsAllowed bool) {
	s.t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bad != 0 {
		s.t.Fatalf("%d corrupt payloads received — a pooled buffer was recycled while aliased", s.bad)
	}
	if len(s.got) != n {
		s.t.Fatalf("received %d distinct seqs, want %d", len(s.got), n)
	}
	if !dupsAllowed {
		for seq, c := range s.got {
			if c != 1 {
				s.t.Fatalf("seq %d delivered %d times", seq, c)
			}
		}
	}
}

// TestPooledFramesSurviveRedialDrain drains pooled frames through retiring
// connections: every few posts the sender re-dials, so queued frames are
// written by the retired rail's owner (which releases each after the
// write) while new posts ride the replacement. All frames must arrive
// exactly once, bit-intact.
func TestPooledFramesSurviveRedialDrain(t *testing.T) {
	nodes, cleanup, err := NewMeshCluster(2, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	sink := newFingerprintSink(t)
	nodes[1].SetRecvHandler(sink.recv)

	const frames = 200
	for seq := 0; seq < frames; seq++ {
		if seq%20 == 19 {
			// Replace the connection with queued traffic still aboard:
			// the retiring owner drains (and releases) what it holds.
			if err := nodes[0].Dial(1, nodes[1].Addr()); err != nil {
				t.Fatal(err)
			}
		}
		posted := false
		for !posted {
			ch, ok := nodes[0].FirstIdle()
			if !ok {
				time.Sleep(100 * time.Microsecond)
				continue
			}
			err := nodes[0].Post(ch, pooledFrame(0, 1, seq, 512), 0)
			if err == ErrChannelBusy {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			posted = true
		}
	}
	waitFor(t, 10*time.Second, "all frames delivered", func() bool { return sink.distinct() == frames })
	waitFor(t, 5*time.Second, "drains complete", func() bool { return nodes[0].Draining() == 0 })
	sink.check(frames, false)
}

// TestPooledFramesSurviveFailoverReclaim severs a connection with pooled
// frames aboard: the reclaimed frames must come back intact (the failing
// owner hands them over instead of releasing them), survive the wait for a
// heal untouched, and deliver bit-intact when requeued on the replacement
// connection — the transfer of ownership that PR 4's failover paths rely
// on, now with pooling in play.
func TestPooledFramesSurviveFailoverReclaim(t *testing.T) {
	nodes, cleanup, err := NewMeshCluster(2, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	var mu sync.Mutex
	var reclaimed []*packet.Frame
	nodes[0].SetFrameLossHandler(func(peer packet.NodeID, frames []*packet.Frame) {
		mu.Lock()
		reclaimed = append(reclaimed, frames...)
		mu.Unlock()
	})
	sink := newFingerprintSink(t)
	nodes[1].SetRecvHandler(sink.recv)

	// Wedge the receiver inside the first frame's upcall so later writes
	// back up in kernel buffers, then sever the connection under them.
	unblock := make(chan struct{})
	first := true
	var gate sync.Mutex
	nodes[1].SetRecvHandler(func(src packet.NodeID, f *packet.Frame) {
		gate.Lock()
		wasFirst := first
		first = false
		gate.Unlock()
		if wasFirst {
			<-unblock
		}
		sink.recv(src, f)
	})

	if err := nodes[0].Post(0, pooledFrame(0, 1, 0, 512), 0); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "first frame written", func() bool { return nodes[0].ChannelIdle(0) })
	const wedged = 3
	if err := nodes[0].Post(0, pooledFrame(0, 1, 1, 8<<20), 0); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Post(1, pooledFrame(0, 1, 2, 64<<10), 0); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the big write wedge
	if !nodes[0].BreakPeer(1) {
		t.Fatal("BreakPeer on a live peer reported no break")
	}
	close(unblock)
	waitFor(t, 10*time.Second, "frames reclaimed", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(reclaimed) >= wedged-1
	})

	// The reclaimed frames must still be exactly what was posted: an
	// owner that released them on the error path would hand back reset
	// (or reused) structs.
	mu.Lock()
	for _, f := range reclaimed {
		if len(f.Entries) != 1 || len(f.Entries[0].Payload) < 4 {
			t.Fatalf("reclaimed frame lost its entries: %v", f)
		}
		seq := int(binary.BigEndian.Uint32(f.Entries[0].Payload))
		if seq != f.Entries[0].Seq {
			t.Fatalf("reclaimed frame payload fingerprint broken: seq %d vs entry %d", seq, f.Entries[0].Seq)
		}
	}
	mu.Unlock()

	// Heal and fail the reclaimed frames over. The break cascades — the
	// receiver's reader error takes down its own outbound connection,
	// whose EOF the sender attributes to the peer — so a first heal can be
	// torn down again, reclaiming the frames a second time. Keep healing
	// and requeuing whatever comes back: the ownership contract is that an
	// undelivered frame is always either in our hands (reclaimed, intact)
	// or aboard exactly one live rail — never dropped, never released
	// early. The mid-write ambiguous frame may arrive twice, so duplicates
	// are legal — corruption is not.
	deadline := time.Now().Add(15 * time.Second)
	for sink.distinct() < wedged {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d of %d seqs delivered", sink.distinct(), wedged)
		}
		mu.Lock()
		pend := reclaimed
		reclaimed = nil
		mu.Unlock()
		for _, f := range pend {
			for {
				err := nodes[0].Requeue(f)
				if err == nil {
					break
				}
				if errors.Is(err, ErrPeerDown) {
					if derr := nodes[0].Dial(1, nodes[1].Addr()); derr != nil {
						t.Fatal(derr)
					}
					continue
				}
				if errors.Is(err, ErrChannelBusy) {
					time.Sleep(time.Millisecond)
					continue
				}
				t.Fatal(err)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	sink.check(wedged, true)
}
