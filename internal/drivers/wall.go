package drivers

import "newmad/internal/packet"

// WallDriver is the extra surface real-socket drivers share beyond Driver:
// a listener address and the ability to dial a peer's.
type WallDriver interface {
	Driver
	Addr() string
	Dial(peer packet.NodeID, addr string) error
}

// newWallCluster creates n nodes with mk and wires them all-to-all,
// rolling everything back on failure. The returned cleanup closes every
// node. Shared by NewLoopbackCluster and NewMeshCluster.
func newWallCluster[T WallDriver](n int, mk func(node packet.NodeID) (T, error)) ([]T, func(), error) {
	nodes := make([]T, n)
	for i := range nodes {
		d, err := mk(packet.NodeID(i))
		if err != nil {
			for _, prev := range nodes[:i] {
				prev.Close()
			}
			return nil, nil, err
		}
		nodes[i] = d
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i == j {
				continue
			}
			if err := a.Dial(b.Node(), b.Addr()); err != nil {
				for _, d := range nodes {
					d.Close()
				}
				return nil, nil, err
			}
		}
	}
	cleanup := func() {
		for _, d := range nodes {
			d.Close()
		}
	}
	return nodes, cleanup, nil
}
