package drivers

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/packet"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMeshPeerFailure kills one node of a 3-node mesh and verifies the
// failure surfaces cleanly on the survivors: the dead peer is detected,
// Post to it reports ErrPeerDown, no channel stays wedged, traffic between
// the survivors still flows, and no goroutine outlives the final Close.
func TestMeshPeerFailure(t *testing.T) {
	before := runtime.NumGoroutine()

	nodes, _, err := NewMeshCluster(3, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	downCh := make(chan packet.NodeID, 4)
	nodes[0].SetPeerDownHandler(func(p packet.NodeID) { downCh <- p })
	recv := make(chan packet.NodeID, 16)
	idle := make(chan int, 16)
	nodes[0].SetIdleHandler(func(ch int) { idle <- ch })
	nodes[1].SetRecvHandler(func(src packet.NodeID, f *packet.Frame) { recv <- src })

	// Kill node 2 abruptly: its sockets close under the survivors.
	if err := nodes[2].Close(); err != nil {
		t.Fatal(err)
	}

	// Node 0 learns of the death from its reader (EOF on the inbound
	// connection from node 2), without having to post anything.
	waitFor(t, 5*time.Second, "peer-down detection", func() bool { return nodes[0].PeerDown(2) })
	select {
	case p := <-downCh:
		if p != 2 {
			t.Fatalf("down handler fired for peer %d", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer-down handler never fired")
	}

	// Post toward the dead peer is a clean error, not a panic or a wedge.
	if err := nodes[0].Post(0, simpleFrame(0, 2, 64), 0); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("post to dead peer: %v, want ErrPeerDown", err)
	}
	if !nodes[0].ChannelIdle(0) {
		t.Fatal("failed post left the channel busy")
	}
	if got := nodes[0].Peers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("surviving peers = %v, want [1]", got)
	}

	// The surviving edge keeps carrying traffic.
	if err := nodes[0].Post(0, simpleFrame(0, 1, 64), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case src := <-recv:
		if src != 0 {
			t.Fatalf("survivor received from %d", src)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor traffic lost after peer death")
	}
	select {
	case <-idle:
	case <-time.After(5 * time.Second):
		t.Fatal("idle upcall lost after peer death")
	}

	nodes[0].Close()
	nodes[1].Close()
	waitFor(t, 5*time.Second, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= before+2
	})
}

// TestMeshPeerDisconnectMidFrame kills the destination while large frames
// are in flight toward it. The sender's channel must be released (idle
// upcall), the peer marked down, and no goroutine may leak.
func TestMeshPeerDisconnectMidFrame(t *testing.T) {
	before := runtime.NumGoroutine()

	nodes, _, err := NewMeshCluster(3, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	idle := make(chan int, 64)
	nodes[0].SetIdleHandler(func(ch int) { idle <- ch })
	// Stall the victim's reader in the recv upcall of a small first frame:
	// while it is blocked, the kernel buffers behind it fill up, so the big
	// write below wedges genuinely mid-frame until the close tears the
	// connection down under it.
	unblock := make(chan struct{})
	nodes[2].SetRecvHandler(func(packet.NodeID, *packet.Frame) { <-unblock })

	if err := nodes[0].Post(0, simpleFrame(0, 2, 64), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case <-idle:
	case <-time.After(5 * time.Second):
		t.Fatal("small frame never finished writing")
	}
	if err := nodes[0].Post(1, simpleFrame(0, 2, 32<<20), 0); err != nil {
		t.Fatal(err)
	}
	// Let the writer block against the stalled reader, then kill the node.
	time.Sleep(50 * time.Millisecond)
	close(unblock)
	if err := nodes[2].Close(); err != nil {
		t.Fatal(err)
	}

	// The interrupted channel must come back (write error path fires the
	// idle upcall), and the peer must end up down.
	select {
	case <-idle:
	case <-time.After(10 * time.Second):
		t.Fatal("channel wedged after mid-frame disconnect")
	}
	waitFor(t, 5*time.Second, "peer-down after mid-frame disconnect", func() bool {
		return nodes[0].PeerDown(2)
	})
	waitFor(t, 5*time.Second, "channel release", func() bool { return nodes[0].ChannelIdle(0) })

	nodes[0].Close()
	nodes[1].Close()
	waitFor(t, 5*time.Second, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= before+2
	})
}

// TestMeshRedial replaces a healthy connection by re-dialing the same peer
// — the documented recovery from ErrPeerDown. The old sender goroutine must
// retire (Close must not hang on it, nothing may leak), its late errors
// must not mark the fresh connection down, and traffic must flow on the
// replacement.
func TestMeshRedial(t *testing.T) {
	before := runtime.NumGoroutine()

	nodes, _, err := NewMeshCluster(2, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	recv := make(chan struct{}, 8)
	nodes[1].SetRecvHandler(func(packet.NodeID, *packet.Frame) { recv <- struct{}{} })

	if err := nodes[0].Dial(1, nodes[1].Addr()); err != nil {
		t.Fatal(err)
	}
	if nodes[0].PeerDown(1) {
		t.Fatal("re-dial marked the fresh connection down")
	}
	if err := nodes[0].Post(0, simpleFrame(0, 1, 64), 0); err != nil {
		t.Fatalf("post after re-dial: %v", err)
	}
	select {
	case <-recv:
	case <-time.After(5 * time.Second):
		t.Fatal("frame lost after re-dial")
	}

	// Close must complete: the retired sender goroutine has exited.
	closed := make(chan struct{})
	go func() {
		nodes[0].Close()
		nodes[1].Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung after re-dial (retired sender leaked)")
	}
	waitFor(t, 5*time.Second, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= before+2
	})
}

// TestMeshRedialWithPending covers the post-with-pending-re-dial window
// that TestMeshRedial (which only posts after the re-dial) misses: frames
// queued toward a healthy peer before a re-Dial must either arrive on the
// drained connection or surface through the peer-down handler — they may
// never be marked sent and silently dropped. Against the pre-rework driver
// this test fails: retiring the old connection closed its socket mid-write
// and released the queued frames as if sent, so `got` stalled below
// `posted` with no down event.
func TestMeshRedialWithPending(t *testing.T) {
	before := runtime.NumGoroutine()

	nodes, _, err := NewMeshCluster(2, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := 0
	downs := 0
	// Stall the receiver in the first frame's upcall: the kernel buffers
	// behind it fill, so the big frame below wedges genuinely mid-write and
	// the subsequent post stays queued on the old connection.
	unblock := make(chan struct{})
	first := true
	nodes[1].SetRecvHandler(func(packet.NodeID, *packet.Frame) {
		if first {
			first = false
			<-unblock
		}
		mu.Lock()
		got++
		mu.Unlock()
	})
	nodes[0].SetPeerDownHandler(func(packet.NodeID) {
		mu.Lock()
		downs++
		mu.Unlock()
	})

	posted := 0
	if err := nodes[0].Post(0, simpleFrame(0, 1, 64), 0); err != nil {
		t.Fatal(err)
	}
	posted++
	waitFor(t, 5*time.Second, "channel 0 release", func() bool { return nodes[0].ChannelIdle(0) })
	// Channel 0: a frame large enough to wedge mid-write against the
	// stalled reader. Channel 1: a frame that stays fully queued behind it.
	if err := nodes[0].Post(0, simpleFrame(0, 1, 8<<20), 0); err != nil {
		t.Fatal(err)
	}
	posted++
	if err := nodes[0].Post(1, simpleFrame(0, 1, 64<<10), 0); err != nil {
		t.Fatal(err)
	}
	posted++
	time.Sleep(50 * time.Millisecond) // let the big write wedge

	// Re-dial while both frames are pending on the old connection.
	if err := nodes[0].Dial(1, nodes[1].Addr()); err != nil {
		t.Fatal(err)
	}
	if nodes[0].PeerDown(1) {
		t.Fatal("re-dial marked the fresh connection down")
	}
	// Both channels stay busy: their frames are pending on the draining
	// rail, and a channel is only released when its frame has been written
	// out (or the peer reported down) — never silently.
	if nodes[0].ChannelIdle(0) || nodes[0].ChannelIdle(1) {
		t.Fatal("pending frame's channel released before the frame was drained")
	}
	close(unblock)

	// Every pending frame must arrive (graceful drain) — or, had the drain
	// failed, the peer-down handler must have fired. Silent loss is the one
	// outcome the lifecycle rework forbids.
	waitFor(t, 10*time.Second, "pending frames to arrive or error", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got == posted || downs > 0
	})
	mu.Lock()
	if downs == 0 && got != posted {
		mu.Unlock()
		t.Fatalf("delivered %d of %d with no peer-down event", got, posted)
	}
	mu.Unlock()

	// The drained rail's owner exits once its queue is empty.
	waitFor(t, 5*time.Second, "drain completion", func() bool { return nodes[0].Draining() == 0 })

	// A post after the re-dial travels the replacement.
	waitFor(t, 5*time.Second, "channel 0 idle", func() bool { return nodes[0].ChannelIdle(0) })
	if err := nodes[0].Post(0, simpleFrame(0, 1, 64), 0); err != nil {
		t.Fatalf("post after re-dial: %v", err)
	}
	posted++
	waitFor(t, 5*time.Second, "post-re-dial delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got == posted || downs > 0
	})

	nodes[0].Close()
	nodes[1].Close()
	waitFor(t, 5*time.Second, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= before+2
	})
}

// TestMeshListenAddr exercises explicit listen addresses (the multi-machine
// path) and dial errors.
func TestMeshListenAddr(t *testing.T) {
	m, err := NewMesh(0, caps.TCP, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Addr() == "" {
		t.Fatal("no listen address")
	}
	if err := m.Dial(1, "127.0.0.1:1"); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
	if err := m.Post(0, simpleFrame(0, 1, maxMeshFrame+1), 0); err == nil {
		t.Fatal("oversized frame accepted; it would poison the peer link")
	}
	if _, err := NewMesh(0, caps.Caps{}, "127.0.0.1:0"); err == nil {
		t.Fatal("invalid caps accepted")
	}
	if _, err := NewMesh(0, caps.TCP, "256.0.0.1:bad"); err == nil {
		t.Fatal("invalid listen address accepted")
	}
}

// TestMeshDialAfterClose verifies Dial on a closed mesh fails cleanly.
func TestMeshDialAfterClose(t *testing.T) {
	a, err := NewMesh(0, caps.TCP, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMesh(1, caps.TCP, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.Close()
	if err := a.Dial(1, b.Addr()); err == nil {
		t.Fatal("dial on closed mesh succeeded")
	}
}
