// Package drivers defines the transfer layer of the architecture in the
// paper's Figure 1: a uniform Driver interface that the optimizing layer
// posts frames to, with one implementation per network technology.
//
// Two families of drivers exist:
//
//   - Sim drivers wrap internal/nicsim NIC models (Myrinet/MX,
//     Quadrics/Elan, InfiniBand, TCP, WAN — built from the capability
//     database in internal/caps); and
//   - real TCP drivers, which run the very same engine in wall-clock time
//     and validate the asynchronous upcall contract against a genuine
//     transport: Loopback (pairwise localhost sockets) and Mesh (an
//     N-node topology — every node listens, dials its peers, and handles
//     peer failure as a first-class event).
//
// The Driver interface is intentionally narrow: the optimizer only ever
// needs to know what a driver can do (Caps), whether a send unit is free,
// and how to post one frame. Everything else — protocols, aggregation,
// scheduling — lives above.
package drivers

import (
	"errors"

	"newmad/internal/caps"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// ErrChannelBusy is returned by Post on an occupied channel. The optimizing
// layer maintains its own backlog and treats this as a scheduling bug, not
// a retry condition.
var ErrChannelBusy = errors.New("drivers: channel busy")

// IdleFunc is invoked when a send channel becomes free. Sim drivers call it
// on the simulation goroutine; Loopback calls it from a sender goroutine.
type IdleFunc func(ch int)

// RecvFunc delivers a fully received frame.
type RecvFunc func(src packet.NodeID, f *packet.Frame)

// FrameLossHandler receives frames a rail could not deliver: the connection
// carrying them failed with the frames still queued (or mid-write). The
// frames are intact — encoding happens in the rail owner, so an undelivered
// frame is exactly the object that was posted — and the layer above decides
// whether to fail them over onto another rail, hold them for a heal, or
// drop them. The mid-write frame is included even though it *may* have
// reached the peer: a broken TCP stream cannot say, so exactly-once is the
// receiver's job (the reassembler deduplicates by sequence number).
type FrameLossHandler func(peer packet.NodeID, frames []*packet.Frame)

// FrameLossNotifier is implemented by drivers that can hand undeliverable
// frames back instead of dropping them — the hook engine-level failover
// (internal/core) and the multi-rail bundle build on.
type FrameLossNotifier interface {
	SetFrameLossHandler(fn FrameLossHandler)
}

// PeerChecker is implemented by drivers that track per-peer liveness. The
// optimizing layer consults it to route failover traffic around dead
// connections; drivers without the method (simulated fabrics) are treated
// as always-reachable.
type PeerChecker interface {
	PeerDown(peer packet.NodeID) bool
}

// PeerDownNotifier is implemented by drivers that can report peer failure
// as an event (once per failed peer).
type PeerDownNotifier interface {
	SetPeerDownHandler(fn func(peer packet.NodeID))
}

// Driver is one node's endpoint on one network.
type Driver interface {
	// Name identifies the driver instance for diagnostics.
	Name() string
	// Node returns the local node id.
	Node() packet.NodeID
	// Caps returns the capability record that parameterizes optimization.
	Caps() caps.Caps
	// Mem returns the host memory model for staging-cost estimation.
	Mem() memsim.Model
	// NumChannels returns the number of independent send units.
	NumChannels() int
	// ChannelIdle reports whether channel ch can accept a frame.
	ChannelIdle(ch int) bool
	// FirstIdle returns the lowest idle channel, if any.
	FirstIdle() (int, bool)
	// Post submits one frame on an idle channel. hostExtra charges
	// optimizer-side preparation time (ignored by wall-clock drivers,
	// where preparation takes the time it takes).
	Post(ch int, f *packet.Frame, hostExtra simnet.Duration) error
	// SetIdleHandler installs the idle upcall (single handler).
	SetIdleHandler(fn IdleFunc)
	// SetRecvHandler installs the delivery upcall (single handler).
	SetRecvHandler(fn RecvFunc)
	// Close releases resources. Sim drivers are trivial; Loopback closes
	// its sockets and stops its goroutines.
	Close() error
}
