package drivers

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/packet"
)

func simpleFrame(src, dst packet.NodeID, size int) *packet.Frame {
	return &packet.Frame{
		Kind: packet.FrameData, Src: src, Dst: dst,
		Entries: []packet.Entry{{Flow: 1, Msg: 1, Last: true, Payload: make([]byte, size)}},
	}
}

func TestClusterConstruction(t *testing.T) {
	cl, err := NewCluster(3, caps.MX, caps.Elan)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Fabrics) != 2 {
		t.Fatalf("fabrics = %d", len(cl.Fabrics))
	}
	d := cl.Driver(0, "mx")
	if d == nil || d.Caps().Name != "mx" {
		t.Fatal("mx driver missing")
	}
	all := cl.NodeDrivers(1)
	if len(all) != 2 {
		t.Fatalf("node drivers = %d", len(all))
	}
	if all[0].Caps().Name != "elan" || all[1].Caps().Name != "mx" {
		t.Fatalf("drivers not sorted: %s, %s", all[0].Caps().Name, all[1].Caps().Name)
	}
	if d.Name() != "mx@n0" {
		t.Fatalf("Name = %q", d.Name())
	}
	if d.Mem().CopyBandwidth <= 0 {
		t.Fatal("driver memory model unset")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(1, caps.MX); err == nil {
		t.Fatal("1-node cluster accepted")
	}
	if _, err := NewCluster(2); err == nil {
		t.Fatal("no-profile cluster accepted")
	}
	if _, err := NewCluster(2, caps.MX, caps.MX); err == nil {
		t.Fatal("duplicate profile accepted")
	}
}

func TestSimDriverRoundTrip(t *testing.T) {
	cl, err := NewCluster(2, caps.MX)
	if err != nil {
		t.Fatal(err)
	}
	src := cl.Driver(0, "mx")
	dst := cl.Driver(1, "mx")
	var got *packet.Frame
	idles := 0
	src.SetIdleHandler(func(ch int) { idles++ })
	dst.SetRecvHandler(func(from packet.NodeID, f *packet.Frame) { got = f })
	if err := src.Post(0, simpleFrame(0, 1, 100), 0); err != nil {
		t.Fatal(err)
	}
	if err := src.Post(0, simpleFrame(0, 1, 100), 0); err != ErrChannelBusy {
		t.Fatalf("busy post: %v", err)
	}
	cl.Eng.Run()
	if got == nil || got.PayloadSize() != 100 {
		t.Fatal("frame not delivered through sim driver")
	}
	if idles != 1 {
		t.Fatalf("idle upcalls = %d", idles)
	}
	// Handlers can be cleared.
	src.SetIdleHandler(nil)
	dst.SetRecvHandler(nil)
	if err := src.Post(0, simpleFrame(0, 1, 8), 0); err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run() // must not panic with nil handlers
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
}

// --- Shared wall-clock driver conformance suite. --------------------------
//
// Every real-socket driver (Loopback, Mesh) must honor the same contract:
// idle upcalls from sender goroutines, deliveries from reader goroutines,
// ErrChannelBusy on an occupied channel, errors (not panics) on misuse, and
// an idempotent Close. The conformance tests below run once per transport.

// wallTransport constructs an n-node fully connected cluster of one
// wall-clock driver kind.
type wallTransport struct {
	name string
	// capsName is the profile name the transport's Caps() must report;
	// channels the expected NumChannels() when built from caps.TCP.
	capsName string
	channels int
	make     func(n int, c caps.Caps) ([]Driver, func(), error)
	// railOf maps a channel index to the rail (independent FIFO pipe) it
	// belongs to; single-connection transports map everything to rail 0.
	railOf func(d Driver, ch int) int
}

func oneRail(Driver, int) int { return 0 }

// perChannel is the FIFO granularity of Loopback: each channel has its own
// sender goroutine, and the channels share the destination connection
// under a write lock, so only frames of the same channel are ordered.
func perChannel(_ Driver, ch int) int { return ch }

// multiRailTransport builds the conformance adapter for an R-rail mesh:
// each node is one MultiRail bundling R mesh endpoints derived from the
// base profile.
func multiRailTransport(rails int) wallTransport {
	return wallTransport{
		name:     fmt.Sprintf("mesh-%drail", rails),
		capsName: "tcp.r0",
		channels: rails * caps.TCP.Channels,
		make: func(n int, c caps.Caps) ([]Driver, func(), error) {
			nodes, cleanup, err := NewMultiRailMeshCluster(n, caps.RailProfiles(c, rails))
			if err != nil {
				return nil, nil, err
			}
			ds := make([]Driver, len(nodes))
			for i, m := range nodes {
				ds[i] = m
			}
			return ds, cleanup, nil
		},
		railOf: func(d Driver, ch int) int {
			ri, _, err := d.(*MultiRail).RailOf(ch)
			if err != nil {
				panic(err)
			}
			return ri
		},
	}
}

func wallTransports() []wallTransport {
	return []wallTransport{
		{"loopback", "tcp", caps.TCP.Channels, func(n int, c caps.Caps) ([]Driver, func(), error) {
			nodes, cleanup, err := NewLoopbackCluster(n, c)
			if err != nil {
				return nil, nil, err
			}
			ds := make([]Driver, len(nodes))
			for i, m := range nodes {
				ds[i] = m
			}
			return ds, cleanup, nil
		}, perChannel},
		{"mesh", "tcp", caps.TCP.Channels, func(n int, c caps.Caps) ([]Driver, func(), error) {
			nodes, cleanup, err := NewMeshCluster(n, c)
			if err != nil {
				return nil, nil, err
			}
			ds := make([]Driver, len(nodes))
			for i, m := range nodes {
				ds[i] = m
			}
			return ds, cleanup, nil
		}, oneRail},
		multiRailTransport(1),
		multiRailTransport(2),
		multiRailTransport(4),
	}
}

func forEachWallTransport(t *testing.T, fn func(t *testing.T, tr wallTransport)) {
	for _, tr := range wallTransports() {
		tr := tr
		t.Run(tr.name, func(t *testing.T) { fn(t, tr) })
	}
}

func TestWallDriverRoundTrip(t *testing.T) {
	forEachWallTransport(t, func(t *testing.T, tr wallTransport) {
		nodes, cleanup, err := tr.make(2, caps.TCP)
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()

		recv := make(chan *packet.Frame, 1)
		idle := make(chan int, 1)
		nodes[1].SetRecvHandler(func(src packet.NodeID, f *packet.Frame) {
			if src != 0 {
				t.Errorf("src = %d", src)
			}
			recv <- f
		})
		nodes[0].SetIdleHandler(func(ch int) { idle <- ch })

		f := &packet.Frame{
			Kind: packet.FrameData, Src: 0, Dst: 1,
			Entries: []packet.Entry{
				{Flow: 3, Msg: 9, Seq: 0, Last: false, Recv: packet.RecvExpress, Payload: []byte("head")},
				{Flow: 3, Msg: 9, Seq: 1, Last: true, Payload: []byte("body")},
			},
		}
		if err := nodes[0].Post(0, f, 0); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-recv:
			if len(got.Entries) != 2 || string(got.Entries[0].Payload) != "head" {
				t.Fatalf("frame corrupted: %+v", got)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("frame never arrived")
		}
		select {
		case <-idle:
		case <-time.After(5 * time.Second):
			t.Fatal("idle upcall never fired")
		}
	})
}

func TestWallDriverBidirectional(t *testing.T) {
	forEachWallTransport(t, func(t *testing.T, tr wallTransport) {
		nodes, cleanup, err := tr.make(3, caps.TCP)
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()

		var mu sync.Mutex
		got := map[packet.NodeID]int{}
		done := make(chan struct{}, 16)
		for _, n := range nodes {
			n := n
			n.SetRecvHandler(func(src packet.NodeID, f *packet.Frame) {
				mu.Lock()
				got[n.Node()]++
				mu.Unlock()
				done <- struct{}{}
			})
		}
		// Every node sends one frame to every other node.
		sent := 0
		for _, a := range nodes {
			for _, b := range nodes {
				if a.Node() == b.Node() {
					continue
				}
				ch, ok := a.FirstIdle()
				if !ok {
					t.Fatal("no idle channel")
				}
				if err := a.Post(ch, simpleFrame(a.Node(), b.Node(), 32), 0); err != nil {
					t.Fatal(err)
				}
				sent++
				// Wait for this frame before reusing channels (keep it simple).
				select {
				case <-done:
				case <-time.After(5 * time.Second):
					t.Fatal("frame lost")
				}
			}
		}
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, n := range got {
			total += n
		}
		if total != sent {
			t.Fatalf("delivered %d of %d", total, sent)
		}
	})
}

func TestWallDriverErrors(t *testing.T) {
	forEachWallTransport(t, func(t *testing.T, tr wallTransport) {
		nodes, cleanup, err := tr.make(2, caps.TCP)
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()
		n0 := nodes[0]
		if err := n0.Post(99, simpleFrame(0, 1, 8), 0); err == nil {
			t.Fatal("bad channel accepted")
		}
		if err := n0.Post(0, simpleFrame(1, 0, 8), 0); err == nil {
			t.Fatal("foreign src accepted")
		}
		if err := n0.Post(0, simpleFrame(0, 7, 8), 0); err == nil {
			t.Fatal("unconnected destination accepted")
		}
		if n0.NumChannels() != tr.channels {
			t.Fatalf("channels = %d, want %d", n0.NumChannels(), tr.channels)
		}
		if n0.Node() != 0 || n0.Caps().Name != tr.capsName || n0.Name() == "" {
			t.Fatal("identity accessors broken")
		}
	})
}

func TestWallDriverCloseIdempotentAndPostAfterClose(t *testing.T) {
	forEachWallTransport(t, func(t *testing.T, tr wallTransport) {
		nodes, cleanup, err := tr.make(2, caps.TCP)
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()
		if err := nodes[0].Close(); err != nil {
			t.Fatal(err)
		}
		if err := nodes[0].Close(); err != nil {
			t.Fatal("second close errored")
		}
		if err := nodes[0].Post(0, simpleFrame(0, 1, 8), 0); err == nil {
			t.Fatal("post after close accepted")
		}
	})
}

// TestWallDriverFlowOrderAcrossRails pins down the ordering contract when
// one flow stripes across send units: frames that travel the same rail
// (the same underlying connection) arrive in post order — TCP FIFO per
// rail — while frames on different rails may race, which is why every
// frame carries its sequence number and reassembly happens above the
// driver. The test posts one flow round-robin over every channel of every
// rail and verifies (a) nothing is lost or duplicated and (b) per-rail
// arrival order equals per-rail post order.
func TestWallDriverFlowOrderAcrossRails(t *testing.T) {
	forEachWallTransport(t, func(t *testing.T, tr wallTransport) {
		nodes, cleanup, err := tr.make(2, caps.TCP)
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()

		const frames = 96
		numCh := nodes[0].NumChannels()

		type arrival struct{ rail, seq int }
		var mu sync.Mutex
		var got []arrival
		nodes[1].SetRecvHandler(func(src packet.NodeID, f *packet.Frame) {
			if len(f.Entries) != 1 || len(f.Entries[0].Payload) < 8 {
				t.Errorf("malformed striped frame: %+v", f)
				return
			}
			p := f.Entries[0].Payload
			mu.Lock()
			got = append(got, arrival{
				rail: int(p[0])<<8 | int(p[1]),
				seq:  int(p[4])<<8 | int(p[5]),
			})
			mu.Unlock()
		})
		idle := make(chan struct{}, numCh*4)
		nodes[0].SetIdleHandler(func(int) {
			select {
			case idle <- struct{}{}:
			default:
			}
		})

		for seq := 0; seq < frames; seq++ {
			ch := seq % numCh
			for !nodes[0].ChannelIdle(ch) {
				select {
				case <-idle:
				case <-time.After(5 * time.Second):
					t.Fatalf("channel %d never freed at seq %d", ch, seq)
				}
			}
			rail := tr.railOf(nodes[0], ch)
			f := &packet.Frame{
				Kind: packet.FrameData, Src: 0, Dst: 1,
				Entries: []packet.Entry{{
					Flow: 1, Msg: 1, Seq: seq, Last: seq == frames-1,
					Payload: []byte{byte(rail >> 8), byte(rail), 0, 0, byte(seq >> 8), byte(seq), 0, 0},
				}},
			}
			if err := nodes[0].Post(ch, f, 0); err != nil {
				t.Fatalf("post seq %d on ch %d: %v", seq, ch, err)
			}
		}

		waitFor(t, 10*time.Second, "all striped frames", func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(got) >= frames
		})
		mu.Lock()
		defer mu.Unlock()
		if len(got) != frames {
			t.Fatalf("received %d frames, posted %d", len(got), frames)
		}
		seen := make([]bool, frames)
		lastPerRail := map[int]int{}
		for i, a := range got {
			if a.seq < 0 || a.seq >= frames || seen[a.seq] {
				t.Fatalf("arrival %d: bad or duplicate seq %d", i, a.seq)
			}
			seen[a.seq] = true
			if last, ok := lastPerRail[a.rail]; ok && a.seq < last {
				t.Fatalf("rail %d reordered: seq %d arrived after %d", a.rail, a.seq, last)
			}
			lastPerRail[a.rail] = a.seq
		}
		// Multi-rail transports must actually have striped the flow.
		if want := tr.railOf(nodes[0], numCh-1) + 1; len(lastPerRail) != want {
			t.Fatalf("flow touched %d rails, transport has %d", len(lastPerRail), want)
		}
	})
}

func TestWallDriverChannelBusySemantics(t *testing.T) {
	forEachWallTransport(t, func(t *testing.T, tr wallTransport) {
		nodes, cleanup, err := tr.make(2, caps.TCP)
		if err != nil {
			t.Fatal(err)
		}
		defer cleanup()

		// Saturate channel 0 with a large frame and verify ErrChannelBusy can
		// occur, then that the channel recovers.
		idle := make(chan struct{}, 8)
		nodes[0].SetIdleHandler(func(int) { idle <- struct{}{} })
		nodes[1].SetRecvHandler(func(packet.NodeID, *packet.Frame) {})
		if err := nodes[0].Post(0, simpleFrame(0, 1, 1<<20), 0); err != nil {
			t.Fatal(err)
		}
		select {
		case <-idle:
		case <-time.After(5 * time.Second):
			t.Fatal("channel never became idle")
		}
		if !nodes[0].ChannelIdle(0) {
			t.Fatal("channel not idle after upcall")
		}
		if err := nodes[0].Post(0, simpleFrame(0, 1, 8), 0); err != nil {
			t.Fatalf("post after idle: %v", err)
		}
	})
}
