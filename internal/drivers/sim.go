package drivers

import (
	"fmt"

	"newmad/internal/caps"
	"newmad/internal/memsim"
	"newmad/internal/nicsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/stats"
)

// Sim adapts a nicsim.NIC to the Driver interface.
type Sim struct {
	nic *nicsim.NIC
}

var _ Driver = (*Sim)(nil)

// NewSim wraps an existing NIC model.
func NewSim(nic *nicsim.NIC) *Sim { return &Sim{nic: nic} }

// Name returns "<profile>@n<node>".
func (s *Sim) Name() string { return fmt.Sprintf("%s@n%d", s.nic.Caps().Name, s.nic.Node()) }

// Node returns the local node id.
func (s *Sim) Node() packet.NodeID { return s.nic.Node() }

// Caps returns the NIC's capability record.
func (s *Sim) Caps() caps.Caps { return s.nic.Caps() }

// Mem returns the NIC's host memory model.
func (s *Sim) Mem() memsim.Model { return s.nic.Mem() }

// NumChannels returns the NIC's channel count.
func (s *Sim) NumChannels() int { return s.nic.NumChannels() }

// ChannelIdle reports channel availability.
func (s *Sim) ChannelIdle(ch int) bool { return s.nic.ChannelIdle(ch) }

// FirstIdle returns the lowest idle channel.
func (s *Sim) FirstIdle() (int, bool) { return s.nic.FirstIdle() }

// Post forwards to the NIC, translating its busy error.
func (s *Sim) Post(ch int, f *packet.Frame, hostExtra simnet.Duration) error {
	err := s.nic.Post(ch, f, hostExtra)
	if err == nicsim.ErrChannelBusy {
		return ErrChannelBusy
	}
	return err
}

// SetIdleHandler installs the idle upcall.
func (s *Sim) SetIdleHandler(fn IdleFunc) {
	if fn == nil {
		s.nic.SetIdleHandler(nil)
		return
	}
	s.nic.SetIdleHandler(func(_ *nicsim.NIC, ch int) { fn(ch) })
}

// SetRecvHandler installs the delivery upcall.
func (s *Sim) SetRecvHandler(fn RecvFunc) {
	if fn == nil {
		s.nic.SetRecvHandler(nil)
		return
	}
	s.nic.SetRecvHandler(func(src packet.NodeID, f *packet.Frame) { fn(src, f) })
}

// Close is a no-op for simulated hardware.
func (s *Sim) Close() error { return nil }

// Cluster bundles the common experiment topology: one fabric per named
// technology, n nodes, one Sim driver per (node, technology).
type Cluster struct {
	Eng     *simnet.Engine
	Fabrics map[string]*nicsim.Fabric
	// Drivers[node][tech] is the driver for that node on that fabric.
	Drivers []map[string]*Sim
	Stats   *stats.Set
}

// NewCluster builds an n-node cluster over the given capability profiles.
// All nodes share one stats set (the experiments aggregate fleet-wide).
func NewCluster(n int, profiles ...caps.Caps) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("drivers: cluster needs at least 2 nodes, got %d", n)
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("drivers: cluster needs at least one profile")
	}
	cl := &Cluster{
		Eng:     simnet.NewEngine(),
		Fabrics: make(map[string]*nicsim.Fabric),
		Drivers: make([]map[string]*Sim, n),
		Stats:   &stats.Set{},
	}
	mem := memsim.DefaultModel()
	for _, p := range profiles {
		if _, dup := cl.Fabrics[p.Name]; dup {
			return nil, fmt.Errorf("drivers: duplicate profile %q in cluster", p.Name)
		}
		cl.Fabrics[p.Name] = nicsim.NewFabric(cl.Eng, p.Name)
	}
	for node := 0; node < n; node++ {
		cl.Drivers[node] = make(map[string]*Sim, len(profiles))
		for _, p := range profiles {
			nic, err := nicsim.New(cl.Eng, cl.Fabrics[p.Name], packet.NodeID(node), p, mem, cl.Stats)
			if err != nil {
				return nil, err
			}
			cl.Drivers[node][p.Name] = NewSim(nic)
		}
	}
	return cl, nil
}

// Driver returns the driver of node on the named technology.
func (c *Cluster) Driver(node packet.NodeID, tech string) *Sim {
	return c.Drivers[node][tech]
}

// NodeDrivers returns all drivers of a node (one per technology), sorted by
// technology name so callers iterate deterministically.
func (c *Cluster) NodeDrivers(node packet.NodeID) []*Sim {
	out := make([]*Sim, 0, len(c.Drivers[node]))
	for _, name := range sortedKeys(c.Drivers[node]) {
		out = append(out, c.Drivers[node][name])
	}
	return out
}

func sortedKeys(m map[string]*Sim) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
