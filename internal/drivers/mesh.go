package drivers

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"newmad/internal/caps"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// ErrPeerDown is returned by Post when the destination peer's connection has
// failed. Unlike ErrChannelBusy this is not a scheduling bug: real networks
// lose nodes, and the optimizing layer (or the application above it) decides
// whether to reroute, buffer, or give up.
var ErrPeerDown = errors.New("drivers: peer down")

// maxMeshFrame bounds one encoded frame on the wire. Readers treat a larger
// length prefix as a corrupt stream, so Post enforces the same limit and
// fails at the call site instead of poisoning the link.
const maxMeshFrame = 64 << 20

// Mesh is a real multi-node TCP transport: each node listens on one port,
// dials every peer, and exchanges length-prefixed frames (the same wire
// encoding as the simulated drivers and the Loopback driver). It generalizes
// Loopback from the pairwise localhost case to an N-endpoint mesh suitable
// for multi-machine topologies:
//
//   - One outbound connection and one dedicated sender goroutine per peer,
//     so frames to different destinations never serialize behind a shared
//     write lock. A send channel is busy from Post until its frame has been
//     fully written to the destination socket, at which point the idle
//     upcall fires from that peer's sender goroutine.
//   - Peer failure is a first-class event: a write or read error marks the
//     peer down, releases any channels with frames queued toward it (the
//     engine above must not wedge on a dead destination), and makes
//     subsequent Posts to that peer fail with ErrPeerDown. The rest of the
//     mesh keeps running.
//
// Addresses are ordinary TCP addresses; nothing restricts the mesh to
// localhost. Tests and examples use 127.0.0.1 ephemeral ports, but the same
// driver spans real hosts when given routable listen addresses.
type Mesh struct {
	node packet.NodeID
	caps caps.Caps
	mem  memsim.Model

	ln net.Listener

	mu       sync.Mutex
	peers    map[packet.NodeID]*meshPeer
	inbound  map[packet.NodeID]net.Conn // latest identified inbound conn per peer
	accepted map[net.Conn]struct{}      // live inbound connections
	chans    []bool                     // busy flags, one per send channel
	onIdle   IdleFunc
	onRecv   RecvFunc
	onDown   func(peer packet.NodeID)
	closed   bool
	wg       sync.WaitGroup
}

// meshPeer is one outbound edge of the mesh: the socket, the queue its
// sender goroutine drains, the down flag set on first I/O error, and the
// retired flag set when the queue has been closed (shutdown or replacement
// by a re-Dial).
type meshPeer struct {
	c       net.Conn
	q       chan meshTx
	down    bool
	retired bool
}

type meshTx struct {
	ch  int
	buf []byte
}

var _ Driver = (*Mesh)(nil)

// NewMesh creates a node endpoint listening on the given TCP address
// ("127.0.0.1:0" for an ephemeral localhost port, ":0" or a routable
// host:port to span machines). Wire the topology with Dial, or use
// NewMeshCluster for the all-pairs localhost case.
func NewMesh(node packet.NodeID, c caps.Caps, listen string) (*Mesh, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	m := &Mesh{
		node:     node,
		caps:     c,
		mem:      memsim.DefaultModel(),
		ln:       ln,
		peers:    make(map[packet.NodeID]*meshPeer),
		inbound:  make(map[packet.NodeID]net.Conn),
		accepted: make(map[net.Conn]struct{}),
		chans:    make([]bool, c.Channels),
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the listener address other nodes dial.
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

// Dial connects this node to a peer's listener. The connection is owned by
// a dedicated sender goroutine; its queue holds at most one frame per send
// channel, so enqueueing under the driver lock never blocks.
//
// Re-dialing an already connected peer — the recovery from ErrPeerDown —
// replaces the connection: the old one is retired (its sender drains and
// exits; late I/O errors on it are ignored) and traffic resumes on the new
// one.
func (m *Mesh) Dial(peer packet.NodeID, addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	// Identify ourselves so the peer's reader can attribute inbound frames.
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(m.node))
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		c.Close()
		return errors.New("drivers: mesh closed")
	}
	if old, dup := m.peers[peer]; dup {
		retirePeerLocked(old)
	}
	p := &meshPeer{c: c, q: make(chan meshTx, len(m.chans))}
	m.peers[peer] = p
	m.wg.Add(1)
	m.mu.Unlock()
	go m.sender(peer, p)
	return nil
}

// retirePeerLocked takes a peer connection out of service: down stops new
// Posts and silences its sender's error path, closing the queue lets the
// sender drain and exit. Idempotent; caller holds m.mu.
func retirePeerLocked(p *meshPeer) {
	p.down = true
	p.c.Close()
	if !p.retired {
		p.retired = true
		close(p.q)
	}
}

func (m *Mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			c.Close()
			return
		}
		m.accepted[c] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.reader(c)
	}
}

// reader drains one inbound connection: hello, then length-prefixed frames.
// A read error (peer crashed, connection reset, or local shutdown) ends the
// goroutine cleanly and — if this was still the peer's latest connection —
// marks the sending peer down so the failure is visible on this side too.
func (m *Mesh) reader(c net.Conn) {
	defer m.wg.Done()
	defer func() {
		m.mu.Lock()
		delete(m.accepted, c)
		m.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReader(c)
	var hello [4]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return
	}
	src := packet.NodeID(binary.BigEndian.Uint32(hello[:]))
	m.mu.Lock()
	m.inbound[src] = c
	m.mu.Unlock()
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenbuf[:]); err != nil {
			m.inboundFailed(src, c)
			return
		}
		n := binary.BigEndian.Uint32(lenbuf[:])
		if n > maxMeshFrame {
			m.inboundFailed(src, c)
			return // corrupt stream
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			m.inboundFailed(src, c)
			return
		}
		f, _, err := packet.Decode(buf)
		if err != nil {
			m.inboundFailed(src, c)
			return
		}
		m.mu.Lock()
		h := m.onRecv
		m.mu.Unlock()
		if h != nil {
			h(src, f)
		}
	}
}

// sender owns one peer's socket: it writes each queued frame atomically
// (4-byte length prefix + encoded frame) and then releases the channel that
// carried it. On a write error the peer is marked down, but the goroutine
// keeps draining so every channel pointed at the dead peer is released —
// the engine above sees idle upcalls, not a wedged send unit.
func (m *Mesh) sender(peer packet.NodeID, p *meshPeer) {
	defer m.wg.Done()
	bw := bufio.NewWriter(p.c)
	broken := false
	for tx := range p.q {
		if !broken {
			var lenbuf [4]byte
			binary.BigEndian.PutUint32(lenbuf[:], uint32(len(tx.buf)))
			_, err := bw.Write(lenbuf[:])
			if err == nil {
				_, err = bw.Write(tx.buf)
			}
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				broken = true
				m.outboundFailed(peer, p)
			}
		}
		m.mu.Lock()
		m.chans[tx.ch] = false
		h := m.onIdle
		closed := m.closed
		m.mu.Unlock()
		if h != nil && !closed {
			h(tx.ch)
		}
	}
}

// outboundFailed marks one specific peer connection failed after a write
// error. The instance check keeps a retired connection's late errors from
// touching a fresh one installed by a re-Dial.
func (m *Mesh) outboundFailed(peer packet.NodeID, p *meshPeer) {
	m.mu.Lock()
	if p.down || m.closed {
		m.mu.Unlock()
		return
	}
	p.down = true
	current := m.peers[peer] == p
	h := m.onDown
	m.mu.Unlock()
	p.c.Close()
	if h != nil && current {
		h(peer)
	}
}

// inboundFailed handles a read error on an inbound connection. Only the
// peer's latest identified connection counts: when a re-dialing peer
// replaces its connection, the EOF of the superseded one (usually observed
// after the new hello) must not mark the healthy peer down. In the rare
// interleaving where the old EOF is processed first the peer is marked
// down conservatively; the remedy, as for any down peer, is a re-Dial.
func (m *Mesh) inboundFailed(src packet.NodeID, c net.Conn) {
	m.mu.Lock()
	if m.closed || m.inbound[src] != c {
		m.mu.Unlock()
		return
	}
	delete(m.inbound, src)
	p, ok := m.peers[src]
	if !ok || p.down {
		m.mu.Unlock()
		return
	}
	p.down = true
	h := m.onDown
	m.mu.Unlock()
	p.c.Close()
	if h != nil {
		h(src)
	}
}

// Name identifies the endpoint.
func (m *Mesh) Name() string { return fmt.Sprintf("mesh@n%d", m.node) }

// Node returns the local node id.
func (m *Mesh) Node() packet.NodeID { return m.node }

// Caps returns the capability record used for optimization decisions.
func (m *Mesh) Caps() caps.Caps { return m.caps }

// Mem returns the host memory model.
func (m *Mesh) Mem() memsim.Model { return m.mem }

// NumChannels returns the configured send-unit count.
func (m *Mesh) NumChannels() int { return len(m.chans) }

// ChannelIdle reports availability of channel ch.
func (m *Mesh) ChannelIdle(ch int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.chans[ch]
}

// FirstIdle returns the lowest idle channel.
func (m *Mesh) FirstIdle() (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, busy := range m.chans {
		if !busy {
			return i, true
		}
	}
	return 0, false
}

// Post encodes the frame and hands it to the destination peer's sender
// goroutine. hostExtra is ignored: on a real transport, preparation already
// took real time. The enqueue happens under the driver lock and the peer
// queue has one slot per channel, so it can never block or race Close.
func (m *Mesh) Post(ch int, f *packet.Frame, _ simnet.Duration) error {
	if ch < 0 || ch >= len(m.chans) {
		return fmt.Errorf("drivers: mesh node %d has no channel %d", m.node, ch)
	}
	if f.Src != m.node {
		return fmt.Errorf("drivers: frame src %d posted on node %d", f.Src, m.node)
	}
	if n := f.WireSize(); n > maxMeshFrame {
		return fmt.Errorf("drivers: frame of %d bytes exceeds the %d-byte mesh limit", n, maxMeshFrame)
	}
	buf := f.Encode(nil)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("drivers: mesh closed")
	}
	if m.chans[ch] {
		return ErrChannelBusy
	}
	p, ok := m.peers[f.Dst]
	if !ok {
		return fmt.Errorf("drivers: node %d not connected to %d", m.node, f.Dst)
	}
	if p.down {
		return fmt.Errorf("drivers: node %d -> %d: %w", m.node, f.Dst, ErrPeerDown)
	}
	m.chans[ch] = true
	p.q <- meshTx{ch: ch, buf: buf}
	return nil
}

// SetIdleHandler installs the idle upcall (called from sender goroutines).
func (m *Mesh) SetIdleHandler(fn IdleFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onIdle = fn
}

// SetRecvHandler installs the delivery upcall (called from reader
// goroutines).
func (m *Mesh) SetRecvHandler(fn RecvFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onRecv = fn
}

// SetPeerDownHandler installs a callback fired once per failed peer (from
// the goroutine that observed the failure). Optional; installing none means
// failures surface only through ErrPeerDown on Post.
func (m *Mesh) SetPeerDownHandler(fn func(peer packet.NodeID)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onDown = fn
}

// Peers returns the ids of connected peers that have not failed, sorted.
func (m *Mesh) Peers() []packet.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]packet.NodeID, 0, len(m.peers))
	for id, p := range m.peers {
		if !p.down {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PeerDown reports whether the peer's connection has failed.
func (m *Mesh) PeerDown(peer packet.NodeID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[peer]
	return ok && p.down
}

// Close shuts the listener, all connections and the per-peer sender
// goroutines down and waits for them.
func (m *Mesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for _, p := range m.peers {
		retirePeerLocked(p)
	}
	for c := range m.accepted {
		c.Close()
	}
	m.mu.Unlock()
	err := m.ln.Close()
	m.wg.Wait()
	return err
}

// NewMeshCluster creates n fully connected localhost mesh nodes sharing the
// given capability profile. The returned cleanup closes every node.
func NewMeshCluster(n int, c caps.Caps) ([]*Mesh, func(), error) {
	return newWallCluster(n, func(node packet.NodeID) (*Mesh, error) {
		return NewMesh(node, c, "127.0.0.1:0")
	})
}
