package drivers

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"newmad/internal/caps"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// ErrPeerDown is returned by Post when the destination peer's connection has
// failed. Unlike ErrChannelBusy this is not a scheduling bug: real networks
// lose nodes, and the optimizing layer (or the application above it) decides
// whether to reroute, buffer, or give up.
var ErrPeerDown = errors.New("drivers: peer down")

// maxMeshFrame bounds one encoded frame on the wire. Readers treat a larger
// length prefix as a corrupt stream, so Post enforces the same limit and
// fails at the call site instead of poisoning the link.
const maxMeshFrame = 64 << 20

// Mesh is a real multi-node TCP transport: each node listens on one port,
// dials every peer, and exchanges length-prefixed frames (the same wire
// encoding as the simulated drivers and the Loopback driver). It generalizes
// Loopback from the pairwise localhost case to an N-endpoint mesh suitable
// for multi-machine topologies:
//
//   - One outbound connection per peer, owned by a dedicated sender
//     goroutine (the rail lifecycle in rails.go), so frames to different
//     destinations never serialize behind a shared write lock. A send
//     channel is busy from Post until its frame has been fully written to
//     the destination socket, at which point the idle upcall fires from
//     that peer's sender goroutine.
//   - Peer failure is a first-class event: a write or read error marks the
//     peer down, releases any channels with frames queued toward it (the
//     engine above must not wedge on a dead destination), and makes
//     subsequent Posts to that peer fail with ErrPeerDown. The rest of the
//     mesh keeps running.
//   - Re-dialing a connected peer replaces the connection through an
//     explicit retire→drain→replace transition (redial.go): frames queued
//     on the retired connection drain onto its socket and arrive, or the
//     loss is surfaced through the peer-down handler — never dropped
//     silently.
//
// One Mesh is one *rail* of a node: it advertises exactly one capability
// record. Multi-rail nodes — several NICs, possibly of different
// technologies, emulated here as several TCP connections per peer — run one
// Mesh per rail and hand all of them to the engine (see MultiRail and
// NewMeshRails in multirail.go).
//
// Addresses are ordinary TCP addresses; nothing restricts the mesh to
// localhost. Tests and examples use 127.0.0.1 ephemeral ports, but the same
// driver spans real hosts when given routable listen addresses.
type Mesh struct {
	node  packet.NodeID
	caps  caps.Caps
	mem   memsim.Model
	pacer *wirePacer // non-nil iff caps.EmulateWire

	ln net.Listener

	mu       sync.Mutex
	peers    map[packet.NodeID]*rail
	draining map[*rail]struct{}         // retired rails whose owners are still draining
	inbound  map[packet.NodeID]net.Conn // latest identified inbound conn per peer
	accepted map[net.Conn]struct{}      // live inbound connections
	chans    []bool                     // busy flags, one per send channel
	onIdle   IdleFunc
	onRecv   RecvFunc
	onDown   func(peer packet.NodeID)
	onLost   FrameLossHandler
	lost     uint64 // frames reclaimed from failed connections
	closed   bool
	wg       sync.WaitGroup
}

var _ Driver = (*Mesh)(nil)
var _ WallDriver = (*Mesh)(nil)

// NewMesh creates a node endpoint listening on the given TCP address
// ("127.0.0.1:0" for an ephemeral localhost port, ":0" or a routable
// host:port to span machines). Wire the topology with Dial, or use
// NewMeshCluster for the all-pairs localhost case.
func NewMesh(node packet.NodeID, c caps.Caps, listen string) (*Mesh, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	m := &Mesh{
		node:     node,
		caps:     c,
		mem:      memsim.DefaultModel(),
		ln:       ln,
		peers:    make(map[packet.NodeID]*rail),
		draining: make(map[*rail]struct{}),
		inbound:  make(map[packet.NodeID]net.Conn),
		accepted: make(map[net.Conn]struct{}),
		chans:    make([]bool, c.Channels),
	}
	if c.EmulateWire {
		m.pacer = newWirePacer(c.Bandwidth)
	}
	m.wg.Add(1)
	go m.acceptLoop()
	return m, nil
}

// Addr returns the listener address other nodes dial.
func (m *Mesh) Addr() string { return m.ln.Addr().String() }

func (m *Mesh) acceptLoop() {
	defer m.wg.Done()
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return // listener closed
		}
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			c.Close()
			return
		}
		m.accepted[c] = struct{}{}
		m.mu.Unlock()
		m.wg.Add(1)
		go m.reader(c)
	}
}

// reader drains one inbound connection: hello, then length-prefixed frames.
// A read error (peer crashed, connection reset, or local shutdown) ends the
// goroutine cleanly and — if this was still the peer's latest connection —
// marks the sending peer down so the failure is visible on this side too.
func (m *Mesh) reader(c net.Conn) {
	defer m.wg.Done()
	defer func() {
		m.mu.Lock()
		delete(m.accepted, c)
		m.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReader(c)
	var hello [4]byte
	if _, err := io.ReadFull(br, hello[:]); err != nil {
		return
	}
	src := packet.NodeID(binary.BigEndian.Uint32(hello[:]))
	m.mu.Lock()
	m.inbound[src] = c
	m.mu.Unlock()
	var lenbuf [4]byte
	for {
		if _, err := io.ReadFull(br, lenbuf[:]); err != nil {
			m.inboundFailed(src, c)
			return
		}
		n := binary.BigEndian.Uint32(lenbuf[:])
		if n == 0 {
			// Graceful retire marker: the peer replaced this connection (a
			// re-dial) and has drained it. Unregister so the EOF that
			// follows reads as clean retirement, not as a peer failure —
			// even when the replacement's hello has not been processed yet.
			m.mu.Lock()
			if m.inbound[src] == c {
				delete(m.inbound, src)
			}
			m.mu.Unlock()
			return
		}
		if n > maxMeshFrame {
			m.inboundFailed(src, c)
			return // corrupt stream
		}
		// The frame struct and its wire buffer come from the packet pools.
		// Ownership travels with the frame: the receive handler chain
		// (injectors, the engine's dispatcher) borrows it, and whoever
		// consumes it terminally calls packet.ReleaseFrame, which recycles
		// the buffer unless a protocol engine pinned it (escaping bulk).
		buf := packet.GetBuf(int(n))
		if _, err := io.ReadFull(br, buf.B); err != nil {
			packet.PutBuf(buf)
			m.inboundFailed(src, c)
			return
		}
		f := packet.AcquireFrame()
		if _, err := packet.DecodeInto(f, buf.B); err != nil {
			packet.ReleaseFrame(f)
			packet.PutBuf(buf)
			m.inboundFailed(src, c)
			return
		}
		f.SetBacking(buf)
		m.mu.Lock()
		h := m.onRecv
		m.mu.Unlock()
		if h != nil {
			h(src, f)
		} else {
			packet.ReleaseFrame(f)
		}
	}
}

// Name identifies the endpoint; the capability profile name distinguishes
// the rails of a multi-rail node.
func (m *Mesh) Name() string { return fmt.Sprintf("mesh:%s@n%d", m.caps.Name, m.node) }

// Node returns the local node id.
func (m *Mesh) Node() packet.NodeID { return m.node }

// Caps returns the capability record used for optimization decisions.
func (m *Mesh) Caps() caps.Caps { return m.caps }

// Mem returns the host memory model.
func (m *Mesh) Mem() memsim.Model { return m.mem }

// NumChannels returns the configured send-unit count.
func (m *Mesh) NumChannels() int { return len(m.chans) }

// ChannelIdle reports availability of channel ch.
func (m *Mesh) ChannelIdle(ch int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.chans[ch]
}

// FirstIdle returns the lowest idle channel.
func (m *Mesh) FirstIdle() (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, busy := range m.chans {
		if !busy {
			return i, true
		}
	}
	return 0, false
}

// Post hands the frame to the destination peer's sender goroutine.
// hostExtra is ignored: on a real transport, preparation already took real
// time. The enqueue happens under the driver lock and the rail queue has
// one slot per channel, so it can never block or race Close.
//
// Wire encoding happens in the rail's owner goroutine, not here: Post runs
// under the optimizer's engine lock, and serializing every payload copy
// there would make rails share one memory bandwidth-bound critical section
// — deferring the copy is what lets N rails encode and write N frames
// genuinely in parallel. The caller must therefore treat the frame and its
// payloads as immutable once posted, exactly as with the simulated drivers
// (which hand the same frame object to the receiving engine).
func (m *Mesh) Post(ch int, f *packet.Frame, _ simnet.Duration) error {
	if ch < 0 || ch >= len(m.chans) {
		return fmt.Errorf("drivers: mesh node %d has no channel %d", m.node, ch)
	}
	if f.Src != m.node {
		return fmt.Errorf("drivers: frame src %d posted on node %d", f.Src, m.node)
	}
	if n := f.WireSize(); n > maxMeshFrame {
		return fmt.Errorf("drivers: frame of %d bytes exceeds the %d-byte mesh limit", n, maxMeshFrame)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("drivers: mesh closed")
	}
	if m.chans[ch] {
		return ErrChannelBusy
	}
	p, ok := m.peers[f.Dst]
	if !ok {
		return fmt.Errorf("drivers: node %d not connected to %d", m.node, f.Dst)
	}
	if p.down {
		return fmt.Errorf("drivers: node %d -> %d: %w", m.node, f.Dst, ErrPeerDown)
	}
	m.chans[ch] = true
	p.q <- railTx{ch: ch, f: f}
	return nil
}

// SetIdleHandler installs the idle upcall (called from sender goroutines).
func (m *Mesh) SetIdleHandler(fn IdleFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onIdle = fn
}

// SetRecvHandler installs the delivery upcall (called from reader
// goroutines).
func (m *Mesh) SetRecvHandler(fn RecvFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onRecv = fn
}

// SetPeerDownHandler installs a callback fired once per failed peer (from
// the goroutine that observed the failure). Optional; installing none means
// failures surface only through ErrPeerDown on Post.
func (m *Mesh) SetPeerDownHandler(fn func(peer packet.NodeID)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onDown = fn
}

// SetFrameLossHandler installs the handler that receives frames reclaimed
// from a failed connection (see FrameLossHandler). Optional; installing
// none restores the historical behavior of dropping undelivered frames
// with the connection. Called from the failed rail's owner goroutine.
func (m *Mesh) SetFrameLossHandler(fn FrameLossHandler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.onLost = fn
}

// framesLost counts and hands reclaimed frames to the loss handler (unless
// the mesh is shutting down, where every loss is expected).
func (m *Mesh) framesLost(peer packet.NodeID, frames []*packet.Frame) {
	if len(frames) == 0 {
		return
	}
	m.mu.Lock()
	h := m.onLost
	closed := m.closed
	m.lost += uint64(len(frames))
	m.mu.Unlock()
	if h != nil && !closed {
		h(peer, frames)
	}
}

// LostFrames returns the number of frames reclaimed from failed
// connections since the mesh was created (whether or not a loss handler
// consumed them).
func (m *Mesh) LostFrames() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lost
}

// Requeue enqueues a frame on the destination peer's rail without
// occupying a send channel — the failover path the multi-rail bundle uses
// to re-route frames reclaimed from a dead sibling rail. The slack beyond
// the per-channel slots is bounded (requeueSlack); a full queue returns
// ErrChannelBusy and the caller retries on a later idle. Ordering relative
// to channel traffic follows queue order, like any post.
func (m *Mesh) Requeue(f *packet.Frame) error {
	if f.Src != m.node {
		return fmt.Errorf("drivers: frame src %d requeued on node %d", f.Src, m.node)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("drivers: mesh closed")
	}
	p, ok := m.peers[f.Dst]
	if !ok {
		return fmt.Errorf("drivers: node %d not connected to %d", m.node, f.Dst)
	}
	if p.down {
		return fmt.Errorf("drivers: node %d -> %d: %w", m.node, f.Dst, ErrPeerDown)
	}
	select {
	case p.q <- railTx{ch: -1, f: f}:
		return nil
	default:
		return fmt.Errorf("drivers: node %d -> %d requeue slack full: %w", m.node, f.Dst, ErrChannelBusy)
	}
}

// BreakPeer forces the connection toward peer down, exactly as if the
// network had severed it: the socket closes (so the owner's next write
// fails and reclaims the queued frames, and the remote reader observes the
// reset), subsequent Posts fail with ErrPeerDown, and the peer-down
// handler fires once. The chaos layer's rail-flap fault; recovery is the
// ordinary re-Dial. Reports whether a live connection was broken.
func (m *Mesh) BreakPeer(peer packet.NodeID) bool {
	m.mu.Lock()
	p, ok := m.peers[peer]
	if !ok || m.closed || p.down {
		m.mu.Unlock()
		return false
	}
	p.down = true
	conn := p.c
	h := m.onDown
	m.mu.Unlock()
	conn.Close()
	if h != nil {
		h(peer)
	}
	return true
}

// Peers returns the ids of connected peers that have not failed, sorted.
func (m *Mesh) Peers() []packet.NodeID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]packet.NodeID, 0, len(m.peers))
	for id, p := range m.peers {
		if !p.down {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PeerDown reports whether the peer's connection has failed.
func (m *Mesh) PeerDown(peer packet.NodeID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[peer]
	return ok && p.down
}

// Draining returns the number of retired rails whose owners are still
// writing out their queues (diagnostic; 0 once every drain has completed).
func (m *Mesh) Draining() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.draining)
}

// Close shuts the listener, all connections and the per-rail sender
// goroutines down and waits for them. In-flight drains are aborted: their
// sockets close, which unwedges blocked writes.
func (m *Mesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for _, p := range m.peers {
		m.retireLocked(p, false)
	}
	for r := range m.draining {
		r.c.Close()
	}
	for c := range m.accepted {
		c.Close()
	}
	m.mu.Unlock()
	err := m.ln.Close()
	m.wg.Wait()
	return err
}

// NewMeshCluster creates n fully connected localhost mesh nodes sharing the
// given capability profile. The returned cleanup closes every node.
func NewMeshCluster(n int, c caps.Caps) ([]*Mesh, func(), error) {
	return newWallCluster(n, func(node packet.NodeID) (*Mesh, error) {
		return NewMesh(node, c, "127.0.0.1:0")
	})
}
