package drivers

import (
	"encoding/binary"
	"errors"
	"net"

	"newmad/internal/packet"
)

// Connection replacement and failure surfacing — the retire→drain→replace
// half of the rail state machine in rails.go.

// Dial connects this node to a peer's listener. The connection is owned by
// a dedicated sender goroutine; its queue holds at most one frame per send
// channel, so enqueueing under the driver lock never blocks.
//
// Re-dialing an already connected peer — the recovery from ErrPeerDown, or
// a deliberate connection refresh — replaces the connection: new posts go
// to the replacement immediately, while the old rail retires gracefully.
// Its owner drains every frame that was queued before the replacement onto
// the old socket (the peer's reader keeps the superseded connection open
// until it sees EOF, so those frames still arrive), then closes it and
// exits. Pending frames are never marked sent and dropped; if the drain
// itself fails, the loss is surfaced through the peer-down handler and
// ErrPeerDown like any other connection failure.
func (m *Mesh) Dial(peer packet.NodeID, addr string) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	// Identify ourselves so the peer's reader can attribute inbound frames.
	var hello [4]byte
	binary.BigEndian.PutUint32(hello[:], uint32(m.node))
	if _, err := c.Write(hello[:]); err != nil {
		c.Close()
		return err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		c.Close()
		return errors.New("drivers: mesh closed")
	}
	if old, dup := m.peers[peer]; dup {
		m.retireLocked(old, true)
	}
	r := newRail(c, len(m.chans))
	m.peers[peer] = r
	m.wg.Add(1)
	m.mu.Unlock()
	go m.sender(peer, r)
	return nil
}

// retireLocked takes a rail out of service. A graceful retirement (re-dial
// replacement) closes the queue but leaves the socket open so the owner can
// drain the queued frames onto it; an abrupt one (shutdown) also closes the
// socket immediately, which unwedges a blocked write. Idempotent; caller
// holds m.mu.
func (m *Mesh) retireLocked(r *rail, graceful bool) {
	if r.state == railActive {
		r.state = railDraining
		close(r.q)
		m.draining[r] = struct{}{}
	}
	if !graceful {
		r.down = true
		r.c.Close()
	}
}

// railWriteFailed handles a write error on rail r toward peer. Whether r is
// the peer's current connection or a draining predecessor, the error loses
// every frame still queued on r (plus the one mid-write), so the peer as a
// whole goes down: the current rail is marked down (subsequent Posts fail
// with ErrPeerDown), both sockets close, and the peer-down handler fires
// once. Surfacing the loss — rather than letting a retired connection die
// quietly with frames aboard — is what keeps a destination flow from
// wedging with no error anywhere. During shutdown every error is expected
// and silenced.
func (m *Mesh) railWriteFailed(peer packet.NodeID, r *rail) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	r.down = true
	var curConn net.Conn
	fire := false
	if cur, ok := m.peers[peer]; ok && !cur.down {
		cur.down = true
		curConn = cur.c
		fire = true
	}
	h := m.onDown
	m.mu.Unlock()
	r.c.Close()
	if curConn != nil && curConn != r.c {
		curConn.Close()
	}
	if fire && h != nil {
		h(peer)
	}
}

// inboundFailed handles a read error on an inbound connection. Only the
// peer's latest identified connection counts: a connection superseded by a
// re-dial retires through the in-band marker (see reader), so its EOF
// never lands here; and once the replacement's hello registers, late
// errors of older connections are ignored. What remains is the genuine
// failure surface — a connection that died without announcing retirement.
func (m *Mesh) inboundFailed(src packet.NodeID, c net.Conn) {
	m.mu.Lock()
	if m.closed || m.inbound[src] != c {
		m.mu.Unlock()
		return
	}
	delete(m.inbound, src)
	p, ok := m.peers[src]
	if !ok || p.down {
		m.mu.Unlock()
		return
	}
	p.down = true
	conn := p.c
	h := m.onDown
	m.mu.Unlock()
	conn.Close()
	if h != nil {
		h(src)
	}
}
