package drivers

import (
	"encoding/binary"
	"net"
	"sync"
	"time"

	"newmad/internal/packet"
)

// The rail lifecycle.
//
// One rail is one TCP connection toward one peer. Exactly one goroutine —
// the rail's owner, started by Dial — writes to the socket, and in the
// graceful paths it is also the only goroutine that closes it. Every state
// transition happens under Mesh.mu:
//
//	       Dial                Dial (replace)           queue drained
//	───▶ railActive ─────────▶ railDraining ──────────▶ railClosed
//	         │                      │                        ▲
//	         │ Close                │ write error            │
//	         └──────────────────────┴── down=true ───────────┘
//	                                    (loss surfaced via onDown /
//	                                     ErrPeerDown, never silent)
//
// railActive: the rail is m.peers[peer]; Post enqueues frames, the owner
// writes them. railDraining: a re-Dial installed a replacement. The queue
// is closed but the socket stays open: the owner keeps writing the frames
// that were queued before the replacement (the drain), announces the
// retirement in-band, then closes the socket and exits. Frames queued on
// the retired connection therefore arrive; they are never marked sent and
// dropped. railClosed: the owner has exited and the socket is closed.
//
// A write error at any point sets the orthogonal down flag. If it strikes
// during a drain, the frames still queued on the dying connection are lost
// with it, so the peer as a whole is taken down (the replacement included):
// the loss surfaces through the peer-down handler and ErrPeerDown instead
// of wedging the destination flow silently. Close retires abruptly — it
// closes sockets immediately to unwedge blocked writes — and the closed
// flag silences every error path.
type rail struct {
	c     net.Conn
	q     chan railTx
	state railState
	down  bool
}

type railState uint8

const (
	// railActive: current connection for its peer; accepts posts.
	railActive railState = iota
	// railDraining: replaced by a re-Dial; owner is writing out the queue.
	railDraining
	// railClosed: owner exited, socket closed.
	railClosed
)

// railTx is one queued frame: the channel it occupies and the frame itself.
// Encoding is deferred to the rail's owner (see Mesh.Post), so the payload
// copy runs on the rail's goroutine instead of under the engine lock. A
// requeued frame (failover traffic re-routed from a dead sibling rail, see
// Mesh.Requeue) carries ch == -1: it occupies no send channel and releases
// none.
type railTx struct {
	ch int
	f  *packet.Frame
}

// maxScratch bounds the header scratch a sender keeps between frames;
// anything larger is released back to the GC after the write. Since the
// scratch holds only frame and sub-packet headers (payloads travel by
// reference through the gather list), hitting this bound takes a
// pathologically wide aggregate.
const maxScratch = 1 << 16

// requeueSlack is the extra queue capacity reserved for failover requeues
// beyond the one-slot-per-channel guarantee Post relies on. A full slack
// makes Requeue fail (the caller holds the frame and retries on the next
// idle), never blocks.
const requeueSlack = 64

// newRail builds the rail for a freshly dialed connection. The queue holds
// at most one frame per send channel plus the failover slack, so
// enqueueing under the driver lock never blocks.
func newRail(c net.Conn, slots int) *rail {
	return &rail{c: c, q: make(chan railTx, slots+requeueSlack)}
}

// sender is the rail's owner goroutine: it writes each queued frame
// atomically as one vectored write — the 4-byte length prefix and every
// frame/sub-packet header come from a reused scratch block, the payload
// slices are handed to writev as-is, so payload bytes go from application
// memory to the socket without an intermediate copy — and then releases
// the channel that carried it. A successfully written frame is terminally
// consumed here: the owner returns it to the frame pool. On a write error
// the peer is taken down (railWriteFailed) and every frame still aboard —
// the one that failed mid-write plus everything queued behind it — is
// reclaimed and handed to the frame-loss handler (ownership moves back to
// the layer above, so reclaimed frames are NOT released), so the layer
// above can fail the frames over onto a surviving rail instead of losing
// them with the connection. The goroutine keeps draining so every channel
// pointed at the dead connection is released — the engine above sees idle
// upcalls, not a wedged send unit. When the queue closes (retirement) the
// owner finishes the drain and disposes of the socket.
func (m *Mesh) sender(peer packet.NodeID, r *rail) {
	defer m.wg.Done()
	broken := false
	var (
		vecScratch [][]byte // reused gather-list backing
		meta       []byte   // reused header scratch; gather segments alias it
	)
	for tx := range r.q {
		if !broken {
			wire := tx.f.WireSize()
			meta = append(meta[:0], 0, 0, 0, 0)
			binary.BigEndian.PutUint32(meta[0:4], uint32(wire))
			vecScratch, meta = tx.f.EncodeVec(vecScratch[:0], meta)
			bufs := net.Buffers(vecScratch)
			_, err := bufs.WriteTo(r.c)
			for i := range vecScratch {
				vecScratch[i] = nil // drop payload refs; the gather backing is reused
			}
			if err != nil {
				broken = true
				m.railWriteFailed(peer, r)
				// The peer is marked down under m.mu, so no new frame can
				// enqueue: reclaim everything aboard right now rather than
				// waiting for retirement — failover wants the frames back
				// while the traffic they belong to is still in flight.
				lost := []*packet.Frame{tx.f}
				var chans []int
				if tx.ch >= 0 {
					chans = append(chans, tx.ch)
				}
			reclaim:
				for {
					select {
					case tx2, ok := <-r.q:
						if !ok {
							break reclaim
						}
						lost = append(lost, tx2.f)
						if tx2.ch >= 0 {
							chans = append(chans, tx2.ch)
						}
					default:
						break reclaim
					}
				}
				m.framesLost(peer, lost)
				for _, ch := range chans {
					m.releaseChannel(ch)
				}
				continue
			}
			// The frame is on the socket: this owner was its last user.
			packet.ReleaseFrame(tx.f)
			if m.pacer != nil {
				m.pacer.serialize(wire + m.caps.PacketHeader)
			}
			if cap(meta) > maxScratch {
				// Don't let one pathologically wide aggregate pin a large
				// header block to this connection for its lifetime.
				meta = nil
			}
		} else {
			// A straggler that raced the reclaim above: same treatment.
			m.framesLost(peer, []*packet.Frame{tx.f})
		}
		if tx.ch >= 0 {
			m.releaseChannel(tx.ch)
		}
	}
	// Queue closed and drained. Announce the graceful retirement in-band (a
	// zero length prefix) so the peer's reader unregisters this connection
	// instead of reading the imminent EOF as a failure — without the
	// marker, an EOF processed before the replacement's hello would mark a
	// healthy peer down.
	if !broken {
		var zero [4]byte
		r.c.Write(zero[:])
	}
	m.railRetired(r)
}

// wirePacer enforces a capability record's bandwidth class on a real-socket
// rail (caps.EmulateWire): every frame reserves a serialization slot on the
// rail's emulated wire — one pipe shared by all peers, like a NIC's
// serializer — and the sender holds its channel busy until the slot has
// drained. Kernel sockets move the bytes as fast as they like; the pacing
// is what the optimizer observes, so a plain TCP rail behaves like the
// technology its record describes.
type wirePacer struct {
	bandwidth float64 // bytes per second

	mu       sync.Mutex
	nextFree time.Time
}

func newWirePacer(bandwidth float64) *wirePacer {
	return &wirePacer{bandwidth: bandwidth}
}

// serialize reserves the wire for n bytes and sleeps until the reservation
// has drained.
func (p *wirePacer) serialize(n int) {
	d := time.Duration(float64(n) / p.bandwidth * float64(time.Second))
	now := time.Now()
	p.mu.Lock()
	start := p.nextFree
	if now.After(start) {
		start = now
	}
	end := start.Add(d)
	p.nextFree = end
	p.mu.Unlock()
	time.Sleep(end.Sub(now))
}

// releaseChannel frees one send channel and fires the idle upcall.
func (m *Mesh) releaseChannel(ch int) {
	m.mu.Lock()
	m.chans[ch] = false
	h := m.onIdle
	closed := m.closed
	m.mu.Unlock()
	if h != nil && !closed {
		h(ch)
	}
}

// railRetired finalizes an owner's exit: the socket is closed (idempotent —
// the error paths may have closed it already) and the rail leaves the
// draining set so Close stops tracking it.
func (m *Mesh) railRetired(r *rail) {
	r.c.Close()
	m.mu.Lock()
	r.state = railClosed
	delete(m.draining, r)
	m.mu.Unlock()
}
