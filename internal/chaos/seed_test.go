package chaos

import (
	"flag"
	"testing"
)

// -seed overrides the seed of every randomized test in this package, and a
// failing randomized test always logs the seed it ran with — so a red CI
// run is replayable locally with `go test ./internal/chaos -seed=N`.
var flagSeed = flag.Uint64("seed", 0, "override the seed of randomized tests (0 = per-test default)")

// testSeed resolves a randomized test's seed (flag wins over the per-test
// default) and arranges for the seed to be logged if the test fails.
func testSeed(t *testing.T, def uint64) uint64 {
	seed := def
	if *flagSeed != 0 {
		seed = *flagSeed
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("replay: go test ./internal/chaos -run '^%s$' -seed=%d", t.Name(), seed)
		}
	})
	return seed
}
