package chaos

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"newmad/internal/simnet"
)

// --- Script edge cases -----------------------------------------------------

// A zero-duration fault is a down and a heal at the same instant. The stable
// sort must keep the authored down-before-heal order, or the executor would
// heal a link that is not yet broken and then break it forever.
func TestScriptZeroDurationKeepsDownBeforeHeal(t *testing.T) {
	s := Script{Events: []Event{
		{At: 5 * time.Millisecond, Op: OpRailHeal, Node: 0, Peer: 1, Rail: 0},
		{At: 5 * time.Millisecond, Op: OpRailDown, Node: 0, Peer: 1, Rail: 0},
		{At: 0, Op: OpPartition, Node: 2, Peer: 3},
		{At: 0, Op: OpHeal, Node: 2, Peer: 3},
	}}
	got := s.Sorted()
	// Same-instant events keep authored order: heal-then-down at 5ms stays
	// heal-then-down (the author wrote it; the DSL does not reorder), and
	// the partition pair at 0 stays partition-then-heal.
	if got[0].Op != OpPartition || got[1].Op != OpHeal {
		t.Fatalf("t=0 pair reordered: %v then %v", got[0], got[1])
	}
	if got[2].Op != OpRailHeal || got[3].Op != OpRailDown {
		t.Fatalf("t=5ms pair reordered: %v then %v", got[2], got[3])
	}
	if err := s.Validate(4, 1); err != nil {
		t.Fatalf("zero-duration script invalid: %v", err)
	}
}

// Overlapping partitions of the same pair are legal script data; the
// executor treats down/heal as idempotent state changes, so the DSL must not
// reject or collapse them.
func TestScriptOverlappingPartitionsValidate(t *testing.T) {
	s := Script{Events: []Event{
		{At: 0, Op: OpPartition, Node: 0, Peer: 1},
		{At: 1 * time.Millisecond, Op: OpPartition, Node: 0, Peer: 1},
		{At: 2 * time.Millisecond, Op: OpHeal, Node: 0, Peer: 1},
		{At: 3 * time.Millisecond, Op: OpHeal, Node: 0, Peer: 1},
	}}
	if err := s.Validate(2, 1); err != nil {
		t.Fatalf("overlapping partitions rejected: %v", err)
	}
	if got := len(s.Sorted()); got != 4 {
		t.Fatalf("Sorted collapsed events: %d of 4", got)
	}
}

// A heal authored before any down is valid script data too — healing an
// intact link is a no-op at execution time.
func TestScriptHealBeforeDownValidates(t *testing.T) {
	s := Script{Events: []Event{
		{At: 0, Op: OpRailHeal, Node: 0, Peer: 1, Rail: 0},
		{At: time.Millisecond, Op: OpRailDown, Node: 0, Peer: 1, Rail: 0},
	}}
	if err := s.Validate(2, 1); err != nil {
		t.Fatalf("heal-before-down rejected: %v", err)
	}
	got := s.Sorted()
	if got[0].Op != OpRailHeal || got[1].Op != OpRailDown {
		t.Fatal("sort broke heal-before-down ordering")
	}
}

func TestScriptValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"negative offset", Event{At: -time.Millisecond, Op: OpPartition, Node: 0, Peer: 1}},
		{"unknown op", Event{Op: numOps, Node: 0, Peer: 1}},
		{"node out of range", Event{Op: OpPartition, Node: 9, Peer: 1}},
		{"peer out of range", Event{Op: OpPartition, Node: 0, Peer: 9}},
		{"self peer", Event{Op: OpPartition, Node: 1, Peer: 1}},
		{"rail out of range", Event{Op: OpRailDown, Node: 0, Peer: 1, Rail: 5}},
	}
	for _, c := range cases {
		s := Script{Events: []Event{c.ev}}
		if err := s.Validate(4, 2); err == nil {
			t.Errorf("%s: Validate accepted %v", c.name, c.ev)
		}
	}
	// Crash ignores Peer entirely — a garbage peer must not fail validation.
	s := Script{Events: []Event{{Op: OpCrash, Node: 0, Peer: 99}}}
	if err := s.Validate(4, 2); err != nil {
		t.Fatalf("crash with ignored peer rejected: %v", err)
	}
}

// --- Trace.Diff round-trip property ---------------------------------------

// Property: replaying the events of one trace into another always yields an
// empty Diff (round trip), and any single-event mutation yields a non-empty
// Diff that names the diverging index.
func TestTraceDiffRoundTripProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := simnet.NewRNG(seed)
		count := int(n%16) + 1
		var a Trace
		for i := 0; i < count; i++ {
			a.Record(Event{
				At:   time.Duration(rng.Intn(1000)) * time.Microsecond,
				Op:   Op(rng.Intn(int(numOps))),
				Node: rng.Intn(8),
				Peer: rng.Intn(8),
				Rail: rng.Intn(2),
			})
		}
		// Round trip: replay into a fresh trace, expect equality.
		var b Trace
		for _, e := range a.Events() {
			b.Record(e)
		}
		if d := a.Diff(&b); d != "" {
			t.Logf("seed=%d: round trip diverged: %s", seed, d)
			return false
		}
		// Mutate one event; Diff must localize it.
		var c Trace
		mutate := rng.Intn(count)
		for i, e := range a.Events() {
			if i == mutate {
				e.Node = e.Node + 100
			}
			c.Record(e)
		}
		d := a.Diff(&c)
		return d != "" && strings.Contains(d, "diverges")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceDiffLengthMismatch(t *testing.T) {
	var a, b Trace
	e := Event{At: time.Millisecond, Op: OpCrash, Node: 3}
	a.Record(e)
	if d := a.Diff(&b); !strings.Contains(d, "trace B ends") {
		t.Fatalf("short B diff = %q", d)
	}
	if d := b.Diff(&a); !strings.Contains(d, "trace A ends") {
		t.Fatalf("short A diff = %q", d)
	}
}

// --- GroupScript resolution ------------------------------------------------

func testGroups() map[string][]int {
	return map[string][]int{
		"edge": {0, 1, 2, 3},
		"core": {4, 5},
	}
}

func TestGroupScriptResolveDeterministic(t *testing.T) {
	g := GroupScript{Events: []GroupEvent{
		{At: time.Millisecond, Op: OpRailDown, For: 2 * time.Millisecond, Group: "edge", Peer: "core", Rail: -1, Count: 3},
		{At: 5 * time.Millisecond, Op: OpPartition, For: time.Millisecond, Group: "edge", Count: 2},
		{At: 8 * time.Millisecond, Op: OpCrash, Group: "core", Count: 1},
	}}
	resolve := func() Script {
		s, err := g.Resolve(testGroups(), 2, simnet.NewRNG(99))
		if err != nil {
			t.Fatalf("Resolve: %v", err)
		}
		return s
	}
	a, b := resolve(), resolve()
	if len(a.Events) != len(b.Events) {
		t.Fatalf("resolution sizes differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	// 3 rail edges + 2 partition edges → 5 down/heal pairs, plus 1 crash.
	if want := 5*2 + 1; len(a.Events) != want {
		t.Fatalf("resolved %d events, want %d", len(a.Events), want)
	}
	if err := a.Validate(6, 2); err != nil {
		t.Fatalf("resolved script invalid: %v", err)
	}
}

// Each down must be paired with a heal on the exact same edge at At+For —
// the core guarantee that makes group faults self-healing.
func TestGroupScriptPairsHealWithDown(t *testing.T) {
	g := GroupScript{Events: []GroupEvent{
		{At: time.Millisecond, Op: OpRailDown, For: 3 * time.Millisecond, Group: "edge", Peer: "core", Rail: 1, Count: 4},
	}}
	s, err := g.Resolve(testGroups(), 2, simnet.NewRNG(5))
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	type edge struct {
		node, peer, rail int
	}
	downs := map[edge]time.Duration{}
	for _, e := range s.Events {
		k := edge{e.Node, e.Peer, e.Rail}
		switch e.Op {
		case OpRailDown:
			downs[k] = e.At
		case OpRailHeal:
			at, ok := downs[k]
			if !ok {
				t.Fatalf("heal for never-downed edge %v", e)
			}
			if e.At != at+3*time.Millisecond {
				t.Fatalf("heal at %v, want down+3ms=%v", e.At, at+3*time.Millisecond)
			}
			delete(downs, k)
		default:
			t.Fatalf("unexpected op %v", e.Op)
		}
	}
	if len(downs) != 0 {
		t.Fatalf("%d downs never healed", len(downs))
	}
}

// For==0 resolves to a down/heal pair at the same instant with down first
// after the stable sort — the zero-duration blip the executor must survive.
func TestGroupScriptZeroDuration(t *testing.T) {
	g := GroupScript{Events: []GroupEvent{
		{At: time.Millisecond, Op: OpPartition, For: 0, Group: "core"},
	}}
	s, err := g.Resolve(testGroups(), 1, simnet.NewRNG(1))
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	got := s.Sorted()
	if len(got) != 2 || got[0].Op != OpPartition || got[1].Op != OpHeal || got[0].At != got[1].At {
		t.Fatalf("zero-duration pair = %v", got)
	}
}

func TestGroupScriptResolveRejections(t *testing.T) {
	rng := func() *simnet.RNG { return simnet.NewRNG(3) }
	cases := []struct {
		name string
		ev   GroupEvent
	}{
		{"unknown group", GroupEvent{Op: OpCrash, Group: "ghost"}},
		{"unknown peer group", GroupEvent{Op: OpPartition, Group: "edge", Peer: "ghost"}},
		{"authored heal", GroupEvent{Op: OpRailHeal, Group: "edge", Peer: "core"}},
		{"authored heal-all", GroupEvent{Op: OpHeal, Group: "edge", Peer: "core"}},
		{"negative offset", GroupEvent{At: -time.Second, Op: OpCrash, Group: "edge"}},
		{"negative duration", GroupEvent{Op: OpPartition, For: -time.Second, Group: "edge", Peer: "core"}},
		{"negative count", GroupEvent{Op: OpCrash, Group: "edge", Count: -2}},
		{"crash count over group", GroupEvent{Op: OpCrash, Group: "core", Count: 3}},
		{"edges exceed pairs", GroupEvent{Op: OpPartition, Group: "core", Count: 3}},
	}
	for _, c := range cases {
		g := GroupScript{Events: []GroupEvent{c.ev}}
		if _, err := g.Resolve(testGroups(), 2, rng()); err == nil {
			t.Errorf("%s: Resolve accepted %+v", c.name, c.ev)
		}
	}
}

// A single-member group can still crash but cannot partition against itself.
func TestGroupScriptSelfPairImpossible(t *testing.T) {
	groups := map[string][]int{"solo": {7}}
	g := GroupScript{Events: []GroupEvent{{Op: OpPartition, Group: "solo"}}}
	if _, err := g.Resolve(groups, 1, simnet.NewRNG(2)); err == nil {
		t.Fatal("partition within single-member group accepted")
	}
	g = GroupScript{Events: []GroupEvent{{Op: OpCrash, Group: "solo"}}}
	s, err := g.Resolve(groups, 1, simnet.NewRNG(2))
	if err != nil || len(s.Events) != 1 || s.Events[0].Node != 7 {
		t.Fatalf("solo crash: %v %v", s.Events, err)
	}
}
