// Package chaos is the repository's deterministic fault-injection layer:
// it wraps transfer-layer drivers in frame-level fault injectors and
// describes connection-level failure scenarios as seed-replayable scripts,
// so every resilience property the engine claims — failover, rendezvous
// retry, exactly-once delivery — is tested against faults that can be
// reproduced event-for-event from a single seed.
//
// Two mechanisms, two fault granularities:
//
//   - An Injector wraps one drivers.Driver (one rail) and applies
//     probabilistic per-frame Rules on the receive path: drop, corrupt,
//     delay, reorder. Receive-side injection never disturbs the send-unit
//     accounting the optimizer depends on, and the decision stream is
//     drawn from an explicitly seeded simnet.RNG — deterministic per
//     *frame arrival sequence*. Over a wall-clock transport with several
//     concurrent sources, arrival interleaving (and so the per-frame fault
//     pattern) varies run to run; only the scripted schedule below is
//     replayable bit-for-bit.
//   - A Script is a timed list of connection-level events — rail flaps,
//     node-pair partitions, node crashes, heals — generated
//     deterministically from a seed (e.g. RollingFlaps) and executed by the
//     cluster runner (internal/cluster), which records each executed event
//     into a Trace. Two runs from the same seed produce identical traces;
//     experiment X5 asserts exactly that.
//
// The fault taxonomy is honest about recoverability (DESIGN.md §3.3):
// delays, reorders, flaps, partitions and control-frame drops are fully
// recoverable — the engine's failover queue, rendezvous retry, and the
// reassembler's sequence-number dedupe turn them back into exactly-once
// delivery. Silent drops and corruptions of *data* frames model faults no
// transport layer can undo without an end-to-end retransmit protocol;
// tests inject them to prove graceful degradation (no wedge, no panic, no
// duplicate), not delivery.
package chaos

import (
	"fmt"
	"sync"
	"time"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// FaultKind enumerates the frame-level faults an Injector can apply.
type FaultKind uint8

const (
	// Drop discards the frame on arrival.
	Drop FaultKind = iota
	// Corrupt flips random bits in the frame's wire encoding before
	// decoding it again: one that no longer decodes is dropped, one that
	// still decodes arrives damaged — the protocol layer rejects
	// *structural* damage (size mismatches, unknown tokens), while a
	// payload-bit flip is delivered corrupted, since the wire format
	// carries no checksum. Both outcomes are counted.
	Corrupt
	// Delay holds the frame for the rule's Delay before delivering it.
	Delay
	// Reorder holds the frame until the next frame from the same source
	// passes it, swapping their arrival order.
	Reorder
	numFaultKinds
)

// String returns the fault mnemonic.
func (k FaultKind) String() string {
	names := [...]string{"drop", "corrupt", "delay", "reorder"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Rule is one probabilistic per-frame fault.
type Rule struct {
	// Kind selects the fault.
	Kind FaultKind
	// Prob is the per-frame probability in [0, 1].
	Prob float64
	// Frames restricts the rule to the listed frame kinds; empty matches
	// every kind. Restricting drops to RTS/CTS keeps a scenario inside the
	// recoverable taxonomy (the rendezvous retry re-sends control frames;
	// nothing re-sends a silently dropped data frame).
	Frames []packet.FrameKind
	// Delay is the hold time for Delay rules.
	Delay time.Duration
}

// Validate reports the first inconsistency in the rule.
func (r Rule) Validate() error {
	switch {
	case r.Kind >= numFaultKinds:
		return fmt.Errorf("chaos: unknown fault kind %d", r.Kind)
	case r.Prob < 0 || r.Prob > 1:
		return fmt.Errorf("chaos: probability %v outside [0,1]", r.Prob)
	case r.Kind == Delay && r.Delay <= 0:
		return fmt.Errorf("chaos: delay rule with no delay")
	}
	return nil
}

func (r Rule) matches(k packet.FrameKind) bool {
	if len(r.Frames) == 0 {
		return true
	}
	for _, fk := range r.Frames {
		if fk == k {
			return true
		}
	}
	return false
}

// Injector wraps one rail in the frame-level fault rules. It implements
// drivers.Driver (and forwards the optional failure interfaces), so an
// engine runs over injected rails unchanged.
type Injector struct {
	inner drivers.Driver
	rules []Rule

	mu       sync.Mutex
	rng      *simnet.RNG
	onRecv   drivers.RecvFunc
	held     map[packet.NodeID]*heldFrame // one reorder slot per source
	injected [numFaultKinds]uint64
	closed   bool
	wg       sync.WaitGroup
}

type heldFrame struct {
	f     *packet.Frame
	timer *time.Timer // fallback release if no frame follows
}

// NewInjector wraps d with the given rules, drawing fault decisions from
// rng (which the injector owns from here on).
func NewInjector(d drivers.Driver, rng *simnet.RNG, rules ...Rule) (*Injector, error) {
	for _, r := range rules {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	if rng == nil {
		rng = simnet.NewRNG(0)
	}
	inj := &Injector{
		inner: d,
		rules: append([]Rule(nil), rules...),
		rng:   rng,
		held:  make(map[packet.NodeID]*heldFrame),
	}
	return inj, nil
}

// Inner returns the wrapped driver.
func (in *Injector) Inner() drivers.Driver { return in.inner }

// Injected returns how many faults of kind k the injector has applied.
func (in *Injector) Injected(k FaultKind) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if int(k) >= len(in.injected) {
		return 0
	}
	return in.injected[k]
}

// InjectedTotal returns the total fault count across kinds.
func (in *Injector) InjectedTotal() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := uint64(0)
	for _, v := range in.injected {
		n += v
	}
	return n
}

// SetRecvHandler interposes the fault rules between the rail and fn.
func (in *Injector) SetRecvHandler(fn drivers.RecvFunc) {
	in.mu.Lock()
	in.onRecv = fn
	in.mu.Unlock()
	if fn == nil {
		in.inner.SetRecvHandler(nil)
		return
	}
	in.inner.SetRecvHandler(in.recv)
}

// recv applies the first matching rule drawn for this frame. At most one
// fault applies per frame: compound faults obscure which mechanism
// recovered what.
func (in *Injector) recv(src packet.NodeID, f *packet.Frame) {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		// Terminal consumption: a wire frame swallowed here would leak
		// its pooled backing buffer (DESIGN.md §5). Unbacked frames —
		// simulated fabrics, hand-built tests — are left alone.
		if f.Backed() {
			packet.ReleaseFrame(f)
		}
		return
	}
	var verdict *Rule
	for i := range in.rules {
		r := &in.rules[i]
		if !r.matches(f.Kind) {
			continue
		}
		// Always consume one draw per matching rule, whether or not it
		// fires: the decision stream then depends only on the frame
		// sequence, not on which earlier rule happened to fire.
		if in.rng.Float64() < r.Prob && verdict == nil {
			verdict = r
		}
	}
	if verdict == nil {
		deliver := in.takeHeldLocked(src)
		h := in.onRecv
		in.mu.Unlock()
		if deliver != nil && h != nil {
			h(src, deliver)
		}
		if h != nil {
			h(src, f)
		}
		return
	}
	in.injected[verdict.Kind]++
	switch verdict.Kind {
	case Drop:
		in.mu.Unlock()
		// The dropped frame dies here — the injector is its terminal
		// consumer, so a pooled wire frame recycles instead of leaking.
		if f.Backed() {
			packet.ReleaseFrame(f)
		}
	case Corrupt:
		h := in.onRecv
		in.mu.Unlock()
		cf := in.corrupt(f)
		// The corrupted copy (which aliases its own encoding) travels on;
		// the original is terminally consumed here.
		if f.Backed() {
			packet.ReleaseFrame(f)
		}
		if cf != nil && h != nil {
			h(src, cf)
		}
	case Delay:
		d := verdict.Delay
		h := in.onRecv
		in.wg.Add(1)
		in.mu.Unlock()
		time.AfterFunc(d, func() {
			defer in.wg.Done()
			in.mu.Lock()
			closed := in.closed
			in.mu.Unlock()
			if !closed && h != nil {
				h(src, f)
			} else if f.Backed() {
				// Nobody downstream will consume the held frame.
				packet.ReleaseFrame(f)
			}
		})
	case Reorder:
		displaced := in.holdLocked(src, f)
		h := in.onRecv
		in.mu.Unlock()
		if displaced != nil && h != nil {
			h(src, displaced)
		}
	}
}

// corrupt flips 1–4 random bits in the frame's encoding and re-decodes.
// The draw count is fixed per invocation so the decision stream stays
// aligned across runs.
func (in *Injector) corrupt(f *packet.Frame) *packet.Frame {
	enc := f.Encode(nil)
	in.mu.Lock()
	flips := in.rng.Range(1, 4)
	for i := 0; i < flips; i++ {
		enc[in.rng.Intn(len(enc))] ^= byte(1 << in.rng.Intn(8))
	}
	in.mu.Unlock()
	cf, _, err := packet.Decode(enc)
	if err != nil {
		return nil // corruption broke the framing: the frame is gone
	}
	return cf
}

// holdLocked stashes f in the source's reorder slot and arms a fallback
// release so a frame with no successor still arrives. A previous occupant
// is displaced and returned for immediate delivery (two swaps degenerate
// to a shuffle, which is fine — the reassembler reorders by sequence
// number); nil when the slot was empty or its timer already owns delivery.
func (in *Injector) holdLocked(src packet.NodeID, f *packet.Frame) *packet.Frame {
	var displaced *packet.Frame
	if prev := in.held[src]; prev != nil {
		if prev.timer.Stop() {
			in.wg.Done()
			displaced = prev.f
			delete(in.held, src)
		}
	}
	hf := &heldFrame{f: f}
	in.held[src] = hf
	in.wg.Add(1)
	hf.timer = time.AfterFunc(5*time.Millisecond, func() {
		defer in.wg.Done()
		in.mu.Lock()
		if in.held[src] != hf || in.closed {
			in.mu.Unlock()
			// A successful Stop elsewhere means this callback never runs,
			// so reaching here makes this timer the frame's last owner:
			// displaced-while-mid-flight or closed, nobody else will
			// deliver or recycle it.
			if hf.f.Backed() {
				packet.ReleaseFrame(hf.f)
			}
			return
		}
		delete(in.held, src)
		h := in.onRecv
		in.mu.Unlock()
		if h != nil {
			h(src, f)
		}
	})
	return displaced
}

// takeHeldLocked removes and returns the source's reorder slot occupant,
// if any — the frame the current arrival is overtaking.
func (in *Injector) takeHeldLocked(src packet.NodeID) *packet.Frame {
	hf := in.held[src]
	if hf == nil {
		return nil
	}
	if !hf.timer.Stop() {
		// The fallback timer already fired (or is mid-flight); it owns
		// delivery.
		return nil
	}
	in.wg.Done() // the stopped timer will never run
	delete(in.held, src)
	return hf.f
}

// Close releases held frames (delivering them — close is not a fault) and
// closes the wrapped driver.
func (in *Injector) Close() error {
	in.mu.Lock()
	if in.closed {
		in.mu.Unlock()
		return nil
	}
	var flush []*heldFrame
	var srcs []packet.NodeID
	for src, hf := range in.held {
		if hf.timer.Stop() {
			in.wg.Done()
			flush = append(flush, hf)
			srcs = append(srcs, src)
		}
	}
	in.held = make(map[packet.NodeID]*heldFrame)
	h := in.onRecv
	in.mu.Unlock()
	for i, hf := range flush {
		if h != nil {
			h(srcs[i], hf.f)
		}
	}
	in.mu.Lock()
	in.closed = true
	in.mu.Unlock()
	in.wg.Wait()
	return in.inner.Close()
}

// --- pass-through Driver surface -----------------------------------------

// Name identifies the injected rail.
func (in *Injector) Name() string { return "chaos:" + in.inner.Name() }

// Node returns the wrapped driver's node id.
func (in *Injector) Node() packet.NodeID { return in.inner.Node() }

// Caps returns the wrapped driver's capability record.
func (in *Injector) Caps() caps.Caps { return in.inner.Caps() }

// Mem returns the wrapped driver's memory model.
func (in *Injector) Mem() memsim.Model { return in.inner.Mem() }

// NumChannels returns the wrapped driver's send-unit count.
func (in *Injector) NumChannels() int { return in.inner.NumChannels() }

// ChannelIdle delegates to the wrapped driver.
func (in *Injector) ChannelIdle(ch int) bool { return in.inner.ChannelIdle(ch) }

// FirstIdle delegates to the wrapped driver.
func (in *Injector) FirstIdle() (int, bool) { return in.inner.FirstIdle() }

// Post delegates to the wrapped driver (faults apply on the receive side).
func (in *Injector) Post(ch int, f *packet.Frame, hostExtra simnet.Duration) error {
	return in.inner.Post(ch, f, hostExtra)
}

// SetIdleHandler delegates to the wrapped driver.
func (in *Injector) SetIdleHandler(fn drivers.IdleFunc) { in.inner.SetIdleHandler(fn) }

// SetFrameLossHandler forwards to the wrapped driver when it reports frame
// loss (drivers.FrameLossNotifier); no-op otherwise.
func (in *Injector) SetFrameLossHandler(fn drivers.FrameLossHandler) {
	if ln, ok := in.inner.(drivers.FrameLossNotifier); ok {
		ln.SetFrameLossHandler(fn)
	}
}

// SetPeerDownHandler forwards to the wrapped driver when it reports peer
// failures (drivers.PeerDownNotifier); no-op otherwise.
func (in *Injector) SetPeerDownHandler(fn func(peer packet.NodeID)) {
	if dn, ok := in.inner.(drivers.PeerDownNotifier); ok {
		dn.SetPeerDownHandler(fn)
	}
}

// PeerDown reports the wrapped driver's peer liveness (drivers.PeerChecker);
// drivers without liveness tracking read as always up.
func (in *Injector) PeerDown(peer packet.NodeID) bool {
	if pc, ok := in.inner.(drivers.PeerChecker); ok {
		return pc.PeerDown(peer)
	}
	return false
}

var _ drivers.Driver = (*Injector)(nil)
var _ drivers.FrameLossNotifier = (*Injector)(nil)
var _ drivers.PeerDownNotifier = (*Injector)(nil)
var _ drivers.PeerChecker = (*Injector)(nil)
