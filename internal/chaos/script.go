package chaos

import (
	"fmt"
	"sort"
	"time"

	"newmad/internal/simnet"
)

// The scenario DSL: a Script is a timed list of connection-level fault
// events against named nodes and rails, executed by the cluster runner
// (internal/cluster.RunScript). Scripts are data — generated from a seed,
// validated, rendered, compared — so a scenario is reproducible
// event-for-event and diffable when it is not.

// Op enumerates the scripted connection-level events.
type Op uint8

const (
	// OpRailDown severs one rail between Node and Peer (both directions
	// observe the break, like a cut cable).
	OpRailDown Op = iota
	// OpRailHeal re-dials one rail between Node and Peer, both directions,
	// and re-pumps the engines so retained frames travel.
	OpRailHeal
	// OpPartition severs every rail between Node and Peer.
	OpPartition
	// OpHeal re-dials every rail between Node and Peer.
	OpHeal
	// OpCrash kills Node outright: engine closed, every rail closed. There
	// is no heal for a crash.
	OpCrash
	numOps
)

// String returns the op mnemonic.
func (o Op) String() string {
	names := [...]string{"rail-down", "rail-heal", "partition", "heal", "crash"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Event is one scripted fault at a scheduled offset from scenario start.
type Event struct {
	// At is the offset from scenario start.
	At time.Duration
	// Op selects the fault.
	Op Op
	// Node is the subject node.
	Node int
	// Peer is the other end of the affected connection(s); ignored by
	// OpCrash.
	Peer int
	// Rail is the rail index for OpRailDown/OpRailHeal; ignored otherwise.
	Rail int
}

// String renders one event.
func (e Event) String() string {
	switch e.Op {
	case OpCrash:
		return fmt.Sprintf("%8v %s n%d", e.At, e.Op, e.Node)
	case OpRailDown, OpRailHeal:
		return fmt.Sprintf("%8v %s n%d~n%d rail %d", e.At, e.Op, e.Node, e.Peer, e.Rail)
	default:
		return fmt.Sprintf("%8v %s n%d~n%d", e.At, e.Op, e.Node, e.Peer)
	}
}

// Script is a complete scenario.
type Script struct {
	Events []Event
}

// Validate checks every event against the cluster shape it will run on.
func (s Script) Validate(nodes, rails int) error {
	for i, e := range s.Events {
		switch {
		case e.At < 0:
			return fmt.Errorf("chaos: event %d at negative offset %v", i, e.At)
		case e.Op >= numOps:
			return fmt.Errorf("chaos: event %d has unknown op %d", i, e.Op)
		case e.Node < 0 || e.Node >= nodes:
			return fmt.Errorf("chaos: event %d targets node %d of %d", i, e.Node, nodes)
		}
		if e.Op != OpCrash {
			if e.Peer < 0 || e.Peer >= nodes || e.Peer == e.Node {
				return fmt.Errorf("chaos: event %d targets peer %d (node %d, cluster of %d)", i, e.Peer, e.Node, nodes)
			}
		}
		if e.Op == OpRailDown || e.Op == OpRailHeal {
			if e.Rail < 0 || e.Rail >= rails {
				return fmt.Errorf("chaos: event %d targets rail %d of %d", i, e.Rail, rails)
			}
		}
	}
	return nil
}

// Sorted returns the events ordered by At (stable, so same-instant events
// keep their authored order).
func (s Script) Sorted() []Event {
	out := append([]Event(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// String renders the whole scenario, one event per line.
func (s Script) String() string {
	out := ""
	for _, e := range s.Sorted() {
		out += e.String() + "\n"
	}
	return out
}

// FlapConfig parameterizes RollingFlaps.
type FlapConfig struct {
	// Nodes and Rails describe the cluster the script will run on.
	Nodes, Rails int
	// Flaps is how many down/heal cycles to schedule.
	Flaps int
	// Every is the interval between consecutive flap starts.
	Every time.Duration
	// DownFor is how long each flapped rail stays down.
	DownFor time.Duration
	// Start offsets the first flap from scenario start.
	Start time.Duration
}

// RollingFlaps generates a deterministic rolling-flap scenario from seed:
// every Every, one (node, peer, rail) edge — drawn from the seeded RNG —
// goes down and heals DownFor later. The same seed and config produce the
// identical event list, which is what makes a chaotic run replayable.
func RollingFlaps(seed uint64, cfg FlapConfig) (Script, error) {
	if cfg.Nodes < 2 || cfg.Rails < 1 || cfg.Flaps < 0 || cfg.Every <= 0 || cfg.DownFor <= 0 {
		return Script{}, fmt.Errorf("chaos: invalid flap config %+v", cfg)
	}
	rng := simnet.NewRNG(seed)
	var s Script
	at := cfg.Start
	for i := 0; i < cfg.Flaps; i++ {
		node := rng.Intn(cfg.Nodes)
		peer := rng.Intn(cfg.Nodes - 1)
		if peer >= node {
			peer++
		}
		rail := rng.Intn(cfg.Rails)
		s.Events = append(s.Events,
			Event{At: at, Op: OpRailDown, Node: node, Peer: peer, Rail: rail},
			Event{At: at + cfg.DownFor, Op: OpRailHeal, Node: node, Peer: peer, Rail: rail},
		)
		at += cfg.Every
	}
	if err := s.Validate(cfg.Nodes, cfg.Rails); err != nil {
		return Script{}, err
	}
	return s, nil
}
