package chaos

import (
	"fmt"
	"sync"
)

// Trace records the fault events a scenario runner executed, in execution
// order, keyed by their *scheduled* offsets — wall-clock jitter belongs to
// the transport, not to the schedule. The runner records an event only
// after executing it successfully, so trace equality between two runs
// asserts that both executed the complete, identical fault schedule
// without error: a heal that failed (or a run that aborted) shows up as a
// shorter trace and a named divergence in Diff. What equality does NOT
// capture is transport-level nondeterminism *within* an event (e.g. which
// individual frames a break caught in flight); those outcomes surface in
// the recovery counters instead. X5's acceptance criterion and the
// determinism unit tests compare exactly this.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// Record appends one executed event.
func (t *Trace) Record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the executed events in execution order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of executed events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Diff compares two traces event-for-event and returns a description of
// the first divergence, or "" when they are identical.
func (t *Trace) Diff(o *Trace) string {
	a, b := t.Events(), o.Events()
	for i := range a {
		if i >= len(b) {
			return fmt.Sprintf("trace B ends at event %d; A continues with %v", i, a[i])
		}
		if a[i] != b[i] {
			return fmt.Sprintf("event %d diverges: A=%v B=%v", i, a[i], b[i])
		}
	}
	if len(b) > len(a) {
		return fmt.Sprintf("trace A ends at event %d; B continues with %v", len(a), b[len(a)])
	}
	return ""
}

// Equal reports whether both traces executed the identical event sequence.
func (t *Trace) Equal(o *Trace) bool { return t.Diff(o) == "" }

// String renders the executed schedule, one event per line.
func (t *Trace) String() string {
	out := ""
	for _, e := range t.Events() {
		out += e.String() + "\n"
	}
	return out
}
