package chaos

import (
	"sync"
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// fakeDriver is a minimal in-memory Driver whose Deliver method plays the
// role of the fabric: whatever the test feeds in arrives at the installed
// recv handler (through the injector, when wrapped).
type fakeDriver struct {
	mu     sync.Mutex
	onRecv drivers.RecvFunc
	posted []*packet.Frame
	closed bool
}

func (d *fakeDriver) Name() string                    { return "fake@n1" }
func (d *fakeDriver) Node() packet.NodeID             { return 1 }
func (d *fakeDriver) Caps() caps.Caps                 { return caps.TCP }
func (d *fakeDriver) Mem() memsim.Model               { return memsim.DefaultModel() }
func (d *fakeDriver) NumChannels() int                { return 2 }
func (d *fakeDriver) ChannelIdle(ch int) bool         { return true }
func (d *fakeDriver) FirstIdle() (int, bool)          { return 0, true }
func (d *fakeDriver) SetIdleHandler(drivers.IdleFunc) {}
func (d *fakeDriver) SetRecvHandler(fn drivers.RecvFunc) {
	d.mu.Lock()
	d.onRecv = fn
	d.mu.Unlock()
}
func (d *fakeDriver) Post(ch int, f *packet.Frame, _ simnet.Duration) error {
	d.mu.Lock()
	d.posted = append(d.posted, f)
	d.mu.Unlock()
	return nil
}
func (d *fakeDriver) Close() error {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	return nil
}
func (d *fakeDriver) Deliver(src packet.NodeID, f *packet.Frame) {
	d.mu.Lock()
	h := d.onRecv
	d.mu.Unlock()
	if h != nil {
		h(src, f)
	}
}

func dataFrame(seq int) *packet.Frame {
	return &packet.Frame{
		Kind: packet.FrameData, Src: 0, Dst: 1,
		Entries: []packet.Entry{{Flow: 1, Msg: 1, Seq: seq, Payload: []byte{byte(seq)}}},
	}
}

// TestInjectorDropDeterministic: the same seed over the same frame
// sequence drops the same frames.
func TestInjectorDropDeterministic(t *testing.T) {
	run := func(seed uint64) []int {
		fd := &fakeDriver{}
		inj, err := NewInjector(fd, simnet.NewRNG(seed), Rule{Kind: Drop, Prob: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		var got []int
		inj.SetRecvHandler(func(_ packet.NodeID, f *packet.Frame) {
			got = append(got, f.Entries[0].Seq)
		})
		for i := 0; i < 200; i++ {
			fd.Deliver(0, dataFrame(i))
		}
		if inj.Injected(Drop) == 0 {
			t.Fatal("nothing dropped at p=0.3 over 200 frames")
		}
		if len(got)+int(inj.Injected(Drop)) != 200 {
			t.Fatalf("accounting: %d delivered + %d dropped != 200", len(got), inj.Injected(Drop))
		}
		return got
	}
	seed := testSeed(t, 7)
	a, b := run(seed), run(seed)
	if len(a) != len(b) {
		t.Fatalf("same seed, different survivor counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverges at survivor %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(seed + 1)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical drop pattern (astronomically unlikely)")
	}
}

// TestInjectorKindFilter: a drop rule scoped to RTS frames never touches
// data frames.
func TestInjectorKindFilter(t *testing.T) {
	fd := &fakeDriver{}
	inj, err := NewInjector(fd, simnet.NewRNG(3),
		Rule{Kind: Drop, Prob: 1.0, Frames: []packet.FrameKind{packet.FrameRTS}})
	if err != nil {
		t.Fatal(err)
	}
	var data, rts int
	inj.SetRecvHandler(func(_ packet.NodeID, f *packet.Frame) {
		switch f.Kind {
		case packet.FrameData:
			data++
		case packet.FrameRTS:
			rts++
		}
	})
	for i := 0; i < 10; i++ {
		fd.Deliver(0, dataFrame(i))
		fd.Deliver(0, &packet.Frame{Kind: packet.FrameRTS, Src: 0, Dst: 1,
			Ctrl: packet.Ctrl{Token: uint64(i + 1), Size: 10}})
	}
	if data != 10 {
		t.Fatalf("data frames delivered: %d of 10 (filter leaked)", data)
	}
	if rts != 0 {
		t.Fatalf("RTS frames delivered: %d of 0 wanted (p=1 drop)", rts)
	}
	if inj.Injected(Drop) != 10 {
		t.Fatalf("drops = %d, want 10", inj.Injected(Drop))
	}
}

// TestInjectorDelayAndReorderLoseNothing: timing faults shuffle arrival,
// never lose or duplicate.
func TestInjectorDelayAndReorderLoseNothing(t *testing.T) {
	fd := &fakeDriver{}
	inj, err := NewInjector(fd, simnet.NewRNG(11),
		Rule{Kind: Delay, Prob: 0.2, Delay: 2 * time.Millisecond},
		Rule{Kind: Reorder, Prob: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[int]int{}
	inj.SetRecvHandler(func(_ packet.NodeID, f *packet.Frame) {
		mu.Lock()
		got[f.Entries[0].Seq]++
		mu.Unlock()
	})
	const n = 300
	for i := 0; i < n; i++ {
		fd.Deliver(0, dataFrame(i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		c := len(got)
		mu.Unlock()
		if c == n {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("delivered %d of %d distinct frames", len(got), n)
	}
	for seq, c := range got {
		if c != 1 {
			t.Fatalf("seq %d delivered %d times", seq, c)
		}
	}
	if inj.Injected(Delay)+inj.Injected(Reorder) == 0 {
		t.Fatal("no timing faults fired at p=0.4 over 300 frames")
	}
}

// TestInjectorCloseFlushesHeld: a frame parked in the reorder slot at
// Close still arrives — close is not a fault.
func TestInjectorCloseFlushesHeld(t *testing.T) {
	fd := &fakeDriver{}
	inj, err := NewInjector(fd, simnet.NewRNG(5), Rule{Kind: Reorder, Prob: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	delivered := 0
	inj.SetRecvHandler(func(packet.NodeID, *packet.Frame) {
		mu.Lock()
		delivered++
		mu.Unlock()
	})
	fd.Deliver(0, dataFrame(0)) // held in the reorder slot
	if err := inj.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if delivered != 1 {
		t.Fatalf("held frame deliveries at close = %d, want 1", delivered)
	}
	if !fd.closed {
		t.Fatal("inner driver not closed")
	}
}

// TestInjectorCorruptCounts: corruption either mangles the decoded frame
// or destroys the framing; both count, neither panics.
func TestInjectorCorruptCounts(t *testing.T) {
	fd := &fakeDriver{}
	inj, err := NewInjector(fd, simnet.NewRNG(9), Rule{Kind: Corrupt, Prob: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	survivors := 0
	inj.SetRecvHandler(func(packet.NodeID, *packet.Frame) { survivors++ })
	const n = 50
	for i := 0; i < n; i++ {
		fd.Deliver(0, dataFrame(i))
	}
	if inj.Injected(Corrupt) != n {
		t.Fatalf("corruptions = %d, want %d", inj.Injected(Corrupt), n)
	}
	if survivors > n {
		t.Fatalf("corruption multiplied frames: %d survivors of %d", survivors, n)
	}
}

// TestRollingFlapsDeterministic: the generator is a pure function of
// (seed, config), and validation catches malformed scripts.
func TestRollingFlapsDeterministic(t *testing.T) {
	cfg := FlapConfig{Nodes: 3, Rails: 2, Flaps: 20,
		Every: 10 * time.Millisecond, DownFor: 4 * time.Millisecond}
	seed := testSeed(t, 42)
	a, err := RollingFlaps(seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RollingFlaps(seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != 40 || len(b.Events) != 40 {
		t.Fatalf("event counts: %d, %d (want 40: down+heal per flap)", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed diverges at event %d: %v vs %v", i, a.Events[i], b.Events[i])
		}
	}
	c, err := RollingFlaps(seed+1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Events {
		if a.Events[i] != c.Events[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds generated the identical scenario")
	}
	// Every down has a heal for the same edge, later.
	for i := 0; i < len(a.Events); i += 2 {
		d, h := a.Events[i], a.Events[i+1]
		if d.Op != OpRailDown || h.Op != OpRailHeal {
			t.Fatalf("pair %d: ops %v, %v", i/2, d.Op, h.Op)
		}
		if d.Node != h.Node || d.Peer != h.Peer || d.Rail != h.Rail || h.At <= d.At {
			t.Fatalf("pair %d mismatched: %v / %v", i/2, d, h)
		}
	}
	if err := a.Validate(3, 2); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(2, 2); err == nil {
		t.Fatal("script targeting node 2 validated against a 2-node cluster")
	}
}

// TestTraceDiff: traces compare event-for-event with a readable first
// divergence.
func TestTraceDiff(t *testing.T) {
	var a, b Trace
	e1 := Event{At: time.Millisecond, Op: OpRailDown, Node: 0, Peer: 1, Rail: 0}
	e2 := Event{At: 2 * time.Millisecond, Op: OpRailHeal, Node: 0, Peer: 1, Rail: 0}
	a.Record(e1)
	a.Record(e2)
	b.Record(e1)
	b.Record(e2)
	if !a.Equal(&b) {
		t.Fatalf("identical traces diff: %s", a.Diff(&b))
	}
	b.Record(Event{At: 3 * time.Millisecond, Op: OpCrash, Node: 2})
	if a.Equal(&b) {
		t.Fatal("diverging traces compared equal")
	}
	if d := a.Diff(&b); d == "" {
		t.Fatal("no divergence reported")
	}
}
