package chaos

import (
	"fmt"
	"time"

	"newmad/internal/simnet"
)

// Group scripts are the manifest-facing half of the scenario DSL: instead of
// hand-picking node IDs, an author names role groups ("edge", "core") and a
// fault budget, and Resolve draws the concrete edges from a seeded RNG. The
// same groups, events and seed always resolve to the identical Script, so a
// manifest-driven scenario replays event-for-event.

// GroupEvent is one scripted fault addressed at role groups. Heals are not
// authored separately: each down-type event carries its own For duration and
// Resolve emits the paired heal, which guarantees the heal hits exactly the
// edges the down hit (two independent random draws could not).
type GroupEvent struct {
	// At is the offset of the fault from scenario start.
	At time.Duration
	// Op selects the fault: OpRailDown, OpPartition or OpCrash. Heal ops
	// are rejected — they are implied by For.
	Op Op
	// For is how long the fault lasts; the paired heal fires at At+For.
	// Zero is legal and yields a down/heal pair at the same instant (the
	// stable sort keeps down before heal). Ignored by OpCrash.
	For time.Duration
	// Group names the subject role group.
	Group string
	// Peer names the peer role group; empty means the subject's own group.
	// Ignored by OpCrash.
	Peer string
	// Rail is the rail index for OpRailDown; negative draws a random rail
	// per edge. Ignored by other ops.
	Rail int
	// Count is how many distinct edges (nodes, for OpCrash) to draw.
	// Zero means one.
	Count int
}

// GroupScript is a complete role-group scenario.
type GroupScript struct {
	Events []GroupEvent
}

// Resolve expands the group script into a concrete Script against the given
// group membership, drawing edges from rng. Membership slices are consumed
// in the order given — callers must pass deterministically ordered slices
// (never freshly ranged map keys) for replay to hold; the groups map itself
// is only ever indexed by event-named keys, so its iteration order is moot.
func (g GroupScript) Resolve(groups map[string][]int, rails int, rng *simnet.RNG) (Script, error) {
	var s Script
	for i, e := range g.Events {
		if e.At < 0 {
			return Script{}, fmt.Errorf("chaos: group event %d at negative offset %v", i, e.At)
		}
		if e.For < 0 {
			return Script{}, fmt.Errorf("chaos: group event %d with negative duration %v", i, e.For)
		}
		subject, ok := groups[e.Group]
		if !ok || len(subject) == 0 {
			return Script{}, fmt.Errorf("chaos: group event %d names unknown or empty group %q", i, e.Group)
		}
		count := e.Count
		if count == 0 {
			count = 1
		}
		if count < 0 {
			return Script{}, fmt.Errorf("chaos: group event %d with negative count %d", i, e.Count)
		}

		if e.Op == OpCrash {
			nodes, err := drawNodes(subject, count, rng)
			if err != nil {
				return Script{}, fmt.Errorf("chaos: group event %d: %v", i, err)
			}
			for _, n := range nodes {
				s.Events = append(s.Events, Event{At: e.At, Op: OpCrash, Node: n})
			}
			continue
		}

		var heal Op
		switch e.Op {
		case OpRailDown:
			heal = OpRailHeal
		case OpPartition:
			heal = OpHeal
		default:
			return Script{}, fmt.Errorf("chaos: group event %d has op %v; only rail-down, partition and crash may be authored (heals are implied by For)", i, e.Op)
		}

		peerGroup := e.Peer
		if peerGroup == "" {
			peerGroup = e.Group
		}
		peers, ok := groups[peerGroup]
		if !ok || len(peers) == 0 {
			return Script{}, fmt.Errorf("chaos: group event %d names unknown or empty peer group %q", i, peerGroup)
		}

		edges, err := drawEdges(subject, peers, count, rng)
		if err != nil {
			return Script{}, fmt.Errorf("chaos: group event %d: %v", i, err)
		}
		for _, ed := range edges {
			rail := e.Rail
			if e.Op == OpRailDown && rail < 0 {
				if rails < 1 {
					return Script{}, fmt.Errorf("chaos: group event %d draws a random rail but the topology has none", i)
				}
				rail = rng.Intn(rails)
			}
			s.Events = append(s.Events,
				Event{At: e.At, Op: e.Op, Node: ed[0], Peer: ed[1], Rail: rail},
				Event{At: e.At + e.For, Op: heal, Node: ed[0], Peer: ed[1], Rail: rail},
			)
		}
	}
	return s, nil
}

// drawNodes draws count distinct nodes from members.
func drawNodes(members []int, count int, rng *simnet.RNG) ([]int, error) {
	if count > len(members) {
		return nil, fmt.Errorf("count %d exceeds group size %d", count, len(members))
	}
	// Partial Fisher–Yates over a copy: deterministic and duplicate-free.
	pool := append([]int(nil), members...)
	out := make([]int, 0, count)
	for i := 0; i < count; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
		out = append(out, pool[i])
	}
	return out, nil
}

// drawEdges draws count distinct (node, peer) pairs with node from a, peer
// from b, node != peer. Rejection sampling is deterministic under a seeded
// RNG; the attempt cap turns an impossible request into an error instead of
// a spin.
func drawEdges(a, b []int, count int, rng *simnet.RNG) ([][2]int, error) {
	seen := make(map[[2]int]bool, count)
	out := make([][2]int, 0, count)
	for attempts := 0; len(out) < count; attempts++ {
		if attempts > 64+count*64 {
			return nil, fmt.Errorf("cannot draw %d distinct edges between groups of %d and %d", count, len(a), len(b))
		}
		e := [2]int{a[rng.Intn(len(a))], b[rng.Intn(len(b))]}
		if e[0] == e[1] || seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out, nil
}
