package mad

import (
	"fmt"
	"sync"

	"newmad/internal/packet"
	"newmad/internal/proto"
)

// Channel is a named communication scope. Within a channel, traffic from
// one source node forms a single FIFO flow; different channels (and
// different sources) are independent flows the optimizer may freely
// interleave — this is precisely where cross-flow aggregation finds its
// material.
type Channel struct {
	session *Session
	name    string
	index   int

	mu      sync.Mutex
	conns   map[packet.NodeID]*Connection
	inflows map[packet.FlowID]*assembly

	onMessage  MessageHandler
	onExpress  FragmentHandler
	onFragment FragmentHandler
}

// MessageHandler receives a fully assembled inbound message.
type MessageHandler func(src packet.NodeID, msg *Incoming)

// FragmentHandler receives a single fragment as it is delivered.
type FragmentHandler func(src packet.NodeID, frag *packet.Packet)

// Incoming is an assembled message: fragments in pack order.
type Incoming struct {
	Src       packet.NodeID
	Msg       packet.MsgID
	Fragments [][]byte
	// Express flags Fragments[i] that were packed receive_EXPRESS.
	Express []bool
}

// assembly accumulates the current message of one inbound flow.
type assembly struct {
	msg   *Incoming
	begun bool
}

// Name returns the channel name.
func (c *Channel) Name() string { return c.name }

// OnMessage installs the assembled-message handler.
func (c *Channel) OnMessage(h MessageHandler) {
	c.mu.Lock()
	c.onMessage = h
	c.mu.Unlock()
}

// OnExpress installs a handler invoked immediately for every express
// fragment, before the enclosing message completes — the receiver-side
// payoff of receive_EXPRESS (e.g. RPC dispatch before arguments arrive).
func (c *Channel) OnExpress(h FragmentHandler) {
	c.mu.Lock()
	c.onExpress = h
	c.mu.Unlock()
}

// OnFragment installs a raw per-fragment handler (diagnostics, custom
// assembly). Message assembly still runs when OnMessage is also set.
func (c *Channel) OnFragment(h FragmentHandler) {
	c.mu.Lock()
	c.onFragment = h
	c.mu.Unlock()
}

// Connect returns the connection (the outbound flow) to peer, creating it
// on first use.
func (c *Channel) Connect(peer packet.NodeID) *Connection {
	if peer == c.session.node {
		panic("mad: connecting a channel to self")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn, ok := c.conns[peer]; ok {
		return conn
	}
	conn := &Connection{
		channel: c,
		peer:    peer,
		flow:    flowID(c.index, c.session.node),
	}
	c.conns[peer] = conn
	return conn
}

// ingest processes one in-order fragment from the session dispatcher. The
// deliverable carries the packet by value; the fragment handlers below get
// a pointer to a per-ingest copy, valid for the duration of the callback.
func (c *Channel) ingest(d proto.Deliverable) {
	p := &d.Pkt
	c.mu.Lock()
	onFrag, onExpr, onMsg := c.onFragment, c.onExpress, c.onMessage
	as := c.inflows[p.Flow]
	if as == nil {
		as = &assembly{}
		c.inflows[p.Flow] = as
	}
	if !as.begun {
		as.msg = &Incoming{Src: d.Src, Msg: p.Msg}
		as.begun = true
	}
	if p.Msg != as.msg.Msg {
		c.mu.Unlock()
		panic(fmt.Sprintf("mad: channel %q: fragment of message %d while message %d is open (flow %d)",
			c.name, p.Msg, as.msg.Msg, p.Flow))
	}
	as.msg.Fragments = append(as.msg.Fragments, p.Payload)
	as.msg.Express = append(as.msg.Express, p.Recv == packet.RecvExpress)
	var complete *Incoming
	if p.Last {
		complete = as.msg
		as.begun = false
		as.msg = nil
	}
	c.mu.Unlock()

	if onFrag != nil {
		onFrag(d.Src, p)
	}
	if onExpr != nil && p.Recv == packet.RecvExpress {
		onExpr(d.Src, p)
	}
	if complete != nil && onMsg != nil {
		onMsg(complete.Src, complete)
	}
}

// Connection is one outbound flow: this node's messages to one peer over
// one channel. Messages are packed strictly one at a time per connection
// (Madeleine semantics); concurrent messages belong on distinct channels.
type Connection struct {
	channel *Channel
	peer    packet.NodeID
	flow    packet.FlowID

	mu      sync.Mutex
	nextSeq int
	nextMsg packet.MsgID
	open    bool
}

// Peer returns the remote node.
func (c *Connection) Peer() packet.NodeID { return c.peer }

// Flow returns the wire flow id (diagnostics).
func (c *Connection) Flow() packet.FlowID { return c.flow }

// BeginPacking starts a new outbound message.
func (c *Connection) BeginPacking() *Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.open {
		panic(fmt.Sprintf("mad: BeginPacking with message %d still open on flow %d", c.nextMsg, c.flow))
	}
	c.open = true
	c.nextMsg++
	return &Message{conn: c, msg: c.nextMsg}
}

// Message is an outbound structured message under construction.
type Message struct {
	conn *Connection
	msg  packet.MsgID
	// held are packed fragments not yet submitted: always the most recent
	// fragment (it may turn out to be the last) and every send_LATER
	// fragment (whose buffers must not be read before EndPacking).
	held  []*packet.Packet
	ended bool
}

// Pack appends one fragment with the given constraint modes.
func (m *Message) Pack(data []byte, send packet.SendMode, recv packet.RecvMode) {
	m.PackClass(data, send, recv, classify(len(data), recv))
}

// PackClass is Pack with an explicit traffic class (middlewares use it to
// mark control tokens).
func (m *Message) PackClass(data []byte, send packet.SendMode, recv packet.RecvMode, class packet.ClassID) {
	if m.ended {
		panic("mad: Pack after EndPacking")
	}
	c := m.conn
	c.mu.Lock()
	payload := data
	if send == packet.SendSafer {
		// safer: capture now; caller may immediately reuse the buffer.
		payload = append([]byte(nil), data...)
	}
	p := &packet.Packet{
		Flow:    c.flow,
		Msg:     m.msg,
		Seq:     c.nextSeq,
		Src:     c.channel.session.node,
		Dst:     c.peer,
		Class:   class,
		Send:    send,
		Recv:    recv,
		Payload: payload,
	}
	c.nextSeq++

	// Submit every held fragment that is not send_LATER and is not the
	// new most-recent one; the newest is always held because it may be
	// the message's last fragment.
	m.held = append(m.held, p)
	var still []*packet.Packet
	for i, h := range m.held {
		if i == len(m.held)-1 || h.Send == packet.SendLater {
			still = append(still, h)
			continue
		}
		c.submitLocked(h)
	}
	m.held = still
	c.mu.Unlock()
}

// EndPacking completes the message: the final fragment is marked Last and
// all send_LATER fragments are read and submitted. It returns after the
// packets are handed to the optimizer (never blocking on the network).
func (m *Message) EndPacking() {
	if m.ended {
		panic("mad: double EndPacking")
	}
	m.ended = true
	c := m.conn
	c.mu.Lock()
	if len(m.held) == 0 {
		// Empty message: emit a zero-length terminator so the receiver
		// still observes a message boundary.
		p := &packet.Packet{
			Flow: c.flow, Msg: m.msg, Seq: c.nextSeq,
			Src: c.channel.session.node, Dst: c.peer,
			Class: packet.ClassControl, Last: true, Payload: []byte{},
		}
		c.nextSeq++
		c.submitLocked(p)
	} else {
		m.held[len(m.held)-1].Last = true
		for _, h := range m.held {
			c.submitLocked(h)
		}
	}
	m.held = nil
	c.open = false
	c.mu.Unlock()
}

func (c *Connection) submitLocked(p *packet.Packet) {
	if err := c.channel.session.engine.Submit(p); err != nil {
		panic(fmt.Sprintf("mad: submit failed: %v", err))
	}
}

// classify applies the default class rule: express fragments are control
// when tiny (signalling) else small; large payloads are bulk.
func classify(size int, recv packet.RecvMode) packet.ClassID {
	const bulkAt = 8 << 10
	switch {
	case size >= bulkAt:
		return packet.ClassBulk
	case recv == packet.RecvExpress && size <= 64:
		return packet.ClassControl
	default:
		return packet.ClassSmall
	}
}
