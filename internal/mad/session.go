// Package mad is the collect layer of Figure 1: the Madeleine-style
// structured packing API through which applications and middlewares express
// messages and — crucially — the constraints the optimizer must respect.
//
// A message is built fragment by fragment:
//
//	conn := session.Channel("rpc").Connect(peer)
//	msg := conn.BeginPacking()
//	msg.Pack(header, mad.SendCheaper, mad.RecvExpress) // must arrive first
//	msg.Pack(body,   mad.SendCheaper, mad.RecvCheaper) // may be optimized
//	msg.EndPacking()
//
// Send modes state how long the caller's buffer stays valid (safer = copy
// now, later = read at EndPacking, cheaper = library's choice); receive
// modes state when the receiver needs the bytes (express = immediately at
// unpack — headers that gate interpretation; cheaper = any time before the
// message completes). These flags become packet fields that the optimizing
// layer treats as reordering constraints, exactly as §3 of the paper
// describes.
//
// Flow identity: each (channel, source node) pair maps to one flow id, so
// channels must be created in the same order on every node (the usual SPMD
// convention, as with MPI communicators).
package mad

import (
	"fmt"
	"sync"

	"newmad/internal/core"
	"newmad/internal/packet"
	"newmad/internal/proto"
)

// Re-exported mode constants so middlewares import only mad.
const (
	SendCheaper = packet.SendCheaper
	SendSafer   = packet.SendSafer
	SendLater   = packet.SendLater
	RecvCheaper = packet.RecvCheaper
	RecvExpress = packet.RecvExpress
)

// maxChannels bounds channels per session; flow ids encode the channel
// index in their low bits.
const (
	channelBits = 12
	maxChannels = 1 << channelBits
)

// Session binds a node's optimizer engine to the packing API and routes
// inbound fragments to channels.
type Session struct {
	engine *core.Engine
	node   packet.NodeID

	mu       sync.Mutex
	channels map[string]*Channel
	byIndex  []*Channel
}

// NewSession wraps an engine. The engine's Deliver option must already
// point at the session's Dispatch (use Bind to construct both in order).
func NewSession(engine *core.Engine) *Session {
	return &Session{
		engine:   engine,
		node:     engine.Node(),
		channels: make(map[string]*Channel),
	}
}

// Bind is the convenience constructor: it creates the session first, then
// the engine with the session's dispatcher as the Deliver upcall.
//
//	s, err := mad.Bind(node, func(deliver proto.DeliverFunc) (*core.Engine, error) {
//	    opt.Deliver = deliver
//	    return core.New(node, opt)
//	})
func Bind(node packet.NodeID, build func(deliver proto.DeliverFunc) (*core.Engine, error)) (*Session, error) {
	s := &Session{node: node, channels: make(map[string]*Channel)}
	eng, err := build(s.Dispatch)
	if err != nil {
		return nil, err
	}
	if eng.Node() != node {
		return nil, fmt.Errorf("mad: engine node %d != session node %d", eng.Node(), node)
	}
	s.engine = eng
	return s, nil
}

// Engine exposes the underlying optimizer (for RMA and tuning).
func (s *Session) Engine() *core.Engine { return s.engine }

// Node returns the local node id.
func (s *Session) Node() packet.NodeID { return s.node }

// Channel returns the named channel, creating it on first use. Creation
// order must match across nodes.
func (s *Session) Channel(name string) *Channel {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ch, ok := s.channels[name]; ok {
		return ch
	}
	if len(s.byIndex) >= maxChannels {
		panic(fmt.Sprintf("mad: more than %d channels", maxChannels))
	}
	ch := &Channel{
		session: s,
		name:    name,
		index:   len(s.byIndex),
		conns:   make(map[packet.NodeID]*Connection),
		inflows: make(map[packet.FlowID]*assembly),
	}
	s.channels[name] = ch
	s.byIndex = append(s.byIndex, ch)
	return ch
}

// Dispatch is the engine's Deliver upcall: it routes one in-order fragment
// to its channel. Exposed so callers constructing the engine directly can
// wire it; application code never calls it.
func (s *Session) Dispatch(d proto.Deliverable) {
	idx := int(uint32(d.Pkt.Flow) & (maxChannels - 1))
	s.mu.Lock()
	var ch *Channel
	if idx < len(s.byIndex) {
		ch = s.byIndex[idx]
	}
	s.mu.Unlock()
	if ch == nil {
		panic(fmt.Sprintf("mad: fragment for unknown channel index %d (flow %d); channels must be created in the same order on all nodes", idx, d.Pkt.Flow))
	}
	ch.ingest(d)
}

// flowID builds the wire flow identifier for (channel index, source node).
func flowID(chIndex int, src packet.NodeID) packet.FlowID {
	return packet.FlowID(uint32(src)<<channelBits | uint32(chIndex))
}
