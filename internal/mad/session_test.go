package mad

import (
	"errors"
	"testing"

	"newmad/internal/core"
	"newmad/internal/packet"
	"newmad/internal/proto"
)

func TestBindPropagatesBuildErrors(t *testing.T) {
	_, err := Bind(0, func(proto.DeliverFunc) (*core.Engine, error) {
		return nil, errors.New("boom")
	})
	if err == nil {
		t.Fatal("build error swallowed")
	}
}

func TestBindRejectsNodeMismatch(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	eng := r.sessions[1].Engine() // engine for node 1
	_, err := Bind(0, func(proto.DeliverFunc) (*core.Engine, error) {
		return eng, nil
	})
	if err == nil {
		t.Fatal("node mismatch accepted")
	}
}

func TestOnFragmentSeesEveryFragment(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	var frags []string
	ch := r.sessions[1].Channel("raw")
	ch.OnFragment(func(src packet.NodeID, f *packet.Packet) {
		frags = append(frags, string(f.Payload))
	})
	conn := r.sessions[0].Channel("raw").Connect(1)
	m := conn.BeginPacking()
	m.Pack([]byte("one"), SendCheaper, RecvExpress)
	m.Pack([]byte("two"), SendCheaper, RecvCheaper)
	m.EndPacking()
	r.cl.Eng.Run()
	if len(frags) != 2 || frags[0] != "one" || frags[1] != "two" {
		t.Fatalf("fragment handler saw %v", frags)
	}
}

func TestDispatchUnknownChannelPanics(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	defer func() {
		if recover() == nil {
			t.Fatal("unknown channel index accepted")
		}
	}()
	// Deliver a fragment whose flow names a channel index that was never
	// created on this session.
	r.sessions[1].Dispatch(proto.Deliverable{
		Src: 0,
		Pkt: packet.Packet{Flow: flowID(7, 0), Payload: []byte("x")},
	})
}

func TestInterleavedMessageFromSameFlowPanics(t *testing.T) {
	// A fragment of message N+1 arriving while message N is still open on
	// the same inbound flow indicates a sender bug; the assembly must
	// refuse it loudly.
	r := newRig(t, 2, "aggregate")
	ch := r.sessions[1].Channel("app")
	ch.OnMessage(func(packet.NodeID, *Incoming) {})
	flow := flowID(0, 0)
	ch.ingest(proto.Deliverable{Src: 0, Pkt: packet.Packet{
		Flow: flow, Msg: 1, Seq: 0, Payload: []byte("a")}})
	defer func() {
		if recover() == nil {
			t.Fatal("interleaved message accepted")
		}
	}()
	ch.ingest(proto.Deliverable{Src: 0, Pkt: packet.Packet{
		Flow: flow, Msg: 2, Seq: 1, Payload: []byte("b")}})
}
