package mad

import (
	"bytes"
	"fmt"
	"testing"

	"newmad/internal/caps"
	"newmad/internal/core"
	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

// rig builds n sessions over a simulated MX cluster.
type rig struct {
	cl       *drivers.Cluster
	sessions []*Session
}

func newRig(t *testing.T, n int, bundle string) *rig {
	t.Helper()
	cl, err := drivers.NewCluster(n, caps.MX)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{cl: cl}
	for i := 0; i < n; i++ {
		node := packet.NodeID(i)
		b, err := strategy.New(bundle)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Bind(node, func(deliver proto.DeliverFunc) (*core.Engine, error) {
			return core.New(node, core.Options{
				Bundle:  b,
				Runtime: cl.Eng,
				Rails:   []drivers.Driver{cl.Driver(node, "mx")},
				Deliver: deliver,
				Stats:   cl.Stats,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		r.sessions = append(r.sessions, s)
	}
	return r
}

func TestSingleFragmentMessage(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	var got *Incoming
	r.sessions[1].Channel("app").OnMessage(func(src packet.NodeID, m *Incoming) { got = m })

	conn := r.sessions[0].Channel("app").Connect(1)
	msg := conn.BeginPacking()
	msg.Pack([]byte("hello"), SendCheaper, RecvCheaper)
	msg.EndPacking()
	r.cl.Eng.Run()

	if got == nil {
		t.Fatal("message not delivered")
	}
	if got.Src != 0 || len(got.Fragments) != 1 || string(got.Fragments[0]) != "hello" {
		t.Fatalf("got %+v", got)
	}
}

func TestMultiFragmentMessageOrderAndExpress(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	var msgs []*Incoming
	var expressFrags []string
	ch1 := r.sessions[1].Channel("app")
	ch1.OnMessage(func(_ packet.NodeID, m *Incoming) { msgs = append(msgs, m) })
	ch1.OnExpress(func(_ packet.NodeID, f *packet.Packet) { expressFrags = append(expressFrags, string(f.Payload)) })

	conn := r.sessions[0].Channel("app").Connect(1)
	m := conn.BeginPacking()
	m.Pack([]byte("hdr"), SendCheaper, RecvExpress)
	m.Pack([]byte("body1"), SendCheaper, RecvCheaper)
	m.Pack([]byte("body2"), SendCheaper, RecvCheaper)
	m.EndPacking()
	r.cl.Eng.Run()

	if len(msgs) != 1 {
		t.Fatalf("messages = %d", len(msgs))
	}
	got := msgs[0]
	want := []string{"hdr", "body1", "body2"}
	for i, w := range want {
		if string(got.Fragments[i]) != w {
			t.Fatalf("fragment %d = %q, want %q", i, got.Fragments[i], w)
		}
	}
	if !got.Express[0] || got.Express[1] || got.Express[2] {
		t.Fatalf("express flags = %v", got.Express)
	}
	if len(expressFrags) != 1 || expressFrags[0] != "hdr" {
		t.Fatalf("express handler saw %v", expressFrags)
	}
}

func TestSendSaferCapturesImmediately(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	var got *Incoming
	r.sessions[1].Channel("app").OnMessage(func(_ packet.NodeID, m *Incoming) { got = m })

	buf := []byte("precious")
	conn := r.sessions[0].Channel("app").Connect(1)
	m := conn.BeginPacking()
	m.Pack(buf, SendSafer, RecvCheaper)
	copy(buf, "CLOBBER!") // safer: the library captured at Pack time
	m.EndPacking()
	r.cl.Eng.Run()

	if got == nil || string(got.Fragments[0]) != "precious" {
		t.Fatalf("safer semantics violated: %q", got.Fragments[0])
	}
}

func TestSendLaterReadsAtEndPacking(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	var got *Incoming
	r.sessions[1].Channel("app").OnMessage(func(_ packet.NodeID, m *Incoming) { got = m })

	buf := []byte("draft___")
	conn := r.sessions[0].Channel("app").Connect(1)
	m := conn.BeginPacking()
	m.Pack([]byte("hdr"), SendCheaper, RecvExpress)
	m.Pack(buf, SendLater, RecvCheaper)
	m.Pack([]byte("tail"), SendCheaper, RecvCheaper)
	copy(buf, "final___") // later: legal to rewrite until EndPacking
	m.EndPacking()
	r.cl.Eng.Run()

	if got == nil {
		t.Fatal("message not delivered")
	}
	if string(got.Fragments[1]) != "final___" {
		t.Fatalf("send_LATER read too early: %q", got.Fragments[1])
	}
	// Order at delivery remains pack order despite submission reordering.
	if string(got.Fragments[0]) != "hdr" || string(got.Fragments[2]) != "tail" {
		t.Fatalf("fragments misordered: %q %q %q", got.Fragments[0], got.Fragments[1], got.Fragments[2])
	}
}

func TestEmptyMessage(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	var got *Incoming
	r.sessions[1].Channel("app").OnMessage(func(_ packet.NodeID, m *Incoming) { got = m })
	conn := r.sessions[0].Channel("app").Connect(1)
	m := conn.BeginPacking()
	m.EndPacking()
	r.cl.Eng.Run()
	if got == nil {
		t.Fatal("empty message produced no boundary")
	}
	if len(got.Fragments) != 1 || len(got.Fragments[0]) != 0 {
		t.Fatalf("empty message fragments = %v", got.Fragments)
	}
}

func TestSequentialMessagesOnOneConnection(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	var msgs []*Incoming
	r.sessions[1].Channel("app").OnMessage(func(_ packet.NodeID, m *Incoming) { msgs = append(msgs, m) })
	conn := r.sessions[0].Channel("app").Connect(1)
	for i := 0; i < 5; i++ {
		m := conn.BeginPacking()
		m.Pack([]byte(fmt.Sprintf("msg%d-a", i)), SendCheaper, RecvExpress)
		m.Pack([]byte(fmt.Sprintf("msg%d-b", i)), SendCheaper, RecvCheaper)
		m.EndPacking()
	}
	r.cl.Eng.Run()
	if len(msgs) != 5 {
		t.Fatalf("messages = %d", len(msgs))
	}
	for i, m := range msgs {
		if string(m.Fragments[0]) != fmt.Sprintf("msg%d-a", i) {
			t.Fatalf("message %d out of order: %q", i, m.Fragments[0])
		}
	}
}

func TestChannelsAreIndependentFlows(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	var fromA, fromB []*Incoming
	r.sessions[1].Channel("a").OnMessage(func(_ packet.NodeID, m *Incoming) { fromA = append(fromA, m) })
	r.sessions[1].Channel("b").OnMessage(func(_ packet.NodeID, m *Incoming) { fromB = append(fromB, m) })
	// Sender must create channels in the same order.
	connA := r.sessions[0].Channel("a").Connect(1)
	connB := r.sessions[0].Channel("b").Connect(1)
	for i := 0; i < 3; i++ {
		ma := connA.BeginPacking()
		ma.Pack([]byte("A"), SendCheaper, RecvCheaper)
		ma.EndPacking()
		mb := connB.BeginPacking()
		mb.Pack([]byte("B"), SendCheaper, RecvCheaper)
		mb.EndPacking()
	}
	r.cl.Eng.Run()
	if len(fromA) != 3 || len(fromB) != 3 {
		t.Fatalf("deliveries: a=%d b=%d", len(fromA), len(fromB))
	}
}

func TestLargeFragmentTravelsByRendezvous(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	var got *Incoming
	r.sessions[1].Channel("app").OnMessage(func(_ packet.NodeID, m *Incoming) { got = m })
	payload := bytes.Repeat([]byte{7}, 128<<10)
	conn := r.sessions[0].Channel("app").Connect(1)
	m := conn.BeginPacking()
	m.Pack([]byte("hdr"), SendCheaper, RecvExpress)
	m.Pack(payload, SendCheaper, RecvCheaper)
	m.EndPacking()
	r.cl.Eng.Run()
	if got == nil {
		t.Fatal("message not delivered")
	}
	if !bytes.Equal(got.Fragments[1], payload) {
		t.Fatal("bulk fragment corrupted")
	}
	if r.cl.Stats.CounterValue("core.rdv_started") == 0 {
		t.Fatal("large fragment did not use rendezvous")
	}
}

func TestPackingDisciplineEnforced(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	r.sessions[1].Channel("app") // receiver must know the channel too
	conn := r.sessions[0].Channel("app").Connect(1)
	m := conn.BeginPacking()

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("double BeginPacking", func() { conn.BeginPacking() })
	m.EndPacking()
	mustPanic("Pack after EndPacking", func() { m.Pack([]byte("x"), SendCheaper, RecvCheaper) })
	mustPanic("double EndPacking", func() { m.EndPacking() })
	mustPanic("connect to self", func() { r.sessions[0].Channel("app").Connect(0) })

	// A new message works after the previous one ended.
	m2 := conn.BeginPacking()
	m2.Pack([]byte("ok"), SendCheaper, RecvCheaper)
	m2.EndPacking()
	r.cl.Eng.Run()
}

func TestConnectionsAreMemoized(t *testing.T) {
	r := newRig(t, 3, "aggregate")
	ch := r.sessions[0].Channel("x")
	if ch.Connect(1) != ch.Connect(1) {
		t.Fatal("Connect not memoized")
	}
	if ch.Connect(1) == ch.Connect(2) {
		t.Fatal("distinct peers share a connection")
	}
	if ch.Name() != "x" {
		t.Fatal("name")
	}
	if ch.Connect(1).Peer() != 1 {
		t.Fatal("peer")
	}
	if r.sessions[0].Channel("x") != ch {
		t.Fatal("Channel not memoized")
	}
	if r.sessions[0].Node() != 0 || r.sessions[0].Engine() == nil {
		t.Fatal("session accessors")
	}
}

func TestClassifyDefaults(t *testing.T) {
	if classify(16, packet.RecvExpress) != packet.ClassControl {
		t.Fatal("tiny express should be control")
	}
	if classify(100, packet.RecvExpress) != packet.ClassSmall {
		t.Fatal("mid express should be small")
	}
	if classify(9000, packet.RecvCheaper) != packet.ClassBulk {
		t.Fatal("large should be bulk")
	}
	if classify(100, packet.RecvCheaper) != packet.ClassSmall {
		t.Fatal("small cheaper should be small")
	}
}

func TestManyMessagesBothDirections(t *testing.T) {
	r := newRig(t, 2, "aggregate")
	counts := [2]int{}
	for n := 0; n < 2; n++ {
		n := n
		r.sessions[n].Channel("app").OnMessage(func(_ packet.NodeID, m *Incoming) { counts[n]++ })
	}
	conn01 := r.sessions[0].Channel("app").Connect(1)
	conn10 := r.sessions[1].Channel("app").Connect(0)
	rng := simnet.NewRNG(5)
	const n = 50
	for i := 0; i < n; i++ {
		for _, conn := range []*Connection{conn01, conn10} {
			m := conn.BeginPacking()
			m.Pack([]byte("h"), SendCheaper, RecvExpress)
			m.Pack(make([]byte, rng.Range(8, 2048)), SendCheaper, RecvCheaper)
			m.EndPacking()
		}
	}
	r.cl.Eng.Run()
	if counts[0] != n || counts[1] != n {
		t.Fatalf("counts = %v", counts)
	}
}

func TestFlowIDEncoding(t *testing.T) {
	f := flowID(3, 7)
	if int(uint32(f)&(maxChannels-1)) != 3 {
		t.Fatal("channel index lost")
	}
	if uint32(f)>>channelBits != 7 {
		t.Fatal("source node lost")
	}
}
