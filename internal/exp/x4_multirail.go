package exp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"newmad/internal/caps"
	"newmad/internal/cluster"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/stats"
	"newmad/internal/strategy"
)

// X4 — multi-rail addendum (not a claim of the paper; added with the
// multi-rail TCP mesh transport).
//
// E4 shows the scheduler's dynamic load balancing "on multiple NICs, or
// even NICs from multiple technologies" on simulated fabrics. X4 runs the
// same idea over real sockets: every node carries N independent TCP rails
// per peer (one connection each, one capability record each), and the
// capability-aware rail scheduler (strategy.ScheduledRail) stripes granted
// rendezvous transfers across the rails while steering small eager
// aggregates to the low-latency rail. The rails enforce their capability
// record's bandwidth class on the wall clock (caps.EmulateWire), so each
// TCP rail faithfully stands in for one GigE-class NIC regardless of host
// core count or loopback speed. The workload is a conglomerate —
// concurrent small-message streams and large rendezvous transfers in both
// directions — and the measured quantity is wall-clock completion: the
// deliverable bandwidth of a multi-rail node is the sum of its rails, but
// only if the scheduler actually keeps every rail busy. A single rail
// bounds throughput at one wire; striping across N rails multiplies it,
// which is exactly what the table shows (and what would fail to show if
// striping pinned traffic to one rail).

func init() {
	register(Experiment{
		ID:    "X4",
		Title: "multi-rail addendum: capability-aware rail striping over real TCP sockets",
		Claim: "reproduction brief: striping bulk transfers across N real TCP rails beats a single rail on wall-clock conglomerate throughput (not in the paper)",
		Run:   runX4,
	})
}

// X4Result is one transport configuration's outcome for the shared
// conglomerate workload.
type X4Result struct {
	RailCount int
	Msgs      int
	Bytes     int
	// Completion is wall-clock time from first submit to last delivery.
	Completion time.Duration
	// RailFrames counts frames posted per rail profile, summed over nodes —
	// the striping evidence.
	RailFrames map[string]uint64
}

// Goodput returns application bytes per second over the run.
func (r X4Result) Goodput() float64 {
	s := r.Completion.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Bytes) / s
}

func x4Shape(cfg Config) (smallMsgs, smallSize, bulkMsgs, bulkSize int) {
	if cfg.Quick {
		return 200, 256, 16, 1 << 20
	}
	return 600, 256, 32, 2 << 20
}

// x4Rails derives the transport profiles: GigE-class TCP rails that enforce
// their bandwidth on the wall clock. 60 MB/s per rail keeps even the
// 4-rail, both-directions aggregate (480 MB/s) under what one host core
// can move through loopback sockets, so the comparison measures the rail
// scheduler, not the machine.
func x4Rails(n int) []caps.Caps {
	base := caps.TCP
	base.Name = "gige"
	base.Bandwidth = 60e6
	base.EmulateWire = true
	return caps.RailProfiles(base, n)
}

// X4Mesh runs the conglomerate workload between two nodes connected by
// railCount real TCP rails and reports wall-clock completion.
func X4Mesh(cfg Config, railCount int) (X4Result, error) {
	smallMsgs, smallSize, bulkMsgs, bulkSize := x4Shape(cfg)
	// Both directions: each node sends the full mix.
	total := 2 * (smallMsgs + bulkMsgs)

	var delivered atomic.Int64
	done := make(chan struct{}, 1)
	opts := cluster.Options{
		Nodes: 2,
		Rails: x4Rails(railCount),
		Raw:   true,
		OnDeliver: func(packet.NodeID, proto.Deliverable) {
			if delivered.Add(1) == int64(total) {
				done <- struct{}{}
			}
		},
	}
	opts.RailPolicy = strategy.NewScheduledRail(opts.RailCaps())
	c, err := cluster.New(opts)
	if err != nil {
		return X4Result{}, err
	}
	defer c.Close()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for s := 0; s < 2; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := c.Engine(packet.NodeID(s))
			dst := packet.NodeID(1 - s)
			smallFlow := packet.FlowID(10 + s)
			bulkFlow := packet.FlowID(20 + s)
			// Interleave: a few small messages between each bulk submission,
			// so the engine always sees the conglomerate, not two phases.
			si, bi := 0, 0
			for si < smallMsgs || bi < bulkMsgs {
				for k := 0; k < smallMsgs/max(bulkMsgs, 1)+1 && si < smallMsgs; k++ {
					p := &packet.Packet{
						Flow: smallFlow, Msg: packet.MsgID(si + 1), Seq: si, Last: true,
						Src: packet.NodeID(s), Dst: dst,
						Class: packet.ClassSmall, Payload: make([]byte, smallSize),
					}
					if err := eng.Submit(p); err != nil {
						errs <- err
						return
					}
					si++
				}
				if bi < bulkMsgs {
					p := &packet.Packet{
						Flow: bulkFlow, Msg: packet.MsgID(bi + 1), Seq: bi, Last: true,
						Src: packet.NodeID(s), Dst: dst,
						Class: packet.ClassSmall, Payload: make([]byte, bulkSize),
					}
					if err := eng.Submit(p); err != nil {
						errs <- err
						return
					}
					bi++
				}
			}
			eng.Flush()
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return X4Result{}, err
	default:
	}
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		return X4Result{}, fmt.Errorf("exp: X4 incomplete on %d rails, %d of %d delivered", railCount, delivered.Load(), total)
	}
	wall := time.Since(start)

	railFrames := make(map[string]uint64)
	for _, p := range x4Rails(railCount) {
		for _, n := range c.Nodes {
			railFrames[p.Name] += n.Stats.CounterValue("core.rail." + p.Name + ".frames")
		}
	}
	return X4Result{
		RailCount:  railCount,
		Msgs:       total,
		Bytes:      2 * (smallMsgs*smallSize + bulkMsgs*bulkSize),
		Completion: wall,
		RailFrames: railFrames,
	}, nil
}

func runX4(cfg Config) []*stats.Table {
	railCounts := []int{1, 2, 4}
	if cfg.Quick {
		railCounts = []int{1, 2}
	}
	results := make([]X4Result, 0, len(railCounts))
	for _, rc := range railCounts {
		r, err := X4Mesh(cfg, rc)
		if err != nil {
			panic(err)
		}
		results = append(results, r)
	}
	base := results[0]
	t := stats.NewTable(
		"X4 — conglomerate workload (small streams + rendezvous bulks, both directions) over N real TCP rails",
		"rails", "msgs", "MB", "time(ms)", "goodput(MB/s)", "speedup vs 1 rail", "frames per rail")
	t.Caption = "each rail is an independent TCP connection per peer enforcing its capability record's 60 MB/s bandwidth class; bulk transfers stripe across rails, small aggregates stay on the low-latency rail"
	for _, r := range results {
		dist := ""
		for _, p := range x4Rails(r.RailCount) {
			if dist != "" {
				dist += " "
			}
			dist += fmt.Sprintf("%d", r.RailFrames[p.Name])
		}
		t.AddRow(
			fmt.Sprintf("%d", r.RailCount),
			fmt.Sprintf("%d", r.Msgs),
			stats.FormatFloat(float64(r.Bytes)/1e6),
			stats.FormatFloat(r.Completion.Seconds()*1e3),
			stats.FormatFloat(r.Goodput()/1e6),
			fmt.Sprintf("%.2fx", float64(base.Completion)/float64(r.Completion)),
			dist,
		)
	}
	return []*stats.Table{t}
}
