package exp

import (
	"fmt"

	"newmad/internal/middleware/minidsm"
	"newmad/internal/middleware/minimpi"
	"newmad/internal/middleware/minirpc"
	"newmad/internal/packet"
	"newmad/internal/stats"
)

// E9 — §1–2: "today's parallel applications tend to use complex
// conglomerates of multiple communication middlewares ... increasing the
// number of concurrent communication flows between processing nodes."
//
// Three real middlewares run concurrently on the same four nodes: an
// MPI-style halo exchange with barriers, an RPC request storm, and DSM
// page traffic. The optimizer sees their flows together; the baseline
// handles each deterministically. The conglomerate is where cross-flow
// optimization pays: none of the middlewares alone changes its code.

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Middleware conglomerate (MPI + RPC + DSM concurrently)",
		Claim: "§1–2: concurrent flows from stacked middlewares benefit from cross-flow scheduling",
		Run:   runE9,
	})
}

type e9Result struct {
	m        Metrics
	rpcCalls int
	haloIter int
}

func e9Point(bundle string, iters, calls int, seed uint64) (e9Result, error) {
	const nodes = 4
	rig, err := NewRig(RigOptions{
		ID:           "E9",
		Nodes:        nodes,
		Bundle:       bundle,
		WithSessions: true,
	})
	if err != nil {
		return e9Result{}, err
	}
	// Build the middleware stack on every node, same creation order.
	worlds := make([]*minimpi.World, nodes)
	rpcs := make([]*minirpc.Peer, nodes)
	dsms := make([]*minidsm.DSM, nodes)
	for n := 0; n < nodes; n++ {
		w, err := minimpi.New(rig.Sessions[packet.NodeID(n)], nodes)
		if err != nil {
			return e9Result{}, err
		}
		worlds[n] = w
		rpcs[n] = minirpc.New(rig.Sessions[packet.NodeID(n)])
		d, err := minidsm.New(rig.Sessions[packet.NodeID(n)], nodes, 8, 4096)
		if err != nil {
			return e9Result{}, err
		}
		dsms[n] = d
	}

	res := e9Result{}

	// --- MPI: iterated ring halo exchange with a barrier per iteration.
	var iterate func(rank, iter int)
	iterate = func(rank, iter int) {
		if iter >= iters {
			return
		}
		w := worlds[rank]
		right := (rank + 1) % nodes
		left := (rank - 1 + nodes) % nodes
		got := 0
		recvBoth := func(int, int64, []byte) {
			got++
			if got == 2 {
				w.Barrier(func() {
					if rank == 0 {
						res.haloIter++
					}
					iterate(rank, iter+1)
				})
			}
		}
		w.Recv(left, int64(1000+iter), recvBoth)
		w.Recv(right, int64(2000+iter), recvBoth)
		if err := w.Send(right, int64(1000+iter), make([]byte, 1024)); err != nil {
			panic(err)
		}
		if err := w.Send(left, int64(2000+iter), make([]byte, 1024)); err != nil {
			panic(err)
		}
	}

	// --- RPC: node 1 serves; nodes 2,3 fire storms of small calls.
	rpcs[1].Register("work", func(_ packet.NodeID, args []byte) []byte {
		return append(args, 0xFF)
	})
	fire := func(client int) {
		var next func(i int)
		next = func(i int) {
			if i >= calls {
				return
			}
			rpcs[client].Call(1, "work", []byte{byte(i)}, func(resp []byte, err error) {
				if err != nil {
					panic(err)
				}
				res.rpcCalls++
				next(i + 1)
			})
		}
		next(0)
	}

	// --- DSM: node 3 writes pages, nodes 0 and 2 read them.
	dsmOps := 0
	var churn func(i int)
	churn = func(i int) {
		if i >= iters*2 {
			return
		}
		page := i % 8
		if err := dsms[3].Write(page, 0, []byte{byte(i)}, func() {
			dsmOps++
			_ = dsms[0].Read(page, func([]byte) {
				_ = dsms[2].Read(page, func([]byte) { churn(i + 1) })
			})
		}); err != nil {
			panic(err)
		}
	}

	// Kick everything off at t=0.
	rig.Cl.Eng.At(0, "e9.start", func() {
		for r := 0; r < nodes; r++ {
			iterate(r, 0)
		}
		fire(2)
		fire(3)
		churn(0)
	})

	m, err := rig.Run(0) // delivery count varies; completion is the metric
	if err != nil {
		return e9Result{}, err
	}
	if res.haloIter != iters {
		return e9Result{}, fmt.Errorf("halo iterations %d of %d", res.haloIter, iters)
	}
	if res.rpcCalls != 2*calls {
		return e9Result{}, fmt.Errorf("rpc calls %d of %d", res.rpcCalls, 2*calls)
	}
	res.m = m
	return res, nil
}

func runE9(cfg Config) []*stats.Table {
	iters, calls := 12, 40
	if cfg.Quick {
		iters, calls = 4, 10
	}
	t := stats.NewTable("E9 — MPI halo + RPC storm + DSM churn on 4 nodes (MX)",
		"strategy", "time(µs)", "frames", "aggregates", "speedup")
	t.Caption = "identical middleware workload; only the engine's strategy bundle differs"
	base, err := e9Point("fifo", iters, calls, cfg.Seed)
	if err != nil {
		panic(err)
	}
	for _, bundle := range []string{"fifo", "aggregate"} {
		r, err := e9Point(bundle, iters, calls, cfg.Seed)
		if err != nil {
			panic(err)
		}
		t.AddRow(bundle,
			stats.FormatFloat(float64(r.m.End)/1000),
			fmt.Sprintf("%d", r.m.Frames),
			fmt.Sprintf("%d", r.m.Aggregates),
			fmt.Sprintf("%.2fx", float64(base.m.End)/float64(r.m.End)),
		)
	}
	return []*stats.Table{t}
}

// E9Times returns (fifo, aggregate) completion times for the shape test.
func E9Times(cfg Config) (fifo, aggregate float64) {
	iters, calls := 12, 40
	if cfg.Quick {
		iters, calls = 4, 10
	}
	a, err := e9Point("fifo", iters, calls, cfg.Seed)
	if err != nil {
		panic(err)
	}
	b, err := e9Point("aggregate", iters, calls, cfg.Seed)
	if err != nil {
		panic(err)
	}
	return float64(a.m.End), float64(b.m.End)
}
