package exp

import (
	"fmt"

	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/workload"
)

// E3 — §3: when the NIC never stays busy long enough for a backlog to
// accumulate, the scheduler "may artificially delay [packets] for a short
// time to increase the potential of interesting aggregations (in a TCP
// Nagle's algorithm fashion)."
//
// Workload: sparse Poisson arrivals from several flows — each packet would
// normally be sent alone. Sweeping the artificial delay exposes the
// latency-versus-transactions trade-off: more delay, fewer frames, higher
// mean latency.

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Nagle-style artificial delay sweep",
		Claim: "§3: a short artificial delay increases aggregation potential under sparse traffic",
		Run:   runE3,
	})
}

func e3Point(delay simnet.Duration, flows, perFlow int, seed uint64) (Metrics, error) {
	rig, err := NewRig(RigOptions{
		ID:         "E3",
		Nagle:      delay,
		NagleFlush: 16, // rely on the timer, not backlog pressure
	})
	if err != nil {
		return Metrics{}, err
	}
	d := workload.NewDriver(rig.Cl.Eng, rig.Engines, seed)
	for f := 0; f < flows; f++ {
		d.Add(workload.FlowSpec{
			Flow: packet.FlowID(f + 1), Src: 0, Dst: 1,
			Class:   packet.ClassSmall,
			Size:    workload.Fixed(64),
			Arrival: workload.Poisson{Mean: 10 * simnet.Microsecond},
			Count:   perFlow,
		})
	}
	return rig.Run(flows * perFlow)
}

func runE3(cfg Config) []*stats.Table {
	flows, perFlow := 6, 50
	delays := []simnet.Duration{0, 2 * simnet.Microsecond, 4 * simnet.Microsecond,
		8 * simnet.Microsecond, 16 * simnet.Microsecond, 32 * simnet.Microsecond}
	if cfg.Quick {
		flows, perFlow = 4, 16
		delays = []simnet.Duration{0, 8 * simnet.Microsecond, 32 * simnet.Microsecond}
	}
	t := stats.NewTable("E3 — Nagle delay sweep (sparse Poisson traffic, MX)",
		"delay(µs)", "frames", "pkts/frame", "meanLat(µs)", "p99Lat(µs)", "msg/s")
	t.Caption = "frames fall and latency rises with delay; the knee is the tuning point"
	for _, d := range delays {
		m, err := e3Point(d, flows, perFlow, cfg.Seed)
		if err != nil {
			panic(err)
		}
		perFrame := float64(m.Delivered) / float64(m.Frames)
		t.AddRow(
			stats.FormatFloat(d.Micros()),
			fmt.Sprintf("%d", m.Frames),
			stats.FormatFloat(perFrame),
			stats.FormatFloat(m.MeanLatUs),
			stats.FormatFloat(m.P99LatUs),
			stats.FormatFloat(m.MsgPerSec),
		)
	}
	return []*stats.Table{t}
}

// E3Point exposes one sweep cell for tests.
func E3Point(delay simnet.Duration, cfg Config) Metrics {
	flows, perFlow := 6, 50
	if cfg.Quick {
		flows, perFlow = 4, 16
	}
	m, err := e3Point(delay, flows, perFlow, cfg.Seed)
	if err != nil {
		panic(err)
	}
	return m
}
