package exp

import (
	"fmt"

	"newmad/internal/caps"
	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/strategy"
	"newmad/internal/workload"
)

// E5 — §2: the scheduler "may assign some of these resources to different
// classes of traffic (assigning different channel[s] to large synchronous
// sends, put/get transfers and control/signalling messages)".
//
// Workload: a continuous stream of bulk sends saturates the node while
// latency-critical control pings run concurrently. With a single shared
// queue the pings serialize behind multi-kilobyte frames; with a reserved
// control lane (or the adaptive partitioner) they keep their microsecond
// latency.

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Traffic classes on dedicated channels",
		Claim: "§2: class-to-channel assignment protects control latency under bulk load",
		Run:   runE5,
	})
}

// e5Point runs bulk+control with the named class policy and returns the
// control-ping latency distribution.
func e5Point(classes strategy.ClassPolicy, pings, bulks int, seed uint64) (Metrics, error) {
	b, err := strategy.New("aggregate")
	if err != nil {
		return Metrics{}, err
	}
	b.Classes = classes

	// Two channels: enough for one reserved control lane plus a bulk lane.
	prof := caps.MX
	prof.Channels = 2
	rig, err := NewRig(RigOptions{ID: "E5", Profiles: []caps.Caps{prof}})
	if err != nil {
		return Metrics{}, err
	}
	for _, eng := range rig.Engines {
		if err := eng.SetBundle(b); err != nil {
			return Metrics{}, err
		}
	}
	d := workload.NewDriver(rig.Cl.Eng, rig.Engines, seed)
	// Bulk stream: 16 KiB eager frames back to back (below rendezvous
	// threshold so they hold the channel).
	d.Add(workload.FlowSpec{
		Flow: 1, Src: 0, Dst: 1, Class: packet.ClassBulk,
		Size: workload.Fixed(16 << 10), Arrival: workload.BackToBack{},
		Count: bulks,
	})
	// Control pings every 20 µs.
	d.Add(workload.FlowSpec{
		Flow: 2, Src: 0, Dst: 1, Class: packet.ClassControl,
		Recv: packet.RecvExpress,
		Size: workload.Fixed(16), Arrival: workload.Poisson{Mean: 20 * simnet.Microsecond},
		Count: pings,
	})
	return rig.Run(pings + bulks)
}

func runE5(cfg Config) []*stats.Table {
	pings, bulks := 100, 60
	if cfg.Quick {
		pings, bulks = 30, 20
	}
	t := stats.NewTable("E5 — control latency under bulk load (MX, 2 channels)",
		"class policy", "ctrl p50(µs)", "ctrl p99(µs)", "time(µs)", "frames")
	t.Caption = "single = one shared queue; reserved = channel 0 dedicated to control"
	for _, tc := range []struct {
		name   string
		policy strategy.ClassPolicy
	}{
		{"single", strategy.SingleQueue{}},
		{"reserved", strategy.ReservedControl{}},
		{"adaptive", strategy.NewAdaptiveClasses(64)},
	} {
		m, err := e5Point(tc.policy, pings, bulks, cfg.Seed)
		if err != nil {
			panic(err)
		}
		t.AddRow(tc.name,
			stats.FormatFloat(ctrlP(m, 0.5)),
			stats.FormatFloat(m.CtrlP99Us),
			stats.FormatFloat(float64(m.End)/1000),
			fmt.Sprintf("%d", m.Frames),
		)
	}
	return []*stats.Table{t}
}

// ctrlP returns the control-latency quantile in µs; Metrics carries p99
// directly, p50 comes from the same histogram via the median field.
func ctrlP(m Metrics, q float64) float64 {
	if q == 0.99 {
		return m.CtrlP99Us
	}
	return m.CtrlP50Us
}

// E5ControlP99 exposes the p99 control latency for the shape tests.
func E5ControlP99(policy strategy.ClassPolicy, cfg Config) float64 {
	pings, bulks := 100, 60
	if cfg.Quick {
		pings, bulks = 30, 20
	}
	m, err := e5Point(policy, pings, bulks, cfg.Seed)
	if err != nil {
		panic(err)
	}
	return m.CtrlP99Us
}
