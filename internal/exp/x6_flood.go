package exp

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"newmad/internal/caps"
	"newmad/internal/control"
	"newmad/internal/core"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/stats"
)

// X6 — multi-tenant admission addendum (not a claim of the paper; added
// with the admission-control subsystem).
//
// Three tenants share one sending engine: two protected tenants offering
// steady traffic well inside their quotas, and a flooder that ramps to 10×
// its admitted rate mid-run. The properties under test are isolation and
// reaction: the flood must be absorbed at the admission edge (refusals,
// never queue growth stolen from other tenants), the protected tenants'
// p99 end-to-end latency must stay within 25% of a flood-free baseline of
// the identical protected schedule, the control loop's Lagrangian
// multiplier must demote the flooder within one control interval of the
// onset, and the delivery ledger must stay exactly-once — every admitted
// packet delivered once, every refusal explicit.

func init() {
	register(Experiment{
		ID:    "X6",
		Title: "flood isolation: per-tenant admission control under a 10× flooder",
		Claim: "admission addendum: token-bucket + backlog quotas shed a flooding tenant at Submit while protected tenants hold p99 within 25% of the no-flood baseline (not in the paper)",
		Run:   runX6,
	})
}

// X6 tenant cast. Tenant IDs are arbitrary but stable so the tables and
// the madbench JSON read the same run to run.
const (
	x6TenantA   = packet.TenantID(1) // protected
	x6TenantB   = packet.TenantID(2) // protected
	x6Flooder   = packet.TenantID(3)
	x6FloodGap  = 2 * simnet.Microsecond  // 500k pps offered — 10× the flooder's quota
	x6SteadyGap = 20 * simnet.Microsecond // 50k pps per protected tenant
	x6Interval  = 250 * simnet.Microsecond
)

// x6Quotas is the nominal quota table: protected tenants get headroom (4×
// their offered 50k pps), the flooder's sustained rate is 50k pps so its
// 500k pps ramp offers exactly 10× quota.
func x6Quotas() map[packet.TenantID]core.TenantQuota {
	return map[packet.TenantID]core.TenantQuota{
		x6TenantA: {Rate: 200e3, Burst: 64, Backlog: 512},
		x6TenantB: {Rate: 200e3, Burst: 64, Backlog: 512},
		x6Flooder: {Rate: 50e3, Burst: 32, Backlog: 256},
	}
}

// x6Shape sizes the run: messages per protected tenant, flood length, and
// the virtual flood onset.
func x6Shape(cfg Config) (steadyMsgs, floodMsgs int, onset simnet.Duration) {
	if cfg.Quick {
		return 200, 1000, 1 * simnet.Millisecond
	}
	return 500, 2500, 1 * simnet.Millisecond
}

// x6Phase is one boot-to-drain run: the protected schedule always, the
// flooder only when flood is set.
type x6Phase struct {
	// P99Us is the protected tenants' end-to-end p99 (virtual µs).
	P99Us map[packet.TenantID]float64
	// Offered/Admitted/Refused are per-tenant submission outcomes.
	Offered, Admitted, Refused map[packet.TenantID]int
	// Duplicates is the excess over exactly-once across all deliveries.
	Duplicates int
	// RetuneAfter is the delay from flood onset to the first flooder
	// quota demotion the engine applied (flood phase only).
	RetuneAfter simnet.Duration
	RetuneSeen  bool
	// FlooderRateEnd is the admission rate in effect for the flooder when
	// the run drained.
	FlooderRateEnd float64
}

func x6Run(cfg Config, flood bool) (x6Phase, error) {
	steadyMsgs, floodMsgs, onset := x6Shape(cfg)

	type key struct {
		flow packet.FlowID
		seq  int
	}
	var (
		rig       *Rig
		submitAt  = map[key]simnet.Time{}
		delivered = map[key]int{}
		latencies = map[packet.TenantID][]float64{}
		ph        = x6Phase{
			P99Us:    map[packet.TenantID]float64{},
			Offered:  map[packet.TenantID]int{},
			Admitted: map[packet.TenantID]int{},
			Refused:  map[packet.TenantID]int{},
		}
		admitted  int
		arrived   int
		submitErr error
	)
	tenantOf := map[packet.FlowID]packet.TenantID{
		11: x6TenantA, 12: x6TenantB, 13: x6Flooder,
	}

	rig, err := NewRig(RigOptions{
		Profiles: []caps.Caps{SingleChannel(caps.MX)},
		OnDeliver: func(node packet.NodeID, d proto.Deliverable) {
			if node != 1 {
				return
			}
			k := key{d.Pkt.Flow, d.Pkt.Seq}
			delivered[k]++
			if delivered[k] > 1 {
				ph.Duplicates++
				return
			}
			arrived++
			t := tenantOf[d.Pkt.Flow]
			lat := rig.Cl.Eng.Now().Sub(submitAt[k])
			latencies[t] = append(latencies[t], lat.Micros())
		},
	})
	if err != nil {
		return ph, err
	}

	// The flood-onset reaction gate reads the engine's own retune stream:
	// the first flooder demotion at or after the onset, timestamped on the
	// virtual clock the control ticks run on. The seed writes at Start
	// land before the onset and fall out of the filter.
	var retunes []core.RetuneEvent
	rig.Engines[0].SetRetuneObserver(func(ev core.RetuneEvent) {
		if ev.Knob == "tenant-quota" {
			retunes = append(retunes, ev)
		}
	})

	ctl, err := control.New(control.Options{
		Engine:        rig.Engines[0],
		Runtime:       rig.Cl.Eng,
		Interval:      x6Interval,
		NominalQuotas: x6Quotas(),
	})
	if err != nil {
		return ph, err
	}
	if err := ctl.Start(); err != nil {
		return ph, err
	}
	defer ctl.Stop()

	// A refused submission must not consume a sequence number: admission
	// refusals happen before the packet enters the flow's sequence space,
	// so the caller retries under the same seq (DESIGN §10). Consuming one
	// anyway would leave the receiver's in-order reconstruction waiting on
	// a seq that never existed.
	nextSeq := map[packet.FlowID]int{}
	submit := func(flow packet.FlowID, tenant packet.TenantID) {
		seq := nextSeq[flow]
		p := &packet.Packet{
			Flow: flow, Msg: packet.MsgID(seq), Seq: seq, Last: true,
			Src: 0, Dst: 1, Class: packet.ClassSmall, Tenant: tenant,
			Payload: make([]byte, 64),
		}
		ph.Offered[tenant]++
		err := rig.Engines[0].Submit(p)
		switch {
		case err == nil:
			ph.Admitted[tenant]++
			admitted++
			nextSeq[flow]++
			submitAt[key{flow, seq}] = rig.Cl.Eng.Now()
		case errors.Is(err, core.ErrThrottled) || errors.Is(err, core.ErrQuotaExceeded):
			ph.Refused[tenant]++
		default:
			if submitErr == nil {
				submitErr = err
			}
		}
	}

	// Protected schedule: identical in both phases — the baseline and the
	// flood run differ only in the flooder's presence.
	for q := 0; q < steadyMsgs; q++ {
		at := simnet.Time(0).Add(simnet.Duration(q) * x6SteadyGap)
		rig.Cl.Eng.At(at, "x6.steady", func() {
			submit(11, x6TenantA)
			submit(12, x6TenantB)
		})
	}
	if flood {
		for q := 0; q < floodMsgs; q++ {
			at := simnet.Time(0).Add(onset + simnet.Duration(q)*x6FloodGap)
			rig.Cl.Eng.At(at, "x6.flood", func() {
				submit(13, x6Flooder)
			})
		}
	}

	// Controller ticks reschedule themselves, so the queue never drains;
	// run until every admitted packet arrived (or a generous virtual
	// deadline turns a silent drop into a diagnosable stall).
	const deadline = simnet.Time(1 * simnet.Second)
	totalOffered := 2 * steadyMsgs
	if flood {
		totalOffered += floodMsgs
	}
	offered := func() int {
		n := 0
		for _, v := range ph.Offered {
			n += v
		}
		return n
	}
	for submitErr == nil && rig.Cl.Eng.Now() < deadline && rig.Cl.Eng.Step() {
		if offered() == totalOffered && arrived == admitted {
			break
		}
	}
	if submitErr != nil {
		return ph, submitErr
	}
	if arrived != admitted {
		return ph, fmt.Errorf("exp: X6 ledger broken: %d admitted, %d arrived (silent drop)", admitted, arrived)
	}

	for t, samples := range latencies {
		sort.Float64s(samples)
		ph.P99Us[t] = samples[(len(samples)*99)/100]
	}
	if flood {
		onsetAt := simnet.Time(0).Add(onset)
		for _, ev := range retunes {
			if ev.At >= onsetAt && strings.Contains(ev.Note, "tenant=3 ") {
				ph.RetuneAfter = ev.At.Sub(onsetAt)
				ph.RetuneSeen = true
				break
			}
		}
	}
	ph.FlooderRateEnd, _ = ctl.TenantRate(x6Flooder)
	return ph, nil
}

// X6Result is both phases side by side.
type X6Result struct {
	Base, Flood x6Phase
	Interval    simnet.Duration
}

// X6Flood runs the baseline and the flood phases.
func X6Flood(cfg Config) (X6Result, error) {
	base, err := x6Run(cfg, false)
	if err != nil {
		return X6Result{}, err
	}
	flood, err := x6Run(cfg, true)
	if err != nil {
		return X6Result{}, err
	}
	return X6Result{Base: base, Flood: flood, Interval: x6Interval}, nil
}

func runX6(cfg Config) []*stats.Table {
	res, err := X6Flood(cfg)
	if err != nil {
		panic(err)
	}
	t := stats.NewTable("X6 — flood isolation: 3 tenants on one engine, flooder ramps to 10× quota (MX 1ch)",
		"tenant", "offered", "admitted", "refused", "base p99(µs)", "flood p99(µs)")
	retune := "no retune observed"
	if res.Flood.RetuneSeen {
		retune = fmt.Sprintf("flooder demoted %v after onset (interval %v)", res.Flood.RetuneAfter, res.Interval)
	}
	t.Caption = fmt.Sprintf("%s; flooder rate at drain %.0f pps", retune, res.Flood.FlooderRateEnd)
	summaries := make([]TenantSummary, 0, 3)
	for _, tn := range []packet.TenantID{x6TenantA, x6TenantB, x6Flooder} {
		name := fmt.Sprintf("tenant %d", tn)
		if tn == x6Flooder {
			name += " (flooder)"
		}
		t.AddRow(name,
			fmt.Sprintf("%d", res.Flood.Offered[tn]),
			fmt.Sprintf("%d", res.Flood.Admitted[tn]),
			fmt.Sprintf("%d", res.Flood.Refused[tn]),
			stats.FormatFloat(res.Base.P99Us[tn]),
			stats.FormatFloat(res.Flood.P99Us[tn]),
		)
		summaries = append(summaries, TenantSummary{
			Tenant:   uint8(tn),
			Offered:  uint64(res.Flood.Offered[tn]),
			Admitted: uint64(res.Flood.Admitted[tn]),
			Refused:  uint64(res.Flood.Refused[tn]),
			P99E2EUs: res.Flood.P99Us[tn],
		})
	}
	reportTenants("X6", summaries)
	return []*stats.Table{t}
}
