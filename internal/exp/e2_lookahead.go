package exp

import (
	"fmt"

	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/workload"
)

// E2 — the paper's first named future-work study (§4): "experiment with
// different packet lookahead window sizes."
//
// Workload: bursty multi-flow traffic (packets arrive in batches, so a
// backlog exists whenever the NIC goes idle). The lookahead window bounds
// how deep into the waiting list the optimizer may look when composing a
// frame. Small windows forfeit aggregation opportunities; unbounded
// windows maximize them at higher scan cost (measured as wall time).

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "Packet lookahead window size sweep",
		Claim: "§4 future work: effect of the lookahead window on optimization quality",
		Run:   runE2,
	})
}

func e2Point(window, flows, perFlow int, seed uint64) (Metrics, error) {
	rig, err := NewRig(RigOptions{ID: "E2", Lookahead: window})
	if err != nil {
		return Metrics{}, err
	}
	d := workload.NewDriver(rig.Cl.Eng, rig.Engines, seed)
	for f := 0; f < flows; f++ {
		d.Add(workload.FlowSpec{
			Flow: packet.FlowID(f + 1), Src: 0, Dst: 1,
			Class: packet.ClassSmall,
			Size:  workload.Uniform{Lo: 32, Hi: 256},
			Arrival: &workload.Bursts{
				Size: 8, Gap: 30 * simnet.Microsecond,
			},
			Count: perFlow,
		})
	}
	return rig.Run(flows * perFlow)
}

func runE2(cfg Config) []*stats.Table {
	flows, perFlow := 8, 48
	windows := []int{1, 2, 4, 8, 16, 32, 0}
	if cfg.Quick {
		flows, perFlow = 4, 16
		windows = []int{1, 4, 0}
	}
	t := stats.NewTable("E2 — lookahead window sweep (bursty traffic, MX)",
		"window", "frames", "time(µs)", "meanLat(µs)", "p99Lat(µs)", "wall(ms)")
	t.Caption = "window 0 = unbounded; fewer frames and lower completion time indicate better plans"
	for _, w := range windows {
		m, err := e2Point(w, flows, perFlow, cfg.Seed)
		if err != nil {
			panic(err)
		}
		label := fmt.Sprintf("%d", w)
		if w == 0 {
			label = "∞"
		}
		t.AddRow(label,
			fmt.Sprintf("%d", m.Frames),
			stats.FormatFloat(float64(m.End)/1000),
			stats.FormatFloat(m.MeanLatUs),
			stats.FormatFloat(m.P99LatUs),
			stats.FormatFloat(float64(m.Wall.Microseconds())/1000),
		)
	}
	return []*stats.Table{t}
}

// E2Frames exposes the frame count for a window (test oracle).
func E2Frames(window int, cfg Config) uint64 {
	flows, perFlow := 8, 48
	if cfg.Quick {
		flows, perFlow = 4, 16
	}
	m, err := e2Point(window, flows, perFlow, cfg.Seed)
	if err != nil {
		panic(err)
	}
	return m.Frames
}
