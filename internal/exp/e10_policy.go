package exp

import (
	"newmad/internal/caps"
	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/strategy"
	"newmad/internal/workload"
)

// E10 — §2: "the scheduler may also choose to dynamically change the
// assignment of networking resources to traffic classes, thus selecting
// different policies, as the needs of the application evolve during the
// execution."
//
// A two-phase application: a bulk-dominated phase, then a control-
// dominated phase. A static partition tuned for either phase wastes
// channels during the other; the adaptive policy re-partitions as the
// observed mix shifts. Reported: control latency and completion per
// (phase, policy).

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "Dynamic re-assignment of channels to traffic classes",
		Claim: "§2: resources re-assigned to classes as application phases change",
		Run:   runE10,
	})
}

func e10Point(classes strategy.ClassPolicy, bulks, pings int, seed uint64) (Metrics, error) {
	b, err := strategy.New("aggregate")
	if err != nil {
		return Metrics{}, err
	}
	b.Classes = classes
	prof := caps.MX // 4 channels
	rig, err := NewRig(RigOptions{ID: "E10", Profiles: []caps.Caps{prof}})
	if err != nil {
		return Metrics{}, err
	}
	for _, eng := range rig.Engines {
		if err := eng.SetBundle(b); err != nil {
			return Metrics{}, err
		}
	}
	d := workload.NewDriver(rig.Cl.Eng, rig.Engines, seed)
	// Phase A (bulk-heavy, t=0): bulks × 16 KiB on four flows, plus sparse
	// pings that suffer if classes share channels.
	for f := 0; f < 4; f++ {
		d.Add(workload.FlowSpec{
			Flow: packet.FlowID(f + 1), Src: 0, Dst: 1, Class: packet.ClassBulk,
			Size: workload.Fixed(16 << 10), Arrival: workload.BackToBack{},
			Count: bulks,
		})
	}
	d.Add(workload.FlowSpec{
		Flow: 5, Src: 0, Dst: 1, Class: packet.ClassControl, Recv: packet.RecvExpress,
		Size: workload.Fixed(16), Arrival: workload.Poisson{Mean: 50 * simnet.Microsecond},
		Count: pings / 2,
	})
	// Phase B (control-heavy, after the bulk phase drains): a dense ping
	// stream with a trickle of bulk. A static partition sized for phase A
	// wastes channels here; the adaptive policy re-partitions.
	const phaseB = 4 * simnet.Millisecond
	d.Add(workload.FlowSpec{
		Flow: 6, Src: 0, Dst: 1, Class: packet.ClassControl, Recv: packet.RecvExpress,
		Size: workload.Fixed(16), Arrival: workload.Poisson{Mean: 5 * simnet.Microsecond},
		Count: pings / 2, Start: phaseB,
	})
	d.Add(workload.FlowSpec{
		Flow: 7, Src: 0, Dst: 1, Class: packet.ClassBulk,
		Size: workload.Fixed(16 << 10), Arrival: workload.Poisson{Mean: 200 * simnet.Microsecond},
		Count: bulks / 4, Start: phaseB,
	})
	total := 4*bulks + pings/2*2 + bulks/4
	return rig.Run(total)
}

func runE10(cfg Config) []*stats.Table {
	bulks, pings := 40, 120
	if cfg.Quick {
		bulks, pings = 12, 40
	}
	t := stats.NewTable("E10 — static vs adaptive class partitioning across phases (MX, 4 channels)",
		"class policy", "ctrl p50(µs)", "ctrl p99(µs)", "time(µs)", "frames")
	t.Caption = "bulk-heavy phase then control-heavy phase; adaptive re-partitions between them"
	for _, tc := range []struct {
		name   string
		policy strategy.ClassPolicy
	}{
		{"single-queue", strategy.SingleQueue{}},
		{"static-reserved", strategy.ReservedControl{}},
		{"adaptive", strategy.NewAdaptiveClasses(32)},
	} {
		m, err := e10Point(tc.policy, bulks, pings, cfg.Seed)
		if err != nil {
			panic(err)
		}
		t.AddRow(tc.name,
			stats.FormatFloat(m.CtrlP50Us),
			stats.FormatFloat(m.CtrlP99Us),
			stats.FormatFloat(float64(m.End)/1000),
			stats.FormatFloat(float64(m.Frames)),
		)
	}
	return []*stats.Table{t}
}

// E10CtrlP99 exposes control tail latency per policy for the shape test.
func E10CtrlP99(policy strategy.ClassPolicy, cfg Config) float64 {
	bulks, pings := 40, 120
	if cfg.Quick {
		bulks, pings = 12, 40
	}
	m, err := e10Point(policy, bulks, pings, cfg.Seed)
	if err != nil {
		panic(err)
	}
	return m.CtrlP99Us
}
