package exp

import (
	"fmt"

	"newmad/internal/caps"
	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/workload"
)

// X1 — WAN addendum (not a claim of the paper; added per the reproduction
// brief's note that an emulated WAN substrate was expected).
//
// The same engine runs unmodified over the emulated wide-area profile
// (5 ms one-way latency, 100 MB/s): per-request overhead is now dominated
// by the path RTT, so batching small application messages into few large
// frames — the GridFTP/bbcp-style concern of the mid-2000s — is where the
// engine's aggregation pays most. This experiment sweeps concurrent
// streams and compares per-message FIFO against the aggregating engine on
// a WAN path.

func init() {
	register(Experiment{
		ID:    "X1",
		Title: "WAN addendum: aggregation over an emulated wide-area path",
		Claim: "reproduction brief: engine behaviour on an emulated WAN (not in the paper)",
		Run:   runX1,
	})
}

func x1Point(bundle string, flows, perFlow, size int, seed uint64) (Metrics, error) {
	wan := caps.WAN
	wan.Channels = 2
	rig, err := NewRig(RigOptions{ID: "X1", Bundle: bundle, Profiles: []caps.Caps{wan}})
	if err != nil {
		return Metrics{}, err
	}
	d := workload.NewDriver(rig.Cl.Eng, rig.Engines, seed)
	for f := 0; f < flows; f++ {
		d.Add(workload.FlowSpec{
			Flow: packet.FlowID(f + 1), Src: 0, Dst: 1,
			Class:   packet.ClassSmall,
			Size:    workload.Fixed(size),
			Arrival: workload.Poisson{Mean: 20 * simnet.Microsecond},
			Count:   perFlow,
		})
	}
	return rig.Run(flows * perFlow)
}

func runX1(cfg Config) []*stats.Table {
	// Small messages: the regime where per-frame fixed costs (~22 µs of
	// stack overhead plus header tax) dwarf the 5 µs of payload
	// serialization, so transaction amortization is what sets goodput.
	perFlow, size := 100, 512
	flowCounts := []int{1, 4, 16}
	if cfg.Quick {
		perFlow = 30
		flowCounts = []int{1, 8}
	}
	t := stats.NewTable("X1 — WAN path (5 ms one-way, 100 MB/s), 512 B messages",
		"flows", "strategy", "frames", "time(ms)", "goodput(MB/s)", "meanLat(ms)")
	t.Caption = "small messages over a WAN: per-frame overhead dominates; aggregation amortizes it"
	for _, flows := range flowCounts {
		for _, bundle := range []string{"fifo", "aggregate"} {
			m, err := x1Point(bundle, flows, perFlow, size, cfg.Seed)
			if err != nil {
				panic(err)
			}
			goodput := float64(flows*perFlow*size) / (float64(m.End) / 1e9) / 1e6
			t.AddRow(
				fmt.Sprintf("%d", flows),
				bundle,
				fmt.Sprintf("%d", m.Frames),
				stats.FormatFloat(float64(m.End)/1e6),
				stats.FormatFloat(goodput),
				stats.FormatFloat(m.MeanLatUs/1000),
			)
		}
	}
	return []*stats.Table{t}
}

// X1Goodput exposes goodput for the shape test.
func X1Goodput(bundle string, flows int, cfg Config) float64 {
	perFlow, size := 100, 512
	if cfg.Quick {
		perFlow = 30
	}
	m, err := x1Point(bundle, flows, perFlow, size, cfg.Seed)
	if err != nil {
		panic(err)
	}
	return float64(flows*perFlow*size) / (float64(m.End) / 1e9) / 1e6
}
