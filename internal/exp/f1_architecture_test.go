package exp

import (
	"testing"

	"newmad/internal/mad"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// TestF1ArchitectureTrace realizes Figure 1: it traces one structured
// message through all three layers — the collect layer (mad packing API),
// the optimizing layer (core engine, activated by NIC idleness), and the
// transfer layer (driver + NIC) — and asserts each layer did its job, in
// order, with the metrics each layer owns.
func TestF1ArchitectureTrace(t *testing.T) {
	// A short Nagle delay lets the two fragments of the traced message
	// share one frame even though the NIC starts idle (§3's slow-sender
	// case).
	rig, err := NewRig(RigOptions{WithSessions: true, Nagle: 2 * simnet.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	var delivered *mad.Incoming
	rig.Sessions[1].Channel("trace").OnMessage(func(src packet.NodeID, m *mad.Incoming) {
		delivered = m
	})

	// Layer 1 — collect: the application packs a structured message
	// (express header + cheaper payload) and immediately returns.
	conn := rig.Sessions[0].Channel("trace").Connect(1)
	msg := conn.BeginPacking()
	msg.Pack([]byte("hdr"), mad.SendCheaper, mad.RecvExpress)
	msg.Pack(make([]byte, 2048), mad.SendCheaper, mad.RecvCheaper)
	msg.EndPacking()

	st := rig.Cl.Stats
	if st.CounterValue("core.submitted") == 0 {
		t.Fatal("collect layer did not hand packets to the optimizer")
	}

	// Layer 2+3 — run the simulation: the optimizer reacts to channel
	// idleness and posts frames; the NIC models the transfer.
	rig.Cl.Eng.Run()

	if delivered == nil {
		t.Fatal("message did not traverse the three layers")
	}
	if len(delivered.Fragments) != 2 || string(delivered.Fragments[0]) != "hdr" {
		t.Fatalf("message corrupted in transit: %v fragments", len(delivered.Fragments))
	}

	// Layer ordering invariants, via the metrics each layer owns:
	submitted := st.CounterValue("core.submitted")
	posted := st.CounterValue("core.frames_posted")
	framesTx := st.CounterValue("nic.tx.frames")
	framesRx := st.CounterValue("nic.rx.frames")
	deliveredN := st.CounterValue("core.delivered")

	if posted == 0 || framesTx == 0 || framesRx == 0 {
		t.Fatalf("layers silent: posted=%d tx=%d rx=%d", posted, framesTx, framesRx)
	}
	if framesTx != posted {
		t.Fatalf("transfer layer saw %d frames, optimizer posted %d", framesTx, posted)
	}
	if framesRx != framesTx {
		t.Fatalf("rx %d != tx %d on a loss-free fabric", framesRx, framesTx)
	}
	if deliveredN != submitted {
		t.Fatalf("delivered %d of %d submitted fragments", deliveredN, submitted)
	}
	// Optimization layer: the two fragments shared one frame (the express
	// header may not be deferred, but aggregation inside one message is
	// free): fewer frames than fragments.
	if framesTx >= submitted {
		t.Fatalf("optimizer posted %d frames for %d fragments — no aggregation at all", framesTx, submitted)
	}
	// The engine was driven by idleness, not submits: the idle upcall
	// counter must be live once traffic flowed.
	if st.CounterValue("core.idle_upcalls") == 0 {
		t.Fatal("optimizer never activated by NIC idleness")
	}
}
