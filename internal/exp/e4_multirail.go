package exp

import (
	"fmt"

	"newmad/internal/caps"
	"newmad/internal/packet"
	"newmad/internal/stats"
	"newmad/internal/strategy"
	"newmad/internal/workload"
)

// E4 — §2: the scheduler "may also perform dynamic load balancing on
// multiple resources, multiple NICs, or even NICs from multiple
// technologies."
//
// The plan builder is held fixed (aggregate); only the rail policy varies:
// pinned (the one-to-one flow mapping the paper demotes to a fallback
// policy) versus shared (the pooled scheduler). The workload is
// deliberately unbalanced — odd flows carry 16× the bytes of even flows —
// so a static flow-to-rail mapping strands the heavy flows on one rail
// while the other idles. The shared pool lets whichever NIC goes idle pull
// the next eligible work.

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Dynamic load balancing over multiple NICs and technologies",
		Claim: "§2: pooling multiplexing resources beats static one-to-one flow mapping",
		Run:   runE4,
	})
}

// mx2 is a second Myrinet rail (identical silicon, distinct fabric).
func mx2() caps.Caps {
	c := SingleChannel(caps.MX)
	c.Name = "mx2"
	return c
}

func e4Point(rail strategy.RailPolicy, profiles []caps.Caps, flows, perFlow int, seed uint64) (Metrics, map[string]uint64, error) {
	b, err := strategy.New("aggregate")
	if err != nil {
		return Metrics{}, nil, err
	}
	b.Rail = rail
	rig, err := NewRig(RigOptions{ID: "E4", Profiles: profiles})
	if err != nil {
		return Metrics{}, nil, err
	}
	for _, eng := range rig.Engines {
		if err := eng.SetBundle(b); err != nil {
			return Metrics{}, nil, err
		}
	}
	d := workload.NewDriver(rig.Cl.Eng, rig.Engines, seed)
	for f := 0; f < flows; f++ {
		size := 256
		if f%2 == 1 {
			size = 4096 // heavy flows; pinned maps them all to one rail
		}
		d.Add(workload.FlowSpec{
			Flow: packet.FlowID(f + 1), Src: 0, Dst: 1,
			Class:   packet.ClassSmall,
			Size:    workload.Fixed(size),
			Arrival: workload.BackToBack{},
			Count:   perFlow,
		})
	}
	m, err := rig.Run(flows * perFlow)
	if err != nil {
		return Metrics{}, nil, err
	}
	perRail := make(map[string]uint64, len(profiles))
	for _, p := range profiles {
		perRail[p.Name] = rig.Cl.Stats.CounterValue("core.rail." + p.Name + ".frames")
	}
	return m, perRail, nil
}

func runE4(cfg Config) []*stats.Table {
	flows, perFlow := 8, 32
	if cfg.Quick {
		flows, perFlow = 4, 12
	}
	mxOnly := []caps.Caps{SingleChannel(caps.MX)}
	dualMX := []caps.Caps{SingleChannel(caps.MX), mx2()}
	hetero := []caps.Caps{SingleChannel(caps.MX), SingleChannel(caps.Elan)}
	affinityHetero := &strategy.AffinityRail{Rails: []caps.Caps{SingleChannel(caps.Elan), SingleChannel(caps.MX)}}

	t := stats.NewTable("E4 — multi-rail load balancing (unbalanced flows, 256 B / 4 KiB)",
		"rails", "policy", "time(µs)", "frames:rail0", "frames:rail1", "speedup vs 1 rail")
	t.Caption = "pinned = static one-to-one flow mapping (paper's fallback); shared = pooled rails"

	base, _, err := e4Point(strategy.SharedRail{}, mxOnly, flows, perFlow, cfg.Seed)
	if err != nil {
		panic(err)
	}
	add := func(label, policy string, rail strategy.RailPolicy, profiles []caps.Caps) {
		m, perRail, err := e4Point(rail, profiles, flows, perFlow, cfg.Seed)
		if err != nil {
			panic(err)
		}
		names := []string{profiles[0].Name, ""}
		if len(profiles) > 1 {
			names[1] = profiles[1].Name
		}
		// NodeDrivers sorts rails by name; report in sorted order too.
		if names[1] != "" && names[1] < names[0] {
			names[0], names[1] = names[1], names[0]
		}
		r0 := fmt.Sprintf("%d", perRail[names[0]])
		r1 := "-"
		if names[1] != "" {
			r1 = fmt.Sprintf("%d", perRail[names[1]])
		}
		t.AddRow(label, policy,
			stats.FormatFloat(float64(m.End)/1000), r0, r1,
			fmt.Sprintf("%.2fx", float64(base.End)/float64(m.End)))
	}
	add("1×MX", "shared", strategy.SharedRail{}, mxOnly)
	add("2×MX", "pinned", strategy.PinnedRail{}, dualMX)
	add("2×MX", "shared", strategy.SharedRail{}, dualMX)
	add("MX+Elan", "pinned", strategy.PinnedRail{}, hetero)
	add("MX+Elan", "shared", strategy.SharedRail{}, hetero)
	add("MX+Elan", "affinity", affinityHetero, hetero)
	return []*stats.Table{t}
}

// E4Times exposes (single-rail, dual-pinned, dual-shared) completion times
// for the shape test.
func E4Times(cfg Config) (single, pinned, shared float64) {
	flows, perFlow := 8, 32
	if cfg.Quick {
		flows, perFlow = 4, 12
	}
	mxOnly := []caps.Caps{SingleChannel(caps.MX)}
	dualMX := []caps.Caps{SingleChannel(caps.MX), mx2()}
	a, _, err := e4Point(strategy.SharedRail{}, mxOnly, flows, perFlow, cfg.Seed)
	if err != nil {
		panic(err)
	}
	b, _, err := e4Point(strategy.PinnedRail{}, dualMX, flows, perFlow, cfg.Seed)
	if err != nil {
		panic(err)
	}
	c, _, err := e4Point(strategy.SharedRail{}, dualMX, flows, perFlow, cfg.Seed)
	if err != nil {
		panic(err)
	}
	return float64(a.End), float64(b.End), float64(c.End)
}
