// Package exp is the benchmark harness: one module per experiment in the
// reproduction plan (DESIGN.md §4), each regenerating the table or series
// that substantiates one claim of the paper. cmd/madbench prints them; the
// root-level bench_test.go wraps each in a testing.B benchmark; the tests
// in this package assert the *shape* of each result (who wins, roughly by
// how much), which is the reproduction's acceptance criterion.
package exp

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"newmad/internal/caps"
	"newmad/internal/core"
	"newmad/internal/drivers"
	"newmad/internal/mad"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/strategy"
)

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks workloads for unit tests and -short mode.
	Quick bool
	// Seed feeds every RNG in the run.
	Seed uint64
}

// Experiment is one reproducible result.
type Experiment struct {
	ID    string
	Title string
	Claim string // the paper statement this experiment substantiates
	Run   func(cfg Config) []*stats.Table
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("exp: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Controller-driven experiments (E11, X3) report how many retune decisions
// their controllers applied; madbench folds the counts into its
// machine-readable output (madbench/v2).
var (
	decMu          sync.Mutex
	decisionCounts = map[string]uint64{}
)

// reportDecisions records the controller decision count of one experiment
// run, replacing any previous count for that ID.
func reportDecisions(id string, n uint64) {
	decMu.Lock()
	decisionCounts[id] = n
	decMu.Unlock()
}

// DecisionCount returns the controller decisions recorded by the last run
// of the experiment (0 for experiments without controllers).
func DecisionCount(id string) uint64 {
	decMu.Lock()
	defer decMu.Unlock()
	return decisionCounts[id]
}

// Chaos experiments (X5) report how many faults hit the run and how many
// recovery actions the engines fired; madbench folds the counts into its
// machine-readable output (madbench/v3).
var (
	faultMu     sync.Mutex
	faultCounts = map[string][2]uint64{}
)

// reportFaults records one experiment run's fault/recovery totals,
// replacing any previous counts for that ID.
func reportFaults(id string, injected, recovered uint64) {
	faultMu.Lock()
	faultCounts[id] = [2]uint64{injected, recovered}
	faultMu.Unlock()
}

// FaultCounts returns the (faults injected, recovery actions) recorded by
// the last run of the experiment (0, 0 for fault-free experiments).
func FaultCounts(id string) (injected, recovered uint64) {
	faultMu.Lock()
	defer faultMu.Unlock()
	c := faultCounts[id]
	return c[0], c[1]
}

// Every experiment reports the latency quantiles of its final run;
// madbench folds them into its machine-readable output (madbench/v5).
var (
	latMu     sync.Mutex
	latencies = map[string]LatencySummary{}
)

// LatencySummary is one run's delivery-latency digest: the end-to-end
// span (submit→deliver; eager deliveries only — rendezvous payloads are
// reconstructed at the receiver without the submit stamp) and the
// queue-wait span (submit→first post attempt), merged across every
// engine in the run.
type LatencySummary struct {
	E2ECount   uint64
	E2EP50Us   float64
	E2EP95Us   float64
	E2EP99Us   float64
	QwaitCount uint64
	QwaitP50Us float64
	QwaitP95Us float64
	QwaitP99Us float64
}

// summarizeLatency digests two merged span histograms (nanosecond
// samples) into microsecond quantiles.
func summarizeLatency(e2e, qwait *stats.Histogram) LatencySummary {
	return LatencySummary{
		E2ECount:   e2e.Count(),
		E2EP50Us:   e2e.Quantile(0.50) / 1e3,
		E2EP95Us:   e2e.Quantile(0.95) / 1e3,
		E2EP99Us:   e2e.Quantile(0.99) / 1e3,
		QwaitCount: qwait.Count(),
		QwaitP50Us: qwait.Quantile(0.50) / 1e3,
		QwaitP95Us: qwait.Quantile(0.95) / 1e3,
		QwaitP99Us: qwait.Quantile(0.99) / 1e3,
	}
}

// reportLatency records one experiment run's latency digest, replacing
// any previous record for that ID. Experiments that run several variants
// report once per variant; the last one (by convention the full engine)
// is what madbench exports.
func reportLatency(id string, s LatencySummary) {
	latMu.Lock()
	latencies[id] = s
	latMu.Unlock()
}

// Latency returns the latency digest recorded by the last run of the
// experiment; ok is false when the experiment never reported one.
func Latency(id string) (s LatencySummary, ok bool) {
	latMu.Lock()
	defer latMu.Unlock()
	s, ok = latencies[id]
	return s, ok
}

// Multi-tenant experiments (X6) report per-tenant admission outcomes;
// madbench folds them into its machine-readable output (madbench/v6).
var (
	tenMu       sync.Mutex
	tenantStats = map[string][]TenantSummary{}
)

// TenantSummary is one tenant's admission outcome in an experiment's final
// run: submissions offered, the split into admitted and refused (refusals
// are explicit typed errors, never silent drops), and the tenant's
// end-to-end p99 over its delivered packets (0 when nothing delivered).
type TenantSummary struct {
	Tenant   uint8
	Offered  uint64
	Admitted uint64
	Refused  uint64
	P99E2EUs float64
}

// reportTenants records one experiment run's per-tenant outcomes,
// replacing any previous record for that ID.
func reportTenants(id string, ts []TenantSummary) {
	tenMu.Lock()
	tenantStats[id] = ts
	tenMu.Unlock()
}

// Tenants returns the per-tenant outcomes recorded by the last run of the
// experiment (nil for tenant-free experiments).
func Tenants(id string) []TenantSummary {
	tenMu.Lock()
	defer tenMu.Unlock()
	return tenantStats[id]
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns the experiments in natural order: the paper's E-series by
// number, then addenda (X-series) alphabetically.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	rank := func(id string) (series int, n int) {
		var num int
		if c, _ := fmt.Sscanf(id, "E%d", &num); c == 1 {
			return 0, num
		}
		return 1, 0
	}
	sort.Slice(out, func(i, j int) bool {
		si, ni := rank(out[i].ID)
		sj, nj := rank(out[j].ID)
		if si != sj {
			return si < sj
		}
		if ni != nj {
			return ni < nj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Rig is a ready-to-run simulated cluster with one engine (and optionally
// one mad session) per node.
type Rig struct {
	Cl       *drivers.Cluster
	Engines  map[packet.NodeID]*core.Engine
	Sessions map[packet.NodeID]*mad.Session
	// Delivered counts per node.
	Delivered map[packet.NodeID]int

	id string // experiment ID for latency reporting (RigOptions.ID)
}

// RigOptions configures rig construction.
type RigOptions struct {
	// ID, when set, makes every Run report its merged latency-span
	// quantiles under this experiment ID (see Latency).
	ID string

	Nodes    int
	Profiles []caps.Caps // default: single-channel MX
	Bundle   string      // default "aggregate"

	Lookahead    int
	Nagle        simnet.Duration
	NagleFlush   int
	SearchBudget int

	// WithSessions routes deliveries into mad sessions (middleware-driven
	// experiments). Raw packet workloads leave it false: their synthetic
	// flow ids do not correspond to mad channels.
	WithSessions bool

	// OnDeliver, when set, observes every delivery (after counting).
	OnDeliver func(node packet.NodeID, d proto.Deliverable)
}

// SingleChannel returns profile c restricted to one send channel, the
// configuration that exposes backlog dynamics most clearly.
func SingleChannel(c caps.Caps) caps.Caps {
	c.Channels = 1
	return c
}

// NewRig builds the cluster and engines.
func NewRig(o RigOptions) (*Rig, error) {
	if o.Nodes < 2 {
		o.Nodes = 2
	}
	if len(o.Profiles) == 0 {
		o.Profiles = []caps.Caps{SingleChannel(caps.MX)}
	}
	if o.Bundle == "" {
		o.Bundle = "aggregate"
	}
	cl, err := drivers.NewCluster(o.Nodes, o.Profiles...)
	if err != nil {
		return nil, err
	}
	r := &Rig{
		Cl:        cl,
		Engines:   make(map[packet.NodeID]*core.Engine),
		Sessions:  make(map[packet.NodeID]*mad.Session),
		Delivered: make(map[packet.NodeID]int),
		id:        o.ID,
	}
	for n := 0; n < o.Nodes; n++ {
		node := packet.NodeID(n)
		b, err := strategy.New(o.Bundle)
		if err != nil {
			return nil, err
		}
		var rails []drivers.Driver
		for _, d := range cl.NodeDrivers(node) {
			rails = append(rails, d)
		}
		sess, err := mad.Bind(node, func(deliver proto.DeliverFunc) (*core.Engine, error) {
			wrapped := func(d proto.Deliverable) {
				r.Delivered[node]++
				if o.OnDeliver != nil {
					o.OnDeliver(node, d)
				}
				if o.WithSessions {
					deliver(d)
				}
			}
			return core.New(node, core.Options{
				Bundle:          b,
				Runtime:         cl.Eng,
				Rails:           rails,
				Deliver:         wrapped,
				Lookahead:       o.Lookahead,
				NagleDelay:      o.Nagle,
				NagleFlushCount: o.NagleFlush,
				SearchBudget:    o.SearchBudget,
				Stats:           cl.Stats,
			})
		})
		if err != nil {
			return nil, err
		}
		r.Engines[node] = sess.Engine()
		r.Sessions[node] = sess
	}
	return r, nil
}

// Metrics summarizes one run.
type Metrics struct {
	End        simnet.Time
	Wall       time.Duration
	Frames     uint64
	Packets    uint64
	Aggregates uint64
	MeanLatUs  float64
	P50LatUs   float64
	P99LatUs   float64
	CtrlP50Us  float64
	CtrlP99Us  float64
	MsgPerSec  float64
	Delivered  int
}

// Run drains the simulation and collects metrics. expected is the number
// of deliveries the workload should produce (0 = skip the check).
func (r *Rig) Run(expected int) (Metrics, error) {
	start := time.Now()
	end := r.Cl.Eng.Run()
	wall := time.Since(start)
	total := 0
	for _, n := range r.Delivered {
		total += n
	}
	if expected > 0 && total != expected {
		return Metrics{}, fmt.Errorf("exp: delivered %d of %d", total, expected)
	}
	lat := r.Cl.Stats.Histogram("core.delivery_latency_ns")
	ctrl := r.Cl.Stats.Histogram("core.control_latency_ns")
	m := Metrics{
		End:        end,
		Wall:       wall,
		Frames:     r.Cl.Stats.CounterValue("nic.tx.frames"),
		Packets:    r.Cl.Stats.CounterValue("core.packets_sent"),
		Aggregates: r.Cl.Stats.CounterValue("core.aggregates"),
		MeanLatUs:  lat.Mean() / 1000,
		P50LatUs:   lat.Quantile(0.5) / 1000,
		P99LatUs:   lat.Quantile(0.99) / 1000,
		CtrlP50Us:  ctrl.Quantile(0.5) / 1000,
		CtrlP99Us:  ctrl.Quantile(0.99) / 1000,
		Delivered:  total,
	}
	if end > 0 {
		m.MsgPerSec = float64(total) / (float64(end) / float64(simnet.Second))
	}
	if r.id != "" {
		reportLatency(r.id, summarizeLatency(
			r.SpanTotal(core.SpanE2E), r.SpanTotal(core.SpanQueueWait)))
	}
	return m, nil
}

// SpanTotal merges one latency-span kind across every engine in the rig.
func (r *Rig) SpanTotal(kind core.SpanKind) *stats.Histogram {
	h := &stats.Histogram{}
	for _, eng := range r.Engines {
		h.Merge(eng.Spans().Total(int(kind)))
	}
	return h
}
