package exp

import (
	"fmt"

	"newmad/internal/caps"
	"newmad/internal/control"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/strategy"
)

// E11 — the controller addendum to E10's dynamic-policy claim (§2: policies
// "can be changed dynamically as the needs of the application evolve") plus
// the lookahead/delay tuning questions of §3–§4, closed into a loop.
//
// A phase-alternating application: ping-pong rounds (reaction-bound — any
// artificial delay lands on the critical path twice per rung, and deep
// aggregation has nothing to feed on) alternate with dense multi-flow
// bursts (send-bound — per-frame overhead dominates, so narrow lookahead
// wastes the channel). No single static operating point wins both phases:
// the latency tuning loses the burst phases, the throughput tuning loses
// the ping-pong phases, the balanced tuning loses everywhere by a little.
// The adaptive controller (internal/control) must track the phases from
// live telemetry alone: within 10% of the best static tuning on *every*
// phase, and strictly ahead of every static tuning end-to-end.

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Closed-loop adaptive retuning across application phases",
		Claim: "§2 + controller addendum: a feedback controller re-tunes delay/lookahead/policy as phases alternate, beating every static operating point end-to-end",
		Run:   runE11,
	})
}

// E11Result is one configuration's outcome over the alternating phases.
type E11Result struct {
	Name string
	// PhaseTimes is each phase's completion (submission of its first
	// packet to delivery of its last), in phase order.
	PhaseTimes []simnet.Duration
	// Total is the end-to-end virtual completion time.
	Total simnet.Duration
	// Frames is the fleet-wide frame count.
	Frames uint64
	// Retunes counts applied controller decisions (0 for statics).
	Retunes uint64
}

// e11Shape sizes the workload: rungs per ping-pong phase and bursts per
// burst phase. Phases alternate P,T,P,T.
func e11Shape(cfg Config) (rungs, bursts int) {
	if cfg.Quick {
		return 160, 12
	}
	return 400, 32
}

const (
	e11Flows     = 8  // concurrent flows per burst phase
	e11BurstSize = 16 // packets per flow per burst
	e11PingBytes = 64
	e11BurstGap  = 30 * simnet.Microsecond
)

// E11Run measures one configuration against the alternating workload:
// tuningName names a static operating point, or adaptive=true attaches one
// controller per node and lets the loop decide.
func E11Run(tuningName string, adaptive bool, cfg Config) (E11Result, error) {
	rungs, bursts := e11Shape(cfg)
	phases := []byte{'P', 'T', 'P', 'T'}

	var (
		rig  *Rig
		err  error
		done bool
		fail error

		phaseIdx   int
		phaseStart simnet.Time
		times      []simnet.Duration

		rungsDone int
		pingSeq   int
		pongSeq   int
		burstRecv int
	)
	burstTotal := e11Flows * e11BurstSize * bursts

	submit := func(node packet.NodeID, p *packet.Packet) {
		if err := rig.Engines[node].Submit(p); err != nil && fail == nil {
			fail = err
		}
	}
	mkPkt := func(flow packet.FlowID, seq, size int, src, dst packet.NodeID) *packet.Packet {
		return &packet.Packet{
			Flow: flow, Msg: packet.MsgID(seq), Seq: seq, Last: true,
			Src: src, Dst: dst, Class: packet.ClassSmall,
			Payload: make([]byte, size),
		}
	}
	sendPing := func() {
		submit(0, mkPkt(1, pingSeq, e11PingBytes, 0, 1))
		pingSeq++
	}

	var startPhase func()
	startPhase = func() {
		now := rig.Cl.Eng.Now()
		phaseStart = now
		switch phases[phaseIdx] {
		case 'P':
			rungsDone = 0
			sendPing()
		case 'T':
			burstRecv = 0
			for b := 0; b < bursts; b++ {
				b := b
				at := now.Add(simnet.Duration(b) * e11BurstGap)
				rig.Cl.Eng.At(at, "e11.burst", func() {
					for f := 0; f < e11Flows; f++ {
						flow := packet.FlowID(100*(phaseIdx+1) + 10 + f)
						for q := 0; q < e11BurstSize; q++ {
							submit(0, mkPkt(flow, b*e11BurstSize+q, e11PingBytes, 0, 1))
						}
					}
				})
			}
		}
	}
	endPhase := func() {
		times = append(times, rig.Cl.Eng.Now().Sub(phaseStart))
		phaseIdx++
		if phaseIdx == len(phases) {
			done = true
			return
		}
		startPhase()
	}
	onDeliver := func(node packet.NodeID, d proto.Deliverable) {
		if done || fail != nil {
			return
		}
		switch phases[phaseIdx] {
		case 'P':
			switch {
			case node == 1 && d.Pkt.Flow == 1:
				// Ping arrived: answer.
				submit(1, mkPkt(2, pongSeq, e11PingBytes, 1, 0))
				pongSeq++
			case node == 0 && d.Pkt.Flow == 2:
				// Pong arrived: rung complete.
				rungsDone++
				if rungsDone < rungs {
					sendPing()
				} else {
					endPhase()
				}
			}
		case 'T':
			if node == 1 {
				burstRecv++
				if burstRecv == burstTotal {
					endPhase()
				}
			}
		}
	}

	rig, err = NewRig(RigOptions{
		ID:        "E11",
		Profiles:  []caps.Caps{SingleChannel(caps.MX)},
		OnDeliver: onDeliver,
	})
	if err != nil {
		return E11Result{}, err
	}

	res := E11Result{Name: tuningName}
	var controllers []*control.Controller
	if adaptive {
		res.Name = "adaptive"
		for n := 0; n < 2; n++ {
			c, err := control.New(control.Options{
				Engine:   rig.Engines[packet.NodeID(n)],
				Runtime:  rig.Cl.Eng,
				Interval: 10 * simnet.Microsecond,
				HalfLife: 32 * simnet.Microsecond,
				Confirm:  2,
				Cooldown: 200 * simnet.Microsecond,
				HiRate:   1e6,
				LoRate:   500e3,
			})
			if err != nil {
				return E11Result{}, err
			}
			if err := c.Start(); err != nil {
				return E11Result{}, err
			}
			controllers = append(controllers, c)
		}
	} else {
		t, err := strategy.TuningByName(tuningName)
		if err != nil {
			return E11Result{}, err
		}
		// Statics go through control.Apply too: the baselines and the
		// controller configure engines by the identical sequence.
		for _, eng := range rig.Engines {
			if err := control.Apply(eng, t); err != nil {
				return E11Result{}, err
			}
		}
	}

	startPhase()
	// Controller ticks reschedule themselves, so with controllers attached
	// the event queue never drains; a generous virtual deadline (the worst
	// static configuration completes in tens of milliseconds) turns a lost
	// delivery into a fast, diagnosable stall instead of a spin.
	const deadline = simnet.Time(1 * simnet.Second)
	for !done && fail == nil && rig.Cl.Eng.Now() < deadline && rig.Cl.Eng.Step() {
	}
	for _, c := range controllers {
		c.Stop()
		res.Retunes += c.Retunes()
	}
	if fail != nil {
		return E11Result{}, fail
	}
	if !done {
		return E11Result{}, fmt.Errorf("exp: E11 stalled in phase %d (%c) after %v", phaseIdx, phases[phaseIdx], rig.Cl.Eng.Now())
	}
	res.PhaseTimes = times
	res.Total = rig.Cl.Eng.Now().Sub(0)
	res.Frames = rig.Cl.Stats.CounterValue("core.frames_posted")
	return res, nil
}

// E11All runs every registered static tuning plus the adaptive controller.
func E11All(cfg Config) ([]E11Result, error) {
	var out []E11Result
	for _, name := range strategy.TuningNames() {
		r, err := E11Run(name, false, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	r, err := E11Run("", true, cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, r)
	return out, nil
}

func runE11(cfg Config) []*stats.Table {
	results, err := E11All(cfg)
	if err != nil {
		panic(err)
	}
	t := stats.NewTable("E11 — adaptive controller vs static tunings (alternating ping-pong / burst phases, MX 1ch)",
		"tuning", "pingpong1(µs)", "burst1(µs)", "pingpong2(µs)", "burst2(µs)", "total(µs)", "frames", "retunes")
	t.Caption = "the controller must track every phase within 10% of its best static tuning and win end-to-end"
	var retunes uint64
	for _, r := range results {
		row := []string{r.Name}
		for _, p := range r.PhaseTimes {
			row = append(row, stats.FormatFloat(p.Micros()))
		}
		row = append(row,
			stats.FormatFloat(r.Total.Micros()),
			fmt.Sprintf("%d", r.Frames),
			fmt.Sprintf("%d", r.Retunes),
		)
		t.AddRow(row...)
		retunes += r.Retunes
	}
	reportDecisions("E11", retunes)
	return []*stats.Table{t}
}
