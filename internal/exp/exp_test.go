package exp

import (
	"strings"
	"testing"

	"newmad/internal/caps"
	"newmad/internal/control"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

var quick = Config{Quick: true, Seed: 1}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("registered %d experiments, want 15 (E1..E11 + X1..X4)", len(all))
	}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
	}
	// Natural ordering: E1..E11, then the X-series addenda.
	if all[0].ID != "E1" || all[10].ID != "E11" || all[11].ID != "X1" || all[14].ID != "X4" {
		t.Fatalf("ordering: first=%s eleventh=%s then=%s last=%s", all[0].ID, all[10].ID, all[11].ID, all[14].ID)
	}
	if _, ok := Get("E1"); !ok {
		t.Fatal("Get(E1) failed")
	}
	if _, ok := Get("E99"); ok {
		t.Fatal("Get(E99) succeeded")
	}
}

func TestX1ShapeWANAggregation(t *testing.T) {
	fifo := X1Goodput("fifo", 8, quick)
	agg := X1Goodput("aggregate", 8, quick)
	if agg <= fifo {
		t.Fatalf("WAN goodput: aggregate %.2f MB/s !> fifo %.2f MB/s", agg, fifo)
	}
}

// TestX2ShapeMeshMatchesModel asserts the property X2 exists to check: the
// optimizer's transaction accounting (it aggregates: fewer frames than
// messages) holds on both the simulated fabric and the real mesh, and every
// message survives the real transport.
func TestX2ShapeMeshMatchesModel(t *testing.T) {
	sim, err := X2Sim(quick)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := X2Mesh(quick)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Msgs != mesh.Msgs {
		t.Fatalf("workloads diverge: sim %d msgs, mesh %d msgs", sim.Msgs, mesh.Msgs)
	}
	if sim.Frames == 0 || mesh.Frames == 0 {
		t.Fatalf("frames: sim %d, mesh %d", sim.Frames, mesh.Frames)
	}
	if mesh.Frames >= uint64(mesh.Msgs) {
		t.Fatalf("no aggregation over the mesh: %d frames for %d msgs", mesh.Frames, mesh.Msgs)
	}
	if sim.Frames >= uint64(sim.Msgs) {
		t.Fatalf("no aggregation in the model: %d frames for %d msgs", sim.Frames, sim.Msgs)
	}
}

// TestX4ShapeMultiRailBeatsSingleRail asserts the property X4 exists to
// check: striping the conglomerate workload across ≥2 real TCP rails beats
// the single-rail transport on wall-clock throughput, and the bulk frames
// genuinely spread over the rails. Wall-clock measurements on a shared
// machine are noisy, so the comparison takes the best of two attempts
// before judging.
func TestX4ShapeMultiRailBeatsSingleRail(t *testing.T) {
	best := func(rails int) X4Result {
		t.Helper()
		var best X4Result
		for attempt := 0; attempt < 2; attempt++ {
			r, err := X4Mesh(quick, rails)
			if err != nil {
				t.Fatal(err)
			}
			if best.Completion == 0 || r.Completion < best.Completion {
				best = r
			}
		}
		return best
	}
	single := best(1)
	multi := best(2)
	if single.Msgs != multi.Msgs || single.Bytes != multi.Bytes {
		t.Fatalf("workloads diverge: single %d msgs/%d B, multi %d msgs/%d B",
			single.Msgs, single.Bytes, multi.Msgs, multi.Bytes)
	}
	for name, frames := range multi.RailFrames {
		if frames == 0 {
			t.Fatalf("rail %s posted no frames: striping inert (distribution %v)", name, multi.RailFrames)
		}
	}
	if multi.Completion >= single.Completion {
		t.Fatalf("multi-rail does not beat single-rail: 2 rails %v !< 1 rail %v",
			multi.Completion, single.Completion)
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(quick)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				out := tb.String()
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: empty table %q", e.ID, tb.Title)
				}
				if !strings.Contains(out, "==") {
					t.Fatalf("%s: malformed table:\n%s", e.ID, out)
				}
			}
		})
	}
}

// --- Shape assertions: the reproduction's acceptance criteria. -------------

func TestE1ShapeAggregationWins(t *testing.T) {
	// The headline: with several flows, the aggregating engine must beat
	// the previous Madeleine by a wide margin; with one flow the gap
	// narrows (aggregation needs concurrency to feed on).
	multi := E1Speedup(8, quick)
	if multi < 2.0 {
		t.Fatalf("8-flow aggregation speedup = %.2fx, want >= 2x (the paper's 'huge gains')", multi)
	}
	single := E1Speedup(1, quick)
	if single > multi {
		t.Fatalf("single-flow speedup %.2fx exceeds multi-flow %.2fx", single, multi)
	}
}

func TestE2ShapeWiderWindowFewerFrames(t *testing.T) {
	narrow := E2Frames(1, quick)
	wide := E2Frames(0, quick)
	if wide >= narrow {
		t.Fatalf("frames: window=1 %d, unbounded %d — wider window should aggregate more", narrow, wide)
	}
}

func TestE3ShapeNagleTradeoff(t *testing.T) {
	none := E3Point(0, quick)
	delayed := E3Point(32*simnet.Microsecond, quick)
	if delayed.Frames >= none.Frames {
		t.Fatalf("frames: no-delay %d, 32µs %d — delay should reduce transactions", none.Frames, delayed.Frames)
	}
	if delayed.MeanLatUs <= none.MeanLatUs {
		t.Fatalf("latency: no-delay %.1fµs, 32µs %.1fµs — delay must cost latency", none.MeanLatUs, delayed.MeanLatUs)
	}
}

func TestE4ShapeSharedRailsWin(t *testing.T) {
	single, pinned, shared := E4Times(quick)
	if shared >= single {
		t.Fatalf("dual shared (%v) not faster than single rail (%v)", shared, single)
	}
	if shared >= pinned {
		t.Fatalf("shared pool (%v) not faster than pinned mapping (%v)", shared, pinned)
	}
}

func TestE5ShapeReservedLaneProtectsControl(t *testing.T) {
	single := E5ControlP99(strategy.SingleQueue{}, quick)
	reserved := E5ControlP99(strategy.ReservedControl{}, quick)
	if reserved >= single {
		t.Fatalf("control p99: reserved %.1fµs !< single-queue %.1fµs", reserved, single)
	}
}

func TestE6ShapeQualitySaturates(t *testing.T) {
	q1 := E6Quality(1, quick)
	q16 := E6Quality(16, quick)
	if q16 > q1 {
		t.Fatalf("budget 16 (%v) worse than budget 1 (%v)", q16, q1)
	}
	// Saturation: going far beyond the useful budget changes little.
	q64 := E6Quality(64, quick)
	if q64 > q16*1.1 {
		t.Fatalf("budget 64 (%v) much worse than 16 (%v)", q64, q16)
	}
}

func TestE7ShapeCapabilityDriven(t *testing.T) {
	mx := E7PacketsPerFrame(caps.MX, quick)
	ib := E7PacketsPerFrame(caps.IB, quick)
	if mx <= ib {
		t.Fatalf("packets/frame: MX (iov16) %.1f !> IB (iov4) %.1f", mx, ib)
	}
	elan := E7PacketsPerFrame(caps.Elan, quick)
	if elan <= 1.01 {
		t.Fatalf("Elan copy-based aggregation inactive: %.2f packets/frame", elan)
	}
}

func TestE8ShapeProtocolCrossover(t *testing.T) {
	// Small messages: eager must beat rendezvous-always (RTS/CTS round
	// trip dominates).
	eSmall := E8Time(strategy.EagerAlways{}, 64, quick)
	rSmall := E8Time(strategy.ThresholdProtocol{Override: 1}, 64, quick)
	if eSmall >= rSmall {
		t.Fatalf("64B: eager %.0fns !< rndv %.0fns", eSmall, rSmall)
	}
	// Large messages: rendezvous must beat eager (eager pays staging and
	// SAN frame segmentation; rendezvous streams).
	eBig := E8Time(strategy.EagerAlways{}, 1<<20, quick)
	rBig := E8Time(strategy.ThresholdProtocol{}, 1<<20, quick)
	if rBig >= eBig {
		t.Fatalf("1MiB: rndv %.0fns !< eager %.0fns", rBig, eBig)
	}
}

func TestE9ShapeConglomerateGains(t *testing.T) {
	fifo, agg := E9Times(quick)
	if agg >= fifo {
		t.Fatalf("conglomerate: aggregate (%v) not faster than fifo (%v)", agg, fifo)
	}
}

// TestE11ShapeControllerTracksPhases is the controller's acceptance
// criterion: within 10% of the best static tuning on every phase of the
// alternating workload, and strictly ahead of every static tuning
// end-to-end — while actually retuning (a lucky static draw does not
// count).
func TestE11ShapeControllerTracksPhases(t *testing.T) {
	results, err := E11All(quick)
	if err != nil {
		t.Fatal(err)
	}
	var adaptive *E11Result
	statics := map[string]E11Result{}
	for i := range results {
		if results[i].Name == "adaptive" {
			adaptive = &results[i]
		} else {
			statics[results[i].Name] = results[i]
		}
	}
	if adaptive == nil || len(statics) < 2 {
		t.Fatalf("incomplete results: %+v", results)
	}
	if adaptive.Retunes == 0 {
		t.Fatal("controller never retuned — the workload no longer alternates regimes")
	}
	for phase := range adaptive.PhaseTimes {
		best := simnet.Duration(1 << 62)
		bestName := ""
		for name, s := range statics {
			if s.PhaseTimes[phase] < best {
				best, bestName = s.PhaseTimes[phase], name
			}
		}
		got := adaptive.PhaseTimes[phase]
		if float64(got) > 1.10*float64(best) {
			t.Errorf("phase %d: adaptive %v exceeds best static (%s, %v) by more than 10%%",
				phase, got, bestName, best)
		}
	}
	for name, s := range statics {
		if adaptive.Total >= s.Total {
			t.Errorf("end-to-end: adaptive %v does not beat static %s %v",
				adaptive.Total, name, s.Total)
		}
	}
}

// TestX3ShapeControllerLiveOnMesh asserts the wall-clock property: the
// controller issues at least one retune on real-socket telemetry, the
// dense phase drives it into the throughput regime at some point, and it
// never fires two retunes within one cooldown window. (The *final* mode is
// deliberately unasserted: once the dense stream drains, flipping back to
// latency is correct behaviour whose timing depends on the host.)
func TestX3ShapeControllerLiveOnMesh(t *testing.T) {
	res, err := X3Mesh(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) == 0 {
		t.Fatal("controller issued no retune decisions on the live mesh")
	}
	sawThroughput := false
	for _, d := range res.Decisions {
		if control.Mode(d.To) == control.ModeThroughput {
			sawThroughput = true
		}
	}
	if !sawThroughput {
		t.Errorf("dense phase never drove the controller to throughput (decisions: %v)", res.Decisions)
	}
	for i := 1; i < len(res.Decisions); i++ {
		gap := simnet.ToWall(res.Decisions[i].At.Sub(res.Decisions[i-1].At))
		if gap < res.Cooldown {
			t.Errorf("decisions %d and %d only %v apart, cooldown is %v",
				i-1, i, gap, res.Cooldown)
		}
	}
}

func TestE10ShapeAdaptiveTracksPhases(t *testing.T) {
	single := E10CtrlP99(strategy.SingleQueue{}, quick)
	adaptive := E10CtrlP99(strategy.NewAdaptiveClasses(32), quick)
	if adaptive >= single {
		t.Fatalf("control p99: adaptive %.1fµs !< single queue %.1fµs", adaptive, single)
	}
}
