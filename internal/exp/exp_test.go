package exp

import (
	"fmt"
	"strings"
	"testing"

	"newmad/internal/caps"
	"newmad/internal/control"
	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

var quick = Config{Quick: true, Seed: 1}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 17 {
		t.Fatalf("registered %d experiments, want 17 (E1..E11 + X1..X6)", len(all))
	}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %d incomplete: %+v", i, e)
		}
	}
	// Natural ordering: E1..E11, then the X-series addenda.
	if all[0].ID != "E1" || all[10].ID != "E11" || all[11].ID != "X1" || all[16].ID != "X6" {
		t.Fatalf("ordering: first=%s eleventh=%s then=%s last=%s", all[0].ID, all[10].ID, all[11].ID, all[16].ID)
	}
	if _, ok := Get("E1"); !ok {
		t.Fatal("Get(E1) failed")
	}
	if _, ok := Get("E99"); ok {
		t.Fatal("Get(E99) succeeded")
	}
}

func TestX1ShapeWANAggregation(t *testing.T) {
	fifo := X1Goodput("fifo", 8, quick)
	agg := X1Goodput("aggregate", 8, quick)
	if agg <= fifo {
		t.Fatalf("WAN goodput: aggregate %.2f MB/s !> fifo %.2f MB/s", agg, fifo)
	}
}

// TestX2ShapeMeshMatchesModel asserts the property X2 exists to check: the
// optimizer's transaction accounting (it aggregates: fewer frames than
// messages) holds on both the simulated fabric and the real mesh, and every
// message survives the real transport. The mesh half measures real sockets
// on a possibly-noisy machine (a slow host aggregates differently), so the
// whole measurement retries through the shared best-of-3 helper.
func TestX2ShapeMeshMatchesModel(t *testing.T) {
	sim, err := X2Sim(quick)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Frames == 0 {
		t.Fatal("no frames in the model run")
	}
	if sim.Frames >= uint64(sim.Msgs) {
		t.Fatalf("no aggregation in the model: %d frames for %d msgs", sim.Frames, sim.Msgs)
	}
	if err := RetryShape(3, func() error {
		mesh, err := X2Mesh(quick)
		if err != nil {
			return err
		}
		if sim.Msgs != mesh.Msgs {
			return fmt.Errorf("workloads diverge: sim %d msgs, mesh %d msgs", sim.Msgs, mesh.Msgs)
		}
		if mesh.Frames == 0 {
			return fmt.Errorf("no frames over the mesh")
		}
		if mesh.Frames >= uint64(mesh.Msgs) {
			return fmt.Errorf("no aggregation over the mesh: %d frames for %d msgs", mesh.Frames, mesh.Msgs)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestX4ShapeMultiRailBeatsSingleRail asserts the property X4 exists to
// check: striping the conglomerate workload across ≥2 real TCP rails beats
// the single-rail transport on wall-clock throughput, and the bulk frames
// genuinely spread over the rails. Wall-clock comparisons on a shared
// machine are noisy, so the whole paired measurement retries through the
// shared best-of-3 helper (each attempt measures both configurations
// back-to-back — comparing a fast attempt of one against a slow attempt of
// the other would manufacture exactly the flake being removed).
func TestX4ShapeMultiRailBeatsSingleRail(t *testing.T) {
	if err := RetryShape(3, func() error {
		single, err := X4Mesh(quick, 1)
		if err != nil {
			return err
		}
		multi, err := X4Mesh(quick, 2)
		if err != nil {
			return err
		}
		if single.Msgs != multi.Msgs || single.Bytes != multi.Bytes {
			return fmt.Errorf("workloads diverge: single %d msgs/%d B, multi %d msgs/%d B",
				single.Msgs, single.Bytes, multi.Msgs, multi.Bytes)
		}
		for name, frames := range multi.RailFrames {
			if frames == 0 {
				return fmt.Errorf("rail %s posted no frames: striping inert (distribution %v)", name, multi.RailFrames)
			}
		}
		if multi.Completion >= single.Completion {
			return fmt.Errorf("multi-rail does not beat single-rail: 2 rails %v !< 1 rail %v",
				multi.Completion, single.Completion)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestX5ShapeChaosExactlyOnceAndReplayable is the chaos subsystem's
// acceptance criterion: under the scripted rail-flap + node-crash scenario
// (plus probabilistic control-frame drops), every surviving-pair payload
// arrives exactly once, faults demonstrably fired, and re-running from the
// same seed executes the complete identical fault schedule event-for-event
// (X5Chaos errors out on a partial execution, and the runner records each
// event only after executing it, so trace equality compares two full
// successful executions — what it deliberately does not pin is which
// individual frames each break caught, which is transport timing).
func TestX5ShapeChaosExactlyOnceAndReplayable(t *testing.T) {
	if err := RetryShape(2, func() error {
		a, err := X5Chaos(quick)
		if err != nil {
			return err
		}
		if a.Lost != 0 || a.Duplicated != 0 {
			return fmt.Errorf("delivery broken: %d lost, %d duplicated of %d", a.Lost, a.Duplicated, a.Msgs)
		}
		if a.PeerDowns == 0 {
			return fmt.Errorf("scenario injected no rail failures")
		}
		if a.Failovers+a.Reclaimed == 0 {
			return fmt.Errorf("failures observed (%d downs) but no failover activity", a.PeerDowns)
		}
		// Telemetry rides the chaos run: the fleet roll-up must carry a
		// non-empty delivery-latency histogram (queue_wait is the span
		// that survives the real TCP wire) and a clean run leaves no
		// flight-recorder spool behind.
		if a.Fleet.Nodes != 3 {
			return fmt.Errorf("fleet roll-up covers %d of 3 nodes", a.Fleet.Nodes)
		}
		if a.Fleet.SpanTotal("queue_wait").Count() == 0 {
			return fmt.Errorf("fleet queue-wait histogram empty after %d deliveries", a.Msgs)
		}
		if a.QwaitP99Us <= 0 {
			return fmt.Errorf("queue-wait p99 not populated: %+v", a.QwaitP99Us)
		}
		if a.SpoolDir != "" {
			return fmt.Errorf("clean run wrote an anomaly spool at %s", a.SpoolDir)
		}
		if lat, ok := Latency("X5"); !ok || lat.QwaitCount == 0 {
			return fmt.Errorf("X5 did not report latency quantiles: %+v ok=%v", lat, ok)
		}
		b, err := X5Chaos(quick)
		if err != nil {
			return err
		}
		if b.Lost != 0 || b.Duplicated != 0 {
			return fmt.Errorf("replay delivery broken: %d lost, %d duplicated", b.Lost, b.Duplicated)
		}
		if d := a.Trace.Diff(b.Trace); d != "" {
			return fmt.Errorf("fault schedule not replayable from seed %d: %s", quick.Seed, d)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestX6ShapeFloodIsolation is the admission-control subsystem's
// acceptance criterion: with a flooding tenant ramped to 10× its quota on
// a shared engine, (a) the protected tenants' p99 end-to-end latency stays
// within 25% of the no-flood baseline of the identical schedule, (b) the
// flooder's excess is refused with typed errors — explicitly, never
// silently dropped (x6Run errors out if any admitted packet fails to
// arrive), (c) the control loop's multiplier update demotes the flooder's
// quota within one control interval of the onset, and (d) the delivery
// ledger is exactly-once.
func TestX6ShapeFloodIsolation(t *testing.T) {
	res, err := X6Flood(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, tn := range []packet.TenantID{1, 2} {
		base, flood := res.Base.P99Us[tn], res.Flood.P99Us[tn]
		if base <= 0 || flood <= 0 {
			t.Fatalf("tenant %d: p99 not populated (base %v, flood %v)", tn, base, flood)
		}
		if flood > base*1.25 {
			t.Errorf("tenant %d not isolated: flood p99 %.2fµs vs baseline %.2fµs (>25%%)", tn, flood, base)
		}
		if res.Flood.Refused[tn] != 0 {
			t.Errorf("protected tenant %d saw %d refusals", tn, res.Flood.Refused[tn])
		}
	}
	fl := packet.TenantID(3)
	if res.Flood.Refused[fl] == 0 {
		t.Error("flooder at 10× quota was never refused")
	}
	if got, want := res.Flood.Offered[fl], res.Flood.Admitted[fl]+res.Flood.Refused[fl]; got != want {
		t.Errorf("flooder ledger leaks: %d offered != %d admitted + refused", got, want)
	}
	if res.Flood.Duplicates != 0 {
		t.Errorf("%d duplicate deliveries", res.Flood.Duplicates)
	}
	if !res.Flood.RetuneSeen {
		t.Fatal("control loop never demoted the flooder's quota")
	}
	if res.Flood.RetuneAfter > res.Interval {
		t.Errorf("flooder demoted %v after onset; want within one control interval (%v)", res.Flood.RetuneAfter, res.Interval)
	}
	if res.Flood.FlooderRateEnd >= 50e3 {
		t.Errorf("flooder rate never demoted below nominal: %.0f pps", res.Flood.FlooderRateEnd)
	}
}

func TestAllExperimentsProduceTables(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(quick)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				out := tb.String()
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: empty table %q", e.ID, tb.Title)
				}
				if !strings.Contains(out, "==") {
					t.Fatalf("%s: malformed table:\n%s", e.ID, out)
				}
			}
		})
	}
}

// --- Shape assertions: the reproduction's acceptance criteria. -------------

func TestE1ShapeAggregationWins(t *testing.T) {
	// The headline: with several flows, the aggregating engine must beat
	// the previous Madeleine by a wide margin; with one flow the gap
	// narrows (aggregation needs concurrency to feed on).
	multi := E1Speedup(8, quick)
	if multi < 2.0 {
		t.Fatalf("8-flow aggregation speedup = %.2fx, want >= 2x (the paper's 'huge gains')", multi)
	}
	single := E1Speedup(1, quick)
	if single > multi {
		t.Fatalf("single-flow speedup %.2fx exceeds multi-flow %.2fx", single, multi)
	}
}

func TestE2ShapeWiderWindowFewerFrames(t *testing.T) {
	narrow := E2Frames(1, quick)
	wide := E2Frames(0, quick)
	if wide >= narrow {
		t.Fatalf("frames: window=1 %d, unbounded %d — wider window should aggregate more", narrow, wide)
	}
}

func TestE3ShapeNagleTradeoff(t *testing.T) {
	none := E3Point(0, quick)
	delayed := E3Point(32*simnet.Microsecond, quick)
	if delayed.Frames >= none.Frames {
		t.Fatalf("frames: no-delay %d, 32µs %d — delay should reduce transactions", none.Frames, delayed.Frames)
	}
	if delayed.MeanLatUs <= none.MeanLatUs {
		t.Fatalf("latency: no-delay %.1fµs, 32µs %.1fµs — delay must cost latency", none.MeanLatUs, delayed.MeanLatUs)
	}
}

func TestE4ShapeSharedRailsWin(t *testing.T) {
	single, pinned, shared := E4Times(quick)
	if shared >= single {
		t.Fatalf("dual shared (%v) not faster than single rail (%v)", shared, single)
	}
	if shared >= pinned {
		t.Fatalf("shared pool (%v) not faster than pinned mapping (%v)", shared, pinned)
	}
}

func TestE5ShapeReservedLaneProtectsControl(t *testing.T) {
	single := E5ControlP99(strategy.SingleQueue{}, quick)
	reserved := E5ControlP99(strategy.ReservedControl{}, quick)
	if reserved >= single {
		t.Fatalf("control p99: reserved %.1fµs !< single-queue %.1fµs", reserved, single)
	}
}

func TestE6ShapeQualitySaturates(t *testing.T) {
	q1 := E6Quality(1, quick)
	q16 := E6Quality(16, quick)
	if q16 > q1 {
		t.Fatalf("budget 16 (%v) worse than budget 1 (%v)", q16, q1)
	}
	// Saturation: going far beyond the useful budget changes little.
	q64 := E6Quality(64, quick)
	if q64 > q16*1.1 {
		t.Fatalf("budget 64 (%v) much worse than 16 (%v)", q64, q16)
	}
}

func TestE7ShapeCapabilityDriven(t *testing.T) {
	mx := E7PacketsPerFrame(caps.MX, quick)
	ib := E7PacketsPerFrame(caps.IB, quick)
	if mx <= ib {
		t.Fatalf("packets/frame: MX (iov16) %.1f !> IB (iov4) %.1f", mx, ib)
	}
	elan := E7PacketsPerFrame(caps.Elan, quick)
	if elan <= 1.01 {
		t.Fatalf("Elan copy-based aggregation inactive: %.2f packets/frame", elan)
	}
}

func TestE8ShapeProtocolCrossover(t *testing.T) {
	// Small messages: eager must beat rendezvous-always (RTS/CTS round
	// trip dominates).
	eSmall := E8Time(strategy.EagerAlways{}, 64, quick)
	rSmall := E8Time(strategy.ThresholdProtocol{Override: 1}, 64, quick)
	if eSmall >= rSmall {
		t.Fatalf("64B: eager %.0fns !< rndv %.0fns", eSmall, rSmall)
	}
	// Large messages: rendezvous must beat eager (eager pays staging and
	// SAN frame segmentation; rendezvous streams).
	eBig := E8Time(strategy.EagerAlways{}, 1<<20, quick)
	rBig := E8Time(strategy.ThresholdProtocol{}, 1<<20, quick)
	if rBig >= eBig {
		t.Fatalf("1MiB: rndv %.0fns !< eager %.0fns", rBig, eBig)
	}
}

func TestE9ShapeConglomerateGains(t *testing.T) {
	fifo, agg := E9Times(quick)
	if agg >= fifo {
		t.Fatalf("conglomerate: aggregate (%v) not faster than fifo (%v)", agg, fifo)
	}
}

// TestE11ShapeControllerTracksPhases is the controller's acceptance
// criterion: within 10% of the best static tuning on every phase of the
// alternating workload, and strictly ahead of every static tuning
// end-to-end — while actually retuning (a lucky static draw does not
// count).
func TestE11ShapeControllerTracksPhases(t *testing.T) {
	results, err := E11All(quick)
	if err != nil {
		t.Fatal(err)
	}
	var adaptive *E11Result
	statics := map[string]E11Result{}
	for i := range results {
		if results[i].Name == "adaptive" {
			adaptive = &results[i]
		} else {
			statics[results[i].Name] = results[i]
		}
	}
	if adaptive == nil || len(statics) < 2 {
		t.Fatalf("incomplete results: %+v", results)
	}
	if adaptive.Retunes == 0 {
		t.Fatal("controller never retuned — the workload no longer alternates regimes")
	}
	for phase := range adaptive.PhaseTimes {
		best := simnet.Duration(1 << 62)
		bestName := ""
		for name, s := range statics {
			if s.PhaseTimes[phase] < best {
				best, bestName = s.PhaseTimes[phase], name
			}
		}
		got := adaptive.PhaseTimes[phase]
		if float64(got) > 1.10*float64(best) {
			t.Errorf("phase %d: adaptive %v exceeds best static (%s, %v) by more than 10%%",
				phase, got, bestName, best)
		}
	}
	for name, s := range statics {
		if adaptive.Total >= s.Total {
			t.Errorf("end-to-end: adaptive %v does not beat static %s %v",
				adaptive.Total, name, s.Total)
		}
	}
}

// TestX3ShapeControllerLiveOnMesh asserts the wall-clock property: the
// controller issues at least one retune on real-socket telemetry, the
// dense phase drives it into the throughput regime at some point, and it
// never fires two retunes within one cooldown window. (The *final* mode is
// deliberately unasserted: once the dense stream drains, flipping back to
// latency is correct behaviour whose timing depends on the host.)
func TestX3ShapeControllerLiveOnMesh(t *testing.T) {
	res, err := X3Mesh(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) == 0 {
		t.Fatal("controller issued no retune decisions on the live mesh")
	}
	sawThroughput := false
	for _, d := range res.Decisions {
		if control.Mode(d.To) == control.ModeThroughput {
			sawThroughput = true
		}
	}
	if !sawThroughput {
		t.Errorf("dense phase never drove the controller to throughput (decisions: %v)", res.Decisions)
	}
	for i := 1; i < len(res.Decisions); i++ {
		gap := simnet.ToWall(res.Decisions[i].At.Sub(res.Decisions[i-1].At))
		if gap < res.Cooldown {
			t.Errorf("decisions %d and %d only %v apart, cooldown is %v",
				i-1, i, gap, res.Cooldown)
		}
	}
}

func TestE10ShapeAdaptiveTracksPhases(t *testing.T) {
	single := E10CtrlP99(strategy.SingleQueue{}, quick)
	adaptive := E10CtrlP99(strategy.NewAdaptiveClasses(32), quick)
	if adaptive >= single {
		t.Fatalf("control p99: adaptive %.1fµs !< single queue %.1fµs", adaptive, single)
	}
}
