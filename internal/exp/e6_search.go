package exp

import (
	"fmt"

	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/workload"
)

// E6 — the paper's second named future-work study (§4): "study how to
// bound the number of data rearrangements the optimizer has to evaluate so
// as to determine the best combination of optimization techniques."
//
// The bounded-search builder enumerates candidate frame compositions
// (destination choices × aggregate lengths) under an explicit budget.
// Workload: traffic to several destinations so candidates genuinely
// differ. Reported per budget: plan quality (completion time), candidates
// actually evaluated, and optimizer wall-clock cost — quality saturates at
// a small budget, which is exactly the answer the paper was after.

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "Bounding the rearrangement search budget",
		Claim: "§4 future work: bound the number of rearrangements evaluated per decision",
		Run:   runE6,
	})
}

func e6Point(budget, dests, flowsPerDest, perFlow int, seed uint64) (Metrics, float64, error) {
	rig, err := NewRig(RigOptions{
		ID:           "E6",
		Bundle:       "search",
		SearchBudget: budget,
		Nodes:        dests + 1,
	})
	if err != nil {
		return Metrics{}, 0, err
	}
	d := workload.NewDriver(rig.Cl.Eng, rig.Engines, seed)
	flow := 1
	for dst := 1; dst <= dests; dst++ {
		for f := 0; f < flowsPerDest; f++ {
			d.Add(workload.FlowSpec{
				Flow: packet.FlowID(flow), Src: 0, Dst: packet.NodeID(dst),
				Class:   packet.ClassSmall,
				Size:    workload.Uniform{Lo: 32, Hi: 512},
				Arrival: &workload.Bursts{Size: 8, Gap: 40 * simnet.Microsecond},
				Count:   perFlow,
			})
			flow++
		}
	}
	m, err := rig.Run(dests * flowsPerDest * perFlow)
	if err != nil {
		return Metrics{}, 0, err
	}
	evaluated := rig.Cl.Stats.Histogram("core.plan_evaluated").Mean()
	return m, evaluated, nil
}

func runE6(cfg Config) []*stats.Table {
	dests, flowsPerDest, perFlow := 4, 3, 24
	budgets := []int{1, 2, 4, 8, 16, 32, 64}
	if cfg.Quick {
		dests, flowsPerDest, perFlow = 3, 2, 8
		budgets = []int{1, 4, 16}
	}
	t := stats.NewTable("E6 — rearrangement search budget sweep (4 destinations, bursty)",
		"budget", "time(µs)", "frames", "avg evaluated", "wall(ms)")
	t.Caption = "plan quality saturates at a small budget; beyond it only optimizer CPU grows"
	for _, b := range budgets {
		m, eval, err := e6Point(b, dests, flowsPerDest, perFlow, cfg.Seed)
		if err != nil {
			panic(err)
		}
		t.AddRow(
			fmt.Sprintf("%d", b),
			stats.FormatFloat(float64(m.End)/1000),
			fmt.Sprintf("%d", m.Frames),
			stats.FormatFloat(eval),
			stats.FormatFloat(float64(m.Wall.Microseconds())/1000),
		)
	}
	return []*stats.Table{t}
}

// E6Quality returns the completion time for a budget (test oracle).
func E6Quality(budget int, cfg Config) float64 {
	dests, flowsPerDest, perFlow := 4, 3, 24
	if cfg.Quick {
		dests, flowsPerDest, perFlow = 3, 2, 8
	}
	m, _, err := e6Point(budget, dests, flowsPerDest, perFlow, cfg.Seed)
	if err != nil {
		panic(err)
	}
	return float64(m.End)
}
