package exp

import (
	"fmt"

	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/workload"
)

// E1 — the paper's headline claim (§4): "the aggregation of eager segments
// collected from several independent communication flows brings huge
// performance gains" over the previous, deterministic per-flow Madeleine.
//
// Workload: F independent flows on one node, each sending a stream of
// small eager messages to the same peer, back to back. Strategies
// compared: fifo (previous Madeleine), aggregate-intraflow (aggregation
// without flow mixing), aggregate (the new engine). Reported per flow
// count: network transactions, completion time, message rate, mean
// latency, and the speedup of the new engine over the baseline.

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Cross-flow aggregation of eager segments vs previous Madeleine",
		Claim: "§4: aggregating eager segments from several independent flows brings huge gains",
		Run:   runE1,
	})
}

// e1Point runs one (bundle, flows) cell. Per-flow arrivals are moderate
// Poisson streams: an individual flow rarely has two packets waiting at
// once, so aggregation material exists only *across* flows — the exact
// situation §4's claim is about. (Back-to-back arrivals would let a flow
// aggregate with itself and hide the cross-flow effect.)
func e1Point(bundle string, flows, perFlow, size int, seed uint64) (Metrics, error) {
	rig, err := NewRig(RigOptions{ID: "E1", Bundle: bundle})
	if err != nil {
		return Metrics{}, err
	}
	d := workload.NewDriver(rig.Cl.Eng, rig.Engines, seed)
	for f := 0; f < flows; f++ {
		d.Add(workload.FlowSpec{
			Flow: packet.FlowID(f + 1), Src: 0, Dst: 1,
			Class: packet.ClassSmall,
			Size:  workload.Fixed(size),
			Arrival: workload.Poisson{
				Mean: 4 * simnet.Microsecond,
			},
			Count: perFlow,
		})
	}
	return rig.Run(flows * perFlow)
}

func runE1(cfg Config) []*stats.Table {
	perFlow, size := 64, 64
	flowCounts := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		perFlow = 16
		flowCounts = []int{1, 4, 8}
	}
	t := stats.NewTable("E1 — cross-flow eager aggregation (MX, 64 B messages)",
		"flows", "strategy", "frames", "time(µs)", "msg/s", "meanLat(µs)", "speedup")
	t.Caption = "speedup = fifo completion time / strategy completion time, same workload"

	for _, flows := range flowCounts {
		base, err := e1Point("fifo", flows, perFlow, size, cfg.Seed)
		if err != nil {
			panic(err)
		}
		for _, bundle := range []string{"fifo", "aggregate-intraflow", "aggregate"} {
			m, err := e1Point(bundle, flows, perFlow, size, cfg.Seed)
			if err != nil {
				panic(err)
			}
			speedup := float64(base.End) / float64(m.End)
			t.AddRow(
				fmt.Sprintf("%d", flows),
				bundle,
				fmt.Sprintf("%d", m.Frames),
				stats.FormatFloat(float64(m.End)/1000),
				stats.FormatFloat(m.MsgPerSec),
				stats.FormatFloat(m.MeanLatUs),
				fmt.Sprintf("%.2fx", speedup),
			)
		}
	}
	return []*stats.Table{t}
}

// E1Speedup exposes the headline number for tests: the aggregate-engine
// speedup over fifo at the given flow count.
func E1Speedup(flows int, cfg Config) float64 {
	perFlow := 64
	if cfg.Quick {
		perFlow = 16
	}
	base, err := e1Point("fifo", flows, perFlow, 64, cfg.Seed)
	if err != nil {
		panic(err)
	}
	agg, err := e1Point("aggregate", flows, perFlow, 64, cfg.Seed)
	if err != nil {
		panic(err)
	}
	return float64(base.End) / float64(agg.End)
}
