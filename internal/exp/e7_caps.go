package exp

import (
	"fmt"

	"newmad/internal/caps"
	"newmad/internal/packet"
	"newmad/internal/stats"
	"newmad/internal/workload"
)

// E7 — §1: "All these decisions must be consistent with the capabilities
// of the underlying network drivers."
//
// The same aggregation workload runs over four capability profiles:
// MX (16-entry gather), Elan (no gather — aggregation stages through a
// memcpy), IB (4-entry SGE lists) and IB with inline sends (a PIO window).
// The optimizer's behaviour — how many packets per frame, what staging
// cost it pays, where aggregation stops being profitable — follows the
// capability record, not the workload.

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Optimization parameterized by driver capabilities",
		Claim: "§1: decisions follow the driver capability record (gather/copy, PIO/DMA, limits)",
		Run:   runE7,
	})
}

func e7Point(prof caps.Caps, flows, perFlow, size int, seed uint64) (Metrics, error) {
	rig, err := NewRig(RigOptions{ID: "E7", Profiles: []caps.Caps{SingleChannel(prof)}})
	if err != nil {
		return Metrics{}, err
	}
	d := workload.NewDriver(rig.Cl.Eng, rig.Engines, seed)
	for f := 0; f < flows; f++ {
		d.Add(workload.FlowSpec{
			Flow: packet.FlowID(f + 1), Src: 0, Dst: 1,
			Class:   packet.ClassSmall,
			Size:    workload.Fixed(size),
			Arrival: workload.BackToBack{},
			Count:   perFlow,
		})
	}
	return rig.Run(flows * perFlow)
}

func runE7(cfg Config) []*stats.Table {
	flows, perFlow := 8, 32
	if cfg.Quick {
		flows, perFlow = 4, 12
	}
	ibInline, _ := caps.Lookup("ib-inline")

	t := stats.NewTable("E7 — capability parameterization (8 flows, back-to-back)",
		"profile", "gather", "msg size", "frames", "pkts/frame", "time(µs)", "meanLat(µs)")
	t.Caption = "gather hardware aggregates via iovecs; Elan stages through a copy; limits cap frame size"
	for _, size := range []int{64, 1024} {
		for _, prof := range []caps.Caps{caps.MX, caps.Elan, caps.IB, ibInline} {
			m, err := e7Point(prof, flows, perFlow, size, cfg.Seed)
			if err != nil {
				panic(err)
			}
			gather := "copy"
			if prof.Gather() {
				gather = fmt.Sprintf("iov %d", prof.MaxIOV)
			}
			t.AddRow(prof.Name, gather,
				fmt.Sprintf("%dB", size),
				fmt.Sprintf("%d", m.Frames),
				stats.FormatFloat(float64(m.Delivered)/float64(m.Frames)),
				stats.FormatFloat(float64(m.End)/1000),
				stats.FormatFloat(m.MeanLatUs),
			)
		}
	}
	return []*stats.Table{t}
}

// E7PacketsPerFrame exposes the mean aggregation depth per profile.
func E7PacketsPerFrame(prof caps.Caps, cfg Config) float64 {
	flows, perFlow := 8, 32
	if cfg.Quick {
		flows, perFlow = 4, 12
	}
	m, err := e7Point(prof, flows, perFlow, 64, cfg.Seed)
	if err != nil {
		panic(err)
	}
	return float64(m.Delivered) / float64(m.Frames)
}
