package exp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"newmad/internal/caps"
	"newmad/internal/cluster"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/stats"
)

// X2 — mesh addendum (not a claim of the paper; added with the multi-node
// TCP mesh transport).
//
// The reproduction's other experiments run the optimizer against simulated
// NICs in virtual time. X2 runs the *same engine and the same all-to-all
// workload* twice: once on the simulated TCP fabric (the virtual-time
// prediction) and once over real mesh sockets between N full Figure-1
// stacks (the wall-clock measurement). The transaction accounting — how
// many frames the optimizer posts for the workload — is the quantity the
// model is supposed to predict; completion time differs by construction,
// since the simulated profile models a 2006 gigabit stack while the real
// mesh runs over the host's loopback device.

func init() {
	register(Experiment{
		ID:    "X2",
		Title: "mesh addendum: real TCP mesh sockets vs the virtual-time model",
		Claim: "reproduction brief: the optimizer's transaction accounting carries over from the simulated fabric to a real N-node transport (not in the paper)",
		Run:   runX2,
	})
}

// X2Result is one substrate's outcome for the shared workload.
type X2Result struct {
	Nodes int
	Msgs  int
	Bytes int
	// Frames is the total number of frames the optimizers posted.
	Frames uint64
	// Completion is virtual time for the simulated run, wall-clock time for
	// the mesh run.
	Completion time.Duration
}

// x2Workload enumerates the all-to-all raw-packet workload: every ordered
// (src, dst) pair carries one flow of perFlow packets.
func x2Shape(cfg Config) (nodes, perFlow, size int) {
	if cfg.Quick {
		return 3, 30, 512
	}
	return 4, 200, 512
}

func x2Flow(nodes int, src, dst packet.NodeID) packet.FlowID {
	return packet.FlowID(uint32(src)*uint32(nodes) + uint32(dst) + 1)
}

func x2Packet(nodes, seq, size int, src, dst packet.NodeID) *packet.Packet {
	return &packet.Packet{
		Flow: x2Flow(nodes, src, dst), Msg: 1, Seq: seq,
		Src: src, Dst: dst,
		Class: packet.ClassSmall, Payload: make([]byte, size),
	}
}

// X2Sim runs the workload on the simulated TCP fabric and reports the
// virtual-time prediction.
func X2Sim(cfg Config) (X2Result, error) {
	nodes, perFlow, size := x2Shape(cfg)
	rig, err := NewRig(RigOptions{ID: "X2", Nodes: nodes, Profiles: []caps.Caps{caps.TCP}})
	if err != nil {
		return X2Result{}, err
	}
	total := 0
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			if s == d {
				continue
			}
			for q := 0; q < perFlow; q++ {
				p := x2Packet(nodes, q, size, packet.NodeID(s), packet.NodeID(d))
				if err := rig.Engines[packet.NodeID(s)].Submit(p); err != nil {
					return X2Result{}, err
				}
				total++
			}
		}
	}
	m, err := rig.Run(total)
	if err != nil {
		return X2Result{}, err
	}
	return X2Result{
		Nodes:      nodes,
		Msgs:       total,
		Bytes:      total * size,
		Frames:     rig.Cl.Stats.CounterValue("core.frames_posted"),
		Completion: time.Duration(m.End),
	}, nil
}

// X2Mesh runs the workload over real TCP mesh sockets and reports the
// wall-clock measurement.
func X2Mesh(cfg Config) (X2Result, error) {
	nodes, perFlow, size := x2Shape(cfg)
	total := nodes * (nodes - 1) * perFlow

	var delivered atomic.Int64
	done := make(chan struct{}, 1)
	c, err := cluster.New(cluster.Options{
		Nodes: nodes,
		Raw:   true,
		OnDeliver: func(packet.NodeID, proto.Deliverable) {
			if delivered.Add(1) == int64(total) {
				done <- struct{}{}
			}
		},
	})
	if err != nil {
		return X2Result{}, err
	}
	defer c.Close()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for s := 0; s < nodes; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := c.Engine(packet.NodeID(s))
			for q := 0; q < perFlow; q++ {
				for d := 0; d < nodes; d++ {
					if s == d {
						continue
					}
					p := x2Packet(nodes, q, size, packet.NodeID(s), packet.NodeID(d))
					if err := eng.Submit(p); err != nil {
						errs <- err
						return
					}
				}
			}
			eng.Flush()
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return X2Result{}, err
	default:
	}
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		return X2Result{}, fmt.Errorf("exp: mesh run incomplete, %d of %d delivered", delivered.Load(), total)
	}
	wall := time.Since(start)

	var frames uint64
	for _, n := range c.Nodes {
		frames += n.Stats.CounterValue("core.frames_posted")
	}
	return X2Result{
		Nodes:      nodes,
		Msgs:       total,
		Bytes:      total * size,
		Frames:     frames,
		Completion: wall,
	}, nil
}

func runX2(cfg Config) []*stats.Table {
	sim, err := X2Sim(cfg)
	if err != nil {
		panic(err)
	}
	mesh, err := X2Mesh(cfg)
	if err != nil {
		panic(err)
	}
	t := stats.NewTable(
		fmt.Sprintf("X2 — all-to-all on %d nodes, 512 B messages: simulated TCP vs real mesh sockets", sim.Nodes),
		"substrate", "time base", "msgs", "frames", "pkts/frame", "time(ms)", "goodput(MB/s)")
	t.Caption = "frames measure the optimizer's transaction accounting; sim time models a 2006 gigabit stack, mesh time is the host's loopback"
	add := func(name, base string, r X2Result) {
		secs := r.Completion.Seconds()
		t.AddRow(
			name, base,
			fmt.Sprintf("%d", r.Msgs),
			fmt.Sprintf("%d", r.Frames),
			stats.FormatFloat(float64(r.Msgs)/float64(r.Frames)),
			stats.FormatFloat(secs*1e3),
			stats.FormatFloat(float64(r.Bytes)/secs/1e6),
		)
	}
	add("sim-tcp", "virtual", sim)
	add("mesh-tcp", "wall", mesh)
	return []*stats.Table{t}
}
