package exp

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"newmad/internal/caps"
	"newmad/internal/chaos"
	"newmad/internal/cluster"
	"newmad/internal/core"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/strategy"
	"newmad/internal/telemetry"
	"newmad/internal/trace"
)

// X5 — chaos addendum (not a claim of the paper; added with the fault
// injection subsystem).
//
// The paper's engine exists to keep NICs busy; an engine worth deploying
// must stay *correct* while the NICs misbehave. X5 runs the conglomerate
// workload (small streams + rendezvous bulks, both directions) between two
// 2-rail nodes while a seed-generated script of rolling rail flaps plays
// out underneath, a third node's background traffic gets cut off by a
// scripted crash, and the chaos injectors drop a fraction of the
// rendezvous control frames. The measured claims:
//
//   - exactly-once: every payload between the surviving nodes is delivered
//     exactly once — failover re-routes frames reclaimed from dead rails,
//     the rendezvous retry re-sends lost control frames, and the
//     reassembler's dedupe absorbs the ambiguous re-sends;
//   - graceful degradation: the run completes in bounded wall-clock time
//     despite the fault schedule;
//   - replayability: the executed fault schedule is identical,
//     event-for-event, when the scenario is re-run from the same seed —
//     the property that makes a chaotic failure debuggable.

func init() {
	register(Experiment{
		ID:    "X5",
		Title: "chaos addendum: conglomerate workload under rolling rail flaps and a node crash",
		Claim: "reproduction brief: with deterministic fault injection underneath, the engine delivers every surviving-pair payload exactly once and the fault schedule replays event-for-event from its seed (not in the paper)",
		Run:   runX5,
	})
}

// X5Result is one chaos run's outcome.
type X5Result struct {
	Msgs  int // payloads between the surviving pair (the exactly-once set)
	Bytes int
	// Completion is wall-clock time from first submit to last delivery of
	// the surviving-pair set.
	Completion time.Duration
	// Lost and Duplicated summarize delivery accounting (0 and 0 on pass).
	Lost, Duplicated int
	// Fault/recovery accounting.
	FaultsInjected uint64 // injector-applied frame faults
	PeerDowns      uint64 // rail-level peer-down events observed
	Failovers      uint64 // frames re-routed by the engines
	Reclaimed      uint64 // frames handed back by dying rails
	RdvRetries     uint64 // rendezvous control retries
	// Trace is the executed fault schedule; two runs from one seed must
	// produce Equal traces.
	Trace *chaos.Trace
	// QwaitP50Us/QwaitP99Us are the survivors' queue-wait quantiles (µs):
	// how long payloads sat in the backlog while rails flapped underneath.
	// Queue-wait is the span that survives the real TCP wire — the
	// end-to-end stamp is in-memory-only and never encoded (see
	// internal/core span taxonomy).
	QwaitP50Us, QwaitP99Us float64
	// Fleet is the run's telemetry roll-up across all three engines.
	Fleet telemetry.FleetSnapshot
	// SpoolDir names the flight-recorder dump written when delivery broke
	// (empty on a clean run).
	SpoolDir string
}

func x5Shape(cfg Config) (smallMsgs, smallSize, bulkMsgs, bulkSize, flaps int) {
	if cfg.Quick {
		return 300, 256, 16, 512 << 10, 3
	}
	return 1200, 256, 32, 1 << 20, 8
}

// x5Rails derives the transport profiles, wire-paced like X4's: each TCP
// rail enforces a GigE-class 40 MB/s on the wall clock. The pacing is what
// makes the fault schedule bite — frames genuinely occupy a rail when it
// breaks, so reclaim-and-failover (not luck) is what keeps delivery
// exactly-once.
func x5Rails() []caps.Caps {
	base := caps.TCP
	base.Name = "gige"
	base.Bandwidth = 40e6
	base.EmulateWire = true
	return caps.RailProfiles(base, 2)
}

// x5Script builds the deterministic scenario for seed: rolling flaps on
// the rails of the surviving pair, plus the bystander crash mid-run.
func x5Script(cfg Config) (chaos.Script, error) {
	_, _, _, _, flaps := x5Shape(cfg)
	s, err := chaos.RollingFlaps(cfg.Seed, chaos.FlapConfig{
		Nodes: 2, Rails: 2, Flaps: flaps,
		Start:   30 * time.Millisecond,
		Every:   60 * time.Millisecond,
		DownFor: 25 * time.Millisecond,
	})
	if err != nil {
		return chaos.Script{}, err
	}
	// The bystander dies in the middle of the flap sequence. Its traffic is
	// outside the exactly-once set; what the crash proves is that losing a
	// node wholesale neither wedges nor corrupts the surviving pair.
	crashAt := 30*time.Millisecond + time.Duration(flaps)*60*time.Millisecond/2
	s.Events = append(s.Events, chaos.Event{At: crashAt, Op: chaos.OpCrash, Node: 2})
	return s, nil
}

// X5Chaos runs the scenario once and reports the delivery and fault
// accounting.
func X5Chaos(cfg Config) (X5Result, error) {
	smallMsgs, smallSize, bulkMsgs, bulkSize, _ := x5Shape(cfg)
	script, err := x5Script(cfg)
	if err != nil {
		return X5Result{}, err
	}

	// The exactly-once set: flows between nodes 0 and 1.
	survivingFlow := func(f packet.FlowID) bool { return f >= 10 && f < 30 }
	total := 2 * (smallMsgs + bulkMsgs)

	type key struct {
		src  packet.NodeID
		flow packet.FlowID
		seq  int
	}
	var mu sync.Mutex
	delivered := map[key]int{}
	var deliveredN atomic.Int64
	var downs atomic.Int64
	done := make(chan struct{}, 1)

	opts := cluster.Options{
		Nodes:       3,
		Rails:       x5Rails(),
		Raw:         true,
		TraceRing:   512, // flight recorders: the anomaly spool's evidence
		RdvRetry:    simnet.FromWall(40 * time.Millisecond),
		RdvRetryMax: 10,
		Chaos: &cluster.ChaosPlan{
			Seed: cfg.Seed,
			Rules: []chaos.Rule{
				// Recoverable by design: the rendezvous retry re-sends RTS,
				// the receiver re-answers CTS. Data frames stay untouched —
				// nothing retransmits a silently dropped payload.
				{Kind: chaos.Drop, Prob: 0.15,
					Frames: []packet.FrameKind{packet.FrameRTS, packet.FrameCTS}},
			},
		},
		OnDeliver: func(node packet.NodeID, d proto.Deliverable) {
			if !survivingFlow(d.Pkt.Flow) {
				return
			}
			mu.Lock()
			delivered[key{d.Src, d.Pkt.Flow, d.Pkt.Seq}]++
			mu.Unlock()
			if deliveredN.Add(1) == int64(total) {
				select {
				case done <- struct{}{}:
				default:
				}
			}
		},
		OnPeerDown: func(packet.NodeID, int, packet.NodeID) { downs.Add(1) },
	}
	opts.RailPolicy = strategy.NewScheduledRail(opts.RailCaps())
	c, err := cluster.New(opts)
	if err != nil {
		return X5Result{}, err
	}
	defer c.Close()

	// Telemetry over the chaos run: one registry across the three engines,
	// rolled up into the result's fleet snapshot. No HTTP server here —
	// madbench consumes the snapshot directly.
	reg := telemetry.NewRegistry()
	for n := 0; n < 3; n++ {
		role := "survivor"
		if n == 2 {
			role = "bystander"
		}
		reg.Register(telemetry.Source{
			Node: packet.NodeID(n), Role: role, Engine: c.Engine(packet.NodeID(n)),
		})
	}

	start := time.Now()
	stopBg := make(chan struct{})
	var wg sync.WaitGroup

	// Surviving pair: the conglomerate, both directions.
	for s := 0; s < 2; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := c.Engine(packet.NodeID(s))
			dst := packet.NodeID(1 - s)
			smallFlow := packet.FlowID(10 + s)
			bulkFlow := packet.FlowID(20 + s)
			si, bi := 0, 0
			for si < smallMsgs || bi < bulkMsgs {
				for k := 0; k < smallMsgs/max(bulkMsgs, 1)+1 && si < smallMsgs; k++ {
					p := &packet.Packet{
						Flow: smallFlow, Msg: packet.MsgID(si + 1), Seq: si, Last: true,
						Src: packet.NodeID(s), Dst: dst,
						Class: packet.ClassSmall, Payload: make([]byte, smallSize),
					}
					if err := eng.Submit(p); err != nil {
						return
					}
					si++
				}
				if bi < bulkMsgs {
					p := &packet.Packet{
						Flow: bulkFlow, Msg: packet.MsgID(bi + 1), Seq: bi, Last: true,
						Src: packet.NodeID(s), Dst: dst,
						Class: packet.ClassSmall, Payload: make([]byte, bulkSize),
					}
					if err := eng.Submit(p); err != nil {
						return
					}
					bi++
				}
				// Pace the workload across the fault schedule: the engine
				// must be mid-traffic when rails die, not already drained.
				time.Sleep(200 * time.Microsecond)
			}
			eng.Flush()
		}()
	}
	// Bystander: background smalls toward both survivors until the crash
	// stops it (Submit starts failing on the closed engine — expected).
	wg.Add(1)
	go func() {
		defer wg.Done()
		eng := c.Engine(2)
		seq := 0
		for {
			select {
			case <-stopBg:
				return
			default:
			}
			for d := 0; d < 2; d++ {
				p := &packet.Packet{
					Flow: packet.FlowID(50 + d), Msg: packet.MsgID(seq + 1), Seq: seq, Last: true,
					Src: 2, Dst: packet.NodeID(d),
					Class: packet.ClassSmall, Payload: make([]byte, smallSize),
				}
				if eng.Submit(p) != nil {
					return // crashed: done stimulating
				}
			}
			seq++
			time.Sleep(time.Millisecond)
		}
	}()

	tr := &chaos.Trace{}
	if err := c.RunScript(script, tr); err != nil {
		return X5Result{}, err
	}
	if tr.Len() != len(script.Events) {
		return X5Result{}, fmt.Errorf("exp: X5 executed %d of %d scripted events", tr.Len(), len(script.Events))
	}
	close(stopBg)
	wg.Wait()

	deadline := time.Now().Add(90 * time.Second)
waitDelivery:
	for deliveredN.Load() < int64(total) {
		if time.Now().After(deadline) {
			break waitDelivery
		}
		for n := 0; n < 2; n++ {
			c.Engine(packet.NodeID(n)).Flush()
		}
		select {
		case <-done:
			break waitDelivery
		case <-time.After(10 * time.Millisecond):
		}
	}
	completion := time.Since(start)

	res := X5Result{
		Msgs:           total,
		Bytes:          2 * (smallMsgs*smallSize + bulkMsgs*bulkSize),
		Completion:     completion,
		FaultsInjected: c.FaultsInjected(),
		PeerDowns:      uint64(downs.Load()),
		Trace:          tr,
	}
	var m core.Metrics
	for n := 0; n < 2; n++ {
		c.Engine(packet.NodeID(n)).MetricsInto(&m)
		res.Failovers += m.Failovers
		res.Reclaimed += m.FramesReclaimed
		res.RdvRetries += m.RdvRetries
	}
	mu.Lock()
	for _, n := range delivered {
		if n > 1 {
			res.Duplicated += n - 1
		}
	}
	res.Lost = total - len(delivered)
	mu.Unlock()

	res.Fleet = reg.Fleet()
	qwait := res.Fleet.SpanTotal("queue_wait")
	res.QwaitP50Us = qwait.Quantile(0.50) / 1e3
	res.QwaitP99Us = qwait.Quantile(0.99) / 1e3
	reportLatency("X5", summarizeLatency(res.Fleet.SpanTotal("e2e"), qwait))
	reportFaults("X5", res.FaultsInjected+res.PeerDowns, res.Failovers+res.RdvRetries)

	// Broken delivery freezes the evidence before anyone can panic: every
	// node's flight-recorder ring lands on disk as JSONL.
	if res.Lost != 0 || res.Duplicated != 0 {
		recs := make(map[int]*trace.Recorder, len(c.Nodes))
		for i, node := range c.Nodes {
			recs[i] = node.Trace
		}
		reason := fmt.Sprintf("x5-lost%d-dup%d", res.Lost, res.Duplicated)
		if dir, derr := trace.DumpAnomaly(os.TempDir(), reason, recs, 256); derr == nil {
			res.SpoolDir = dir
		}
	}
	return res, nil
}

func runX5(cfg Config) []*stats.Table {
	res, err := X5Chaos(cfg)
	if err != nil {
		panic(err)
	}
	if res.Lost != 0 || res.Duplicated != 0 {
		panic(fmt.Sprintf("exp: X5 delivery broken: %d lost, %d duplicated of %d (flight-recorder spool: %s)",
			res.Lost, res.Duplicated, res.Msgs, res.SpoolDir))
	}
	t := stats.NewTable(
		"X5 — conglomerate workload under rolling rail flaps, a node crash, and control-frame drops",
		"msgs", "MB", "time(ms)", "lost", "dup", "faults", "peer-downs", "failovers", "reclaimed", "rdv-retries",
		"qwait p50/p99 us")
	t.Caption = "faults are injected deterministically from the workload seed; the executed schedule replays event-for-event on a re-run (the shape test asserts trace equality); qwait is backlog residence time while rails flapped"
	t.AddRow(
		fmt.Sprintf("%d", res.Msgs),
		stats.FormatFloat(float64(res.Bytes)/1e6),
		stats.FormatFloat(res.Completion.Seconds()*1e3),
		fmt.Sprintf("%d", res.Lost),
		fmt.Sprintf("%d", res.Duplicated),
		fmt.Sprintf("%d", res.FaultsInjected),
		fmt.Sprintf("%d", res.PeerDowns),
		fmt.Sprintf("%d", res.Failovers),
		fmt.Sprintf("%d", res.Reclaimed),
		fmt.Sprintf("%d", res.RdvRetries),
		fmt.Sprintf("%.0f/%.0f", res.QwaitP50Us, res.QwaitP99Us),
	)
	return []*stats.Table{t}
}
