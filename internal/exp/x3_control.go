package exp

import (
	"fmt"
	"sync/atomic"
	"time"

	"newmad/internal/cluster"
	"newmad/internal/control"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/stats"
)

// X3 — controller addendum (not a claim of the paper; added with
// internal/control).
//
// E11 proves the closed loop in virtual time, where telemetry is exact and
// sampling is free. X3 runs the same controller live: real TCP mesh
// sockets, wall-clock sampling through the same Runtime abstraction, idle
// and receive upcalls arriving from transport goroutines. The property
// under test is that the loop's *decisions* carry over — a sparse phase
// reads as the latency regime, a dense phase flips it to throughput, and
// the hysteresis/cooldown damping bounds the retune frequency on noisy
// wall-clock telemetry exactly as it does on the model.

func init() {
	register(Experiment{
		ID:    "X3",
		Title: "controller addendum: closed-loop retuning live on the TCP mesh",
		Claim: "reproduction brief: the adaptive controller's decisions fire on wall-clock telemetry over real sockets, damped by hysteresis and cooldown (not in the paper)",
		Run:   runX3,
	})
}

// X3Result is the wall-clock controller run's outcome.
type X3Result struct {
	// Sparse/Dense are the wall durations of the two phases.
	Sparse, Dense time.Duration
	// SparseMsgs/DenseMsgs count the messages of each phase.
	SparseMsgs, DenseMsgs int
	// Decisions is the controller's applied-retune log.
	Decisions []control.Decision
	// SparseEndAt is the phase boundary on the runtime clock — the same
	// clock decision timestamps use, so decisions attribute to phases
	// without wall/runtime origin skew.
	SparseEndAt simnet.Time
	// Cooldown echoes the configured damping window.
	Cooldown time.Duration
	// FinalMode is the regime in effect at the end.
	FinalMode control.Mode
}

// x3Shape sizes the phases. The dense phase is duration-controlled, not
// count-controlled: the property under test is that a *sustained* high-
// rate stream flips the controller, and how many messages that takes
// depends on how fast the host's datapath drains them. denseFor must span
// the loop's reaction horizon (rate EWMA rise + Confirm samples) with
// margin; denseMin bounds the workload from below so the phase is dense on
// any host.
func x3Shape(cfg Config) (sparseMsgs int, sparseGap time.Duration, denseMin int, denseFor time.Duration) {
	if cfg.Quick {
		return 60, 2 * time.Millisecond, 8000, 150 * time.Millisecond
	}
	return 150, 2 * time.Millisecond, 30000, 400 * time.Millisecond
}

// X3Mesh boots a 2-node mesh cluster, attaches a controller to node 0's
// engine, and drives a sparse phase then a dense phase through it.
func X3Mesh(cfg Config) (X3Result, error) {
	sparseMsgs, sparseGap, denseMin, denseFor := x3Shape(cfg)

	var delivered atomic.Int64
	c, err := cluster.New(cluster.Options{
		Nodes: 2,
		Raw:   true,
		OnDeliver: func(packet.NodeID, proto.Deliverable) {
			delivered.Add(1)
		},
	})
	if err != nil {
		return X3Result{}, err
	}
	defer c.Close()

	cooldown := 60 * time.Millisecond
	ctl, err := control.New(control.Options{
		Engine:   c.Engine(0),
		Runtime:  c.Runtime,
		Interval: simnet.FromWall(5 * time.Millisecond),
		HalfLife: simnet.FromWall(20 * time.Millisecond),
		Confirm:  2,
		Cooldown: simnet.FromWall(cooldown),
		HiRate:   20e3,
		LoRate:   2e3,
	})
	if err != nil {
		return X3Result{}, err
	}
	if err := ctl.Start(); err != nil {
		return X3Result{}, err
	}
	defer ctl.Stop()

	res := X3Result{Cooldown: cooldown, SparseMsgs: sparseMsgs}
	eng := c.Engine(0)
	mk := func(flow packet.FlowID, seq, size int) *packet.Packet {
		return &packet.Packet{
			Flow: flow, Msg: packet.MsgID(seq), Seq: seq, Last: true,
			Src: 0, Dst: 1, Class: packet.ClassSmall,
			Payload: make([]byte, size),
		}
	}

	// Sparse phase: one small message per gap — hundreds per second, well
	// under LoRate: the loop must settle on the latency tuning.
	start := time.Now()
	for q := 0; q < sparseMsgs; q++ {
		if err := eng.Submit(mk(1, q, 64)); err != nil {
			return X3Result{}, err
		}
		eng.Flush()
		time.Sleep(sparseGap)
	}
	res.Sparse = time.Since(start)
	res.SparseEndAt = c.Runtime.Now()

	// Dense phase: a back-to-back stream — submission as fast as the engine
	// accepts it, far beyond HiRate — sustained for denseFor so the loop's
	// EWMA and confirmation samples see the regime however fast the host
	// drains the backlog (at least denseMin messages either way).
	start = time.Now()
	denseMsgs := 0
	for denseMsgs < denseMin || time.Since(start) < denseFor {
		for b := 0; b < 512; b++ {
			if err := eng.Submit(mk(2, denseMsgs, 256)); err != nil {
				return X3Result{}, err
			}
			denseMsgs++
		}
	}
	eng.Flush()
	res.DenseMsgs = denseMsgs
	total := int64(sparseMsgs + denseMsgs)
	deadline := time.Now().Add(60 * time.Second)
	for delivered.Load() < total {
		if time.Now().After(deadline) {
			return X3Result{}, fmt.Errorf("exp: X3 incomplete, %d of %d delivered", delivered.Load(), total)
		}
		time.Sleep(time.Millisecond)
	}
	res.Dense = time.Since(start)

	// Stop before snapshotting (idempotent with the deferred Stop): the
	// decision log and the final mode must describe the same instant, not
	// race a still-ticking loop.
	ctl.Stop()
	res.Decisions = ctl.Decisions()
	res.FinalMode = ctl.Mode()
	return res, nil
}

func runX3(cfg Config) []*stats.Table {
	res, err := X3Mesh(cfg)
	if err != nil {
		panic(err)
	}
	t := stats.NewTable("X3 — adaptive controller live on 2-node TCP mesh sockets",
		"phase", "msgs", "wall(ms)", "regime decisions")
	t.Caption = fmt.Sprintf("retunes damped to at most one per %v cooldown; final mode %q", res.Cooldown, res.FinalMode)
	decs := func(lo, hi simnet.Time) string {
		out := ""
		for _, d := range res.Decisions {
			if d.At < lo || d.At >= hi {
				continue
			}
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s→%s@%dms", d.From, d.To,
				simnet.ToWall(simnet.Duration(d.At)).Milliseconds())
		}
		if out == "" {
			return "-"
		}
		return out
	}
	t.AddRow("sparse", fmt.Sprintf("%d", res.SparseMsgs),
		stats.FormatFloat(float64(res.Sparse.Microseconds())/1e3), decs(0, res.SparseEndAt))
	t.AddRow("dense", fmt.Sprintf("%d", res.DenseMsgs),
		stats.FormatFloat(float64(res.Dense.Microseconds())/1e3), decs(res.SparseEndAt, simnet.Infinity))
	reportDecisions("X3", uint64(len(res.Decisions)))
	return []*stats.Table{t}
}
