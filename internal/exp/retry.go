package exp

import "fmt"

// RetryShape runs a wall-clock shape assertion up to attempts times and
// succeeds on the first clean run. Wall-clock experiments (X2, X4, X5)
// measure real sockets on shared CI machines, where a noisy neighbor can
// blow a single timing comparison without anything being wrong with the
// code under test; retrying the *whole measurement* (never just the
// assertion) keeps the shape tests meaningful and the lane deflaked. The
// returned error is the last attempt's, annotated with the attempt count
// so a flaky-turned-real failure is recognizable in CI logs.
func RetryShape(attempts int, attempt func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if err = attempt(); err == nil {
			return nil
		}
	}
	return fmt.Errorf("exp: failed on all %d attempts, last: %w", attempts, err)
}
