package exp

import (
	"fmt"

	"newmad/internal/packet"
	"newmad/internal/stats"
	"newmad/internal/strategy"
	"newmad/internal/workload"
)

// E8 — §1: communication libraries select among "eager, rendezvous and
// remote memory access protocols" per message. The classic Madeleine-style
// latency/bandwidth curves: one flow, message size swept from 8 B to
// 1 MiB, under three protocol policies — the capability-driven threshold,
// eager-always, and rendezvous-always. Eager wins below the threshold
// (no RTS/CTS round trip), rendezvous wins above it (no staging copies,
// flow-controlled receiver); the crossover is the driver's threshold.

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Eager/rendezvous protocol selection across message sizes",
		Claim: "§1: per-message protocol choice; threshold follows the driver profile",
		Run:   runE8,
	})
}

func e8Point(policy strategy.ProtocolPolicy, size, count int, seed uint64) (Metrics, error) {
	b, err := strategy.New("aggregate")
	if err != nil {
		return Metrics{}, err
	}
	b.Protocol = policy
	rig, err := NewRig(RigOptions{ID: "E8"})
	if err != nil {
		return Metrics{}, err
	}
	for _, eng := range rig.Engines {
		if err := eng.SetBundle(b); err != nil {
			return Metrics{}, err
		}
	}
	d := workload.NewDriver(rig.Cl.Eng, rig.Engines, seed)
	class := packet.ClassSmall
	if size >= 8<<10 {
		class = packet.ClassBulk
	}
	d.Add(workload.FlowSpec{
		Flow: 1, Src: 0, Dst: 1, Class: class,
		Size: workload.Fixed(size), Arrival: workload.BackToBack{},
		Count: count,
	})
	return rig.Run(count)
}

func runE8(cfg Config) []*stats.Table {
	count := 12
	sizes := []int{8, 64, 512, 4 << 10, 16 << 10, 32 << 10, 64 << 10, 256 << 10, 1 << 20}
	if cfg.Quick {
		count = 4
		sizes = []int{64, 16 << 10, 256 << 10}
	}
	policies := []struct {
		name   string
		policy strategy.ProtocolPolicy
	}{
		{"threshold(32K)", strategy.ThresholdProtocol{}},
		{"eager-always", strategy.EagerAlways{}},
		{"rndv-always", strategy.ThresholdProtocol{Override: 1}},
	}
	bwT := stats.NewTable("E8 — achieved bandwidth by protocol policy (MX, MB/s)",
		"size", "threshold(32K)", "eager-always", "rndv-always")
	bwT.Caption = "bandwidth = payload delivered / completion time; crossover sits at the driver threshold"
	latT := stats.NewTable("E8 — per-message time by protocol policy (MX, µs)",
		"size", "threshold(32K)", "eager-always", "rndv-always")
	for _, size := range sizes {
		bwRow := []string{sizeLabel(size)}
		latRow := []string{sizeLabel(size)}
		for _, p := range policies {
			m, err := e8Point(p.policy, size, count, cfg.Seed)
			if err != nil {
				panic(err)
			}
			secs := float64(m.End) / 1e9
			mbps := float64(size*count) / secs / 1e6
			bwRow = append(bwRow, stats.FormatFloat(mbps))
			latRow = append(latRow, stats.FormatFloat(float64(m.End)/float64(count)/1000))
		}
		bwT.AddRow(bwRow...)
		latT.AddRow(latRow...)
	}
	return []*stats.Table{bwT, latT}
}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// E8Time returns per-message completion time under a policy (test oracle).
func E8Time(policy strategy.ProtocolPolicy, size int, cfg Config) float64 {
	count := 12
	if cfg.Quick {
		count = 4
	}
	m, err := e8Point(policy, size, count, cfg.Seed)
	if err != nil {
		panic(err)
	}
	return float64(m.End) / float64(count)
}
