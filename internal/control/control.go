// Package control closes the loop the paper leaves open: it watches a
// running optimizer engine through its metrics surface and retunes the
// engine's runtime knobs — artificial delay and flush count, lookahead
// window, search budget, eager/rendezvous threshold, and the strategy
// bundle (class→channel assignment) — as the observed traffic regime
// shifts. The paper notes that "scheduling policies can be changed
// dynamically as application needs evolve"; this package supplies the
// component that decides *when*.
//
// One Controller runs per engine (per node). It samples the engine's
// Metrics() snapshot on a fixed period through the shared Runtime
// abstraction, so the same controller is deterministic under the
// discrete-event simulator (experiment E11) and live on the wall clock over
// real mesh sockets (experiment X3).
//
// Two mechanisms damp the adjustment cost that Henzinger et al. identify
// for weight-dynamic reoptimization:
//
//   - hysteresis: a regime change must be observed on Confirm consecutive
//     samples before the controller acts, so a single burst or lull cannot
//     flip the policy; and
//   - cooldown: after a retune, further retunes are suppressed for a fixed
//     window, bounding the retune frequency regardless of how noisy the
//     evidence is.
//
// Every decision is recorded on the trace as a policy event together with
// the Signals that triggered it, and kept in an inspectable decision log.
package control

import (
	"fmt"
	"sync"

	"newmad/internal/core"
	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/strategy"
	"newmad/internal/trace"
)

// Mode is a traffic regime the controller can recognize. Each mode maps to
// a named strategy.Tuning; the built-in mapping uses the registry's
// "latency", "balanced" and "throughput" operating points.
type Mode string

// The recognized regimes.
const (
	// ModeLatency: sparse, reaction-bound traffic (request-response);
	// artificial delay is pure cost.
	ModeLatency Mode = "latency"
	// ModeBalanced: no strong signal either way; the compromise point.
	ModeBalanced Mode = "balanced"
	// ModeThroughput: dense or backlogged traffic; aggregation pays.
	ModeThroughput Mode = "throughput"
)

// Options configures a Controller.
type Options struct {
	// Engine is the optimizer under control (required).
	Engine *core.Engine
	// Runtime supplies time and timers; use the engine's runtime (required).
	Runtime simnet.Runtime

	// Interval is the sampling period (default 10 µs of virtual time;
	// wall-clock deployments pass milliseconds).
	Interval simnet.Duration
	// HalfLife smooths the rate/backlog EWMAs (default 4×Interval).
	HalfLife simnet.Duration
	// Window spans the sliding-window ratios (default 8×Interval).
	Window simnet.Duration
	// Confirm is how many consecutive samples must agree on a new regime
	// before the controller retunes (default 3; minimum 1).
	Confirm int
	// Cooldown suppresses further retunes after one fires (default
	// 20×Interval).
	Cooldown simnet.Duration

	// HiRate/LoRate split the arrival-rate axis (packets/second): above
	// HiRate the regime reads as throughput, below LoRate as latency, and
	// the band between is hysteresis (hold the current mode). Defaults
	// target the simulated profiles: 1e6 and 400e3.
	HiRate, LoRate float64
	// DeepBacklog marks a waiting list deep enough to read as throughput
	// regardless of the arrival rate (default 24).
	DeepBacklog int

	// Tunings maps each mode to a registered tuning name; defaults to the
	// built-in registry points ("latency", "balanced", "throughput").
	Tunings map[Mode]string
	// Initial is the mode applied at Start (default ModeBalanced).
	Initial Mode

	// DemoteLossyRails enables the rail-health loop: a rail whose peer-down
	// count grew since the previous sample is demoted — its scheduling
	// weight driven to zero through the engine's rail-weight knob, draining
	// new traffic off the flapping connection — and restored after
	// RailHealSamples consecutive clean samples. Regime retunes and rail
	// demotion compose in a single write: a retune folds the demotion mask
	// into its tuning's RailWeights before touching the engine, so a
	// demoted rail can never resurface between health samples and a
	// chaos-driven flap storm costs one cheap weight update per event.
	// No-op on engines whose rail policy is not weight-tunable. Off by
	// default.
	DemoteLossyRails bool
	// RailHealSamples is how many consecutive loss-free samples restore a
	// demoted rail (default 8).
	RailHealSamples int

	// NominalQuotas enables the per-tenant quota loop (quota.go): each
	// tenant's unconstrained operating point, seeded into the engine's
	// admission table at Start and then retuned every tick by the
	// Lagrangian multiplier update as backlog/refusal pressure shifts.
	// Tenants need a positive Rate to be controlled; empty disables the
	// loop entirely.
	NominalQuotas map[packet.TenantID]core.TenantQuota
	// QuotaTargetUtil is the pressure setpoint the dual ascent holds each
	// tenant to (default 0.5).
	QuotaTargetUtil float64
	// QuotaEta is the dual-ascent step size (default 2).
	QuotaEta float64
	// QuotaMinRateFrac floors a demoted tenant's rate at this fraction of
	// its nominal rate (default 0.1), so no tenant is ever starved to zero.
	QuotaMinRateFrac float64

	// Trace, when non-nil, records every decision as a policy event.
	Trace *trace.Recorder
	// Stats receives controller counters; nil allocates a private set.
	Stats *stats.Set
}

// Decision is one applied retune, with the evidence that triggered it.
type Decision struct {
	// At is when the retune was applied.
	At simnet.Time
	// From/To are the tuning names switched between.
	From, To string
	// Evidence is the signal snapshot that confirmed the regime change.
	Evidence Signals
}

func (d Decision) String() string {
	return fmt.Sprintf("%v %s→%s [%s]", d.At, d.From, d.To, d.Evidence)
}

// Controller is the per-node feedback loop.
type Controller struct {
	eng *core.Engine
	rt  simnet.Runtime
	o   Options
	set *stats.Set

	// tickMu is held for the whole of each tick; Stop acquires it after
	// setting closed, so Stop returning guarantees no in-flight tick will
	// touch the engine afterwards (wall-clock timer cancellation is a
	// no-op for an already-running callback).
	tickMu sync.Mutex

	// scratch is the ping-pong snapshot pair for MetricsInto: the sampler
	// retains the previous tick's snapshot for windowed deltas, so two
	// buffers alternate — the one being refilled is never the one the
	// sampler still reads. Guarded by tickMu (only tick touches it). At
	// 1000-node testnet scale this is what removes the two slice
	// allocations per node per sample. On a sharded engine each snapshot
	// is a per-shard merge rather than one atomic cut; shard totals are
	// monotone, so the windowed deltas the controller derives stay
	// non-negative and the rate evidence stays sound.
	scratch    [2]core.Metrics
	scratchIdx int

	mu        sync.Mutex
	samp      *sampler
	mode      Mode
	pending   Mode // candidate regime accumulating confirmation
	streak    int
	last      simnet.Time // time of the last applied retune
	retuned   bool        // whether any retune was ever applied
	decisions []Decision
	tunings   map[Mode]strategy.Tuning
	cancel    simnet.CancelFunc
	running   bool
	closed    bool

	// Rail-health state (DemoteLossyRails).
	lastDowns   []uint64 // per-rail peer-down counts at the previous sample
	demoted     []bool
	cleanStreak []int
	demotions   uint64
	restores    uint64

	// Quota-loop state (quota.go), guarded by mu.
	qctl         map[packet.TenantID]*tenantCtl
	quotaRetunes uint64
}

// New validates the options and builds a controller. The engine is not
// touched until Start.
func New(o Options) (*Controller, error) {
	if o.Engine == nil {
		return nil, fmt.Errorf("control: Options.Engine is required")
	}
	if o.Runtime == nil {
		return nil, fmt.Errorf("control: Options.Runtime is required")
	}
	if o.Interval <= 0 {
		o.Interval = 10 * simnet.Microsecond
	}
	if o.HalfLife <= 0 {
		o.HalfLife = 4 * o.Interval
	}
	if o.Window <= 0 {
		o.Window = 8 * o.Interval
	}
	if o.Confirm < 1 {
		o.Confirm = 3
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 20 * o.Interval
	}
	if o.HiRate <= 0 {
		o.HiRate = 1e6
	}
	if o.LoRate <= 0 {
		o.LoRate = 400e3
	}
	if o.LoRate >= o.HiRate {
		return nil, fmt.Errorf("control: LoRate %.0f must be below HiRate %.0f (the band between is the hysteresis)", o.LoRate, o.HiRate)
	}
	if o.DeepBacklog <= 0 {
		o.DeepBacklog = 24
	}
	if o.Initial == "" {
		o.Initial = ModeBalanced
	}
	if o.RailHealSamples <= 0 {
		o.RailHealSamples = 8
	}
	quotaDefaults(&o)
	names := map[Mode]string{
		ModeLatency:    "latency",
		ModeBalanced:   "balanced",
		ModeThroughput: "throughput",
	}
	for m, n := range o.Tunings {
		names[m] = n
	}
	tunings := make(map[Mode]strategy.Tuning, len(names))
	for m, n := range names {
		t, err := strategy.TuningByName(n)
		if err != nil {
			return nil, fmt.Errorf("control: mode %s: %w", m, err)
		}
		tunings[m] = t
	}
	if _, ok := tunings[o.Initial]; !ok {
		return nil, fmt.Errorf("control: initial mode %q has no tuning", o.Initial)
	}
	set := o.Stats
	if set == nil {
		set = &stats.Set{}
	}
	return &Controller{
		eng:     o.Engine,
		rt:      o.Runtime,
		o:       o,
		set:     set,
		samp:    newSampler(int64(o.HalfLife), int64(o.Window)),
		mode:    o.Initial,
		tunings: tunings,
	}, nil
}

// Start applies the initial mode's tuning and begins sampling. Starting a
// started or stopped controller is an error.
func (c *Controller) Start() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("control: controller stopped")
	}
	if c.running {
		c.mu.Unlock()
		return fmt.Errorf("control: controller already started")
	}
	c.running = true
	tune := c.tunings[c.mode]
	c.mu.Unlock()

	// The initial application establishes a known operating point; it is
	// configuration, not a decision, so it does not enter the log. The
	// nominal tenant quotas are configuration the same way.
	c.apply(tune)
	if len(c.o.NominalQuotas) > 0 {
		c.quotaStart()
	}
	c.mu.Lock()
	if !c.closed {
		c.cancel = c.rt.Schedule(c.o.Interval, "control.tick", c.tick)
	}
	c.mu.Unlock()
	return nil
}

// Stop halts sampling and waits out any tick already in flight: once Stop
// returns, the engine keeps the last applied tuning and is no longer
// touched. Stop is idempotent; do not call it from inside an engine retune
// observer (the in-flight tick the observer runs under would deadlock the
// barrier).
func (c *Controller) Stop() {
	c.mu.Lock()
	c.closed = true
	cancel := c.cancel
	c.cancel = nil
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	// Barrier: a tick past its top closed-check completes before we
	// return; the closed flag stops it from rescheduling.
	c.tickMu.Lock()
	//lint:ignore SA2001 the empty critical section is the point: the acquire waits out the in-flight tick
	c.tickMu.Unlock()
}

// Mode returns the regime currently in effect.
func (c *Controller) Mode() Mode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mode
}

// Decisions returns the applied retunes, oldest first.
func (c *Controller) Decisions() []Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Decision(nil), c.decisions...)
}

// Retunes returns the number of applied retunes.
func (c *Controller) Retunes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return uint64(len(c.decisions))
}

// Signals returns the latest derived evidence (zero before the first tick).
func (c *Controller) Signals() Signals {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.samp.current
}

// Stats returns the controller's counter set.
func (c *Controller) Stats() *stats.Set { return c.set }

// tick is one pass of the loop: sample, classify, maybe retune, reschedule.
func (c *Controller) tick() {
	c.tickMu.Lock()
	defer c.tickMu.Unlock()

	// Check closed before touching the engine at all: a wall-clock timer
	// that fired but had not reached the barrier when Stop ran must not
	// read a possibly-tearing-down engine.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()

	cur := &c.scratch[c.scratchIdx]
	c.scratchIdx ^= 1
	c.eng.MetricsInto(cur)
	m := *cur

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	sig := c.samp.observe(m)
	c.set.Counter("control.samples").Inc()

	want := c.classify(sig)
	var applied *Decision
	var tune strategy.Tuning
	if want == c.mode {
		c.pending, c.streak = "", 0
	} else {
		if want == c.pending {
			c.streak++
		} else {
			c.pending, c.streak = want, 1
		}
		switch {
		case c.streak < c.o.Confirm:
			// Hysteresis: not yet confirmed.
			c.set.Counter("control.holds").Inc()
		case c.retuned && m.Now.Sub(c.last) < c.o.Cooldown:
			// Cooldown: confirmed but too soon after the last retune.
			c.set.Counter("control.cooldown_blocks").Inc()
		default:
			d := Decision{
				At:       m.Now,
				From:     string(c.mode),
				To:       string(want),
				Evidence: sig,
			}
			c.decisions = append(c.decisions, d)
			c.mode = want
			c.pending, c.streak = "", 0
			c.last, c.retuned = m.Now, true
			c.set.Counter("control.retunes").Inc()
			tune = c.tunings[want]
			applied = &d
		}
	}
	c.mu.Unlock()

	if applied != nil {
		c.apply(tune)
		c.o.Trace.Record(trace.Event{
			At: applied.At, Kind: trace.KindPolicy, Node: c.eng.Node(),
			Note: fmt.Sprintf("ctl %s→%s %s", applied.From, applied.To, applied.Evidence),
		})
	}

	if c.o.DemoteLossyRails {
		// A regime retune already carried the demotion mask in its own
		// composed weight write (c.apply); this pass only reacts to new
		// demote/restore evidence in the sample.
		c.railHealth(m)
	}

	if len(c.o.NominalQuotas) > 0 {
		// Per-tenant constrained optimization: one multiplier-update step
		// against this sample's tenant pressure (quota.go). Runs every
		// tick with no Confirm/Cooldown gate — demoting a flooder within
		// one control interval is the loop's contract; the write-on-change
		// threshold inside quotaTick is what keeps the steady state quiet.
		c.quotaTick(m)
	}

	c.mu.Lock()
	if !c.closed {
		c.cancel = c.rt.Schedule(c.o.Interval, "control.tick", c.tick)
	}
	c.mu.Unlock()
}

// railHealth is the lossy-rail demotion loop: one pass per sample. A rail
// with new peer-down events since the last sample loses its scheduling
// weight; RailHealSamples clean samples earn it back. It writes weights
// only on an actual demote/restore event — regime retunes carry the
// demotion mask themselves (composeRailWeights), so there is no window in
// which a retune's weights resurrect a demoted rail.
func (c *Controller) railHealth(m core.Metrics) {
	c.mu.Lock()
	if c.lastDowns == nil {
		// Baseline at zero, where the engine's counters start: a rail that
		// failed between engine creation and the first sample is still
		// evidence, not history.
		c.lastDowns = make([]uint64, len(m.RailDowns))
		c.demoted = make([]bool, len(m.RailDowns))
		c.cleanStreak = make([]int, len(m.RailDowns))
	}
	changed := false
	var events []string
	var restored []int
	for i := range m.RailDowns {
		if i >= len(c.lastDowns) {
			break
		}
		if m.RailDowns[i] > c.lastDowns[i] {
			c.cleanStreak[i] = 0
			if !c.demoted[i] {
				c.demoted[i] = true
				c.demotions++
				changed = true
				events = append(events, fmt.Sprintf("rail %d demoted (+%d downs)", i, m.RailDowns[i]-c.lastDowns[i]))
			}
		} else if c.demoted[i] {
			c.cleanStreak[i]++
			if c.cleanStreak[i] >= c.o.RailHealSamples {
				c.demoted[i] = false
				c.cleanStreak[i] = 0
				c.restores++
				changed = true
				restored = append(restored, i)
				events = append(events, fmt.Sprintf("rail %d restored", i))
			}
		}
		c.lastDowns[i] = m.RailDowns[i]
	}
	demoted := append([]bool(nil), c.demoted...)
	c.mu.Unlock()

	if !changed {
		return
	}
	if len(events) > 0 {
		c.set.Counter("control.rail_health_events").Add(uint64(len(events)))
	}
	// Compose: start from the weights in effect (the tuning's operating
	// point), zero the demoted rails, and hand just-restored rails back
	// their capability default (-1 means "default" to the weight setter)
	// rather than the zero this loop wrote earlier.
	w, ok := c.eng.RailWeights()
	if !ok {
		return
	}
	for i := range w {
		if i < len(demoted) && demoted[i] {
			w[i] = 0
		}
	}
	for _, i := range restored {
		if i < len(w) {
			w[i] = -1
		}
	}
	c.eng.SetRailWeights(w)
	for _, ev := range events {
		c.o.Trace.Record(trace.Event{
			At: m.Now, Kind: trace.KindFault, Node: c.eng.Node(), Note: "ctl " + ev,
		})
	}
}

// RailDemotions returns (demotions, restores) applied by the rail-health
// loop.
func (c *Controller) RailDemotions() (demotions, restores uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.demotions, c.restores
}

// DemotedRails returns a copy of the per-rail demotion flags (nil before
// the first sample).
func (c *Controller) DemotedRails() []bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]bool(nil), c.demoted...)
}

// classify maps evidence to a desired regime. The band between LoRate and
// HiRate holds the current mode (rate hysteresis); a deep backlog reads as
// throughput pressure regardless of the arrival rate.
func (c *Controller) classify(sig Signals) Mode {
	if sig.Backlog >= c.o.DeepBacklog {
		return ModeThroughput
	}
	switch {
	case sig.ArrivalPerSec >= c.o.HiRate:
		return ModeThroughput
	case sig.ArrivalPerSec <= c.o.LoRate:
		return ModeLatency
	default:
		return c.mode
	}
}

// Apply drives every runtime setter of eng to the tuning's operating
// point. Bundle instantiation happens per application so stateful policies
// (adaptive classes) start fresh in the new regime. Exported so experiment
// harnesses configure their static baselines through the exact sequence
// the controller uses — any knob added to strategy.Tuning is wired here
// once.
func Apply(eng *core.Engine, t strategy.Tuning) error {
	return applyTuning(eng, t, nil)
}

// applyTuning is Apply with a rail-demotion mask: when the controller's
// rail-health loop has rails demoted, their zeroes are folded into the
// tuning's weight vector before it reaches the engine — one composed write,
// no window in which the raw tuning weights resurrect a lossy rail.
func applyTuning(eng *core.Engine, t strategy.Tuning, demoted []bool) error {
	b, err := strategy.New(t.Bundle)
	if err != nil {
		return fmt.Errorf("control: tuning %q: %w", t.Name, err)
	}
	// The rail policy is topology-bound, not regime-bound: a multi-rail
	// node's scheduler (e.g. strategy.ScheduledRail) is built from the
	// node's physical rail records, which no registry bundle knows about.
	// Preserve a weight-tunable rail policy across the bundle swap —
	// otherwise the first retune would silently evict the scheduler for
	// the registry default and every subsequent SetRailWeights would be a
	// no-op.
	if cur := eng.Bundle().Rail; cur != nil {
		if _, tunable := cur.(strategy.RailWeightSetter); tunable {
			b.Rail = cur
		}
	}
	if err := eng.SetBundle(b); err != nil {
		return fmt.Errorf("control: tuning %q: %w", t.Name, err)
	}
	eng.SetLookahead(t.Lookahead)
	eng.SetNagle(t.NagleDelay, t.NagleFlushCount)
	eng.SetSearchBudget(t.SearchBudget)
	eng.SetRdvThreshold(t.RdvThreshold)
	if w := composeRailWeights(t.RailWeights, demoted); w != nil {
		eng.SetRailWeights(w)
	}
	return nil
}

// composeRailWeights merges a tuning's rail-weight operating point with the
// rail-health demotion mask into the single vector actually written to the
// engine. nil means "write nothing": a tuning without RailWeights has no
// opinion, and the weights already in effect — demotion zeroes included,
// since the tunable rail policy survives the bundle swap — stay as they
// are. When the mask is longer than the tuning vector, missing entries are
// -1 ("capability default") so a demotion beyond the tuning's horizon still
// lands as an explicit zero.
func composeRailWeights(tw []float64, demoted []bool) []float64 {
	if len(tw) == 0 {
		return nil
	}
	n := len(tw)
	if len(demoted) > n {
		n = len(demoted)
	}
	w := make([]float64, n)
	for i := range w {
		if i < len(tw) {
			w[i] = tw[i]
		} else {
			w[i] = -1
		}
	}
	for i, d := range demoted {
		if d {
			w[i] = 0
		}
	}
	return w
}

// apply is Apply against the controller's own engine, with the current
// rail-demotion mask composed into the tuning's weight write; tunings were
// validated against the bundle registry at New, so a failure means the
// bundle was unregistered mid-run — a programming error worth crashing on.
func (c *Controller) apply(t strategy.Tuning) {
	c.mu.Lock()
	demoted := append([]bool(nil), c.demoted...)
	c.mu.Unlock()
	if err := applyTuning(c.eng, t, demoted); err != nil {
		panic(err)
	}
}
