package control

import (
	"testing"

	"newmad/internal/caps"
	"newmad/internal/core"
	"newmad/internal/strategy"
)

// TestRetuneComposesDemotionMask pins the fix for the retune/demotion
// composition window: a regime retune that re-applies its tuning's
// RailWeights used to write them raw, resurrecting a demoted lossy rail
// until the next health sample re-zeroed it. Every weight write now carries
// the demotion mask, so the window cannot exist — verified here by flipping
// tunings mid-demotion and reading the engine's weights immediately after
// each flip, exactly where the old two-step exposed the raw weights.
func TestRetuneComposesDemotionMask(t *testing.T) {
	cl, eng := simPair(t)
	_ = cl
	rails := []caps.Caps{caps.TCP, caps.TCP}
	rails[0].Name = "r0"
	rails[1].Name = "r1"
	sched := strategy.NewScheduledRail(rails)
	b := eng.Bundle()
	b.Rail = sched
	if err := eng.SetBundle(b); err != nil {
		t.Fatal(err)
	}
	def := sched.Weights()

	c, err := New(Options{
		Engine: eng, Runtime: cl.Eng,
		DemoteLossyRails: true, RailHealSamples: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A sample with fresh peer-down evidence on rail 0 demotes it.
	c.railHealth(core.Metrics{RailDowns: []uint64{1, 0}})
	if w, _ := eng.RailWeights(); w[0] != 0 {
		t.Fatalf("rail 0 not demoted: weights %v", w)
	}

	// Flip to a tuning that re-asserts positive weight on the demoted rail:
	// the composed write must keep the zero, with no window.
	tune, err := strategy.TuningByName("throughput")
	if err != nil {
		t.Fatal(err)
	}
	tune.RailWeights = []float64{5, 7}
	c.apply(tune)
	if w, _ := eng.RailWeights(); w[0] != 0 || w[1] != 7 {
		t.Fatalf("retune mid-demotion: weights %v, want [0 7]", w)
	}

	// Flip again (a flap storm is many of these): still masked.
	tune2, err := strategy.TuningByName("latency")
	if err != nil {
		t.Fatal(err)
	}
	tune2.RailWeights = []float64{3, 4}
	c.apply(tune2)
	if w, _ := eng.RailWeights(); w[0] != 0 || w[1] != 4 {
		t.Fatalf("second retune mid-demotion: weights %v, want [0 4]", w)
	}

	// Two clean samples heal the rail back to its capability default.
	c.railHealth(core.Metrics{RailDowns: []uint64{1, 0}})
	c.railHealth(core.Metrics{RailDowns: []uint64{1, 0}})
	if w, _ := eng.RailWeights(); w[0] != def[0] {
		t.Fatalf("rail 0 not restored to default %v: weights %v", def[0], w)
	}
	if d, r := c.RailDemotions(); d != 1 || r != 1 {
		t.Fatalf("demotions/restores = %d/%d, want 1/1", d, r)
	}

	// With nothing demoted the tuning's weights pass through untouched.
	c.apply(tune)
	if w, _ := eng.RailWeights(); w[0] != 5 || w[1] != 7 {
		t.Fatalf("retune after heal: weights %v, want [5 7]", w)
	}
}
