package control

import (
	"fmt"

	"newmad/internal/core"
	"newmad/internal/stats"
)

// Signals is the controller's distilled evidence: smoothed rates and ratios
// derived from consecutive engine metric snapshots. Every retune decision
// carries the Signals that triggered it, so a decision log reads as
// "what the controller saw" rather than "what it did".
//
// Classification acts on ArrivalPerSec and Backlog; the remaining fields
// are evidence — recorded with each decision, rendered on the trace, and
// available to custom policies reading Decisions() or Signals().
type Signals struct {
	// ArrivalPerSec is the smoothed packet submission rate.
	ArrivalPerSec float64
	// Backlog is the waiting-list depth at the latest sample (raw, not
	// smoothed: regime confirmation across consecutive samples provides the
	// damping).
	Backlog int
	// BacklogMean is the smoothed waiting-list depth.
	BacklogMean float64
	// PktsPerFrame is packets per posted frame over the observation window
	// (1 = no aggregation happening).
	PktsPerFrame float64
	// FramesPerIdle is frames posted per scheduler activation over the
	// window (how often an idle upcall found work).
	FramesPerIdle float64
	// NagleFireRatio is the share of artificial delays that ran to their
	// timer rather than being cut short by backlog pressure, over the
	// window. High values mean the delay is pure latency: traffic is too
	// sparse for the flush count to trigger.
	NagleFireRatio float64
	// EagerShare is the eager fraction of submitted bytes over the window.
	EagerShare float64
	// CtrlShare is the control-class fraction of submissions over the
	// window.
	CtrlShare float64
	// RailShare is each rail's fraction of frames over the window.
	RailShare []float64
}

func (s Signals) String() string {
	out := fmt.Sprintf("rate=%.0f/s backlog=%d~%.1f ppf=%.2f fpi=%.2f eager=%.2f ctrl=%.2f nagle-fire=%.2f",
		s.ArrivalPerSec, s.Backlog, s.BacklogMean, s.PktsPerFrame,
		s.FramesPerIdle, s.EagerShare, s.CtrlShare, s.NagleFireRatio)
	if len(s.RailShare) > 1 {
		out += " rails="
		for i, v := range s.RailShare {
			if i > 0 {
				out += "/"
			}
			out += fmt.Sprintf("%.2f", v)
		}
	}
	return out
}

// sampler folds consecutive core.Metrics snapshots into Signals.
type sampler struct {
	rate    *stats.RateMeter
	backlog *stats.EWMA

	// windows of per-interval deltas.
	packets  *stats.Window
	frames   *stats.Window
	idles    *stats.Window
	fires    *stats.Window
	earlies  *stats.Window
	eagerB   *stats.Window
	rdvB     *stats.Window
	subs     *stats.Window
	ctrlSubs *stats.Window
	rails    []*stats.Window

	windowNs int64
	prev     core.Metrics
	primed   bool
	current  Signals
}

func newSampler(halfLifeNs, windowNs int64) *sampler {
	const buckets = 8
	w := func() *stats.Window { return stats.NewWindow(windowNs, buckets) }
	return &sampler{
		windowNs: windowNs,
		rate:     stats.NewRateMeter(halfLifeNs),
		backlog:  stats.NewEWMA(halfLifeNs),
		packets:  w(),
		frames:   w(),
		idles:    w(),
		fires:    w(),
		earlies:  w(),
		eagerB:   w(),
		rdvB:     w(),
		subs:     w(),
		ctrlSubs: w(),
	}
}

// observe folds one snapshot and returns the refreshed signals.
func (s *sampler) observe(m core.Metrics) Signals {
	now := int64(m.Now)
	s.rate.Observe(m.Submitted, now)
	s.backlog.Update(float64(m.Backlog), now)

	if !s.primed {
		s.prev, s.primed = m, true
	}
	d := func(w *stats.Window, cur, prev uint64) {
		if cur > prev {
			w.Add(float64(cur-prev), now)
		}
	}
	d(s.packets, m.PacketsSent, s.prev.PacketsSent)
	d(s.frames, m.FramesPosted, s.prev.FramesPosted)
	d(s.idles, m.IdleUpcalls, s.prev.IdleUpcalls)
	d(s.fires, m.NagleFires, s.prev.NagleFires)
	d(s.earlies, m.NagleEarly, s.prev.NagleEarly)
	d(s.eagerB, m.EagerBytes, s.prev.EagerBytes)
	d(s.rdvB, m.RdvBytes, s.prev.RdvBytes)
	d(s.subs, m.Submitted, s.prev.Submitted)
	d(s.ctrlSubs, m.SubmittedCtrl, s.prev.SubmittedCtrl)
	if len(s.rails) != len(m.RailFrames) {
		s.rails = make([]*stats.Window, len(m.RailFrames))
		for i := range s.rails {
			s.rails[i] = stats.NewWindow(s.windowNs, 8)
		}
	}
	for i, rf := range m.RailFrames {
		var prev uint64
		if i < len(s.prev.RailFrames) {
			prev = s.prev.RailFrames[i]
		}
		d(s.rails[i], rf, prev)
	}
	s.prev = m

	ratio := func(num, den *stats.Window) float64 {
		dv := den.Sum(now)
		if dv == 0 {
			return 0
		}
		return num.Sum(now) / dv
	}
	sig := Signals{
		ArrivalPerSec:  s.rate.PerSecond(),
		Backlog:        m.Backlog,
		BacklogMean:    s.backlog.Value(),
		PktsPerFrame:   ratio(s.packets, s.frames),
		FramesPerIdle:  ratio(s.frames, s.idles),
		NagleFireRatio: 0,
		EagerShare:     0,
		CtrlShare:      ratio(s.ctrlSubs, s.subs),
	}
	if fires, earlies := s.fires.Sum(now), s.earlies.Sum(now); fires+earlies > 0 {
		sig.NagleFireRatio = fires / (fires + earlies)
	}
	if eb, rb := s.eagerB.Sum(now), s.rdvB.Sum(now); eb+rb > 0 {
		sig.EagerShare = eb / (eb + rb)
	}
	var railTotal float64
	railSums := make([]float64, len(s.rails))
	for i, w := range s.rails {
		railSums[i] = w.Sum(now)
		railTotal += railSums[i]
	}
	if railTotal > 0 {
		sig.RailShare = make([]float64, len(railSums))
		for i, v := range railSums {
			sig.RailShare[i] = v / railTotal
		}
	}
	s.current = sig
	return sig
}
