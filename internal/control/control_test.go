package control

import (
	"strings"
	"testing"

	"newmad/internal/caps"
	"newmad/internal/core"
	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
	"newmad/internal/trace"
)

// simPair builds a 2-node simulated cluster with an engine per node and
// returns (cluster, sender engine, per-flow seq counters).
func simPair(t *testing.T) (*drivers.Cluster, *core.Engine) {
	t.Helper()
	prof := caps.MX
	prof.Channels = 1
	cl, err := drivers.NewCluster(2, prof)
	if err != nil {
		t.Fatal(err)
	}
	engines := make([]*core.Engine, 2)
	for n := 0; n < 2; n++ {
		b, err := strategy.New("aggregate")
		if err != nil {
			t.Fatal(err)
		}
		var rails []drivers.Driver
		for _, d := range cl.NodeDrivers(packet.NodeID(n)) {
			rails = append(rails, d)
		}
		eng, err := core.New(packet.NodeID(n), core.Options{
			Bundle:  b,
			Runtime: cl.Eng,
			Rails:   rails,
			Deliver: func(proto.Deliverable) {},
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[n] = eng
	}
	return cl, engines[0]
}

// TestApplyPreservesTunableRailPolicy pins the topology/regime split: a
// weight-tunable rail policy (the multi-rail scheduler, built from the
// node's physical rail records) must survive Apply's bundle swap, so that
// the tuning's RailWeights land on it instead of on the registry bundle's
// default policy — which knows nothing of the node's rails and has no
// weight knob.
func TestApplyPreservesTunableRailPolicy(t *testing.T) {
	_, eng := simPair(t)
	sched := strategy.NewScheduledRail([]caps.Caps{caps.MX})
	b := eng.Bundle()
	b.Rail = sched
	if err := eng.SetBundle(b); err != nil {
		t.Fatal(err)
	}
	tune, err := strategy.TuningByName("throughput")
	if err != nil {
		t.Fatal(err)
	}
	tune.RailWeights = []float64{7}
	if err := Apply(eng, tune); err != nil {
		t.Fatal(err)
	}
	if got := eng.Bundle().Rail; got != strategy.RailPolicy(sched) {
		t.Fatalf("bundle swap evicted the rail scheduler: now %T", got)
	}
	if w := sched.Weights(); len(w) != 1 || w[0] != 7 {
		t.Fatalf("tuning's rail weights not applied: %v", w)
	}
	// A weight-free policy is left alone: the registry bundle's own rail
	// policy takes over as before.
	b = eng.Bundle()
	b.Rail = strategy.PinnedRail{}
	if err := eng.SetBundle(b); err != nil {
		t.Fatal(err)
	}
	if err := Apply(eng, tune); err != nil {
		t.Fatal(err)
	}
	if _, still := eng.Bundle().Rail.(strategy.RailWeightSetter); still {
		t.Fatal("weight-free policy unexpectedly replaced by a tunable one")
	}
}

func TestControllerOptionDefaultsAndValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without engine should fail")
	}
	cl, eng := simPair(t)
	if _, err := New(Options{Engine: eng}); err == nil {
		t.Fatal("New without runtime should fail")
	}
	if _, err := New(Options{Engine: eng, Runtime: cl.Eng, HiRate: 100, LoRate: 200}); err == nil {
		t.Fatal("inverted rate band should fail")
	}
	if _, err := New(Options{Engine: eng, Runtime: cl.Eng, Tunings: map[Mode]string{ModeLatency: "no-such"}}); err == nil {
		t.Fatal("unknown tuning should fail")
	}
	c, err := New(Options{Engine: eng, Runtime: cl.Eng})
	if err != nil {
		t.Fatal(err)
	}
	if c.Mode() != ModeBalanced {
		t.Fatalf("default initial mode = %s, want balanced", c.Mode())
	}
}

// TestControllerTracksRegimes drives a sparse phase then a dense phase
// through a live simulated engine and asserts the controller's closed loop:
// it settles on the latency tuning under sparse traffic, switches to the
// throughput tuning when the arrival rate crosses the band, never thrashes
// in between, and spaces retunes by at least the cooldown.
func TestControllerTracksRegimes(t *testing.T) {
	cl, eng := simPair(t)
	rec := trace.New(512)
	cooldown := 300 * simnet.Microsecond
	c, err := New(Options{
		Engine:   eng,
		Runtime:  cl.Eng,
		Interval: 10 * simnet.Microsecond,
		Confirm:  3,
		Cooldown: cooldown,
		HiRate:   1e6,
		LoRate:   400e3,
		Trace:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("double Start should fail")
	}

	submit := func(flow packet.FlowID, seq int) func() {
		return func() {
			p := &packet.Packet{
				Flow: flow, Msg: packet.MsgID(seq), Seq: seq, Last: true,
				Src: 0, Dst: 1, Class: packet.ClassSmall,
				Payload: make([]byte, 64),
			}
			if err := eng.Submit(p); err != nil {
				t.Errorf("submit: %v", err)
			}
		}
	}
	// Sparse phase: one small packet every 50 µs for 1 ms (20 k/s).
	for i := 0; i < 20; i++ {
		cl.Eng.At(simnet.Time(i)*simnet.Time(50*simnet.Microsecond), "sparse", submit(1, i))
	}
	// Dense phase from t=1 ms: 8 packets every 4 µs for 1 ms (2 M/s).
	dense := simnet.Time(1 * simnet.Millisecond)
	seq := 0
	for i := 0; i < 250; i++ {
		at := dense + simnet.Time(i)*simnet.Time(4*simnet.Microsecond)
		for j := 0; j < 8; j++ {
			cl.Eng.At(at, "dense", submit(2, seq))
			seq++
		}
	}

	// Stop shortly after the dense phase ends — before the rate EWMA decays
	// back through the band (that flip-back is itself correct behaviour,
	// exercised by the cooldown test below).
	cl.Eng.RunUntil(simnet.Time(2050 * simnet.Microsecond))
	c.Stop()

	ds := c.Decisions()
	if len(ds) != 2 {
		t.Fatalf("decisions = %d (%v), want exactly 2 (balanced→latency, latency→throughput)", len(ds), ds)
	}
	if Mode(ds[0].To) != ModeLatency || Mode(ds[0].From) != ModeBalanced {
		t.Fatalf("first decision %v, want balanced→latency", ds[0])
	}
	if Mode(ds[1].To) != ModeThroughput {
		t.Fatalf("second decision %v, want →throughput", ds[1])
	}
	if gap := ds[1].At.Sub(ds[0].At); gap < cooldown {
		t.Fatalf("retunes %v apart, cooldown is %v", gap, cooldown)
	}
	if ds[1].Evidence.ArrivalPerSec < 1e6 {
		t.Fatalf("throughput decision carries weak evidence: %s", ds[1].Evidence)
	}
	if c.Mode() != ModeThroughput {
		t.Fatalf("final mode = %s, want throughput", c.Mode())
	}
	// The engine must actually be at the throughput operating point.
	m := eng.Metrics()
	thr, _ := strategy.TuningByName("throughput")
	if m.NagleDelay != thr.NagleDelay || m.Lookahead != thr.Lookahead {
		t.Fatalf("engine tuning (nagle=%v lookahead=%d) does not match throughput (%v, %d)",
			m.NagleDelay, m.Lookahead, thr.NagleDelay, thr.Lookahead)
	}
	// Every decision must be on the trace as a policy event.
	policies := rec.Filter(trace.KindPolicy)
	ctl := 0
	for _, ev := range policies {
		if strings.HasPrefix(ev.Note, "ctl") {
			ctl++
		}
	}
	if ctl != len(ds) {
		t.Fatalf("trace has %d controller policy events, want %d", ctl, len(ds))
	}
}

// TestControllerCooldownBounds confirms the damping guarantee directly: with
// an enormous cooldown, a second regime change is recognized but not
// applied.
func TestControllerCooldownBounds(t *testing.T) {
	cl, eng := simPair(t)
	c, err := New(Options{
		Engine:   eng,
		Runtime:  cl.Eng,
		Interval: 10 * simnet.Microsecond,
		Confirm:  2,
		Cooldown: 50 * simnet.Millisecond, // far beyond the run
		HiRate:   1e6,
		LoRate:   400e3,
		Initial:  ModeLatency,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	seq := 0
	// Dense burst to force latency→throughput, then silence (which reads
	// as latency again) — only the first switch may apply.
	for i := 0; i < 100; i++ {
		at := simnet.Time(i) * simnet.Time(4*simnet.Microsecond)
		for j := 0; j < 8; j++ {
			s := seq
			cl.Eng.At(at, "burst", func() {
				p := &packet.Packet{
					Flow: 1, Msg: packet.MsgID(s), Seq: s, Last: true,
					Src: 0, Dst: 1, Class: packet.ClassSmall,
					Payload: make([]byte, 64),
				}
				if err := eng.Submit(p); err != nil {
					t.Errorf("submit: %v", err)
				}
			})
			seq++
		}
	}
	cl.Eng.RunUntil(simnet.Time(3 * simnet.Millisecond))
	c.Stop()

	if n := c.Retunes(); n != 1 {
		t.Fatalf("retunes = %d (%v), want 1 (cooldown must suppress the flip back)", n, c.Decisions())
	}
	if c.Stats().CounterValue("control.cooldown_blocks") == 0 {
		t.Fatal("cooldown suppressed nothing, yet only one retune applied")
	}
}

// TestControllerStopIsFinal verifies a stopped controller neither samples
// nor restarts.
func TestControllerStopIsFinal(t *testing.T) {
	cl, eng := simPair(t)
	c, err := New(Options{Engine: eng, Runtime: cl.Eng})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	c.Stop()
	before := c.Stats().CounterValue("control.samples")
	cl.Eng.RunUntil(simnet.Time(1 * simnet.Millisecond))
	if after := c.Stats().CounterValue("control.samples"); after != before {
		t.Fatalf("stopped controller still sampling: %d → %d", before, after)
	}
	if err := c.Start(); err == nil {
		t.Fatal("restarting a stopped controller should fail")
	}
}
