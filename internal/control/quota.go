package control

import (
	"fmt"
	"sort"

	"newmad/internal/core"
	"newmad/internal/packet"
	"newmad/internal/trace"
)

// The per-tenant quota loop: constrained optimization by multiplier
// update, after the zero-shot Lagrangian recipe (PAPERS.md). Each tenant
// has a nominal quota (its unconstrained operating point) and a dual
// multiplier μ ≥ 0 that prices the tenant's pressure on the shared
// engine. Every control tick reads the tenant's slice of MetricsInto —
// backlog utilization against its nominal backlog quota, plus the
// fraction of its offered load the admission bucket refused — and runs
// one dual-ascent step:
//
//	μ ← max(0, μ + η·(backlogUtil + overDemand − target))
//	rate ← clamp(nominalRate / (1 + μ), minFrac·nominalRate, nominalRate)
//
// A flooding tenant spikes both pressure terms in the sample after its
// onset, so μ jumps and the retuned (demoted) rate lands on the engine
// within ONE control interval — no re-convergence from scratch, which is
// the whole point of the multiplier formulation: the dual state carries
// the constraint prices across tenant-mix shifts. When the flood stops,
// both terms read zero and μ decays by η·target per tick, healing the
// tenant back to nominal gradually (the asymmetry — demote in one tick,
// heal over several — is deliberate flood hysteresis).
//
// The loop only ever *lowers* rates below nominal; backlog quotas and
// burst stay at nominal, since the backlog cap is the constraint being
// priced, not the lever. Engines retune through the same SetTenantQuota
// knob operators use, so every demotion/heal emits a "tenant-quota"
// RetuneEvent that experiments (X6) timestamp against the flood onset.

// tenantCtl is the per-tenant dual state.
type tenantCtl struct {
	nominal core.TenantQuota
	mu      float64 // the Lagrangian multiplier
	rate    float64 // rate currently written to the engine

	// Previous-tick tallies for the over-demand delta.
	lastSubmitted uint64
	lastThrottled uint64
	lastOverQuota uint64
}

// quotaStart seeds the engine's admission table with the nominal quotas
// (configuration, like the initial tuning — not a decision) and builds the
// dual state. Called from Start; sorted so the engine sees a
// deterministic retune order.
func (c *Controller) quotaStart() {
	ids := make([]int, 0, len(c.o.NominalQuotas))
	for t := range c.o.NominalQuotas {
		ids = append(ids, int(t))
	}
	sort.Ints(ids)
	c.mu.Lock()
	c.qctl = make(map[packet.TenantID]*tenantCtl, len(ids))
	for _, id := range ids {
		t := packet.TenantID(id)
		q := c.o.NominalQuotas[t]
		c.qctl[t] = &tenantCtl{nominal: q, rate: q.Rate}
	}
	c.mu.Unlock()
	for _, id := range ids {
		t := packet.TenantID(id)
		if err := c.eng.SetTenantQuota(t, c.o.NominalQuotas[t]); err != nil {
			panic(fmt.Sprintf("control: nominal quota for tenant %d: %v", t, err))
		}
	}
}

// quotaTick runs one dual-ascent step per tenant against the sample m.
// Called from tick under tickMu; engine writes happen outside c.mu.
func (c *Controller) quotaTick(m core.Metrics) {
	type retune struct {
		tenant packet.TenantID
		quota  core.TenantQuota
		mu     float64
	}
	var writes []retune

	c.mu.Lock()
	for i := range m.Tenants {
		tm := &m.Tenants[i]
		ctl := c.qctl[tm.Tenant]
		if ctl == nil || ctl.nominal.Rate <= 0 {
			continue // not under this loop's control
		}

		// Pressure terms. Backlog utilization is against the NOMINAL
		// backlog quota — the constraint being priced — not the retuned
		// one. Over-demand is the refused fraction of this tick's offered
		// load: a flooder at 10× quota reads ≈0.9 the moment it ramps.
		var backlogUtil float64
		if ctl.nominal.Backlog > 0 {
			backlogUtil = float64(tm.Backlog) / float64(ctl.nominal.Backlog)
		} else if c.o.DeepBacklog > 0 {
			backlogUtil = float64(tm.Backlog) / float64(c.o.DeepBacklog)
		}
		dSub := tm.Submitted - ctl.lastSubmitted
		dRef := (tm.Throttled - ctl.lastThrottled) + (tm.OverQuota - ctl.lastOverQuota)
		ctl.lastSubmitted, ctl.lastThrottled, ctl.lastOverQuota = tm.Submitted, tm.Throttled, tm.OverQuota
		var overDemand float64
		if dRef > 0 {
			overDemand = float64(dRef) / float64(dSub+dRef)
		}

		ctl.mu += c.o.QuotaEta * (backlogUtil + overDemand - c.o.QuotaTargetUtil)
		if ctl.mu < 0 {
			ctl.mu = 0
		}
		rate := ctl.nominal.Rate / (1 + ctl.mu)
		if min := c.o.QuotaMinRateFrac * ctl.nominal.Rate; rate < min {
			rate = min
		}
		// Write only a meaningful move (>1% of nominal): the steady state
		// must not emit a retune event per tick.
		if diff := rate - ctl.rate; diff > ctl.nominal.Rate/100 || diff < -ctl.nominal.Rate/100 {
			ctl.rate = rate
			q := ctl.nominal
			q.Rate = rate
			writes = append(writes, retune{tenant: tm.Tenant, quota: q, mu: ctl.mu})
		}
	}
	c.mu.Unlock()

	for _, w := range writes {
		if err := c.eng.SetTenantQuota(w.tenant, w.quota); err != nil {
			panic(fmt.Sprintf("control: quota retune for tenant %d: %v", w.tenant, err))
		}
		c.set.Counter("control.quota_retunes").Inc()
		c.o.Trace.Record(trace.Event{
			At: m.Now, Kind: trace.KindPolicy, Node: c.eng.Node(),
			Note: fmt.Sprintf("ctl tenant %d rate=%.0f μ=%.2f", w.tenant, w.quota.Rate, w.mu),
		})
	}
	if len(writes) > 0 {
		c.mu.Lock()
		c.quotaRetunes += uint64(len(writes))
		c.mu.Unlock()
	}
}

// QuotaRetunes returns the number of quota retunes the multiplier loop has
// written to the engine.
func (c *Controller) QuotaRetunes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quotaRetunes
}

// TenantRate returns the admission rate the loop currently has in effect
// for tenant, and whether the tenant is under quota control.
func (c *Controller) TenantRate(tenant packet.TenantID) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctl, ok := c.qctl[tenant]
	if !ok {
		return 0, false
	}
	return ctl.rate, true
}

// TenantMultiplier returns tenant's dual multiplier μ (0 when the tenant
// is unpressured or not under quota control).
func (c *Controller) TenantMultiplier(tenant packet.TenantID) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctl, ok := c.qctl[tenant]; ok {
		return ctl.mu
	}
	return 0
}

// quotaDefaults fills the loop's option defaults; kept next to the loop
// rather than in New so the tuning constants read in context. η = 2 with
// target 0.5: a saturated flooder (backlogUtil ≈ 1, overDemand ≈ 0.9)
// gains μ ≈ 2.8 in one tick — rate cut to ≲ 30% of nominal immediately —
// while an idle tenant decays μ by 1.0 per tick, healing in a few ticks.
func quotaDefaults(o *Options) {
	if o.QuotaTargetUtil <= 0 {
		o.QuotaTargetUtil = 0.5
	}
	if o.QuotaEta <= 0 {
		o.QuotaEta = 2
	}
	if o.QuotaMinRateFrac <= 0 {
		o.QuotaMinRateFrac = 0.1
	}
}
