package control

import (
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/cluster"
	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

// TestControllerDemotesAndRestoresLossyRail drives the rail-health loop on
// a live two-rail mesh: breaking one rail demotes it (its scheduling
// weight drops to zero, steering new traffic to the survivor), and after
// RailHealSamples clean samples following the heal, the rail earns its
// weight back.
func TestControllerDemotesAndRestoresLossyRail(t *testing.T) {
	opts := cluster.Options{
		Nodes: 2,
		Rails: caps.RailProfiles(caps.TCP, 2),
		Raw:   true,
	}
	opts.RailPolicy = strategy.NewScheduledRail(opts.RailCaps())
	c, err := cluster.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	eng := c.Engine(0)

	ctl, err := New(Options{
		Engine:           eng,
		Runtime:          c.Runtime,
		Interval:         simnet.FromWall(2 * time.Millisecond),
		DemoteLossyRails: true,
		RailHealSamples:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Start(); err != nil {
		t.Fatal(err)
	}
	defer ctl.Stop()

	waitWeights := func(what string, cond func(w []float64) bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if w, ok := eng.RailWeights(); ok && cond(w) {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		w, _ := eng.RailWeights()
		t.Fatalf("timed out waiting for %s (weights %v)", what, w)
	}

	// Both rails start at their bandwidth default.
	waitWeights("initial weights", func(w []float64) bool {
		return len(w) == 2 && w[0] > 0 && w[1] > 0
	})

	// Break rail 0 toward the peer: the next sample shows a new peer-down
	// event and the controller demotes the rail.
	if !c.Nodes[0].Rails[0].BreakPeer(1) {
		t.Fatal("break failed")
	}
	waitWeights("demotion", func(w []float64) bool {
		return w[0] == 0 && w[1] > 0
	})
	if d, _ := ctl.RailDemotions(); d != 1 {
		t.Fatalf("demotions = %d, want 1", d)
	}
	flags := ctl.DemotedRails()
	if len(flags) != 2 || !flags[0] || flags[1] {
		t.Fatalf("demotion flags = %v", flags)
	}

	// Heal the rail; after RailHealSamples clean samples the weight comes
	// back to the capability default.
	if err := c.Nodes[0].Rails[0].Dial(1, c.Nodes[1].Rails[0].Addr()); err != nil {
		t.Fatal(err)
	}
	waitWeights("restore", func(w []float64) bool {
		return w[0] > 0 && w[1] > 0
	})
	if _, r := ctl.RailDemotions(); r != 1 {
		t.Fatalf("restores = %d, want 1", r)
	}

	// The restored engine still routes traffic (sanity end-to-end check).
	done := make(chan struct{}, 1)
	go func() {
		p := &packet.Packet{Flow: 1, Msg: 1, Seq: 0, Last: true, Src: 0, Dst: 1,
			Class: packet.ClassSmall, Payload: make([]byte, 128)}
		if err := eng.Submit(p); err != nil {
			t.Errorf("submit after restore: %v", err)
		}
		eng.Flush()
		done <- struct{}{}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("submit wedged after demotion cycle")
	}
}
