// Package simnet provides the discrete-event simulation kernel used by the
// newmad network substrate.
//
// All network-level experiments run in virtual time: a 64-bit nanosecond
// clock advanced by an event heap. Virtual time makes the reproduction
// deterministic and independent of the host machine, which is essential when
// the quantity under study is who wins and by what factor rather than
// absolute wall-clock numbers.
//
// The kernel is deliberately single-threaded: events execute one at a time in
// timestamp order (ties broken by insertion order). Components that need
// concurrency semantics (e.g. a NIC and the optimizer reacting to each other)
// get them by exchanging events, exactly as hardware exchanges interrupts.
package simnet

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. The zero Time is the simulation epoch.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is kept distinct
// from time.Duration so that virtual and wall-clock quantities cannot be
// mixed by accident; use FromWall/ToWall for explicit conversions.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Infinity is a time later than any event the kernel will ever execute. It
// is used as "no deadline".
const Infinity Time = 1<<63 - 1

// Add returns t shifted forward by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String formats the time as seconds with microsecond resolution, e.g.
// "1.000003s". Infinity formats as "+inf".
func (t Time) String() string {
	if t == Infinity {
		return "+inf"
	}
	return time.Duration(t).String()
}

// String formats the duration using time.Duration notation.
func (d Duration) String() string { return time.Duration(d).String() }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// FromWall converts a wall-clock duration into a virtual duration.
func FromWall(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// ToWall converts a virtual duration into a wall-clock duration.
func ToWall(d Duration) time.Duration { return time.Duration(d) }

// Clock exposes the current virtual time. The Engine implements Clock;
// components hold the narrow interface so they can be unit-tested with a
// fixed fake clock.
type Clock interface {
	// Now returns the current virtual time.
	Now() Time
}

// FixedClock is a trivial Clock pinned at a settable instant, for tests.
type FixedClock struct{ T Time }

// Now returns the pinned instant.
func (f *FixedClock) Now() Time { return f.T }

// BandwidthTime returns the time needed to move n bytes at rate bytesPerSec.
// A non-positive rate is a programming error and panics: every link and
// engine in the simulator must declare a real bandwidth.
func BandwidthTime(n int, bytesPerSec float64) Duration {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("simnet: non-positive bandwidth %v", bytesPerSec))
	}
	return Duration(float64(n) / bytesPerSec * float64(Second))
}
