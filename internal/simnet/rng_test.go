package simnet

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	a = NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGFloat64Bounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGIntnUniform(t *testing.T) {
	r := NewRNG(2)
	const n, trials = 8, 80000
	var buckets [n]int
	for i := 0; i < trials; i++ {
		buckets[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range buckets {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Fatalf("bucket %d has %d, want ~%d", i, c, want)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGRange(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Range(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("Range(5,9) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Range(5,9) only produced %d distinct values", len(seen))
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(4)
	const mean = 1000 * Nanosecond
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > float64(mean)*0.05 {
		t.Fatalf("Exp mean = %v, want ~%v", got, float64(mean))
	}
	if r.Exp(0) != 0 || r.Exp(-5) != 0 {
		t.Fatal("Exp of non-positive mean should be 0")
	}
}

func TestRNGParetoBounds(t *testing.T) {
	r := NewRNG(5)
	lo, hi := 16, 65536
	small := 0
	for i := 0; i < 20000; i++ {
		v := r.Pareto(lo, hi, 1.2)
		if v < lo || v > hi {
			t.Fatalf("Pareto out of bounds: %d", v)
		}
		if v < 4*lo {
			small++
		}
	}
	// A heavy-tailed law concentrates mass near lo.
	if small < 10000 {
		t.Fatalf("Pareto does not look heavy-tailed: only %d/20000 below %d", small, 4*lo)
	}
}

func TestRNGChoiceRespectsWeights(t *testing.T) {
	r := NewRNG(6)
	w := []float64{1, 0, 3}
	var counts [3]int
	for i := 0; i < 40000; i++ {
		counts[r.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket selected %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestRNGShuffleIsPermutation(t *testing.T) {
	r := NewRNG(7)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestRNGForkDecorrelates(t *testing.T) {
	r := NewRNG(9)
	f := r.Fork()
	same := 0
	for i := 0; i < 1000; i++ {
		if r.Uint64() == f.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream matched parent %d/1000 times", same)
	}
}

// Property: a keyed fork's stream is a pure function of (parent state, key)
// — independent of how many other keyed forks were taken, in what order, or
// through which map-iteration order a manifest loader happened to visit
// nodes. This is the determinism contract the testnet harness leans on.
func TestRNGForkKeyOrderIndependent(t *testing.T) {
	const nodes = 64
	draw := func(r *RNG) [4]uint64 {
		var v [4]uint64
		for i := range v {
			v[i] = r.Uint64()
		}
		return v
	}

	// Reference: fork keys in ascending order.
	want := map[uint64][4]uint64{}
	ref := NewRNG(42)
	for k := uint64(0); k < nodes; k++ {
		want[k] = draw(ref.ForkKey(k))
	}

	// Same keys visited through a shuffled order (simulating map iteration).
	order := make([]uint64, nodes)
	for i := range order {
		order[i] = uint64(i)
	}
	NewRNG(7).Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	re := NewRNG(42)
	for _, k := range order {
		if got := draw(re.ForkKey(k)); got != want[k] {
			t.Fatalf("ForkKey(%d) stream changed under reordering: got %v want %v", k, got, want[k])
		}
	}
}

func TestRNGForkKeyDoesNotAdvanceParent(t *testing.T) {
	a, b := NewRNG(11), NewRNG(11)
	for k := uint64(0); k < 100; k++ {
		a.ForkKey(k)
		a.ForkString("node/x")
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("keyed forks advanced the parent stream")
		}
	}
}

func TestRNGForkKeyDecorrelates(t *testing.T) {
	r := NewRNG(13)
	// Adjacent keys must give unrelated streams, and streams must differ
	// from the parent's own.
	a, b := r.ForkKey(1), r.ForkKey(2)
	same := 0
	for i := 0; i < 1000; i++ {
		av := a.Uint64()
		if av == b.Uint64() {
			same++
		}
		if av == r.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("keyed forks correlated: %d collisions/1000", same)
	}
}

func TestRNGForkStringMatchesAcrossInstances(t *testing.T) {
	f := func(seed uint64, key string) bool {
		x := NewRNG(seed).ForkString(key)
		y := NewRNG(seed).ForkString(key)
		for i := 0; i < 8; i++ {
			if x.Uint64() != y.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGForkStringDistinctKeys(t *testing.T) {
	r := NewRNG(17)
	a, b := r.ForkString("drop/edge/0/rail0"), r.ForkString("drop/edge/0/rail1")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct string keys correlated: %d collisions/1000", same)
	}
}

// Property: Range always stays within its bounds for arbitrary valid inputs.
func TestRNGRangeProperty(t *testing.T) {
	f := func(seed uint64, a, b uint16) bool {
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		v := NewRNG(seed).Range(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
