package simnet

import (
	"testing"
	"time"
)

func TestEngineRunsEventsInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, "c", func() { got = append(got, 3) })
	e.At(10, "a", func() { got = append(got, 1) })
	e.At(20, "b", func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Fatalf("final time = %v, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineTieBreaksByInsertionOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, "tie", func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending insertion order", got)
		}
	}
}

func TestEngineClockAdvancesDuringEvents(t *testing.T) {
	e := NewEngine()
	var at1, at2 Time
	e.At(100, "x", func() { at1 = e.Now() })
	e.At(250, "y", func() { at2 = e.Now() })
	e.Run()
	if at1 != 100 || at2 != 250 {
		t.Fatalf("observed times %v, %v; want 100, 250", at1, at2)
	}
}

func TestEngineEventsCanScheduleEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			e.After(10, "step", step)
		}
	}
	e.After(10, "step", step)
	end := e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if end != 50 {
		t.Fatalf("end = %v, want 50", end)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, "later", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, "past", func() {})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.At(10, "victim", func() { ran = true })
	if !e.Cancel(id) {
		t.Fatal("first Cancel returned false")
	}
	if e.Cancel(id) {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
}

func TestEngineCancelFromWithinEvent(t *testing.T) {
	e := NewEngine()
	ran := false
	id := e.At(20, "victim", func() { ran = true })
	e.At(10, "canceler", func() { e.Cancel(id) })
	e.Run()
	if ran {
		t.Fatal("event canceled at t=10 still ran at t=20")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, "tick", func() { got = append(got, at) })
	}
	end := e.RunUntil(25)
	if end != 25 {
		t.Fatalf("RunUntil returned %v, want 25", end)
	}
	if len(got) != 2 {
		t.Fatalf("executed %d events before deadline, want 2", len(got))
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("after Run executed %d, want 4", len(got))
	}
}

func TestEngineRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(1000)
	if e.Now() != 1000 {
		t.Fatalf("idle RunUntil left clock at %v, want 1000", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), "tick", func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events after Stop at 3", count)
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	var step func()
	step = func() { e.After(1, "loop", step) } // infinite chain
	e.After(1, "loop", step)
	n, drained := e.RunLimit(100)
	if drained {
		t.Fatal("infinite chain reported drained")
	}
	if n != 100 {
		t.Fatalf("executed %d, want 100", n)
	}
}

func TestTimerArmDisarm(t *testing.T) {
	e := NewEngine()
	tm := NewTimer(e)
	fired := 0
	tm.Arm(10, "t", func() { fired++ })
	if !tm.Armed() {
		t.Fatal("timer not armed after Arm")
	}
	tm.Disarm()
	e.Run()
	if fired != 0 {
		t.Fatal("disarmed timer fired")
	}

	tm.Arm(10, "t", func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimerArmReplacesDeadline(t *testing.T) {
	e := NewEngine()
	tm := NewTimer(e)
	var firedAt Time
	tm.Arm(10, "t", func() { firedAt = e.Now() })
	tm.Arm(50, "t", func() { firedAt = e.Now() })
	e.Run()
	if firedAt != 50 {
		t.Fatalf("fired at %v, want 50 (Arm must replace)", firedAt)
	}
}

func TestTimerArmIfIdleKeepsEarliestDeadline(t *testing.T) {
	e := NewEngine()
	tm := NewTimer(e)
	var firedAt Time
	fire := func() { firedAt = e.Now() }
	tm.ArmIfIdle(10, "t", fire)
	tm.ArmIfIdle(50, "t", fire)
	e.Run()
	if firedAt != 10 {
		t.Fatalf("fired at %v, want 10 (ArmIfIdle must not push back)", firedAt)
	}
}

func TestBandwidthTime(t *testing.T) {
	// 1000 bytes at 1 GB/s = 1µs.
	d := BandwidthTime(1000, 1e9)
	if d != 1000 {
		t.Fatalf("BandwidthTime = %v ns, want 1000", int64(d))
	}
	if BandwidthTime(0, 1e9) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
}

func TestTimeStringAndConversions(t *testing.T) {
	if Infinity.String() != "+inf" {
		t.Fatalf("Infinity.String() = %q", Infinity.String())
	}
	if got := FromWall(3 * time.Microsecond); got != 3*Microsecond {
		t.Fatalf("FromWall = %v", got)
	}
	if got := ToWall(2 * Millisecond); got != 2*time.Millisecond {
		t.Fatalf("ToWall = %v", got)
	}
	if (Time(5)).Add(7) != 12 {
		t.Fatal("Add broken")
	}
	if (Time(12)).Sub(5) != 7 {
		t.Fatal("Sub broken")
	}
	if !Time(1).Before(2) || !Time(2).After(1) {
		t.Fatal("Before/After broken")
	}
	if (2 * Microsecond).Micros() != 2 {
		t.Fatal("Micros broken")
	}
	if (3 * Second).Seconds() != 3 {
		t.Fatal("Seconds broken")
	}
}

func TestFixedClock(t *testing.T) {
	c := &FixedClock{T: 42}
	if c.Now() != 42 {
		t.Fatal("FixedClock broken")
	}
}
