package simnet

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestEngineImplementsRuntime(t *testing.T) {
	var rt Runtime = NewEngine()
	fired := false
	cancel := rt.Schedule(10, "x", func() { fired = true })
	if cancel == nil {
		t.Fatal("nil cancel func")
	}
	rt.(*Engine).Run()
	if !fired {
		t.Fatal("scheduled callback never fired")
	}
	// Cancel path.
	eng := NewEngine()
	fired = false
	c := eng.Schedule(10, "x", func() { fired = true })
	if !c() {
		t.Fatal("cancel reported failure")
	}
	if c() {
		t.Fatal("double cancel reported success")
	}
	eng.Run()
	if fired {
		t.Fatal("canceled callback fired")
	}
}

func TestRealRuntimeNowAdvances(t *testing.T) {
	rt := NewRealRuntime()
	a := rt.Now()
	time.Sleep(2 * time.Millisecond)
	b := rt.Now()
	if b <= a {
		t.Fatalf("wall clock did not advance: %v -> %v", a, b)
	}
}

func TestRealRuntimeSchedule(t *testing.T) {
	rt := NewRealRuntime()
	done := make(chan struct{})
	rt.Schedule(FromWall(time.Millisecond), "t", func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("callback never fired")
	}
}

func TestRealRuntimeCancel(t *testing.T) {
	rt := NewRealRuntime()
	var fired atomic.Bool
	cancel := rt.Schedule(FromWall(50*time.Millisecond), "t", func() { fired.Store(true) })
	if !cancel() {
		t.Fatal("cancel failed")
	}
	time.Sleep(80 * time.Millisecond)
	if fired.Load() {
		t.Fatal("canceled timer fired")
	}
}

func TestEngineNilEventPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil event accepted")
		}
	}()
	e.At(1, "nil", nil)
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay accepted")
		}
	}()
	e.After(-1, "neg", func() {})
}

func TestEnginePendingExcludesCanceled(t *testing.T) {
	e := NewEngine()
	id := e.At(5, "a", func() {})
	e.At(6, "b", func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Cancel(id)
	if e.Pending() != 1 {
		t.Fatalf("pending after cancel = %d", e.Pending())
	}
}

func TestRunLimitDrains(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), "x", func() {})
	}
	n, drained := e.RunLimit(100)
	if !drained || n != 5 {
		t.Fatalf("n=%d drained=%v", n, drained)
	}
}

func TestBandwidthTimePanicsOnZeroRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth accepted")
		}
	}()
	BandwidthTime(10, 0)
}
