package simnet

import (
	"container/heap"
	"fmt"
)

// EventFunc is the body of a scheduled event. It runs with the engine clock
// set to the event's timestamp.
type EventFunc func()

// event is a heap entry. seq breaks timestamp ties so that events scheduled
// earlier run earlier, which keeps the simulation deterministic.
type event struct {
	at       Time
	seq      uint64
	fn       EventFunc
	canceled bool
	label    string
	index    int // heap index, -1 once popped
}

// EventID identifies a scheduled event so it can be canceled. The zero
// EventID is invalid.
type EventID struct{ ev *event }

// Valid reports whether the id refers to a scheduled event.
func (id EventID) Valid() bool { return id.ev != nil }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event simulation kernel: a clock plus a pending
// event heap. It is not safe for concurrent use; all simulated components
// run on the engine goroutine by construction.
type Engine struct {
	now     Time
	seq     uint64
	heap    eventHeap
	running bool
	stopped bool
	// live counts scheduled, not-yet-canceled, not-yet-run events so that
	// Pending is O(1) even with a million-event heap (1000-node fan-out
	// polls it between phases).
	live int
	// Executed counts events that have run, for diagnostics and for the
	// runaway-simulation guard in RunLimit.
	Executed uint64
}

// NewEngine returns an engine at virtual time zero with no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now implements Clock.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of scheduled, not-yet-canceled events.
func (e *Engine) Pending() int { return e.live }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is a programming error and panics; simulated hardware cannot rewrite
// history. The label is used in diagnostics only.
func (e *Engine) At(t Time, label string, fn EventFunc) EventID {
	if t < e.now {
		panic(fmt.Sprintf("simnet: event %q scheduled at %v, before now %v", label, t, e.now))
	}
	if fn == nil {
		panic("simnet: nil event function")
	}
	ev := &event{at: t, seq: e.seq, fn: fn, label: label}
	e.seq++
	heap.Push(&e.heap, ev)
	e.live++
	return EventID{ev}
}

// After schedules fn to run d from now. Negative d panics.
func (e *Engine) After(d Duration, label string, fn EventFunc) EventID {
	if d < 0 {
		panic(fmt.Sprintf("simnet: negative delay %v for event %q", d, label))
	}
	return e.At(e.now.Add(d), label, fn)
}

// Cancel prevents a scheduled event from running. Canceling an already-run
// or already-canceled event is a no-op. It reports whether the event was
// actually descheduled by this call.
func (e *Engine) Cancel(id EventID) bool {
	ev := id.ev
	if ev == nil || ev.canceled || ev.index < 0 {
		return false
	}
	ev.canceled = true
	e.live--
	return true
}

// Step runs the single earliest pending event. It reports false when no
// events remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := heap.Pop(&e.heap).(*event)
		if ev.canceled {
			continue
		}
		e.live--
		e.now = ev.at
		e.Executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the heap drains or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() Time {
	e.running = true
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	e.running = false
	return e.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (if any time remains) and returns. Events scheduled
// after the deadline stay pending.
func (e *Engine) RunUntil(deadline Time) Time {
	e.running = true
	e.stopped = false
	for !e.stopped {
		// Peek for the next runnable event within the deadline.
		next := e.peek()
		if next == nil || next.at > deadline {
			break
		}
		e.Step()
	}
	e.running = false
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunLimit executes at most maxEvents events, guarding against runaway
// simulations (e.g. a retry loop that never converges). It returns the
// number executed and whether the heap drained.
func (e *Engine) RunLimit(maxEvents uint64) (executed uint64, drained bool) {
	start := e.Executed
	for e.Executed-start < maxEvents {
		if !e.Step() {
			return e.Executed - start, true
		}
	}
	return e.Executed - start, false
}

// Stop makes Run/RunUntil return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

func (e *Engine) peek() *event {
	for len(e.heap) > 0 {
		ev := e.heap[0]
		if !ev.canceled {
			return ev
		}
		heap.Pop(&e.heap)
	}
	return nil
}

// Timer is a resettable one-shot virtual timer built on the engine, used for
// Nagle-style delayed flushes. The zero value is unarmed; bind it with Init.
type Timer struct {
	eng   *Engine
	id    EventID
	armed bool
}

// NewTimer returns a timer bound to eng.
func NewTimer(eng *Engine) *Timer { return &Timer{eng: eng} }

// Armed reports whether the timer currently has a pending expiry.
func (t *Timer) Armed() bool { return t.armed }

// Arm schedules fn to fire after d, replacing any pending expiry.
func (t *Timer) Arm(d Duration, label string, fn EventFunc) {
	t.Disarm()
	t.armed = true
	t.id = t.eng.After(d, label, func() {
		t.armed = false
		fn()
	})
}

// ArmIfIdle schedules fn only when no expiry is pending, preserving the
// earliest deadline (Nagle semantics: the first queued packet starts the
// clock; later packets do not push it back).
func (t *Timer) ArmIfIdle(d Duration, label string, fn EventFunc) {
	if t.armed {
		return
	}
	t.Arm(d, label, fn)
}

// Disarm cancels any pending expiry.
func (t *Timer) Disarm() {
	if t.armed {
		t.eng.Cancel(t.id)
		t.armed = false
	}
}
