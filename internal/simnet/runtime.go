package simnet

import (
	"sync"
	"time"
)

// Runtime abstracts "what time is it and call me back later" so that the
// optimization engine (internal/core) runs unchanged over two substrates:
//
//   - the discrete-event Engine, where time is virtual and callbacks run on
//     the single simulation goroutine; and
//   - RealRuntime, where time is the wall clock and callbacks arrive on
//     timer goroutines (used with the real TCP loopback driver).
//
// Components written against Runtime must therefore be safe for concurrent
// callbacks; under the Engine that safety is simply never exercised.
type Runtime interface {
	Clock
	// Schedule arranges for fn to run after d. The returned CancelFunc
	// deschedules it, reporting whether the callback was prevented.
	Schedule(d Duration, label string, fn func()) CancelFunc
}

// CancelFunc deschedules a pending callback.
type CancelFunc func() bool

// Schedule implements Runtime on the simulation Engine.
func (e *Engine) Schedule(d Duration, label string, fn func()) CancelFunc {
	id := e.After(d, label, fn)
	return func() bool { return e.Cancel(id) }
}

// RealRuntime implements Runtime over the wall clock. Time zero is the
// moment the runtime was created, so virtual and real traces line up.
type RealRuntime struct {
	start time.Time
	mu    sync.Mutex
}

// NewRealRuntime returns a wall-clock runtime anchored at the present.
func NewRealRuntime() *RealRuntime {
	return &RealRuntime{start: time.Now()}
}

// Now returns nanoseconds elapsed since the runtime was created.
func (r *RealRuntime) Now() Time {
	return Time(time.Since(r.start).Nanoseconds())
}

// Schedule arranges fn on a timer goroutine after d of wall time.
func (r *RealRuntime) Schedule(d Duration, _ string, fn func()) CancelFunc {
	t := time.AfterFunc(ToWall(d), fn)
	return t.Stop
}
