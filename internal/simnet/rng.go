package simnet

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64). Every stochastic component of the simulator draws from an
// explicitly seeded RNG so that runs are reproducible bit-for-bit; the
// standard library's global source is never used.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Fork returns a new generator whose stream is decorrelated from r's by a
// fixed tweak; use it to hand independent streams to sub-components. Fork
// consumes one draw from r, so the child's stream depends on how many
// forks (and draws) preceded it — use ForkKey/ForkString when the child's
// identity, not its creation order, should determine its stream.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15) }

// ForkKey returns a generator for the sub-component identified by key,
// derived from r's current state WITHOUT consuming a draw: two ForkKey
// calls on the same generator with the same key yield identical streams no
// matter how many other keyed forks happened in between or in what order.
// This is what makes per-node streams a pure function of (seed, node
// identity) — a manifest loader may materialize nodes in any order (map
// iteration included) without perturbing any node's randomness.
func (r *RNG) ForkKey(key uint64) *RNG {
	// Two SplitMix64 finalization rounds over (state, key): the first
	// decorrelates the key, the second decorrelates the child seed from
	// sibling keys. r.state is read, never advanced.
	z := r.state ^ (key+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewRNG(z ^ (z >> 31))
}

// ForkString is ForkKey with a string identity (FNV-1a hashed). Use it to
// key sub-streams by human-readable paths ("drop/edge/17/rail0").
func (r *RNG) ForkString(key string) *RNG {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return r.ForkKey(h)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n <= 0 panics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("simnet: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform int in [lo, hi]. lo > hi panics.
func (r *RNG) Range(lo, hi int) int {
	if lo > hi {
		panic("simnet: Range with lo > hi")
	}
	return lo + r.Intn(hi-lo+1)
}

// Exp returns an exponentially distributed duration with the given mean,
// the canonical inter-arrival law for Poisson traffic. Mean <= 0 returns 0.
func (r *RNG) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return Duration(-math.Log(u) * float64(mean))
}

// Pareto returns a bounded Pareto-distributed size in [lo, hi] with shape
// alpha. Heavy-tailed message sizes are characteristic of middleware
// conglomerate traffic (many tiny control messages, few huge payloads).
func (r *RNG) Pareto(lo, hi int, alpha float64) int {
	if lo <= 0 || hi < lo {
		panic("simnet: Pareto bounds must satisfy 0 < lo <= hi")
	}
	if alpha <= 0 {
		panic("simnet: Pareto shape must be positive")
	}
	l, h := float64(lo), float64(hi)
	u := r.Float64()
	// Inverse CDF of the bounded Pareto distribution.
	num := u*math.Pow(h, alpha) - u*math.Pow(l, alpha) - math.Pow(h, alpha)
	x := math.Pow(-num/(math.Pow(l, alpha)*math.Pow(h, alpha)), -1/alpha)
	n := int(x)
	if n < lo {
		n = lo
	}
	if n > hi {
		n = hi
	}
	return n
}

// Choice returns a pseudo-random index weighted by weights (all >= 0, at
// least one > 0).
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("simnet: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("simnet: all weights zero")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes s in place (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
