package workload

import (
	"fmt"

	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// Role-based traffic: a testnet manifest names sender and receiver roles
// and a communication pattern, and Expand turns the role memberships into
// concrete per-node FlowSpecs. Expansion iterates only over the ordered
// member slices (never maps), and random destinations come from the caller's
// seeded RNG, so the same manifest and seed expand to the identical flow
// list every time.

// Pattern selects how sender-role members pair with receiver-role members.
type Pattern uint8

const (
	// Pairwise matches from[i] with to[i mod len(to)] — rings, shifts and
	// one-to-one pipelines, the cheapest pattern at 1000-node scale.
	Pairwise Pattern = iota
	// Broadcast gives every sender a flow to every receiver (minus self) —
	// the all-to-all conglomerate mix; O(|from|·|to|) flows.
	Broadcast
	// Random gives every sender one flow to an RNG-drawn receiver — sparse
	// gossip-like load whose shape is a pure function of the seed.
	Random
	numPatterns
)

// String returns the pattern mnemonic.
func (p Pattern) String() string {
	names := [...]string{"pairwise", "broadcast", "random"}
	if int(p) < len(names) {
		return names[p]
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// ParsePattern maps a manifest string to a Pattern.
func ParsePattern(s string) (Pattern, error) {
	switch s {
	case "pairwise", "":
		return Pairwise, nil
	case "broadcast":
		return Broadcast, nil
	case "random":
		return Random, nil
	}
	return 0, fmt.Errorf("workload: unknown pattern %q", s)
}

// RoleTraffic describes one manifest traffic clause: members of a sender
// role talking to members of a receiver role under a pattern.
type RoleTraffic struct {
	// Pattern selects the pairing.
	Pattern Pattern
	// From and To are the ordered role memberships (testnet node IDs).
	From, To []packet.NodeID
	// BaseFlow is the first flow ID; each expanded flow takes the next.
	BaseFlow packet.FlowID
	// Class, Recv, Tenant, Size, Arrival, Msgs and Start carry through to
	// every expanded FlowSpec. Stateful arrivals (Bursts) are cloned per
	// flow. Tenant is normally the *sender role's* tenant, resolved by the
	// manifest layer.
	Class   packet.ClassID
	Recv    packet.RecvMode
	Tenant  packet.TenantID
	Size    SizeDist
	Arrival Arrival
	Msgs    int
	Start   simnet.Duration
}

// Expand resolves the clause into concrete flows. Self-flows are skipped in
// Pairwise/Broadcast and re-drawn in Random; a clause that cannot produce a
// single flow is an error (a silent empty workload would make a zero-loss
// assertion pass vacuously).
func (rt RoleTraffic) Expand(rng *simnet.RNG) ([]FlowSpec, error) {
	if len(rt.From) == 0 || len(rt.To) == 0 {
		return nil, fmt.Errorf("workload: traffic clause with empty role (%d senders, %d receivers)", len(rt.From), len(rt.To))
	}
	if rt.Msgs <= 0 {
		return nil, fmt.Errorf("workload: traffic clause with %d messages", rt.Msgs)
	}
	if rt.Size == nil || rt.Arrival == nil {
		return nil, fmt.Errorf("workload: traffic clause missing size or arrival law")
	}
	if rt.Pattern >= numPatterns {
		return nil, fmt.Errorf("workload: unknown pattern %d", rt.Pattern)
	}

	var pairs [][2]packet.NodeID
	switch rt.Pattern {
	case Pairwise:
		for i, src := range rt.From {
			dst := rt.To[i%len(rt.To)]
			if dst == src {
				// Shift by one so a role talking to itself forms a ring
				// instead of dropping members.
				dst = rt.To[(i+1)%len(rt.To)]
			}
			if dst == src {
				continue
			}
			pairs = append(pairs, [2]packet.NodeID{src, dst})
		}
	case Broadcast:
		for _, src := range rt.From {
			for _, dst := range rt.To {
				if dst == src {
					continue
				}
				pairs = append(pairs, [2]packet.NodeID{src, dst})
			}
		}
	case Random:
		for _, src := range rt.From {
			dst, ok := drawPeer(rt.To, src, rng)
			if !ok {
				continue
			}
			pairs = append(pairs, [2]packet.NodeID{src, dst})
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("workload: traffic clause expands to no flows (pattern %v, %d senders, %d receivers)", rt.Pattern, len(rt.From), len(rt.To))
	}

	flows := make([]FlowSpec, 0, len(pairs))
	for i, p := range pairs {
		arrival := rt.Arrival
		if b, ok := arrival.(*Bursts); ok {
			arrival = b.Clone()
		}
		flows = append(flows, FlowSpec{
			Flow:    rt.BaseFlow + packet.FlowID(i),
			Src:     p[0],
			Dst:     p[1],
			Class:   rt.Class,
			Recv:    rt.Recv,
			Tenant:  rt.Tenant,
			Size:    rt.Size,
			Arrival: arrival,
			Count:   rt.Msgs,
			Start:   rt.Start,
		})
	}
	return flows, nil
}

// drawPeer draws a member of to other than src, reporting false when to has
// no such member.
func drawPeer(to []packet.NodeID, src packet.NodeID, rng *simnet.RNG) (packet.NodeID, bool) {
	dst := to[rng.Intn(len(to))]
	if dst != src {
		return dst, true
	}
	// src is a member of to: draw from the remaining positions instead of
	// rejection-looping, bounding RNG consumption at two draws per sender.
	if len(to) == 1 {
		return 0, false
	}
	k := rng.Intn(len(to) - 1)
	for _, d := range to {
		if d == src {
			continue
		}
		if k == 0 {
			return d, true
		}
		k--
	}
	return 0, false
}
