// Package workload generates the traffic the experiments drive through the
// optimizer: message-size distributions, arrival processes and multi-flow
// mixes, all drawn from explicitly seeded RNGs so every experiment is
// reproducible bit for bit.
package workload

import (
	"fmt"

	"newmad/internal/core"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// SizeDist draws message sizes.
type SizeDist interface {
	Draw(rng *simnet.RNG) int
	String() string
}

// Fixed always returns N bytes.
type Fixed int

// Draw returns the fixed size.
func (f Fixed) Draw(*simnet.RNG) int { return int(f) }

// String describes the distribution.
func (f Fixed) String() string { return fmt.Sprintf("fixed(%dB)", int(f)) }

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi int }

// Draw returns a uniform size.
func (u Uniform) Draw(rng *simnet.RNG) int { return rng.Range(u.Lo, u.Hi) }

// String describes the distribution.
func (u Uniform) String() string { return fmt.Sprintf("uniform(%d..%dB)", u.Lo, u.Hi) }

// Pareto draws from a bounded Pareto law — the heavy-tailed mix typical of
// middleware conglomerates (many tiny control messages, few huge bulks).
type Pareto struct {
	Lo, Hi int
	Alpha  float64
}

// Draw returns a heavy-tailed size.
func (p Pareto) Draw(rng *simnet.RNG) int { return rng.Pareto(p.Lo, p.Hi, p.Alpha) }

// String describes the distribution.
func (p Pareto) String() string { return fmt.Sprintf("pareto(%d..%dB,α=%.1f)", p.Lo, p.Hi, p.Alpha) }

// Arrival generates inter-submission gaps.
type Arrival interface {
	Next(rng *simnet.RNG) simnet.Duration
	String() string
}

// BackToBack submits with no gap (maximum backlog pressure).
type BackToBack struct{}

// Next returns zero.
func (BackToBack) Next(*simnet.RNG) simnet.Duration { return 0 }

// String describes the process.
func (BackToBack) String() string { return "back-to-back" }

// Poisson submits with exponential inter-arrival times of the given mean.
type Poisson struct{ Mean simnet.Duration }

// Next draws an exponential gap.
func (p Poisson) Next(rng *simnet.RNG) simnet.Duration { return rng.Exp(p.Mean) }

// String describes the process.
func (p Poisson) String() string { return fmt.Sprintf("poisson(mean %v)", p.Mean) }

// Bursts submits Size packets back to back, then pauses Gap.
type Bursts struct {
	Size int
	Gap  simnet.Duration
	n    int // per-stream packet counter
}

// Next returns 0 within a burst and Gap between bursts. Bursts is
// stateful per stream; Clone gives each flow its own counter.
func (b *Bursts) Next(*simnet.RNG) simnet.Duration {
	b.n++
	if b.n%b.Size == 0 {
		return b.Gap
	}
	return 0
}

// String describes the process.
func (b *Bursts) String() string { return fmt.Sprintf("bursts(%d per %v)", b.Size, b.Gap) }

// Clone returns an independent burst counter.
func (b *Bursts) Clone() *Bursts { return &Bursts{Size: b.Size, Gap: b.Gap} }

// FlowSpec describes one synthetic communication flow.
type FlowSpec struct {
	Flow  packet.FlowID
	Src   packet.NodeID
	Dst   packet.NodeID
	Class packet.ClassID
	Recv  packet.RecvMode
	// Tenant tags every packet of the flow with its admission-control
	// principal (inert on engines without quotas).
	Tenant  packet.TenantID
	Size    SizeDist
	Arrival Arrival
	Count   int
	// Start delays the flow's first submission — phase-structured
	// applications are modeled as flows with different starts.
	Start simnet.Duration
}

// Driver feeds flows into engines inside a simulation: each flow is an
// independent arrival process starting at time zero.
type Driver struct {
	eng     *simnet.Engine
	engines map[packet.NodeID]*core.Engine
	rng     *simnet.RNG
	// Submitted counts packets handed to the engines.
	Submitted int
	// OnError, when set, receives submission failures instead of the
	// default panic. Chaos testnets crash nodes mid-run, so submissions to
	// a closed engine become expected events to count, not bugs.
	OnError func(spec FlowSpec, seq int, err error)
}

// NewDriver creates a workload driver over per-node engines.
func NewDriver(eng *simnet.Engine, engines map[packet.NodeID]*core.Engine, seed uint64) *Driver {
	return &Driver{eng: eng, engines: engines, rng: simnet.NewRNG(seed)}
}

// Add schedules one flow's submission attempts. Sequence numbers are
// assigned lazily at submission time and advance only on success: a
// refused attempt (admission control, crashed engine) never consumes a
// seq, so the flow's accepted packets always carry consecutive seqs
// starting at 0 — the Submit contract — and a mid-flow refusal cannot
// stall the receiver's in-order reconstruction on a seq that never
// existed (DESIGN.md §10). OnError receives the seq the attempt would
// have taken.
func (d *Driver) Add(spec FlowSpec) {
	if spec.Count <= 0 {
		panic("workload: flow with non-positive count")
	}
	src, ok := d.engines[spec.Src]
	if !ok {
		panic(fmt.Sprintf("workload: no engine for node %d", spec.Src))
	}
	rng := d.rng.Fork()
	at := simnet.Time(0).Add(spec.Start)
	next := new(int)
	for i := 0; i < spec.Count; i++ {
		size := spec.Size.Draw(rng)
		d.eng.At(at, "workload.submit", func() {
			seq := *next
			p := &packet.Packet{
				Flow: spec.Flow, Msg: packet.MsgID(seq), Seq: seq,
				Last: true, // each packet is a complete one-fragment message
				Src:  spec.Src, Dst: spec.Dst,
				Class: spec.Class, Recv: spec.Recv, Tenant: spec.Tenant,
				Payload: make([]byte, size),
			}
			if err := src.Submit(p); err != nil {
				if d.OnError != nil {
					d.OnError(spec, seq, err)
					return
				}
				panic(fmt.Sprintf("workload: submit: %v", err))
			}
			*next = seq + 1
		})
		d.Submitted++
		at = at.Add(spec.Arrival.Next(rng))
	}
}
