package workload

import (
	"strings"
	"testing"

	"newmad/internal/caps"
	"newmad/internal/core"
	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

func TestSizeDists(t *testing.T) {
	rng := simnet.NewRNG(1)
	if Fixed(64).Draw(rng) != 64 {
		t.Fatal("fixed broken")
	}
	for i := 0; i < 1000; i++ {
		v := (Uniform{10, 20}).Draw(rng)
		if v < 10 || v > 20 {
			t.Fatalf("uniform out of range: %d", v)
		}
		p := (Pareto{16, 4096, 1.2}).Draw(rng)
		if p < 16 || p > 4096 {
			t.Fatalf("pareto out of range: %d", p)
		}
	}
	for _, s := range []SizeDist{Fixed(1), Uniform{1, 2}, Pareto{1, 2, 1}} {
		if s.String() == "" {
			t.Fatal("empty dist description")
		}
	}
}

func TestArrivals(t *testing.T) {
	rng := simnet.NewRNG(2)
	if (BackToBack{}).Next(rng) != 0 {
		t.Fatal("back-to-back broken")
	}
	p := Poisson{Mean: 1000}
	sum := simnet.Duration(0)
	for i := 0; i < 10000; i++ {
		sum += p.Next(rng)
	}
	mean := float64(sum) / 10000
	if mean < 900 || mean > 1100 {
		t.Fatalf("poisson mean = %v", mean)
	}
	b := &Bursts{Size: 3, Gap: 50}
	var gaps []simnet.Duration
	for i := 0; i < 6; i++ {
		gaps = append(gaps, b.Next(rng))
	}
	want := []simnet.Duration{0, 0, 50, 0, 0, 50}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("burst gaps = %v", gaps)
		}
	}
	c := b.Clone()
	if c.Next(rng) != 0 {
		t.Fatal("clone inherited counter state")
	}
	for _, a := range []Arrival{BackToBack{}, Poisson{1}, &Bursts{Size: 1, Gap: 1}} {
		if !strings.Contains(a.String(), "") && a.String() == "" {
			t.Fatal("empty arrival description")
		}
	}
}

func TestDriverSubmitsAll(t *testing.T) {
	cl, err := drivers.NewCluster(2, caps.MX)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	engines := map[packet.NodeID]*core.Engine{}
	for n := packet.NodeID(0); n < 2; n++ {
		n := n
		b, _ := strategy.New("aggregate")
		eng, err := core.New(n, core.Options{
			Bundle: b, Runtime: cl.Eng,
			Rails:   []drivers.Driver{cl.Driver(n, "mx")},
			Deliver: func(proto.Deliverable) { delivered++ },
			Stats:   cl.Stats,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[n] = eng
	}
	d := NewDriver(cl.Eng, engines, 7)
	d.Add(FlowSpec{Flow: 1, Src: 0, Dst: 1, Size: Fixed(64), Arrival: BackToBack{}, Count: 20})
	d.Add(FlowSpec{Flow: 2, Src: 0, Dst: 1, Size: Uniform{8, 256}, Arrival: Poisson{Mean: simnet.Microsecond}, Count: 20})
	if d.Submitted != 40 {
		t.Fatalf("submitted = %d", d.Submitted)
	}
	cl.Eng.Run()
	if delivered != 40 {
		t.Fatalf("delivered = %d", delivered)
	}
}

func TestDriverValidation(t *testing.T) {
	cl, _ := drivers.NewCluster(2, caps.MX)
	d := NewDriver(cl.Eng, map[packet.NodeID]*core.Engine{}, 1)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero count", func() {
		d.Add(FlowSpec{Flow: 1, Src: 0, Dst: 1, Size: Fixed(1), Arrival: BackToBack{}, Count: 0})
	})
	mustPanic("missing engine", func() {
		d.Add(FlowSpec{Flow: 1, Src: 0, Dst: 1, Size: Fixed(1), Arrival: BackToBack{}, Count: 1})
	})
}
