package workload

import (
	"testing"

	"newmad/internal/packet"
	"newmad/internal/simnet"
)

func ids(ns ...int) []packet.NodeID {
	out := make([]packet.NodeID, len(ns))
	for i, n := range ns {
		out[i] = packet.NodeID(n)
	}
	return out
}

func baseClause() RoleTraffic {
	return RoleTraffic{
		Size:    Fixed(64),
		Arrival: BackToBack{},
		Msgs:    4,
		Class:   packet.ClassSmall,
	}
}

func TestRoleTrafficPairwiseRing(t *testing.T) {
	rt := baseClause()
	rt.Pattern = Pairwise
	rt.From = ids(0, 1, 2)
	rt.To = ids(0, 1, 2)
	flows, err := rt.Expand(simnet.NewRNG(1))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(flows) != 3 {
		t.Fatalf("ring expanded to %d flows, want 3", len(flows))
	}
	// Self-pairs shift by one: 0→1, 1→2, 2→0.
	want := map[packet.NodeID]packet.NodeID{0: 1, 1: 2, 2: 0}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatalf("self flow %v", f)
		}
		if want[f.Src] != f.Dst {
			t.Fatalf("flow %d→%d, want %d→%d", f.Src, f.Dst, f.Src, want[f.Src])
		}
	}
}

func TestRoleTrafficPairwiseAcrossRoles(t *testing.T) {
	rt := baseClause()
	rt.Pattern = Pairwise
	rt.From = ids(0, 1, 2, 3)
	rt.To = ids(4, 5)
	flows, err := rt.Expand(simnet.NewRNG(1))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(flows) != 4 {
		t.Fatalf("%d flows, want 4", len(flows))
	}
	for i, f := range flows {
		if f.Dst != ids(4, 5)[i%2] {
			t.Fatalf("flow %d: %d→%d", i, f.Src, f.Dst)
		}
	}
}

func TestRoleTrafficBroadcastSkipsSelf(t *testing.T) {
	rt := baseClause()
	rt.Pattern = Broadcast
	rt.From = ids(0, 1)
	rt.To = ids(0, 1, 2)
	flows, err := rt.Expand(simnet.NewRNG(1))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	// 2 senders × 3 receivers − 2 self-pairs = 4 flows.
	if len(flows) != 4 {
		t.Fatalf("%d flows, want 4", len(flows))
	}
	seen := map[[2]packet.NodeID]bool{}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Fatalf("self flow %v", f)
		}
		seen[[2]packet.NodeID{f.Src, f.Dst}] = true
	}
	if len(seen) != 4 {
		t.Fatalf("duplicate flows: %v", seen)
	}
}

func TestRoleTrafficRandomDeterministic(t *testing.T) {
	rt := baseClause()
	rt.Pattern = Random
	rt.From = ids(0, 1, 2, 3, 4, 5, 6, 7)
	rt.To = ids(0, 1, 2, 3, 4, 5, 6, 7)
	a, err := rt.Expand(simnet.NewRNG(42))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	b, _ := rt.Expand(simnet.NewRNG(42))
	if len(a) != len(rt.From) {
		t.Fatalf("%d flows, want %d", len(a), len(rt.From))
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst || a[i].Flow != b[i].Flow {
			t.Fatalf("same-seed expansion diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i].Src == a[i].Dst {
			t.Fatalf("random pattern produced self flow %v", a[i])
		}
	}
	c, _ := rt.Expand(simnet.NewRNG(43))
	diff := 0
	for i := range a {
		if a[i].Dst != c[i].Dst {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds drew identical destinations for all 8 senders")
	}
}

func TestRoleTrafficFlowIDsSequential(t *testing.T) {
	rt := baseClause()
	rt.Pattern = Broadcast
	rt.BaseFlow = 100
	rt.From = ids(0)
	rt.To = ids(1, 2, 3)
	flows, err := rt.Expand(simnet.NewRNG(1))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	for i, f := range flows {
		if f.Flow != packet.FlowID(100+i) {
			t.Fatalf("flow %d has ID %d, want %d", i, f.Flow, 100+i)
		}
	}
}

func TestRoleTrafficBurstsClonedPerFlow(t *testing.T) {
	rt := baseClause()
	rt.Pattern = Broadcast
	rt.From = ids(0)
	rt.To = ids(1, 2)
	rt.Arrival = &Bursts{Size: 2, Gap: simnet.Microsecond}
	flows, err := rt.Expand(simnet.NewRNG(1))
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(flows) != 2 {
		t.Fatalf("%d flows, want 2", len(flows))
	}
	if flows[0].Arrival == flows[1].Arrival {
		t.Fatal("stateful Bursts arrival shared between flows")
	}
}

func TestRoleTrafficRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*RoleTraffic)
	}{
		{"empty from", func(rt *RoleTraffic) { rt.From = nil }},
		{"empty to", func(rt *RoleTraffic) { rt.To = nil }},
		{"zero msgs", func(rt *RoleTraffic) { rt.Msgs = 0 }},
		{"nil size", func(rt *RoleTraffic) { rt.Size = nil }},
		{"nil arrival", func(rt *RoleTraffic) { rt.Arrival = nil }},
		{"bad pattern", func(rt *RoleTraffic) { rt.Pattern = numPatterns }},
		{"only self pairs", func(rt *RoleTraffic) { rt.Pattern = Broadcast; rt.From = ids(5); rt.To = ids(5) }},
	}
	for _, c := range cases {
		rt := baseClause()
		rt.From = ids(0, 1)
		rt.To = ids(2, 3)
		c.mut(&rt)
		if _, err := rt.Expand(simnet.NewRNG(1)); err == nil {
			t.Errorf("%s: Expand accepted invalid clause", c.name)
		}
	}
}

func TestParsePattern(t *testing.T) {
	for s, want := range map[string]Pattern{"": Pairwise, "pairwise": Pairwise, "broadcast": Broadcast, "random": Random} {
		got, err := ParsePattern(s)
		if err != nil || got != want {
			t.Fatalf("ParsePattern(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePattern("ring-of-fire"); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}
