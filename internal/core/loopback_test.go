package core

import (
	"sync"
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

// TestLoopbackIntegration runs the very same optimizer over real TCP
// sockets in wall-clock time: idle upcalls arrive from sender goroutines,
// deliveries from reader goroutines, and Submit races them all. This
// validates the engine's concurrency contract, which the single-threaded
// simulator can never exercise.
func TestLoopbackIntegration(t *testing.T) {
	nodes, cleanup, err := drivers.NewLoopbackCluster(2, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	rt := simnet.NewRealRuntime()
	var mu sync.Mutex
	var got []proto.Deliverable
	done := make(chan struct{}, 1)
	const total = 120

	mkEngine := func(n packet.NodeID, deliver proto.DeliverFunc) *Engine {
		b, err := strategy.New("aggregate")
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(n, Options{
			Bundle:     b,
			Runtime:    rt,
			Rails:      []drivers.Driver{nodes[n]},
			Deliver:    deliver,
			NagleDelay: simnet.FromWall(200 * time.Microsecond),
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	_ = mkEngine(1, func(d proto.Deliverable) {
		mu.Lock()
		got = append(got, d)
		if len(got) == total {
			select {
			case done <- struct{}{}:
			default:
			}
		}
		mu.Unlock()
	})
	sender := mkEngine(0, func(proto.Deliverable) {})

	// Several goroutines submit concurrently, one flow each, so ordering
	// within each flow is still well-defined.
	const flows = 4
	var wg sync.WaitGroup
	for f := 1; f <= flows; f++ {
		f := f
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < total/flows; s++ {
				p := &packet.Packet{
					Flow: packet.FlowID(f), Msg: 1, Seq: s, Src: 0, Dst: 1,
					Class: packet.ClassSmall, Payload: make([]byte, 64),
				}
				if err := sender.Submit(p); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	sender.Flush()

	select {
	case <-done:
	case <-time.After(20 * time.Second):
		mu.Lock()
		n := len(got)
		mu.Unlock()
		t.Fatalf("timed out with %d/%d delivered", n, total)
	}

	mu.Lock()
	defer mu.Unlock()
	next := map[packet.FlowID]int{}
	for _, d := range got {
		if d.Pkt.Seq != next[d.Pkt.Flow] {
			t.Fatalf("flow %d delivered seq %d, want %d", d.Pkt.Flow, d.Pkt.Seq, next[d.Pkt.Flow])
		}
		next[d.Pkt.Flow]++
	}
	for f := 1; f <= flows; f++ {
		if next[packet.FlowID(f)] != total/flows {
			t.Fatalf("flow %d incomplete: %d", f, next[packet.FlowID(f)])
		}
	}
}

// TestLoopbackRendezvous exercises the RTS/CTS/RData exchange over real
// sockets.
func TestLoopbackRendezvous(t *testing.T) {
	nodes, cleanup, err := drivers.NewLoopbackCluster(2, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	rt := simnet.NewRealRuntime()

	recv := make(chan *packet.Packet, 1)
	mk := func(n packet.NodeID, deliver proto.DeliverFunc) *Engine {
		b, _ := strategy.New("aggregate")
		eng, err := New(n, Options{
			Bundle: b, Runtime: rt,
			Rails:   []drivers.Driver{nodes[n]},
			Deliver: deliver,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	mk(1, func(d proto.Deliverable) { p := d.Pkt; recv <- &p })
	sender := mk(0, func(proto.Deliverable) {})

	payload := make([]byte, 256<<10) // above TCP profile threshold (64 KiB)
	for i := range payload {
		payload[i] = byte(i)
	}
	p := &packet.Packet{
		Flow: 1, Msg: 1, Seq: 0, Last: true, Src: 0, Dst: 1,
		Class: packet.ClassBulk, Payload: payload,
	}
	if err := sender.Submit(p); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recv:
		if got.Size() != len(payload) {
			t.Fatalf("received %d bytes", got.Size())
		}
		for i := 0; i < len(payload); i += 4096 {
			if got.Payload[i] != byte(i) {
				t.Fatalf("payload corrupted at %d", i)
			}
		}
	case <-time.After(20 * time.Second):
		t.Fatal("rendezvous payload never arrived")
	}
	if sender.Stats().CounterValue("core.rdv_started") != 1 {
		t.Fatal("rendezvous path not used")
	}
}
