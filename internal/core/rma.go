package core

import (
	"fmt"

	"newmad/internal/packet"
)

// Remote-memory-access surface of the engine. Put/get transfers are the
// third traffic class the paper names; middlewares (the DSM in particular)
// use these instead of packet flows when they want one-sided semantics.
// The RMA protocol engine is receive-side state, so it lives under pmu;
// the frames it builds are send-side work and join the destination
// shard's bulk queue.

// RegisterWindow exposes buf to remote put/get under window id.
func (e *Engine) RegisterWindow(id int32, buf []byte) {
	e.pmu.Lock()
	e.rma.RegisterWindow(id, buf)
	e.pmu.Unlock()
}

// Window returns a registered window's buffer.
func (e *Engine) Window(id int32) ([]byte, bool) {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	return e.rma.Window(id)
}

// Put writes data into (window, off) at dst. done, if non-nil, runs when
// the remote acknowledges. The frame is scheduled like all RMA traffic.
func (e *Engine) Put(dst packet.NodeID, window int32, off int64, data []byte, done func()) error {
	if dst == e.node {
		return fmt.Errorf("core: RMA put to self")
	}
	e.pmu.Lock()
	if e.closed.Load() {
		e.pmu.Unlock()
		return ErrClosed
	}
	// Completion callbacks fire inside the frame dispatcher, which runs
	// under pmu; wrap them so the user code runs after unlock and may
	// re-enter the engine.
	wrapped := done
	if done != nil {
		wrapped = func() { e.pendingFns = append(e.pendingFns, done) }
	}
	f := e.rma.Put(dst, window, off, data, wrapped)
	s := e.shardOf(dst)
	s.mu.Lock()
	s.bulkQ = append(s.bulkQ, f)
	s.nBulk.Add(1)
	s.mu.Unlock()
	e.set.Counter("core.rma_puts").Inc()
	e.pmu.Unlock()
	e.pumpAll()
	return nil
}

// Get reads n bytes from (window, off) at dst; done receives the data.
func (e *Engine) Get(dst packet.NodeID, window int32, off int64, n int, done func(data []byte)) error {
	if dst == e.node {
		return fmt.Errorf("core: RMA get from self")
	}
	if done == nil {
		return fmt.Errorf("core: RMA get requires a callback")
	}
	e.pmu.Lock()
	if e.closed.Load() {
		e.pmu.Unlock()
		return ErrClosed
	}
	wrapped := func(data []byte) {
		e.pendingFns = append(e.pendingFns, func() { done(data) })
	}
	f := e.rma.Get(dst, window, off, n, wrapped)
	s := e.shardOf(dst)
	s.mu.Lock()
	s.bulkQ = append(s.bulkQ, f)
	s.nBulk.Add(1)
	s.mu.Unlock()
	e.set.Counter("core.rma_gets").Inc()
	e.pmu.Unlock()
	e.pumpAll()
	return nil
}
