package core

import (
	"testing"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/nicsim"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/strategy"
)

// Failure injection. The fabrics the paper targets are loss-free
// interconnects, so the engine has no retransmission layer — but partial
// failures (a dead path to one peer) must never wedge traffic to other
// peers or crash the engine. These tests build the topology by hand to get
// at the fabric's partition controls.

func newFailRig(t *testing.T, nodes int) (*drivers.Cluster, *nicsim.Fabric, map[packet.NodeID]*Engine, map[packet.NodeID]*int) {
	t.Helper()
	prof := caps.MX
	prof.Channels = 1
	cl, err := drivers.NewCluster(nodes, prof)
	if err != nil {
		t.Fatal(err)
	}
	fab := cl.Fabrics["mx"]
	engines := map[packet.NodeID]*Engine{}
	counts := map[packet.NodeID]*int{}
	for n := 0; n < nodes; n++ {
		node := packet.NodeID(n)
		c := new(int)
		counts[node] = c
		b, _ := strategy.New("aggregate")
		eng, err := New(node, Options{
			Bundle:  b,
			Runtime: cl.Eng,
			Rails:   []drivers.Driver{cl.Driver(node, "mx")},
			Deliver: func(proto.Deliverable) { *c++ },
			Stats:   cl.Stats,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[node] = eng
	}
	return cl, fab, engines, counts
}

func TestPartitionedPeerDoesNotWedgeOthers(t *testing.T) {
	cl, fab, engines, counts := newFailRig(t, 3)
	fab.Partition(0, 1) // node 0 -> node 1 silently drops

	// Traffic to the dead peer and to the healthy peer, interleaved.
	for i := 0; i < 10; i++ {
		if err := engines[0].Submit(pkt(1, i, 0, 1, 64)); err != nil {
			t.Fatal(err)
		}
		if err := engines[0].Submit(pkt(2, i, 0, 2, 64)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Eng.Run() // must terminate (no retry loops) and not panic

	if *counts[2] != 10 {
		t.Fatalf("healthy peer received %d of 10", *counts[2])
	}
	if *counts[1] != 0 {
		t.Fatalf("partitioned peer received %d frames through a partition", *counts[1])
	}
	if fab.Dropped() == 0 {
		t.Fatal("partition dropped nothing")
	}
	// The engine is still usable after the failure.
	fab.Heal(0, 1)
	if err := engines[0].Submit(pkt(3, 0, 0, 1, 64)); err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run()
	if *counts[1] != 1 {
		t.Fatalf("healed path delivered %d", *counts[1])
	}
}

func TestPartitionDuringRendezvousLeavesOthersRunning(t *testing.T) {
	cl, fab, engines, counts := newFailRig(t, 3)
	// Let the RTS through, then cut the reverse path so the CTS is lost:
	// the rendezvous to node 1 stalls forever (documented: loss-free
	// fabrics have no timeouts) but traffic to node 2 must continue.
	fab.Partition(1, 0)

	big := pkt(1, 0, 0, 1, 64<<10)
	big.Class = packet.ClassBulk
	if err := engines[0].Submit(big); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := engines[0].Submit(pkt(2, i, 0, 2, 128)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Eng.Run()
	if *counts[2] != 5 {
		t.Fatalf("bystander traffic delivered %d of 5", *counts[2])
	}
	// The stalled rendezvous is observable, not fatal.
	if cl.Stats.CounterValue("core.rdv_started") != 1 {
		t.Fatal("rdv not started")
	}
	if cl.Stats.CounterValue("core.rdv_granted") != 0 {
		t.Fatal("rdv granted across a partition?")
	}
}

func TestCloseDuringTraffic(t *testing.T) {
	cl, _, engines, _ := newFailRig(t, 2)
	for i := 0; i < 20; i++ {
		if err := engines[0].Submit(pkt(1, i, 0, 1, 256)); err != nil {
			t.Fatal(err)
		}
	}
	// Close the receiver mid-flight: in-flight frames hit a closed engine
	// whose upcalls must be ignored without panic.
	steps := 0
	for cl.Eng.Step() {
		steps++
		if steps == 10 {
			engines[1].Close()
		}
	}
	// Sender keeps operating; submissions to the closed peer just vanish
	// at its closed receive path.
	if err := engines[0].Submit(pkt(1, 20, 0, 1, 256)); err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run()
}

func TestClosedEngineRejectsWork(t *testing.T) {
	cl, _, engines, _ := newFailRig(t, 2)
	engines[0].Close()
	if err := engines[0].Submit(pkt(1, 0, 0, 1, 8)); err == nil {
		t.Fatal("submit after close accepted")
	}
	if err := engines[0].Put(1, 1, 0, []byte("x"), nil); err == nil {
		t.Fatal("put after close accepted")
	}
	if err := engines[0].Get(1, 1, 0, 1, func([]byte) {}); err == nil {
		t.Fatal("get after close accepted")
	}
	engines[0].Flush() // no-op, must not panic
	engines[0].Close() // idempotent
	cl.Eng.Run()
}
