// Package core implements the paper's contribution: the dynamic
// optimizer-scheduler that sits between the packing API (collect layer) and
// the network drivers (transfer layer) — the middle box of Figure 1.
//
// One Engine runs per node. Its operation follows §3 of the paper:
//
//   - The application (through internal/mad) enqueues packets and
//     immediately returns to computing; Submit never blocks on the network.
//   - The scheduler is activated when a NIC send channel becomes idle, not
//     when packets are submitted. While channels are busy, a backlog of
//     waiting packets accumulates — the lookahead pool that widens the
//     optimizer's choices.
//   - If the NICs never stay busy, the engine either sends packets as they
//     arrive (NagleDelay = 0) or artificially delays them for a short time
//     "in a TCP Nagle's algorithm fashion" to increase the potential of
//     interesting aggregations.
//   - Strategy bundles (internal/strategy) decide what travels next; the
//     constraint rules of internal/packet bound every reordering; driver
//     capability records parameterize every decision.
//
// The engine is safe for concurrent use. There is no engine-wide lock:
// send-side state is partitioned into destination-hashed shards fed by
// lock-free submit inboxes (shard.go), each NIC channel's pump is
// serialized by its own chanPump, and the receive/protocol side runs under
// one protocol mutex (pmu). Under the discrete-event runtime all upcalls
// arrive on one goroutine and every lock is uncontended; the loopback
// driver delivers idle and receive upcalls from its own goroutines and
// exercises the full lock hierarchy (see shard.go for the ordering rules).
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/strategy"
	"newmad/internal/trace"
)

// Options configures an Engine.
type Options struct {
	// Bundle is the strategy in effect; resolve one from the registry or
	// assemble a custom combination.
	Bundle strategy.Bundle
	// Runtime supplies time and timers (the simulation engine or a
	// wall-clock runtime).
	Runtime simnet.Runtime
	// Rails are this node's drivers, one per attached network. They are
	// sorted by Name for deterministic rail indexing.
	Rails []drivers.Driver
	// Deliver receives reassembled in-order packets (the upcall into the
	// mad layer). It may call back into the engine (e.g. Submit a reply).
	Deliver proto.DeliverFunc

	// Shards partitions the send-side state (backlog index, reactive and
	// failover queues, Nagle delay, pump scratch) into this many
	// destination-hashed pump shards. 0 and 1 both mean one shard — the
	// fully serialized legacy layout, which deterministic simulations
	// rely on. Wall-clock deployments set this near GOMAXPROCS so flows
	// to different destinations never contend on a lock; flows sharing a
	// destination always land in one shard, preserving the optimizer's
	// cross-flow aggregation view.
	Shards int

	// Lookahead bounds how many eligible waiting packets a plan may
	// consider (the paper's "packet lookahead window"); 0 = unbounded.
	Lookahead int
	// NagleDelay artificially delays submission-triggered sends to let
	// aggregation opportunities accumulate; 0 sends immediately.
	NagleDelay simnet.Duration
	// NagleFlushCount flushes a pending Nagle delay once this many packets
	// wait (0 = DefaultNagleFlushCount).
	NagleFlushCount int
	// SearchBudget is passed to the plan builder as the rearrangement
	// evaluation bound; 0 = builder default.
	SearchBudget int
	// RdvThreshold, when positive, overrides the bundle's protocol policy
	// with a plain size threshold: packets larger than it travel by
	// rendezvous (express packets stay eager regardless). 0 defers to the
	// bundle policy. Runtime-tunable via SetRdvThreshold.
	RdvThreshold int
	// RdvMaxConcurrent caps concurrently granted inbound rendezvous
	// transfers (0 = unlimited).
	RdvMaxConcurrent int
	// RdvRetry, when positive, arms a timeout per rendezvous start: if no
	// CTS arrives within the window, the RTS is rebuilt and re-sent (the
	// receiver deduplicates by token, so a retry can never double-deliver).
	// 0 disables retry — correct on loss-free fabrics, where a missing CTS
	// means a partition, not a lost frame. Retries back off: each doubles
	// the previous window.
	RdvRetry simnet.Duration
	// RdvRetryMax bounds the retries per rendezvous (0 = DefaultRdvRetryMax).
	// After the last retry the transfer is abandoned to the application
	// layer: the engine stops re-sending but keeps the payload, so a very
	// late CTS still completes it.
	RdvRetryMax int
	// OnPeerDown, when set, observes rail-level peer failures: rail is the
	// engine's rail index, peer the unreachable node. Called outside the
	// engine locks; installed only on rails that can report failures
	// (drivers.PeerDownNotifier).
	OnPeerDown func(rail int, peer packet.NodeID)
	// Quotas seeds the per-tenant admission table (admission.go): token-
	// bucket rates and backlog quotas checked at Submit before any shard
	// state is touched. Empty/nil disables admission entirely — the
	// historical admit-everything behavior, bit-for-bit. Tenants may also
	// be added or retuned at runtime via SetTenantQuota.
	Quotas map[packet.TenantID]TenantQuota
	// RefuseUnreachable makes Submit refuse (ErrPeerUnreachable) packets
	// toward destinations no rail currently reaches, instead of queueing
	// them for a heal. Off by default: the failover contract — queue
	// through a partition, deliver after the heal — is what the chaos
	// suites pin down, and refusing is only right for callers that would
	// rather re-route at the application layer.
	RefuseUnreachable bool
	// Stats receives counters and histograms; nil allocates a private set.
	Stats *stats.Set
	// Trace, when non-nil, records the engine's decision timeline.
	Trace *trace.Recorder
}

// tuning is the runtime-tunable knob block, swapped atomically as one
// immutable value so the datapath reads a consistent tuning without a
// lock and the Set* methods never stall a pump.
type tuning struct {
	lookahead    int
	nagleDelay   simnet.Duration
	nagleFlush   int
	searchBudget int
	rdvThreshold int
}

// rdvTimer is one armed rendezvous retry: the cancel handle plus the
// generation that identifies this arming. On the wall-clock runtime a
// cancelled timer's callback may already be committed to run; the
// generation check in onRdvRetry makes such a stale fire inert instead of
// letting it cancel or duplicate a newer arming for the same token.
type rdvTimer struct {
	gen    uint64
	cancel simnet.CancelFunc
}

// Engine is the per-node optimizer-scheduler.
type Engine struct {
	node  packet.NodeID
	rt    simnet.Runtime
	set   *stats.Set
	rec   *trace.Recorder // nil = tracing off; trace.Recorder tolerates nil
	cfg   Options         // immutable after New; tunables live in tun
	rails []drivers.Driver

	bundle atomic.Pointer[strategy.Bundle]
	tun    atomic.Pointer[tuning]
	closed atomic.Bool

	// adm is the tenant admission table (admission.go); nil until a quota
	// is configured, and a nil table admits everything with zero overhead
	// beyond one atomic load per Submit.
	adm atomic.Pointer[admission]

	// submitSeq totally orders submissions across shards (the eligible
	// view's merge key). backlogSz/backlogPeak track the global waiting-
	// packet count — the Nagle flush decision and BacklogLen read it
	// without touching any shard. idleUps counts scheduler activations.
	submitSeq   atomic.Uint64
	backlogSz   atomic.Int64
	backlogPeak atomic.Int64
	idleUps     atomic.Uint64

	// repumpEpoch numbers SetRailWeights' targeted re-pump sweeps: each
	// sweep stamps the shards it claims (shard.repumpEpoch) and the epoch
	// rides the refused-kick protocol (chanPump.refusedEpoch/doneEpoch) so
	// every channel knows which flagged shards it still owes a visit.
	repumpEpoch atomic.Uint64

	// shards own the send side; pumps[rail][channel] serialize each NIC
	// channel's scan over them.
	shards []*shard
	pumps  [][]chanPump

	// Hot-path metric handles, resolved once at construction: the per-
	// frame path must not pay a map lookup (or a fmt.Sprintf for the
	// per-rail counter name) per event.
	cSubmitted      *stats.Counter
	cSubmittedBytes *stats.Counter
	cFramesPosted   *stats.Counter
	cPacketsSent    *stats.Counter
	cDelivered      *stats.Counter
	cDeliveredBytes *stats.Counter
	cIdleUpcalls    *stats.Counter
	cAggregates     *stats.Counter
	cAggregatedPkts *stats.Counter
	cReactive       *stats.Counter
	cThrottled      *stats.Counter
	cOverQuota      *stats.Counter
	railCtr         []*stats.Counter
	hPlanPackets    *stats.Histogram
	hPlanEvaluated  *stats.Histogram
	hPlanScore      *stats.Histogram
	hDeliveryLat    *stats.Histogram
	hControlLat     *stats.Histogram

	// spans is the latency-span family (spans.go); its cells carry their
	// own locks, so shards and the receive path observe into one shared
	// family without coordination.
	spans *stats.Spans

	// pmu serializes the receive/protocol side and the cross-shard
	// coordination state below it: protocol engines and their maps, the
	// rendezvous span stamps and retry timers, delivery batching, and the
	// per-rail failure counters. pmu may take shard locks; shard locks
	// never take pmu (see shard.go for the full ordering).
	pmu       sync.Mutex
	retuneObs func(RetuneEvent)
	railDowns []uint64 // peer-down events per rail (lossy-rail evidence)

	// rdvTimers tracks the retry timer armed per outstanding rendezvous;
	// rdvGen stamps each arming (see rdvTimer).
	rdvTimers map[uint64]rdvTimer
	rdvGen    uint64

	// Engine-private counters that belong to no shard: deliveries and
	// rendezvous retries happen on the protocol side.
	ctrDelivered  uint64
	ctrRdvRetries uint64

	// Latency spans (see spans.go). rdvStart stamps when each outgoing
	// rendezvous queued its first RTS (sender side, SpanRdvGrant);
	// rdvRecvStart stamps the first RTS arrival per inbound token
	// (receiver side, SpanRdvData). arrivalRail is the rail index of the
	// frame currently being dispatched — valid only under pmu inside
	// onFrame, read by the protocol-event hooks it calls.
	rdvStart     map[uint64]simnet.Time
	rdvRecvStart map[uint64]simnet.Time
	arrivalRail  int

	reasm *proto.Reassembler
	rdvS  *proto.RdvSender
	rdvR  *proto.RdvReceiver
	rma   *proto.RMA
	disp  *proto.Dispatcher

	// pendingDeliver/pendingFns collect upcalls produced while holding
	// pmu; they are invoked after unlock so user callbacks can re-enter
	// the engine (submit replies, start new RMA operations, ...).
	// deliverSpare is the double-buffer: a drained batch's backing array,
	// recycled so steady-state receives never regrow the pending slice.
	pendingDeliver []proto.Deliverable
	deliverSpare   []proto.Deliverable
	pendingFns     []func()
	deliver        proto.DeliverFunc
}

// New creates and wires a node engine.
func New(node packet.NodeID, opt Options) (*Engine, error) {
	if opt.Runtime == nil {
		return nil, fmt.Errorf("core: Options.Runtime is required")
	}
	if len(opt.Rails) == 0 {
		return nil, fmt.Errorf("core: at least one rail is required")
	}
	if opt.Deliver == nil {
		return nil, fmt.Errorf("core: Options.Deliver is required")
	}
	b := opt.Bundle
	if b.Builder == nil || b.Rail == nil || b.Classes == nil || b.Protocol == nil {
		return nil, fmt.Errorf("core: incomplete strategy bundle %q", b.Name)
	}
	if opt.Lookahead < 0 || opt.NagleDelay < 0 || opt.SearchBudget < 0 ||
		opt.RdvThreshold < 0 || opt.NagleFlushCount < 0 ||
		opt.RdvRetry < 0 || opt.RdvRetryMax < 0 || opt.Shards < 0 {
		return nil, fmt.Errorf("core: negative tuning option")
	}
	if opt.NagleFlushCount == 0 {
		opt.NagleFlushCount = DefaultNagleFlushCount
	}
	if opt.RdvRetryMax == 0 {
		opt.RdvRetryMax = DefaultRdvRetryMax
	}
	nshards := opt.Shards
	if nshards == 0 {
		nshards = 1
	}
	set := opt.Stats
	if set == nil {
		set = &stats.Set{}
	}
	rails := append([]drivers.Driver(nil), opt.Rails...)
	sort.Slice(rails, func(i, j int) bool { return rails[i].Name() < rails[j].Name() })
	for _, r := range rails {
		if r.Node() != node {
			return nil, fmt.Errorf("core: rail %s belongs to node %d, engine is node %d", r.Name(), r.Node(), node)
		}
	}

	e := &Engine{
		node:      node,
		rt:        opt.Runtime,
		set:       set,
		rec:       opt.Trace,
		cfg:       opt,
		rails:     rails,
		railDowns: make([]uint64, len(rails)),
		rdvTimers: make(map[uint64]rdvTimer),
		deliver:   opt.Deliver,

		spans:        stats.NewSpans(int(NumSpanKinds), int(packet.NumClasses), len(rails)),
		rdvStart:     make(map[uint64]simnet.Time),
		rdvRecvStart: make(map[uint64]simnet.Time),

		cSubmitted:      set.Counter("core.submitted"),
		cSubmittedBytes: set.Counter("core.submitted_bytes"),
		cFramesPosted:   set.Counter("core.frames_posted"),
		cPacketsSent:    set.Counter("core.packets_sent"),
		cDelivered:      set.Counter("core.delivered"),
		cDeliveredBytes: set.Counter("core.delivered_bytes"),
		cIdleUpcalls:    set.Counter("core.idle_upcalls"),
		cAggregates:     set.Counter("core.aggregates"),
		cAggregatedPkts: set.Counter("core.aggregated_packets"),
		cReactive:       set.Counter("core.reactive_frames"),
		cThrottled:      set.Counter("core.tenant_throttled"),
		cOverQuota:      set.Counter("core.tenant_over_quota"),
		hPlanPackets:    set.Histogram("core.plan_packets"),
		hPlanEvaluated:  set.Histogram("core.plan_evaluated"),
		hPlanScore:      set.Histogram("core.plan_score_ns"),
		hDeliveryLat:    set.Histogram("core.delivery_latency_ns"),
		hControlLat:     set.Histogram("core.control_latency_ns"),
	}
	if len(opt.Quotas) > 0 {
		max := packet.TenantID(0)
		for t, q := range opt.Quotas {
			if q.Rate < 0 || q.Burst < 0 || q.Backlog < 0 {
				return nil, fmt.Errorf("core: negative quota for tenant %d: %+v", t, q)
			}
			if t > max {
				max = t
			}
		}
		a := &admission{states: make([]*tenantState, int(max)+1)}
		for t, q := range opt.Quotas {
			ts := &tenantState{id: t}
			ts.quota.Store(compileQuota(q))
			a.states[t] = ts
		}
		e.adm.Store(a)
	}
	e.bundle.Store(&b)
	e.tun.Store(&tuning{
		lookahead:    opt.Lookahead,
		nagleDelay:   opt.NagleDelay,
		nagleFlush:   opt.NagleFlushCount,
		searchBudget: opt.SearchBudget,
		rdvThreshold: opt.RdvThreshold,
	})
	for _, r := range rails {
		e.railCtr = append(e.railCtr, set.Counter(fmt.Sprintf("core.rail.%s.frames", r.Caps().Name)))
	}
	e.shards = make([]*shard, nshards)
	for i := range e.shards {
		e.shards[i] = newShard(e, i)
	}
	e.pumps = make([][]chanPump, len(rails))
	for i, r := range rails {
		e.pumps[i] = make([]chanPump, r.NumChannels())
	}
	e.reasm = proto.NewReassembler(node, func(d proto.Deliverable) {
		e.pendingDeliver = append(e.pendingDeliver, d)
	})
	e.rdvS = proto.NewRdvSender(node, e.onRdvGrant)
	e.rdvR = proto.NewRdvReceiver(node, e.reasm, e.enqueueReactive, opt.RdvMaxConcurrent)
	e.rma = proto.NewRMA(node, e.enqueueReactive)
	e.disp = proto.NewDispatcher(node, e.reasm, e.rdvS, e.rdvR, e.rma)

	for i, r := range rails {
		i, r := i, r
		r.SetIdleHandler(func(ch int) { e.onIdle(i, ch) })
		r.SetRecvHandler(func(src packet.NodeID, f *packet.Frame) { e.onFrame(i, src, f) })
		// Rails that can hand back undeliverable frames and report peer
		// failures feed the engine's failover machinery; simulated fabrics
		// implement neither and keep the historical loss-free contract.
		if ln, ok := r.(drivers.FrameLossNotifier); ok {
			ln.SetFrameLossHandler(func(peer packet.NodeID, frames []*packet.Frame) {
				e.onFrameLoss(i, peer, frames)
			})
		}
		if dn, ok := r.(drivers.PeerDownNotifier); ok {
			dn.SetPeerDownHandler(func(peer packet.NodeID) { e.onPeerDown(i, peer) })
		}
	}
	return e, nil
}

// DefaultRdvRetryMax bounds rendezvous RTS retries when Options.RdvRetry
// is enabled without an explicit cap.
const DefaultRdvRetryMax = 6

// onFrameLoss receives frames a failing rail reclaimed from its queue.
// They join the owning shard's failover queue (all reclaimed frames share
// the peer, hence the shard) and re-travel on whatever rail still reaches
// their destination; the receiver's sequence-number dedupe turns the
// possible duplicate (the mid-write ambiguous frame) back into
// exactly-once delivery.
func (e *Engine) onFrameLoss(ri int, peer packet.NodeID, frames []*packet.Frame) {
	if e.closed.Load() {
		return
	}
	s := e.shardOf(peer)
	s.mu.Lock()
	s.failQ = append(s.failQ, frames...)
	s.nFail.Add(int64(len(frames)))
	s.ctr.framesReclaimed += uint64(len(frames))
	s.mu.Unlock()
	e.set.Counter("core.frames_reclaimed").Add(uint64(len(frames)))
	e.rec.Record(trace.Event{
		At: e.rt.Now(), Kind: trace.KindFault, Node: e.node,
		A: ri, B: len(frames), Note: "reclaim:rail-down",
	})
	e.pumpAll()
}

// onPeerDown counts a rail-level peer failure and forwards it to the
// observer. The count per rail is the controller's lossy-rail evidence.
func (e *Engine) onPeerDown(ri int, peer packet.NodeID) {
	if e.closed.Load() {
		return
	}
	e.pmu.Lock()
	e.railDowns[ri]++
	e.pmu.Unlock()
	e.set.Counter("core.rail_peer_downs").Inc()
	e.rec.Record(trace.Event{
		At: e.rt.Now(), Kind: trace.KindFault, Node: e.node,
		A: ri, B: int(peer), Note: "peer-down",
	})
	if obs := e.cfg.OnPeerDown; obs != nil {
		obs(ri, peer)
	}
}

// Node returns the engine's node id.
func (e *Engine) Node() packet.NodeID { return e.node }

// Stats returns the engine's metric set.
func (e *Engine) Stats() *stats.Set { return e.set }

// Rails returns the engine's drivers in rail-index order.
func (e *Engine) Rails() []drivers.Driver { return append([]drivers.Driver(nil), e.rails...) }

// SetBundle switches the strategy at runtime — the paper's dynamic change
// of scheduling policy as application needs evolve.
func (e *Engine) SetBundle(b strategy.Bundle) error {
	if b.Builder == nil || b.Rail == nil || b.Classes == nil || b.Protocol == nil {
		return fmt.Errorf("core: incomplete strategy bundle %q", b.Name)
	}
	old := e.bundle.Swap(&b)
	e.set.Counter("core.policy_switches").Inc()
	e.rec.Record(trace.Event{At: e.rt.Now(), Kind: trace.KindPolicy, Node: e.node, Note: b.Name})
	e.pumpAll()
	if old.Name != b.Name {
		if obs := e.retuneObserver(); obs != nil {
			obs(RetuneEvent{At: e.rt.Now(), Knob: "bundle", Note: "bundle=" + b.Name})
		}
	}
	return nil
}

// Bundle returns the strategy currently in effect.
func (e *Engine) Bundle() strategy.Bundle { return *e.bundle.Load() }

// updateTuning swaps the tuning block through mut, returning whether mut
// reported a change. mut runs on a private copy and may run more than once
// under contention.
func (e *Engine) updateTuning(mut func(*tuning) bool) bool {
	for {
		old := e.tun.Load()
		nt := *old
		if !mut(&nt) {
			return false
		}
		if e.tun.CompareAndSwap(old, &nt) {
			return true
		}
	}
}

// SetLookahead adjusts the lookahead window at runtime (E2 sweeps this; the
// adaptive controller drives it from observed backlog depth). Negative
// values clamp to 0 (unbounded).
func (e *Engine) SetLookahead(n int) {
	if n < 0 {
		n = 0
	}
	changed := e.updateTuning(func(t *tuning) bool {
		if t.lookahead == n {
			return false
		}
		t.lookahead = n
		return true
	})
	if changed {
		e.notifyRetune(RetuneEvent{At: e.rt.Now(), Knob: "lookahead", Note: fmt.Sprintf("lookahead=%d", n)})
	}
}

// DefaultNagleFlushCount is the flush count in effect when none is
// configured: a pending artificial delay is cut short once this many
// packets wait.
const DefaultNagleFlushCount = 4

// SetNagle adjusts the artificial delay at runtime (E3 sweeps this; the
// adaptive controller toggles it between traffic regimes). A flushCount of
// 0 restores DefaultNagleFlushCount — symmetric with construction, so a
// tuning's operating point never depends on which tuning ran before it.
// Setting a zero delay releases any armed delay immediately, so a
// latency-sensitive phase never waits out a timer armed under the previous
// tuning.
func (e *Engine) SetNagle(d simnet.Duration, flushCount int) {
	if d < 0 {
		d = 0
	}
	if flushCount <= 0 {
		flushCount = DefaultNagleFlushCount
	}
	changed := e.updateTuning(func(t *tuning) bool {
		if t.nagleDelay == d && t.nagleFlush == flushCount {
			return false
		}
		t.nagleDelay = d
		t.nagleFlush = flushCount
		return true
	})
	if d == 0 {
		released := false
		for _, s := range e.shards {
			s.mu.Lock()
			if s.nagleArmed {
				s.ctr.nagleEarly++
				s.disarmNagleLocked()
				released = true
			}
			s.mu.Unlock()
		}
		if released {
			e.pumpAll()
		}
	}
	if changed {
		e.notifyRetune(RetuneEvent{
			At: e.rt.Now(), Knob: "nagle",
			Note: fmt.Sprintf("nagle=%v flush=%d", d, flushCount),
		})
	}
}

// SetSearchBudget adjusts the plan builder's rearrangement evaluation bound
// at runtime (E6 sweeps this; the adaptive controller raises it when deep
// backlogs make search worthwhile). Negative values clamp to 0 (builder
// default).
func (e *Engine) SetSearchBudget(n int) {
	if n < 0 {
		n = 0
	}
	changed := e.updateTuning(func(t *tuning) bool {
		if t.searchBudget == n {
			return false
		}
		t.searchBudget = n
		return true
	})
	if changed {
		e.notifyRetune(RetuneEvent{At: e.rt.Now(), Knob: "budget", Note: fmt.Sprintf("budget=%d", n)})
	}
}

// SetRdvThreshold adjusts the eager/rendezvous switchover at runtime: a
// positive value overrides the bundle's protocol policy with a plain size
// threshold, 0 restores the bundle policy. Negative values clamp to 0.
func (e *Engine) SetRdvThreshold(n int) {
	if n < 0 {
		n = 0
	}
	changed := e.updateTuning(func(t *tuning) bool {
		if t.rdvThreshold == n {
			return false
		}
		t.rdvThreshold = n
		return true
	})
	if changed {
		e.notifyRetune(RetuneEvent{At: e.rt.Now(), Knob: "rdv-threshold", Note: fmt.Sprintf("rdv-threshold=%d", n)})
	}
}

// SetRailWeights adjusts the per-rail scheduling weights at runtime, when
// the bundle's rail policy supports it (strategy.RailWeightSetter — e.g.
// the capability-aware ScheduledRail). Reports whether the weights were
// applied; a bundle with a weight-free rail policy ignores the knob.
// SetBundle replaces the rail policy, so weights are re-applied by whoever
// switches bundles (the controller does this through its tunings).
func (e *Engine) SetRailWeights(w []float64) bool {
	rs, ok := e.bundle.Load().Rail.(strategy.RailWeightSetter)
	if !ok {
		return false
	}
	rs.SetWeights(w)
	e.set.Counter("core.rail_retunes").Inc()
	e.notifyRetune(RetuneEvent{At: e.rt.Now(), Knob: "rail-weights", Note: fmt.Sprintf("rail-weights=%v", w)})
	// Incremental re-pump: only the shards whose scans recorded weight-bound
	// refusals are revisited — a weight delta costs O(affected queues), not
	// a pumpAll sweep of every queue (DESIGN.md §3.2).
	e.pumpRefused()
	return true
}

// RailWeights returns the per-rail scheduling weights currently in effect,
// when the bundle's rail policy is weight-tunable; ok is false otherwise.
// The controller's rail-demotion logic reads this to compose its zeroes
// with whatever operating point the tuning established.
func (e *Engine) RailWeights() (w []float64, ok bool) {
	rs, tunable := e.bundle.Load().Rail.(strategy.RailWeightSetter)
	if !tunable {
		return nil, false
	}
	return rs.Weights(), true
}

// Submit enqueues one packet from the collect layer and returns
// immediately. Packets of one flow must be submitted with consecutive Seq
// values starting at zero; the mad layer guarantees this. Eager packets
// travel through the destination shard's lock-free inbox: Submit never
// contends with a pump in progress, and concurrent submitters to different
// destinations never touch a shared lock.
//
// Refusals are typed: ErrClosed after Close, ErrPeerUnreachable when
// Options.RefuseUnreachable is set and no rail reaches the destination,
// and the admission-control refusals ErrThrottled/ErrQuotaExceeded (with
// retry-after, see ThrottleError) when the packet's tenant is over quota.
// Admission runs before the packet touches any shard state — a shed
// packet never pushes onto an MPSC inbox or charges a backlog counter
// (the shed-before-queue rule, DESIGN.md §10).
func (e *Engine) Submit(p *packet.Packet) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Src != e.node {
		return fmt.Errorf("core: packet src %d submitted on node %d", p.Src, e.node)
	}
	if e.closed.Load() {
		return ErrClosed
	}
	now := e.rt.Now()
	b := e.bundle.Load()
	// Protocol decision: large cheap packets travel by rendezvous. The
	// capability record consulted is the first rail this packet may use
	// (deterministic; multi-rail nodes with diverging thresholds can pin
	// protocols per class through the rail policy instead). A runtime
	// threshold override (SetRdvThreshold) takes precedence over the bundle
	// policy so the controller can move the switchover without swapping
	// bundles.
	rdv := e.useRendezvous(b, p)
	if e.cfg.RefuseUnreachable && !e.anyRailReaches(p.Dst) {
		return fmt.Errorf("%w: node %d", ErrPeerUnreachable, p.Dst)
	}
	// Admission last among the refusal checks: an admitted eager packet
	// carries a backlog charge that is only released when a plan takes it,
	// so nothing may refuse after admit has charged.
	if err := e.admit(p, now, !rdv); err != nil {
		return err
	}
	p.SubmitSeq = e.submitSeq.Add(1)
	p.Enqueued = now
	if p.Enqueued == 0 {
		// Zero marks "never submitted" in latency accounting; clamp the
		// simulation epoch to 1 ns so t=0 submissions still count.
		p.Enqueued = 1
	}
	b.Classes.Observe(p)
	e.cSubmitted.Inc()
	e.cSubmittedBytes.Add(uint64(p.Size()))
	e.rec.Record(trace.Event{
		At: p.Enqueued, Kind: trace.KindSubmit, Node: e.node,
		Flow: p.Flow, Seq: p.Seq, A: p.Size(), B: int(p.Class),
	})

	if rdv {
		e.pmu.Lock()
		if e.closed.Load() {
			e.pmu.Unlock()
			return ErrClosed
		}
		rts := e.rdvS.Start(p)
		e.rdvStart[rts.Ctrl.Token] = p.Enqueued
		s := e.shardOf(p.Dst)
		s.mu.Lock()
		s.ctrlQ = append(s.ctrlQ, rts)
		s.nCtrl.Add(1)
		s.ctr.submitted++
		s.ctr.submittedBytes += uint64(p.Size())
		if p.Class == packet.ClassControl {
			s.ctr.submittedCtrl++
		}
		s.ctr.rdvBytes += uint64(p.Size())
		s.mu.Unlock()
		e.armRdvRetryLocked(rts.Ctrl.Token, 0)
		e.pmu.Unlock()
		e.set.Counter("core.rdv_started").Inc()
		e.pumpAll()
		return nil
	}
	s := e.shardOf(p.Dst)
	// The count goes up before the push: the drain election's emptiness
	// check must never read zero while a packet is in flight.
	s.nInbox.Add(1)
	s.inbox.push(p)
	s.submitKick()
	return nil
}

// useRendezvous applies the runtime threshold override, falling back to
// the bundle's protocol policy when no override is set.
func (e *Engine) useRendezvous(b *strategy.Bundle, p *packet.Packet) bool {
	if thr := e.tun.Load().rdvThreshold; thr > 0 {
		return !packet.EagerOnly(p) && p.Size() > thr
	}
	return b.Protocol.UseRendezvous(p, e.protoCaps(b, p))
}

// protoCaps returns the capability record governing protocol selection for
// p: the first rail the packet is eligible to use.
func (e *Engine) protoCaps(b *strategy.Bundle, p *packet.Packet) caps.Caps {
	for i, r := range e.rails {
		if b.Rail.Eligible(p, e.railInfo(i)) {
			return r.Caps()
		}
	}
	return e.rails[0].Caps()
}

// Flush forces any Nagle-delayed packets out now. On a closed engine it
// returns immediately: Close owns the shard teardown, and a Flush racing
// it must neither re-pump rails whose handlers are being detached nor
// wait on anything (pinned by TestFlushCloseRace).
func (e *Engine) Flush() {
	if e.closed.Load() {
		return
	}
	for _, s := range e.shards {
		s.mu.Lock()
		if s.nagleArmed {
			s.ctr.nagleEarly++
			s.disarmNagleLocked()
		}
		s.mu.Unlock()
	}
	e.pumpAll()
}

// armRdvRetryLocked schedules the attempt-th RTS retry for token, with
// exponential backoff. No-op when retry is disabled or the budget is
// spent. Each arming carries a fresh generation: a fire whose generation
// no longer matches the armed timer (it was cancelled or superseded while
// the callback was in flight — the same wall-clock race nagleGen guards)
// is discarded by onRdvRetry instead of acting on the newer arming's
// state. Caller holds pmu.
func (e *Engine) armRdvRetryLocked(token uint64, attempt int) {
	if e.cfg.RdvRetry <= 0 || attempt >= e.cfg.RdvRetryMax {
		return
	}
	e.rdvGen++
	gen := e.rdvGen
	delay := e.cfg.RdvRetry << uint(attempt)
	// The callback cannot observe the map before this function returns:
	// onRdvRetry takes pmu, which the caller holds.
	e.rdvTimers[token] = rdvTimer{
		gen:    gen,
		cancel: e.rt.Schedule(delay, "core.rdv-retry", func() { e.onRdvRetry(token, attempt, gen) }),
	}
}

// onRdvRetry fires when a rendezvous has waited out its CTS window: if the
// transfer is still ungranted, the RTS is rebuilt and re-queued (the
// receiver's token dedupe makes the duplicate harmless) and the next
// backoff is armed.
func (e *Engine) onRdvRetry(token uint64, attempt int, gen uint64) {
	e.pmu.Lock()
	if e.closed.Load() {
		e.pmu.Unlock()
		return
	}
	t, ok := e.rdvTimers[token]
	if !ok || t.gen != gen {
		// Stale fire: this arming was cancelled (grant or Close) or
		// superseded while the callback was already in flight. Without the
		// generation check a stale fire would consume the *newer* arming's
		// map entry and fork a duplicate retry chain.
		e.pmu.Unlock()
		return
	}
	delete(e.rdvTimers, token)
	rts := e.rdvS.RetryRTS(token)
	if rts == nil {
		// Granted while the timer was in flight: nothing to do.
		e.pmu.Unlock()
		return
	}
	s := e.shardOf(rts.Dst)
	s.mu.Lock()
	s.ctrlQ = append(s.ctrlQ, rts)
	s.nCtrl.Add(1)
	s.mu.Unlock()
	e.ctrRdvRetries++
	e.set.Counter("core.rdv_retries").Inc()
	e.rec.Record(trace.Event{
		At: e.rt.Now(), Kind: trace.KindFault, Node: e.node,
		Flow: rts.Ctrl.Flow, Seq: rts.Ctrl.Seq, A: attempt + 1,
		Note: "rdv-retry",
	})
	e.armRdvRetryLocked(token, attempt+1)
	e.pmu.Unlock()
	e.pumpAll()
}

// cancelRdvRetryLocked disarms the retry timer for a granted token. Caller
// holds pmu. Deleting the map entry is what makes a lost-race fire inert:
// the fire's generation can no longer match anything.
func (e *Engine) cancelRdvRetryLocked(token uint64) {
	if t, ok := e.rdvTimers[token]; ok {
		delete(e.rdvTimers, token)
		t.cancel()
	}
}

// Close detaches the engine from its rails and cancels every outstanding
// timer — the per-shard Nagle delays and all rendezvous retries — under
// their owning locks. On the wall-clock runtime a cancelled timer's
// callback may already be running; the closed flag and the generation
// checks make such late fires inert (pinned by TestCloseCancelsAllTimers).
func (e *Engine) Close() {
	e.pmu.Lock()
	e.closed.Store(true)
	for tok, t := range e.rdvTimers {
		delete(e.rdvTimers, tok)
		t.cancel()
	}
	e.pmu.Unlock()
	for _, s := range e.shards {
		s.mu.Lock()
		if s.nagleArmed {
			s.disarmNagleLocked()
		}
		s.drainDiscardLocked()
		s.mu.Unlock()
	}
	for _, r := range e.rails {
		r.SetIdleHandler(nil)
		r.SetRecvHandler(nil)
	}
}

// BacklogLen returns the number of waiting packets (diagnostic).
func (e *Engine) BacklogLen() int { return int(e.backlogSz.Load()) }

// QueuedFrames returns pending (control, bulk) frame counts (diagnostic).
func (e *Engine) QueuedFrames() (ctrl, bulk int) {
	for _, s := range e.shards {
		s.mu.Lock()
		ctrl += len(s.ctrlQ)
		bulk += len(s.bulkQ)
		s.mu.Unlock()
	}
	return ctrl, bulk
}
