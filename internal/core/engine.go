// Package core implements the paper's contribution: the dynamic
// optimizer-scheduler that sits between the packing API (collect layer) and
// the network drivers (transfer layer) — the middle box of Figure 1.
//
// One Engine runs per node. Its operation follows §3 of the paper:
//
//   - The application (through internal/mad) enqueues packets and
//     immediately returns to computing; Submit never blocks on the network.
//   - The scheduler is activated when a NIC send channel becomes idle, not
//     when packets are submitted. While channels are busy, a backlog of
//     waiting packets accumulates — the lookahead pool that widens the
//     optimizer's choices.
//   - If the NICs never stay busy, the engine either sends packets as they
//     arrive (NagleDelay = 0) or artificially delays them for a short time
//     "in a TCP Nagle's algorithm fashion" to increase the potential of
//     interesting aggregations.
//   - Strategy bundles (internal/strategy) decide what travels next; the
//     constraint rules of internal/packet bound every reordering; driver
//     capability records parameterize every decision.
//
// The engine is safe for concurrent use: under the discrete-event runtime
// all upcalls arrive on one goroutine, while the loopback driver delivers
// idle and receive upcalls from its own goroutines.
package core

import (
	"fmt"
	"sort"
	"sync"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/strategy"
	"newmad/internal/trace"
)

// Options configures an Engine.
type Options struct {
	// Bundle is the strategy in effect; resolve one from the registry or
	// assemble a custom combination.
	Bundle strategy.Bundle
	// Runtime supplies time and timers (the simulation engine or a
	// wall-clock runtime).
	Runtime simnet.Runtime
	// Rails are this node's drivers, one per attached network. They are
	// sorted by Name for deterministic rail indexing.
	Rails []drivers.Driver
	// Deliver receives reassembled in-order packets (the upcall into the
	// mad layer). It may call back into the engine (e.g. Submit a reply).
	Deliver proto.DeliverFunc

	// Lookahead bounds how many eligible waiting packets a plan may
	// consider (the paper's "packet lookahead window"); 0 = unbounded.
	Lookahead int
	// NagleDelay artificially delays submission-triggered sends to let
	// aggregation opportunities accumulate; 0 sends immediately.
	NagleDelay simnet.Duration
	// NagleFlushCount flushes a pending Nagle delay once this many packets
	// wait (0 = DefaultNagleFlushCount).
	NagleFlushCount int
	// SearchBudget is passed to the plan builder as the rearrangement
	// evaluation bound; 0 = builder default.
	SearchBudget int
	// RdvThreshold, when positive, overrides the bundle's protocol policy
	// with a plain size threshold: packets larger than it travel by
	// rendezvous (express packets stay eager regardless). 0 defers to the
	// bundle policy. Runtime-tunable via SetRdvThreshold.
	RdvThreshold int
	// RdvMaxConcurrent caps concurrently granted inbound rendezvous
	// transfers (0 = unlimited).
	RdvMaxConcurrent int
	// RdvRetry, when positive, arms a timeout per rendezvous start: if no
	// CTS arrives within the window, the RTS is rebuilt and re-sent (the
	// receiver deduplicates by token, so a retry can never double-deliver).
	// 0 disables retry — correct on loss-free fabrics, where a missing CTS
	// means a partition, not a lost frame. Retries back off: each doubles
	// the previous window.
	RdvRetry simnet.Duration
	// RdvRetryMax bounds the retries per rendezvous (0 = DefaultRdvRetryMax).
	// After the last retry the transfer is abandoned to the application
	// layer: the engine stops re-sending but keeps the payload, so a very
	// late CTS still completes it.
	RdvRetryMax int
	// OnPeerDown, when set, observes rail-level peer failures: rail is the
	// engine's rail index, peer the unreachable node. Called outside the
	// engine lock; installed only on rails that can report failures
	// (drivers.PeerDownNotifier).
	OnPeerDown func(rail int, peer packet.NodeID)
	// Stats receives counters and histograms; nil allocates a private set.
	Stats *stats.Set
	// Trace, when non-nil, records the engine's decision timeline.
	Trace *trace.Recorder
}

// Engine is the per-node optimizer-scheduler.
type Engine struct {
	node packet.NodeID
	rt   simnet.Runtime
	set  *stats.Set
	rec  *trace.Recorder // nil = tracing off; trace.Recorder tolerates nil

	mu     sync.Mutex
	bundle strategy.Bundle
	cfg    Options
	rails  []drivers.Driver

	// ctr/railFrames are the engine-private observation counters behind
	// Metrics(); retuneObs is notified on every runtime tuning change.
	ctr        counters
	railFrames []uint64
	retuneObs  func(RetuneEvent)

	submitSeq uint64
	backlog   backlogIndex    // waiting packets, indexed by (dst, class)
	ctrlQ     []*packet.Frame // reactive control frames (RTS/CTS/Ack)
	bulkQ     []*packet.Frame // granted rendezvous data, RMA frames
	favorBulk bool            // round-robin fairness between backlog and bulkQ

	// Pump scratch, reused across pumps so the steady-state eager path
	// allocates nothing: the eligible view and its merge cursors, the
	// per-queue removal subsequences, the strategy context handed to plan
	// builders (builders must not retain it past Build), and the probe
	// packets the class/rail policies are consulted with.
	viewScratch  []*packet.Packet
	curScratch   []backlogCursor
	takenScratch []*packet.Packet
	planCtx      strategy.Context
	ctrlProbe    packet.Packet
	bulkProbe    packet.Packet

	// Hot-path metric handles, resolved once at construction: the per-
	// frame path must not pay a map lookup (or a fmt.Sprintf for the
	// per-rail counter name) per event.
	cSubmitted      *stats.Counter
	cSubmittedBytes *stats.Counter
	cFramesPosted   *stats.Counter
	cPacketsSent    *stats.Counter
	cDelivered      *stats.Counter
	cDeliveredBytes *stats.Counter
	cIdleUpcalls    *stats.Counter
	cAggregates     *stats.Counter
	cAggregatedPkts *stats.Counter
	cReactive       *stats.Counter
	railCtr         []*stats.Counter
	hPlanPackets    *stats.Histogram
	hPlanEvaluated  *stats.Histogram
	hPlanScore      *stats.Histogram
	hDeliveryLat    *stats.Histogram
	hControlLat     *stats.Histogram

	// failQ holds frames whose rail failed under them — reclaimed from a
	// dead connection by the driver, or refused with ErrPeerDown at post
	// time. They are re-posted on any rail that still reaches their
	// destination, bypassing the rail policy (whose preferred rail is the
	// one that just died); with no such rail they wait for a heal. See
	// pumpFailoverLocked.
	failQ []*packet.Frame
	// railDowns counts peer-down events per rail — the controller's
	// evidence for demoting a lossy rail.
	railDowns []uint64
	// rdvTimers tracks the retry timer armed per outstanding rendezvous.
	rdvTimers map[uint64]simnet.CancelFunc

	// Latency spans (see spans.go). rdvStart stamps when each outgoing
	// rendezvous queued its first RTS (sender side, SpanRdvGrant);
	// rdvRecvStart stamps the first RTS arrival per inbound token
	// (receiver side, SpanRdvData). arrivalRail is the rail index of the
	// frame currently being dispatched — valid only under e.mu inside
	// onFrame, read by the protocol-event hooks it calls.
	spans        *stats.Spans
	rdvStart     map[uint64]simnet.Time
	rdvRecvStart map[uint64]simnet.Time
	arrivalRail  int

	nagleArmed  bool
	nagleCancel simnet.CancelFunc
	// nagleGen identifies the current arming: it advances on every arm and
	// disarm so a timer fire that lost the race against a concurrent disarm
	// (possible on the wall-clock runtime, where cancellation of an
	// already-running timer callback is a no-op) recognizes itself as stale
	// instead of clobbering a newer armed delay.
	nagleGen uint64

	reasm *proto.Reassembler
	rdvS  *proto.RdvSender
	rdvR  *proto.RdvReceiver
	rma   *proto.RMA
	disp  *proto.Dispatcher

	// pendingDeliver/pendingFns collect upcalls produced while holding mu;
	// they are invoked after unlock so user callbacks can re-enter the
	// engine (submit replies, start new RMA operations, ...).
	// deliverSpare is the double-buffer: a drained batch's backing array,
	// recycled so steady-state receives never regrow the pending slice.
	pendingDeliver []proto.Deliverable
	deliverSpare   []proto.Deliverable
	pendingFns     []func()
	deliver        proto.DeliverFunc

	closed bool
}

// New creates and wires a node engine.
func New(node packet.NodeID, opt Options) (*Engine, error) {
	if opt.Runtime == nil {
		return nil, fmt.Errorf("core: Options.Runtime is required")
	}
	if len(opt.Rails) == 0 {
		return nil, fmt.Errorf("core: at least one rail is required")
	}
	if opt.Deliver == nil {
		return nil, fmt.Errorf("core: Options.Deliver is required")
	}
	b := opt.Bundle
	if b.Builder == nil || b.Rail == nil || b.Classes == nil || b.Protocol == nil {
		return nil, fmt.Errorf("core: incomplete strategy bundle %q", b.Name)
	}
	if opt.Lookahead < 0 || opt.NagleDelay < 0 || opt.SearchBudget < 0 ||
		opt.RdvThreshold < 0 || opt.NagleFlushCount < 0 ||
		opt.RdvRetry < 0 || opt.RdvRetryMax < 0 {
		return nil, fmt.Errorf("core: negative tuning option")
	}
	if opt.NagleFlushCount == 0 {
		opt.NagleFlushCount = DefaultNagleFlushCount
	}
	if opt.RdvRetryMax == 0 {
		opt.RdvRetryMax = DefaultRdvRetryMax
	}
	set := opt.Stats
	if set == nil {
		set = &stats.Set{}
	}
	rails := append([]drivers.Driver(nil), opt.Rails...)
	sort.Slice(rails, func(i, j int) bool { return rails[i].Name() < rails[j].Name() })
	for _, r := range rails {
		if r.Node() != node {
			return nil, fmt.Errorf("core: rail %s belongs to node %d, engine is node %d", r.Name(), r.Node(), node)
		}
	}

	e := &Engine{
		node:       node,
		rt:         opt.Runtime,
		set:        set,
		rec:        opt.Trace,
		bundle:     b,
		cfg:        opt,
		rails:      rails,
		railFrames: make([]uint64, len(rails)),
		railDowns:  make([]uint64, len(rails)),
		rdvTimers:  make(map[uint64]simnet.CancelFunc),
		deliver:    opt.Deliver,

		spans:        stats.NewSpans(int(NumSpanKinds), int(packet.NumClasses), len(rails)),
		rdvStart:     make(map[uint64]simnet.Time),
		rdvRecvStart: make(map[uint64]simnet.Time),

		cSubmitted:      set.Counter("core.submitted"),
		cSubmittedBytes: set.Counter("core.submitted_bytes"),
		cFramesPosted:   set.Counter("core.frames_posted"),
		cPacketsSent:    set.Counter("core.packets_sent"),
		cDelivered:      set.Counter("core.delivered"),
		cDeliveredBytes: set.Counter("core.delivered_bytes"),
		cIdleUpcalls:    set.Counter("core.idle_upcalls"),
		cAggregates:     set.Counter("core.aggregates"),
		cAggregatedPkts: set.Counter("core.aggregated_packets"),
		cReactive:       set.Counter("core.reactive_frames"),
		hPlanPackets:    set.Histogram("core.plan_packets"),
		hPlanEvaluated:  set.Histogram("core.plan_evaluated"),
		hPlanScore:      set.Histogram("core.plan_score_ns"),
		hDeliveryLat:    set.Histogram("core.delivery_latency_ns"),
		hControlLat:     set.Histogram("core.control_latency_ns"),
	}
	e.ctrlProbe = packet.Packet{Class: packet.ClassControl}
	for _, r := range rails {
		e.railCtr = append(e.railCtr, set.Counter(fmt.Sprintf("core.rail.%s.frames", r.Caps().Name)))
	}
	e.reasm = proto.NewReassembler(node, func(d proto.Deliverable) {
		e.pendingDeliver = append(e.pendingDeliver, d)
	})
	e.rdvS = proto.NewRdvSender(node, e.onRdvGrant)
	e.rdvR = proto.NewRdvReceiver(node, e.reasm, e.enqueueReactive, opt.RdvMaxConcurrent)
	e.rma = proto.NewRMA(node, e.enqueueReactive)
	e.disp = proto.NewDispatcher(node, e.reasm, e.rdvS, e.rdvR, e.rma)

	for i, r := range rails {
		i, r := i, r
		r.SetIdleHandler(func(ch int) { e.onIdle(i, ch) })
		r.SetRecvHandler(func(src packet.NodeID, f *packet.Frame) { e.onFrame(i, src, f) })
		// Rails that can hand back undeliverable frames and report peer
		// failures feed the engine's failover machinery; simulated fabrics
		// implement neither and keep the historical loss-free contract.
		if ln, ok := r.(drivers.FrameLossNotifier); ok {
			ln.SetFrameLossHandler(func(peer packet.NodeID, frames []*packet.Frame) {
				e.onFrameLoss(i, peer, frames)
			})
		}
		if dn, ok := r.(drivers.PeerDownNotifier); ok {
			dn.SetPeerDownHandler(func(peer packet.NodeID) { e.onPeerDown(i, peer) })
		}
	}
	return e, nil
}

// DefaultRdvRetryMax bounds rendezvous RTS retries when Options.RdvRetry
// is enabled without an explicit cap.
const DefaultRdvRetryMax = 6

// onFrameLoss receives frames a failing rail reclaimed from its queue.
// They join the failover queue and re-travel on whatever rail still
// reaches their destination; the receiver's sequence-number dedupe turns
// the possible duplicate (the mid-write ambiguous frame) back into
// exactly-once delivery.
func (e *Engine) onFrameLoss(ri int, peer packet.NodeID, frames []*packet.Frame) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.failQ = append(e.failQ, frames...)
	e.ctr.framesReclaimed += uint64(len(frames))
	e.set.Counter("core.frames_reclaimed").Add(uint64(len(frames)))
	e.rec.Record(trace.Event{
		At: e.rt.Now(), Kind: trace.KindFault, Node: e.node,
		A: ri, B: len(frames), Note: "reclaim:rail-down",
	})
	e.mu.Unlock()
	e.pumpAll()
}

// onPeerDown counts a rail-level peer failure and forwards it to the
// observer. The count per rail is the controller's lossy-rail evidence.
func (e *Engine) onPeerDown(ri int, peer packet.NodeID) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.railDowns[ri]++
	e.set.Counter("core.rail_peer_downs").Inc()
	e.rec.Record(trace.Event{
		At: e.rt.Now(), Kind: trace.KindFault, Node: e.node,
		A: ri, B: int(peer), Note: "peer-down",
	})
	obs := e.cfg.OnPeerDown
	e.mu.Unlock()
	if obs != nil {
		obs(ri, peer)
	}
}

// Node returns the engine's node id.
func (e *Engine) Node() packet.NodeID { return e.node }

// Stats returns the engine's metric set.
func (e *Engine) Stats() *stats.Set { return e.set }

// Rails returns the engine's drivers in rail-index order.
func (e *Engine) Rails() []drivers.Driver { return append([]drivers.Driver(nil), e.rails...) }

// SetBundle switches the strategy at runtime — the paper's dynamic change
// of scheduling policy as application needs evolve.
func (e *Engine) SetBundle(b strategy.Bundle) error {
	if b.Builder == nil || b.Rail == nil || b.Classes == nil || b.Protocol == nil {
		return fmt.Errorf("core: incomplete strategy bundle %q", b.Name)
	}
	e.mu.Lock()
	changed := e.bundle.Name != b.Name
	e.bundle = b
	e.set.Counter("core.policy_switches").Inc()
	e.rec.Record(trace.Event{At: e.rt.Now(), Kind: trace.KindPolicy, Node: e.node, Note: b.Name})
	obs := e.retuneObs
	e.mu.Unlock()
	e.pumpAll()
	if changed && obs != nil {
		obs(RetuneEvent{At: e.rt.Now(), Knob: "bundle", Note: "bundle=" + b.Name})
	}
	return nil
}

// Bundle returns the strategy currently in effect.
func (e *Engine) Bundle() strategy.Bundle {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bundle
}

// SetLookahead adjusts the lookahead window at runtime (E2 sweeps this; the
// adaptive controller drives it from observed backlog depth). Negative
// values clamp to 0 (unbounded).
func (e *Engine) SetLookahead(n int) {
	if n < 0 {
		n = 0
	}
	e.mu.Lock()
	changed := e.cfg.Lookahead != n
	e.cfg.Lookahead = n
	e.mu.Unlock()
	if changed {
		e.notifyRetune(RetuneEvent{At: e.rt.Now(), Knob: "lookahead", Note: fmt.Sprintf("lookahead=%d", n)})
	}
}

// DefaultNagleFlushCount is the flush count in effect when none is
// configured: a pending artificial delay is cut short once this many
// packets wait.
const DefaultNagleFlushCount = 4

// SetNagle adjusts the artificial delay at runtime (E3 sweeps this; the
// adaptive controller toggles it between traffic regimes). A flushCount of
// 0 restores DefaultNagleFlushCount — symmetric with construction, so a
// tuning's operating point never depends on which tuning ran before it.
// Setting a zero delay releases any armed delay immediately, so a
// latency-sensitive phase never waits out a timer armed under the previous
// tuning.
func (e *Engine) SetNagle(d simnet.Duration, flushCount int) {
	if d < 0 {
		d = 0
	}
	if flushCount <= 0 {
		flushCount = DefaultNagleFlushCount
	}
	e.mu.Lock()
	changed := e.cfg.NagleDelay != d || e.cfg.NagleFlushCount != flushCount
	e.cfg.NagleDelay = d
	e.cfg.NagleFlushCount = flushCount
	release := d == 0 && e.nagleArmed
	if release {
		e.ctr.nagleEarly++
		e.disarmNagleLocked()
	}
	e.mu.Unlock()
	if release {
		e.pumpAll()
	}
	if changed {
		e.notifyRetune(RetuneEvent{
			At: e.rt.Now(), Knob: "nagle",
			Note: fmt.Sprintf("nagle=%v flush=%d", d, flushCount),
		})
	}
}

// SetSearchBudget adjusts the plan builder's rearrangement evaluation bound
// at runtime (E6 sweeps this; the adaptive controller raises it when deep
// backlogs make search worthwhile). Negative values clamp to 0 (builder
// default).
func (e *Engine) SetSearchBudget(n int) {
	if n < 0 {
		n = 0
	}
	e.mu.Lock()
	changed := e.cfg.SearchBudget != n
	e.cfg.SearchBudget = n
	e.mu.Unlock()
	if changed {
		e.notifyRetune(RetuneEvent{At: e.rt.Now(), Knob: "budget", Note: fmt.Sprintf("budget=%d", n)})
	}
}

// SetRdvThreshold adjusts the eager/rendezvous switchover at runtime: a
// positive value overrides the bundle's protocol policy with a plain size
// threshold, 0 restores the bundle policy. Negative values clamp to 0.
func (e *Engine) SetRdvThreshold(n int) {
	if n < 0 {
		n = 0
	}
	e.mu.Lock()
	changed := e.cfg.RdvThreshold != n
	e.cfg.RdvThreshold = n
	e.mu.Unlock()
	if changed {
		e.notifyRetune(RetuneEvent{At: e.rt.Now(), Knob: "rdv-threshold", Note: fmt.Sprintf("rdv-threshold=%d", n)})
	}
}

// SetRailWeights adjusts the per-rail scheduling weights at runtime, when
// the bundle's rail policy supports it (strategy.RailWeightSetter — e.g.
// the capability-aware ScheduledRail). Reports whether the weights were
// applied; a bundle with a weight-free rail policy ignores the knob.
// SetBundle replaces the rail policy, so weights are re-applied by whoever
// switches bundles (the controller does this through its tunings).
func (e *Engine) SetRailWeights(w []float64) bool {
	e.mu.Lock()
	rs, ok := e.bundle.Rail.(strategy.RailWeightSetter)
	e.mu.Unlock()
	if !ok {
		return false
	}
	rs.SetWeights(w)
	e.set.Counter("core.rail_retunes").Inc()
	e.notifyRetune(RetuneEvent{At: e.rt.Now(), Knob: "rail-weights", Note: fmt.Sprintf("rail-weights=%v", w)})
	// Re-pump: packets held ineligible under the old weights may have a
	// rail now.
	e.pumpAll()
	return true
}

// RailWeights returns the per-rail scheduling weights currently in effect,
// when the bundle's rail policy is weight-tunable; ok is false otherwise.
// The controller's rail-demotion logic reads this to compose its zeroes
// with whatever operating point the tuning established.
func (e *Engine) RailWeights() (w []float64, ok bool) {
	e.mu.Lock()
	rs, tunable := e.bundle.Rail.(strategy.RailWeightSetter)
	e.mu.Unlock()
	if !tunable {
		return nil, false
	}
	return rs.Weights(), true
}

// Submit enqueues one packet from the collect layer and returns
// immediately. Packets of one flow must be submitted with consecutive Seq
// values starting at zero; the mad layer guarantees this.
func (e *Engine) Submit(p *packet.Packet) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Src != e.node {
		return fmt.Errorf("core: packet src %d submitted on node %d", p.Src, e.node)
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("core: engine closed")
	}
	e.submitSeq++
	p.SubmitSeq = e.submitSeq
	p.Enqueued = e.rt.Now()
	if p.Enqueued == 0 {
		// Zero marks "never submitted" in latency accounting; clamp the
		// simulation epoch to 1 ns so t=0 submissions still count.
		p.Enqueued = 1
	}
	e.bundle.Classes.Observe(p)
	e.cSubmitted.Inc()
	e.cSubmittedBytes.Add(uint64(p.Size()))
	e.ctr.submitted++
	e.ctr.submittedBytes += uint64(p.Size())
	if p.Class == packet.ClassControl {
		e.ctr.submittedCtrl++
	}
	e.rec.Record(trace.Event{
		At: p.Enqueued, Kind: trace.KindSubmit, Node: e.node,
		Flow: p.Flow, Seq: p.Seq, A: p.Size(), B: int(p.Class),
	})

	// Protocol decision: large cheap packets travel by rendezvous. The
	// capability record consulted is the first rail this packet may use
	// (deterministic; multi-rail nodes with diverging thresholds can pin
	// protocols per class through the rail policy instead). A runtime
	// threshold override (SetRdvThreshold) takes precedence over the bundle
	// policy so the controller can move the switchover without swapping
	// bundles.
	if e.useRendezvousLocked(p) {
		rts := e.rdvS.Start(p)
		e.ctrlQ = append(e.ctrlQ, rts)
		e.set.Counter("core.rdv_started").Inc()
		e.ctr.rdvBytes += uint64(p.Size())
		e.rdvStart[rts.Ctrl.Token] = p.Enqueued
		e.armRdvRetryLocked(rts.Ctrl.Token, 0)
		e.mu.Unlock()
		e.pumpAll()
		return nil
	}
	e.ctr.eagerBytes += uint64(p.Size())

	e.backlog.push(p)
	if depth := float64(e.backlog.size); depth > gauge(e.set, "core.backlog_peak") {
		e.set.SetGauge("core.backlog_peak", depth)
	}

	// Nagle: submission-triggered sends may be delayed briefly; the idle
	// upcall path (onIdle) always sends immediately.
	if e.cfg.NagleDelay > 0 && e.backlog.size < e.cfg.NagleFlushCount {
		if !e.nagleArmed {
			e.nagleArmed = true
			e.nagleGen++
			gen := e.nagleGen
			e.nagleCancel = e.rt.Schedule(e.cfg.NagleDelay, "core.nagle", func() { e.onNagle(gen) })
			e.rec.Record(trace.Event{
				At: e.rt.Now(), Kind: trace.KindNagleArm, Node: e.node,
				A: int(e.cfg.NagleDelay), B: e.backlog.size,
			})
		}
		e.mu.Unlock()
		return nil
	}
	if e.nagleArmed {
		e.ctr.nagleEarly++
		e.disarmNagleLocked()
	}
	e.mu.Unlock()
	e.pumpAll()
	return nil
}

// useRendezvousLocked applies the runtime threshold override, falling back
// to the bundle's protocol policy when no override is set.
func (e *Engine) useRendezvousLocked(p *packet.Packet) bool {
	if thr := e.cfg.RdvThreshold; thr > 0 {
		return !packet.EagerOnly(p) && p.Size() > thr
	}
	return e.bundle.Protocol.UseRendezvous(p, e.protoCaps(p))
}

// protoCaps returns the capability record governing protocol selection for
// p: the first rail the packet is eligible to use.
func (e *Engine) protoCaps(p *packet.Packet) caps.Caps {
	for i, r := range e.rails {
		if e.bundle.Rail.Eligible(p, e.railInfo(i)) {
			return r.Caps()
		}
	}
	return e.rails[0].Caps()
}

// Flush forces any Nagle-delayed packets out now.
func (e *Engine) Flush() {
	e.mu.Lock()
	if e.nagleArmed {
		e.ctr.nagleEarly++
		e.disarmNagleLocked()
	}
	e.mu.Unlock()
	e.pumpAll()
}

func (e *Engine) disarmNagleLocked() {
	e.nagleArmed = false
	e.nagleGen++
	if e.nagleCancel != nil {
		e.nagleCancel()
		e.nagleCancel = nil
	}
}

func (e *Engine) onNagle(gen uint64) {
	e.mu.Lock()
	if gen != e.nagleGen {
		// Stale fire: this arming was disarmed (and possibly re-armed)
		// while the callback was already in flight.
		e.mu.Unlock()
		return
	}
	e.nagleArmed = false
	e.nagleCancel = nil
	e.set.Counter("core.nagle_flushes").Inc()
	e.ctr.nagleFires++
	e.rec.Record(trace.Event{At: e.rt.Now(), Kind: trace.KindNagleFire, Node: e.node, A: e.backlog.size})
	e.mu.Unlock()
	e.pumpAll()
}

// armRdvRetryLocked schedules the attempt-th RTS retry for token, with
// exponential backoff. No-op when retry is disabled or the budget is spent.
func (e *Engine) armRdvRetryLocked(token uint64, attempt int) {
	if e.cfg.RdvRetry <= 0 || attempt >= e.cfg.RdvRetryMax {
		return
	}
	delay := e.cfg.RdvRetry << uint(attempt)
	e.rdvTimers[token] = e.rt.Schedule(delay, "core.rdv-retry", func() {
		e.onRdvRetry(token, attempt)
	})
}

// onRdvRetry fires when a rendezvous has waited out its CTS window: if the
// transfer is still ungranted, the RTS is rebuilt and re-queued (the
// receiver's token dedupe makes the duplicate harmless) and the next
// backoff is armed.
func (e *Engine) onRdvRetry(token uint64, attempt int) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	delete(e.rdvTimers, token)
	rts := e.rdvS.RetryRTS(token)
	if rts == nil {
		// Granted while the timer was in flight: nothing to do.
		e.mu.Unlock()
		return
	}
	e.ctrlQ = append(e.ctrlQ, rts)
	e.ctr.rdvRetries++
	e.set.Counter("core.rdv_retries").Inc()
	e.rec.Record(trace.Event{
		At: e.rt.Now(), Kind: trace.KindFault, Node: e.node,
		Flow: rts.Ctrl.Flow, Seq: rts.Ctrl.Seq, A: attempt + 1,
		Note: "rdv-retry",
	})
	e.armRdvRetryLocked(token, attempt+1)
	e.mu.Unlock()
	e.pumpAll()
}

// cancelRdvRetryLocked disarms the retry timer for a granted token.
func (e *Engine) cancelRdvRetryLocked(token uint64) {
	if c, ok := e.rdvTimers[token]; ok {
		delete(e.rdvTimers, token)
		c()
	}
}

// Close detaches the engine from its rails.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.disarmNagleLocked()
	for tok, c := range e.rdvTimers {
		delete(e.rdvTimers, tok)
		c()
	}
	rails := e.rails
	e.mu.Unlock()
	for _, r := range rails {
		r.SetIdleHandler(nil)
		r.SetRecvHandler(nil)
	}
}

// BacklogLen returns the number of waiting packets (diagnostic).
func (e *Engine) BacklogLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.backlog.size
}

// QueuedFrames returns pending (control, bulk) frame counts (diagnostic).
func (e *Engine) QueuedFrames() (ctrl, bulk int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.ctrlQ), len(e.bulkQ)
}

func gauge(s *stats.Set, name string) float64 {
	v, _ := s.Gauge(name)
	return v
}
