package core

import (
	"errors"
	"fmt"

	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// Typed refusal sentinels. Submit (and the RMA surface) refuse work for a
// small set of reasons a caller may want to branch on — the engine is gone,
// the destination is gone, or admission control shed the packet. Each is an
// errors.Is target; the admission refusals additionally carry a
// *ThrottleError with the tenant and a retry-after hint.
var (
	// ErrClosed reports an operation on a closed engine.
	ErrClosed = errors.New("core: engine closed")

	// ErrPeerUnreachable reports a submission toward a destination no rail
	// currently reaches. Only surfaced when Options.RefuseUnreachable is
	// set; by default the engine queues toward a down peer and waits for a
	// heal (the failover contract chaos tests rely on).
	ErrPeerUnreachable = errors.New("core: peer unreachable")

	// ErrThrottled reports a tenant over its token-bucket admission rate.
	ErrThrottled = errors.New("core: tenant throttled")

	// ErrQuotaExceeded reports a tenant over its backlog quota.
	ErrQuotaExceeded = errors.New("core: tenant backlog quota exceeded")
)

// ThrottleError is the admission-control refusal: which tenant was shed,
// why (it unwraps to ErrThrottled or ErrQuotaExceeded), and when retrying
// could succeed. RetryAfter is a hint, not a reservation — the bucket
// refills at the quota rate regardless of who asks.
type ThrottleError struct {
	Tenant packet.TenantID
	// RetryAfter is how long from the refusal until the admission check
	// could pass again: the token-bucket deficit for rate refusals, zero
	// for backlog-quota refusals (those clear when the backlog drains,
	// which no clock predicts).
	RetryAfter simnet.Duration
	kind       error
}

// Error renders the refusal.
func (t *ThrottleError) Error() string {
	if t.RetryAfter > 0 {
		return fmt.Sprintf("%v (tenant %d, retry after %v)", t.kind, t.Tenant, t.RetryAfter)
	}
	return fmt.Sprintf("%v (tenant %d)", t.kind, t.Tenant)
}

// Unwrap exposes the sentinel (ErrThrottled or ErrQuotaExceeded) to
// errors.Is.
func (t *ThrottleError) Unwrap() error { return t.kind }
