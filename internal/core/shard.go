package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
	"newmad/internal/trace"
)

// The sharded engine core. The optimizer's unit of aggregation is the
// destination — plans are single-destination by construction (see
// pumpBacklogLocked's OrderedSubset check and backlogKey) — so the engine
// partitions its send-side state by destination: each shard owns a slice
// of the backlog index, the reactive control/bulk queues, the failover
// queue and the Nagle delay for the destinations hashed onto it. Flows
// sharing a destination still land in one shard, which is exactly the
// cross-flow view the paper's aggregation needs; flows to different
// destinations stop contending on anything but the NIC channels
// themselves.
//
// Three lock tiers, in acquisition order:
//
//	Engine.pmu  > shard.mu  > stats/trace leaf locks
//	chanPump.mu > shard.mu  > stats/trace leaf locks
//
// pmu serializes the receive/protocol side (reassembly, rendezvous state,
// RMA windows, delivery batching, retry timers); it may take shard locks
// to queue reactive frames, never the reverse. chanPump serializes one NIC
// channel's pump, scanning shards for work; it may take shard locks, never
// pmu. Submit reaches a shard through a lock-free MPSC inbox and never
// touches pmu unless the packet goes rendezvous.

// shardOf maps a destination to its owning shard. Plain modulo: node IDs
// are dense small integers in every deployment this engine targets, so
// consecutive destinations spread perfectly without a mixing step.
func (e *Engine) shardOf(dst packet.NodeID) *shard {
	if len(e.shards) == 1 {
		return e.shards[0]
	}
	return e.shards[uint64(dst)%uint64(len(e.shards))]
}

// shard owns the send-side state for one destination group.
type shard struct {
	idx int
	eng *Engine

	// inbox is the lock-free submit handoff; nInbox counts packets pushed
	// but not yet drained (conservatively: incremented before the push
	// completes). draining elects the single drainer; see submitKick.
	inbox    submitInbox
	nInbox   atomic.Int64
	draining atomic.Bool

	// Work hints, readable without mu: a channel pump skips shards whose
	// hints are all zero instead of taking every shard lock per pump. They
	// are updated under mu at the same point as the queues they mirror, so
	// a hint can be momentarily stale only in the direction of a missed
	// skip (the enqueuer's own pump follows and sees it).
	nCtrl    atomic.Int64
	nBulk    atomic.Int64
	nFail    atomic.Int64
	nBacklog atomic.Int64

	// favorBulk round-robins fairness between backlog and bulkQ, per shard.
	// It toggles on every planned-work visit — including visits the work
	// hints short-circuit — because that is what the single-lock engine
	// did: its alternation advanced on every pump that reached the
	// backlog/bulk stage, work or no work. Keeping that cadence keeps the
	// one-shard engine's schedule byte-identical to the legacy one.
	// Atomic so the toggle happens before (outside) the shard lock the
	// hint skip avoids.
	favorBulk atomic.Bool

	// railRefused records that a completed scan of this shard refused at
	// least one queued packet for a weight-bound reason (strategy.WeightAware):
	// work that only a SetRailWeights call can re-admit. SetRailWeights
	// sweeps these hints and re-pumps only the flagged shards — the
	// incremental alternative to pumpAll (DESIGN.md §3.2). repumpEpoch
	// stamps the sweep that claimed this shard, so every channel can tell
	// which flagged shards it has not yet revisited (chanPump.doneEpoch).
	// Like the work hints above, staleness is only ever in the direction of
	// a spurious re-scan or a deferred one — never a lost packet: any full
	// pump re-offers everything regardless of hints.
	railRefused atomic.Bool
	repumpEpoch atomic.Uint64

	mu      sync.Mutex
	backlog backlogIndex    // waiting packets, indexed by (dst, class)
	ctrlQ   []*packet.Frame // reactive control frames (RTS/CTS/Ack)
	bulkQ   []*packet.Frame // granted rendezvous data, RMA frames
	failQ   []*packet.Frame // frames whose rail died under them

	// Per-shard Nagle delay: a shard arms its own timer for its own
	// backlog, keyed by a generation so wall-clock stale fires are inert.
	nagleArmed  bool
	nagleCancel simnet.CancelFunc
	nagleGen    uint64

	// ctr/railFrames are this shard's slice of the engine-private
	// observation counters; MetricsInto sums them across shards.
	ctr        counters
	railFrames []uint64

	// Per-tenant service accounting (admission.go): how many of this
	// shard's waiting packets belong to each tenant, maintained under mu
	// at the same points as the backlog index (drain in, plan out).
	// tenantActive counts tenants holding a nonzero share; the eligible
	// view divides the lookahead window by it so an admitted-but-heavy
	// tenant cannot monopolize a plan's slots (weighted service — the
	// tenant-fairness half of admission control). Fixed arrays: TenantID
	// is a byte, so the full table is 1 KiB and never allocates.
	tenantCount  [256]int32
	tenantActive int
	tenantTaken  [256]int32 // eligible-view merge scratch

	// Pump scratch, reused across pumps so the steady-state eager path
	// allocates nothing: the eligible view and its merge cursors, the
	// per-queue removal subsequences, the strategy context handed to plan
	// builders (builders must not retain it past Build), and the probe
	// packets the class/rail policies are consulted with.
	viewScratch  []*packet.Packet
	curScratch   []backlogCursor
	takenScratch []*packet.Packet
	planCtx      strategy.Context
	ctrlProbe    packet.Packet
	bulkProbe    packet.Packet
}

// submitKick drains s.inbox into the shard's backlog and pumps. At most
// one goroutine drains at a time: a producer that loses the election
// returns immediately — the active drainer's post-release re-check picks
// its packet up. The handoff is the standard flag-and-recheck: the
// producer pushes, then tries to become drainer; if that fails, the
// current drainer has not yet cleared `draining`, so its subsequent
// nInbox load (sequenced after the clear) observes the push.
func (s *shard) submitKick() {
	for {
		if !s.draining.CompareAndSwap(false, true) {
			return
		}
		s.mu.Lock()
		n, pump := s.drainInboxLocked()
		s.mu.Unlock()
		s.draining.Store(false)
		if pump {
			s.eng.pumpAll()
		}
		if s.nInbox.Load() == 0 {
			return
		}
		if n == 0 {
			// A producer is mid-push (swapped the inbox head, not yet
			// linked). Yield rather than spin on its two instructions.
			runtime.Gosched()
		}
	}
}

// drainInboxLocked moves every poppable inbox packet into the backlog,
// applying the per-packet submit accounting and the Nagle arm/flush
// decision. Returns the number of packets drained and whether the caller
// should pump (false when every drained packet was absorbed into an armed
// artificial delay). Caller holds s.mu.
func (s *shard) drainInboxLocked() (drained int, pump bool) {
	e := s.eng
	for {
		p := s.inbox.pop()
		if p == nil {
			return drained, pump
		}
		s.nInbox.Add(-1)
		drained++
		if e.closed.Load() {
			// A Submit that raced Close: the packet was accepted while the
			// engine was still open and is discarded with the rest of the
			// backlog, exactly as an already-queued packet would be.
			continue
		}
		tun := e.tun.Load()
		s.ctr.submitted++
		s.ctr.submittedBytes += uint64(p.Size())
		if p.Class == packet.ClassControl {
			s.ctr.submittedCtrl++
		}
		s.ctr.eagerBytes += uint64(p.Size())
		s.backlog.push(p)
		s.tenantCount[p.Tenant]++
		if s.tenantCount[p.Tenant] == 1 {
			s.tenantActive++
		}
		s.nBacklog.Add(1)
		gsz := e.backlogSz.Add(1)
		e.notePeak(gsz)

		// Nagle: submission-triggered sends may be delayed briefly; the
		// idle upcall path always sends immediately. The flush decision
		// reads the global backlog depth — pressure anywhere flushes, as
		// it did when one lock owned the whole backlog.
		if tun.nagleDelay > 0 && int(gsz) < tun.nagleFlush {
			if !s.nagleArmed {
				s.nagleArmed = true
				s.nagleGen++
				gen := s.nagleGen
				s.nagleCancel = e.rt.Schedule(tun.nagleDelay, "core.nagle", func() { e.onNagle(s, gen) })
				e.rec.Record(trace.Event{
					At: e.rt.Now(), Kind: trace.KindNagleArm, Node: e.node,
					A: int(tun.nagleDelay), B: int(gsz),
				})
			}
			continue
		}
		if s.nagleArmed {
			s.ctr.nagleEarly++
			s.disarmNagleLocked()
		}
		pump = true
	}
}

// disarmNagleLocked retires the shard's armed delay. The generation bump
// makes a timer fire that lost the race against this disarm (possible on
// the wall-clock runtime, where cancelling an already-running callback is
// a no-op) recognize itself as stale. Caller holds s.mu.
func (s *shard) disarmNagleLocked() {
	s.nagleArmed = false
	s.nagleGen++
	if s.nagleCancel != nil {
		s.nagleCancel()
		s.nagleCancel = nil
	}
}

// onNagle fires when a shard's artificial delay expires.
func (e *Engine) onNagle(s *shard, gen uint64) {
	s.mu.Lock()
	if gen != s.nagleGen {
		// Stale fire: this arming was disarmed (and possibly re-armed)
		// while the callback was already in flight.
		s.mu.Unlock()
		return
	}
	s.nagleArmed = false
	s.nagleCancel = nil
	s.ctr.nagleFires++
	s.mu.Unlock()
	e.set.Counter("core.nagle_flushes").Inc()
	e.rec.Record(trace.Event{At: e.rt.Now(), Kind: trace.KindNagleFire, Node: e.node, A: int(e.backlogSz.Load())})
	e.pumpAll()
}

// notePeak maintains the backlog high-water mark and mirrors new maxima
// into the core.backlog_peak gauge.
func (e *Engine) notePeak(depth int64) {
	for {
		pk := e.backlogPeak.Load()
		if depth <= pk {
			return
		}
		if e.backlogPeak.CompareAndSwap(pk, depth) {
			e.set.SetGauge("core.backlog_peak", float64(depth))
			return
		}
	}
}

// chanPump serializes pumping of one (rail, channel): exactly one
// goroutine runs the idle-check → shard-scan → Post sequence at a time, so
// a post to an idle channel can never race another post to the same
// channel. A contender that fails the TryLock leaves its request in
// `pending` (and `pendingIdle` when it carries a genuine NIC-idle
// activation); the holder re-pumps until no request remains, so no kick is
// ever lost. rotor rotates the shard scan start so no shard is
// systematically served first; it is guarded by mu.
type chanPump struct {
	mu          sync.Mutex
	pending     atomic.Bool
	pendingIdle atomic.Bool
	rotor       int

	// Weight-delta pump requests, epoch-numbered (engine.repumpEpoch).
	// refusedEpoch is the newest sweep that asked this channel to revisit
	// flagged shards; doneEpoch (written under mu) is the newest sweep whose
	// flagged shards a scan of this channel has fully covered. A refused
	// request is satisfied by any full scan too, so full pumps advance
	// doneEpoch for free. Per-channel tracking is what keeps the protocol
	// live: one channel covering a flagged shard must not absorb another
	// channel's obligation to offer that shard its own bandwidth.
	refusedEpoch atomic.Uint64
	doneEpoch    atomic.Uint64
}

// kickChannel requests a pump of (rail ri, channel ch). idleUpcall marks a
// genuine NIC-idle activation (which an armed Nagle delay never holds
// against, per the paper).
func (e *Engine) kickChannel(ri, ch int, idleUpcall bool) {
	cp := &e.pumps[ri][ch]
	cp.pending.Store(true)
	if idleUpcall {
		cp.pendingIdle.Store(true)
	}
	e.runChannel(ri, ch, idleUpcall, cp)
}

// kickChannelRefused requests a weight-delta pump of (rail ri, channel ch):
// the scan visits only shards flagged at an epoch this channel has not yet
// covered, skipping the rest of the backlog entirely.
func (e *Engine) kickChannelRefused(ri, ch int, epoch uint64) {
	cp := &e.pumps[ri][ch]
	for { // monotone max: a newer sweep never loses to an older one
		cur := cp.refusedEpoch.Load()
		if cur >= epoch || cp.refusedEpoch.CompareAndSwap(cur, epoch) {
			break
		}
	}
	e.runChannel(ri, ch, false, cp)
}

// runChannel drains every outstanding pump request on (ri, ch) — full kicks
// and epoch-numbered refused kicks — under the channel's TryLock protocol:
// the holder re-checks both request kinds after releasing, so no kick is
// ever lost to contention.
func (e *Engine) runChannel(ri, ch int, idleUpcall bool, cp *chanPump) {
	for {
		if !cp.mu.TryLock() {
			// The holder clears pending before pumping and re-checks after
			// releasing, so our request is either seen or re-run.
			return
		}
		full := cp.pending.Load()
		refEp := cp.refusedEpoch.Load()
		if !full && refEp <= cp.doneEpoch.Load() {
			cp.mu.Unlock()
			return
		}
		var swept bool
		if full {
			cp.pending.Store(false)
			idle := cp.pendingIdle.Swap(false) || idleUpcall
			swept = e.pumpChannel(ri, ch, idle, cp, 0)
		} else {
			swept = e.pumpChannel(ri, ch, false, cp, cp.doneEpoch.Load()+1)
		}
		if swept {
			// The scan covered every shard flagged at or before refEp (a
			// posted early-exit does not sweep; the loop re-runs until the
			// remaining flagged shards have been offered this channel).
			cp.doneEpoch.Store(refEp)
		}
		cp.mu.Unlock()
		if !cp.pending.Load() && cp.refusedEpoch.Load() <= cp.doneEpoch.Load() {
			return
		}
	}
}

// pumpChannel offers (rail ri, channel ch) the most valuable work across
// all shards. Priority order matches the single-lock engine exactly:
// reactive control frames and failover re-posts from any shard first, then
// planned backlog/bulk work. The scan starts at the channel's rotor so
// shard service order rotates deterministically. Caller holds cp.mu.
//
// minEpoch > 0 selects the weight-delta mode: only shards whose repumpEpoch
// reached minEpoch are visited — the rest of the backlog is untouched, so a
// retune costs O(affected queues). The return value reports whether the
// scan swept every shard it owed a visit: false only on a posted early exit
// (the caller re-runs); a busy channel counts as swept because its eventual
// idle upcall runs an unconditional full scan.
func (e *Engine) pumpChannel(ri, ch int, idleUpcall bool, cp *chanPump, minEpoch uint64) bool {
	if e.closed.Load() {
		// A pump that raced Close stops scanning: Close is discarding the
		// queues this scan would read, and the rails are being detached.
		return true
	}
	r := e.rails[ri]
	if !r.ChannelIdle(ch) {
		return true
	}
	shards := e.shards
	n := len(shards)
	start := cp.rotor
	cp.rotor++
	if cp.rotor >= n {
		cp.rotor = 0
	}
	b := e.bundle.Load()
	// Pass 1: control/signalling and failover traffic — latency-critical,
	// never queues behind data.
	for i := 0; i < n; i++ {
		s := shards[(start+i)%n]
		if minEpoch > 0 && s.repumpEpoch.Load() < minEpoch {
			continue
		}
		if s.nCtrl.Load() == 0 && s.nFail.Load() == 0 {
			continue
		}
		s.mu.Lock()
		posted := s.pumpReactiveLocked(b, ri, ch)
		s.mu.Unlock()
		if posted {
			return false
		}
	}
	// Pass 2: planned work — the eager backlog and granted bulk.
	for i := 0; i < n; i++ {
		s := shards[(start+i)%n]
		if minEpoch > 0 && s.repumpEpoch.Load() < minEpoch {
			continue
		}
		fav := s.favorBulk.Load()
		s.favorBulk.Store(!fav)
		if s.nBacklog.Load() == 0 && s.nBulk.Load() == 0 {
			continue
		}
		s.mu.Lock()
		posted := s.pumpWorkLocked(b, ri, ch, idleUpcall, fav)
		s.mu.Unlock()
		if posted {
			return false
		}
	}
	return true
}

// submitInbox is an intrusive MPSC queue (Vyukov-style): producers push
// with one atomic swap and one store, the single consumer (whoever holds
// the drain election) pops without contention. Nodes are pooled so the
// steady-state submit path allocates nothing.
type submitInbox struct {
	head atomic.Pointer[submitNode] // most recently pushed
	tail *submitNode                // consumer cursor; consumer-owned
	stub submitNode
}

type submitNode struct {
	next atomic.Pointer[submitNode]
	p    *packet.Packet
}

var submitNodePool = sync.Pool{New: func() any { return new(submitNode) }}

func (q *submitInbox) init() {
	q.head.Store(&q.stub)
	q.tail = &q.stub
}

// push appends p. Safe for any number of concurrent producers.
func (q *submitInbox) push(p *packet.Packet) {
	n := submitNodePool.Get().(*submitNode)
	n.p = p
	n.next.Store(nil)
	prev := q.head.Swap(n)
	// Between the swap and this store the chain is momentarily
	// disconnected; pop reports empty and the producer's kick re-drains.
	prev.next.Store(n)
}

// pop removes the oldest packet, or returns nil when the inbox is empty or
// a producer is mid-push. Single consumer only (callers hold shard.mu).
func (q *submitInbox) pop() *packet.Packet {
	t := q.tail
	next := t.next.Load()
	if t == &q.stub {
		if next == nil {
			return nil
		}
		q.tail = next
		t = next
		next = t.next.Load()
	}
	if next != nil {
		q.tail = next
		p := t.p
		t.p = nil
		submitNodePool.Put(t)
		return p
	}
	if t != q.head.Load() {
		// A producer swapped the head but has not linked yet.
		return nil
	}
	// t is the last real node: thread the stub behind it so t becomes
	// poppable. Only this consumer ever pushes the stub.
	q.stub.next.Store(nil)
	prev := q.head.Swap(&q.stub)
	prev.next.Store(&q.stub)
	if next = t.next.Load(); next != nil {
		q.tail = next
		p := t.p
		t.p = nil
		submitNodePool.Put(t)
		return p
	}
	return nil
}

// drainDiscardLocked empties the inbox without processing (Close path).
// Caller holds s.mu.
func (s *shard) drainDiscardLocked() {
	for s.inbox.pop() != nil {
		s.nInbox.Add(-1)
	}
}

// newShard builds one shard with its scratch sized for the engine's rails.
func newShard(e *Engine, idx int) *shard {
	s := &shard{
		idx:        idx,
		eng:        e,
		railFrames: make([]uint64, len(e.rails)),
	}
	s.inbox.init()
	s.ctrlProbe = packet.Packet{Class: packet.ClassControl}
	return s
}

// mergeCounters folds this shard's private counters into out under the
// shard lock (MetricsInto's snapshot path).
func (s *shard) mergeInto(m *Metrics) {
	s.mu.Lock()
	m.Backlog += s.backlog.size
	m.CtrlQueued += len(s.ctrlQ)
	m.BulkQueued += len(s.bulkQ)
	m.FailoverQueued += len(s.failQ)
	m.Submitted += s.ctr.submitted
	m.SubmittedBytes += s.ctr.submittedBytes
	m.SubmittedCtrl += s.ctr.submittedCtrl
	m.EagerBytes += s.ctr.eagerBytes
	m.RdvBytes += s.ctr.rdvBytes
	m.FramesPosted += s.ctr.framesPosted
	m.PacketsSent += s.ctr.packetsSent
	m.Aggregates += s.ctr.aggregates
	m.NagleFires += s.ctr.nagleFires
	m.NagleEarly += s.ctr.nagleEarly
	m.FramesReclaimed += s.ctr.framesReclaimed
	m.Failovers += s.ctr.failovers
	for i, v := range s.railFrames {
		m.RailFrames[i] += v
	}
	s.mu.Unlock()
}

// Shards returns the number of pump shards the engine runs (diagnostic;
// 1 means the legacy single-shard layout).
func (e *Engine) Shards() int { return len(e.shards) }
