package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
	"newmad/internal/trace"
)

// The optimizing layer's hot path: reacting to idle channels.

// onIdle is the transfer layer's upcall: rail ri, channel ch finished
// serializing its frame. Per the paper, this — not Submit — is the moment
// the optimizer runs, with whatever backlog accumulated meanwhile.
func (e *Engine) onIdle(ri, ch int) {
	if e.closed.Load() {
		return
	}
	e.cIdleUpcalls.Inc()
	e.idleUps.Add(1)
	e.rec.Record(trace.Event{At: e.rt.Now(), Kind: trace.KindIdle, Node: e.node, A: ri, B: ch})
	e.kickChannel(ri, ch, true)
}

// onFrame is the receive upcall on rail ri: route through the protocol
// dispatcher under pmu, then hand any completed packets up and react to
// protocol events.
func (e *Engine) onFrame(ri int, src packet.NodeID, f *packet.Frame) {
	if e.closed.Load() {
		// Still the terminal consumer: a frame racing Close would
		// otherwise leak its pooled wire buffer.
		if f.Backed() {
			packet.ReleaseFrame(f)
		}
		return
	}
	e.pmu.Lock()
	if e.closed.Load() {
		// Close won pmu between our check and the lock; same contract.
		e.pmu.Unlock()
		if f.Backed() {
			packet.ReleaseFrame(f)
		}
		return
	}
	now := e.rt.Now()
	// The protocol-event hooks the dispatcher calls (onRdvGrant) run under
	// pmu and read the arrival rail from here.
	e.arrivalRail = ri
	// SpanXmit: the sender stamped the frame at post time when the frame
	// object itself crossed the fabric (simulated rails, loopback); frames
	// decoded from a real wire read zero and are skipped.
	if f.Posted > 0 {
		e.spans.Observe(int(SpanXmit), int(frameClass(f)), ri, float64(now.Sub(f.Posted)))
	}
	// SpanRdvData bookkeeping: remember the first RTS arrival per inbound
	// token (retries keep the original start), close the span when the
	// granted bulk lands.
	switch f.Kind {
	case packet.FrameRTS:
		if _, ok := e.rdvRecvStart[f.Ctrl.Token]; !ok {
			e.rdvRecvStart[f.Ctrl.Token] = now
		}
	case packet.FrameRData:
		if t0, ok := e.rdvRecvStart[f.Ctrl.Token]; ok {
			delete(e.rdvRecvStart, f.Ctrl.Token)
			e.spans.Observe(int(SpanRdvData), int(packet.ClassBulk), ri, float64(now.Sub(t0)))
		}
	}
	e.rec.Record(trace.Event{
		At: now, Kind: trace.KindRecv, Node: e.node,
		A: int(f.Kind), B: f.PayloadSize(), Note: f.Kind.String(),
	})
	e.disp.HandleFrame(src, f)
	// Terminal consumption of a wire-pooled frame: protocol dispatch has
	// copied or pinned everything that escapes (proto's memory-discipline
	// contract), so the frame and its unpinned backing buffer recycle here.
	// Frames without pooled backing — simulated fabrics hand the sender's
	// own frame object across, tests hand-build theirs — keep their
	// historical GC lifetime.
	if f.Backed() {
		packet.ReleaseFrame(f)
	}
	deliver, fns := e.takeDeliveriesLocked()
	e.pmu.Unlock()
	e.dispatchDeliveries(deliver, fns, ri)
	// Protocol handling may have queued reactive frames (CTS, acks, get
	// replies) or granted rendezvous bulk; give idle channels a chance.
	e.pumpAll()
}

// takeDeliveriesLocked swaps out the accumulated delivery batch. Caller
// holds pmu — all delivery producers (reassembler completion, RMA
// callbacks) run under it.
func (e *Engine) takeDeliveriesLocked() ([]proto.Deliverable, []func()) {
	d := e.pendingDeliver
	// Double-buffer: the spare (recycled by dispatchDeliveries once a
	// batch has been handed up) becomes the next accumulation target, so
	// the steady-state receive path never regrows the pending slice.
	if e.deliverSpare != nil {
		e.pendingDeliver = e.deliverSpare[:0]
		e.deliverSpare = nil
	} else {
		e.pendingDeliver = nil
	}
	fns := e.pendingFns
	e.pendingFns = nil
	e.ctrDelivered += uint64(len(d))
	return d, fns
}

// dispatchDeliveries hands completed packets to the application. rail is
// the arrival rail of the frame that produced them (the E2E span's rail
// key), or -1 when the batch has no single arrival context.
func (e *Engine) dispatchDeliveries(ds []proto.Deliverable, fns []func(), rail int) {
	for _, fn := range fns {
		fn()
	}
	for _, d := range ds {
		e.cDelivered.Inc()
		e.cDeliveredBytes.Add(uint64(d.Pkt.Size()))
		if d.Pkt.Enqueued > 0 {
			lat := e.rt.Now().Sub(d.Pkt.Enqueued)
			e.hDeliveryLat.Add(float64(lat))
			e.spans.Observe(int(SpanE2E), int(d.Pkt.Class), rail, float64(lat))
			if d.Pkt.Class == packet.ClassControl {
				e.hControlLat.Add(float64(lat))
			}
		}
		e.rec.Record(trace.Event{
			At: e.rt.Now(), Kind: trace.KindDeliver, Node: e.node,
			Flow: d.Pkt.Flow, Seq: d.Pkt.Seq, A: d.Pkt.Size(),
		})
		e.deliver(d)
	}
	if cap(ds) == 0 {
		return
	}
	// Hand the drained batch back as the spare accumulation buffer,
	// dropping its packet references first.
	for i := range ds {
		ds[i] = proto.Deliverable{}
	}
	e.pmu.Lock()
	if e.deliverSpare == nil {
		e.deliverSpare = ds[:0]
	}
	e.pmu.Unlock()
}

// enqueueReactive is the SendHook for the protocol engines: CTS/Ack frames
// join the owning shard's control queue, data-bearing frames its bulk
// queue. Called with pmu held (protocol engines run under it); taking the
// shard lock nested is the pmu > shard.mu tier order.
func (e *Engine) enqueueReactive(f *packet.Frame) {
	s := e.shardOf(f.Dst)
	s.mu.Lock()
	switch f.Kind {
	case packet.FrameCTS, packet.FrameAck, packet.FrameRTS:
		s.ctrlQ = append(s.ctrlQ, f)
		s.nCtrl.Add(1)
	default:
		s.bulkQ = append(s.bulkQ, f)
		s.nBulk.Add(1)
	}
	s.mu.Unlock()
	e.cReactive.Inc()
}

// onRdvGrant fires when a CTS arrives for a rendezvous this node started:
// the bulk payload becomes schedulable and the retry timer stands down.
func (e *Engine) onRdvGrant(token uint64, p *packet.Packet) {
	// Called with pmu held (CTS arrives via onFrame -> dispatcher).
	e.cancelRdvRetryLocked(token)
	// SpanRdvGrant closes here: RTS first queued → CTS arrival, retries
	// included. The arrival rail is the one onFrame is dispatching.
	if t0, ok := e.rdvStart[token]; ok {
		delete(e.rdvStart, token)
		e.spans.Observe(int(SpanRdvGrant), int(packet.ClassBulk), e.arrivalRail, float64(e.rt.Now().Sub(t0)))
	}
	rdata := e.rdvS.BuildRData(token)
	s := e.shardOf(rdata.Dst)
	s.mu.Lock()
	s.bulkQ = append(s.bulkQ, rdata)
	s.nBulk.Add(1)
	s.mu.Unlock()
	e.set.Counter("core.rdv_granted").Inc()
	e.rec.Record(trace.Event{
		At: e.rt.Now(), Kind: trace.KindRdv, Node: e.node,
		Flow: rdata.Ctrl.Flow, Seq: rdata.Ctrl.Seq, A: rdata.Ctrl.Size, Note: "granted",
	})
}

// pumpAll offers work to every idle channel of every rail once.
func (e *Engine) pumpAll() {
	if e.closed.Load() {
		return
	}
	for ri, r := range e.rails {
		for ch := 0; ch < r.NumChannels(); ch++ {
			if r.ChannelIdle(ch) {
				e.kickChannel(ri, ch, false)
			}
		}
	}
}

// pumpRefused is SetRailWeights' incremental replacement for pumpAll: it
// claims the shards whose scans recorded weight-bound refusals, stamps them
// with a fresh repump epoch, and offers only those shards to the idle
// channels (kickChannelRefused). Shards with no refused work are never
// locked or scanned, so a weight delta costs O(affected queues) plus
// O(shards + channels) bookkeeping — not a full backlog sweep.
func (e *Engine) pumpRefused() {
	if e.closed.Load() {
		return
	}
	var epoch uint64
	affected := 0
	for _, s := range e.shards {
		if s.railRefused.Swap(false) {
			if epoch == 0 {
				epoch = e.repumpEpoch.Add(1)
			}
			s.repumpEpoch.Store(epoch)
			affected++
		}
	}
	if epoch == 0 {
		return
	}
	e.set.Counter("core.retune_repumped_shards").Add(uint64(affected))
	for ri, r := range e.rails {
		for ch := 0; ch < r.NumChannels(); ch++ {
			if r.ChannelIdle(ch) {
				e.kickChannelRefused(ri, ch, epoch)
			}
		}
	}
}

func (e *Engine) railInfo(ri int) strategy.RailInfo {
	return strategy.RailInfo{Index: ri, Count: len(e.rails), Caps: e.rails[ri].Caps()}
}

// railEligibleWeighted consults the rail policy for p on info, classifying
// a refusal as weight-bound (curable by a SetRailWeights call alone) or
// structural. Policies without refusal classification (strategy.WeightAware)
// are treated conservatively — every refusal counts as weight-bound — so a
// weight delta re-offers their queued work exactly as pumpAll did.
func railEligibleWeighted(rail strategy.RailPolicy, p *packet.Packet, info strategy.RailInfo) (ok, weightBound bool) {
	if wa, is := rail.(strategy.WeightAware); is {
		return wa.EligibleWeighted(p, info)
	}
	return rail.Eligible(p, info), true
}

// pumpReactiveLocked tries to occupy (rail ri, channel ch) with this
// shard's latency-critical traffic: a control frame if the class policy
// admits control here, else a failover re-post. Returns whether a frame
// was posted. Caller holds s.mu (under the owning chanPump).
func (s *shard) pumpReactiveLocked(b *strategy.Bundle, ri, ch int) bool {
	e := s.eng
	numCh := e.rails[ri].NumChannels()
	// Control/signalling first: tiny, never queues behind data if the
	// class policy admits it here. The probe packet is shard-owned
	// scratch: policies only read it.
	if b.Classes.Allowed(packet.ClassControl, ch, numCh) {
		if ok, wb := railEligibleWeighted(b.Rail, &s.ctrlProbe, e.railInfo(ri)); ok {
			if f := s.popFrameLocked(&s.ctrlQ, &s.nCtrl); f != nil {
				s.postLocked(ri, ch, f, nil, 0)
				return true
			}
		} else if wb && len(s.ctrlQ) > 0 {
			// Queued control frames held back by a weight-bound refusal:
			// flag the shard for the next weight delta's targeted re-pump.
			s.railRefused.Store(true)
		}
	}
	// Failover traffic: frames whose original rail died re-travel on the
	// first live channel that admits their class — ahead of fresh work, so
	// recovery latency stays bounded by one pump cycle, not by queue
	// depth. Running before any fresh plan also keeps a healed peer's
	// reclaimed frames ahead of same-flow frames still in the backlog:
	// the reassembler tolerates reordering, but the failover queue
	// clearing first keeps recovery from queueing behind new plans.
	if s.pumpFailoverLocked(b, ri, ch) {
		return true
	}
	return false
}

// pumpWorkLocked tries to occupy (rail ri, channel ch) with this shard's
// planned work, alternating fairly between the eager backlog and granted
// bulk. Returns whether a frame was posted. Caller holds s.mu (under the
// owning chanPump).
//
// idleUpcall distinguishes a genuine NIC-idle activation from an
// opportunistic pump (after a received frame, a policy switch, ...). An
// armed Nagle delay holds the eager backlog against opportunistic pumps —
// otherwise any unrelated inbound frame would defeat the artificial delay,
// which for reaction-driven traffic (request-response) is every frame — but
// never against a genuine idle upcall: per the paper, the moment a send
// channel becomes free the optimizer runs with whatever accumulated.
// Control and granted-bulk frames are never held.
func (s *shard) pumpWorkLocked(b *strategy.Bundle, ri, ch int, idleUpcall, favorBulk bool) bool {
	holdBacklog := s.nagleArmed && !idleUpcall
	tryBacklog := func() bool { return !holdBacklog && s.pumpBacklogLocked(b, ri, ch) }
	tryBulk := func() bool { return s.pumpBulkLocked(b, ri, ch) }
	first, second := tryBacklog, tryBulk
	if favorBulk {
		first, second = tryBulk, tryBacklog
	}
	if first() {
		return true
	}
	return second()
}

// frameClass maps a frame to the scheduling class governing its channel
// admission.
func frameClass(f *packet.Frame) packet.ClassID {
	switch f.Kind {
	case packet.FrameData:
		if len(f.Entries) > 0 {
			return f.Entries[0].Class
		}
		return packet.ClassSmall
	case packet.FramePut, packet.FrameGet, packet.FrameGetReply:
		return packet.ClassRMA
	case packet.FrameRData:
		return packet.ClassBulk
	default:
		return packet.ClassControl
	}
}

// railReaches reports whether rail ri currently reaches peer: rails that
// track liveness (drivers.PeerChecker) answer for themselves, all others —
// the simulated fabrics — count as reachable.
func (e *Engine) railReaches(ri int, peer packet.NodeID) bool {
	if pc, ok := e.rails[ri].(drivers.PeerChecker); ok {
		return !pc.PeerDown(peer)
	}
	return true
}

// anyRailReaches reports whether at least one rail currently reaches peer
// (the Options.RefuseUnreachable submit check).
func (e *Engine) anyRailReaches(peer packet.NodeID) bool {
	for ri := range e.rails {
		if e.railReaches(ri, peer) {
			return true
		}
	}
	return false
}

// pumpFailoverLocked re-posts the first failover frame this (rail, channel)
// can carry: the class policy still applies (control lanes stay protected),
// but the rail policy is bypassed — its preferred rail for the frame is
// exactly the one that died — and rails that do not reach the frame's
// destination are skipped. Frames nothing currently reaches stay queued for
// a heal. Caller holds s.mu.
func (s *shard) pumpFailoverLocked(b *strategy.Bundle, ri, ch int) bool {
	if len(s.failQ) == 0 {
		return false
	}
	e := s.eng
	numCh := e.rails[ri].NumChannels()
	for i, f := range s.failQ {
		if !b.Classes.Allowed(frameClass(f), ch, numCh) {
			continue
		}
		if !e.railReaches(ri, f.Dst) {
			continue
		}
		s.failQ = append(s.failQ[:i], s.failQ[i+1:]...)
		s.nFail.Add(-1)
		s.ctr.failovers++
		e.set.Counter("core.failovers").Inc()
		e.rec.Record(trace.Event{
			At: e.rt.Now(), Kind: trace.KindFault, Node: e.node,
			A: ri, B: f.WireSize(), Note: "failover:" + f.Kind.String(),
		})
		s.postLocked(ri, ch, f, nil, 0)
		return true
	}
	return false
}

// pumpBulkLocked posts the first bulk frame admitted on this channel.
// Caller holds s.mu.
func (s *shard) pumpBulkLocked(b *strategy.Bundle, ri, ch int) bool {
	e := s.eng
	r := e.rails[ri]
	info := e.railInfo(ri)
	numCh := r.NumChannels()
	placer, hasPlacer := b.Rail.(strategy.BulkPlacer)
	var gen uint64
	if hasPlacer {
		gen = placer.WeightGen()
	}
	refused := false
	for i, f := range s.bulkQ {
		class := packet.ClassBulk
		if f.Kind == packet.FramePut || f.Kind == packet.FrameGet || f.Kind == packet.FrameGetReply {
			class = packet.ClassRMA
		}
		if !b.Classes.Allowed(class, ch, numCh) {
			continue
		}
		// The probe carries the transfer's full identity (flow, msg,
		// fragment seq) so striping rail policies can spread distinct bulk
		// transfers across rails while keeping each transfer's placement
		// stable. It is shard-owned scratch: policies only read it.
		if hasPlacer {
			// Placement is a pure function of (transfer identity, weights):
			// compute it once per frame per weight generation and cache it
			// on the frame, instead of probing the policy once per rail.
			if f.StripeGen != gen {
				s.bulkProbe = packet.Packet{Class: class, Flow: f.Ctrl.Flow, Msg: f.Ctrl.Msg, Seq: f.Ctrl.Seq}
				f.StripeRail = int32(placer.BulkRail(&s.bulkProbe, info.Count))
				f.StripeGen = gen
			}
			if f.StripeRail >= 0 && int(f.StripeRail) != ri {
				refused = true // striped elsewhere: a weight delta can move it here
				continue
			}
		} else {
			s.bulkProbe = packet.Packet{Class: class, Flow: f.Ctrl.Flow, Msg: f.Ctrl.Msg, Seq: f.Ctrl.Seq}
			if ok, wb := railEligibleWeighted(b.Rail, &s.bulkProbe, info); !ok {
				refused = refused || wb
				continue
			}
		}
		if !e.railReaches(ri, f.Dst) {
			continue
		}
		s.bulkQ = append(s.bulkQ[:i], s.bulkQ[i+1:]...)
		s.nBulk.Add(-1)
		if refused {
			s.railRefused.Store(true)
		}
		s.postLocked(ri, ch, f, nil, 0)
		return true
	}
	if refused {
		s.railRefused.Store(true)
	}
	return false
}

// pumpBacklogLocked runs the plan builder over the shard's eligible backlog
// view. The view, the strategy context and the plan live only for this
// pump; builders must not retain any of them past Build. Caller holds s.mu.
func (s *shard) pumpBacklogLocked(b *strategy.Bundle, ri, ch int) bool {
	e := s.eng
	r := e.rails[ri]
	info := e.railInfo(ri)
	numCh := r.NumChannels()
	tun := e.tun.Load()

	view := s.eligibleLocked(b, info, ch, numCh, tun.lookahead)
	if len(view) == 0 {
		return false
	}
	s.planCtx = strategy.Context{
		Now:     e.rt.Now(),
		Caps:    r.Caps(),
		Mem:     r.Mem(),
		Backlog: view,
		Budget:  tun.searchBudget,
	}
	plan := b.Builder.Build(&s.planCtx)
	if plan == nil || len(plan.Packets) == 0 {
		return false
	}
	if !packet.OrderedSubset(plan.Packets) {
		panic(fmt.Sprintf("core: strategy %q produced an order-violating plan", b.Builder.Name()))
	}
	s.takenScratch = s.backlog.removePlan(plan.Packets, s.takenScratch[:0])
	taken := int64(len(plan.Packets))
	s.nBacklog.Add(-taken)
	e.backlogSz.Add(-taken)
	// Return the plan's packets to their tenants: the shard's service
	// shares and the engine-level backlog quotas both release here, the
	// single point where packets leave the backlog index.
	adm := e.adm.Load()
	for _, p := range plan.Packets {
		if s.tenantCount[p.Tenant] > 0 {
			s.tenantCount[p.Tenant]--
			if s.tenantCount[p.Tenant] == 0 {
				s.tenantActive--
			}
		}
		if adm != nil {
			adm.releaseBacklog(p.Tenant)
		}
	}
	if s.backlog.size == 0 && s.nagleArmed {
		// The idle path drained everything the delay was holding; retire
		// the timer silently (neither a fire nor an early flush — the
		// packets left through a genuine idle upcall, so the delay was
		// neither pure latency nor pressure-cut).
		s.disarmNagleLocked()
	}

	// The frame is pooled: on wire rails the owner goroutine releases it
	// after the bytes hit the socket, on simulated fabrics it crosses to
	// the receiving engine and falls to the GC like any sim frame.
	f := packet.AcquireFrame()
	f.Kind = packet.FrameData
	f.Src = e.node
	f.Dst = plan.Packets[0].Dst
	for _, p := range plan.Packets {
		entry := packet.EntryFromPacket(p)
		entry.Enqueued = p.Enqueued
		f.Entries = append(f.Entries, entry)
		// SpanQueueWait: how long this packet sat in the lookahead pool
		// before a plan pulled it, keyed by its class and the rail the
		// plan was built for.
		if p.Enqueued > 0 {
			e.spans.Observe(int(SpanQueueWait), int(p.Class), ri, float64(s.planCtx.Now.Sub(p.Enqueued)))
		}
	}
	s.postLocked(ri, ch, f, plan.Packets, plan.HostExtra)

	e.rec.Record(trace.Event{
		At: e.rt.Now(), Kind: trace.KindPlan, Node: e.node,
		Flow: plan.Packets[0].Flow, Seq: plan.Packets[0].Seq,
		A: len(plan.Packets), B: plan.Evaluated,
		Note: b.Builder.Name(),
	})
	e.hPlanPackets.Add(float64(len(plan.Packets)))
	e.hPlanEvaluated.Add(float64(plan.Evaluated))
	if plan.Score > 0 {
		e.hPlanScore.Add(float64(plan.Score))
	}
	if len(plan.Packets) > 1 {
		e.cAggregates.Inc()
		e.cAggregatedPkts.Add(uint64(len(plan.Packets)))
		s.ctr.aggregates++
	}
	return true
}

// eligibleLocked builds the shard's backlog view for one (rail, channel):
// packets admitted by the rail and class policies, in submission order, up
// to the lookahead window. The backlog index lets the uniform filters act
// on whole queues — a class the channel refuses, a destination the rail
// lost — while the per-packet rail policy runs only on merge survivors.
// The merge is by SubmitSeq, the engine-global submission order, so with
// one shard the view is exactly the submission-order scan of the old flat
// backlog, and with many shards each view is the submission-order scan of
// that shard's destinations. The returned slice is shard-owned scratch,
// valid until the shard's next pump. Caller holds s.mu.
func (s *shard) eligibleLocked(b *strategy.Bundle, info strategy.RailInfo, ch, numCh, limit int) []*packet.Packet {
	e := s.eng
	view := s.viewScratch[:0]
	cur := s.curScratch[:0]
	refused := false
	// Weighted per-tenant service: with admission enabled and more than
	// one tenant waiting, no tenant may fill more than its fair share of
	// a bounded lookahead window. The merge stays in SubmitSeq order and a
	// capped tenant's flows are cut at a prefix (tenant is constant per
	// flow), so intra-flow FIFO is preserved exactly as with rail-policy
	// skips. With one tenant — or no quota table — the cap is off and the
	// view is byte-identical to the unweighted scan.
	perTenant := 0
	if limit > 0 && s.tenantActive > 1 && e.adm.Load() != nil {
		perTenant = limit / s.tenantActive
		if perTenant < 1 {
			perTenant = 1
		}
		for i := range s.tenantTaken {
			s.tenantTaken[i] = 0
		}
	}
	for _, q := range s.backlog.list {
		if q.size() == 0 {
			continue
		}
		if !b.Classes.Allowed(q.key.class, ch, numCh) {
			continue
		}
		if !e.railReaches(info.Index, q.key.dst) {
			// A rail that lost this peer does not plan toward it; a sibling
			// rail's pump (or a heal) picks the queue up instead.
			continue
		}
		cur = append(cur, backlogCursor{q: q, pos: q.head})
	}
	for len(cur) > 0 {
		best := -1
		var bestSeq uint64
		for i := range cur {
			c := &cur[i]
			if c.pos >= len(c.q.pkts) {
				continue
			}
			if seq := c.q.pkts[c.pos].SubmitSeq; best < 0 || seq < bestSeq {
				best, bestSeq = i, seq
			}
		}
		if best < 0 {
			break
		}
		c := &cur[best]
		p := c.q.pkts[c.pos]
		c.pos++
		if ok, wb := railEligibleWeighted(b.Rail, p, info); !ok {
			refused = refused || wb
			continue
		}
		if perTenant > 0 {
			if int(s.tenantTaken[p.Tenant]) >= perTenant {
				continue
			}
			s.tenantTaken[p.Tenant]++
		}
		view = append(view, p)
		if limit > 0 && len(view) >= limit {
			break
		}
	}
	if refused {
		// At least one queued packet was refused for a weight-bound reason:
		// flag the shard so the next weight delta's targeted re-pump
		// revisits it (and only shards like it).
		s.railRefused.Store(true)
	}
	s.viewScratch = view[:0]
	s.curScratch = cur[:0]
	return view
}

// popFrameLocked pops the oldest frame off q, keeping its work hint in
// step. Caller holds s.mu.
func (s *shard) popFrameLocked(q *[]*packet.Frame, hint *atomic.Int64) *packet.Frame {
	if len(*q) == 0 {
		return nil
	}
	f := (*q)[0]
	copy(*q, (*q)[1:])
	(*q)[len(*q)-1] = nil
	*q = (*q)[:len(*q)-1]
	hint.Add(-1)
	return f
}

// postLocked hands a frame to the driver and accounts for it. Posting to an
// idle channel must succeed; a busy error here means the engine's view of
// channel state diverged from the driver's, which is a bug worth crashing
// on in the simulator. A race between the chanPump's idle check and a
// concurrent post to the same channel is impossible because every post to
// (ri, ch) happens under that channel's chanPump lock.
//
// ErrPeerDown is the exception: real transports lose peers at any moment,
// and the contract is that a dead destination releases rather than wedges.
// The frame joins the shard's failover queue — to re-travel on a rail that
// still reaches the peer, or to wait out a partition until a heal — instead
// of being dropped: the shard owns the frame until some rail accepts it.
// Caller holds s.mu.
func (s *shard) postLocked(ri, ch int, f *packet.Frame, pkts []*packet.Packet, hostExtra simnet.Duration) {
	e := s.eng
	// Ownership of f transfers to the driver at a successful Post: a wire
	// rail's owner goroutine may serialize and release it concurrently
	// with the accounting below, so everything the trace needs is read
	// BEFORE the handoff. On failure the frame stays ours.
	kind := f.Kind
	wire := f.WireSize()
	// SpanXmit's departure stamp. In-memory only: on simulated fabrics the
	// frame object crosses to the receiver carrying it; on wire rails the
	// encoder ignores it and the receiver's decoded frame reads zero.
	f.Posted = e.rt.Now()
	if err := e.rails[ri].Post(ch, f, hostExtra); err != nil {
		if errors.Is(err, drivers.ErrPeerDown) {
			s.failQ = append(s.failQ, f)
			s.nFail.Add(1)
			e.set.Counter("core.peer_down_posts").Inc()
			e.rec.Record(trace.Event{
				At: e.rt.Now(), Kind: trace.KindFault, Node: e.node,
				A: ri, B: wire, Note: "requeue:peer-down",
			})
			return
		}
		panic(fmt.Sprintf("core: post on %s ch%d failed: %v", e.rails[ri].Name(), ch, err))
	}
	e.cFramesPosted.Inc()
	e.railCtr[ri].Inc()
	s.ctr.framesPosted++
	s.railFrames[ri]++
	e.rec.Record(trace.Event{
		At: e.rt.Now(), Kind: trace.KindPost, Node: e.node,
		A: ri, B: wire, Note: kind.String(),
	})
	if len(pkts) > 0 {
		e.cPacketsSent.Add(uint64(len(pkts)))
		s.ctr.packetsSent += uint64(len(pkts))
	}
}
