package core

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

// Sharded-engine battery. The shard count must be invisible to every
// correctness property: exactly-once in-order delivery, determinism under
// the simulated runtime, and data-race freedom when Submit, metrics
// snapshots, retuning, Flush and Close all run concurrently against the
// wall clock.

// TestShardedExactlyOnceSim runs crisscross traffic (every node sends one
// flow to every other node) through four-shard engines on the simulator
// and checks per-flow in-order exactly-once delivery at every receiver.
func TestShardedExactlyOnceSim(t *testing.T) {
	const nodes = 8
	const perFlow = 12
	tn := newNet(t, nodes, "aggregate", func(o *Options) { o.Shards = 4 })
	for _, eng := range tn.engines {
		if got := eng.Shards(); got != 4 {
			t.Fatalf("engine reports %d shards, want 4", got)
		}
	}
	flow := func(src, dst int) packet.FlowID {
		return packet.FlowID(src*nodes + dst + 1)
	}
	for s := 0; s < perFlow; s++ {
		for src := 0; src < nodes; src++ {
			for dst := 0; dst < nodes; dst++ {
				if dst == src {
					continue
				}
				p := pkt(flow(src, dst), s, packet.NodeID(src), packet.NodeID(dst), 48)
				if err := tn.engines[src].Submit(p); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	tn.cl.Eng.Run()

	for dst := 0; dst < nodes; dst++ {
		next := map[packet.FlowID]int{}
		for _, d := range tn.inbox[dst] {
			if got := next[d.Pkt.Flow]; d.Pkt.Seq != got {
				t.Fatalf("node %d flow %d delivered seq %d, want %d", dst, d.Pkt.Flow, d.Pkt.Seq, got)
			}
			next[d.Pkt.Flow]++
		}
		for src := 0; src < nodes; src++ {
			if src == dst {
				continue
			}
			if n := next[flow(src, dst)]; n != perFlow {
				t.Fatalf("node %d flow from %d incomplete: %d/%d", dst, src, n, perFlow)
			}
		}
	}
}

// TestShardedDeterminism pins that a sharded engine stays bit-for-bit
// deterministic under the single-goroutine simulator: the shards partition
// state, not control flow, so two identical runs must produce identical
// delivery transcripts.
func TestShardedDeterminism(t *testing.T) {
	digest := func() string {
		const nodes = 6
		tn := newNet(t, nodes, "aggregate", func(o *Options) {
			o.Shards = 4
			o.NagleDelay = 2 * simnet.Microsecond
		}, singleChanMX())
		for s := 0; s < 10; s++ {
			for src := 0; src < nodes; src++ {
				dst := (src + 1 + s%(nodes-1)) % nodes
				p := pkt(packet.FlowID(src+1), s, packet.NodeID(src), packet.NodeID(dst), 64+8*s)
				if err := tn.engines[src].Submit(p); err != nil {
					t.Fatal(err)
				}
			}
		}
		tn.cl.Eng.Run()
		var b strings.Builder
		for n := 0; n < nodes; n++ {
			for _, d := range tn.inbox[n] {
				fmt.Fprintf(&b, "%d<-%d f%d s%d l%d;", n, d.Src, d.Pkt.Flow, d.Pkt.Seq, len(d.Pkt.Payload))
			}
		}
		return b.String()
	}
	first := digest()
	if first == "" {
		t.Fatal("empty transcript")
	}
	if second := digest(); second != first {
		t.Fatalf("sharded sim diverged between identical runs:\n run1: %s\n run2: %s", first, second)
	}
}

// TestShardedLoopbackRace is the wall-clock concurrency battery: over real
// TCP sockets, concurrent submitters to several destinations race metrics
// snapshots, rail-weight retunes and Flush on a four-shard engine, and the
// test ends with Close racing Submit. Run under -race this exercises every
// lock tier at once: submit inboxes, shard locks, channel pumps, the
// protocol mutex, and the atomic tuning/bundle swaps.
func TestShardedLoopbackRace(t *testing.T) {
	nodes, cleanup, err := drivers.NewLoopbackCluster(3, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	rt := simnet.NewRealRuntime()

	const flows = 6 // flows 1..3 -> node 1, flows 4..6 -> node 2
	const perFlow = 40
	type rx struct {
		mu   sync.Mutex
		got  []proto.Deliverable
		done chan struct{}
		want int
	}
	mkRx := func(want int) *rx { return &rx{done: make(chan struct{}, 1), want: want} }
	receivers := map[packet.NodeID]*rx{1: mkRx(3 * perFlow), 2: mkRx(3 * perFlow)}

	mkEngine := func(n packet.NodeID, deliver proto.DeliverFunc) *Engine {
		b, err := strategy.New("aggregate")
		if err != nil {
			t.Fatal(err)
		}
		// Swap in the weight-tunable rail scheduler so SetRailWeights has a
		// real target to race against the pumps.
		b.Rail = strategy.NewScheduledRail([]caps.Caps{nodes[n].Caps()})
		eng, err := New(n, Options{
			Bundle:     b,
			Runtime:    rt,
			Rails:      []drivers.Driver{nodes[n]},
			Deliver:    deliver,
			Shards:     4,
			NagleDelay: simnet.FromWall(100 * time.Microsecond),
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	for n, r := range receivers {
		r := r
		_ = mkEngine(n, func(d proto.Deliverable) {
			r.mu.Lock()
			r.got = append(r.got, d)
			if len(r.got) == r.want {
				select {
				case r.done <- struct{}{}:
				default:
				}
			}
			r.mu.Unlock()
		})
	}
	sender := mkEngine(0, func(proto.Deliverable) {})

	stop := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(3)
	go func() { // metrics snapshots with a reused scratch value
		defer aux.Done()
		var scratch Metrics
		for {
			select {
			case <-stop:
				return
			default:
			}
			sender.MetricsInto(&scratch)
			if scratch.Shards != 4 {
				t.Errorf("snapshot Shards = %d, want 4", scratch.Shards)
				return
			}
		}
	}()
	go func() { // rail-weight retunes
		defer aux.Done()
		w := []float64{1}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w[0] = 0.5 + float64(i%2)
			if !sender.SetRailWeights(w) {
				t.Error("SetRailWeights refused on a weight-tunable bundle")
				return
			}
		}
	}()
	go func() { // flushes
		defer aux.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sender.Flush()
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for f := 1; f <= flows; f++ {
		f := f
		dst := packet.NodeID(1)
		if f > flows/2 {
			dst = 2
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < perFlow; s++ {
				p := &packet.Packet{
					Flow: packet.FlowID(f), Msg: 1, Seq: s, Src: 0, Dst: dst,
					Class: packet.ClassSmall, Payload: make([]byte, 96),
				}
				if err := sender.Submit(p); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	sender.Flush()

	for n, r := range receivers {
		select {
		case <-r.done:
		case <-time.After(20 * time.Second):
			r.mu.Lock()
			got := len(r.got)
			r.mu.Unlock()
			t.Fatalf("node %d timed out with %d/%d delivered", n, got, r.want)
		}
	}
	close(stop)
	aux.Wait()

	for n, r := range receivers {
		r.mu.Lock()
		next := map[packet.FlowID]int{}
		for _, d := range r.got {
			if d.Pkt.Seq != next[d.Pkt.Flow] {
				t.Fatalf("node %d flow %d delivered seq %d, want %d", n, d.Pkt.Flow, d.Pkt.Seq, next[d.Pkt.Flow])
			}
			next[d.Pkt.Flow]++
		}
		for f, c := range next {
			if c != perFlow {
				t.Fatalf("node %d flow %d incomplete: %d/%d", n, f, c, perFlow)
			}
		}
		r.mu.Unlock()
	}

	// Close races Submit: late submissions either land before the closed
	// flag or come back with the closed error — nothing panics, nothing
	// deadlocks, and the -race run certifies the shutdown ordering.
	var lateWg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		lateWg.Add(1)
		go func() {
			defer lateWg.Done()
			for s := 0; s < 50; s++ {
				p := &packet.Packet{
					Flow: packet.FlowID(100 + g), Msg: 1, Seq: s, Src: 0, Dst: 1,
					Class: packet.ClassSmall, Payload: make([]byte, 32),
				}
				if err := sender.Submit(p); err != nil {
					return // "engine closed" is the expected terminal answer
				}
			}
		}()
	}
	sender.Close()
	lateWg.Wait()
}
