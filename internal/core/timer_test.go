package core

import (
	"sync"
	"testing"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

// Timer-discipline tests. On the wall-clock runtime a cancelled timer's
// callback can already be committed to a timer goroutine — time.Timer.Stop
// reports false and the callback runs anyway — and a callback can even run
// twice if a test (or a rearm race) captures it. The engine's defense is
// generation counters (nagleGen, rdvTimer.gen) plus the closed flag; these
// tests drive the engine through a hostile runtime that makes the races
// deterministic: it captures every scheduled callback and lets the test
// fire them late, twice, or after cancellation, exactly as a too-late
// Stop() would.

type hostileTimer struct {
	label     string
	fn        func()
	cancelled bool
}

// hostileRuntime implements simnet.Runtime with a manual clock and manual
// timer firing. CancelFunc marks the timer cancelled but does NOT prevent
// the test from invoking the captured callback — modelling the wall-clock
// runtime's Stop()-returned-false window.
type hostileRuntime struct {
	mu     sync.Mutex
	now    simnet.Time
	timers []*hostileTimer
}

func (h *hostileRuntime) Now() simnet.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.now
}

func (h *hostileRuntime) Schedule(d simnet.Duration, label string, fn func()) simnet.CancelFunc {
	h.mu.Lock()
	t := &hostileTimer{label: label, fn: fn}
	h.timers = append(h.timers, t)
	h.mu.Unlock()
	return func() bool {
		h.mu.Lock()
		defer h.mu.Unlock()
		if t.cancelled {
			return false
		}
		t.cancelled = true
		return true
	}
}

// snapshot returns the timers captured so far.
func (h *hostileRuntime) snapshot() []*hostileTimer {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]*hostileTimer(nil), h.timers...)
}

// newHostileEngine builds a node-0 engine over sim rails but with the
// hostile runtime supplying time and timers. The sim clock never advances,
// so posted frames are never delivered — which is exactly what these tests
// want: a rendezvous whose CTS never comes, a Nagle delay that never
// expires on its own.
func newHostileEngine(t *testing.T, rt *hostileRuntime, mutate func(*Options)) *Engine {
	t.Helper()
	cl, err := drivers.NewCluster(2, caps.MX)
	if err != nil {
		t.Fatal(err)
	}
	b, err := strategy.New("aggregate")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Bundle:  b,
		Runtime: rt,
		Rails:   []drivers.Driver{cl.Driver(0, "mx")},
		Deliver: func(proto.Deliverable) {},
	}
	if mutate != nil {
		mutate(&opt)
	}
	eng, err := New(0, opt)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestRdvRetryStaleFireInert pins the generation guard on rendezvous retry
// timers. Sequence: retry T0 is armed, fires legitimately (retry #1, which
// arms T1), and then T0's captured callback fires a second time — the
// wall-clock "cancelled/superseded but already running" race. Without the
// generation check the stale fire looks up the token, finds T1's map
// entry, consumes it, and re-sends — forking a duplicate retry chain and
// double-counting retries. With the guard the stale fire is inert.
func TestRdvRetryStaleFireInert(t *testing.T) {
	rt := &hostileRuntime{}
	eng := newHostileEngine(t, rt, func(o *Options) {
		o.RdvThreshold = 64
		o.RdvRetry = simnet.Millisecond
	})

	// A packet above the threshold goes rendezvous and arms retry T0.
	if err := eng.Submit(pkt(1, 0, 0, 1, 1024)); err != nil {
		t.Fatal(err)
	}
	timers := rt.snapshot()
	if len(timers) != 1 || timers[0].label != "core.rdv-retry" {
		t.Fatalf("expected one armed rdv-retry timer, got %+v", timers)
	}
	t0 := timers[0]

	// Legitimate fire: no CTS arrived, so the engine re-sends the RTS and
	// arms the next backoff window T1.
	t0.fn()
	if got := eng.Metrics().RdvRetries; got != 1 {
		t.Fatalf("after first fire: RdvRetries = %d, want 1", got)
	}
	if n := len(rt.snapshot()); n != 2 {
		t.Fatalf("after first fire: %d timers captured, want 2 (T0 spent, T1 armed)", n)
	}

	// Stale double fire of T0. The token is still ungranted, so a guardless
	// engine would consume T1's arming and retry again.
	t0.fn()
	if got := eng.Metrics().RdvRetries; got != 1 {
		t.Fatalf("stale fire retried: RdvRetries = %d, want 1", got)
	}
	if n := len(rt.snapshot()); n != 2 {
		t.Fatalf("stale fire re-armed: %d timers captured, want 2", n)
	}

	// T1 is still the live arming: its legitimate fire must still work.
	t1 := rt.snapshot()[1]
	t1.fn()
	if got := eng.Metrics().RdvRetries; got != 2 {
		t.Fatalf("live timer dead after stale fire: RdvRetries = %d, want 2", got)
	}
}

// TestCloseCancelsAllTimers pins Engine.Close timer hygiene: every armed
// timer — the per-shard Nagle delays and all rendezvous retries — is
// cancelled under its owning lock, and a callback that was already in
// flight when Close ran (cancel-too-late) finds the engine inert.
func TestCloseCancelsAllTimers(t *testing.T) {
	rt := &hostileRuntime{}
	eng := newHostileEngine(t, rt, func(o *Options) {
		o.RdvThreshold = 256
		o.RdvRetry = simnet.Millisecond
		o.NagleDelay = simnet.Millisecond
		o.NagleFlushCount = 100
	})

	// One small eager packet arms the Nagle delay; one large packet goes
	// rendezvous and arms a retry.
	if err := eng.Submit(pkt(1, 0, 0, 1, 16)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(pkt(2, 0, 0, 1, 1024)); err != nil {
		t.Fatal(err)
	}
	timers := rt.snapshot()
	want := map[string]bool{"core.nagle": false, "core.rdv-retry": false}
	for _, tm := range timers {
		want[tm.label] = true
	}
	for label, seen := range want {
		if !seen {
			t.Fatalf("timer %q never armed; captured %d timers", label, len(timers))
		}
	}

	eng.Close()
	for _, tm := range rt.snapshot() {
		if !tm.cancelled {
			t.Errorf("Close left timer %q armed", tm.label)
		}
	}

	// Cancel-too-late: fire every captured callback anyway. A closed
	// engine must treat them as no-ops — no panic, no counters moving.
	for _, tm := range rt.snapshot() {
		tm.fn()
		tm.fn() // and twice, for good measure
	}
	m := eng.Metrics()
	if m.NagleFires != 0 {
		t.Errorf("late nagle fire counted: NagleFires = %d", m.NagleFires)
	}
	if m.RdvRetries != 0 {
		t.Errorf("late rdv-retry fire counted: RdvRetries = %d", m.RdvRetries)
	}
}

// TestNagleStaleFireInert pins the same generation discipline on the
// per-shard Nagle timer: a fire that lost the race against a disarm (Flush
// here) must not flush a delay armed afterwards.
func TestNagleStaleFireInert(t *testing.T) {
	rt := &hostileRuntime{}
	eng := newHostileEngine(t, rt, func(o *Options) {
		o.NagleDelay = simnet.Millisecond
		o.NagleFlushCount = 100
	})

	if err := eng.Submit(pkt(1, 0, 0, 1, 16)); err != nil {
		t.Fatal(err)
	}
	timers := rt.snapshot()
	if len(timers) != 1 || timers[0].label != "core.nagle" {
		t.Fatalf("expected one armed nagle timer, got %+v", timers)
	}
	t0 := timers[0]

	eng.Flush() // disarms T0 (cut early), drains the backlog

	// Re-arm with a fresh submission.
	if err := eng.Submit(pkt(1, 1, 0, 1, 16)); err != nil {
		t.Fatal(err)
	}

	// T0's late fire must not flush the new arming.
	t0.fn()
	m := eng.Metrics()
	if m.NagleFires != 0 {
		t.Fatalf("stale nagle fire flushed a later arming: NagleFires = %d", m.NagleFires)
	}
	if m.NagleEarly != 1 {
		t.Fatalf("NagleEarly = %d, want 1 (the Flush)", m.NagleEarly)
	}
}
