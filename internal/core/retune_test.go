package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

// TestRetuneUnderLiveTraffic hammers every runtime setter — the knobs the
// adaptive controller drives — from a tuner goroutine while real-socket
// traffic flows through the engine, under the race detector. The sweeps in
// internal/exp only ever retune between runs; a controller retunes *during*
// one, with idle upcalls arriving from sender goroutines and deliveries
// from reader goroutines, so every setter must be safe against the hot
// path. The test asserts no packet is lost or reordered regardless of how
// the tuning churns mid-flight.
func TestRetuneUnderLiveTraffic(t *testing.T) {
	nodes, cleanup, err := drivers.NewLoopbackCluster(2, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()

	rt := simnet.NewRealRuntime()
	const flows = 4
	const total = 400

	var mu sync.Mutex
	next := map[packet.FlowID]int{}
	delivered := 0
	done := make(chan struct{})
	recv := func(d proto.Deliverable) {
		mu.Lock()
		defer mu.Unlock()
		if d.Pkt.Seq != next[d.Pkt.Flow] {
			t.Errorf("flow %d delivered seq %d, want %d", d.Pkt.Flow, d.Pkt.Seq, next[d.Pkt.Flow])
		}
		next[d.Pkt.Flow]++
		delivered++
		if delivered == total {
			close(done)
		}
	}

	mkEngine := func(n packet.NodeID, deliver proto.DeliverFunc) *Engine {
		b, err := strategy.New("aggregate")
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(n, Options{
			Bundle:  b,
			Runtime: rt,
			Rails:   []drivers.Driver{nodes[n]},
			Deliver: deliver,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	_ = mkEngine(1, recv)
	sender := mkEngine(0, func(proto.Deliverable) {})

	var retunes atomic.Int64
	sender.SetRetuneObserver(func(RetuneEvent) { retunes.Add(1) })

	// The tuner: churn every knob as fast as possible until the traffic
	// completes, reading the metrics surface between writes exactly as a
	// controller tick does.
	stop := make(chan struct{})
	var tunerWg sync.WaitGroup
	tunerWg.Add(1)
	go func() {
		defer tunerWg.Done()
		bundles := []string{"fifo", "aggregate", "search", "adaptive"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 6 {
			case 0:
				sender.SetNagle(simnet.Duration(i%3)*simnet.FromWall(50*time.Microsecond), i%8)
			case 1:
				sender.SetLookahead(i % 16)
			case 2:
				b, err := strategy.New(bundles[i%len(bundles)])
				if err != nil {
					t.Error(err)
					return
				}
				if err := sender.SetBundle(b); err != nil {
					t.Error(err)
					return
				}
			case 3:
				sender.SetSearchBudget(i % 32)
			case 4:
				sender.SetRdvThreshold((i % 4) << 12)
			case 5:
				m := sender.Metrics()
				// Eager packets leave through backlog plans only, so the
				// sent tally can never outrun submissions — regardless of
				// how the threshold churn splits eager vs rendezvous.
				if m.PacketsSent > m.Submitted {
					t.Errorf("metrics inconsistent: %d packets sent of %d submitted", m.PacketsSent, m.Submitted)
					return
				}
				_ = sender.BacklogLen()
			}
		}
	}()

	var wg sync.WaitGroup
	for f := 1; f <= flows; f++ {
		f := f
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := 0; s < total/flows; s++ {
				p := &packet.Packet{
					Flow: packet.FlowID(f), Msg: 1, Seq: s, Src: 0, Dst: 1,
					Class: packet.ClassSmall, Payload: make([]byte, 64),
				}
				if err := sender.Submit(p); err != nil {
					t.Error(err)
					return
				}
				if s%16 == 0 {
					sender.Flush()
				}
			}
		}()
	}
	wg.Wait()
	// Tuning may have parked the tail behind an artificial delay with a
	// high flush count; keep flushing until everything lands.
	flushTick := time.NewTicker(10 * time.Millisecond)
	defer flushTick.Stop()
	deadline := time.After(20 * time.Second)
	for {
		select {
		case <-done:
			close(stop)
			tunerWg.Wait()
			if retunes.Load() == 0 {
				t.Fatal("retune observer saw no events")
			}
			mu.Lock()
			defer mu.Unlock()
			for f := 1; f <= flows; f++ {
				if next[packet.FlowID(f)] != total/flows {
					t.Fatalf("flow %d incomplete: %d of %d", f, next[packet.FlowID(f)], total/flows)
				}
			}
			return
		case <-flushTick.C:
			sender.SetNagle(0, 0)
			sender.Flush()
		case <-deadline:
			close(stop)
			tunerWg.Wait()
			mu.Lock()
			n := delivered
			mu.Unlock()
			t.Fatalf("timed out with %d/%d delivered", n, total)
		}
	}
}
