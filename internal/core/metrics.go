package core

import (
	"newmad/internal/simnet"
	"newmad/internal/trace"
)

// The engine's observation surface for closed-loop control
// (internal/control): a point-in-time snapshot of per-engine activity
// counters plus the tuning currently in effect. Counters here are engine-
// private — unlike the stats.Set, which experiments routinely share across
// the engines of one rig — so a controller watching one node never sees a
// neighbour's traffic folded into its evidence.

// counters is the engine-private activity tally, guarded by Engine.mu.
type counters struct {
	submitted      uint64
	submittedBytes uint64
	submittedCtrl  uint64
	eagerBytes     uint64
	rdvBytes       uint64
	framesPosted   uint64
	packetsSent    uint64
	aggregates     uint64
	idleUpcalls    uint64
	nagleFires     uint64 // delay timer expired and triggered a pump
	nagleEarly     uint64 // delay cut short by backlog pressure or Flush
	delivered      uint64

	// Resilience counters (the chaos observation surface).
	framesReclaimed uint64 // frames handed back by failing rails
	failovers       uint64 // failover-queue frames re-posted on a live rail
	rdvRetries      uint64 // rendezvous RTS retries fired
}

// Metrics is a point-in-time snapshot of one engine: queue depths, activity
// counters since construction, and the runtime tuning currently in effect.
// Rates and ratios are left to the observer (internal/control derives them
// over sliding windows); the engine reports only exact totals.
type Metrics struct {
	// Now is the engine clock at snapshot time.
	Now simnet.Time

	// Queue depths at snapshot time.
	Backlog    int
	CtrlQueued int
	BulkQueued int

	// Activity totals since the engine was created.
	Submitted      uint64
	SubmittedBytes uint64
	SubmittedCtrl  uint64 // control-class submissions (class mix evidence)
	EagerBytes     uint64 // bytes routed eager at submission
	RdvBytes       uint64 // bytes routed rendezvous at submission
	FramesPosted   uint64
	PacketsSent    uint64
	Aggregates     uint64 // frames carrying more than one packet
	IdleUpcalls    uint64 // scheduler activations
	NagleFires     uint64 // artificial delays that ran to their timer
	NagleEarly     uint64 // artificial delays cut short by backlog pressure
	Delivered      uint64

	// RailFrames is the per-rail frame count, indexed like Rails().
	RailFrames []uint64

	// Resilience surface: what the failure machinery has been doing.
	FramesReclaimed uint64   // frames handed back by failing rails
	Failovers       uint64   // reclaimed/refused frames re-posted on a live rail
	FailoverQueued  int      // frames still waiting for any rail to their peer
	RdvRetries      uint64   // rendezvous RTS retries fired
	RailDowns       []uint64 // per-rail peer-down events, indexed like Rails()

	// The tuning in effect.
	Lookahead       int
	NagleDelay      simnet.Duration
	NagleFlushCount int
	SearchBudget    int
	RdvThreshold    int
	Bundle          string
}

// Metrics returns a consistent snapshot of the engine's observation surface.
func (e *Engine) Metrics() Metrics {
	var m Metrics
	e.MetricsInto(&m)
	return m
}

// MetricsInto fills m with a consistent snapshot, reusing m's RailFrames
// and RailDowns backing arrays when they have capacity. Samplers that
// snapshot every node per tick (internal/control, the testnet's telemetry
// sweep) hold one scratch Metrics per engine and pay zero allocations per
// sample; Metrics() is the convenience form for one-shot callers. Callers
// that retain a previous snapshot for windowed deltas must keep two
// scratch values and alternate — the slices are overwritten in place.
func (e *Engine) MetricsInto(m *Metrics) {
	e.mu.Lock()
	defer e.mu.Unlock()
	*m = Metrics{
		Now:             e.rt.Now(),
		Backlog:         e.backlog.size,
		CtrlQueued:      len(e.ctrlQ),
		BulkQueued:      len(e.bulkQ),
		Submitted:       e.ctr.submitted,
		SubmittedBytes:  e.ctr.submittedBytes,
		SubmittedCtrl:   e.ctr.submittedCtrl,
		EagerBytes:      e.ctr.eagerBytes,
		RdvBytes:        e.ctr.rdvBytes,
		FramesPosted:    e.ctr.framesPosted,
		PacketsSent:     e.ctr.packetsSent,
		Aggregates:      e.ctr.aggregates,
		IdleUpcalls:     e.ctr.idleUpcalls,
		NagleFires:      e.ctr.nagleFires,
		NagleEarly:      e.ctr.nagleEarly,
		Delivered:       e.ctr.delivered,
		RailFrames:      append(m.RailFrames[:0], e.railFrames...),
		FramesReclaimed: e.ctr.framesReclaimed,
		Failovers:       e.ctr.failovers,
		FailoverQueued:  len(e.failQ),
		RdvRetries:      e.ctr.rdvRetries,
		RailDowns:       append(m.RailDowns[:0], e.railDowns...),
		Lookahead:       e.cfg.Lookahead,
		NagleDelay:      e.cfg.NagleDelay,
		NagleFlushCount: e.cfg.NagleFlushCount,
		SearchBudget:    e.cfg.SearchBudget,
		RdvThreshold:    e.cfg.RdvThreshold,
		Bundle:          e.bundle.Name,
	}
}

// RetuneEvent describes one runtime tuning change, delivered to the
// engine's retune observer: which knob moved and how.
type RetuneEvent struct {
	At   simnet.Time
	Knob string // "bundle", "lookahead", "nagle", "budget", "rdv-threshold", "rail-weights"
	Note string // human-readable "knob=value" rendering
}

// SetRetuneObserver installs fn to be called after every runtime tuning
// change (SetBundle, SetLookahead, SetNagle, SetSearchBudget,
// SetRdvThreshold, SetRailWeights). Pass nil to remove it. The observer runs outside the
// engine lock and may call back into the engine.
func (e *Engine) SetRetuneObserver(fn func(RetuneEvent)) {
	e.mu.Lock()
	e.retuneObs = fn
	e.mu.Unlock()
}

// notifyRetune records the change on the trace and invokes the observer.
// Call without holding e.mu.
func (e *Engine) notifyRetune(ev RetuneEvent) {
	e.rec.Record(trace.Event{At: ev.At, Kind: trace.KindPolicy, Node: e.node, Note: ev.Note})
	e.mu.Lock()
	obs := e.retuneObs
	e.mu.Unlock()
	if obs != nil {
		obs(ev)
	}
}
