package core

import (
	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/trace"
)

// The engine's observation surface for closed-loop control
// (internal/control): a point-in-time snapshot of per-engine activity
// counters plus the tuning currently in effect. Counters here are engine-
// private — unlike the stats.Set, which experiments routinely share across
// the engines of one rig — so a controller watching one node never sees a
// neighbour's traffic folded into its evidence.

// counters is one shard's slice of the engine-private activity tally,
// guarded by that shard's mu. MetricsInto sums the slices; delivery and
// rendezvous-retry tallies live on the engine under pmu (they belong to
// the protocol side, not to any shard), and idle upcalls are a plain
// engine atomic.
type counters struct {
	submitted      uint64
	submittedBytes uint64
	submittedCtrl  uint64
	eagerBytes     uint64
	rdvBytes       uint64
	framesPosted   uint64
	packetsSent    uint64
	aggregates     uint64
	nagleFires     uint64 // delay timer expired and triggered a pump
	nagleEarly     uint64 // delay cut short by backlog pressure or Flush

	// Resilience counters (the chaos observation surface).
	framesReclaimed uint64 // frames handed back by failing rails
	failovers       uint64 // failover-queue frames re-posted on a live rail
}

// Metrics is a point-in-time snapshot of one engine: queue depths, activity
// counters since construction, and the runtime tuning currently in effect.
// Rates and ratios are left to the observer (internal/control derives them
// over sliding windows); the engine reports only exact totals.
type Metrics struct {
	// Now is the engine clock at snapshot time.
	Now simnet.Time

	// Queue depths at snapshot time.
	Backlog    int
	CtrlQueued int
	BulkQueued int

	// Activity totals since the engine was created.
	Submitted      uint64
	SubmittedBytes uint64
	SubmittedCtrl  uint64 // control-class submissions (class mix evidence)
	EagerBytes     uint64 // bytes routed eager at submission
	RdvBytes       uint64 // bytes routed rendezvous at submission
	FramesPosted   uint64
	PacketsSent    uint64
	Aggregates     uint64 // frames carrying more than one packet
	IdleUpcalls    uint64 // scheduler activations
	NagleFires     uint64 // artificial delays that ran to their timer
	NagleEarly     uint64 // artificial delays cut short by backlog pressure
	Delivered      uint64

	// RailFrames is the per-rail frame count, indexed like Rails().
	RailFrames []uint64

	// Resilience surface: what the failure machinery has been doing.
	FramesReclaimed uint64   // frames handed back by failing rails
	Failovers       uint64   // reclaimed/refused frames re-posted on a live rail
	FailoverQueued  int      // frames still waiting for any rail to their peer
	RdvRetries      uint64   // rendezvous RTS retries fired
	RailDowns       []uint64 // per-rail peer-down events, indexed like Rails()

	// Tenants is the per-tenant admission surface, one entry per tenant
	// with admission state, ordered by tenant id. Empty when the engine
	// has no quota table. The controller's quota multiplier loop reads
	// backlog pressure from here; telemetry exports it per node and rolls
	// it up per fleet.
	Tenants []TenantMetrics

	// The tuning in effect.
	Lookahead       int
	NagleDelay      simnet.Duration
	NagleFlushCount int
	SearchBudget    int
	RdvThreshold    int
	Bundle          string
	// Shards is the engine's pump-shard count (1 = the legacy serialized
	// layout). Constant for the engine's lifetime; snapshotted so fleet
	// telemetry can tell sharded and serialized nodes apart.
	Shards int
}

// TenantMetrics is one tenant's slice of the admission surface: the quota
// in effect, the live backlog charge, and the admit/refuse tallies since
// the tenant was configured.
type TenantMetrics struct {
	Tenant    packet.TenantID
	Submitted uint64 // packets admitted
	Throttled uint64 // rate refusals (ErrThrottled)
	OverQuota uint64 // backlog-quota refusals (ErrQuotaExceeded)
	Backlog   int64  // eager packets admitted and not yet planned

	// Quota echo, so observers see rate limit and pressure in one row.
	RatePPS      float64
	Burst        int
	BacklogQuota int
}

// Metrics returns a consistent snapshot of the engine's observation surface.
func (e *Engine) Metrics() Metrics {
	var m Metrics
	e.MetricsInto(&m)
	return m
}

// MetricsInto fills m with a snapshot, reusing m's RailFrames and RailDowns
// backing arrays when they have capacity. Samplers that snapshot every node
// per tick (internal/control, the testnet's telemetry sweep) hold one
// scratch Metrics per engine and pay zero allocations per sample;
// Metrics() is the convenience form for one-shot callers. Callers that
// retain a previous snapshot for windowed deltas must keep two scratch
// values and alternate — the slices are overwritten in place.
//
// On a sharded engine the snapshot is a merge: each shard is summed under
// its own lock, then the protocol-side tallies are read under pmu. Each
// shard's contribution is internally consistent, but the merge is not one
// global atomic cut — totals are exact once the engine quiesces, and
// monotone per shard while it runs, which is all the windowed-delta
// controllers need. With one shard (the deterministic-simulation layout)
// every upcall is serialized anyway and the snapshot is exact, as before.
func (e *Engine) MetricsInto(m *Metrics) {
	tun := e.tun.Load()
	*m = Metrics{
		Now:             e.rt.Now(),
		IdleUpcalls:     e.idleUps.Load(),
		RailFrames:      m.RailFrames[:0],
		RailDowns:       m.RailDowns[:0],
		Tenants:         m.Tenants[:0],
		Lookahead:       tun.lookahead,
		NagleDelay:      tun.nagleDelay,
		NagleFlushCount: tun.nagleFlush,
		SearchBudget:    tun.searchBudget,
		RdvThreshold:    tun.rdvThreshold,
		Bundle:          e.bundle.Load().Name,
		Shards:          len(e.shards),
	}
	for range e.rails {
		m.RailFrames = append(m.RailFrames, 0)
	}
	for _, s := range e.shards {
		s.mergeInto(m)
	}
	if a := e.adm.Load(); a != nil {
		for _, ts := range a.states {
			if ts == nil {
				continue
			}
			q := ts.quota.Load()
			m.Tenants = append(m.Tenants, TenantMetrics{
				Tenant:       ts.id,
				Submitted:    ts.submitted.Load(),
				Throttled:    ts.throttled.Load(),
				OverQuota:    ts.overQuota.Load(),
				Backlog:      ts.backlog.Load(),
				RatePPS:      q.Rate,
				Burst:        q.Burst,
				BacklogQuota: q.Backlog,
			})
		}
	}
	e.pmu.Lock()
	m.Delivered = e.ctrDelivered
	m.RdvRetries = e.ctrRdvRetries
	m.RailDowns = append(m.RailDowns, e.railDowns...)
	e.pmu.Unlock()
}

// RetuneEvent describes one runtime tuning change, delivered to the
// engine's retune observer: which knob moved and how.
type RetuneEvent struct {
	At   simnet.Time
	Knob string // "bundle", "lookahead", "nagle", "budget", "rdv-threshold", "rail-weights", "tenant-quota"
	Note string // human-readable "knob=value" rendering
}

// SetRetuneObserver installs fn to be called after every runtime tuning
// change (SetBundle, SetLookahead, SetNagle, SetSearchBudget,
// SetRdvThreshold, SetRailWeights). Pass nil to remove it. The observer runs outside the
// engine locks and may call back into the engine.
func (e *Engine) SetRetuneObserver(fn func(RetuneEvent)) {
	e.pmu.Lock()
	e.retuneObs = fn
	e.pmu.Unlock()
}

// retuneObserver reads the installed observer under pmu.
func (e *Engine) retuneObserver() func(RetuneEvent) {
	e.pmu.Lock()
	obs := e.retuneObs
	e.pmu.Unlock()
	return obs
}

// notifyRetune records the change on the trace and invokes the observer.
// Call without holding any engine lock.
func (e *Engine) notifyRetune(ev RetuneEvent) {
	e.rec.Record(trace.Event{At: ev.At, Kind: trace.KindPolicy, Node: e.node, Note: ev.Note})
	if obs := e.retuneObserver(); obs != nil {
		obs(ev)
	}
}
