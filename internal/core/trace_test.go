package core

import (
	"testing"

	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
	"newmad/internal/trace"
)

// TestEngineTraceTimeline verifies the flight recorder captures the full
// lifecycle in causal order: submit → (nagle) → plan → post → recv →
// deliver, with idle upcalls interleaved.
func TestEngineTraceTimeline(t *testing.T) {
	cl, err := drivers.NewCluster(2, singleChanMX())
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(1024)
	mk := func(n packet.NodeID) *Engine {
		b, _ := strategy.New("aggregate")
		eng, err := New(n, Options{
			Bundle:          b,
			Runtime:         cl.Eng,
			Rails:           []drivers.Driver{cl.Driver(n, "mx")},
			Deliver:         func(proto.Deliverable) {},
			Stats:           cl.Stats,
			Trace:           rec,
			NagleDelay:      2 * simnet.Microsecond,
			NagleFlushCount: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	src := mk(0)
	mk(1)

	for i := 0; i < 4; i++ {
		if err := src.Submit(pkt(packet.FlowID(i+1), 0, 0, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	cl.Eng.Run()

	sum := rec.Summary()
	if sum[trace.KindSubmit] != 4 {
		t.Fatalf("submits = %d", sum[trace.KindSubmit])
	}
	if sum[trace.KindNagleArm] != 1 || sum[trace.KindNagleFire] != 1 {
		t.Fatalf("nagle events = %d/%d", sum[trace.KindNagleArm], sum[trace.KindNagleFire])
	}
	if sum[trace.KindPlan] == 0 || sum[trace.KindPost] == 0 {
		t.Fatal("no plan/post events")
	}
	if sum[trace.KindRecv] == 0 || sum[trace.KindDeliver] != 4 {
		t.Fatalf("recv=%d deliver=%d", sum[trace.KindRecv], sum[trace.KindDeliver])
	}

	// Causality: the first PLAN must come after the NAGLE! fire; every
	// DELIVER after the first POST.
	evs := rec.Events()
	idx := func(k trace.Kind) int {
		for i, e := range evs {
			if e.Kind == k {
				return i
			}
		}
		return -1
	}
	if idx(trace.KindNagleFire) > idx(trace.KindPlan) {
		t.Fatal("plan before nagle fire")
	}
	if idx(trace.KindPost) > idx(trace.KindDeliver) {
		t.Fatal("deliver before any post")
	}
	// The aggregated plan should cover all four packets in one frame.
	plans := rec.Filter(trace.KindPlan)
	if len(plans) == 0 || plans[0].A != 4 {
		t.Fatalf("first plan carried %d packets, want 4", plans[0].A)
	}
	if rec.Dump() == "" {
		t.Fatal("empty dump")
	}
}

// TestEngineTraceRendezvous checks rendezvous grants are recorded.
func TestEngineTraceRendezvous(t *testing.T) {
	cl2, err := drivers.NewCluster(2, singleChanMX())
	if err != nil {
		t.Fatal(err)
	}
	rec2 := trace.New(256)
	var engines [2]*Engine
	for n := packet.NodeID(0); n < 2; n++ {
		b, _ := strategy.New("aggregate")
		eng, err := New(n, Options{
			Bundle:  b,
			Runtime: cl2.Eng,
			Rails:   []drivers.Driver{cl2.Driver(n, "mx")},
			Deliver: func(proto.Deliverable) {},
			Stats:   cl2.Stats,
			Trace:   rec2,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[n] = eng
	}
	big := pkt(1, 0, 0, 1, 64<<10)
	big.Class = packet.ClassBulk
	if err := engines[0].Submit(big); err != nil {
		t.Fatal(err)
	}
	cl2.Eng.Run()
	grants := rec2.Filter(trace.KindRdv)
	if len(grants) != 1 || grants[0].Note != "granted" {
		t.Fatalf("rdv trace events = %v", grants)
	}
	if grants[0].A != 64<<10 {
		t.Fatalf("granted size = %d", grants[0].A)
	}
}
