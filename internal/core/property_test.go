package core

import (
	"testing"

	"newmad/internal/caps"
	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

// Engine-level properties that must hold for EVERY strategy bundle in the
// database, under randomized multi-flow, multi-destination, multi-size
// workloads:
//
//  1. Conservation — every submitted packet is delivered exactly once.
//  2. Connection FIFO — per (flow, destination), delivery order equals
//     submission order.
//  3. Integrity — payloads arrive unmodified.
//  4. Termination — the simulation drains (no livelock/deadlock).
func TestEveryBundleSatisfiesEngineInvariants(t *testing.T) {
	for _, bundleName := range strategy.Names() {
		bundleName := bundleName
		t.Run(bundleName, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				runInvariantWorkload(t, bundleName, seed)
			}
		})
	}
}

func runInvariantWorkload(t *testing.T, bundleName string, seed uint64) {
	t.Helper()
	const nodes = 4
	tn := newNet(t, nodes, bundleName, func(o *Options) {
		o.NagleDelay = 3 * simnet.Microsecond
		o.SearchBudget = 8
	}, singleChanMX())

	rng := simnet.NewRNG(seed)
	type conn struct {
		flow packet.FlowID
		dst  packet.NodeID
	}
	type connSeq struct {
		flow packet.FlowID
		dst  packet.NodeID
		seq  int
	}
	seqs := map[conn]int{}
	expected := map[packet.NodeID]int{}
	sums := map[connSeq]byte{}

	const total = 400
	for i := 0; i < total; i++ {
		src := packet.NodeID(rng.Intn(nodes))
		dst := packet.NodeID(rng.Intn(nodes))
		for dst == src {
			dst = packet.NodeID(rng.Intn(nodes))
		}
		flow := packet.FlowID(rng.Range(1, 6))
		k := conn{flow, dst}
		size := rng.Pareto(4, 20000, 1.2)
		p := &packet.Packet{
			Flow: flow, Msg: 1, Seq: seqs[k], Last: true,
			Src: src, Dst: dst,
			Class:   packet.ClassID(rng.Intn(int(packet.NumClasses))),
			Recv:    packet.RecvMode(rng.Intn(2)),
			Payload: make([]byte, size),
		}
		// Express packets must stay eager; large express would violate the
		// MaxAggregate frame limit assumption in some drivers, keep them
		// small like real headers.
		if p.Recv == packet.RecvExpress && size > 4096 {
			p.Payload = p.Payload[:1024]
		}
		var sum byte
		for j := range p.Payload {
			p.Payload[j] = byte(rng.Intn(256))
			sum += p.Payload[j]
		}
		// Connection-level seq counter must be per (flow, src→dst); the
		// flows here are node-scoped so include src in the key via flow
		// numbering — simplest is a per-src flow id offset.
		p.Flow = flow + packet.FlowID(int(src)*10)
		k = conn{p.Flow, dst}
		p.Seq = seqs[k]
		seqs[k]++
		sums[connSeq{p.Flow, p.Dst, p.Seq}] = sum
		expected[dst]++

		eng := tn.engines[src]
		at := simnet.Time(rng.Intn(3_000_000))
		tn.cl.Eng.At(at, "prop.submit", func() {
			if err := eng.Submit(p); err != nil {
				t.Errorf("submit: %v", err)
			}
		})
	}

	tn.cl.Eng.Run()

	// 4. Termination: Run returned. 1. Conservation per node.
	for n := 0; n < nodes; n++ {
		if len(tn.inbox[n]) != expected[packet.NodeID(n)] {
			t.Fatalf("bundle %s seed %d: node %d delivered %d of %d",
				bundleName, seed, n, len(tn.inbox[n]), expected[packet.NodeID(n)])
		}
	}
	// 2. Per-connection FIFO and 3. integrity.
	next := map[conn]int{}
	for n := 0; n < nodes; n++ {
		for _, d := range tn.inbox[n] {
			k := conn{d.Pkt.Flow, d.Pkt.Dst}
			if d.Pkt.Seq != next[k] {
				t.Fatalf("bundle %s seed %d: connection %v delivered seq %d, want %d",
					bundleName, seed, k, d.Pkt.Seq, next[k])
			}
			next[k]++
			var sum byte
			for _, b := range d.Pkt.Payload {
				sum += b
			}
			if sum != sums[connSeq{d.Pkt.Flow, d.Pkt.Dst, d.Pkt.Seq}] {
				t.Fatalf("bundle %s seed %d: payload of %v corrupted", bundleName, seed, d.Pkt.Key())
			}
		}
	}
}

// TestEightNodeStress runs a denser topology (8 nodes, multi-rail) to
// exercise rail selection, many reassemblers and cross-node rendezvous at
// once.
func TestEightNodeStress(t *testing.T) {
	const nodes = 8
	elan2 := caps.Elan
	elan2.Channels = 2
	tn := newNet(t, nodes, "aggregate", nil, singleChanMX(), elan2)
	rng := simnet.NewRNG(17)
	expected := map[packet.NodeID]int{}
	seqs := map[[2]int]int{}
	const total = 600
	for i := 0; i < total; i++ {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes)
		for dst == src {
			dst = rng.Intn(nodes)
		}
		key := [2]int{src, dst}
		p := pkt(packet.FlowID(src+1), seqs[key], packet.NodeID(src), packet.NodeID(dst), rng.Pareto(8, 60000, 1.3))
		if p.Size() > 8192 {
			p.Class = packet.ClassBulk
		}
		seqs[key]++
		expected[packet.NodeID(dst)]++
		eng := tn.engines[src]
		// Dense arrivals: 600 packets within 300 µs keep every rail busy.
		tn.cl.Eng.At(simnet.Time(rng.Intn(300_000)), "stress", func() {
			if err := eng.Submit(p); err != nil {
				t.Error(err)
			}
		})
	}
	tn.cl.Eng.Run()
	for n := 0; n < nodes; n++ {
		if len(tn.inbox[n]) != expected[packet.NodeID(n)] {
			t.Fatalf("node %d delivered %d of %d", n, len(tn.inbox[n]), expected[packet.NodeID(n)])
		}
	}
	// Both technologies must have carried traffic.
	if tn.cl.Stats.CounterValue("core.rail.mx.frames") == 0 ||
		tn.cl.Stats.CounterValue("core.rail.elan.frames") == 0 {
		t.Fatal("a rail sat idle through the stress run")
	}
}

// TestRdvConcurrencyCapThroughEngines verifies the receiver-side rendezvous
// admission limit holds end to end.
func TestRdvConcurrencyCapThroughEngines(t *testing.T) {
	tn := newNet(t, 2, "aggregate", func(o *Options) {
		o.RdvMaxConcurrent = 1
	}, singleChanMX())
	for i := 0; i < 4; i++ {
		big := pkt(packet.FlowID(i+1), 0, 0, 1, 64<<10)
		big.Class = packet.ClassBulk
		if err := tn.engines[0].Submit(big); err != nil {
			t.Fatal(err)
		}
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[1]) != 4 {
		t.Fatalf("delivered %d of 4 rendezvous transfers", len(tn.inbox[1]))
	}
	if got := tn.cl.Stats.CounterValue("core.rdv_granted"); got != 4 {
		t.Fatalf("granted %d", got)
	}
}

// TestMixedBundlesAcrossNodes: nodes may run different strategies (the
// engine is per-node); traffic between them must still satisfy FIFO and
// conservation.
func TestMixedBundlesAcrossNodes(t *testing.T) {
	tn := newNet(t, 2, "fifo", nil, singleChanMX())
	agg, _ := strategy.New("aggregate")
	if err := tn.engines[0].SetBundle(agg); err != nil {
		t.Fatal(err)
	}
	// Node 0 aggregates, node 1 stays fifo; bidirectional traffic.
	for i := 0; i < 30; i++ {
		if err := tn.engines[0].Submit(pkt(1, i, 0, 1, 100)); err != nil {
			t.Fatal(err)
		}
		if err := tn.engines[1].Submit(pkt(2, i, 1, 0, 100)); err != nil {
			t.Fatal(err)
		}
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[0]) != 30 || len(tn.inbox[1]) != 30 {
		t.Fatalf("deliveries %d/%d", len(tn.inbox[0]), len(tn.inbox[1]))
	}
	for n := 0; n < 2; n++ {
		for i, d := range tn.inbox[n] {
			if d.Pkt.Seq != i {
				t.Fatalf("node %d out of order at %d", n, i)
			}
		}
	}
}
