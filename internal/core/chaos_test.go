package core

import (
	"sync"
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

// Engine-level resilience: rail failover and rendezvous timeout-and-retry.

// newTwoRailMeshEngines boots two nodes, each with two real TCP mesh rails
// and one engine over both, wired all-to-all.
func newTwoRailMeshEngines(t *testing.T, onDeliver func(node packet.NodeID, d proto.Deliverable), opt Options) (engines [2]*Engine, rails [2][]*drivers.Mesh, cleanup func()) {
	t.Helper()
	profiles := caps.RailProfiles(caps.TCP, 2)
	rt := simnet.NewRealRuntime()
	for n := 0; n < 2; n++ {
		rs, err := drivers.NewMeshRails(packet.NodeID(n), profiles, nil)
		if err != nil {
			t.Fatal(err)
		}
		rails[n] = rs
	}
	for i := range rails {
		for j := range rails {
			if i == j {
				continue
			}
			for r := range rails[i] {
				if err := rails[i][r].Dial(packet.NodeID(j), rails[j][r].Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for n := 0; n < 2; n++ {
		node := packet.NodeID(n)
		b, err := strategy.New("aggregate")
		if err != nil {
			t.Fatal(err)
		}
		ds := make([]drivers.Driver, len(rails[n]))
		for i, m := range rails[n] {
			ds[i] = m
		}
		o := opt
		o.Bundle = b
		o.Runtime = rt
		o.Rails = ds
		o.Deliver = func(d proto.Deliverable) { onDeliver(node, d) }
		eng, err := New(node, o)
		if err != nil {
			t.Fatal(err)
		}
		engines[n] = eng
	}
	cleanup = func() {
		for _, e := range engines {
			e.Close()
		}
		for _, rs := range rails {
			for _, r := range rs {
				r.Close()
			}
		}
	}
	return engines, rails, cleanup
}

// TestEngineFailoverAcrossRails breaks one rail mid-traffic and asserts
// exactly-once delivery of every payload: frames stranded on the dead rail
// are reclaimed, re-posted on the surviving rail, and deduplicated by the
// reassembler where the broken connection left their fate ambiguous.
func TestEngineFailoverAcrossRails(t *testing.T) {
	const msgs = 200
	var mu sync.Mutex
	got := map[int]int{} // seq -> deliveries
	done := make(chan struct{}, 1)
	engines, rails, cleanup := newTwoRailMeshEngines(t,
		func(_ packet.NodeID, d proto.Deliverable) {
			mu.Lock()
			got[d.Pkt.Seq]++
			n := len(got)
			mu.Unlock()
			if n == msgs {
				done <- struct{}{}
			}
		}, Options{})
	defer cleanup()

	for i := 0; i < msgs; i++ {
		if err := engines[0].Submit(pkt(1, i, 0, 1, 2048)); err != nil {
			t.Fatal(err)
		}
		if i == msgs/2 {
			// Sever rail 0 in the sending direction with traffic in flight.
			rails[0][0].BreakPeer(1)
		}
	}
	engines[0].Flush()

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("failover incomplete: %d of %d distinct payloads delivered", len(got), msgs)
	}
	mu.Lock()
	for seq, n := range got {
		if n != 1 {
			t.Fatalf("seq %d delivered %d times", seq, n)
		}
	}
	mu.Unlock()
	m := engines[0].Metrics()
	if m.Failovers == 0 {
		t.Fatalf("no failover activity recorded: %+v", m)
	}
	if m.RailDowns[0]+m.RailDowns[1] == 0 {
		t.Fatal("rail-down event not counted")
	}
}

// TestEngineRdvRetryAcrossPartition loses a rendezvous RTS to a simulated
// partition and verifies the retry timer re-sends it after the heal: the
// transfer completes without manual intervention, deterministically in
// virtual time.
func TestEngineRdvRetryAcrossPartition(t *testing.T) {
	cl, fab, _, _ := newFailRig(t, 2)
	// Rebuild node 0's engine with retry enabled (newFailRig builds without).
	count := 0
	b, _ := strategy.New("aggregate")
	eng0, err := New(0, Options{
		Bundle:  b,
		Runtime: cl.Eng,
		Rails:   []drivers.Driver{cl.Driver(0, "mx")},
		Deliver: func(proto.Deliverable) {},
		// First retry after 50 µs, doubling after that.
		RdvRetry: 50 * simnet.Microsecond,
		Stats:    cl.Stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := strategy.New("aggregate")
	eng1, err := New(1, Options{
		Bundle:  b1,
		Runtime: cl.Eng,
		Rails:   []drivers.Driver{cl.Driver(1, "mx")},
		Deliver: func(proto.Deliverable) { count++ },
		Stats:   cl.Stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = eng1

	// Partition 0 -> 1: the first RTS is silently dropped by the fabric.
	fab.Partition(0, 1)
	// Heal before the first retry fires, so the retry is what completes it.
	cl.Eng.After(20*simnet.Microsecond, "test.heal", func() { fab.Heal(0, 1) })

	big := pkt(1, 0, 0, 1, 64<<10)
	big.Class = packet.ClassBulk
	if err := eng0.Submit(big); err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run()

	if count != 1 {
		t.Fatalf("rendezvous payload delivered %d times, want exactly 1", count)
	}
	m := eng0.Metrics()
	if m.RdvRetries == 0 {
		t.Fatal("no retry fired — the transfer completed some other way?")
	}
	if cl.Stats.CounterValue("core.rdv_retries") == 0 {
		t.Fatal("retry counter untouched")
	}
}

// TestEngineRdvRetryGivesUp bounds the retry storm: with the path dead for
// good, retries stop at RdvRetryMax and the run still terminates.
func TestEngineRdvRetryGivesUp(t *testing.T) {
	cl, fab, _, _ := newFailRig(t, 2)
	b, _ := strategy.New("aggregate")
	eng0, err := New(0, Options{
		Bundle:      b,
		Runtime:     cl.Eng,
		Rails:       []drivers.Driver{cl.Driver(0, "mx")},
		Deliver:     func(proto.Deliverable) {},
		RdvRetry:    10 * simnet.Microsecond,
		RdvRetryMax: 3,
		Stats:       cl.Stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	fab.Partition(0, 1)
	big := pkt(1, 0, 0, 1, 64<<10)
	big.Class = packet.ClassBulk
	if err := eng0.Submit(big); err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run() // must terminate: retries are bounded
	if got := eng0.Metrics().RdvRetries; got != 3 {
		t.Fatalf("retries = %d, want exactly RdvRetryMax (3)", got)
	}
}
