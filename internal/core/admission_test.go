package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

// tpkt is pkt with a tenant tag.
func tpkt(flow packet.FlowID, seq int, src, dst packet.NodeID, size int, tenant packet.TenantID) *packet.Packet {
	p := pkt(flow, seq, src, dst, size)
	p.Tenant = tenant
	return p
}

// tenantRow digs one tenant's row out of a metrics snapshot.
func tenantRow(t *testing.T, e *Engine, id packet.TenantID) TenantMetrics {
	t.Helper()
	for _, tm := range e.Metrics().Tenants {
		if tm.Tenant == id {
			return tm
		}
	}
	t.Fatalf("no metrics row for tenant %d", id)
	return TenantMetrics{}
}

// TestSubmitThrottledTyped pins the rate-refusal contract: a tenant with
// burst 2 gets exactly two packets admitted back-to-back, and the third
// refusal matches ErrThrottled under errors.Is, unwraps to a
// *ThrottleError naming the tenant, and carries a positive retry-after
// hint. The refusal must not match ErrQuotaExceeded — callers branch on
// the two sentinels to decide between backoff-and-retry and load-shed.
func TestSubmitThrottledTyped(t *testing.T) {
	const tenant = packet.TenantID(7)
	tn := newNet(t, 2, "aggregate", func(o *Options) {
		o.Quotas = map[packet.TenantID]TenantQuota{
			tenant: {Rate: 1000, Burst: 2}, // 1ms per token, 2 back-to-back
		}
	})
	for seq := 0; seq < 2; seq++ {
		if err := tn.engines[0].Submit(tpkt(1, seq, 0, 1, 64, tenant)); err != nil {
			t.Fatalf("burst submit %d refused: %v", seq, err)
		}
	}
	err := tn.engines[0].Submit(tpkt(1, 2, 0, 1, 64, tenant))
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("over-rate submit: got %v, want ErrThrottled", err)
	}
	if errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("rate refusal %v must not match ErrQuotaExceeded", err)
	}
	var te *ThrottleError
	if !errors.As(err, &te) {
		t.Fatalf("refusal %T does not unwrap to *ThrottleError", err)
	}
	if te.Tenant != tenant {
		t.Fatalf("ThrottleError.Tenant = %d, want %d", te.Tenant, tenant)
	}
	if te.RetryAfter <= 0 {
		t.Fatalf("ThrottleError.RetryAfter = %v, want > 0", te.RetryAfter)
	}
	tm := tenantRow(t, tn.engines[0], tenant)
	if tm.Submitted != 2 || tm.Throttled != 1 {
		t.Fatalf("tenant metrics = %+v, want Submitted 2 Throttled 1", tm)
	}
}

// TestSubmitBacklogQuotaTyped pins the backlog-quota contract on a
// hand-stepped rail: with the channel occupied, a Backlog-3 tenant gets
// three packets queued and the fourth refused with ErrQuotaExceeded —
// and once the pump plans the queued packets the charge is released, so
// the same submission succeeds. Refusals never consume a flow sequence
// number (DESIGN.md §10): seq 4 is retried verbatim after the drain.
func TestSubmitBacklogQuotaTyped(t *testing.T) {
	const tenant = packet.TenantID(9)
	rt := &hostileRuntime{}
	d0 := newLossyDriver(0)
	b, err := strategy.New("aggregate")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(0, Options{
		Bundle:  b,
		Runtime: rt,
		Rails:   []drivers.Driver{d0},
		Deliver: func(proto.Deliverable) {},
		Quotas: map[packet.TenantID]TenantQuota{
			tenant: {Backlog: 3}, // rate unlimited
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Seq 0 posts immediately (its charge is released at plan time); the
	// channel is then busy, so seqs 1-3 fill the backlog quota exactly.
	for seq := 0; seq < 4; seq++ {
		if err := eng.Submit(tpkt(1, seq, 0, 1, 64, tenant)); err != nil {
			t.Fatalf("submit %d refused: %v", seq, err)
		}
	}
	err = eng.Submit(tpkt(1, 4, 0, 1, 64, tenant))
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota submit: got %v, want ErrQuotaExceeded", err)
	}
	if errors.Is(err, ErrThrottled) {
		t.Fatalf("quota refusal %v must not match ErrThrottled", err)
	}
	var te *ThrottleError
	if !errors.As(err, &te) || te.Tenant != tenant {
		t.Fatalf("quota refusal %v does not carry tenant %d", err, tenant)
	}
	tm := tenantRow(t, eng, tenant)
	if tm.OverQuota != 1 || tm.Backlog != 3 {
		t.Fatalf("tenant metrics = %+v, want OverQuota 1 Backlog 3", tm)
	}

	// Drain: each step frees the channel and lets the pump plan backlog.
	// The released charges readmit the refused submission under its
	// original sequence number.
	for i := 0; i < 8; i++ {
		d0.step()
		if err = eng.Submit(tpkt(1, 4, 0, 1, 64, tenant)); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("seq 4 still refused after drain: %v", err)
	}
}

// TestSubmitClosedTyped pins ErrClosed: Submit after Close refuses with
// the sentinel under errors.Is, and Flush on a closed engine returns
// immediately instead of touching torn-down shards.
func TestSubmitClosedTyped(t *testing.T) {
	tn := newNet(t, 2, "aggregate", nil)
	tn.engines[0].Close()
	if err := tn.engines[0].Submit(pkt(1, 0, 0, 1, 64)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: got %v, want ErrClosed", err)
	}
	tn.engines[0].Flush() // must return, not pump detached rails
}

// TestSubmitPeerUnreachableTyped pins ErrPeerUnreachable: with
// RefuseUnreachable set and the only rail's peer down, Submit refuses with
// the sentinel — and because refusals precede sequence-space entry, the
// same seq-0 packet is accepted verbatim after the rail heals.
func TestSubmitPeerUnreachableTyped(t *testing.T) {
	rt := &hostileRuntime{}
	d0 := newLossyDriver(0)
	d0.down = true // peer dead from the start; no frames to reclaim
	b, err := strategy.New("aggregate")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(0, Options{
		Bundle:            b,
		Runtime:           rt,
		Rails:             []drivers.Driver{d0},
		Deliver:           func(proto.Deliverable) {},
		RefuseUnreachable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	if err := eng.Submit(pkt(1, 0, 0, 1, 64)); !errors.Is(err, ErrPeerUnreachable) {
		t.Fatalf("submit to down peer: got %v, want ErrPeerUnreachable", err)
	}
	d0.heal()
	if err := eng.Submit(pkt(1, 0, 0, 1, 64)); err != nil {
		t.Fatalf("submit after heal refused: %v", err)
	}
}

// TestFlushCloseRace is the wall-clock pin for the Flush/Close race: over
// real TCP sockets, goroutines hammer Flush on a four-shard engine with
// Nagle arming and disarming underneath while Close tears the shards
// down. Flush must always return — when Close wins, the closed check
// makes it a no-op instead of re-pumping rails whose handlers are being
// detached or blocking on shard locks held by the teardown. Run under
// -race this also pins the closed.Load ordering against the teardown
// writes.
func TestFlushCloseRace(t *testing.T) {
	nodes, cleanup, err := drivers.NewLoopbackCluster(2, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	rt := simnet.NewRealRuntime()
	b, err := strategy.New("aggregate")
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(1, Options{
		Bundle:  b,
		Runtime: rt,
		Rails:   []drivers.Driver{nodes[1]},
		Deliver: func(proto.Deliverable) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := strategy.New("aggregate")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(0, Options{
		Bundle:     bs,
		Runtime:    rt,
		Rails:      []drivers.Driver{nodes[0]},
		Deliver:    func(proto.Deliverable) {},
		Shards:     4,
		NagleDelay: simnet.FromWall(50 * time.Microsecond),
	})
	if err != nil {
		t.Fatal(err)
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 400; j++ {
				eng.Flush()
			}
		}()
	}
	wg.Add(1)
	go func() { // keep Nagle arming so Flush has real work until Close wins
		defer wg.Done()
		<-start
		for seq := 0; ; seq++ {
			if err := eng.Submit(pkt(2, seq, 0, 1, 32)); errors.Is(err, ErrClosed) {
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		time.Sleep(time.Millisecond)
		eng.Close()
	}()
	close(start)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Flush hung racing Close")
	}
}

// TestQueueGaugesQuiesce pins the observation-surface consistency
// contract on a sharded engine: after multi-destination traffic fully
// drains, BacklogLen, QueuedFrames, and the per-tenant backlog gauge must
// all agree on zero — no shard may strand a count in its local counters
// when its queues are empty.
func TestQueueGaugesQuiesce(t *testing.T) {
	const tenant = packet.TenantID(5)
	const perFlow = 20
	tn := newNet(t, 3, "aggregate", func(o *Options) {
		o.Shards = 4
		o.Quotas = map[packet.TenantID]TenantQuota{
			tenant: {Backlog: 1 << 20}, // roomy: accounting on, shedding off
		}
	}, singleChanMX())
	for seq := 0; seq < perFlow; seq++ {
		if err := tn.engines[0].Submit(tpkt(1, seq, 0, 1, 128, tenant)); err != nil {
			t.Fatalf("submit flow 1 seq %d: %v", seq, err)
		}
		if err := tn.engines[0].Submit(tpkt(2, seq, 0, 2, 128, tenant)); err != nil {
			t.Fatalf("submit flow 2 seq %d: %v", seq, err)
		}
	}
	if tn.engines[0].BacklogLen() == 0 {
		t.Fatal("backlog empty with a single channel occupied; test exercises nothing")
	}
	tn.cl.Eng.Run()

	if got := len(tn.inbox[1]); got != perFlow {
		t.Fatalf("node 1 delivered %d, want %d", got, perFlow)
	}
	if got := len(tn.inbox[2]); got != perFlow {
		t.Fatalf("node 2 delivered %d, want %d", got, perFlow)
	}
	for n, e := range tn.engines {
		if got := e.BacklogLen(); got != 0 {
			t.Errorf("node %d BacklogLen = %d at quiescence, want 0", n, got)
		}
		if ctrl, bulk := e.QueuedFrames(); ctrl != 0 || bulk != 0 {
			t.Errorf("node %d QueuedFrames = (%d, %d) at quiescence, want (0, 0)", n, ctrl, bulk)
		}
	}
	if tm := tenantRow(t, tn.engines[0], tenant); tm.Backlog != 0 {
		t.Errorf("tenant backlog gauge = %d at quiescence, want 0", tm.Backlog)
	}
}
