package core

import (
	"bytes"
	"fmt"
	"testing"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

// testNet is a two-node (or n-node) simulated test harness.
type testNet struct {
	cl      *drivers.Cluster
	engines []*Engine
	inbox   [][]proto.Deliverable // per node, in delivery order
}

func newNet(t *testing.T, nodes int, bundleName string, mutate func(*Options), profiles ...caps.Caps) *testNet {
	t.Helper()
	if len(profiles) == 0 {
		profiles = []caps.Caps{caps.MX}
	}
	cl, err := drivers.NewCluster(nodes, profiles...)
	if err != nil {
		t.Fatal(err)
	}
	tn := &testNet{cl: cl, inbox: make([][]proto.Deliverable, nodes)}
	for n := 0; n < nodes; n++ {
		n := n
		b, err := strategy.New(bundleName)
		if err != nil {
			t.Fatal(err)
		}
		var rails []drivers.Driver
		for _, d := range cl.NodeDrivers(packet.NodeID(n)) {
			rails = append(rails, d)
		}
		opt := Options{
			Bundle:  b,
			Runtime: cl.Eng,
			Rails:   rails,
			Deliver: func(d proto.Deliverable) { tn.inbox[n] = append(tn.inbox[n], d) },
			Stats:   cl.Stats,
		}
		if mutate != nil {
			mutate(&opt)
		}
		eng, err := New(packet.NodeID(n), opt)
		if err != nil {
			t.Fatal(err)
		}
		tn.engines = append(tn.engines, eng)
	}
	return tn
}

// singleChanMX is MX restricted to one send channel, so backlogs build up
// deterministically in tests.
func singleChanMX() caps.Caps {
	c := caps.MX
	c.Channels = 1
	return c
}

func pkt(flow packet.FlowID, seq int, src, dst packet.NodeID, size int) *packet.Packet {
	return &packet.Packet{
		Flow: flow, Msg: 1, Seq: seq, Src: src, Dst: dst,
		Class: packet.ClassSmall, Payload: bytes.Repeat([]byte{byte(seq + 1)}, size),
	}
}

func TestNewValidation(t *testing.T) {
	cl, _ := drivers.NewCluster(2, caps.MX)
	b, _ := strategy.New("fifo")
	rail := []drivers.Driver{cl.Driver(0, "mx")}
	del := func(proto.Deliverable) {}

	cases := []struct {
		name string
		opt  Options
	}{
		{"no runtime", Options{Bundle: b, Rails: rail, Deliver: del}},
		{"no rails", Options{Bundle: b, Runtime: cl.Eng, Deliver: del}},
		{"no deliver", Options{Bundle: b, Runtime: cl.Eng, Rails: rail}},
		{"empty bundle", Options{Runtime: cl.Eng, Rails: rail, Deliver: del}},
		{"negative nagle", Options{Bundle: b, Runtime: cl.Eng, Rails: rail, Deliver: del, NagleDelay: -1}},
	}
	for _, tc := range cases {
		if _, err := New(0, tc.opt); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Wrong node ownership.
	if _, err := New(1, Options{Bundle: b, Runtime: cl.Eng, Rails: rail, Deliver: del}); err == nil {
		t.Error("rail of node 0 accepted on engine for node 1")
	}
}

func TestSingleMessageDelivery(t *testing.T) {
	tn := newNet(t, 2, "aggregate", nil)
	p := pkt(1, 0, 0, 1, 256)
	want := append([]byte(nil), p.Payload...)
	if err := tn.engines[0].Submit(p); err != nil {
		t.Fatal(err)
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[1]) != 1 {
		t.Fatalf("delivered %d packets", len(tn.inbox[1]))
	}
	got := tn.inbox[1][0]
	if got.Src != 0 || got.Pkt.Flow != 1 || !bytes.Equal(got.Pkt.Payload, want) {
		t.Fatalf("delivery mismatch: %+v", got)
	}
	if tn.cl.Stats.CounterValue("core.delivered") != 1 {
		t.Fatal("delivered counter wrong")
	}
}

func TestSubmitValidation(t *testing.T) {
	tn := newNet(t, 2, "fifo", nil)
	if err := tn.engines[0].Submit(pkt(1, 0, 1, 0, 8)); err == nil {
		t.Fatal("foreign src accepted")
	}
	bad := pkt(1, 0, 0, 1, 8)
	bad.Class = packet.NumClasses
	if err := tn.engines[0].Submit(bad); err == nil {
		t.Fatal("invalid packet accepted")
	}
	tn.engines[0].Close()
	if err := tn.engines[0].Submit(pkt(1, 0, 0, 1, 8)); err == nil {
		t.Fatal("submit after close accepted")
	}
}

func TestCrossFlowAggregationReducesFrames(t *testing.T) {
	// One send channel. 32 tiny packets from 8 flows submitted back to
	// back: the first occupies the wire, the rest accumulate and must
	// aggregate into far fewer frames.
	tn := newNet(t, 2, "aggregate", nil, singleChanMX())
	const flows, perFlow = 8, 4
	for f := 0; f < flows; f++ {
		for s := 0; s < perFlow; s++ {
			if err := tn.engines[0].Submit(pkt(packet.FlowID(f+1), s, 0, 1, 64)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[1]) != flows*perFlow {
		t.Fatalf("delivered %d of %d", len(tn.inbox[1]), flows*perFlow)
	}
	frames := tn.cl.Stats.CounterValue("nic.tx.frames")
	if frames >= flows*perFlow/2 {
		t.Fatalf("aggregation ineffective: %d frames for %d packets", frames, flows*perFlow)
	}
	if tn.cl.Stats.CounterValue("core.aggregates") == 0 {
		t.Fatal("no aggregates recorded")
	}
}

func TestFIFOBaselineSendsOneFramePerPacket(t *testing.T) {
	tn := newNet(t, 2, "fifo", nil, singleChanMX())
	const n = 16
	for i := 0; i < n; i++ {
		if err := tn.engines[0].Submit(pkt(packet.FlowID(i+1), 0, 0, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[1]) != n {
		t.Fatalf("delivered %d", len(tn.inbox[1]))
	}
	if frames := tn.cl.Stats.CounterValue("nic.tx.frames"); frames != n {
		t.Fatalf("fifo posted %d frames for %d packets", frames, n)
	}
}

func TestAggregateBeatsFIFOOnCompletionTime(t *testing.T) {
	run := func(bundle string) simnet.Time {
		tn := newNet(t, 2, bundle, nil, singleChanMX())
		for f := 0; f < 8; f++ {
			for s := 0; s < 4; s++ {
				if err := tn.engines[0].Submit(pkt(packet.FlowID(f+1), s, 0, 1, 64)); err != nil {
					t.Fatal(err)
				}
			}
		}
		return tn.cl.Eng.Run()
	}
	fifo := run("fifo")
	agg := run("aggregate")
	if agg >= fifo {
		t.Fatalf("aggregate (%v) not faster than fifo (%v)", agg, fifo)
	}
	speedup := float64(fifo) / float64(agg)
	if speedup < 1.5 {
		t.Fatalf("speedup %.2f below expectation", speedup)
	}
}

func TestPerFlowOrderingPreserved(t *testing.T) {
	tn := newNet(t, 2, "aggregate", nil, singleChanMX())
	rng := simnet.NewRNG(42)
	const flows, perFlow = 5, 20
	for s := 0; s < perFlow; s++ {
		for f := 0; f < flows; f++ {
			size := rng.Range(8, 2000)
			if err := tn.engines[0].Submit(pkt(packet.FlowID(f+1), s, 0, 1, size)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[1]) != flows*perFlow {
		t.Fatalf("delivered %d", len(tn.inbox[1]))
	}
	next := map[packet.FlowID]int{}
	for _, d := range tn.inbox[1] {
		if d.Pkt.Seq != next[d.Pkt.Flow] {
			t.Fatalf("flow %d delivered seq %d, want %d", d.Pkt.Flow, d.Pkt.Seq, next[d.Pkt.Flow])
		}
		next[d.Pkt.Flow]++
	}
}

func TestNagleDelayAggregatesSparseTraffic(t *testing.T) {
	// Packets trickle in every 2µs — each would normally be sent alone
	// (the channel drains faster than arrivals). A 16µs Nagle delay
	// collects them.
	run := func(nagle simnet.Duration) (frames uint64, end simnet.Time) {
		tn := newNet(t, 2, "aggregate", func(o *Options) {
			o.NagleDelay = nagle
			o.NagleFlushCount = 16
		}, singleChanMX())
		for i := 0; i < 8; i++ {
			i := i
			tn.cl.Eng.At(simnet.Time(i)*simnet.Time(2*simnet.Microsecond), "submit", func() {
				if err := tn.engines[0].Submit(pkt(packet.FlowID(i+1), 0, 0, 1, 32)); err != nil {
					t.Fatal(err)
				}
			})
		}
		end = tn.cl.Eng.Run()
		if len(tn.inbox[1]) != 8 {
			t.Fatalf("delivered %d", len(tn.inbox[1]))
		}
		return tn.cl.Stats.CounterValue("nic.tx.frames"), end
	}
	framesNoNagle, _ := run(0)
	framesNagle, _ := run(16 * simnet.Microsecond)
	if framesNagle >= framesNoNagle {
		t.Fatalf("nagle did not reduce frames: %d vs %d", framesNagle, framesNoNagle)
	}
	if framesNagle > 3 {
		t.Fatalf("nagle frames = %d, want <= 3", framesNagle)
	}
}

func TestNagleFlushCountOverridesDelay(t *testing.T) {
	// With flush count 4, the fourth packet must flush immediately even
	// though the delay has not expired.
	tn := newNet(t, 2, "aggregate", func(o *Options) {
		o.NagleDelay = 1 * simnet.Millisecond
		o.NagleFlushCount = 4
	}, singleChanMX())
	for i := 0; i < 4; i++ {
		if err := tn.engines[0].Submit(pkt(packet.FlowID(i+1), 0, 0, 1, 32)); err != nil {
			t.Fatal(err)
		}
	}
	end := tn.cl.Eng.Run()
	if len(tn.inbox[1]) != 4 {
		t.Fatalf("delivered %d", len(tn.inbox[1]))
	}
	if end >= simnet.Time(1*simnet.Millisecond) {
		t.Fatalf("flush count ignored; completion waited for the timer (%v)", end)
	}
}

func TestFlushDrainsNagle(t *testing.T) {
	tn := newNet(t, 2, "aggregate", func(o *Options) {
		o.NagleDelay = 1 * simnet.Millisecond
		o.NagleFlushCount = 100
	}, singleChanMX())
	if err := tn.engines[0].Submit(pkt(1, 0, 0, 1, 32)); err != nil {
		t.Fatal(err)
	}
	tn.engines[0].Flush()
	end := tn.cl.Eng.Run()
	if len(tn.inbox[1]) != 1 {
		t.Fatal("flush did not send")
	}
	if end >= simnet.Time(1*simnet.Millisecond) {
		t.Fatalf("completion at %v waited for the nagle timer", end)
	}
}

func TestLookaheadWindowBoundsAggregation(t *testing.T) {
	run := func(window int) float64 {
		tn := newNet(t, 2, "aggregate", func(o *Options) {
			o.Lookahead = window
		}, singleChanMX())
		for i := 0; i < 16; i++ {
			if err := tn.engines[0].Submit(pkt(packet.FlowID(i+1), 0, 0, 1, 32)); err != nil {
				t.Fatal(err)
			}
		}
		tn.cl.Eng.Run()
		if len(tn.inbox[1]) != 16 {
			t.Fatalf("delivered %d", len(tn.inbox[1]))
		}
		return float64(tn.cl.Stats.CounterValue("nic.tx.frames"))
	}
	narrow := run(2)
	wide := run(0)
	if wide >= narrow {
		t.Fatalf("wider lookahead should mean fewer frames: narrow=%v wide=%v", narrow, wide)
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	tn := newNet(t, 2, "aggregate", nil, singleChanMX())
	big := pkt(1, 0, 0, 1, 64<<10) // 64 KiB > MX threshold
	big.Class = packet.ClassBulk
	want := append([]byte(nil), big.Payload...)
	if err := tn.engines[0].Submit(big); err != nil {
		t.Fatal(err)
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[1]) != 1 {
		t.Fatalf("delivered %d", len(tn.inbox[1]))
	}
	if !bytes.Equal(tn.inbox[1][0].Pkt.Payload, want) {
		t.Fatal("rendezvous payload corrupted")
	}
	st := tn.cl.Stats
	if st.CounterValue("core.rdv_started") != 1 || st.CounterValue("core.rdv_granted") != 1 {
		t.Fatalf("rdv counters: started=%d granted=%d",
			st.CounterValue("core.rdv_started"), st.CounterValue("core.rdv_granted"))
	}
	// RTS + CTS + RData = at least 3 frames.
	if st.CounterValue("nic.tx.frames") < 3 {
		t.Fatal("rendezvous did not use control frames")
	}
}

func TestExpressStaysEagerRegardlessOfSize(t *testing.T) {
	tn := newNet(t, 2, "aggregate", nil)
	big := pkt(1, 0, 0, 1, 16<<10)
	big.Recv = packet.RecvExpress
	if err := tn.engines[0].Submit(big); err != nil {
		t.Fatal(err)
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[1]) != 1 {
		t.Fatal("express packet not delivered")
	}
	if tn.cl.Stats.CounterValue("core.rdv_started") != 0 {
		t.Fatal("express packet used rendezvous")
	}
}

func TestRMAThroughEngines(t *testing.T) {
	tn := newNet(t, 2, "aggregate", nil)
	window := make([]byte, 4096)
	tn.engines[1].RegisterWindow(3, window)

	putDone := false
	if err := tn.engines[0].Put(1, 3, 100, []byte("payload"), func() { putDone = true }); err != nil {
		t.Fatal(err)
	}
	tn.cl.Eng.Run()
	if !putDone {
		t.Fatal("put not acknowledged")
	}
	if string(window[100:107]) != "payload" {
		t.Fatal("put did not write")
	}

	var got []byte
	if err := tn.engines[0].Get(1, 3, 100, 7, func(d []byte) { got = d }); err != nil {
		t.Fatal(err)
	}
	tn.cl.Eng.Run()
	if string(got) != "payload" {
		t.Fatalf("get returned %q", got)
	}
	// Error paths.
	if err := tn.engines[0].Put(0, 3, 0, nil, nil); err == nil {
		t.Fatal("self put accepted")
	}
	if err := tn.engines[0].Get(1, 3, 0, 1, nil); err == nil {
		t.Fatal("get without callback accepted")
	}
}

func TestMultiRailSharesLoad(t *testing.T) {
	tn := newNet(t, 2, "aggregate", nil, caps.MX, caps.Elan)
	for i := 0; i < 64; i++ {
		if err := tn.engines[0].Submit(pkt(packet.FlowID(i%8+1), i/8, 0, 1, 2048)); err != nil {
			t.Fatal(err)
		}
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[1]) != 64 {
		t.Fatalf("delivered %d", len(tn.inbox[1]))
	}
	mx := tn.cl.Stats.CounterValue("core.rail.mx.frames")
	elan := tn.cl.Stats.CounterValue("core.rail.elan.frames")
	if mx == 0 || elan == 0 {
		t.Fatalf("rails unused: mx=%d elan=%d", mx, elan)
	}
}

func TestDynamicBundleSwitch(t *testing.T) {
	tn := newNet(t, 2, "fifo", nil, singleChanMX())
	agg, err := strategy.New("aggregate")
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.engines[0].SetBundle(agg); err != nil {
		t.Fatal(err)
	}
	if tn.engines[0].Bundle().Name != "aggregate" {
		t.Fatal("bundle not switched")
	}
	if err := tn.engines[0].SetBundle(strategy.Bundle{}); err == nil {
		t.Fatal("empty bundle accepted")
	}
	for i := 0; i < 8; i++ {
		if err := tn.engines[0].Submit(pkt(packet.FlowID(i+1), 0, 0, 1, 32)); err != nil {
			t.Fatal(err)
		}
	}
	tn.cl.Eng.Run()
	if tn.cl.Stats.CounterValue("core.aggregates") == 0 {
		t.Fatal("switched bundle not in effect")
	}
	if tn.cl.Stats.CounterValue("core.policy_switches") != 1 {
		t.Fatal("policy switch not counted")
	}
}

func TestRuntimeTuningSetters(t *testing.T) {
	tn := newNet(t, 2, "aggregate", nil)
	tn.engines[0].SetLookahead(4)
	tn.engines[0].SetNagle(5*simnet.Microsecond, 8)
	if tn.engines[0].BacklogLen() != 0 {
		t.Fatal("backlog not empty")
	}
	c, b := tn.engines[0].QueuedFrames()
	if c != 0 || b != 0 {
		t.Fatal("queues not empty")
	}
	if tn.engines[0].Node() != 0 || len(tn.engines[0].Rails()) != 1 {
		t.Fatal("accessors broken")
	}
	if tn.engines[0].Stats() == nil {
		t.Fatal("stats nil")
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	tn := newNet(t, 2, "aggregate", nil)
	for i := 0; i < 10; i++ {
		if err := tn.engines[0].Submit(pkt(1, i, 0, 1, 128)); err != nil {
			t.Fatal(err)
		}
		if err := tn.engines[1].Submit(pkt(2, i, 1, 0, 128)); err != nil {
			t.Fatal(err)
		}
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[0]) != 10 || len(tn.inbox[1]) != 10 {
		t.Fatalf("deliveries: %d / %d", len(tn.inbox[0]), len(tn.inbox[1]))
	}
}

func TestThreeNodeRouting(t *testing.T) {
	tn := newNet(t, 3, "aggregate", nil, singleChanMX())
	// Node 0 sends interleaved traffic to nodes 1 and 2.
	for i := 0; i < 10; i++ {
		dst := packet.NodeID(i%2 + 1)
		flow := packet.FlowID(dst) // one flow per destination
		if err := tn.engines[0].Submit(pkt(flow, i/2, 0, dst, 64)); err != nil {
			t.Fatal(err)
		}
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[1]) != 5 || len(tn.inbox[2]) != 5 {
		t.Fatalf("deliveries: %d / %d", len(tn.inbox[1]), len(tn.inbox[2]))
	}
	for node := 1; node <= 2; node++ {
		for i, d := range tn.inbox[node] {
			if d.Pkt.Seq != i {
				t.Fatalf("node %d out of order", node)
			}
		}
	}
}

func TestReplyFromDeliveryCallback(t *testing.T) {
	// The deliver upcall submits a response — the engine must tolerate
	// re-entrant Submit (RPC-style usage).
	cl, err := drivers.NewCluster(2, caps.MX)
	if err != nil {
		t.Fatal(err)
	}
	var engines [2]*Engine
	var got []string
	mk := func(n packet.NodeID, deliver proto.DeliverFunc) *Engine {
		b, _ := strategy.New("aggregate")
		eng, err := New(n, Options{
			Bundle:  b,
			Runtime: cl.Eng,
			Rails:   []drivers.Driver{cl.Driver(n, "mx")},
			Deliver: deliver,
			Stats:   cl.Stats,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}
	engines[1] = mk(1, func(d proto.Deliverable) {
		// Echo back.
		reply := pkt(9, 0, 1, 0, 16)
		reply.Payload = append([]byte("re:"), d.Pkt.Payload[:3]...)
		if err := engines[1].Submit(reply); err != nil {
			t.Error(err)
		}
	})
	engines[0] = mk(0, func(d proto.Deliverable) {
		got = append(got, string(d.Pkt.Payload))
	})
	p := pkt(1, 0, 0, 1, 16)
	copy(p.Payload, "abc")
	if err := engines[0].Submit(p); err != nil {
		t.Fatal(err)
	}
	cl.Eng.Run()
	if len(got) != 1 || got[0] != "re:abc" {
		t.Fatalf("echo = %v", got)
	}
}

func TestManyFlowsManySizesStress(t *testing.T) {
	tn := newNet(t, 2, "aggregate", func(o *Options) {
		o.NagleDelay = 2 * simnet.Microsecond
	}, singleChanMX())
	rng := simnet.NewRNG(7)
	const flows = 12
	seqs := make([]int, flows+1)
	total := 0
	for i := 0; i < 500; i++ {
		f := rng.Range(1, flows)
		size := rng.Pareto(8, 30000, 1.3)
		p := pkt(packet.FlowID(f), seqs[f], 0, 1, size)
		if size > 8192 {
			p.Class = packet.ClassBulk
		}
		seqs[f]++
		total++
		at := simnet.Time(rng.Intn(2_000_000))
		tn.cl.Eng.At(at, "submit", func() {
			if err := tn.engines[0].Submit(p); err != nil {
				t.Error(err)
			}
		})
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[1]) != total {
		t.Fatalf("delivered %d of %d", len(tn.inbox[1]), total)
	}
	// Ordering oracle per flow.
	next := map[packet.FlowID]int{}
	for _, d := range tn.inbox[1] {
		if d.Pkt.Seq != next[d.Pkt.Flow] {
			t.Fatalf("flow %d: seq %d, want %d", d.Pkt.Flow, d.Pkt.Seq, next[d.Pkt.Flow])
		}
		next[d.Pkt.Flow]++
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (simnet.Time, uint64, string) {
		tn := newNet(t, 2, "aggregate", func(o *Options) {
			o.NagleDelay = 4 * simnet.Microsecond
		}, singleChanMX())
		rng := simnet.NewRNG(99)
		seqs := map[packet.FlowID]int{}
		for i := 0; i < 200; i++ {
			f := packet.FlowID(rng.Range(1, 6))
			p := pkt(f, seqs[f], 0, 1, rng.Range(8, 4096))
			seqs[f]++
			tn.cl.Eng.At(simnet.Time(rng.Intn(1_000_000)), "s", func() {
				_ = tn.engines[0].Submit(p)
			})
		}
		end := tn.cl.Eng.Run()
		sig := ""
		for _, d := range tn.inbox[1] {
			sig += fmt.Sprintf("%d/%d;", d.Pkt.Flow, d.Pkt.Seq)
		}
		return end, tn.cl.Stats.CounterValue("nic.tx.frames"), sig
	}
	e1, f1, s1 := run()
	e2, f2, s2 := run()
	if e1 != e2 || f1 != f2 || s1 != s2 {
		t.Fatal("simulation not deterministic across identical runs")
	}
}
