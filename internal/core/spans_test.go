package core

import (
	"testing"

	"newmad/internal/packet"
)

// spanTotal sums one span kind's sample count across every (class, rail)
// cell of an engine.
func spanTotal(e *Engine, k SpanKind) uint64 {
	return e.Spans().Total(int(k)).Count()
}

// TestSpansEagerLifecycle proves the always-on spans observe the eager
// path: queue-wait, transmit and end-to-end legs all populate on a plain
// two-node exchange, keyed to the right class.
func TestSpansEagerLifecycle(t *testing.T) {
	tn := newNet(t, 2, "aggregate", nil)
	const n = 8
	for i := 0; i < n; i++ {
		if err := tn.engines[0].Submit(pkt(1, i, 0, 1, 128)); err != nil {
			t.Fatal(err)
		}
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[1]) != n {
		t.Fatalf("delivered %d", len(tn.inbox[1]))
	}

	if got := spanTotal(tn.engines[0], SpanQueueWait); got != n {
		t.Fatalf("sender queue-wait samples = %d, want %d", got, n)
	}
	if got := spanTotal(tn.engines[0], SpanXmit); got != 0 {
		// Frames travel 0 -> 1; the sender receives none.
		t.Fatalf("sender xmit samples = %d, want 0", got)
	}
	if got := spanTotal(tn.engines[1], SpanXmit); got == 0 {
		t.Fatal("receiver recorded no xmit spans")
	}
	if got := spanTotal(tn.engines[1], SpanE2E); got != n {
		t.Fatalf("receiver e2e samples = %d, want %d", got, n)
	}
	// Class keying: everything here was ClassSmall.
	for _, c := range tn.engines[1].Spans().Snapshot() {
		if SpanKind(c.Kind) == SpanE2E && c.Class != int(packet.ClassSmall) {
			t.Fatalf("e2e span filed under class %d", c.Class)
		}
	}
	// Sanity of the measurements themselves: e2e covers the whole
	// lifecycle, so its max is at least the queue-wait's min.
	e2e := tn.engines[1].Spans().Total(int(SpanE2E))
	qw := tn.engines[0].Spans().Total(int(SpanQueueWait))
	if e2e.Max() < qw.Min() {
		t.Fatalf("e2e max %v < queue-wait min %v", e2e.Max(), qw.Min())
	}
}

// TestSpansRendezvousHandshake proves the rendezvous legs populate: the
// sender times RTS→CTS, the receiver times RTS→RData.
func TestSpansRendezvousHandshake(t *testing.T) {
	tn := newNet(t, 2, "aggregate", nil, singleChanMX())
	big := pkt(1, 0, 0, 1, 64<<10)
	big.Class = packet.ClassBulk
	if err := tn.engines[0].Submit(big); err != nil {
		t.Fatal(err)
	}
	tn.cl.Eng.Run()
	if len(tn.inbox[1]) != 1 {
		t.Fatalf("delivered %d", len(tn.inbox[1]))
	}
	if got := spanTotal(tn.engines[0], SpanRdvGrant); got != 1 {
		t.Fatalf("sender rdv-grant samples = %d, want 1", got)
	}
	if got := spanTotal(tn.engines[1], SpanRdvData); got != 1 {
		t.Fatalf("receiver rdv-data samples = %d, want 1", got)
	}
	// The handshake stamps are consumed: the tracking maps must not leak.
	if n := len(tn.engines[0].rdvStart); n != 0 {
		t.Fatalf("sender leaked %d rdvStart entries", n)
	}
	if n := len(tn.engines[1].rdvRecvStart); n != 0 {
		t.Fatalf("receiver leaked %d rdvRecvStart entries", n)
	}
	// A granted transfer took nonzero virtual time on a wire-paced rail.
	if tn.engines[1].Spans().Total(int(SpanRdvData)).Max() <= 0 {
		t.Fatal("rdv-data span recorded zero duration")
	}
}

// TestMetricsIntoReusesSlices pins the satellite's contract: a scratch
// Metrics refilled per tick allocates nothing after the first fill, and
// matches the one-shot Metrics() snapshot field for field.
func TestMetricsIntoReusesSlices(t *testing.T) {
	tn := newNet(t, 2, "aggregate", nil)
	for i := 0; i < 4; i++ {
		if err := tn.engines[0].Submit(pkt(1, i, 0, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	tn.cl.Eng.Run()
	e := tn.engines[0]

	var scratch Metrics
	e.MetricsInto(&scratch)
	rf, rd := &scratch.RailFrames[0], &scratch.RailDowns[0]
	if n := testing.AllocsPerRun(100, func() { e.MetricsInto(&scratch) }); n != 0 {
		t.Fatalf("MetricsInto allocates %v/op on a warm scratch", n)
	}
	if &scratch.RailFrames[0] != rf || &scratch.RailDowns[0] != rd {
		t.Fatal("MetricsInto regrew the caller's slices")
	}

	oneShot := e.Metrics()
	if oneShot.Submitted != scratch.Submitted || oneShot.FramesPosted != scratch.FramesPosted ||
		oneShot.Delivered != scratch.Delivered || oneShot.Bundle != scratch.Bundle ||
		len(oneShot.RailFrames) != len(scratch.RailFrames) {
		t.Fatalf("Metrics() and MetricsInto diverge: %+v vs %+v", oneShot, scratch)
	}
	for i := range oneShot.RailFrames {
		if oneShot.RailFrames[i] != scratch.RailFrames[i] {
			t.Fatalf("RailFrames[%d] diverges", i)
		}
	}
}
