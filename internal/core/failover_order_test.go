package core

import (
	"sync"
	"testing"

	"newmad/internal/caps"
	"newmad/internal/drivers"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

// Failover re-post ordering. When a rail heals after handing frames back,
// the reclaimed frames and freshly planned frames for the *same flow* race
// for the channel: the pump must re-post the failover queue before building
// new plans, or the receiver sees seq 2 before seq 0 and the in-order
// reassembler wedges the flow. The sim fabric drops silently (it implements
// neither FrameLossNotifier nor PeerChecker), so this test builds a lossy
// rail by hand and drives the heal between pump steps.

// lossyDriver is a hand-controlled rail: one channel whose idleness the
// test toggles, a peer-liveness flag, and a recording of every posted
// frame. It implements the failure surface (FrameLossNotifier +
// PeerChecker) the simulated fabrics lack.
type lossyDriver struct {
	mu     sync.Mutex
	node   packet.NodeID
	caps   caps.Caps
	idle   bool
	down   bool
	posted []*packet.Frame
	idleFn drivers.IdleFunc
	recvFn drivers.RecvFunc
	lossFn drivers.FrameLossHandler
}

func newLossyDriver(node packet.NodeID) *lossyDriver {
	c := caps.MX
	c.Channels = 1
	return &lossyDriver{node: node, caps: c, idle: true}
}

func (d *lossyDriver) Name() string        { return "lossy" }
func (d *lossyDriver) Node() packet.NodeID { return d.node }
func (d *lossyDriver) Caps() caps.Caps     { return d.caps }
func (d *lossyDriver) Mem() memsim.Model   { return memsim.DefaultModel() }
func (d *lossyDriver) NumChannels() int    { return 1 }
func (d *lossyDriver) Close() error        { return nil }

func (d *lossyDriver) ChannelIdle(int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.idle
}

func (d *lossyDriver) FirstIdle() (int, bool) {
	if d.ChannelIdle(0) {
		return 0, true
	}
	return 0, false
}

// Post records the frame and occupies the channel, so the engine advances
// exactly one frame per step() — the test controls interleaving.
func (d *lossyDriver) Post(ch int, f *packet.Frame, _ simnet.Duration) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.idle {
		return drivers.ErrChannelBusy
	}
	if d.down {
		return drivers.ErrPeerDown
	}
	d.posted = append(d.posted, f)
	d.idle = false
	return nil
}

func (d *lossyDriver) SetIdleHandler(fn drivers.IdleFunc)              { d.idleFn = fn }
func (d *lossyDriver) SetRecvHandler(fn drivers.RecvFunc)              { d.recvFn = fn }
func (d *lossyDriver) SetFrameLossHandler(fn drivers.FrameLossHandler) { d.lossFn = fn }

func (d *lossyDriver) PeerDown(packet.NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.down
}

// step frees the channel and fires the idle upcall: one pump pass.
func (d *lossyDriver) step() {
	d.mu.Lock()
	d.idle = true
	d.mu.Unlock()
	d.idleFn(0)
}

// fail marks the peer dead and hands the not-yet-delivered frames back to
// the engine, exactly as the TCP mesh driver does when a connection dies
// with frames queued.
func (d *lossyDriver) fail(peer packet.NodeID) []*packet.Frame {
	d.mu.Lock()
	d.down = true
	lost := d.posted
	d.posted = nil
	d.idle = true
	d.mu.Unlock()
	d.lossFn(peer, lost)
	return lost
}

func (d *lossyDriver) heal() {
	d.mu.Lock()
	d.down = false
	d.mu.Unlock()
}

func (d *lossyDriver) taken() []*packet.Frame {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.posted
	d.posted = nil
	return out
}

// TestFailoverRepostOrderAfterHeal drives one flow through a rail failure:
// seqs 0-1 are posted, reclaimed by the dying rail, and sit in the failover
// queue while seqs 2-5 of the same flow pile into the backlog (the down
// peer is unplannable). After the heal, the pump must emit the reclaimed
// frames before any fresh plan — the posted sequence is 0,1,2..5 exactly
// once — and a receiving engine fed those frames delivers the flow in order
// exactly once.
func TestFailoverRepostOrderAfterHeal(t *testing.T) {
	rt := &hostileRuntime{}
	d0 := newLossyDriver(0)
	b, err := strategy.New("aggregate")
	if err != nil {
		t.Fatal(err)
	}
	sender, err := New(0, Options{
		Bundle:  b,
		Runtime: rt,
		Rails:   []drivers.Driver{d0},
		Deliver: func(proto.Deliverable) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sender.Close()

	// Seqs 0 and 1 travel while the rail is up, one frame each.
	if err := sender.Submit(pkt(1, 0, 0, 1, 64)); err != nil {
		t.Fatal(err)
	}
	d0.step() // channel freed after seq 0's frame; nothing else queued yet
	if err := sender.Submit(pkt(1, 1, 0, 1, 64)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d0.step()
	}

	// The rail dies with both frames undelivered and hands them back.
	if n := len(d0.fail(1)); n != 2 {
		t.Fatalf("rail reclaimed %d frames, want 2", n)
	}
	if got := sender.Metrics().FramesReclaimed; got != 2 {
		t.Fatalf("FramesReclaimed = %d, want 2", got)
	}

	// Same-flow traffic keeps arriving during the outage. The peer is
	// unreachable, so the backlog holds it: nothing may be posted.
	for s := 2; s <= 5; s++ {
		if err := sender.Submit(pkt(1, s, 0, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		d0.step()
	}
	if leaked := d0.taken(); len(leaked) != 0 {
		t.Fatalf("posted %d frames through a dead peer", len(leaked))
	}

	// Heal mid-stream and pump to quiescence.
	d0.heal()
	sender.Flush()
	for i := 0; i < 10; i++ {
		d0.step()
	}
	frames := d0.taken()

	// Flatten to (seq) order: the two failover frames must precede every
	// planned frame, and each seq appears exactly once.
	var seqs []int
	for i, f := range frames {
		if f.Kind != packet.FrameData {
			t.Fatalf("frame %d: unexpected kind %v", i, f.Kind)
		}
		for _, e := range f.Entries {
			seqs = append(seqs, e.Seq)
		}
	}
	if len(seqs) != 6 {
		t.Fatalf("posted %d packets after heal, want 6 (got seqs %v)", len(seqs), seqs)
	}
	for want, got := range seqs {
		if got != want {
			t.Fatalf("post order %v: failover frames did not precede fresh plans", seqs)
		}
	}
	if got := sender.Metrics().Failovers; got != 2 {
		t.Fatalf("Failovers = %d, want 2", got)
	}

	// End-to-end: a receiver fed the healed rail's frames delivers the
	// flow in order, exactly once.
	d1 := newLossyDriver(1)
	var delivered []proto.Deliverable
	receiver, err := New(1, Options{
		Bundle:  b,
		Runtime: rt,
		Rails:   []drivers.Driver{d1},
		Deliver: func(dl proto.Deliverable) { delivered = append(delivered, dl) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer receiver.Close()
	for _, f := range frames {
		d1.recvFn(0, f)
	}
	if len(delivered) != 6 {
		t.Fatalf("receiver delivered %d packets, want 6", len(delivered))
	}
	for want, dl := range delivered {
		if dl.Pkt.Flow != 1 || dl.Pkt.Seq != want {
			t.Fatalf("delivery %d: flow %d seq %d, want flow 1 seq %d", want, dl.Pkt.Flow, dl.Pkt.Seq, want)
		}
	}
}
