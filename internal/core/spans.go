package core

import (
	"fmt"

	"newmad/internal/stats"
)

// The engine's latency-span taxonomy: each span measures one leg of the
// packet lifecycle the trace ring already marks (SUBMIT → PLAN → POST →
// RECV → DELIVER, plus the rendezvous handshake), folded into sharded
// histograms keyed by (span, class, rail). Spans are always on — the
// observation is integer index math plus one histogram insert under a
// per-cell lock, cheap enough that the AllocsPerRun gates of
// internal/perf hold with telemetry enabled (DESIGN.md §8).

// SpanKind identifies one lifecycle leg.
type SpanKind uint8

const (
	// SpanQueueWait: submit → plan. How long a packet waited in the
	// backlog before the optimizer pulled it into a frame — the paper's
	// lookahead-pool dwell time. Rail = the rail the plan was built for.
	SpanQueueWait SpanKind = iota
	// SpanE2E: submit → in-order delivery at the receiver, the
	// application-visible latency. Rail = the arrival rail of the frame
	// that completed the packet (0 when delivery had no rail context).
	// Measurable only where submit and deliver share a clock: the
	// simulated fabrics and loopback. Entries decoded from a real wire
	// carry no submit stamp and are skipped.
	SpanE2E
	// SpanXmit: post → receive, the fabric's serialization + transit leg
	// for one frame. Stamped in-memory on the frame at post time; frames
	// decoded from a real wire carry no stamp and are skipped. Rail = the
	// arrival rail; class = the frame's scheduling class.
	SpanXmit
	// SpanRdvGrant: RTS queued → CTS arrival, the sender-side rendezvous
	// handshake wait (includes any retries). Rail = the CTS arrival rail.
	SpanRdvGrant
	// SpanRdvData: RTS arrival → RData arrival on the receiver — how long
	// a granted transfer took to deliver its bulk after announcing
	// itself. Rail = the RData arrival rail.
	SpanRdvData
	// NumSpanKinds sizes span-indexed arrays.
	NumSpanKinds
)

// String returns the span mnemonic used in exposition (snapshot JSON and
// Prometheus metric names).
func (k SpanKind) String() string {
	names := [...]string{"queue_wait", "e2e", "xmit", "rdv_grant", "rdv_data"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("span(%d)", uint8(k))
}

// Spans returns the engine's latency-span family: one histogram per
// (SpanKind, packet.ClassID, rail index) cell. The family is internally
// locked per cell, so scraping it is safe against the live datapath.
func (e *Engine) Spans() *stats.Spans { return e.spans }
