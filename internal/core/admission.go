package core

import (
	"fmt"
	"sync/atomic"

	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// Multi-tenant admission control. Every packet carries a TenantID; an
// engine configured with quotas (Options.Quotas or SetTenantQuota) checks
// each submission against its tenant's token bucket and backlog quota
// *before* the packet touches any shard state — a flooder is shed at the
// Submit boundary with a typed refusal and a retry-after hint, never
// queued, so its pressure cannot bloat the backlog index or the MPSC
// inboxes (the shed-before-queue rule, DESIGN.md §10).
//
// The rate check is a GCRA virtual-scheduling limiter: one atomic int64
// per tenant holding the theoretical arrival time (TAT), advanced by a CAS
// loop. Admitting a packet costs one load and one CAS on the happy path —
// no locks, no allocation — which is what keeps the Submit fast path at
// its ≤2 allocs/op gate with quotas enabled. Refusals allocate the
// *ThrottleError they return; a shed packet is off the fast path by
// definition.
//
// Engines with no quota table (adm == nil) skip every check and keep the
// historical admit-everything behavior bit-for-bit, which the
// deterministic-replay suites rely on.

// TenantQuota bounds one tenant's admission.
type TenantQuota struct {
	// Rate is the sustained admission rate in packets per second;
	// 0 means unlimited (no token bucket for this tenant).
	Rate float64
	// Burst is how many packets may arrive back-to-back above the
	// sustained rate; 0 and 1 both mean no burst allowance.
	Burst int
	// Backlog caps the tenant's eager packets waiting inside the engine;
	// 0 means unlimited. Quota refusals clear as the backlog drains.
	Backlog int
}

// tenantState is one tenant's admission state: the quota in effect
// (swapped atomically so the controller can retune it live), the GCRA
// clock, the backlog charge, and the refusal tallies MetricsInto exports.
type tenantState struct {
	id    packet.TenantID
	quota atomic.Pointer[tenantQuotaState]

	// tat is the GCRA theoretical arrival time in engine-clock
	// nanoseconds: the earliest instant the *next* conforming packet is
	// expected. A packet arriving before tat-τ (τ = burst allowance) is
	// over rate and refused with retry-after = tat-τ − now.
	tat atomic.Int64

	backlog   atomic.Int64  // eager packets admitted and not yet planned
	submitted atomic.Uint64 // packets admitted
	throttled atomic.Uint64 // rate refusals
	overQuota atomic.Uint64 // backlog-quota refusals
}

// tenantQuotaState is the immutable compiled form of a TenantQuota: the
// user-facing values plus the GCRA increment (T = 1/rate) and burst
// tolerance (τ = (burst-1)·T) in nanoseconds, precomputed so the admit
// path never does float math.
type tenantQuotaState struct {
	TenantQuota
	incNs int64 // T: nanoseconds per conforming packet (0 = unlimited rate)
	tauNs int64 // τ: how far ahead of real time the TAT may run
}

func compileQuota(q TenantQuota) *tenantQuotaState {
	qs := &tenantQuotaState{TenantQuota: q}
	if q.Rate > 0 {
		qs.incNs = int64(1e9 / q.Rate)
		if qs.incNs < 1 {
			qs.incNs = 1
		}
		burst := q.Burst
		if burst < 1 {
			burst = 1
		}
		qs.tauNs = int64(burst-1) * qs.incNs
	}
	return qs
}

// admission is the engine's tenant table, swapped atomically as a whole
// when a new tenant is added; individual quota retunes swap only the
// tenant's compiled quota pointer. states is indexed by TenantID; nil
// entries are unlimited tenants (tracked only if a quota once existed).
type admission struct {
	states []*tenantState
}

func (a *admission) state(t packet.TenantID) *tenantState {
	if a == nil || int(t) >= len(a.states) {
		return nil
	}
	return a.states[t]
}

// admitRate runs the GCRA check for one packet at engine time now,
// advancing the tenant's TAT on success. Returns the retry-after hint on
// refusal. Lock-free; concurrent submitters race on the CAS and retry.
func (ts *tenantState) admitRate(now int64) (retryAfter int64, ok bool) {
	q := ts.quota.Load()
	if q.incNs == 0 {
		return 0, true
	}
	for {
		tat := ts.tat.Load()
		if tat-q.tauNs > now {
			return tat - q.tauNs - now, false
		}
		nt := tat
		if nt < now {
			nt = now
		}
		nt += q.incNs
		if ts.tat.CompareAndSwap(tat, nt) {
			return 0, true
		}
	}
}

// admitBacklog charges one eager packet against the tenant's backlog
// quota, reporting false (and undoing the charge) when over. The charge is
// released when a plan takes the packet out of the backlog
// (releaseBacklog from pumpBacklogLocked).
func (ts *tenantState) admitBacklog() bool {
	q := ts.quota.Load()
	if q.Backlog <= 0 {
		ts.backlog.Add(1)
		return true
	}
	if ts.backlog.Add(1) > int64(q.Backlog) {
		ts.backlog.Add(-1)
		return false
	}
	return true
}

// admit runs the full admission check for p at engine time now. eager
// marks packets that will enter the backlog index (rendezvous submissions
// hand over only an RTS control frame, so they pay the rate check but not
// the backlog quota). A nil receiver admits everything.
func (e *Engine) admit(p *packet.Packet, now simnet.Time, eager bool) error {
	ts := e.adm.Load().state(p.Tenant)
	if ts == nil {
		return nil
	}
	if retry, ok := ts.admitRate(int64(now)); !ok {
		ts.throttled.Add(1)
		e.cThrottled.Inc()
		return &ThrottleError{Tenant: p.Tenant, RetryAfter: simnet.Duration(retry), kind: ErrThrottled}
	}
	if eager && !ts.admitBacklog() {
		ts.overQuota.Add(1)
		e.cOverQuota.Inc()
		return &ThrottleError{Tenant: p.Tenant, kind: ErrQuotaExceeded}
	}
	ts.submitted.Add(1)
	return nil
}

// releaseBacklog returns plan-taken packets' backlog charges to their
// tenants. Called from pumpBacklogLocked under the shard lock.
func (a *admission) releaseBacklog(t packet.TenantID) {
	if ts := a.state(t); ts != nil {
		ts.backlog.Add(-1)
	}
}

// SetTenantQuota installs or retunes tenant's quota at runtime. Zero
// values lift the corresponding limit (a zero TenantQuota admits the
// tenant unconditionally while keeping its accounting live). Negative
// values are rejected. Like every Set* knob the change is visible to the
// next Submit without locking, and a change emits a RetuneEvent (knob
// "tenant-quota") so controllers and experiments can timestamp the retune.
func (e *Engine) SetTenantQuota(tenant packet.TenantID, q TenantQuota) error {
	if q.Rate < 0 || q.Burst < 0 || q.Backlog < 0 {
		return fmt.Errorf("core: negative tenant quota %+v", q)
	}
	qs := compileQuota(q)
	for {
		a := e.adm.Load()
		if ts := a.state(tenant); ts != nil {
			old := ts.quota.Swap(qs)
			if old.TenantQuota == q {
				return nil // no change, no event
			}
			break
		}
		// Grow the table: copy-on-write so concurrent Submits keep a
		// consistent view. Existing tenantStates are shared, never rebuilt
		// — their buckets and tallies survive the swap.
		n := int(tenant) + 1
		var na admission
		if a != nil {
			if len(a.states) > n {
				n = len(a.states)
			}
			na.states = make([]*tenantState, n)
			copy(na.states, a.states)
		} else {
			na.states = make([]*tenantState, n)
		}
		ts := &tenantState{id: tenant}
		ts.quota.Store(qs)
		na.states[tenant] = ts
		if e.adm.CompareAndSwap(a, &na) {
			break
		}
	}
	e.set.Counter("core.tenant_retunes").Inc()
	e.notifyRetune(RetuneEvent{
		At: e.rt.Now(), Knob: "tenant-quota",
		Note: fmt.Sprintf("tenant=%d rate=%g burst=%d backlog=%d", tenant, q.Rate, q.Burst, q.Backlog),
	})
	return nil
}

// TenantQuota returns the quota currently in effect for tenant; ok is
// false when the tenant has no admission state (admitted unconditionally).
func (e *Engine) TenantQuota(tenant packet.TenantID) (TenantQuota, bool) {
	ts := e.adm.Load().state(tenant)
	if ts == nil {
		return TenantQuota{}, false
	}
	return ts.quota.Load().TenantQuota, true
}
