package core

import (
	"fmt"

	"newmad/internal/packet"
)

// The backlog index.
//
// The engine's waiting list used to be one flat submission-order slice, so
// every pump re-scanned the entire backlog to build a (rail, channel) view
// and every plan removal re-filtered it. Both costs scale with *total*
// backlog, while the work actually available to one channel scales with the
// traffic classes it admits and the destinations its rail reaches.
//
// backlogIndex keeps one FIFO queue per (destination, class) instead,
// maintained on submit and on plan removal:
//
//   - Admission filters that are uniform across a queue — the class policy
//     (per channel) and destination reachability (per rail) — skip whole
//     queues in O(1) instead of testing every packet.
//   - The eligible view is a k-way merge of the admitted queues by
//     SubmitSeq, reproducing the flat slice's submission order exactly
//     (SubmitSeq is unique and monotone), so plans and traces are
//     bit-identical to the flat implementation's.
//   - Removing a plan touches only the queues its packets sit in: the
//     common case — the plan took a queue's head run — is O(taken), the
//     cherry-picking case one compaction pass of that queue.
type backlogIndex struct {
	queues map[backlogKey]*backlogQueue
	// list holds every queue ever created (queues are retained when
	// drained — the set of (dst, class) pairs a node talks to is small and
	// stable, and retaining them keeps the merge allocation-free). Order
	// is insertion order; the merge does not depend on it.
	list []*backlogQueue
	size int
}

type backlogKey struct {
	dst   packet.NodeID
	class packet.ClassID
}

// backlogQueue is one (destination, class) FIFO. head indexes the first
// live packet; popped slots are nilled and reclaimed in batches so a
// long-lived queue doesn't creep through its backing array forever.
type backlogQueue struct {
	key  backlogKey
	pkts []*packet.Packet
	head int
}

func (q *backlogQueue) size() int { return len(q.pkts) - q.head }

// push appends p to its (dst, class) queue.
func (b *backlogIndex) push(p *packet.Packet) {
	k := backlogKey{p.Dst, p.Class}
	q := b.queues[k]
	if q == nil {
		if b.queues == nil {
			b.queues = make(map[backlogKey]*backlogQueue)
		}
		q = &backlogQueue{key: k}
		b.queues[k] = q
		b.list = append(b.list, q)
	}
	q.pkts = append(q.pkts, p)
	b.size++
}

// removePlan removes a plan's packets. Plans share one destination and
// preserve submission order (packet.OrderedSubset), so the packets split
// into at most NumClasses per-queue subsequences, each in queue order.
// scratch is reused storage for those subsequences; the grown slice is
// returned for the caller to keep.
func (b *backlogIndex) removePlan(taken, scratch []*packet.Packet) []*packet.Packet {
	if len(taken) == 0 {
		return scratch
	}
	dst := taken[0].Dst
	var done [packet.NumClasses]bool
	for _, p := range taken {
		if p.Dst != dst {
			panic("core: plan spans destinations")
		}
		cls := p.Class
		if done[cls] {
			continue
		}
		done[cls] = true
		sub := scratch[:0]
		for _, t := range taken {
			if t.Class == cls {
				sub = append(sub, t)
			}
		}
		q := b.queues[backlogKey{dst, cls}]
		if q == nil {
			panic(fmt.Sprintf("core: plan contained %d packets not in the backlog", len(sub)))
		}
		q.remove(sub)
		b.size -= len(sub)
		scratch = sub[:0] // keep whatever growth the subsequence forced
	}
	return scratch
}

// remove deletes sub — a submission-ordered subsequence of this queue —
// from the queue. The fast path (sub is the queue's head run) is O(len(sub));
// a plan that skipped over waiting packets costs one compaction pass.
func (q *backlogQueue) remove(sub []*packet.Packet) {
	n := len(sub)
	if q.size() >= n {
		prefix := true
		for i := 0; i < n; i++ {
			if q.pkts[q.head+i] != sub[i] {
				prefix = false
				break
			}
		}
		if prefix {
			for i := 0; i < n; i++ {
				q.pkts[q.head+i] = nil
			}
			q.head += n
			q.reclaim()
			return
		}
	}
	// Compaction pass: both sequences are in submission order, so a single
	// two-pointer walk removes every match.
	ti := 0
	w := q.head
	for r := q.head; r < len(q.pkts); r++ {
		p := q.pkts[r]
		if ti < n && p == sub[ti] {
			ti++
			continue
		}
		q.pkts[w] = p
		w++
	}
	if ti != n {
		panic(fmt.Sprintf("core: plan contained %d packets not in the backlog", n-ti))
	}
	for i := w; i < len(q.pkts); i++ {
		q.pkts[i] = nil
	}
	q.pkts = q.pkts[:w]
	q.reclaim()
}

// reclaim bounds the dead prefix: an emptied queue rewinds to its backing
// array's start, and a queue whose dead prefix dominates is copied down.
func (q *backlogQueue) reclaim() {
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
		return
	}
	if q.head > 64 && q.head > len(q.pkts)/2 {
		n := copy(q.pkts, q.pkts[q.head:])
		for i := n; i < len(q.pkts); i++ {
			q.pkts[i] = nil
		}
		q.pkts = q.pkts[:n]
		q.head = 0
	}
}

// cursor is one queue's position in the eligible-view merge.
type backlogCursor struct {
	q   *backlogQueue
	pos int
}
