package proto

import (
	"strings"
	"testing"

	"newmad/internal/packet"
)

// Misrouted frames (a frame kind arriving at a node with no engine for it)
// must fail loudly and name the problem; these cover every nil-engine
// branch of the dispatcher.
func TestDispatcherEveryMisrouteIsLoud(t *testing.T) {
	reasm := NewReassembler(1, func(Deliverable) {})
	cases := []struct {
		name string
		d    *Dispatcher
		f    *packet.Frame
	}{
		{"data w/o reassembler", NewDispatcher(1, nil, nil, nil, nil),
			&packet.Frame{Kind: packet.FrameData}},
		{"rts w/o receiver", NewDispatcher(1, reasm, nil, nil, nil),
			&packet.Frame{Kind: packet.FrameRTS}},
		{"cts w/o sender", NewDispatcher(1, reasm, nil, nil, nil),
			&packet.Frame{Kind: packet.FrameCTS}},
		{"rdata w/o receiver", NewDispatcher(1, reasm, nil, nil, nil),
			&packet.Frame{Kind: packet.FrameRData}},
		{"put w/o rma", NewDispatcher(1, reasm, nil, nil, nil),
			&packet.Frame{Kind: packet.FramePut}},
		{"get w/o rma", NewDispatcher(1, reasm, nil, nil, nil),
			&packet.Frame{Kind: packet.FrameGet}},
		{"getreply w/o rma", NewDispatcher(1, reasm, nil, nil, nil),
			&packet.Frame{Kind: packet.FrameGetReply}},
		{"ack w/o rma", NewDispatcher(1, reasm, nil, nil, nil),
			&packet.Frame{Kind: packet.FrameAck}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: no panic", tc.name)
					return
				}
				if msg, ok := r.(string); ok && !strings.Contains(msg, "no engine") &&
					!strings.Contains(msg, "unknown") {
					t.Errorf("%s: unhelpful panic %q", tc.name, msg)
				}
			}()
			tc.d.HandleFrame(0, tc.f)
		}()
	}
}

func TestRdvConstructorValidation(t *testing.T) {
	reasm := NewReassembler(1, func(Deliverable) {})
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil grant hook", func() { NewRdvSender(0, nil) })
	mustPanic("nil send hook", func() { NewRdvReceiver(1, reasm, nil, 0) })
	mustPanic("nil reassembler", func() { NewRdvReceiver(1, nil, func(*packet.Frame) {}, 0) })
	mustPanic("nil rma send hook", func() { NewRMA(0, nil) })
	mustPanic("nil reasm deliver", func() { NewReassembler(0, nil) })
}

func TestRdvDataAnomaliesDropped(t *testing.T) {
	// An RData no rendezvous ever granted, and a granted one whose payload
	// length contradicts the negotiated size, are both dropped and counted:
	// a corrupting network can produce either, and neither may crash the
	// node or reach the reassembler.
	delivered := 0
	reasm := NewReassembler(1, func(Deliverable) { delivered++ })
	var ctses []*packet.Frame
	r := NewRdvReceiver(1, reasm, func(f *packet.Frame) { ctses = append(ctses, f) }, 0)

	// Never granted: dropped as unknown.
	r.HandleRData(0, &packet.Frame{
		Kind: packet.FrameRData,
		Ctrl: packet.Ctrl{Token: 42, Size: 50},
		Bulk: make([]byte, 50),
	})
	// Granted, but the payload lies about its size: dropped as corrupt.
	s := NewRdvSender(0, func(uint64, *packet.Packet) {})
	rts := s.Start(&packet.Packet{Flow: 1, Seq: 0, Last: true, Src: 0, Dst: 1,
		Payload: make([]byte, 100)})
	r.HandleRTS(rts)
	r.HandleRData(0, &packet.Frame{
		Kind: packet.FrameRData,
		Ctrl: rts.Ctrl,
		Bulk: make([]byte, 50),
	})
	if delivered != 0 {
		t.Fatalf("anomalous RData reached the reassembler (%d deliveries)", delivered)
	}
	dupRTS, dupRD, badRD := r.Anomalies()
	if dupRTS != 0 || dupRD != 1 || badRD != 1 {
		t.Fatalf("anomalies = (%d, %d, %d), want (0, 1, 1)", dupRTS, dupRD, badRD)
	}
}

func TestBuildRDataUnknownTokenPanics(t *testing.T) {
	s := NewRdvSender(0, func(uint64, *packet.Packet) {})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown token accepted")
		}
	}()
	s.BuildRData(42)
}
