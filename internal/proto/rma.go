package proto

import (
	"fmt"

	"newmad/internal/packet"
)

// RMA emulates the remote-memory-access (put/get) protocol family the
// paper lists among the techniques a communication library must choose
// between. Nodes expose registered memory windows; peers write (put) and
// read (get) window ranges without involving the remote application.
//
// Wire mapping: RMA frames reuse the generic control block with repurposed
// fields — Ctrl.Flow carries the window id, Ctrl.Msg the byte offset,
// Ctrl.Size the length, Ctrl.Token the completion correlator.
//
// Like the rendezvous engines, RMA is passive: operations build frames for
// the optimizing layer to schedule (class ClassRMA), and reactive frames
// (get replies, put acks) go through the injected send hook.
type RMA struct {
	node      packet.NodeID
	send      SendHook
	windows   map[int32][]byte
	nextToken uint64
	// pendingGets/pendingPuts map tokens to completion callbacks.
	pendingGets map[uint64]func(data []byte)
	pendingPuts map[uint64]func()
}

// NewRMA creates the engine for node; send emits reactive frames.
func NewRMA(node packet.NodeID, send SendHook) *RMA {
	if send == nil {
		panic("proto: nil send hook")
	}
	return &RMA{
		node:        node,
		send:        send,
		windows:     make(map[int32][]byte),
		pendingGets: make(map[uint64]func(data []byte)),
		pendingPuts: make(map[uint64]func()),
	}
}

// RegisterWindow exposes buf as window id; remote puts and gets address it
// by (id, offset). Re-registering an id replaces the window.
func (m *RMA) RegisterWindow(id int32, buf []byte) { m.windows[id] = buf }

// Window returns the registered buffer (shared, not a copy).
func (m *RMA) Window(id int32) ([]byte, bool) {
	b, ok := m.windows[id]
	return b, ok
}

// Put builds a put frame writing data to (window, off) at dst. done, if
// non-nil, runs when the remote acknowledges (an Ack frame); pass nil for
// fire-and-forget semantics.
func (m *RMA) Put(dst packet.NodeID, window int32, off int64, data []byte, done func()) *packet.Frame {
	var tok uint64
	if done != nil {
		m.nextToken++
		tok = m.nextToken
		m.pendingPuts[tok] = done
	}
	return &packet.Frame{
		Kind: packet.FramePut,
		Src:  m.node,
		Dst:  dst,
		Ctrl: packet.Ctrl{Token: tok, Flow: packet.FlowID(window), Msg: packet.MsgID(off), Size: len(data)},
		Bulk: data,
	}
}

// Get builds a get frame reading n bytes from (window, off) at dst; done
// receives the data when the reply arrives.
func (m *RMA) Get(dst packet.NodeID, window int32, off int64, n int, done func(data []byte)) *packet.Frame {
	if done == nil {
		panic("proto: Get requires a completion callback")
	}
	m.nextToken++
	tok := m.nextToken
	m.pendingGets[tok] = done
	return &packet.Frame{
		Kind: packet.FrameGet,
		Src:  m.node,
		Dst:  dst,
		Ctrl: packet.Ctrl{Token: tok, Flow: packet.FlowID(window), Msg: packet.MsgID(off), Size: n},
	}
}

// HandlePut applies an incoming put to the local window and acks when the
// initiator asked for completion. Out-of-range puts panic: the middleware
// owns window layout, and silent truncation would corrupt DSM pages.
func (m *RMA) HandlePut(src packet.NodeID, f *packet.Frame) {
	win, off := int32(f.Ctrl.Flow), int64(f.Ctrl.Msg)
	buf, ok := m.windows[win]
	if !ok {
		panic(fmt.Sprintf("proto: put to unregistered window %d on node %d", win, m.node))
	}
	if off < 0 || off+int64(len(f.Bulk)) > int64(len(buf)) {
		panic(fmt.Sprintf("proto: put [%d,%d) outside window %d of %d bytes", off, off+int64(len(f.Bulk)), win, len(buf)))
	}
	copy(buf[off:], f.Bulk)
	if f.Ctrl.Token != 0 {
		m.send(&packet.Frame{
			Kind: packet.FrameAck,
			Src:  m.node,
			Dst:  src,
			Ctrl: packet.Ctrl{Token: f.Ctrl.Token},
		})
	}
}

// HandleGet serves an incoming read by emitting a reply frame.
func (m *RMA) HandleGet(src packet.NodeID, f *packet.Frame) {
	win, off, n := int32(f.Ctrl.Flow), int64(f.Ctrl.Msg), f.Ctrl.Size
	buf, ok := m.windows[win]
	if !ok {
		panic(fmt.Sprintf("proto: get from unregistered window %d on node %d", win, m.node))
	}
	if off < 0 || off+int64(n) > int64(len(buf)) {
		panic(fmt.Sprintf("proto: get [%d,%d) outside window %d of %d bytes", off, off+int64(n), win, len(buf)))
	}
	data := make([]byte, n)
	copy(data, buf[off:])
	m.send(&packet.Frame{
		Kind: packet.FrameGetReply,
		Src:  m.node,
		Dst:  src,
		Ctrl: packet.Ctrl{Token: f.Ctrl.Token, Flow: f.Ctrl.Flow, Msg: f.Ctrl.Msg, Size: n},
		Bulk: data,
	})
}

// HandleGetReply completes a pending get.
func (m *RMA) HandleGetReply(f *packet.Frame) {
	done, ok := m.pendingGets[f.Ctrl.Token]
	if !ok {
		panic(fmt.Sprintf("proto: get reply for unknown token %d", f.Ctrl.Token))
	}
	delete(m.pendingGets, f.Ctrl.Token)
	done(f.Bulk)
}

// HandleAck completes a pending put.
func (m *RMA) HandleAck(f *packet.Frame) {
	done, ok := m.pendingPuts[f.Ctrl.Token]
	if !ok {
		// Acks are also used by fences above this layer; unknown tokens
		// here are fatal only for RMA-originated acks, which all register.
		panic(fmt.Sprintf("proto: ack for unknown put token %d", f.Ctrl.Token))
	}
	delete(m.pendingPuts, f.Ctrl.Token)
	done()
}

// Outstanding returns pending (gets, puts) awaiting completion.
func (m *RMA) Outstanding() (gets, puts int) {
	return len(m.pendingGets), len(m.pendingPuts)
}
