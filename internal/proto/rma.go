package proto

import (
	"newmad/internal/packet"
)

// RMA emulates the remote-memory-access (put/get) protocol family the
// paper lists among the techniques a communication library must choose
// between. Nodes expose registered memory windows; peers write (put) and
// read (get) window ranges without involving the remote application.
//
// Wire mapping: RMA frames reuse the generic control block with repurposed
// fields — Ctrl.Flow carries the window id, Ctrl.Msg the byte offset,
// Ctrl.Size the length, Ctrl.Token the completion correlator.
//
// Like the rendezvous engines, RMA is passive: operations build frames for
// the optimizing layer to schedule (class ClassRMA), and reactive frames
// (get replies, put acks) go through the injected send hook.
type RMA struct {
	node      packet.NodeID
	send      SendHook
	windows   map[int32][]byte
	nextToken uint64
	// pendingGets/pendingPuts map tokens to completion callbacks.
	pendingGets map[uint64]func(data []byte)
	pendingPuts map[uint64]func()
	// rejected counts remote-originated frames dropped for addressing an
	// unknown window, an out-of-range span, or an unknown token. A corrupt
	// or replayed frame can produce any of these, so they are survivable
	// (counted, dropped) rather than fatal; local API misuse still panics.
	rejected uint64
}

// NewRMA creates the engine for node; send emits reactive frames.
func NewRMA(node packet.NodeID, send SendHook) *RMA {
	if send == nil {
		panic("proto: nil send hook")
	}
	return &RMA{
		node:        node,
		send:        send,
		windows:     make(map[int32][]byte),
		pendingGets: make(map[uint64]func(data []byte)),
		pendingPuts: make(map[uint64]func()),
	}
}

// RegisterWindow exposes buf as window id; remote puts and gets address it
// by (id, offset). Re-registering an id replaces the window.
func (m *RMA) RegisterWindow(id int32, buf []byte) { m.windows[id] = buf }

// Window returns the registered buffer (shared, not a copy).
func (m *RMA) Window(id int32) ([]byte, bool) {
	b, ok := m.windows[id]
	return b, ok
}

// Put builds a put frame writing data to (window, off) at dst. done, if
// non-nil, runs when the remote acknowledges (an Ack frame); pass nil for
// fire-and-forget semantics.
func (m *RMA) Put(dst packet.NodeID, window int32, off int64, data []byte, done func()) *packet.Frame {
	var tok uint64
	if done != nil {
		m.nextToken++
		tok = m.nextToken
		m.pendingPuts[tok] = done
	}
	return &packet.Frame{
		Kind: packet.FramePut,
		Src:  m.node,
		Dst:  dst,
		Ctrl: packet.Ctrl{Token: tok, Flow: packet.FlowID(window), Msg: packet.MsgID(off), Size: len(data)},
		Bulk: data,
	}
}

// Get builds a get frame reading n bytes from (window, off) at dst; done
// receives the data when the reply arrives.
func (m *RMA) Get(dst packet.NodeID, window int32, off int64, n int, done func(data []byte)) *packet.Frame {
	if done == nil {
		panic("proto: Get requires a completion callback")
	}
	m.nextToken++
	tok := m.nextToken
	m.pendingGets[tok] = done
	return &packet.Frame{
		Kind: packet.FrameGet,
		Src:  m.node,
		Dst:  dst,
		Ctrl: packet.Ctrl{Token: tok, Flow: packet.FlowID(window), Msg: packet.MsgID(off), Size: n},
	}
}

// HandlePut applies an incoming put to the local window and acks when the
// initiator asked for completion. Puts addressing an unknown window or an
// out-of-range span are rejected whole — applying a truncated put would
// corrupt DSM pages, and panicking would let one corrupt frame crash the
// node — and counted through Rejected.
func (m *RMA) HandlePut(src packet.NodeID, f *packet.Frame) {
	win, off := int32(f.Ctrl.Flow), int64(f.Ctrl.Msg)
	buf, ok := m.windows[win]
	if !ok || off < 0 || off+int64(len(f.Bulk)) > int64(len(buf)) {
		m.rejected++
		return
	}
	copy(buf[off:], f.Bulk)
	if f.Ctrl.Token != 0 {
		ack := packet.AcquireFrame()
		ack.Kind = packet.FrameAck
		ack.Src = m.node
		ack.Dst = src
		ack.Ctrl = packet.Ctrl{Token: f.Ctrl.Token}
		m.send(ack)
	}
}

// HandleGet serves an incoming read by emitting a reply frame. Unknown
// windows and out-of-range spans are rejected and counted, like HandlePut;
// the initiator's get then never completes, which is the initiator's bug to
// surface, not this node's to crash on.
func (m *RMA) HandleGet(src packet.NodeID, f *packet.Frame) {
	win, off, n := int32(f.Ctrl.Flow), int64(f.Ctrl.Msg), f.Ctrl.Size
	buf, ok := m.windows[win]
	if !ok || off < 0 || n < 0 || off+int64(n) > int64(len(buf)) {
		m.rejected++
		return
	}
	data := make([]byte, n)
	copy(data, buf[off:])
	m.send(&packet.Frame{
		Kind: packet.FrameGetReply,
		Src:  m.node,
		Dst:  src,
		Ctrl: packet.Ctrl{Token: f.Ctrl.Token, Flow: f.Ctrl.Flow, Msg: f.Ctrl.Msg, Size: n},
		Bulk: data,
	})
}

// HandleGetReply completes a pending get; replies for unknown tokens (a
// duplicate, or a corrupt correlator) are dropped and counted.
func (m *RMA) HandleGetReply(f *packet.Frame) {
	done, ok := m.pendingGets[f.Ctrl.Token]
	if !ok {
		m.rejected++
		return
	}
	delete(m.pendingGets, f.Ctrl.Token)
	// The reply bytes escape to the completion callback: pin the frame's
	// backing buffer so a recycled wire buffer can never alias them.
	f.PinBacking()
	done(f.Bulk)
}

// HandleAck completes a pending put; acks for unknown tokens are dropped
// and counted.
func (m *RMA) HandleAck(f *packet.Frame) {
	done, ok := m.pendingPuts[f.Ctrl.Token]
	if !ok {
		m.rejected++
		return
	}
	delete(m.pendingPuts, f.Ctrl.Token)
	done()
}

// Outstanding returns pending (gets, puts) awaiting completion.
func (m *RMA) Outstanding() (gets, puts int) {
	return len(m.pendingGets), len(m.pendingPuts)
}

// Rejected returns the number of remote-originated frames dropped for
// addressing unknown windows, out-of-range spans, or unknown tokens.
func (m *RMA) Rejected() uint64 { return m.rejected }
