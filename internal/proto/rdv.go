package proto

import (
	"fmt"

	"newmad/internal/packet"
)

// Rendezvous protocol.
//
// Large RecvCheaper fragments are not worth sending eagerly: the receiver
// would have to stage them, and the sender's channel is occupied for the
// whole serialization with no opportunity to overlap. The rendezvous
// protocol replaces the payload with a tiny RTS control frame; once the
// receiver posts buffers and answers CTS, the bulk payload travels as an
// RData frame — re-entering the optimizer as a ClassBulk item, so bulk
// transfers are scheduled (and balanced across NICs) like everything else.
//
// The engines below are deliberately passive: they build frames and invoke
// injected hooks, and the optimizing layer decides when frames actually hit
// a channel.

// SendHook enqueues a reactive protocol frame (CTS, get reply...) for
// transmission; installed by the optimizing layer.
type SendHook func(f *packet.Frame)

// GrantHook tells the optimizing layer that a rendezvous it started has
// been granted and the bulk payload is ready to schedule.
type GrantHook func(token uint64, p *packet.Packet)

// RdvSender is the source-side rendezvous engine of one node.
type RdvSender struct {
	node      packet.NodeID
	nextToken uint64
	pending   map[uint64]*packet.Packet
	onGrant   GrantHook
}

// NewRdvSender creates the engine; grant is invoked when a CTS arrives.
func NewRdvSender(node packet.NodeID, grant GrantHook) *RdvSender {
	if grant == nil {
		panic("proto: nil grant hook")
	}
	return &RdvSender{node: node, pending: make(map[uint64]*packet.Packet), onGrant: grant}
}

// Start registers p for rendezvous transfer and returns the RTS frame to
// schedule (control class). The payload stays with the engine until
// granted.
func (s *RdvSender) Start(p *packet.Packet) *packet.Frame {
	s.nextToken++
	tok := s.nextToken
	s.pending[tok] = p
	return &packet.Frame{
		Kind: packet.FrameRTS,
		Src:  s.node,
		Dst:  p.Dst,
		Ctrl: packet.Ctrl{
			Token: tok, Flow: p.Flow, Msg: p.Msg, Seq: p.Seq,
			Size: p.Size(), Last: p.Last,
		},
	}
}

// HandleCTS processes a grant; unknown tokens indicate protocol corruption
// and panic (the fabrics modeled are loss-free).
func (s *RdvSender) HandleCTS(f *packet.Frame) {
	p, ok := s.pending[f.Ctrl.Token]
	if !ok {
		panic(fmt.Sprintf("proto: CTS for unknown rendezvous token %d on node %d", f.Ctrl.Token, s.node))
	}
	s.onGrant(f.Ctrl.Token, p)
}

// BuildRData consumes the pending payload for token and returns the bulk
// frame to schedule.
func (s *RdvSender) BuildRData(token uint64) *packet.Frame {
	p, ok := s.pending[token]
	if !ok {
		panic(fmt.Sprintf("proto: BuildRData for unknown token %d", token))
	}
	delete(s.pending, token)
	return &packet.Frame{
		Kind: packet.FrameRData,
		Src:  s.node,
		Dst:  p.Dst,
		Ctrl: packet.Ctrl{
			Token: token, Flow: p.Flow, Msg: p.Msg, Seq: p.Seq,
			Size: p.Size(), Last: p.Last,
		},
		Bulk: p.Payload,
	}
}

// Outstanding returns the number of un-granted rendezvous transfers.
func (s *RdvSender) Outstanding() int { return len(s.pending) }

// RdvReceiver is the sink-side engine: it grants RTSes (subject to a
// concurrency cap modeling receive-buffer supply) and turns RData frames
// back into packets for the reassembler.
type RdvReceiver struct {
	node    packet.NodeID
	send    SendHook
	reasm   *Reassembler
	max     int // max concurrent granted rendezvous; 0 = unlimited
	granted int
	queue   []*packet.Frame // RTSes waiting for a grant slot
}

// NewRdvReceiver creates the engine. send emits CTS frames;
// maxConcurrent=0 grants immediately and without limit.
func NewRdvReceiver(node packet.NodeID, reasm *Reassembler, send SendHook, maxConcurrent int) *RdvReceiver {
	if send == nil {
		panic("proto: nil send hook")
	}
	if reasm == nil {
		panic("proto: nil reassembler")
	}
	return &RdvReceiver{node: node, send: send, reasm: reasm, max: maxConcurrent}
}

// HandleRTS grants (or queues) an incoming rendezvous request.
func (r *RdvReceiver) HandleRTS(f *packet.Frame) {
	if r.max > 0 && r.granted >= r.max {
		r.queue = append(r.queue, f)
		return
	}
	r.grant(f)
}

func (r *RdvReceiver) grant(f *packet.Frame) {
	r.granted++
	r.send(&packet.Frame{
		Kind: packet.FrameCTS,
		Src:  r.node,
		Dst:  f.Src,
		Ctrl: f.Ctrl,
	})
}

// HandleRData completes a rendezvous: the bulk payload becomes an ordinary
// fragment in the reassembly stream.
func (r *RdvReceiver) HandleRData(src packet.NodeID, f *packet.Frame) {
	c := f.Ctrl
	if len(f.Bulk) != c.Size {
		panic(fmt.Sprintf("proto: RData size %d != negotiated %d (token %d)", len(f.Bulk), c.Size, c.Token))
	}
	r.granted--
	p := &packet.Packet{
		Flow: c.Flow, Msg: c.Msg, Seq: c.Seq, Last: c.Last,
		Src: src, Dst: r.node, Class: packet.ClassBulk,
		Recv: packet.RecvCheaper, Payload: f.Bulk,
	}
	r.reasm.Ingest(src, p)
	// A completed transfer frees a grant slot for a queued RTS.
	if len(r.queue) > 0 && (r.max == 0 || r.granted < r.max) {
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.grant(next)
	}
}

// QueuedRTS returns the number of requests waiting for a grant slot.
func (r *RdvReceiver) QueuedRTS() int { return len(r.queue) }

// Granted returns the number of in-flight granted transfers.
func (r *RdvReceiver) Granted() int { return r.granted }
