package proto

import (
	"fmt"

	"newmad/internal/packet"
)

// Rendezvous protocol.
//
// Large RecvCheaper fragments are not worth sending eagerly: the receiver
// would have to stage them, and the sender's channel is occupied for the
// whole serialization with no opportunity to overlap. The rendezvous
// protocol replaces the payload with a tiny RTS control frame; once the
// receiver posts buffers and answers CTS, the bulk payload travels as an
// RData frame — re-entering the optimizer as a ClassBulk item, so bulk
// transfers are scheduled (and balanced across NICs) like everything else.
//
// The engines below are deliberately passive: they build frames and invoke
// injected hooks, and the optimizing layer decides when frames actually hit
// a channel.
//
// Loss tolerance: the original engines assumed loss-free fabrics and
// panicked on any protocol irregularity. With the chaos layer
// (internal/chaos) injecting drops and duplicates, irregularities that a
// lossy network can produce — a duplicate RTS after a timeout retry, a
// duplicate CTS, an RData for a transfer that already completed — are now
// tolerated idempotently and counted, so the retry machinery in
// internal/core can re-send control frames without risking double delivery.
// Conditions only a local programming error can produce still panic.

// SendHook enqueues a reactive protocol frame (CTS, get reply...) for
// transmission; installed by the optimizing layer.
type SendHook func(f *packet.Frame)

// GrantHook tells the optimizing layer that a rendezvous it started has
// been granted and the bulk payload is ready to schedule.
type GrantHook func(token uint64, p *packet.Packet)

// RdvSender is the source-side rendezvous engine of one node.
type RdvSender struct {
	node      packet.NodeID
	nextToken uint64
	pending   map[uint64]*packet.Packet // RTS sent, no CTS yet
	granted   map[uint64]*packet.Packet // CTS seen, RData not yet built
	onGrant   GrantHook
	dupCTS    uint64
}

// NewRdvSender creates the engine; grant is invoked when a CTS arrives.
func NewRdvSender(node packet.NodeID, grant GrantHook) *RdvSender {
	if grant == nil {
		panic("proto: nil grant hook")
	}
	return &RdvSender{
		node:    node,
		pending: make(map[uint64]*packet.Packet),
		granted: make(map[uint64]*packet.Packet),
		onGrant: grant,
	}
}

// rtsFor builds the RTS frame announcing p under token tok. The frame is
// pooled: it carries no payload and nothing retains it past the wire write
// (retries rebuild a fresh one), so the transport releases it after
// serialization.
func (s *RdvSender) rtsFor(tok uint64, p *packet.Packet) *packet.Frame {
	rts := packet.AcquireFrame()
	rts.Kind = packet.FrameRTS
	rts.Src = s.node
	rts.Dst = p.Dst
	rts.Ctrl = packet.Ctrl{
		Token: tok, Flow: p.Flow, Msg: p.Msg, Seq: p.Seq,
		Size: p.Size(), Last: p.Last,
	}
	return rts
}

// Start registers p for rendezvous transfer and returns the RTS frame to
// schedule (control class). The payload stays with the engine until
// granted.
func (s *RdvSender) Start(p *packet.Packet) *packet.Frame {
	s.nextToken++
	tok := s.nextToken
	s.pending[tok] = p
	return s.rtsFor(tok, p)
}

// RetryRTS rebuilds the RTS for a still-ungranted token — the engine's
// timeout-and-retry path when the original RTS (or the answering CTS) may
// have been lost. Returns nil when the token is unknown or already granted,
// so a retry timer that lost the race against the CTS is a no-op.
func (s *RdvSender) RetryRTS(token uint64) *packet.Frame {
	p, ok := s.pending[token]
	if !ok {
		return nil
	}
	return s.rtsFor(token, p)
}

// HandleCTS processes a grant. Duplicate CTSes — the receiver re-grants
// when it sees a retried RTS for a transfer it already granted — are
// idempotent: only the first moves the payload to the grant hook.
func (s *RdvSender) HandleCTS(f *packet.Frame) {
	tok := f.Ctrl.Token
	p, ok := s.pending[tok]
	if !ok {
		// Already granted (duplicate CTS) or never ours (stray token from a
		// corrupted or replayed frame): drop and count.
		s.dupCTS++
		return
	}
	delete(s.pending, tok)
	s.granted[tok] = p
	s.onGrant(tok, p)
}

// BuildRData consumes the granted payload for token and returns the bulk
// frame to schedule. Unknown tokens panic: grants flow straight from
// HandleCTS to BuildRData inside the engine, so a miss is a local bug.
func (s *RdvSender) BuildRData(token uint64) *packet.Frame {
	p, ok := s.granted[token]
	if !ok {
		panic(fmt.Sprintf("proto: BuildRData for unknown token %d", token))
	}
	delete(s.granted, token)
	rd := packet.AcquireFrame()
	rd.Kind = packet.FrameRData
	rd.Src = s.node
	rd.Dst = p.Dst
	rd.Ctrl = packet.Ctrl{
		Token: token, Flow: p.Flow, Msg: p.Msg, Seq: p.Seq,
		Size: p.Size(), Last: p.Last,
	}
	rd.Bulk = p.Payload // aliases the application's payload; Reset only drops the reference
	return rd
}

// Outstanding returns the number of rendezvous transfers whose payload the
// engine still holds (un-granted plus granted-but-not-built).
func (s *RdvSender) Outstanding() int { return len(s.pending) + len(s.granted) }

// PendingTokens reports whether token is still awaiting a CTS.
func (s *RdvSender) Pending(token uint64) bool {
	_, ok := s.pending[token]
	return ok
}

// DupCTS returns the number of duplicate or stray CTS frames dropped.
func (s *RdvSender) DupCTS() uint64 { return s.dupCTS }

// rdvKey scopes receiver-side rendezvous state by source: tokens are
// per-sender counters, so two senders may use the same token value.
type rdvKey struct {
	src   packet.NodeID
	token uint64
}

// completedWindow bounds the receiver's memory of finished transfers per
// source. A retried RTS can arrive arbitrarily late (it was delayed in a
// rail queue while its sibling completed the transfer), and granting it
// would open a rendezvous no RData will ever close — leaking a concurrency
// slot permanently. The retry budget is small (core.DefaultRdvRetryMax
// with bounded backoff), so a duplicate older than the last 4096
// completions from one source cannot occur in practice.
const completedWindow = 4096

// completedLog remembers the most recent completedWindow finished tokens
// of one source (set + FIFO eviction ring).
type completedLog struct {
	set  map[uint64]bool
	ring []uint64
	next int
}

func (c *completedLog) add(token uint64) {
	if c.set == nil {
		c.set = make(map[uint64]bool, completedWindow)
		c.ring = make([]uint64, completedWindow)
	}
	if len(c.set) >= completedWindow {
		delete(c.set, c.ring[c.next])
	}
	c.ring[c.next] = token
	c.next = (c.next + 1) % completedWindow
	c.set[token] = true
}

func (c *completedLog) has(token uint64) bool { return c.set[token] }

// queuedRTS is a grant-slot queue entry: the request's identity copied out
// of the RTS frame, so the receiver never retains a frame past HandleRTS —
// frames are pooled objects the driver may recycle after dispatch.
type queuedRTS struct {
	src  packet.NodeID
	ctrl packet.Ctrl
}

// RdvReceiver is the sink-side engine: it grants RTSes (subject to a
// concurrency cap modeling receive-buffer supply) and turns RData frames
// back into packets for the reassembler.
type RdvReceiver struct {
	node      packet.NodeID
	send      SendHook
	reasm     *Reassembler
	max       int             // max concurrent granted rendezvous; 0 = unlimited
	granted   map[rdvKey]bool // in-flight granted transfers
	queued    map[rdvKey]bool // RTSes waiting for a grant slot
	queue     []queuedRTS     // grant-slot FIFO (mirror of queued)
	completed map[packet.NodeID]*completedLog
	dupRTS    uint64
	dupRD     uint64
	badRD     uint64
}

// NewRdvReceiver creates the engine. send emits CTS frames;
// maxConcurrent=0 grants immediately and without limit.
func NewRdvReceiver(node packet.NodeID, reasm *Reassembler, send SendHook, maxConcurrent int) *RdvReceiver {
	if send == nil {
		panic("proto: nil send hook")
	}
	if reasm == nil {
		panic("proto: nil reassembler")
	}
	return &RdvReceiver{
		node:      node,
		send:      send,
		reasm:     reasm,
		max:       maxConcurrent,
		granted:   make(map[rdvKey]bool),
		queued:    make(map[rdvKey]bool),
		completed: make(map[packet.NodeID]*completedLog),
	}
}

// HandleRTS grants (or queues) an incoming rendezvous request. A duplicate
// RTS — the sender timed out waiting for the CTS and retried — re-sends the
// CTS when the transfer was already granted (the original CTS may have been
// lost) and is otherwise ignored; it never double-grants. A straggler RTS
// for a transfer that already *completed* (its sibling won the race end to
// end) is dropped outright: re-granting it would hold a rendezvous slot
// open forever, since the sender has nothing left to send for the token.
func (r *RdvReceiver) HandleRTS(f *packet.Frame) {
	req := queuedRTS{src: f.Src, ctrl: f.Ctrl} // copy: f may be recycled after dispatch
	k := rdvKey{req.src, req.ctrl.Token}
	if c := r.completed[req.src]; c != nil && c.has(req.ctrl.Token) {
		r.dupRTS++
		return
	}
	if r.granted[k] {
		r.dupRTS++
		r.sendCTS(req) // recover a possibly-lost CTS without re-granting
		return
	}
	if r.queued[k] {
		r.dupRTS++
		return
	}
	if r.max > 0 && len(r.granted) >= r.max {
		r.queued[k] = true
		r.queue = append(r.queue, req)
		return
	}
	r.grant(req)
}

func (r *RdvReceiver) sendCTS(req queuedRTS) {
	cts := packet.AcquireFrame()
	cts.Kind = packet.FrameCTS
	cts.Src = r.node
	cts.Dst = req.src
	cts.Ctrl = req.ctrl
	r.send(cts)
}

func (r *RdvReceiver) grant(req queuedRTS) {
	r.granted[rdvKey{req.src, req.ctrl.Token}] = true
	r.sendCTS(req)
}

// HandleRData completes a rendezvous: the bulk payload becomes an ordinary
// fragment in the reassembly stream. RData frames for unknown transfers
// (already completed, or never granted) and frames whose payload length
// contradicts the negotiated size are dropped and counted — both are
// producible by a lossy or corrupting network, neither may crash the node.
func (r *RdvReceiver) HandleRData(src packet.NodeID, f *packet.Frame) {
	c := f.Ctrl
	k := rdvKey{src, c.Token}
	if !r.granted[k] {
		r.dupRD++
		return
	}
	if len(f.Bulk) != c.Size {
		r.badRD++
		return
	}
	delete(r.granted, k)
	log := r.completed[src]
	if log == nil {
		log = &completedLog{}
		r.completed[src] = log
	}
	log.add(k.token)
	// The bulk bytes escape into the reassembly stream (and from there to
	// the application): pin the frame's backing buffer so releasing the
	// frame cannot recycle memory the delivered payload aliases. Bulk
	// transfers stay zero-copy; the buffer's lifetime is the payload's.
	f.PinBacking()
	p := packet.Packet{
		Flow: c.Flow, Msg: c.Msg, Seq: c.Seq, Last: c.Last,
		Src: src, Dst: r.node, Class: packet.ClassBulk,
		Recv: packet.RecvCheaper, Payload: f.Bulk,
	}
	r.reasm.Ingest(src, &p)
	// A completed transfer frees a grant slot for a queued RTS.
	if len(r.queue) > 0 && (r.max == 0 || len(r.granted) < r.max) {
		next := r.queue[0]
		r.queue = r.queue[1:]
		delete(r.queued, rdvKey{next.src, next.ctrl.Token})
		r.grant(next)
	}
}

// QueuedRTS returns the number of requests waiting for a grant slot.
func (r *RdvReceiver) QueuedRTS() int { return len(r.queue) }

// Granted returns the number of in-flight granted transfers.
func (r *RdvReceiver) Granted() int { return len(r.granted) }

// Anomalies returns the counts of tolerated protocol irregularities:
// duplicate RTSes, RData frames for unknown transfers, and RData frames
// whose payload contradicted the negotiated size.
func (r *RdvReceiver) Anomalies() (dupRTS, dupRData, badRData uint64) {
	return r.dupRTS, r.dupRD, r.badRD
}
