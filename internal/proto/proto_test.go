package proto

import (
	"bytes"
	"testing"
	"testing/quick"

	"newmad/internal/packet"
	"newmad/internal/simnet"
)

func mkPkt(flow packet.FlowID, seq int, payload string) *packet.Packet {
	return &packet.Packet{
		Flow: flow, Msg: 1, Seq: seq, Src: 0, Dst: 1,
		Class: packet.ClassSmall, Payload: []byte(payload),
	}
}

func TestReassemblerInOrder(t *testing.T) {
	var got []string
	r := NewReassembler(1, func(d Deliverable) { got = append(got, string(d.Pkt.Payload)) })
	r.Ingest(0, mkPkt(1, 0, "a"))
	r.Ingest(0, mkPkt(1, 1, "b"))
	r.Ingest(0, mkPkt(1, 2, "c"))
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
	if r.PendingFragments() != 0 {
		t.Fatal("pending after in-order ingest")
	}
}

func TestReassemblerReordersWithinFlow(t *testing.T) {
	var got []string
	r := NewReassembler(1, func(d Deliverable) { got = append(got, string(d.Pkt.Payload)) })
	r.Ingest(0, mkPkt(1, 2, "c"))
	r.Ingest(0, mkPkt(1, 0, "a"))
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("premature release: %v", got)
	}
	if r.PendingFragments() != 1 {
		t.Fatalf("pending = %d, want 1", r.PendingFragments())
	}
	r.Ingest(0, mkPkt(1, 1, "b"))
	if len(got) != 3 || got[1] != "b" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}

func TestReassemblerIndependentFlows(t *testing.T) {
	var got []string
	r := NewReassembler(1, func(d Deliverable) {
		got = append(got, string(d.Pkt.Payload))
	})
	r.Ingest(0, mkPkt(2, 0, "x0"))
	r.Ingest(0, mkPkt(1, 1, "a1")) // flow 1 waits for seq 0
	r.Ingest(0, mkPkt(2, 1, "x1")) // flow 2 keeps flowing
	if len(got) != 2 {
		t.Fatalf("flow 2 blocked by flow 1: %v", got)
	}
	r.Ingest(0, mkPkt(1, 0, "a0"))
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
}

func TestReassemblerScopesFlowsBySource(t *testing.T) {
	// Two senders reusing flow id 1 toward the same receiver must not
	// conflate: each (src, flow) pair is an independent stream.
	var got []string
	r := NewReassembler(9, func(d Deliverable) {
		got = append(got, string(d.Pkt.Payload))
	})
	r.Ingest(0, mkPkt(1, 0, "from0-a"))
	r.Ingest(1, mkPkt(1, 0, "from1-a")) // same flow/seq, different source
	r.Ingest(0, mkPkt(1, 1, "from0-b"))
	r.Ingest(1, mkPkt(1, 1, "from1-b"))
	if len(got) != 4 {
		t.Fatalf("delivered %d of 4 (source collision?)", len(got))
	}
	if r.PendingFragments() != 0 {
		t.Fatal("fragments stuck")
	}
}

// TestReassemblerDuplicatesDropped pins the exactly-once filter: a second
// copy of a delivered fragment, and a second copy of one still buffered out
// of order, are both dropped and counted — never delivered twice, never a
// crash. The failover/retry machinery depends on this to re-send frames
// whose fate a broken connection left ambiguous.
func TestReassemblerDuplicatesDropped(t *testing.T) {
	var got []string
	r := NewReassembler(1, func(d Deliverable) { got = append(got, string(d.Pkt.Payload)) })
	r.Ingest(0, mkPkt(1, 0, "a"))
	r.Ingest(0, mkPkt(1, 0, "a-again")) // already delivered
	r.Ingest(0, mkPkt(1, 2, "c"))
	r.Ingest(0, mkPkt(1, 2, "c-again")) // still buffered
	r.Ingest(0, mkPkt(1, 1, "b"))
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
	if r.Duplicates() != 2 {
		t.Fatalf("duplicates = %d, want 2", r.Duplicates())
	}
	if r.PendingFragments() != 0 {
		t.Fatal("fragments stuck after dedupe")
	}
}

// TestRendezvousRetryIdempotent replays the lossy-control-path recovery
// end to end: a retried RTS re-elicits the CTS without double-granting, a
// duplicate CTS does not double-fire the grant hook, and a replayed RData
// for a completed transfer is dropped — so the payload arrives exactly
// once no matter which control frame was lost and retried.
func TestRendezvousRetryIdempotent(t *testing.T) {
	var delivered []Deliverable
	reasm := NewReassembler(1, func(d Deliverable) { delivered = append(delivered, d) })
	var ctses []*packet.Frame
	rdvR := NewRdvReceiver(1, reasm, func(f *packet.Frame) { ctses = append(ctses, f) }, 0)
	grants := 0
	rdvS := NewRdvSender(0, func(uint64, *packet.Packet) { grants++ })

	p := &packet.Packet{Flow: 1, Msg: 1, Seq: 0, Last: true, Src: 0, Dst: 1,
		Class: packet.ClassBulk, Payload: []byte("payload")}
	rts := rdvS.Start(p)
	tok := rts.Ctrl.Token
	if !rdvS.Pending(tok) {
		t.Fatal("token not pending after Start")
	}

	// The RTS was lost: a retry rebuilds it, byte-identical in intent.
	retry := rdvS.RetryRTS(tok)
	if retry == nil || retry.Ctrl.Token != tok {
		t.Fatalf("retry RTS = %+v", retry)
	}

	// Both copies arrive; the receiver grants once but answers CTS twice
	// (the first CTS may have been the lost frame).
	rdvR.HandleRTS(rts)
	rdvR.HandleRTS(retry)
	if len(ctses) != 2 {
		t.Fatalf("CTSes = %d, want 2 (one per RTS copy)", len(ctses))
	}
	if rdvR.Granted() != 1 {
		t.Fatalf("granted = %d, want 1", rdvR.Granted())
	}
	if dupRTS, _, _ := rdvR.Anomalies(); dupRTS != 1 {
		t.Fatalf("dupRTS = %d, want 1", dupRTS)
	}

	// Both CTSes arrive; the grant hook fires once.
	rdvS.HandleCTS(ctses[0])
	rdvS.HandleCTS(ctses[1])
	if grants != 1 {
		t.Fatalf("grant hook fired %d times", grants)
	}
	if rdvS.DupCTS() != 1 {
		t.Fatalf("dupCTS = %d, want 1", rdvS.DupCTS())
	}
	if rdvS.RetryRTS(tok) != nil {
		t.Fatal("granted token still retryable")
	}

	// The RData travels, then a stale duplicate is replayed.
	rd := rdvS.BuildRData(tok)
	rdvR.HandleRData(0, rd)
	rdvR.HandleRData(0, rd)
	if len(delivered) != 1 || string(delivered[0].Pkt.Payload) != "payload" {
		t.Fatalf("delivered %v", delivered)
	}
	if _, dupRD, _ := rdvR.Anomalies(); dupRD != 1 {
		t.Fatalf("dupRData = %d, want 1", dupRD)
	}
	if rdvS.Outstanding() != 0 || rdvR.Granted() != 0 {
		t.Fatal("state leaked after the exchange")
	}
}

// TestRendezvousStragglerRTSAfterCompletion: an RTS copy that arrives
// AFTER its transfer already completed (it sat in a dead rail's queue while
// the retried copy won the race end to end) must not be re-granted — the
// sender has nothing left to send for the token, so a re-grant would hold
// a rendezvous slot open forever and, under RdvMaxConcurrent, eventually
// wedge all rendezvous traffic from that peer.
func TestRendezvousStragglerRTSAfterCompletion(t *testing.T) {
	reasm := NewReassembler(1, func(Deliverable) {})
	var ctses []*packet.Frame
	rdvR := NewRdvReceiver(1, reasm, func(f *packet.Frame) { ctses = append(ctses, f) }, 1)
	rdvS := NewRdvSender(0, func(uint64, *packet.Packet) {})

	p := &packet.Packet{Flow: 1, Seq: 0, Last: true, Src: 0, Dst: 1, Payload: make([]byte, 16)}
	rts := rdvS.Start(p)
	rdvR.HandleRTS(rts)
	rdvS.HandleCTS(ctses[0])
	rdvR.HandleRData(0, rdvS.BuildRData(rts.Ctrl.Token))
	if rdvR.Granted() != 0 {
		t.Fatalf("granted = %d after completion", rdvR.Granted())
	}

	// The straggler copy of the same RTS arrives late: no grant, no CTS.
	before := len(ctses)
	rdvR.HandleRTS(rts)
	if rdvR.Granted() != 0 {
		t.Fatal("straggler RTS re-granted a completed transfer (slot leak)")
	}
	if len(ctses) != before {
		t.Fatal("straggler RTS re-elicited a CTS for a completed transfer")
	}
	if dupRTS, _, _ := rdvR.Anomalies(); dupRTS != 1 {
		t.Fatalf("dupRTS = %d, want 1", dupRTS)
	}

	// The slot is genuinely free: a fresh rendezvous grants immediately
	// despite the cap of 1.
	p2 := &packet.Packet{Flow: 2, Seq: 0, Last: true, Src: 0, Dst: 1, Payload: make([]byte, 16)}
	rdvR.HandleRTS(rdvS.Start(p2))
	if rdvR.Granted() != 1 || rdvR.QueuedRTS() != 0 {
		t.Fatalf("fresh RTS blocked: granted=%d queued=%d", rdvR.Granted(), rdvR.QueuedRTS())
	}
}

// TestRendezvousBadRDataDropped: an RData whose payload length contradicts
// the negotiated size is dropped (counted) and the grant stays open for the
// genuine frame.
func TestRendezvousBadRDataDropped(t *testing.T) {
	reasm := NewReassembler(1, func(Deliverable) {})
	var ctses []*packet.Frame
	rdvR := NewRdvReceiver(1, reasm, func(f *packet.Frame) { ctses = append(ctses, f) }, 0)
	rdvS := NewRdvSender(0, func(uint64, *packet.Packet) {})
	p := &packet.Packet{Flow: 1, Seq: 0, Last: true, Src: 0, Dst: 1, Payload: make([]byte, 32)}
	rts := rdvS.Start(p)
	rdvR.HandleRTS(rts)
	rdvS.HandleCTS(ctses[0])
	rd := rdvS.BuildRData(rts.Ctrl.Token)
	corrupt := *rd
	corrupt.Bulk = rd.Bulk[:16] // lies about its size
	rdvR.HandleRData(0, &corrupt)
	if _, _, badRD := rdvR.Anomalies(); badRD != 1 {
		t.Fatalf("badRData = %d, want 1", badRD)
	}
	if rdvR.Granted() != 1 {
		t.Fatal("grant lost to a corrupt RData")
	}
	rdvR.HandleRData(0, rd)
	if rdvR.Granted() != 0 {
		t.Fatal("genuine RData after corrupt one not accepted")
	}
}

// Property: any permutation of fragments 0..n-1 of a flow is delivered in
// exactly ascending order.
func TestReassemblerPermutationProperty(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size%20) + 1
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		rng := simnet.NewRNG(seed)
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var got []int
		r := NewReassembler(1, func(d Deliverable) { got = append(got, d.Pkt.Seq) })
		for _, seq := range order {
			r.Ingest(0, mkPkt(1, seq, "p"))
		}
		if len(got) != n || r.PendingFragments() != 0 {
			return false
		}
		for i, s := range got {
			if s != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousFullExchange(t *testing.T) {
	// Wire sender node 0 and receiver node 1 back to back (no network):
	// frames produced by one side are handed straight to the other.
	var delivered []Deliverable
	reasm := NewReassembler(1, func(d Deliverable) { delivered = append(delivered, d) })

	var senderOut []*packet.Frame // frames node 0 wants sent
	var grants []uint64
	rdvS := NewRdvSender(0, func(tok uint64, p *packet.Packet) { grants = append(grants, tok) })
	rdvR := NewRdvReceiver(1, reasm, func(f *packet.Frame) { senderOut = append(senderOut, f) }, 0)

	payload := bytes.Repeat([]byte{0x42}, 100000)
	p := &packet.Packet{Flow: 5, Msg: 2, Seq: 7, Last: true, Src: 0, Dst: 1,
		Class: packet.ClassBulk, Payload: payload}

	rts := rdvS.Start(p)
	if rts.Kind != packet.FrameRTS || rts.Ctrl.Size != len(payload) {
		t.Fatalf("bad RTS: %+v", rts)
	}
	if rdvS.Outstanding() != 1 {
		t.Fatal("sender should track one pending rendezvous")
	}

	rdvR.HandleRTS(rts)
	if len(senderOut) != 1 || senderOut[0].Kind != packet.FrameCTS {
		t.Fatalf("receiver did not grant: %v", senderOut)
	}
	if rdvR.Granted() != 1 {
		t.Fatal("grant not counted")
	}

	rdvS.HandleCTS(senderOut[0])
	if len(grants) != 1 {
		t.Fatal("grant hook not invoked")
	}

	rdata := rdvS.BuildRData(grants[0])
	if rdata.Kind != packet.FrameRData || len(rdata.Bulk) != len(payload) {
		t.Fatalf("bad RData: %v", rdata)
	}
	if rdvS.Outstanding() != 0 {
		t.Fatal("pending not consumed by BuildRData")
	}

	// Fragment seq 7 requires seqs 0..6 first; feed them so delivery
	// happens in order.
	for i := 0; i < 7; i++ {
		reasm.Ingest(0, &packet.Packet{Flow: 5, Msg: 2, Seq: i, Src: 0, Dst: 1, Payload: []byte{1}})
	}
	rdvR.HandleRData(0, rdata)
	if len(delivered) != 8 {
		t.Fatalf("delivered = %d", len(delivered))
	}
	last := delivered[7].Pkt
	if last.Seq != 7 || !bytes.Equal(last.Payload, payload) || last.Class != packet.ClassBulk {
		t.Fatalf("rendezvous payload corrupted: %+v", last)
	}
	if rdvR.Granted() != 0 {
		t.Fatal("grant slot not released")
	}
}

func TestRendezvousConcurrencyCap(t *testing.T) {
	reasm := NewReassembler(1, func(Deliverable) {})
	var ctses []*packet.Frame
	rdvR := NewRdvReceiver(1, reasm, func(f *packet.Frame) { ctses = append(ctses, f) }, 1)
	rdvS := NewRdvSender(0, func(uint64, *packet.Packet) {})

	p1 := &packet.Packet{Flow: 1, Seq: 0, Src: 0, Dst: 1, Payload: make([]byte, 10), Last: true}
	p2 := &packet.Packet{Flow: 2, Seq: 0, Src: 0, Dst: 1, Payload: make([]byte, 10), Last: true}
	rts1 := rdvS.Start(p1)
	rts2 := rdvS.Start(p2)
	rdvR.HandleRTS(rts1)
	rdvR.HandleRTS(rts2)
	if len(ctses) != 1 {
		t.Fatalf("cap=1 granted %d", len(ctses))
	}
	if rdvR.QueuedRTS() != 1 {
		t.Fatalf("queued = %d", rdvR.QueuedRTS())
	}
	// Completing the first transfer releases the second grant.
	rdvS.HandleCTS(ctses[0])
	rd := rdvS.BuildRData(rts1.Ctrl.Token)
	rdvR.HandleRData(0, rd)
	if len(ctses) != 2 {
		t.Fatal("queued RTS not granted after completion")
	}
	if rdvR.QueuedRTS() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestRendezvousUnknownTokenDropped(t *testing.T) {
	// A stray CTS (corrupted token, or a replay from before a restart) is
	// dropped and counted; only the engine-internal BuildRData path treats
	// an unknown token as fatal.
	rdvS := NewRdvSender(0, func(uint64, *packet.Packet) {})
	rdvS.HandleCTS(&packet.Frame{Kind: packet.FrameCTS, Ctrl: packet.Ctrl{Token: 99}})
	if rdvS.DupCTS() != 1 {
		t.Fatalf("dupCTS = %d, want 1", rdvS.DupCTS())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("BuildRData for unknown token accepted")
		}
	}()
	rdvS.BuildRData(99)
}

func TestRMAPutGet(t *testing.T) {
	// Two nodes with direct frame exchange.
	var wires [2][]*packet.Frame
	rmaA := NewRMA(0, func(f *packet.Frame) { wires[0] = append(wires[0], f) })
	rmaB := NewRMA(1, func(f *packet.Frame) { wires[1] = append(wires[1], f) })

	window := make([]byte, 64)
	rmaB.RegisterWindow(7, window)
	if _, ok := rmaB.Window(7); !ok {
		t.Fatal("window not registered")
	}

	// Put with completion.
	putDone := false
	put := rmaA.Put(1, 7, 16, []byte("hello"), func() { putDone = true })
	if put.Kind != packet.FramePut {
		t.Fatalf("put kind = %v", put.Kind)
	}
	rmaB.HandlePut(0, put)
	if string(window[16:21]) != "hello" {
		t.Fatalf("window = %q", window[10:26])
	}
	if len(wires[1]) != 1 || wires[1][0].Kind != packet.FrameAck {
		t.Fatal("put ack not emitted")
	}
	rmaA.HandleAck(wires[1][0])
	if !putDone {
		t.Fatal("put completion not invoked")
	}

	// Fire-and-forget put emits no ack.
	wires[1] = nil
	rmaB.HandlePut(0, rmaA.Put(1, 7, 0, []byte("x"), nil))
	if len(wires[1]) != 0 {
		t.Fatal("fire-and-forget put acked")
	}

	// Get round trip.
	var gotData []byte
	get := rmaA.Get(1, 7, 16, 5, func(data []byte) { gotData = data })
	rmaB.HandleGet(0, get)
	if len(wires[1]) != 1 || wires[1][0].Kind != packet.FrameGetReply {
		t.Fatal("get reply not emitted")
	}
	rmaA.HandleGetReply(wires[1][0])
	if string(gotData) != "hello" {
		t.Fatalf("get returned %q", gotData)
	}
	g, p := rmaA.Outstanding()
	if g != 0 || p != 0 {
		t.Fatalf("outstanding = %d gets, %d puts", g, p)
	}
}

func TestRMABoundsAndErrors(t *testing.T) {
	// Remote-originated irregularities — out-of-range spans, unknown
	// windows, unknown tokens — are rejected whole and counted: one corrupt
	// frame from a chaotic network must not crash the node or partially
	// apply. Local API misuse (a Get with no callback) still panics.
	win := make([]byte, 32)
	rma := NewRMA(1, func(*packet.Frame) {})
	rma.RegisterWindow(1, win)
	other := NewRMA(0, func(*packet.Frame) {})

	before := append([]byte(nil), win...)
	rejected := func(name string, want uint64, fn func()) {
		t.Helper()
		fn()
		if got := rma.Rejected(); got != want {
			t.Errorf("%s: rejected = %d, want %d", name, got, want)
		}
	}
	rejected("put out of range", 1, func() {
		rma.HandlePut(0, other.Put(1, 1, 30, []byte("toolong"), nil))
	})
	if string(win) != string(before) {
		t.Fatal("out-of-range put partially applied")
	}
	rejected("put unknown window", 2, func() {
		rma.HandlePut(0, other.Put(1, 9, 0, []byte("x"), nil))
	})
	rejected("get out of range", 3, func() {
		rma.HandleGet(0, other.Get(1, 1, 30, 10, func([]byte) {}))
	})
	rejected("get unknown window", 4, func() {
		rma.HandleGet(0, other.Get(1, 9, 0, 1, func([]byte) {}))
	})
	rejected("unknown get reply", 5, func() {
		rma.HandleGetReply(&packet.Frame{Kind: packet.FrameGetReply, Ctrl: packet.Ctrl{Token: 404}})
	})
	rejected("unknown ack", 6, func() {
		rma.HandleAck(&packet.Frame{Kind: packet.FrameAck, Ctrl: packet.Ctrl{Token: 404}})
	})
	defer func() {
		if recover() == nil {
			t.Error("get without callback did not panic")
		}
	}()
	other.Get(1, 1, 0, 1, nil)
}

func TestRMAGetReplyIsACopy(t *testing.T) {
	// HandleGet must snapshot the window: later writes to the window must
	// not alter an in-flight reply.
	var reply *packet.Frame
	rma := NewRMA(1, func(f *packet.Frame) { reply = f })
	win := []byte("original")
	rma.RegisterWindow(1, win)
	other := NewRMA(0, func(*packet.Frame) {})
	var got []byte
	g := other.Get(1, 1, 0, 8, func(d []byte) { got = d })
	rma.HandleGet(0, g)
	copy(win, "CLOBBER!")
	other.HandleGetReply(reply)
	if string(got) != "original" {
		t.Fatalf("reply aliased the window: %q", got)
	}
}

func TestDispatcherRouting(t *testing.T) {
	var delivered []Deliverable
	reasm := NewReassembler(1, func(d Deliverable) { delivered = append(delivered, d) })
	var out []*packet.Frame
	send := func(f *packet.Frame) { out = append(out, f) }
	rdvS := NewRdvSender(1, func(uint64, *packet.Packet) {})
	rdvR := NewRdvReceiver(1, reasm, send, 0)
	rma := NewRMA(1, send)
	rma.RegisterWindow(1, make([]byte, 16))
	d := NewDispatcher(1, reasm, rdvS, rdvR, rma)

	// Data frame with two entries from two flows.
	df := &packet.Frame{Kind: packet.FrameData, Src: 0, Dst: 1, Entries: []packet.Entry{
		{Flow: 1, Msg: 1, Seq: 0, Last: true, Payload: []byte("a")},
		{Flow: 2, Msg: 1, Seq: 0, Last: true, Payload: []byte("b")},
	}}
	d.HandleFrame(0, df)
	if len(delivered) != 2 {
		t.Fatalf("data entries delivered = %d", len(delivered))
	}

	// RTS routes to receiver engine and produces a CTS.
	peer := NewRdvSender(0, func(uint64, *packet.Packet) {})
	rts := peer.Start(&packet.Packet{Flow: 3, Seq: 0, Src: 0, Dst: 1, Payload: make([]byte, 8), Last: true})
	d.HandleFrame(0, rts)
	if len(out) != 1 || out[0].Kind != packet.FrameCTS {
		t.Fatal("RTS not routed")
	}

	// Put routes to RMA.
	otherRMA := NewRMA(0, func(*packet.Frame) {})
	d.HandleFrame(0, otherRMA.Put(1, 1, 0, []byte("zz"), nil))
	w, _ := rma.Window(1)
	if string(w[:2]) != "zz" {
		t.Fatal("put not routed")
	}

	// Unknown kind panics.
	defer func() {
		if recover() == nil {
			t.Fatal("unknown frame kind accepted")
		}
	}()
	d.HandleFrame(0, &packet.Frame{Kind: packet.FrameKind(99)})
}

func TestDispatcherNilEnginePanics(t *testing.T) {
	d := NewDispatcher(1, nil, nil, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("frame for nil engine accepted")
		}
	}()
	d.HandleFrame(0, &packet.Frame{Kind: packet.FrameData})
}
