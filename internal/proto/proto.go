// Package proto implements the message-level protocols the optimizer
// chooses between — eager transfer, rendezvous (RTS/CTS/RData), and RMA
// put/get emulation — together with the receiver-side demultiplexing and
// reassembly that turns frames back into ordered per-flow packet streams.
//
// The split of responsibilities mirrors the paper's architecture: the
// optimizing layer decides *when and how* packets travel (aggregate, delay,
// reorder, convert to rendezvous); this package supplies the mechanics of
// each method and hides them from the layers above.
package proto

import (
	"newmad/internal/packet"
)

// Deliverable is a packet handed to the layer above (internal/mad) in
// intra-flow FIFO order, regardless of how it traveled.
//
// The packet travels BY VALUE: the receive path materializes packets on
// the stack and the reassembler copies whatever must wait, so delivering a
// frame's worth of fragments costs no per-packet allocations — and no
// consumer can retain a pointer into recycled storage by accident. The
// Payload bytes are the consumer's to keep (DESIGN.md §5); everything else
// is copied out of the struct as needed.
type Deliverable struct {
	Src packet.NodeID
	Pkt packet.Packet
}

// DeliverFunc receives reassembled packets.
type DeliverFunc func(d Deliverable)

// Reassembler is the receive-side demultiplexer of one node: frames in,
// ordered per-flow packet streams out.
//
// High-speed interconnect fabrics (and TCP) deliver frames of one channel
// in order, but the optimizer spreads a flow across channels and NICs, and
// rendezvous bulk data arrives out of band. The reassembler therefore
// buffers out-of-order fragments per flow and releases them strictly by
// submission sequence (Seq within Msg, Msg order within the flow being
// implied by Seq numbering at the source — the collect layer numbers
// fragments of a flow with a single monotonically increasing sequence).
type Reassembler struct {
	node    packet.NodeID
	deliver DeliverFunc
	flows   map[flowKey]*flowState
	dups    uint64
}

// flowKey scopes reassembly state by source: two senders may use the same
// flow id (the mad layer never does — it encodes the source in the id —
// but raw engine users get collision safety regardless).
type flowKey struct {
	src  packet.NodeID
	flow packet.FlowID
}

type flowState struct {
	nextSeq int
	pending map[int]Deliverable
}

// NewReassembler creates the receive demux for node, delivering in-order
// packets to fn.
func NewReassembler(node packet.NodeID, fn DeliverFunc) *Reassembler {
	if fn == nil {
		panic("proto: nil deliver func")
	}
	return &Reassembler{node: node, deliver: fn, flows: make(map[flowKey]*flowState)}
}

// flowSeq is the ordering key the collect layer assigns: fragments of one
// flow carry strictly increasing Seq values across messages (Msg changes,
// Seq keeps counting). See mad.Channel for the sender side.

// Ingest accepts one arrived packet (from any frame kind) and releases
// whatever has become in-order. Duplicate fragments — a fragment already
// delivered, or a second copy of one still buffered — are dropped and
// counted: with the failover and retry machinery re-sending frames whose
// fate a broken connection left ambiguous, the reassembler's sequence
// numbers are what turns at-least-once transport into exactly-once
// delivery.
func (r *Reassembler) Ingest(src packet.NodeID, p *packet.Packet) {
	k := flowKey{src, p.Flow}
	fs := r.flows[k]
	if fs == nil {
		fs = &flowState{pending: make(map[int]Deliverable)}
		r.flows[k] = fs
	}
	if p.Seq < fs.nextSeq {
		r.dups++
		return
	}
	if p.Seq == fs.nextSeq {
		// In-order fast path — the steady state on an ordered transport:
		// deliver straight from the caller's (usually stack-resident)
		// packet without a round trip through the pending map.
		fs.nextSeq++
		r.deliver(Deliverable{Src: src, Pkt: *p})
	} else {
		if _, dup := fs.pending[p.Seq]; dup {
			r.dups++
			return
		}
		fs.pending[p.Seq] = Deliverable{Src: src, Pkt: *p}
	}
	for {
		d, ok := fs.pending[fs.nextSeq]
		if !ok {
			return
		}
		delete(fs.pending, fs.nextSeq)
		fs.nextSeq++
		r.deliver(d)
	}
}

// Duplicates returns the number of duplicate fragments dropped — the
// exactly-once filter's activity counter. Zero on loss-free fabrics; under
// chaos it counts how often a retransmission raced its original.
func (r *Reassembler) Duplicates() uint64 { return r.dups }

// PendingFragments returns how many fragments are buffered out of order
// (should drain to zero at quiesce; tests assert this invariant).
func (r *Reassembler) PendingFragments() int {
	n := 0
	for _, fs := range r.flows {
		n += len(fs.pending)
	}
	return n
}
