package proto

import (
	"fmt"

	"newmad/internal/packet"
)

// Dispatcher is the per-node frame router of the receive path: every frame
// a driver delivers is classified by kind and handed to the engine that
// understands it. It is the single place where the frame taxonomy is
// interpreted, so adding a protocol means one new case here plus its
// engine.
type Dispatcher struct {
	node  packet.NodeID
	reasm *Reassembler
	rdvS  *RdvSender
	rdvR  *RdvReceiver
	rma   *RMA
}

// NewDispatcher wires the engines of one node together. Any engine may be
// nil when the node does not use that protocol; receiving a frame for a
// nil engine panics, making configuration mistakes loud.
func NewDispatcher(node packet.NodeID, reasm *Reassembler, rdvS *RdvSender, rdvR *RdvReceiver, rma *RMA) *Dispatcher {
	return &Dispatcher{node: node, reasm: reasm, rdvS: rdvS, rdvR: rdvR, rma: rma}
}

// HandleFrame routes one received frame. The frame itself is only
// borrowed: the caller (a wire driver's receive path, via the engine) may
// release it — and recycle its backing buffer — as soon as HandleFrame
// returns, so every engine below copies or pins whatever it keeps.
func (d *Dispatcher) HandleFrame(src packet.NodeID, f *packet.Frame) {
	switch f.Kind {
	case packet.FrameData:
		if d.reasm == nil {
			panic(d.misroute(f))
		}
		d.ingestData(src, f)
	case packet.FrameRTS:
		if d.rdvR == nil {
			panic(d.misroute(f))
		}
		d.rdvR.HandleRTS(f)
	case packet.FrameCTS:
		if d.rdvS == nil {
			panic(d.misroute(f))
		}
		d.rdvS.HandleCTS(f)
	case packet.FrameRData:
		if d.rdvR == nil {
			panic(d.misroute(f))
		}
		d.rdvR.HandleRData(src, f)
	case packet.FramePut:
		if d.rma == nil {
			panic(d.misroute(f))
		}
		d.rma.HandlePut(src, f)
	case packet.FrameGet:
		if d.rma == nil {
			panic(d.misroute(f))
		}
		d.rma.HandleGet(src, f)
	case packet.FrameGetReply:
		if d.rma == nil {
			panic(d.misroute(f))
		}
		d.rma.HandleGetReply(f)
	case packet.FrameAck:
		if d.rma == nil {
			panic(d.misroute(f))
		}
		d.rma.HandleAck(f)
	default:
		panic(fmt.Sprintf("proto: node %d received unknown frame kind %v", d.node, f.Kind))
	}
}

// ingestData turns a data frame's entries into receiver-side packets and
// feeds the reassembler. Packets are materialized on the stack and travel
// by value through Deliverable, so an aggregated frame's dispatch costs at
// most one allocation. Payload handling is the receive path's memory-
// discipline pivot (DESIGN.md §5):
//
//   - A backed frame's payloads alias a pooled wire buffer that will be
//     recycled right after dispatch, so they are copied out into a single
//     payload block owned by the delivered payload slices.
//   - An unbacked frame (simulated fabrics, hand-built tests) keeps the
//     historical zero-copy aliasing; nothing recycles its bytes.
func (d *Dispatcher) ingestData(src packet.NodeID, f *packet.Frame) {
	var block []byte
	if f.Backed() {
		total := 0
		for i := range f.Entries {
			total += len(f.Entries[i].Payload)
		}
		if total > 0 {
			block = make([]byte, 0, total)
		}
	}
	var p packet.Packet
	for i := range f.Entries {
		e := &f.Entries[i]
		p = packet.Packet{
			Flow: e.Flow, Msg: e.Msg, Seq: e.Seq, Last: e.Last,
			Src: src, Dst: d.node, Class: e.Class, Recv: e.Recv,
			Payload: e.Payload, Enqueued: e.Enqueued,
		}
		if block != nil && len(e.Payload) > 0 {
			start := len(block)
			block = append(block, e.Payload...)
			p.Payload = block[start:len(block):len(block)]
		}
		d.reasm.Ingest(src, &p)
	}
}

func (d *Dispatcher) misroute(f *packet.Frame) string {
	return fmt.Sprintf("proto: node %d received %v frame but has no engine for it", d.node, f.Kind)
}
