package proto

import (
	"fmt"

	"newmad/internal/packet"
)

// Dispatcher is the per-node frame router of the receive path: every frame
// a driver delivers is classified by kind and handed to the engine that
// understands it. It is the single place where the frame taxonomy is
// interpreted, so adding a protocol means one new case here plus its
// engine.
type Dispatcher struct {
	node  packet.NodeID
	reasm *Reassembler
	rdvS  *RdvSender
	rdvR  *RdvReceiver
	rma   *RMA
}

// NewDispatcher wires the engines of one node together. Any engine may be
// nil when the node does not use that protocol; receiving a frame for a
// nil engine panics, making configuration mistakes loud.
func NewDispatcher(node packet.NodeID, reasm *Reassembler, rdvS *RdvSender, rdvR *RdvReceiver, rma *RMA) *Dispatcher {
	return &Dispatcher{node: node, reasm: reasm, rdvS: rdvS, rdvR: rdvR, rma: rma}
}

// HandleFrame routes one received frame.
func (d *Dispatcher) HandleFrame(src packet.NodeID, f *packet.Frame) {
	switch f.Kind {
	case packet.FrameData:
		if d.reasm == nil {
			panic(d.misroute(f))
		}
		for i := range f.Entries {
			d.reasm.Ingest(src, f.Entries[i].ToPacket(src, d.node))
		}
	case packet.FrameRTS:
		if d.rdvR == nil {
			panic(d.misroute(f))
		}
		d.rdvR.HandleRTS(f)
	case packet.FrameCTS:
		if d.rdvS == nil {
			panic(d.misroute(f))
		}
		d.rdvS.HandleCTS(f)
	case packet.FrameRData:
		if d.rdvR == nil {
			panic(d.misroute(f))
		}
		d.rdvR.HandleRData(src, f)
	case packet.FramePut:
		if d.rma == nil {
			panic(d.misroute(f))
		}
		d.rma.HandlePut(src, f)
	case packet.FrameGet:
		if d.rma == nil {
			panic(d.misroute(f))
		}
		d.rma.HandleGet(src, f)
	case packet.FrameGetReply:
		if d.rma == nil {
			panic(d.misroute(f))
		}
		d.rma.HandleGetReply(f)
	case packet.FrameAck:
		if d.rma == nil {
			panic(d.misroute(f))
		}
		d.rma.HandleAck(f)
	default:
		panic(fmt.Sprintf("proto: node %d received unknown frame kind %v", d.node, f.Kind))
	}
}

func (d *Dispatcher) misroute(f *packet.Frame) string {
	return fmt.Sprintf("proto: node %d received %v frame but has no engine for it", d.node, f.Kind)
}
