package proto

import (
	"testing"

	"newmad/internal/packet"
)

// FuzzDispatch is the receive-path counterpart of packet.FuzzDecode: where
// that harness proves arbitrary bytes cannot panic the wire decoder, this
// one proves arbitrary *frame sequences* — including duplicated control
// frames, replayed RData, mid-rendezvous garbage and RMA frames addressing
// nonsense windows — cannot panic the protocol engines behind the
// dispatcher, and that whatever is delivered still honors the reassembler's
// exactly-once, in-order contract.
//
// The input is treated as a byte stream: decodable frames are dispatched,
// undecodable prefixes are skipped a byte at a time (garbage between frames
// is exactly what a corrupting transport produces). The committed seed
// corpus (testdata/fuzz/FuzzDispatch) mirrors the programmatic seeds below,
// like packet/testdata/fuzz does for FuzzDecode.

// fuzzDispatchSeeds returns representative frame sequences: happy paths,
// retry paths, and protocol nonsense.
func fuzzDispatchSeeds() [][]byte {
	mk := func(frames ...*packet.Frame) []byte {
		var out []byte
		for _, f := range frames {
			out = f.Encode(out)
		}
		return out
	}
	rts := &packet.Frame{Kind: packet.FrameRTS, Src: 0, Dst: 1,
		Ctrl: packet.Ctrl{Token: 1, Flow: 4, Msg: 1, Seq: 0, Size: 8, Last: true}}
	cts := &packet.Frame{Kind: packet.FrameCTS, Src: 1, Dst: 0, Ctrl: rts.Ctrl}
	rdata := &packet.Frame{Kind: packet.FrameRData, Src: 0, Dst: 1, Ctrl: rts.Ctrl,
		Bulk: []byte("12345678")}
	data := &packet.Frame{Kind: packet.FrameData, Src: 0, Dst: 1, Entries: []packet.Entry{
		{Flow: 1, Msg: 1, Seq: 0, Payload: []byte("a")},
		{Flow: 1, Msg: 1, Seq: 1, Last: true, Payload: []byte("b")},
	}}
	outOfOrder := &packet.Frame{Kind: packet.FrameData, Src: 2, Dst: 1, Entries: []packet.Entry{
		{Flow: 7, Msg: 1, Seq: 3, Payload: []byte("late")},
		{Flow: 7, Msg: 1, Seq: 0, Payload: []byte("early")},
	}}
	put := &packet.Frame{Kind: packet.FramePut, Src: 0, Dst: 1,
		Ctrl: packet.Ctrl{Token: 5, Flow: 1, Msg: 0, Size: 4}, Bulk: []byte("putd")}
	wildPut := &packet.Frame{Kind: packet.FramePut, Src: 0, Dst: 1,
		Ctrl: packet.Ctrl{Token: 6, Flow: 99, Msg: 1 << 40, Size: 4}, Bulk: []byte("wild")}
	get := &packet.Frame{Kind: packet.FrameGet, Src: 0, Dst: 1,
		Ctrl: packet.Ctrl{Token: 7, Flow: 1, Msg: 0, Size: 4}}
	ack := &packet.Frame{Kind: packet.FrameAck, Src: 0, Dst: 1, Ctrl: packet.Ctrl{Token: 404}}

	garbage := []byte{0x4D, 0x61, 0x00, 0xFF, 0xFF, 0x13, 0x37}
	midRdv := mk(rts)
	midRdv = append(midRdv, garbage...)
	midRdv = append(midRdv, mk(rts, cts, rdata, rdata)...) // retry + replay

	return [][]byte{
		mk(data),
		mk(outOfOrder),
		mk(rts, cts, rdata),
		midRdv,
		mk(put, wildPut, get, ack),
		mk(cts, rdata), // CTS/RData with no rendezvous in sight
		garbage,
	}
}

func FuzzDispatch(f *testing.F) {
	for _, seed := range fuzzDispatchSeeds() {
		f.Add(seed)
	}

	f.Fuzz(func(t *testing.T, stream []byte) {
		// One receiving node (id 1) with every engine wired, plus a
		// sender-side rendezvous engine so CTS frames have somewhere to go.
		type flowID struct {
			src  packet.NodeID
			flow packet.FlowID
		}
		nextSeq := map[flowID]int{}
		delivered := 0
		reasm := NewReassembler(1, func(d Deliverable) {
			delivered++
			k := flowID{d.Src, d.Pkt.Flow}
			if d.Pkt.Seq != nextSeq[k] {
				t.Fatalf("flow %v delivered seq %d, expected %d", k, d.Pkt.Seq, nextSeq[k])
			}
			nextSeq[k]++
		})
		var rdvS *RdvSender
		var reactive []*packet.Frame
		send := func(fr *packet.Frame) { reactive = append(reactive, fr) }
		rdvS = NewRdvSender(1, func(tok uint64, _ *packet.Packet) {
			// Grants must be consumable exactly once, like the engine does.
			rdvS.BuildRData(tok)
		})
		// Outstanding local rendezvous, so stream CTSes with small tokens
		// exercise the genuine grant path, not just the duplicate drop.
		started := 0
		for i := 0; i < 3; i++ {
			rdvS.Start(&packet.Packet{Flow: packet.FlowID(50 + i), Seq: 0, Last: true,
				Src: 1, Dst: 0, Payload: make([]byte, 8)})
			started++
		}
		rdvR := NewRdvReceiver(1, reasm, send, 2)
		rma := NewRMA(1, send)
		rma.RegisterWindow(1, make([]byte, 64))
		d := NewDispatcher(1, reasm, rdvS, rdvR, rma)

		for len(stream) > 0 {
			fr, n, err := packet.Decode(stream)
			if err != nil {
				stream = stream[1:] // skip garbage a byte at a time
				continue
			}
			d.HandleFrame(fr.Src, fr)
			stream = stream[n:]
		}
		// The grant hook consumes each grant immediately, so every local
		// rendezvous is either still pending or fully consumed — a stray
		// CTS can never strand a payload in between.
		if rdvS.Outstanding() > started {
			t.Fatalf("rendezvous payloads multiplied: %d outstanding of %d started",
				rdvS.Outstanding(), started)
		}
		_ = reactive
	})
}
