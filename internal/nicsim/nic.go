// Package nicsim is the discrete-event model of the network hardware the
// paper's engine drives: NICs exposing several virtualized send channels
// (the "network multiplexing units"), links with per-request overhead,
// serialization and propagation delay, and a receive path with per-frame
// processing cost.
//
// The central contract with the optimizing layer is the *idle upcall*: a
// channel that finishes serializing a frame notifies its owner, and that —
// not application submission — is what triggers optimization (paper §3).
package nicsim

import (
	"fmt"

	"newmad/internal/caps"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/stats"
)

// IdleFunc is called on the simulation goroutine when a send channel
// becomes free.
type IdleFunc func(nic *NIC, channel int)

// RecvFunc is called on the simulation goroutine when a frame has been
// fully received and processed by the destination NIC.
type RecvFunc func(src packet.NodeID, f *packet.Frame)

// NIC models one network interface of one node on one fabric.
type NIC struct {
	node   packet.NodeID
	caps   caps.Caps
	mem    memsim.Model
	eng    *simnet.Engine
	fabric *Fabric
	set    *stats.Set

	channels []chanState
	onIdle   IdleFunc
	onRecv   RecvFunc

	// rxBusyUntil serializes receive processing: frames arriving while the
	// receive engine is busy queue behind it, modeling receiver occupancy.
	rxBusyUntil simnet.Time
}

type chanState struct {
	busy     bool
	busySum  simnet.Duration // total busy time, for utilization gauges
	lastPost simnet.Time
}

// New creates a NIC for node with the given capability profile and
// registers it on the fabric. The profile must validate.
func New(eng *simnet.Engine, fabric *Fabric, node packet.NodeID, c caps.Caps, mem memsim.Model, set *stats.Set) (*NIC, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := mem.Validate(); err != nil {
		return nil, err
	}
	if set == nil {
		set = &stats.Set{}
	}
	n := &NIC{
		node:     node,
		caps:     c,
		mem:      mem,
		eng:      eng,
		fabric:   fabric,
		set:      set,
		channels: make([]chanState, c.Channels),
	}
	if err := fabric.attach(n); err != nil {
		return nil, err
	}
	return n, nil
}

// Node returns the owning node.
func (n *NIC) Node() packet.NodeID { return n.node }

// Caps returns the capability profile.
func (n *NIC) Caps() caps.Caps { return n.caps }

// Mem returns the host memory model used for staging-cost accounting.
func (n *NIC) Mem() memsim.Model { return n.mem }

// NumChannels returns the number of virtualized send units.
func (n *NIC) NumChannels() int { return len(n.channels) }

// ChannelIdle reports whether channel ch can accept a frame now.
func (n *NIC) ChannelIdle(ch int) bool { return !n.channels[ch].busy }

// FirstIdle returns the lowest-numbered idle channel.
func (n *NIC) FirstIdle() (int, bool) {
	for i := range n.channels {
		if !n.channels[i].busy {
			return i, true
		}
	}
	return 0, false
}

// SetIdleHandler installs the idle upcall. Passing nil disables it.
func (n *NIC) SetIdleHandler(fn IdleFunc) { n.onIdle = fn }

// SetRecvHandler installs the frame delivery upcall.
func (n *NIC) SetRecvHandler(fn RecvFunc) { n.onRecv = fn }

// ErrChannelBusy is returned when posting to a busy channel; the optimizing
// layer keeps its own backlog and only posts to idle channels, so hitting
// this indicates a scheduling bug rather than a condition to retry.
var ErrChannelBusy = fmt.Errorf("nicsim: channel busy")

// Post submits a frame on channel ch. hostExtra is additional host-side
// time the optimizer spent preparing this frame (staging copies, gather
// descriptors, memory registration) and is charged to the channel occupancy
// so that over-eager aggregation shows up as lost time, exactly as it would
// on hardware.
//
// The timeline charged, mirroring caps.SendCost:
//
//	t0                — channel becomes busy
//	+ hostExtra       — optimizer-added preparation
//	+ PostOverhead    — descriptor/doorbell
//	+ PIO or DMASetup — injection setup
//	+ serialization   — wireBytes / bandwidth (incl. MTU segment headers)
//	=> channel idle, idle upcall fires
//	+ WireLatency     — propagation
//	=> frame arrives at the peer NIC, queues for receive processing
//	+ RecvOverhead    — receiver occupancy, then delivery upcall
func (n *NIC) Post(ch int, f *packet.Frame, hostExtra simnet.Duration) error {
	if ch < 0 || ch >= len(n.channels) {
		return fmt.Errorf("nicsim: node %d has no channel %d", n.node, ch)
	}
	st := &n.channels[ch]
	if st.busy {
		return ErrChannelBusy
	}
	if f.Src != n.node {
		return fmt.Errorf("nicsim: frame src %d posted on node %d", f.Src, n.node)
	}
	if hostExtra < 0 {
		return fmt.Errorf("nicsim: negative hostExtra %v", hostExtra)
	}

	c := n.caps
	payload := f.PayloadSize()
	host := hostExtra + c.PostOverhead
	if payload <= c.PIOMax && f.Kind == packet.FrameData {
		host += simnet.Duration(payload) * c.PIOCostPerByte
	} else {
		host += c.DMASetup
	}
	wireBytes := f.WireSize() + c.PacketHeader
	// Frames beyond the MTU are segmented by the link layer; each extra
	// segment repeats the per-packet wire header.
	if c.MTU > 0 && wireBytes > c.MTU {
		segs := (wireBytes + c.MTU - 1) / c.MTU
		wireBytes += (segs - 1) * c.PacketHeader
	}
	serialize := simnet.BandwidthTime(wireBytes, c.Bandwidth)
	busyDur := host + serialize

	st.busy = true
	st.lastPost = n.eng.Now()
	st.busySum += busyDur

	n.set.Counter("nic.tx.frames").Inc()
	n.set.Counter("nic.tx.wire_bytes").Add(uint64(wireBytes))
	n.set.Counter("nic.tx.payload_bytes").Add(uint64(payload))
	if f.Kind == packet.FrameData && len(f.Entries) > 1 {
		n.set.Counter("nic.tx.aggregated_frames").Inc()
		n.set.Counter("nic.tx.aggregated_packets").Add(uint64(len(f.Entries)))
	}

	n.eng.After(busyDur, "nic.txdone", func() {
		st.busy = false
		if n.onIdle != nil {
			n.onIdle(n, ch)
		}
	})
	n.eng.After(busyDur+c.WireLatency, "nic.arrive", func() {
		n.fabric.arrive(n.node, f)
	})
	return nil
}

// receive runs at the destination NIC when a frame lands; it charges
// receiver occupancy and then delivers.
//
// Eager data frames additionally pay a staging memcpy: their payload lands
// in the library's bounce buffers (the receiver posted nothing) and must
// be copied out. Rendezvous RData and RMA frames DMA straight into posted
// or registered memory and skip the copy — the physical reason rendezvous
// wins for large payloads (exercised by experiment E8).
func (n *NIC) receive(src packet.NodeID, f *packet.Frame) {
	now := n.eng.Now()
	start := now
	if n.rxBusyUntil > start {
		start = n.rxBusyUntil
	}
	occupancy := n.caps.RecvOverhead
	if f.Kind == packet.FrameData {
		occupancy += n.mem.CopyCost(f.PayloadSize())
	}
	done := start.Add(occupancy)
	n.rxBusyUntil = done
	n.set.Counter("nic.rx.frames").Inc()
	n.eng.At(done, "nic.rxdone", func() {
		if n.onRecv != nil {
			n.onRecv(src, f)
		}
	})
}

// Utilization returns the fraction of elapsed virtual time channel ch spent
// busy (meaningful once the simulation has advanced past zero).
func (n *NIC) Utilization(ch int) float64 {
	now := n.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(n.channels[ch].busySum) / float64(now)
}
