package nicsim

import (
	"fmt"

	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// Fabric is one interconnect network: the set of NICs of a single
// technology, one per participating node, with any-to-any reachability
// (high-speed cluster interconnects are full-bisection at the scales the
// paper considers, so contention is modeled at the NICs, not the switch).
//
// A node participating in several fabrics (multi-rail, possibly of
// different technologies) simply owns one NIC on each; internal/core
// balances between them.
type Fabric struct {
	name string
	eng  *simnet.Engine
	nics map[packet.NodeID]*NIC

	// delay optionally adds technology-independent extra latency per frame
	// (used by the WAN emulation tests to stretch a profile without
	// re-registering it).
	delay simnet.Duration

	// partitioned pairs drop frames, for failure-injection tests. Keys are
	// directed (from, to).
	partitioned map[[2]packet.NodeID]bool

	// dropped counts frames discarded by partitions.
	dropped uint64
}

// NewFabric creates an empty fabric.
func NewFabric(eng *simnet.Engine, name string) *Fabric {
	return &Fabric{name: name, eng: eng, nics: make(map[packet.NodeID]*NIC)}
}

// Name returns the fabric label.
func (f *Fabric) Name() string { return f.name }

// SetExtraDelay adds d to every frame's propagation on this fabric.
func (f *Fabric) SetExtraDelay(d simnet.Duration) { f.delay = d }

// Partition makes frames from a to b vanish (one direction). Use for
// failure-injection tests; there is no retransmission layer, mirroring the
// reliable interconnects the paper targets, so partitioned traffic is lost.
func (f *Fabric) Partition(from, to packet.NodeID) {
	if f.partitioned == nil {
		f.partitioned = make(map[[2]packet.NodeID]bool)
	}
	f.partitioned[[2]packet.NodeID{from, to}] = true
}

// Heal removes a partition.
func (f *Fabric) Heal(from, to packet.NodeID) {
	delete(f.partitioned, [2]packet.NodeID{from, to})
}

// Dropped returns the number of frames lost to partitions.
func (f *Fabric) Dropped() uint64 { return f.dropped }

// NIC returns the NIC registered for node.
func (f *Fabric) NIC(node packet.NodeID) (*NIC, bool) {
	n, ok := f.nics[node]
	return n, ok
}

// Nodes returns the number of attached nodes.
func (f *Fabric) Nodes() int { return len(f.nics) }

func (f *Fabric) attach(n *NIC) error {
	if _, dup := f.nics[n.node]; dup {
		return fmt.Errorf("nicsim: node %d already attached to fabric %s", n.node, f.name)
	}
	f.nics[n.node] = n
	return nil
}

// arrive routes a frame that has finished propagation to its destination
// NIC's receive engine.
func (f *Fabric) arrive(src packet.NodeID, fr *packet.Frame) {
	if f.partitioned[[2]packet.NodeID{src, fr.Dst}] {
		f.dropped++
		return
	}
	dst, ok := f.nics[fr.Dst]
	if !ok {
		panic(fmt.Sprintf("nicsim: frame for unattached node %d on fabric %s", fr.Dst, f.name))
	}
	deliver := func() { dst.receive(src, fr) }
	if f.delay > 0 {
		f.eng.After(f.delay, "fabric.extradelay", deliver)
		return
	}
	deliver()
}
