package nicsim

import (
	"testing"

	"newmad/internal/caps"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/stats"
)

func testPair(t *testing.T, c caps.Caps) (*simnet.Engine, *NIC, *NIC) {
	t.Helper()
	eng := simnet.NewEngine()
	fab := NewFabric(eng, c.Name)
	a, err := New(eng, fab, 0, c, memsim.DefaultModel(), &stats.Set{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(eng, fab, 1, c, memsim.DefaultModel(), &stats.Set{})
	if err != nil {
		t.Fatal(err)
	}
	return eng, a, b
}

func dataFrame(src, dst packet.NodeID, sizes ...int) *packet.Frame {
	f := &packet.Frame{Kind: packet.FrameData, Src: src, Dst: dst}
	for i, n := range sizes {
		f.Entries = append(f.Entries, packet.Entry{
			Flow: 1, Msg: packet.MsgID(i), Seq: 0, Last: true,
			Class: packet.ClassSmall, Payload: make([]byte, n),
		})
	}
	return f
}

func TestNICRejectsInvalidSetup(t *testing.T) {
	eng := simnet.NewEngine()
	fab := NewFabric(eng, "x")
	bad := caps.MX
	bad.Bandwidth = 0
	if _, err := New(eng, fab, 0, bad, memsim.DefaultModel(), nil); err == nil {
		t.Fatal("invalid caps accepted")
	}
	badMem := memsim.DefaultModel()
	badMem.PageSize = 0
	if _, err := New(eng, fab, 0, caps.MX, badMem, nil); err == nil {
		t.Fatal("invalid memory model accepted")
	}
	if _, err := New(eng, fab, 0, caps.MX, memsim.DefaultModel(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := New(eng, fab, 0, caps.MX, memsim.DefaultModel(), nil); err == nil {
		t.Fatal("duplicate node attach accepted")
	}
}

func TestFrameDeliveryEndToEnd(t *testing.T) {
	eng, a, b := testPair(t, caps.MX)
	var gotSrc packet.NodeID
	var gotFrame *packet.Frame
	var deliveredAt simnet.Time
	b.SetRecvHandler(func(src packet.NodeID, f *packet.Frame) {
		gotSrc, gotFrame, deliveredAt = src, f, eng.Now()
	})
	f := dataFrame(0, 1, 64)
	if err := a.Post(0, f, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if gotFrame == nil {
		t.Fatal("frame never delivered")
	}
	if gotSrc != 0 || gotFrame.Dst != 1 {
		t.Fatalf("delivery metadata wrong: src=%d dst=%d", gotSrc, gotFrame.Dst)
	}
	// Delivery time must be at least the profile's unavoidable costs.
	min := caps.MX.PostOverhead + caps.MX.WireLatency + caps.MX.RecvOverhead
	if deliveredAt < simnet.Time(min) {
		t.Fatalf("delivered at %v, below floor %v", deliveredAt, min)
	}
}

func TestChannelBusyThenIdleUpcall(t *testing.T) {
	eng, a, _ := testPair(t, caps.MX)
	var idleAt simnet.Time
	idleCalls := 0
	a.SetIdleHandler(func(nic *NIC, ch int) {
		idleCalls++
		idleAt = eng.Now()
		if ch != 0 {
			t.Errorf("idle on channel %d, want 0", ch)
		}
	})
	f := dataFrame(0, 1, 1024)
	if err := a.Post(0, f, 0); err != nil {
		t.Fatal(err)
	}
	if a.ChannelIdle(0) {
		t.Fatal("channel should be busy right after Post")
	}
	if err := a.Post(0, dataFrame(0, 1, 8), 0); err != ErrChannelBusy {
		t.Fatalf("posting to busy channel: err = %v, want ErrChannelBusy", err)
	}
	// Other channels remain free.
	if _, ok := a.FirstIdle(); !ok {
		t.Fatal("all channels reported busy after one post")
	}
	eng.Run()
	if idleCalls != 1 {
		t.Fatalf("idle upcalls = %d, want 1", idleCalls)
	}
	if !a.ChannelIdle(0) {
		t.Fatal("channel still busy after completion")
	}
	// Idle fires when serialization completes — before wire+recv delivery.
	f2 := dataFrame(0, 1, 1024)
	wire := caps.MX.WireLatency
	_ = wire
	if idleAt <= 0 {
		t.Fatal("idle time not recorded")
	}
	_ = f2
}

func TestIdleFiresBeforeDelivery(t *testing.T) {
	eng, a, b := testPair(t, caps.MX)
	var idleAt, recvAt simnet.Time
	a.SetIdleHandler(func(*NIC, int) { idleAt = eng.Now() })
	b.SetRecvHandler(func(packet.NodeID, *packet.Frame) { recvAt = eng.Now() })
	if err := a.Post(0, dataFrame(0, 1, 256), 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !(idleAt < recvAt) {
		t.Fatalf("idle at %v should precede delivery at %v", idleAt, recvAt)
	}
	if recvAt-idleAt < simnet.Time(caps.MX.WireLatency) {
		t.Fatalf("delivery-idle gap %v below wire latency %v", recvAt-idleAt, caps.MX.WireLatency)
	}
}

func TestHostExtraDelaysChannel(t *testing.T) {
	engA, a, _ := testPair(t, caps.MX)
	var plainIdle simnet.Time
	a.SetIdleHandler(func(*NIC, int) { plainIdle = engA.Now() })
	if err := a.Post(0, dataFrame(0, 1, 128), 0); err != nil {
		t.Fatal(err)
	}
	engA.Run()

	engB, c, _ := testPair(t, caps.MX)
	var extraIdle simnet.Time
	c.SetIdleHandler(func(*NIC, int) { extraIdle = engB.Now() })
	const extra = 5 * simnet.Microsecond
	if err := c.Post(0, dataFrame(0, 1, 128), extra); err != nil {
		t.Fatal(err)
	}
	engB.Run()
	if extraIdle-plainIdle != simnet.Time(extra) {
		t.Fatalf("hostExtra shifted idle by %v, want %v", extraIdle-plainIdle, extra)
	}
}

func TestNegativeHostExtraRejected(t *testing.T) {
	_, a, _ := testPair(t, caps.MX)
	if err := a.Post(0, dataFrame(0, 1, 8), -1); err == nil {
		t.Fatal("negative hostExtra accepted")
	}
}

func TestWrongSourceRejected(t *testing.T) {
	_, a, _ := testPair(t, caps.MX)
	if err := a.Post(0, dataFrame(1, 0, 8), 0); err == nil {
		t.Fatal("frame with foreign src accepted")
	}
	if err := a.Post(99, dataFrame(0, 1, 8), 0); err == nil {
		t.Fatal("nonexistent channel accepted")
	}
}

func TestLargerFramesTakeLonger(t *testing.T) {
	measure := func(size int) simnet.Time {
		eng, a, b := testPair(t, caps.MX)
		var at simnet.Time
		b.SetRecvHandler(func(packet.NodeID, *packet.Frame) { at = eng.Now() })
		if err := a.Post(0, dataFrame(0, 1, size), 0); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return at
	}
	small, large := measure(64), measure(64*1024)
	if large <= small {
		t.Fatalf("64KiB (%v) not slower than 64B (%v)", large, small)
	}
	// 64 KiB at 250 MB/s is ~262 µs of serialization.
	if large < simnet.Time(250*simnet.Microsecond) {
		t.Fatalf("64KiB delivered in %v, too fast for 250MB/s", large)
	}
}

func TestAggregatedFrameBeatsSeparateSends(t *testing.T) {
	// The physical basis of the paper's claim: 8 × 64 B as one frame
	// completes sooner than as 8 frames on one channel.
	sizes := make([]int, 8)
	for i := range sizes {
		sizes[i] = 64
	}

	// One aggregate.
	engA, a, b := testPair(t, caps.MX)
	var aggDone simnet.Time
	b.SetRecvHandler(func(packet.NodeID, *packet.Frame) { aggDone = engA.Now() })
	if err := a.Post(0, dataFrame(0, 1, sizes...), 0); err != nil {
		t.Fatal(err)
	}
	engA.Run()

	// Eight singles, posted back-to-back on the same channel.
	engB, c, d := testPair(t, caps.MX)
	var lastDone simnet.Time
	recv := 0
	d.SetRecvHandler(func(packet.NodeID, *packet.Frame) {
		recv++
		lastDone = engB.Now()
	})
	pending := sizes
	var send func(nic *NIC, ch int)
	send = func(nic *NIC, ch int) {
		if len(pending) == 0 {
			return
		}
		if err := c.Post(0, dataFrame(0, 1, pending[0]), 0); err != nil {
			t.Fatal(err)
		}
		pending = pending[1:]
	}
	c.SetIdleHandler(send)
	send(c, 0)
	engB.Run()
	if recv != 8 {
		t.Fatalf("received %d singles, want 8", recv)
	}
	if aggDone >= lastDone {
		t.Fatalf("aggregate (%v) not faster than singles (%v)", aggDone, lastDone)
	}
	speedup := float64(lastDone) / float64(aggDone)
	if speedup < 2 {
		t.Fatalf("aggregation speedup %.2fx, expected >= 2x for 8 tiny packets", speedup)
	}
}

func TestReceiveOccupancyQueues(t *testing.T) {
	// Two frames from two senders arriving near-simultaneously must be
	// processed sequentially by the destination's receive engine.
	eng := simnet.NewEngine()
	fab := NewFabric(eng, "mx")
	mem := memsim.DefaultModel()
	a, _ := New(eng, fab, 0, caps.MX, mem, nil)
	b, _ := New(eng, fab, 1, caps.MX, mem, nil)
	dst, _ := New(eng, fab, 2, caps.MX, mem, nil)
	var times []simnet.Time
	dst.SetRecvHandler(func(packet.NodeID, *packet.Frame) { times = append(times, eng.Now()) })
	if err := a.Post(0, dataFrame(0, 2, 16), 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Post(0, dataFrame(1, 2, 16), 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("deliveries = %d", len(times))
	}
	gap := times[1] - times[0]
	if gap < simnet.Time(caps.MX.RecvOverhead) {
		t.Fatalf("receive gap %v below RecvOverhead %v — receiver not serialized", gap, caps.MX.RecvOverhead)
	}
}

func TestUtilization(t *testing.T) {
	eng, a, _ := testPair(t, caps.MX)
	if a.Utilization(0) != 0 {
		t.Fatal("utilization nonzero before any traffic")
	}
	if err := a.Post(0, dataFrame(0, 1, 4096), 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	u := a.Utilization(0)
	if u <= 0 || u > 1.01 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestFabricPartition(t *testing.T) {
	eng, a, b := testPair(t, caps.MX)
	delivered := 0
	b.SetRecvHandler(func(packet.NodeID, *packet.Frame) { delivered++ })
	fabOf := a // reuse fabric through NIC a
	_ = fabOf
	fab := aFabric(a)
	fab.Partition(0, 1)
	if err := a.Post(0, dataFrame(0, 1, 16), 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if delivered != 0 {
		t.Fatal("partitioned frame delivered")
	}
	if fab.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", fab.Dropped())
	}
	fab.Heal(0, 1)
	if err := a.Post(0, dataFrame(0, 1, 16), 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if delivered != 1 {
		t.Fatal("healed fabric did not deliver")
	}
}

// aFabric exposes the fabric of a NIC for tests.
func aFabric(n *NIC) *Fabric { return n.fabric }

func TestFabricExtraDelay(t *testing.T) {
	eng, a, b := testPair(t, caps.MX)
	var plain simnet.Time
	b.SetRecvHandler(func(packet.NodeID, *packet.Frame) { plain = eng.Now() })
	if err := a.Post(0, dataFrame(0, 1, 16), 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	eng2, c, d := testPair(t, caps.MX)
	aFabric(c).SetExtraDelay(1 * simnet.Millisecond)
	var delayed simnet.Time
	d.SetRecvHandler(func(packet.NodeID, *packet.Frame) { delayed = eng2.Now() })
	if err := c.Post(0, dataFrame(0, 1, 16), 0); err != nil {
		t.Fatal(err)
	}
	eng2.Run()
	if delayed-plain != simnet.Time(1*simnet.Millisecond) {
		t.Fatalf("extra delay shifted delivery by %v, want 1ms", delayed-plain)
	}
}

func TestMTUSegmentationCost(t *testing.T) {
	// A frame bigger than the MTU pays extra header bytes per segment: the
	// per-byte rate for a 16 KiB frame must exceed that of a 2 KiB frame.
	measure := func(size int) float64 {
		eng, a, b := testPair(t, caps.MX)
		var at simnet.Time
		b.SetRecvHandler(func(packet.NodeID, *packet.Frame) { at = eng.Now() })
		if err := a.Post(0, dataFrame(0, 1, size), 0); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		return float64(at) / float64(size)
	}
	small := measure(2048)  // below MTU
	large := measure(16384) // 4+ segments
	// Fixed costs dominate the small frame, so per-byte cost is higher
	// there; what we check is that segmentation charged *something*: the
	// bytes-per-ns rate of the large frame must stay below the raw link
	// rate once headers repeat.
	_ = small
	rawNsPerByte := 1e9 / caps.MX.Bandwidth
	if large <= rawNsPerByte {
		t.Fatalf("large frame per-byte time %v <= raw serialization %v — headers not charged", large, rawNsPerByte)
	}
}

func TestStatsCounters(t *testing.T) {
	eng := simnet.NewEngine()
	fab := NewFabric(eng, "mx")
	set := &stats.Set{}
	a, _ := New(eng, fab, 0, caps.MX, memsim.DefaultModel(), set)
	_, _ = New(eng, fab, 1, caps.MX, memsim.DefaultModel(), set)
	if err := a.Post(0, dataFrame(0, 1, 32, 32, 32), 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if set.CounterValue("nic.tx.frames") != 1 {
		t.Fatalf("tx.frames = %d", set.CounterValue("nic.tx.frames"))
	}
	if set.CounterValue("nic.tx.aggregated_packets") != 3 {
		t.Fatalf("aggregated_packets = %d", set.CounterValue("nic.tx.aggregated_packets"))
	}
	if set.CounterValue("nic.rx.frames") != 1 {
		t.Fatalf("rx.frames = %d", set.CounterValue("nic.rx.frames"))
	}
}
