package testnet

import (
	"strings"
	"testing"
)

func validManifestJSON() string {
	return `{
		"name": "t", "seed": 7, "rails": 2, "drop_pct": 5,
		"engine": {"rdv_retry_us": 500},
		"roles": [
			{"name": "a", "count": 2, "profile": "tcp"},
			{"name": "b", "count": 2, "profile": "mx"}
		],
		"workload": [
			{"from": "a", "to": "b", "msgs": 3, "size": {"lo": 64}}
		],
		"chaos": [
			{"at_ms": 1, "op": "partition", "group": "a", "peer": "b", "for_ms": 1}
		]
	}`
}

func TestManifestParseValid(t *testing.T) {
	m, err := Parse([]byte(validManifestJSON()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if m.TotalNodes() != 4 || m.Rails != 2 {
		t.Fatalf("parsed shape: %d nodes, %d rails", m.TotalNodes(), m.Rails)
	}
	if m.Engine.Bundle != "aggregate" || m.MaxEvents == 0 {
		t.Fatalf("defaults not applied: %+v", m.Engine)
	}
}

func TestManifestParseRejections(t *testing.T) {
	cases := []struct {
		name    string
		mangle  func(string) string
		wantErr string
	}{
		{"unknown field", func(s string) string {
			return strings.Replace(s, `"name": "t"`, `"nmae": "t"`, 1)
		}, "unknown field"},
		{"duplicate role", func(s string) string {
			return strings.Replace(s, `"name": "b"`, `"name": "a"`, 1)
		}, "duplicate role"},
		{"unknown profile", func(s string) string {
			return strings.Replace(s, `"profile": "mx"`, `"profile": "warp"`, 1)
		}, "unknown profile"},
		{"drop without retry", func(s string) string {
			return strings.Replace(s, `"rdv_retry_us": 500`, `"rdv_retry_us": 0`, 1)
		}, "rdv_retry_us"},
		{"unknown workload role", func(s string) string {
			return strings.Replace(s, `"from": "a"`, `"from": "zz"`, 1)
		}, "unknown role"},
		{"unknown chaos op", func(s string) string {
			return strings.Replace(s, `"op": "partition"`, `"op": "meteor"`, 1)
		}, "unknown chaos op"},
		{"unknown chaos group", func(s string) string {
			return strings.Replace(s, `"group": "a"`, `"group": "zz"`, 1)
		}, "unknown group"},
		{"rail out of range", func(s string) string {
			return strings.Replace(s, `"op": "partition"`, `"op": "rail-down", "rail": 5`, 1)
		}, "rail 5"},
		{"unknown bundle", func(s string) string {
			return strings.Replace(s, `"rdv_retry_us": 500`, `"rdv_retry_us": 500, "bundle": "yolo"`, 1)
		}, "yolo"},
		{"zero msgs", func(s string) string {
			return strings.Replace(s, `"msgs": 3`, `"msgs": 0`, 1)
		}, "msgs"},
		{"bad size dist", func(s string) string {
			return strings.Replace(s, `{"lo": 64}`, `{"dist": "gauss", "lo": 64}`, 1)
		}, "size dist"},
		{"drop over 100", func(s string) string {
			return strings.Replace(s, `"drop_pct": 5`, `"drop_pct": 120`, 1)
		}, "drop_pct"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.mangle(validManifestJSON())))
		if err == nil {
			t.Errorf("%s: Parse accepted the manifest", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// Node IDs are assigned to roles sorted by name, so file order cannot move
// a node between groups — the property the reorder-stability battery test
// verifies end to end.
func TestManifestGroupsIndependentOfFileOrder(t *testing.T) {
	a, err := Parse([]byte(validManifestJSON()))
	if err != nil {
		t.Fatal(err)
	}
	swapped := strings.Replace(strings.Replace(strings.Replace(validManifestJSON(),
		`"name": "a", "count": 2, "profile": "tcp"`, `"name": "TMP"`, 1),
		`"name": "b", "count": 2, "profile": "mx"`, `"name": "a", "count": 2, "profile": "tcp"`, 1),
		`"name": "TMP"`, `"name": "b", "count": 2, "profile": "mx"`, 1)
	b, err := Parse([]byte(swapped))
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := a.Groups(), b.Groups()
	for _, role := range []string{"a", "b"} {
		if len(ga[role]) != len(gb[role]) {
			t.Fatalf("group %q sizes differ", role)
		}
		for i := range ga[role] {
			if ga[role][i] != gb[role][i] {
				t.Fatalf("group %q differs under file reordering: %v vs %v", role, ga[role], gb[role])
			}
		}
	}
}

func TestManifestLoadMissingFile(t *testing.T) {
	if _, err := Load("testdata/no-such-manifest.json"); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}
