package testnet

import (
	"errors"
	"fmt"
	"sort"

	"newmad/internal/caps"
	"newmad/internal/chaos"
	"newmad/internal/core"
	"newmad/internal/drivers"
	"newmad/internal/memsim"
	"newmad/internal/nicsim"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/stats"
	"newmad/internal/strategy"
	"newmad/internal/telemetry"
	"newmad/internal/trace"
	"newmad/internal/workload"
)

// Net is a booted emulated network: one discrete-event engine carrying
// every node's NICs, optimizer and workload, with the chaos schedule
// resolved and planted. Everything runs on the single simulation goroutine,
// so no state here needs locking.
type Net struct {
	M      *Manifest
	Eng    *simnet.Engine
	Stats  *stats.Set
	Nodes  []*Node
	Groups map[string][]int
	// Script is the resolved concrete chaos schedule; Trace records its
	// execution. Two same-seed runs must produce traces with an empty Diff.
	Script chaos.Script
	Trace  *chaos.Trace
	// Registry aggregates every live engine; Snapshots accumulates the
	// periodic fleet roll-ups (manifest telemetry.snapshot_ms) plus the
	// final one Run always takes.
	Registry  *telemetry.Registry
	Snapshots []telemetry.FleetSnapshot

	flows     []workload.FlowSpec
	submitted int
	throttled int
	// refused counts a flow's refused submission attempts. A refusal
	// never consumes a seq (the workload driver assigns them lazily), so
	// a flow with R refusals delivers the contiguous seqs [0, Count-R).
	refused   map[packet.FlowID]int
	delivered map[flowKey]int
	misrouted int
	// misroutedAt remembers which nodes saw misrouted deliveries, for the
	// anomaly spool's "involved nodes" set.
	misroutedAt map[int]bool
	ctrlDrops   uint64
	recorders   map[int]*trace.Recorder
}

// Node is one emulated network member.
type Node struct {
	ID      packet.NodeID
	Role    string
	Engine  *core.Engine
	ports   []*port
	crashed bool
}

// flowKey identifies one scheduled message; flow IDs are globally unique
// across clauses, so (flow, seq) names exactly one submission.
type flowKey struct {
	flow packet.FlowID
	seq  int
}

// Build boots the topology a manifest describes: role-blocked node IDs,
// one fabric per rail, one NIC per (node, rail) wrapped in a fault port,
// one optimizer engine per node, the workload expanded and scheduled, and
// the chaos script resolved and planted on the virtual clock.
func Build(m *Manifest) (*Net, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := &Net{
		M:           m,
		Eng:         simnet.NewEngine(),
		Stats:       &stats.Set{},
		Groups:      m.Groups(),
		Trace:       &chaos.Trace{},
		Registry:    telemetry.NewRegistry(),
		refused:     make(map[packet.FlowID]int),
		delivered:   make(map[flowKey]int),
		misroutedAt: make(map[int]bool),
		recorders:   make(map[int]*trace.Recorder),
	}
	// Every stochastic decision forks off this one generator by key, so a
	// stream's identity — not the order anything was built in — determines
	// its draws.
	base := simnet.NewRNG(m.Seed)

	fabrics := make([]*nicsim.Fabric, m.Rails)
	for r := range fabrics {
		fabrics[r] = nicsim.NewFabric(n.Eng, fmt.Sprintf("rail%d", r))
	}

	mem := memsim.DefaultModel()
	quotas := m.Quotas()
	total := m.TotalNodes()
	n.Nodes = make([]*Node, total)
	for _, role := range m.rolesByName() {
		profile, _ := caps.Lookup(role.Profile) // validated
		if role.Channels > 0 {
			profile.Channels = role.Channels
		}
		railCaps := make([]caps.Caps, m.Rails)
		for r := range railCaps {
			railCaps[r] = profile.Rail(r)
		}
		// core.New orders rails by driver name ("<profile>.r<k>@n<id>");
		// the rail policy's table must use the same order. Sorting by
		// Name+"@" reproduces that comparison (see cluster.RailCaps).
		sorted := append([]caps.Caps(nil), railCaps...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name+"@" < sorted[j].Name+"@" })

		for _, id := range n.Groups[role.Name] {
			node := &Node{ID: packet.NodeID(id), Role: role.Name}
			rails := make([]drivers.Driver, m.Rails)
			node.ports = make([]*port, m.Rails)
			for r := 0; r < m.Rails; r++ {
				nic, err := nicsim.New(n.Eng, fabrics[r], node.ID, railCaps[r], mem, n.Stats)
				if err != nil {
					return nil, fmt.Errorf("testnet: node %d rail %d: %w", id, r, err)
				}
				p := &port{
					Sim: drivers.NewSim(nic),
					net: n,
					// Keyed by identity, not construction order: the same
					// (seed, node, rail) always yields the same drop stream.
					rng:     base.ForkString(fmt.Sprintf("drop/%d/%d", id, r)),
					dropPct: m.DropPct,
					down:    make(map[packet.NodeID]bool),
				}
				node.ports[r] = p
				rails[r] = p
			}

			bundle, err := strategy.New(m.Engine.Bundle)
			if err != nil {
				return nil, err
			}
			if m.Rails > 1 {
				bundle.Rail = strategy.NewScheduledRail(sorted)
			}
			nodeID := node.ID
			var rec *trace.Recorder
			if m.Telemetry.TraceRing > 0 {
				rec = trace.New(m.Telemetry.TraceRing)
				n.recorders[id] = rec
			}
			eng, err := core.New(nodeID, core.Options{
				Bundle:       bundle,
				Runtime:      n.Eng,
				Rails:        rails,
				Deliver:      func(d proto.Deliverable) { n.record(nodeID, d) },
				Lookahead:    m.Engine.Lookahead,
				NagleDelay:   simnet.Duration(m.Engine.NagleUS) * simnet.Microsecond,
				RdvThreshold: m.Engine.RdvThreshold,
				RdvRetry:     simnet.Duration(m.Engine.RdvRetryUS) * simnet.Microsecond,
				RdvRetryMax:  m.Engine.RdvRetryMax,
				Quotas:       quotas,
				Stats:        n.Stats,
				Trace:        rec,
			})
			if err != nil {
				return nil, fmt.Errorf("testnet: node %d: %w", id, err)
			}
			node.Engine = eng
			n.Nodes[id] = node
			// The stats set is fleet-shared (registered once below), so
			// per-node sources carry only the engine's private surface.
			n.Registry.Register(telemetry.Source{
				Node:   nodeID,
				Role:   role.Name,
				Engine: eng,
			})
		}
	}
	n.Registry.SetFleetStats(n.Stats)

	if m.Telemetry.SnapshotMS > 0 {
		n.scheduleSnapshots(simnet.Duration(m.Telemetry.SnapshotMS) * simnet.Millisecond)
	}

	if err := n.scheduleWorkload(base); err != nil {
		return nil, err
	}
	if err := n.scheduleChaos(base); err != nil {
		return nil, err
	}
	return n, nil
}

// scheduleWorkload expands the traffic clauses into flows and plants every
// submission on the virtual clock. Flow IDs are assigned by a running
// counter in clause order, so (flow, seq) keys are globally unique.
func (n *Net) scheduleWorkload(base *simnet.RNG) error {
	engines := make(map[packet.NodeID]*core.Engine, len(n.Nodes))
	for _, node := range n.Nodes {
		engines[node.ID] = node.Engine
	}
	drv := workload.NewDriver(n.Eng, engines, base.ForkString("workload.driver").Uint64())
	drv.OnError = func(spec workload.FlowSpec, seq int, err error) {
		// Submissions refused by admission control or a crashed node's
		// engine are scripted outcomes, not bugs; both land in the refused
		// tally and are excluded from loss accounting. Throttles are
		// counted separately — a flood soak asserts they happened.
		if errors.Is(err, core.ErrThrottled) || errors.Is(err, core.ErrQuotaExceeded) {
			n.throttled++
		}
		n.refused[spec.Flow]++
	}

	tenants := make(map[string]packet.TenantID, len(n.M.Roles))
	for _, r := range n.M.Roles {
		tenants[r.Name] = packet.TenantID(r.Tenant)
	}
	nextFlow := packet.FlowID(1)
	for i, w := range n.M.Workload {
		pattern, _ := workload.ParsePattern(w.Pattern)
		size, _ := w.Size.dist()
		arrival, _ := w.Arrival.proc()
		class, _ := parseClass(w.Class) // all validated at load
		rt := workload.RoleTraffic{
			Pattern:  pattern,
			From:     nodeIDs(n.Groups[w.From]),
			To:       nodeIDs(n.Groups[w.To]),
			BaseFlow: nextFlow,
			Class:    class,
			Tenant:   tenants[w.From],
			Size:     size,
			Arrival:  arrival,
			Msgs:     w.Msgs,
			Start:    simnet.Duration(w.StartUS) * simnet.Microsecond,
		}
		flows, err := rt.Expand(base.ForkString(fmt.Sprintf("workload/%d", i)))
		if err != nil {
			return fmt.Errorf("testnet: workload %d (%s): %w", i, w.Name, err)
		}
		for _, f := range flows {
			drv.Add(f)
			n.submitted += f.Count
		}
		n.flows = append(n.flows, flows...)
		nextFlow += packet.FlowID(len(flows))
	}
	return nil
}

// scheduleSnapshots plants a self-rescheduling fleet sweep on the virtual
// clock. The tick re-arms itself only while other events remain pending —
// Pending() excludes the executing tick — so the sweep follows the run's
// activity without keeping the heap alive forever (the drain contract of
// Run would otherwise never hold).
func (n *Net) scheduleSnapshots(every simnet.Duration) {
	var tick func()
	tick = func() {
		n.Snapshots = append(n.Snapshots, n.Registry.Fleet())
		if n.Eng.Pending() > 0 {
			n.Eng.After(every, "testnet.snapshot", tick)
		}
	}
	n.Eng.After(every, "testnet.snapshot", tick)
}

// scheduleChaos resolves the group script against the topology and plants
// each event at its virtual time. Events are planted in Sorted order, so
// same-instant events execute in authored order (the event heap breaks
// timestamp ties by scheduling sequence).
func (n *Net) scheduleChaos(base *simnet.RNG) error {
	script, err := n.M.GroupChaos().Resolve(n.Groups, n.M.Rails, base.ForkString("chaos"))
	if err != nil {
		return err
	}
	if err := script.Validate(len(n.Nodes), n.M.Rails); err != nil {
		return err
	}
	n.Script = script
	for _, e := range script.Sorted() {
		e := e
		n.Eng.At(simnet.Time(0).Add(simnet.FromWall(e.At)), "testnet.chaos", func() {
			n.execute(e)
			n.Trace.Record(e)
		})
	}
	return nil
}

// execute applies one chaos event. Down/heal act on the send-side ports of
// both endpoints, never on the fabric: frames already in flight still
// arrive, so a link cut delays traffic but cannot lose it.
func (n *Net) execute(e chaos.Event) {
	switch e.Op {
	case chaos.OpRailDown:
		n.setEdge(e.Node, e.Peer, e.Rail, true)
	case chaos.OpRailHeal:
		n.setEdge(e.Node, e.Peer, e.Rail, false)
		n.flushPair(e.Node, e.Peer)
	case chaos.OpPartition:
		for r := 0; r < n.M.Rails; r++ {
			n.setEdge(e.Node, e.Peer, r, true)
		}
	case chaos.OpHeal:
		for r := 0; r < n.M.Rails; r++ {
			n.setEdge(e.Node, e.Peer, r, false)
		}
		n.flushPair(e.Node, e.Peer)
	case chaos.OpCrash:
		node := n.Nodes[e.Node]
		if !node.crashed {
			node.crashed = true
			node.Engine.Close()
		}
	}
}

func (n *Net) setEdge(a, b, rail int, down bool) {
	n.Nodes[a].ports[rail].setDown(packet.NodeID(b), down)
	n.Nodes[b].ports[rail].setDown(packet.NodeID(a), down)
}

// flushPair re-pumps both engines after a heal so frames retained in
// failover queues travel immediately.
func (n *Net) flushPair(a, b int) {
	if na := n.Nodes[a]; !na.crashed {
		na.Engine.Flush()
	}
	if nb := n.Nodes[b]; !nb.crashed {
		nb.Engine.Flush()
	}
}

// record counts one delivery.
func (n *Net) record(node packet.NodeID, d proto.Deliverable) {
	if d.Pkt.Dst != node {
		n.misrouted++
		n.misroutedAt[int(node)] = true
		return
	}
	n.delivered[flowKey{d.Pkt.Flow, d.Pkt.Seq}]++
}

// Result is the delivery and replay accounting of one run.
type Result struct {
	Name  string
	Nodes int
	Rails int
	// Submitted counts scheduled submissions; Refused the subset rejected
	// by crashed engines or admission control. Throttled is the
	// admission-control slice of Refused (quota/rate refusals) — never
	// silent, never counted as Lost.
	Submitted int
	Refused   int
	Throttled int
	// Delivered counts deliveries including duplicates; Duplicates the
	// excess over exactly-once.
	Delivered  int
	Duplicates int
	// Lost counts undelivered messages between two never-crashed nodes —
	// the number that must be zero. CrashLost counts undelivered messages
	// with a crashed endpoint, which are scripted casualties.
	Lost      int
	CrashLost int
	// Misrouted counts deliveries at the wrong node (always a bug).
	Misrouted int
	// CtrlDropped counts control frames the fault ports discarded.
	CtrlDropped uint64
	// Events and End describe the simulation run; Drained reports whether
	// the event heap emptied within the manifest's MaxEvents budget.
	Events  uint64
	End     simnet.Time
	Drained bool
	// SpoolDir is where the anomaly dump landed (empty when the run was
	// clean or no spool was configured). Result stays comparable (the
	// seed-replay battery compares whole values), so the fleet telemetry
	// roll-up lives on Net.Snapshots / Net.Fleet, not here.
	SpoolDir string
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d nodes x %d rails, %d submitted, %d refused (%d throttled), %d delivered, %d dup, %d lost, %d crash-lost, %d ctrl-dropped, %d events, end %v, drained %v",
		r.Name, r.Nodes, r.Rails, r.Submitted, r.Refused, r.Throttled, r.Delivered,
		r.Duplicates, r.Lost, r.CrashLost, r.CtrlDropped, r.Events, r.End, r.Drained)
}

// Run executes the simulation to completion (or the MaxEvents guard) and
// returns the accounting.
func (n *Net) Run() *Result {
	executed, drained := n.Eng.RunLimit(n.M.MaxEvents)
	res := &Result{
		Name:        n.M.Name,
		Nodes:       len(n.Nodes),
		Rails:       n.M.Rails,
		Submitted:   n.submitted,
		Throttled:   n.throttled,
		Misrouted:   n.misrouted,
		CtrlDropped: n.ctrlDrops,
		Events:      executed,
		End:         n.Eng.Now(),
		Drained:     drained,
	}
	// involved collects the endpoints of anomalous flows for the spool.
	involved := make(map[int]bool)
	for _, f := range n.flows {
		srcCrashed := n.Nodes[f.Src].crashed
		dstCrashed := n.Nodes[f.Dst].crashed
		// Refused attempts consumed no seq, so the flow's accepted
		// packets are exactly the contiguous seqs below Count−refused;
		// each must have been delivered exactly once.
		res.Refused += n.refused[f.Flow]
		for seq := 0; seq < f.Count-n.refused[f.Flow]; seq++ {
			cnt := n.delivered[flowKey{f.Flow, seq}]
			res.Delivered += cnt
			switch {
			case cnt == 0 && (srcCrashed || dstCrashed):
				res.CrashLost++
			case cnt == 0:
				res.Lost++
				involved[int(f.Src)] = true
				involved[int(f.Dst)] = true
			default:
				if cnt > 1 {
					res.Duplicates += cnt - 1
					involved[int(f.Src)] = true
					involved[int(f.Dst)] = true
				}
			}
		}
	}
	n.Snapshots = append(n.Snapshots, n.Registry.Fleet())

	if t := n.M.Telemetry; t.SpoolDir != "" && (res.Lost > 0 || res.Duplicates > 0 || res.Misrouted > 0) {
		for id := range n.misroutedAt {
			involved[id] = true
		}
		dump := make(map[int]*trace.Recorder, len(involved))
		for id := range involved {
			if r := n.recorders[id]; r != nil {
				dump[id] = r
			}
		}
		reason := fmt.Sprintf("lost%d-dup%d-misrouted%d", res.Lost, res.Duplicates, res.Misrouted)
		if dir, err := trace.DumpAnomaly(t.SpoolDir, reason, dump, t.SpoolLastN); err == nil {
			res.SpoolDir = dir
		}
	}
	return res
}

// Fleet returns the latest fleet telemetry roll-up — the final one after
// Run, or a live roll-up mid-run when no snapshot has been taken yet.
func (n *Net) Fleet() telemetry.FleetSnapshot {
	if len(n.Snapshots) > 0 {
		return n.Snapshots[len(n.Snapshots)-1]
	}
	return n.Registry.Fleet()
}

// Close shuts down every engine (idempotent; crashed nodes are already
// closed).
func (n *Net) Close() {
	for _, node := range n.Nodes {
		if node != nil && !node.crashed {
			node.Engine.Close()
		}
	}
}

func nodeIDs(members []int) []packet.NodeID {
	out := make([]packet.NodeID, len(members))
	for i, m := range members {
		out[i] = packet.NodeID(m)
	}
	return out
}

// port wraps a simulated NIC driver with the testnet's fault model: peer
// reachability gating on the send side and deterministic control-frame
// drops on the receive side. Gating sends (rather than partitioning the
// fabric) is what preserves zero-loss under chaos — frames in flight when
// a link cuts still arrive; only new posts are refused, and those enter
// the engine's failover path. Drops apply only to rendezvous control
// frames (RTS/CTS), the fault class the retry protocol recovers; dropping
// data frames would model a lossy wire the reliable-interconnect stack has
// no retransmission for.
//
// The port runs entirely on the simulation goroutine; no locking.
type port struct {
	*drivers.Sim
	net        *Net
	rng        *simnet.RNG
	dropPct    float64
	down       map[packet.NodeID]bool
	onPeerDown func(packet.NodeID)
	recv       drivers.RecvFunc
}

var (
	_ drivers.Driver           = (*port)(nil)
	_ drivers.PeerChecker      = (*port)(nil)
	_ drivers.PeerDownNotifier = (*port)(nil)
)

// Post refuses frames toward down peers with ErrPeerDown — exactly the
// error the engine's failover path treats as "try another rail or hold".
func (p *port) Post(ch int, f *packet.Frame, hostExtra simnet.Duration) error {
	if p.down[f.Dst] {
		return drivers.ErrPeerDown
	}
	return p.Sim.Post(ch, f, hostExtra)
}

// SetRecvHandler interposes the drop filter on the delivery upcall.
func (p *port) SetRecvHandler(fn drivers.RecvFunc) {
	p.recv = fn
	if fn == nil {
		p.Sim.SetRecvHandler(nil)
		return
	}
	p.Sim.SetRecvHandler(func(src packet.NodeID, f *packet.Frame) {
		if p.dropPct > 0 && (f.Kind == packet.FrameRTS || f.Kind == packet.FrameCTS) &&
			p.rng.Float64()*100 < p.dropPct {
			p.net.ctrlDrops++
			return
		}
		p.recv(src, f)
	})
}

// PeerDown implements drivers.PeerChecker; the engine consults it to route
// failover traffic around cut links.
func (p *port) PeerDown(peer packet.NodeID) bool { return p.down[peer] }

// SetPeerDownHandler implements drivers.PeerDownNotifier.
func (p *port) SetPeerDownHandler(fn func(peer packet.NodeID)) { p.onPeerDown = fn }

// setDown flips reachability toward peer, firing the engine's peer-down
// observer once per up->down transition.
func (p *port) setDown(peer packet.NodeID, down bool) {
	if down {
		if p.down[peer] {
			return
		}
		p.down[peer] = true
		if p.onPeerDown != nil {
			p.onPeerDown(peer)
		}
	} else {
		delete(p.down, peer)
	}
}
