// Package testnet boots large emulated networks — a thousand in-process
// optimizer engines over simulated fabrics — from a declarative manifest,
// and proves delivery and replay properties about them.
//
// A manifest names roles (how many nodes, which capability profile), the
// traffic between role groups, and a chaos schedule addressed at role
// groups; a single seed makes the whole run — node RNG streams, workload
// draws, chaos edge selection, frame-level drops — a pure function of the
// manifest. The determinism contract is strict: two Build+Run cycles of the
// same manifest produce byte-identical chaos traces and identical delivery
// accounting, which is what makes a failing 1000-node CI run replayable on
// a laptop from nothing but the manifest and the seed.
package testnet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"newmad/internal/caps"
	"newmad/internal/chaos"
	"newmad/internal/core"
	"newmad/internal/packet"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
	"newmad/internal/workload"
)

// Manifest is the declarative description of an emulated network. All
// durations are integer fields with explicit units (_us/_ms) so a manifest
// is plain JSON with no parsing conventions to remember.
type Manifest struct {
	// Name labels the topology in reports.
	Name string `json:"name"`
	// Seed drives every random decision in the run.
	Seed uint64 `json:"seed"`
	// Rails is the per-node rail count; every node gets one NIC on each of
	// the Rails fabrics. Rail count is topology-global — per-role rail
	// counts would let a sender stripe onto a fabric its peer has no NIC
	// on. Default 1.
	Rails int `json:"rails"`
	// DropPct is the percentage (0..100) of rendezvous control frames
	// (RTS/CTS) each receive port deterministically drops. Control frames
	// are the recoverable fault class: the rendezvous retry protocol
	// re-sends them and the receiver deduplicates, so exactly-once holds
	// under drop. Data frames are never dropped — the simulated fabrics
	// model reliable interconnects with no retransmission layer.
	DropPct float64 `json:"drop_pct"`
	// MaxEvents bounds the discrete-event run as a runaway guard.
	// Default 50M.
	MaxEvents uint64 `json:"max_events"`
	// Engine tunes every node's optimizer.
	Engine EngineTuning `json:"engine"`
	// Telemetry tunes the run's observability sweep: periodic fleet
	// snapshots on the virtual clock, per-node flight-recorder rings and
	// the dump-on-anomaly spool.
	Telemetry TelemetryClause `json:"telemetry"`
	// Roles partition the nodes. Node IDs are assigned to roles sorted by
	// role name, in contiguous blocks, so membership is independent of the
	// order roles appear in the file.
	Roles []Role `json:"roles"`
	// Workload lists the traffic clauses between role groups.
	Workload []TrafficClause `json:"workload"`
	// Chaos lists the fault clauses against role groups.
	Chaos []ChaosClause `json:"chaos"`
}

// EngineTuning carries per-node core.Engine knobs.
type EngineTuning struct {
	// Bundle names the strategy bundle; default "aggregate".
	Bundle string `json:"bundle"`
	// Lookahead bounds the plan window (0 = unbounded).
	Lookahead int `json:"lookahead"`
	// NagleUS delays submission-triggered sends (microseconds).
	NagleUS int `json:"nagle_us"`
	// RdvThreshold forces rendezvous above this size (bytes).
	RdvThreshold int `json:"rdv_threshold"`
	// RdvRetryUS is the rendezvous retry base window (microseconds);
	// required (>0) when DropPct > 0 or dropped RTS/CTS would strand
	// transfers.
	RdvRetryUS int `json:"rdv_retry_us"`
	// RdvRetryMax bounds retries per rendezvous (0 = engine default).
	RdvRetryMax int `json:"rdv_retry_max"`
}

// TelemetryClause tunes a run's observability. The zero value keeps the
// always-on minimum: engines still stamp latency spans (that is free and
// unconditional), the registry still rolls the fleet up once at the end
// of Run, but no periodic sweep, no flight recorders, no spool.
type TelemetryClause struct {
	// SnapshotMS takes a fleet snapshot every that many virtual
	// milliseconds while the run is active (0 = final snapshot only).
	// Snapshots accumulate on Net.Snapshots.
	SnapshotMS int `json:"snapshot_ms"`
	// TraceRing attaches a flight-recorder ring of this capacity to every
	// node (0 = none). Required (defaulted to 256) when SpoolDir is set.
	TraceRing int `json:"trace_ring"`
	// SpoolDir, when non-empty, receives a flight-recorder dump — the
	// last SpoolLastN trace events of every involved node — whenever Run
	// detects an anomaly (lost, duplicated or misrouted delivery).
	SpoolDir string `json:"spool_dir"`
	// SpoolLastN bounds the events dumped per node (default 256).
	SpoolLastN int `json:"spool_last_n"`
}

// Role is one class of nodes.
type Role struct {
	// Name is the group key chaos and workload clauses address.
	Name string `json:"name"`
	// Count is how many nodes run this role.
	Count int `json:"count"`
	// Profile names a capability record from the internal/caps registry
	// ("mx", "elan", "ib", "tcp", "wan"); default "tcp".
	Profile string `json:"profile"`
	// Channels overrides the profile's NIC channel count (0 keeps it).
	Channels int `json:"channels"`
	// Tenant is the admission-control principal (0..255) this role's
	// submissions are charged to; traffic clauses inherit the *sender*
	// role's tenant. Default 0. Tenancy is inert unless some role also
	// declares a Quota.
	Tenant int `json:"tenant"`
	// Quota, when set, bounds the role's tenant at every engine in the
	// topology (quota tables are homogeneous — a tenant's quota is per
	// sending engine, not fleet-global). Submissions refused by the quota
	// are counted as throttled, not lost. Two roles sharing a tenant must
	// declare identical quotas (or only one of them).
	Quota *QuotaClause `json:"quota"`
}

// QuotaClause is a role's per-tenant admission quota. Zero fields are
// unlimited on that axis, matching core.TenantQuota.
type QuotaClause struct {
	// RatePPS is the sustained admission rate (packets/second).
	RatePPS float64 `json:"rate_pps"`
	// Burst is the bucket depth above the sustained rate.
	Burst int `json:"burst"`
	// Backlog caps the tenant's queued-but-unplanned packets per engine.
	Backlog int `json:"backlog"`
}

// TrafficClause is one workload entry: members of From talking to members
// of To under a pattern.
type TrafficClause struct {
	// Name labels the clause in diagnostics.
	Name string `json:"name"`
	// From and To name roles.
	From string `json:"from"`
	To   string `json:"to"`
	// Pattern is "pairwise" (default), "broadcast" or "random".
	Pattern string `json:"pattern"`
	// Msgs is messages per expanded flow.
	Msgs int `json:"msgs"`
	// Size draws message sizes.
	Size SizeClause `json:"size"`
	// Arrival draws inter-submission gaps.
	Arrival ArrivalClause `json:"arrival"`
	// Class is "control", "small" (default), "bulk" or "rma".
	Class string `json:"class"`
	// StartUS offsets the clause's first submissions (microseconds).
	StartUS int `json:"start_us"`
}

// SizeClause selects a message-size law.
type SizeClause struct {
	// Dist is "fixed" (default), "uniform" or "pareto".
	Dist string `json:"dist"`
	// Lo is the fixed size, or the lower bound.
	Lo int `json:"lo"`
	// Hi is the upper bound for uniform/pareto.
	Hi int `json:"hi"`
	// Alpha is the pareto shape (default 1.2).
	Alpha float64 `json:"alpha"`
}

// ArrivalClause selects an arrival process.
type ArrivalClause struct {
	// Proc is "back-to-back" (default), "poisson" or "bursts".
	Proc string `json:"proc"`
	// MeanUS is the poisson mean gap (microseconds).
	MeanUS int `json:"mean_us"`
	// Burst is the bursts-mode burst length.
	Burst int `json:"burst"`
	// GapUS is the bursts-mode inter-burst gap (microseconds).
	GapUS int `json:"gap_us"`
}

// ChaosClause is one group-addressed fault. Heals are implied: the fault
// lasts ForMS and Resolve pairs each down with its heal on the same edges.
type ChaosClause struct {
	// AtMS is the fault offset from run start (milliseconds).
	AtMS int `json:"at_ms"`
	// Op is "rail-down", "partition" or "crash".
	Op string `json:"op"`
	// Group names the subject role; Peer the other side (default: Group).
	Group string `json:"group"`
	Peer  string `json:"peer"`
	// Rail picks the rail for rail-down; a negative value draws a random
	// rail per edge. Omitted means rail 0.
	Rail int `json:"rail"`
	// ForMS is the fault duration (milliseconds); 0 is a same-instant blip.
	ForMS int `json:"for_ms"`
	// Count is how many edges (nodes for crash) to draw; 0 means 1.
	Count int `json:"count"`
}

// Load reads and validates a manifest file.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("testnet: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates manifest JSON. Unknown fields are errors —
// a typoed knob silently defaulting would undermine the replay contract.
func Parse(data []byte) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("testnet: parsing manifest: %w", err)
	}
	m.applyDefaults()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

func (m *Manifest) applyDefaults() {
	if m.Rails == 0 {
		m.Rails = 1
	}
	if m.MaxEvents == 0 {
		m.MaxEvents = 50_000_000
	}
	if m.Engine.Bundle == "" {
		m.Engine.Bundle = "aggregate"
	}
	for i := range m.Roles {
		if m.Roles[i].Profile == "" {
			m.Roles[i].Profile = "tcp"
		}
	}
	if m.Telemetry.SpoolDir != "" {
		if m.Telemetry.TraceRing == 0 {
			m.Telemetry.TraceRing = 256
		}
		if m.Telemetry.SpoolLastN == 0 {
			m.Telemetry.SpoolLastN = 256
		}
	}
}

// Validate checks the manifest's internal consistency. It resolves every
// registry reference (profiles, bundles, patterns, classes) up front so a
// broken manifest fails at load, not mid-boot of a 1000-node topology.
func (m *Manifest) Validate() error {
	if m.Rails < 1 {
		return fmt.Errorf("testnet: %d rails", m.Rails)
	}
	if m.DropPct < 0 || m.DropPct > 100 {
		return fmt.Errorf("testnet: drop_pct %v outside [0,100]", m.DropPct)
	}
	if m.DropPct > 0 && m.Engine.RdvRetryUS <= 0 {
		return fmt.Errorf("testnet: drop_pct %v needs engine.rdv_retry_us > 0 (dropped control frames are only recovered by rendezvous retry)", m.DropPct)
	}
	if len(m.Roles) == 0 {
		return fmt.Errorf("testnet: no roles")
	}
	if m.Telemetry.SnapshotMS < 0 || m.Telemetry.TraceRing < 0 || m.Telemetry.SpoolLastN < 0 {
		return fmt.Errorf("testnet: negative telemetry tuning %+v", m.Telemetry)
	}
	if _, err := strategy.New(m.Engine.Bundle); err != nil {
		return fmt.Errorf("testnet: %w", err)
	}
	seen := map[string]bool{}
	total := 0
	for i, r := range m.Roles {
		if r.Name == "" {
			return fmt.Errorf("testnet: role %d unnamed", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("testnet: duplicate role %q", r.Name)
		}
		seen[r.Name] = true
		if r.Count < 1 {
			return fmt.Errorf("testnet: role %q has count %d", r.Name, r.Count)
		}
		if _, ok := caps.Lookup(r.Profile); !ok {
			return fmt.Errorf("testnet: role %q names unknown profile %q (known: %v)", r.Name, r.Profile, caps.Names())
		}
		if r.Channels < 0 {
			return fmt.Errorf("testnet: role %q has %d channels", r.Name, r.Channels)
		}
		if r.Tenant < 0 || r.Tenant > 255 {
			return fmt.Errorf("testnet: role %q has tenant %d outside 0..255", r.Name, r.Tenant)
		}
		if q := r.Quota; q != nil {
			if q.RatePPS < 0 || q.Burst < 0 || q.Backlog < 0 {
				return fmt.Errorf("testnet: role %q has negative quota %+v", r.Name, *q)
			}
		}
		total += r.Count
	}
	// A tenant's quota must be declared once (or identically): two roles
	// silently overwriting each other's table entry would make the
	// effective quota depend on role iteration order.
	quotas := map[int]QuotaClause{}
	for _, r := range m.Roles {
		if r.Quota == nil {
			continue
		}
		if prev, ok := quotas[r.Tenant]; ok && prev != *r.Quota {
			return fmt.Errorf("testnet: tenant %d has conflicting quotas %+v and %+v", r.Tenant, prev, *r.Quota)
		}
		quotas[r.Tenant] = *r.Quota
	}
	if total < 2 {
		return fmt.Errorf("testnet: %d nodes total; need at least 2", total)
	}
	if len(m.Workload) == 0 {
		return fmt.Errorf("testnet: no workload clauses")
	}
	for i, w := range m.Workload {
		if !seen[w.From] || !seen[w.To] {
			return fmt.Errorf("testnet: workload %d references unknown role (%q -> %q)", i, w.From, w.To)
		}
		if w.Msgs < 1 {
			return fmt.Errorf("testnet: workload %d has %d msgs", i, w.Msgs)
		}
		if _, err := workload.ParsePattern(w.Pattern); err != nil {
			return fmt.Errorf("testnet: workload %d: %w", i, err)
		}
		if _, err := w.Size.dist(); err != nil {
			return fmt.Errorf("testnet: workload %d: %w", i, err)
		}
		if _, err := w.Arrival.proc(); err != nil {
			return fmt.Errorf("testnet: workload %d: %w", i, err)
		}
		if _, err := parseClass(w.Class); err != nil {
			return fmt.Errorf("testnet: workload %d: %w", i, err)
		}
		if w.StartUS < 0 {
			return fmt.Errorf("testnet: workload %d starts at %dus", i, w.StartUS)
		}
	}
	for i, c := range m.Chaos {
		if _, err := parseChaosOp(c.Op); err != nil {
			return fmt.Errorf("testnet: chaos %d: %w", i, err)
		}
		if !seen[c.Group] {
			return fmt.Errorf("testnet: chaos %d names unknown group %q", i, c.Group)
		}
		if c.Peer != "" && !seen[c.Peer] {
			return fmt.Errorf("testnet: chaos %d names unknown peer group %q", i, c.Peer)
		}
		if c.AtMS < 0 || c.ForMS < 0 || c.Count < 0 {
			return fmt.Errorf("testnet: chaos %d has negative timing or count", i)
		}
		if c.Rail >= m.Rails {
			return fmt.Errorf("testnet: chaos %d targets rail %d of %d", i, c.Rail, m.Rails)
		}
	}
	return nil
}

// TotalNodes returns the topology size.
func (m *Manifest) TotalNodes() int {
	n := 0
	for _, r := range m.Roles {
		n += r.Count
	}
	return n
}

// rolesByName returns the roles sorted by name — the canonical order node
// IDs are assigned in, independent of file order.
func (m *Manifest) rolesByName() []Role {
	out := append([]Role(nil), m.Roles...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Groups returns role name -> ordered member node IDs. Membership is a pure
// function of the role set (names and counts), not of file order.
func (m *Manifest) Groups() map[string][]int {
	groups := make(map[string][]int, len(m.Roles))
	id := 0
	for _, r := range m.rolesByName() {
		members := make([]int, r.Count)
		for i := range members {
			members[i] = id
			id++
		}
		groups[r.Name] = members
	}
	return groups
}

// Quotas compiles the roles' quota clauses into the per-engine admission
// table (nil when no role declares one, which keeps admission disabled).
func (m *Manifest) Quotas() map[packet.TenantID]core.TenantQuota {
	var out map[packet.TenantID]core.TenantQuota
	for _, r := range m.Roles {
		if r.Quota == nil {
			continue
		}
		if out == nil {
			out = make(map[packet.TenantID]core.TenantQuota)
		}
		out[packet.TenantID(r.Tenant)] = core.TenantQuota{
			Rate:    r.Quota.RatePPS,
			Burst:   r.Quota.Burst,
			Backlog: r.Quota.Backlog,
		}
	}
	return out
}

// GroupChaos converts the chaos clauses to the group-script DSL. Resolving
// it with the seed-keyed "chaos" stream (as Build does) yields the concrete
// schedule; other tiers (internal/cluster's socket meshes) use the same
// derivation to replay the identical schedule.
func (m *Manifest) GroupChaos() chaos.GroupScript {
	var g chaos.GroupScript
	for _, c := range m.Chaos {
		op, _ := parseChaosOp(c.Op) // validated at load
		g.Events = append(g.Events, chaos.GroupEvent{
			At:    time.Duration(c.AtMS) * time.Millisecond,
			Op:    op,
			For:   time.Duration(c.ForMS) * time.Millisecond,
			Group: c.Group,
			Peer:  c.Peer,
			Rail:  c.Rail,
			Count: c.Count,
		})
	}
	return g
}

func (s SizeClause) dist() (workload.SizeDist, error) {
	switch s.Dist {
	case "fixed", "":
		if s.Lo < 1 {
			return nil, fmt.Errorf("fixed size %d", s.Lo)
		}
		return workload.Fixed(s.Lo), nil
	case "uniform":
		if s.Lo < 1 || s.Hi < s.Lo {
			return nil, fmt.Errorf("uniform size bounds %d..%d", s.Lo, s.Hi)
		}
		return workload.Uniform{Lo: s.Lo, Hi: s.Hi}, nil
	case "pareto":
		alpha := s.Alpha
		if alpha == 0 {
			alpha = 1.2
		}
		if s.Lo < 1 || s.Hi < s.Lo || alpha <= 0 {
			return nil, fmt.Errorf("pareto size %d..%d alpha %v", s.Lo, s.Hi, alpha)
		}
		return workload.Pareto{Lo: s.Lo, Hi: s.Hi, Alpha: alpha}, nil
	}
	return nil, fmt.Errorf("unknown size dist %q", s.Dist)
}

func (a ArrivalClause) proc() (workload.Arrival, error) {
	switch a.Proc {
	case "back-to-back", "":
		return workload.BackToBack{}, nil
	case "poisson":
		if a.MeanUS < 1 {
			return nil, fmt.Errorf("poisson mean %dus", a.MeanUS)
		}
		return workload.Poisson{Mean: simnet.Duration(a.MeanUS) * simnet.Microsecond}, nil
	case "bursts":
		if a.Burst < 1 || a.GapUS < 0 {
			return nil, fmt.Errorf("bursts of %d gap %dus", a.Burst, a.GapUS)
		}
		return &workload.Bursts{Size: a.Burst, Gap: simnet.Duration(a.GapUS) * simnet.Microsecond}, nil
	}
	return nil, fmt.Errorf("unknown arrival proc %q", a.Proc)
}

func parseClass(s string) (packet.ClassID, error) {
	switch s {
	case "control":
		return packet.ClassControl, nil
	case "small", "":
		return packet.ClassSmall, nil
	case "bulk":
		return packet.ClassBulk, nil
	case "rma":
		return packet.ClassRMA, nil
	}
	return 0, fmt.Errorf("unknown class %q", s)
}

func parseChaosOp(s string) (chaos.Op, error) {
	switch s {
	case "rail-down":
		return chaos.OpRailDown, nil
	case "partition":
		return chaos.OpPartition, nil
	case "crash":
		return chaos.OpCrash, nil
	}
	return 0, fmt.Errorf("unknown chaos op %q (heals are implied by for_ms)", s)
}
