package testnet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// telemetryManifest is a small clean topology with the observability
// sweep on: per-millisecond fleet snapshots, flight recorders, and a
// spool directory for anomaly dumps.
func telemetryManifest(t *testing.T, nodes int) *Manifest {
	t.Helper()
	m := batteryManifest(nodes, 0, *flagSeed)
	m.Chaos = nil
	m.Engine.RdvRetryUS = 0
	m.Telemetry = TelemetryClause{
		SnapshotMS: 1,
		TraceRing:  128,
		SpoolDir:   t.TempDir(),
		SpoolLastN: 32,
	}
	m.applyDefaults()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestTestnet_FleetSnapshots proves the periodic sim-clock sweep and the
// final roll-up: snapshots accumulate during the run, the heap still
// drains (the sweep must not keep the simulation alive), and the final
// fleet view carries non-zero delivery-latency histograms merged across
// every engine and role.
func TestTestnet_FleetSnapshots(t *testing.T) {
	m := telemetryManifest(t, 16)
	n, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	res := n.Run()
	if !res.Drained {
		t.Fatal("snapshot sweep kept the event heap alive")
	}
	assertExactlyOnce(t, res)

	if len(n.Snapshots) < 2 {
		t.Fatalf("expected periodic + final snapshots, got %d", len(n.Snapshots))
	}
	fleet := n.Fleet()
	if fleet.Nodes != m.TotalNodes() {
		t.Fatalf("fleet covers %d of %d nodes", fleet.Nodes, m.TotalNodes())
	}
	// Eager deliveries carry the submit stamp end to end; rendezvous
	// payloads are reconstructed at the receiver without one, so the e2e
	// histogram covers the eager subset of deliveries.
	if got := fleet.SpanTotal("e2e").Count(); got == 0 || got > uint64(res.Delivered) {
		t.Fatalf("fleet e2e samples = %d, delivered = %d", got, res.Delivered)
	}
	if fleet.SpanTotal("e2e").Quantile(0.99) <= 0 {
		t.Fatal("fleet p99 delivery latency is zero")
	}
	if fleet.SpanTotal("queue_wait").Count() == 0 {
		t.Fatal("fleet queue-wait histogram empty")
	}
	// Role roll-ups: both roles present, each with merged span histograms.
	if len(fleet.Roles) != 2 {
		t.Fatalf("roles in roll-up: %d", len(fleet.Roles))
	}
	for _, rr := range fleet.Roles {
		if rr.Nodes == 0 {
			t.Fatalf("role %q rolled up zero nodes", rr.Role)
		}
		if len(rr.Spans) == 0 {
			t.Fatalf("role %q has no merged spans", rr.Role)
		}
	}
	// Earlier snapshots are genuinely mid-run: monotone delivery counts.
	first, last := n.Snapshots[0], n.Snapshots[len(n.Snapshots)-1]
	if first.Totals.Delivered > last.Totals.Delivered {
		t.Fatalf("delivery count regressed across snapshots: %d then %d",
			first.Totals.Delivered, last.Totals.Delivered)
	}
	// A clean run leaves no spool behind.
	if res.SpoolDir != "" {
		t.Fatalf("clean run produced an anomaly spool at %s", res.SpoolDir)
	}
	// The roll-up serializes: this is the CI fleet artifact.
	if _, err := json.Marshal(fleet); err != nil {
		t.Fatal(err)
	}
}

// TestTestnet_SpoolOnAnomaly proves the flight-recorder dump: when the
// ledger shows an anomaly, the involved nodes' trace rings land on disk
// as JSONL, one file per node.
func TestTestnet_SpoolOnAnomaly(t *testing.T) {
	m := telemetryManifest(t, 8)
	n, err := Build(m)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Forge a misrouted delivery at node 0. Producing a real one would
	// require breaking the router; the spool trigger reads the ledger, so
	// forging the ledger exercises the identical path.
	n.misrouted = 1
	n.misroutedAt[0] = true

	res := n.Run()
	if res.Misrouted != 1 {
		t.Fatalf("forged misroute not accounted: %+v", res)
	}
	if res.SpoolDir == "" {
		t.Fatal("anomaly produced no spool")
	}
	if !strings.Contains(filepath.Base(res.SpoolDir), "misrouted1") {
		t.Fatalf("spool dir %q does not name the anomaly", res.SpoolDir)
	}
	data, err := os.ReadFile(filepath.Join(res.SpoolDir, "node-0.jsonl"))
	if err != nil {
		t.Fatalf("involved node's ring not dumped: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("spool file empty")
	}
	if len(lines) > m.Telemetry.SpoolLastN {
		t.Fatalf("spool dumped %d events, cap was %d", len(lines), m.Telemetry.SpoolLastN)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("spool line not JSON: %v", err)
	}
	if _, ok := rec["kind"]; !ok {
		t.Fatalf("spool record missing kind: %v", rec)
	}
}
