package testnet

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"newmad/internal/packet"
)

// The battery is flag-tunable so one binary covers every tier: plain
// `go test` runs a fast default scale, CI smoke runs hundreds of nodes,
// and the nightly (or a laptop replaying a red nightly) runs the full
// thousand:
//
//	go test ./internal/testnet -run TestTestnet -testnet.nodes=2000 -testnet.drop=30 -testnet.seed=42
var (
	flagNodes = flag.Int("testnet.nodes", 0, "testnet battery scale (0 = auto: 48 in -short, 96 otherwise)")
	flagDrop  = flag.Float64("testnet.drop", 10, "control-frame drop percentage for the battery")
	flagSeed  = flag.Uint64("testnet.seed", 42, "seed for the battery manifests")
	flagTrace = flag.String("testnet.trace", "", "write the executed chaos trace to this file (CI failure artifact)")
	flagFleet = flag.String("testnet.fleet", "", "write the battery's final fleet telemetry roll-up (JSON) to this file (CI artifact)")
)

func batteryNodes() int {
	if *flagNodes > 0 {
		return *flagNodes
	}
	if testing.Short() {
		return 48
	}
	return 96
}

// replayHint logs the exact invocation that reproduces a failed run; every
// stochastic decision is a function of the flags, so this is a complete
// repro.
func replayHint(t *testing.T, nodes int, drop float64, seed uint64) {
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("replay: go test ./internal/testnet -run '^%s$' -testnet.nodes=%d -testnet.drop=%v -testnet.seed=%d",
				t.Name(), nodes, drop, seed)
		}
	})
}

// batteryManifest builds the canonical chaos topology at the given scale:
// a 3:1 edge/core split over two rails, cross-role and intra-role traffic
// crossing the rendezvous threshold, and a schedule of rail cuts, a group
// partition and a zero-duration blip.
func batteryManifest(nodes int, drop float64, seed uint64) *Manifest {
	if nodes < 8 {
		nodes = 8
	}
	coreN := nodes / 4
	edgeN := nodes - coreN
	m := &Manifest{
		Name:    fmt.Sprintf("battery-%d", nodes),
		Seed:    seed,
		Rails:   2,
		DropPct: drop,
		Engine: EngineTuning{
			Bundle:       "aggregate",
			RdvThreshold: 4096,
			RdvRetryUS:   500,
			RdvRetryMax:  14,
		},
		Roles: []Role{
			{Name: "edge", Count: edgeN, Profile: "tcp"},
			{Name: "core", Count: coreN, Profile: "mx"},
		},
		Workload: []TrafficClause{
			{
				Name: "edge-up", From: "edge", To: "core", Pattern: "random",
				Msgs:    8,
				Size:    SizeClause{Dist: "uniform", Lo: 64, Hi: 12288},
				Arrival: ArrivalClause{Proc: "poisson", MeanUS: 40},
			},
			{
				Name: "core-ring", From: "core", To: "core", Pattern: "pairwise",
				Msgs: 6, Class: "bulk",
				Size:    SizeClause{Dist: "pareto", Lo: 256, Hi: 32768, Alpha: 1.2},
				Arrival: ArrivalClause{Proc: "bursts", Burst: 3, GapUS: 150},
			},
		},
		Chaos: []ChaosClause{
			{AtMS: 1, Op: "rail-down", Group: "edge", Peer: "core", Rail: -1, ForMS: 2, Count: maxInt(1, nodes/16)},
			{AtMS: 2, Op: "partition", Group: "core", ForMS: 1, Count: maxInt(1, coreN/4)},
			{AtMS: 3, Op: "rail-down", Group: "edge", ForMS: 0, Count: 2},
		},
	}
	m.applyDefaults()
	return m
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mustRun(t *testing.T, m *Manifest) (*Net, *Result) {
	t.Helper()
	n, err := Build(m)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res := n.Run()
	n.Close()
	if !res.Drained {
		t.Fatalf("simulation hit the %d-event guard without draining: %v", m.MaxEvents, res)
	}
	return n, res
}

// assertExactlyOnce is the battery's core claim: every scheduled message
// between live nodes arrives exactly once, no matter what the chaos
// schedule and the drop rate did in between.
func assertExactlyOnce(t *testing.T, res *Result) {
	t.Helper()
	if res.Lost != 0 {
		t.Errorf("%d messages lost between live nodes", res.Lost)
	}
	if res.Duplicates != 0 {
		t.Errorf("%d duplicate deliveries", res.Duplicates)
	}
	if res.Misrouted != 0 {
		t.Errorf("%d misrouted deliveries", res.Misrouted)
	}
	if t.Failed() {
		t.Logf("result: %v", res)
	}
}

// TestTestnet_Boot drives the file loader end to end: parse testdata,
// boot, run, exactly-once.
func TestTestnet_Boot(t *testing.T) {
	m, err := Load("testdata/smoke.json")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	replayHint(t, m.TotalNodes(), m.DropPct, m.Seed)
	_, res := mustRun(t, m)
	assertExactlyOnce(t, res)
	if res.Submitted == 0 || res.Delivered == 0 {
		t.Fatalf("empty run: %v", res)
	}
	if res.CtrlDropped == 0 {
		t.Errorf("10%% drop injected no control-frame faults: %v", res)
	}
	if res.Refused != 0 || res.CrashLost != 0 {
		t.Errorf("crash casualties without a crash clause: %v", res)
	}
}

// TestTestnet_ExactlyOnceUnderDrop is the scale battery: flag-tunable node
// count and drop rate, zero lost and zero duplicated frames required.
func TestTestnet_ExactlyOnceUnderDrop(t *testing.T) {
	nodes, drop, seed := batteryNodes(), *flagDrop, *flagSeed
	replayHint(t, nodes, drop, seed)
	m := batteryManifest(nodes, drop, seed)
	n, res := mustRun(t, m)
	t.Logf("%v", res)
	assertExactlyOnce(t, res)
	if drop > 0 && res.CtrlDropped == 0 {
		t.Errorf("drop_pct=%v injected no control-frame faults", drop)
	}
	fleet := n.Fleet()
	if fleet.SpanTotal("e2e").Count() == 0 {
		t.Error("battery fleet roll-up has an empty delivery-latency histogram")
	}
	if *flagFleet != "" {
		data, err := json.MarshalIndent(fleet, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(*flagFleet, data, 0o644); err != nil {
			t.Fatalf("writing fleet artifact: %v", err)
		}
	}
}

// TestTestnet_SeedReplayChaosTrace asserts the replay contract: two runs
// of the same manifest produce byte-identical chaos traces and identical
// accounting, and a different seed produces a genuinely different run.
func TestTestnet_SeedReplayChaosTrace(t *testing.T) {
	nodes, drop, seed := batteryNodes(), *flagDrop, *flagSeed
	replayHint(t, nodes, drop, seed)

	n1, r1 := mustRun(t, batteryManifest(nodes, drop, seed))
	n2, r2 := mustRun(t, batteryManifest(nodes, drop, seed))

	if *flagTrace != "" {
		if err := os.WriteFile(*flagTrace, []byte(n1.Trace.String()), 0o644); err != nil {
			t.Fatalf("writing trace artifact: %v", err)
		}
	}

	if n1.Trace.Len() == 0 {
		t.Fatal("battery executed no chaos events")
	}
	if d := n1.Trace.Diff(n2.Trace); d != "" {
		t.Fatalf("same seed, diverging chaos traces: %s", d)
	}
	if n1.Trace.String() != n2.Trace.String() {
		t.Fatal("same seed, traces render differently")
	}
	if *r1 != *r2 {
		t.Fatalf("same seed, diverging accounting:\n  %v\n  %v", r1, r2)
	}

	n3, r3 := mustRun(t, batteryManifest(nodes, drop, seed+1))
	if n1.Trace.Diff(n3.Trace) == "" && *r1 == *r3 {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestTestnet_ManifestReorderStability asserts that the order roles appear
// in the file cannot change the run: node IDs are assigned by sorted role
// name and every RNG stream is keyed by identity, so two permutations of
// the same manifest are the same topology.
func TestTestnet_ManifestReorderStability(t *testing.T) {
	replayHint(t, 16, 10, *flagSeed)
	forward := batteryManifest(16, 10, *flagSeed)
	reversed := batteryManifest(16, 10, *flagSeed)
	for i, j := 0, len(reversed.Roles)-1; i < j; i, j = i+1, j-1 {
		reversed.Roles[i], reversed.Roles[j] = reversed.Roles[j], reversed.Roles[i]
	}

	ga, gb := forward.Groups(), reversed.Groups()
	for name, members := range ga {
		if fmt.Sprint(gb[name]) != fmt.Sprint(members) {
			t.Fatalf("group %q differs under role reordering: %v vs %v", name, members, gb[name])
		}
	}

	na, ra := mustRun(t, forward)
	nb, rb := mustRun(t, reversed)
	if d := na.Trace.Diff(nb.Trace); d != "" {
		t.Fatalf("role reordering changed the chaos trace: %s", d)
	}
	if *ra != *rb {
		t.Fatalf("role reordering changed accounting:\n  %v\n  %v", ra, rb)
	}
}

// TestTestnet_CrashAccounting asserts crash semantics: messages touching a
// crashed node become scripted casualties (refused or crash-lost), while
// traffic between live nodes still arrives exactly once.
func TestTestnet_CrashAccounting(t *testing.T) {
	seed := *flagSeed
	replayHint(t, 24, 10, seed)
	m := batteryManifest(24, 10, seed)
	m.Chaos = append(m.Chaos, ChaosClause{AtMS: 0, Op: "crash", Group: "core", Count: 2})
	n, res := mustRun(t, m)
	t.Logf("%v", res)
	assertExactlyOnce(t, res)
	if res.Refused+res.CrashLost == 0 {
		t.Errorf("two crashed core nodes produced no casualties: %v", res)
	}
	crashed := 0
	for _, node := range n.Nodes {
		if node.crashed {
			crashed++
		}
	}
	if crashed != 2 {
		t.Fatalf("%d nodes crashed, want 2", crashed)
	}
}

// TestTestnet_FlooderSoak is the misbehaving-tenant soak (the nightly
// -race lane runs it repeatedly): a manifest with a quota'd flooder role
// offering ~10× its admitted rate next to protected app traffic. The
// flood must be absorbed at the admission edge — throttle refusals, all
// of them explicit and none counted as lost — while every admitted
// packet still arrives exactly once, protected flows see no refusals at
// all, and the fleet telemetry roll-up carries the flooder's refusal
// counters.
func TestTestnet_FlooderSoak(t *testing.T) {
	m, err := Load("testdata/flooder.json")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	replayHint(t, m.TotalNodes(), m.DropPct, m.Seed)
	n, res := mustRun(t, m)
	t.Logf("%v", res)
	assertExactlyOnce(t, res)
	if res.Throttled == 0 {
		t.Fatalf("flooder at 10x quota produced no throttle refusals: %v", res)
	}
	if res.Refused != res.Throttled {
		t.Errorf("non-admission refusals without a crash clause: %v", res)
	}
	if res.Delivered != res.Submitted-res.Refused {
		t.Errorf("ledger: %d delivered != %d submitted - %d refused", res.Delivered, res.Submitted, res.Refused)
	}
	const flooder = packet.TenantID(3)
	for _, f := range n.flows {
		if f.Tenant != flooder && n.refused[f.Flow] != 0 {
			t.Errorf("protected tenant %d flow %d saw %d refusals", f.Tenant, f.Flow, n.refused[f.Flow])
		}
	}
	fleet := n.Registry.Fleet()
	var seen bool
	for _, tm := range fleet.Tenants {
		if tm.Tenant == flooder {
			seen = true
			if tm.Throttled == 0 {
				t.Errorf("fleet roll-up shows no throttles for the flooder: %+v", tm)
			}
		}
	}
	if !seen {
		t.Error("fleet roll-up has no row for the flooder tenant")
	}
}
