package strategy

import (
	"math"
	"sync"

	"newmad/internal/caps"
	"newmad/internal/packet"
)

// ScheduledRail is the capability-aware rail scheduler for multi-rail
// nodes: every placement decision reads the capability records of the
// node's rails, so the same policy serves homogeneous striped NICs and
// heterogeneous technology mixes (and, over the real-socket transport,
// TCP rails emulating either).
//
//   - Control frames (RTS/CTS/acks) go to the lowest-latency rail: they are
//     tiny, and their delay is paid on every rendezvous round trip.
//   - Small eager aggregates prefer the low-latency rail but may overflow
//     to any rail whose eager limit (MaxAggregate) admits them — per-rail
//     caps bound the decision exactly as they bound the plan builder.
//   - Bulk transfers (granted rendezvous data, RMA payloads) are striped:
//     each transfer hashes onto one rail in proportion to the scheduling
//     weights, which default to rail bandwidth. On a heterogeneous node the
//     low-latency rail is kept out of the stripe set (bulk on the latency
//     rail is what the class/rail separation exists to prevent) unless it
//     is the only weighted rail left.
//
// Weights are runtime-tunable (SetWeights) — the adaptive controller's rail
// knob: a weight of 0 removes a rail from the stripe set and from small
// overflow, draining traffic off it without reconfiguring the topology.
type ScheduledRail struct {
	rails  []caps.Caps
	lowLat int  // index of the lowest-latency rail
	hetero bool // lowLat rail is strictly slower than the fastest rail

	mu      sync.Mutex
	weights []float64
}

// NewScheduledRail builds the scheduler for a node's rails (indexed like
// RailInfo.Index; must match the engine's rail order). Initial weights are
// bandwidth-proportional.
func NewScheduledRail(rails []caps.Caps) *ScheduledRail {
	s := &ScheduledRail{rails: append([]caps.Caps(nil), rails...)}
	maxBW := 0.0
	for i, c := range s.rails {
		lat := c.PostOverhead + c.WireLatency
		if best := s.rails[s.lowLat]; lat < best.PostOverhead+best.WireLatency {
			s.lowLat = i
		}
		if c.Bandwidth > maxBW {
			maxBW = c.Bandwidth
		}
	}
	if len(s.rails) > 0 {
		s.hetero = s.rails[s.lowLat].Bandwidth < maxBW
	}
	s.weights = s.defaultWeights()
	return s
}

func (s *ScheduledRail) defaultWeights() []float64 {
	w := make([]float64, len(s.rails))
	for i, c := range s.rails {
		w[i] = c.Bandwidth
	}
	return w
}

// Name returns "rail-sched".
func (s *ScheduledRail) Name() string { return "rail-sched" }

// SetWeights replaces the scheduling weights. Missing entries keep their
// bandwidth default, negative entries are ignored; if every weight would be
// zero the defaults are restored (a scheduler with nowhere to place bulk is
// a configuration error, not a useful state).
func (s *ScheduledRail) SetWeights(w []float64) {
	ws := s.defaultWeights()
	anyPositive := false
	for i := range ws {
		if i < len(w) && w[i] >= 0 {
			ws[i] = w[i]
		}
		if ws[i] > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		ws = s.defaultWeights()
	}
	s.mu.Lock()
	s.weights = ws
	s.mu.Unlock()
}

// Weights returns the weights currently in effect.
func (s *ScheduledRail) Weights() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]float64(nil), s.weights...)
}

// Eligible implements RailPolicy.
func (s *ScheduledRail) Eligible(p *packet.Packet, rail RailInfo) bool {
	if rail.Count <= 1 || len(s.rails) != rail.Count {
		// Single rail, or a rail table that does not describe this node:
		// admit everything rather than strand traffic.
		return true
	}
	switch p.Class {
	case packet.ClassControl:
		return rail.Index == s.lowLat
	case packet.ClassBulk, packet.ClassRMA:
		return rail.Index == s.stripe(p)
	default:
		if rail.Index == s.lowLat {
			return true
		}
		s.mu.Lock()
		w := s.weights[rail.Index]
		s.mu.Unlock()
		return w > 0 && p.Size() <= s.rails[rail.Index].MaxAggregate
	}
}

// stripe deterministically maps one bulk transfer (identified by flow, msg
// and fragment seq) onto a weighted rail slot, so consecutive transfers of
// one flow spread across rails while every frame of one transfer keeps a
// stable placement. Placement is a low-discrepancy walk (golden-ratio
// increments per seq/msg, an R2-sequence offset per flow) rather than a
// plain hash: a burst of only a handful of transfers still splits
// near-proportionally, which a hash cannot guarantee.
func (s *ScheduledRail) stripe(p *packet.Packet) int {
	s.mu.Lock()
	w := append([]float64(nil), s.weights...)
	s.mu.Unlock()
	if s.hetero {
		// Keep bulk off the latency rail when another weighted rail exists.
		rest := 0.0
		for i, v := range w {
			if i != s.lowLat {
				rest += v
			}
		}
		if rest > 0 {
			w[s.lowLat] = 0
		}
	}
	total := 0.0
	for _, v := range w {
		total += v
	}
	if total <= 0 {
		return s.lowLat
	}
	const (
		phi = 0.6180339887498949 // 1/φ
		r21 = 0.7548776662466927 // R2 sequence, first coordinate
		r22 = 0.5698402909980532 // R2 sequence, second coordinate
	)
	x := float64(uint32(p.Flow))*r21 + float64(uint64(p.Msg)%(1<<20))*r22 + float64(uint32(p.Seq))*phi
	x = (x - math.Floor(x)) * total
	for i, v := range w {
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}

// RailWeightSetter is implemented by rail policies whose per-rail
// scheduling weights are runtime-tunable (the engine's SetRailWeights knob
// and the controller's rail retuning go through it).
type RailWeightSetter interface {
	SetWeights([]float64)
	Weights() []float64
}

var _ RailPolicy = (*ScheduledRail)(nil)
var _ RailWeightSetter = (*ScheduledRail)(nil)
