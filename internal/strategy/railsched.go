package strategy

import (
	"math"
	"sync/atomic"

	"newmad/internal/caps"
	"newmad/internal/packet"
)

// ScheduledRail is the capability-aware rail scheduler for multi-rail
// nodes: every placement decision reads the capability records of the
// node's rails, so the same policy serves homogeneous striped NICs and
// heterogeneous technology mixes (and, over the real-socket transport,
// TCP rails emulating either).
//
//   - Control frames (RTS/CTS/acks) go to the lowest-latency rail: they are
//     tiny, and their delay is paid on every rendezvous round trip.
//   - Small eager aggregates prefer the low-latency rail but may overflow
//     to any rail whose eager limit (MaxAggregate) admits them — per-rail
//     caps bound the decision exactly as they bound the plan builder.
//   - Bulk transfers (granted rendezvous data, RMA payloads) are striped:
//     each transfer hashes onto one rail in proportion to the scheduling
//     weights, which default to rail bandwidth. On a heterogeneous node the
//     low-latency rail is kept out of the stripe set (bulk on the latency
//     rail is what the class/rail separation exists to prevent) unless it
//     is the only weighted rail left.
//
// Weights are runtime-tunable (SetWeights) — the adaptive controller's rail
// knob: a weight of 0 removes a rail from the stripe set and from small
// overflow, draining traffic off it without reconfiguring the topology.
//
// The weights in effect live in one immutable snapshot behind an atomic
// pointer: SetWeights sanitizes and precomputes (hetero mask, prefix sums)
// once per update, and the Eligible/stripe hot path is a single atomic load
// with zero allocations and zero locks. Readers mid-decision keep the
// snapshot they loaded; a concurrent retune affects the next decision.
type ScheduledRail struct {
	rails  []caps.Caps
	lowLat int  // index of the lowest-latency rail
	hetero bool // lowLat rail is strictly slower than the fastest rail

	genBase uint64 // per-instance generation prefix (see WeightGen)
	genSeq  atomic.Uint64
	snap    atomic.Pointer[railSnap]
}

// railSnap is one immutable weight configuration. Everything stripe and
// Eligible need per decision is precomputed here so the datapath never
// copies or walks more than it must.
type railSnap struct {
	gen     uint64
	weights []float64 // sanitized effective weights (what Weights reports)
	prefix  []float64 // running sums of the hetero-masked stripe weights
	total   float64   // prefix[len-1]; <= 0 means "nothing to stripe onto"
}

// railSchedInstances seeds genBase so two ScheduledRail instances (e.g.
// across a bundle swap) can never hand out the same weight generation:
// cached placements keyed by gen would otherwise survive the swap.
var railSchedInstances atomic.Uint64

// NewScheduledRail builds the scheduler for a node's rails (indexed like
// RailInfo.Index; must match the engine's rail order). Initial weights are
// bandwidth-proportional.
func NewScheduledRail(rails []caps.Caps) *ScheduledRail {
	s := &ScheduledRail{
		rails:   append([]caps.Caps(nil), rails...),
		genBase: railSchedInstances.Add(1) << 32,
	}
	maxBW := 0.0
	for i, c := range s.rails {
		lat := c.PostOverhead + c.WireLatency
		if best := s.rails[s.lowLat]; lat < best.PostOverhead+best.WireLatency {
			s.lowLat = i
		}
		if c.Bandwidth > maxBW {
			maxBW = c.Bandwidth
		}
	}
	if len(s.rails) > 0 {
		s.hetero = s.rails[s.lowLat].Bandwidth < maxBW
	}
	s.publish(s.defaultWeights())
	return s
}

func (s *ScheduledRail) defaultWeights() []float64 {
	w := make([]float64, len(s.rails))
	for i, c := range s.rails {
		w[i] = sanitizeWeight(c.Bandwidth)
	}
	return w
}

// sanitizeWeight maps anything that would poison stripe arithmetic — NaN,
// ±Inf, negatives — to 0 (rail carries nothing). A single +Inf weight would
// make total non-finite and silently collapse every bulk transfer onto the
// last rail.
func sanitizeWeight(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0
	}
	return v
}

// Name returns "rail-sched".
func (s *ScheduledRail) Name() string { return "rail-sched" }

// SetWeights replaces the scheduling weights. Missing entries keep their
// bandwidth default; negative entries are ignored (keep the default);
// non-finite entries (NaN, ±Inf) are sanitized to the bandwidth default;
// entries beyond the rail count are dropped. If every weight would be zero
// the defaults are restored (a scheduler with nowhere to place bulk is a
// configuration error, not a useful state).
func (s *ScheduledRail) SetWeights(w []float64) {
	ws := s.defaultWeights()
	anyPositive := false
	for i := range ws {
		if i < len(w) {
			if v := w[i]; v >= 0 && !math.IsInf(v, 1) {
				ws[i] = v
			}
			// NaN fails v >= 0 and +Inf is excluded above: both keep the
			// (already sanitized) bandwidth default, as do negatives.
		}
		if ws[i] > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		ws = s.defaultWeights()
	}
	s.publish(ws)
}

// publish builds and atomically installs the snapshot for ws: hetero mask
// applied once, prefix sums precomputed, a fresh generation stamped. This is
// the only writer path; readers never see a partially built snapshot.
func (s *ScheduledRail) publish(ws []float64) {
	sn := &railSnap{
		gen:     s.genBase + s.genSeq.Add(1),
		weights: ws,
		prefix:  make([]float64, len(ws)),
	}
	masked := ws
	if s.hetero {
		// Keep bulk off the latency rail when another weighted rail exists.
		rest := 0.0
		for i, v := range ws {
			if i != s.lowLat {
				rest += v
			}
		}
		if rest > 0 {
			masked = append([]float64(nil), ws...)
			masked[s.lowLat] = 0
		}
	}
	acc := 0.0
	for i, v := range masked {
		acc += v
		sn.prefix[i] = acc
	}
	sn.total = acc
	s.snap.Store(sn)
}

// Weights returns the (sanitized) weights currently in effect.
func (s *ScheduledRail) Weights() []float64 {
	return append([]float64(nil), s.snap.Load().weights...)
}

// WeightGen implements BulkPlacer: it identifies the snapshot in effect and
// moves on every SetWeights. Generations are unique across instances and
// never zero, so callers may use 0 as a "not yet computed" sentinel.
func (s *ScheduledRail) WeightGen() uint64 {
	return s.snap.Load().gen
}

// BulkRail implements BulkPlacer: the rail one bulk transfer stripes onto,
// or -1 when this policy does not stripe for a table of railCount rails
// (single rail, or a mismatched topology — the per-rail Eligible fallback
// admits everything in that case).
func (s *ScheduledRail) BulkRail(p *packet.Packet, railCount int) int {
	if railCount <= 1 || len(s.rails) != railCount {
		return -1
	}
	return s.stripe(s.snap.Load(), p)
}

// Eligible implements RailPolicy.
func (s *ScheduledRail) Eligible(p *packet.Packet, rail RailInfo) bool {
	ok, _ := s.EligibleWeighted(p, rail)
	return ok
}

// EligibleWeighted implements WeightAware: alongside the Eligible verdict it
// reports whether a refusal is weight-bound — i.e. could be lifted by a
// SetWeights call alone. Structural refusals (control pinned to the latency
// rail, aggregates over a rail's eager limit) are not: no weight update can
// admit them, so a retune need not revisit that work.
func (s *ScheduledRail) EligibleWeighted(p *packet.Packet, rail RailInfo) (ok, weightBound bool) {
	if rail.Count <= 1 || len(s.rails) != rail.Count {
		// Single rail, or a rail table that does not describe this node:
		// admit everything rather than strand traffic.
		return true, false
	}
	switch p.Class {
	case packet.ClassControl:
		return rail.Index == s.lowLat, false
	case packet.ClassBulk, packet.ClassRMA:
		return rail.Index == s.stripe(s.snap.Load(), p), true
	default:
		if rail.Index == s.lowLat {
			return true, false
		}
		if p.Size() > s.rails[rail.Index].MaxAggregate {
			return false, false // capability refusal dominates: never weight-curable
		}
		return s.snap.Load().weights[rail.Index] > 0, true
	}
}

// stripe deterministically maps one bulk transfer (identified by flow, msg
// and fragment seq) onto a weighted rail slot, so consecutive transfers of
// one flow spread across rails while every frame of one transfer keeps a
// stable placement. Placement is a low-discrepancy walk (golden-ratio
// increments per seq/msg, an R2-sequence offset per flow) rather than a
// plain hash: a burst of only a handful of transfers still splits
// near-proportionally, which a hash cannot guarantee.
func (s *ScheduledRail) stripe(sn *railSnap, p *packet.Packet) int {
	if sn.total <= 0 {
		return s.lowLat
	}
	const (
		phi = 0.6180339887498949 // 1/φ
		r21 = 0.7548776662466927 // R2 sequence, first coordinate
		r22 = 0.5698402909980532 // R2 sequence, second coordinate
	)
	x := float64(uint32(p.Flow))*r21 + float64(uint64(p.Msg)%(1<<20))*r22 + float64(uint32(p.Seq))*phi
	x = (x - math.Floor(x)) * sn.total
	for i, ps := range sn.prefix {
		if x < ps {
			return i
		}
	}
	return len(sn.prefix) - 1
}

// RailWeightSetter is implemented by rail policies whose per-rail
// scheduling weights are runtime-tunable (the engine's SetRailWeights knob
// and the controller's rail retuning go through it).
type RailWeightSetter interface {
	SetWeights([]float64)
	Weights() []float64
}

// BulkPlacer is implemented by rail policies that place each bulk transfer
// on exactly one rail as a pure function of (transfer identity, weights).
// The engine uses it to compute a placement once per packet per weight
// generation instead of probing Eligible once per rail: WeightGen must be
// nonzero and change on every weight update, so a placement cached under
// one generation can be reused until the weights move.
type BulkPlacer interface {
	WeightGen() uint64
	BulkRail(p *packet.Packet, railCount int) int
}

// WeightAware is implemented by rail policies that can classify a refusal:
// weightBound reports whether an ineligibility verdict could be lifted by a
// weight update alone (meaningful only when ok is false). The engine uses
// it to decide which queues a weight delta must revisit; policies without
// it are treated conservatively (every refusal is assumed weight-bound).
type WeightAware interface {
	EligibleWeighted(p *packet.Packet, rail RailInfo) (ok, weightBound bool)
}

var _ RailPolicy = (*ScheduledRail)(nil)
var _ RailWeightSetter = (*ScheduledRail)(nil)
var _ BulkPlacer = (*ScheduledRail)(nil)
var _ WeightAware = (*ScheduledRail)(nil)
