package strategy

import (
	"math"
	"testing"

	"newmad/internal/caps"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// Property tests for ScheduledRail's low-discrepancy weighted walk.
//
// A note on the bound: exact ±1 balance for every prefix is the "balanced
// word" property, which for three or more letters with generic densities
// does not exist (Fraenkel's conjecture territory) — no stateless
// placement can achieve it. What the golden-ratio/R2 walk guarantees
// instead, and what these tests pin, is a *bounded* discrepancy envelope:
// per-rail stripe counts stay within a small constant of the ideal
// proportional share — empirically under ±3.5 for every tested
// (weights, length) combination — and, crucially, the deviation does NOT
// grow with sequence length. A plain hash gives O(√n) drift; a buggy
// stateful scheduler drifts linearly after SetWeights churn; the walk
// stays flat, which is what "low-discrepancy" buys.

// stripeCountsProp distributes n consecutive bulk transfers of one flow
// and returns per-rail counts.
func stripeCountsProp(s *ScheduledRail, rails, n int, flow packet.FlowID, msgBase uint64) []int {
	counts := make([]int, rails)
	for k := 0; k < n; k++ {
		p := &packet.Packet{Class: packet.ClassBulk, Flow: flow, Msg: packet.MsgID(msgBase), Seq: k}
		placed := -1
		for ri := 0; ri < rails; ri++ {
			if s.Eligible(p, RailInfo{Index: ri, Count: rails}) {
				if placed != -1 {
					// A bulk transfer must map to exactly one rail.
					return nil
				}
				placed = ri
			}
		}
		if placed == -1 {
			return nil
		}
		counts[placed]++
	}
	return counts
}

// homogeneousRails builds n rails with identical capability records:
// identical latency and bandwidth, so no rail is excluded from the stripe
// set as "the latency rail" and the default weights are even. Tests then
// set the weights under scrutiny through SetWeights — the same knob the
// controller churns at runtime.
func homogeneousRails(n int) []caps.Caps {
	rails := make([]caps.Caps, n)
	for i := range rails {
		c := caps.TCP
		c.Name = "r" + string(rune('a'+i))
		rails[i] = c
	}
	return rails
}

// TestScheduledRailStripeDiscrepancyEnvelope: over random weight vectors,
// rail counts 2..4, and sequence lengths up to 1024, every per-rail stripe
// count stays within the envelope of its ideal proportional share, and
// every transfer lands on exactly one rail.
func TestScheduledRailStripeDiscrepancyEnvelope(t *testing.T) {
	const envelope = 3.5
	rng := simnet.NewRNG(20260730)
	for trial := 0; trial < 300; trial++ {
		railN := rng.Range(2, 4)
		w := make([]float64, railN)
		total := 0.0
		for i := range w {
			w[i] = 0.05 + rng.Float64()
			total += w[i]
		}
		s := NewScheduledRail(homogeneousRails(railN))
		s.SetWeights(w)
		n := rng.Range(16, 1024)
		flow := packet.FlowID(rng.Uint64())
		msg := rng.Uint64() % (1 << 19)
		counts := stripeCountsProp(s, railN, n, flow, msg)
		if counts == nil {
			t.Fatalf("trial %d: a transfer mapped to zero or several rails", trial)
		}
		for i, c := range counts {
			ideal := float64(n) * w[i] / total
			if dev := math.Abs(float64(c) - ideal); dev > envelope {
				t.Fatalf("trial %d: rail %d got %d of %d stripes, ideal %.1f (deviation %.2f > %.1f)\nweights: %v",
					trial, i, c, n, ideal, dev, envelope, w)
			}
		}
	}
}

// TestScheduledRailStripeNoDrift: the walk's deviation must not grow with
// sequence length — the property that distinguishes a low-discrepancy
// sequence from a hash. Measured at n and 8n, the envelope holds at both
// scales for the same weights.
func TestScheduledRailStripeNoDrift(t *testing.T) {
	const envelope = 4.0
	rng := simnet.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		w := []float64{0.1 + rng.Float64(), 0.1 + rng.Float64(), 0.1 + rng.Float64()}
		total := w[0] + w[1] + w[2]
		s := NewScheduledRail(homogeneousRails(3))
		s.SetWeights(w)
		flow := packet.FlowID(rng.Uint64())
		for _, n := range []int{256, 2048} {
			counts := stripeCountsProp(s, 3, n, flow, 7)
			if counts == nil {
				t.Fatalf("trial %d: bad placement", trial)
			}
			for i, c := range counts {
				ideal := float64(n) * w[i] / total
				if dev := math.Abs(float64(c) - ideal); dev > envelope {
					t.Fatalf("trial %d n=%d: rail %d deviates %.2f > %.1f (drift)", trial, n, i, dev, envelope)
				}
			}
		}
	}
}

// TestScheduledRailStripeTracksSetWeights: after SetWeights churn the walk
// immediately stripes to the new proportions (no stale state to drain) —
// and a zero weight drains a rail entirely. This is the drift-after-churn
// case the issue calls out: a stateful scheduler that keeps deficit
// counters across SetWeights would misplace the early post-churn stripes.
func TestScheduledRailStripeTracksSetWeights(t *testing.T) {
	s := NewScheduledRail(homogeneousRails(3))
	const n = 600

	// Churn: drain rail 1, give rail 0 three shares.
	s.SetWeights([]float64{3, 0, 1})
	counts := stripeCountsProp(s, 3, n, 77, 1)
	if counts == nil {
		t.Fatal("bad placement after SetWeights")
	}
	if counts[1] != 0 {
		t.Fatalf("drained rail still got %d stripes", counts[1])
	}
	for i, share := range []float64{0.75, 0, 0.25} {
		ideal := share * n
		if dev := math.Abs(float64(counts[i]) - ideal); dev > 4 {
			t.Fatalf("post-churn rail %d: %d stripes, ideal %.0f (deviation %.1f)", i, counts[i], ideal, dev)
		}
	}

	// Restore defaults (identical rails: an even split again).
	s.SetWeights([]float64{-1, -1, -1})
	counts = stripeCountsProp(s, 3, n, 78, 1)
	if counts == nil {
		t.Fatal("bad placement after restore")
	}
	for i, share := range []float64{1. / 3, 1. / 3, 1. / 3} {
		ideal := share * n
		if dev := math.Abs(float64(counts[i]) - ideal); dev > 4 {
			t.Fatalf("post-restore rail %d: %d stripes, ideal %.0f (deviation %.1f)", i, counts[i], ideal, dev)
		}
	}
}

// TestScheduledRailEqualWeightsTightBound: for the common homogeneous case
// (equal rails), the walk is a pure golden-rotation Kronecker sequence and
// the counts stay within ±2 of the exact even split for every prefix up to
// 512 — tighter than the generic envelope, and checked at every prefix,
// not just the endpoint.
func TestScheduledRailEqualWeightsTightBound(t *testing.T) {
	for _, railN := range []int{2, 3, 4} {
		s := NewScheduledRail(homogeneousRails(railN))
		counts := make([]int, railN)
		for k := 0; k < 512; k++ {
			p := &packet.Packet{Class: packet.ClassBulk, Flow: 5, Msg: 3, Seq: k}
			for ri := 0; ri < railN; ri++ {
				if s.Eligible(p, RailInfo{Index: ri, Count: railN}) {
					counts[ri]++
				}
			}
			for i, c := range counts {
				ideal := float64(k+1) / float64(railN)
				if dev := math.Abs(float64(c) - ideal); dev > 2.0 {
					t.Fatalf("rails=%d prefix %d: rail %d at %d, ideal %.1f (deviation %.2f)",
						railN, k+1, i, c, ideal, dev)
				}
			}
		}
	}
}
