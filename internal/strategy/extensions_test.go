package strategy

import (
	"testing"

	"newmad/internal/packet"
	"newmad/internal/simnet"
)

func TestDensestPicksDensestDestination(t *testing.T) {
	// Head goes to dst 1 alone; dst 2 has 6 aggregatable packets.
	backlog := mkBacklog([3]int{1, 1, 64})
	for i := 0; i < 6; i++ {
		backlog = append(backlog, &packet.Packet{
			Flow: packet.FlowID(i + 2), Msg: 1, Seq: 0, Dst: 2,
			Class: packet.ClassSmall, Payload: make([]byte, 64),
			SubmitSeq: uint64(i + 2),
		})
	}
	ctx := ctxWith(backlog)
	plan := NewDensest().Build(ctx)
	if plan.Packets[0].Dst != 2 || len(plan.Packets) != 6 {
		t.Fatalf("densest chose dst=%d n=%d", plan.Packets[0].Dst, len(plan.Packets))
	}
	if !packet.OrderedSubset(plan.Packets) {
		t.Fatal("densest violated ordering")
	}
}

func TestDensestStarvationBound(t *testing.T) {
	backlog := mkBacklog([3]int{1, 1, 64})
	backlog[0].Enqueued = 0 // waiting since the epoch
	for i := 0; i < 6; i++ {
		backlog = append(backlog, &packet.Packet{
			Flow: packet.FlowID(i + 2), Msg: 1, Seq: 0, Dst: 2,
			Class: packet.ClassSmall, Payload: make([]byte, 64),
			SubmitSeq: uint64(i + 2), Enqueued: 90 * simnet.Time(simnet.Microsecond),
		})
	}
	ctx := ctxWith(backlog)
	ctx.Now = 100 * simnet.Time(simnet.Microsecond) // head is 100µs old > 50µs bound
	plan := NewDensest().Build(ctx)
	if plan.Packets[0].Dst != 1 {
		t.Fatalf("starving head not served: plan dst=%d", plan.Packets[0].Dst)
	}
}

func TestDensestEmptyAndDefaults(t *testing.T) {
	d := NewDensest()
	if d.Build(ctxWith(nil)) != nil {
		t.Fatal("plan from empty backlog")
	}
	if d.Name() != "densest" {
		t.Fatal("name")
	}
	// Zero MaxAge falls back to the default bound rather than always
	// starving-serving.
	z := &Densest{}
	backlog := mkBacklog([3]int{1, 1, 64}, [3]int{2, 2, 64}, [3]int{3, 2, 64})
	plan := z.Build(ctxWith(backlog))
	if plan == nil || len(plan.Packets) != 2 {
		t.Fatalf("zero-age densest plan: %+v", plan)
	}
}

func TestDensestRegisteredBundle(t *testing.T) {
	b, err := New("densest")
	if err != nil {
		t.Fatal(err)
	}
	if b.Builder.Name() != "densest" {
		t.Fatal("bundle builder wrong")
	}
}

func TestWeightedRailProportions(t *testing.T) {
	w := &WeightedRail{Bandwidths: []float64{250e6, 750e6}}
	count := [2]int{}
	for f := 1; f <= 1000; f++ {
		p := &packet.Packet{Flow: packet.FlowID(f)}
		for rail := 0; rail < 2; rail++ {
			if w.Eligible(p, RailInfo{Index: rail, Count: 2}) {
				count[rail]++
			}
		}
	}
	if count[0]+count[1] != 1000 {
		t.Fatalf("flows multiply assigned: %v", count)
	}
	// Expect roughly 25/75 split.
	if count[0] < 150 || count[0] > 350 {
		t.Fatalf("split = %v, want ~250/750", count)
	}
	if w.Name() != "rail-weighted" {
		t.Fatal("name")
	}
	// Single rail admits everything.
	if !w.Eligible(&packet.Packet{Flow: 9}, RailInfo{Index: 0, Count: 1}) {
		t.Fatal("single rail refused")
	}
}

func TestWeightedRailDeterministic(t *testing.T) {
	w := &WeightedRail{Bandwidths: []float64{1, 1, 1}}
	p := &packet.Packet{Flow: 42}
	var first int = -1
	for trial := 0; trial < 10; trial++ {
		for rail := 0; rail < 3; rail++ {
			if w.Eligible(p, RailInfo{Index: rail, Count: 3}) {
				if first == -1 {
					first = rail
				} else if rail != first {
					t.Fatalf("flow 42 moved from rail %d to %d", first, rail)
				}
			}
		}
	}
	// Zero/absent bandwidths default to 1 (no panic, full coverage).
	z := &WeightedRail{}
	hit := false
	for rail := 0; rail < 4; rail++ {
		if z.Eligible(p, RailInfo{Index: rail, Count: 4}) {
			hit = true
		}
	}
	if !hit {
		t.Fatal("flow lost with default bandwidths")
	}
}

// Ablation: on a multi-destination backlog, densest must produce an equal
// or better score than head-first aggregation; on single-destination
// backlogs they must agree.
func TestDensestVsAggregateAblation(t *testing.T) {
	multi := mkBacklog(
		[3]int{1, 1, 64},
		[3]int{2, 2, 64}, [3]int{3, 2, 64}, [3]int{4, 2, 64}, [3]int{5, 2, 64})
	dPlan := NewDensest().Build(ctxWith(multi))
	aPlan := NewAggregate().Build(ctxWith(multi))
	if dPlan.Score < aPlan.Score {
		t.Fatalf("densest score %v < aggregate score %v on multi-dest backlog", dPlan.Score, aPlan.Score)
	}
	single := mkBacklog([3]int{1, 1, 64}, [3]int{2, 1, 64}, [3]int{3, 1, 64})
	dS := NewDensest().Build(ctxWith(single))
	aS := NewAggregate().Build(ctxWith(single))
	if len(dS.Packets) != len(aS.Packets) {
		t.Fatalf("plans differ on single destination: %d vs %d", len(dS.Packets), len(aS.Packets))
	}
}
