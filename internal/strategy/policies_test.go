package strategy

import (
	"testing"

	"newmad/internal/caps"
	"newmad/internal/packet"
)

func TestPinnedRail(t *testing.T) {
	p := PinnedRail{}
	pkt := &packet.Packet{Flow: 3}
	if !p.Eligible(pkt, RailInfo{Index: 1, Count: 2}) {
		t.Fatal("flow 3 should pin to rail 1 of 2")
	}
	if p.Eligible(pkt, RailInfo{Index: 0, Count: 2}) {
		t.Fatal("flow 3 should not use rail 0 of 2")
	}
	if !p.Eligible(pkt, RailInfo{Index: 0, Count: 1}) {
		t.Fatal("single rail must accept everything")
	}
	if p.Name() != "rail-pinned" {
		t.Fatal("name")
	}
}

func TestSharedRail(t *testing.T) {
	s := SharedRail{}
	for rail := 0; rail < 3; rail++ {
		if !s.Eligible(&packet.Packet{Flow: packet.FlowID(rail)}, RailInfo{Index: rail, Count: 3}) {
			t.Fatal("shared rail refused a packet")
		}
	}
	if s.Name() != "rail-shared" {
		t.Fatal("name")
	}
}

func TestAffinityRail(t *testing.T) {
	// Rail 0 = MX (250MB/s, slower), rail 1 = Elan (900MB/s, lower
	// latency). Elan is both fastest and lowest-latency, so everything is
	// allowed everywhere except: bulk off the lowest-latency rail only if
	// distinct... here fastest == lowest, so no restriction applies.
	both := &AffinityRail{Rails: []caps.Caps{caps.MX, caps.Elan}}
	bulk := &packet.Packet{Class: packet.ClassBulk}
	ctrl := &packet.Packet{Class: packet.ClassControl}
	if !both.Eligible(bulk, RailInfo{Index: 1, Count: 2}) {
		t.Fatal("bulk should ride the fast rail when it is also lowest-latency")
	}

	// Synthetic pair where they differ: rail 0 low-latency/low-bandwidth,
	// rail 1 high-latency/high-bandwidth.
	lowLat := caps.Elan
	highBW := caps.IB // higher latency, higher bandwidth than Elan
	a := &AffinityRail{Rails: []caps.Caps{lowLat, highBW}}
	if a.Eligible(bulk, RailInfo{Index: 0, Count: 2}) {
		t.Fatal("bulk must stay off the low-latency rail")
	}
	if !a.Eligible(bulk, RailInfo{Index: 1, Count: 2}) {
		t.Fatal("bulk belongs on the high-bandwidth rail")
	}
	if a.Eligible(ctrl, RailInfo{Index: 1, Count: 2}) {
		t.Fatal("control must stay off the high-bandwidth rail")
	}
	if !a.Eligible(ctrl, RailInfo{Index: 0, Count: 2}) {
		t.Fatal("control belongs on the low-latency rail")
	}
	small := &packet.Packet{Class: packet.ClassSmall}
	if !a.Eligible(small, RailInfo{Index: 0, Count: 2}) || !a.Eligible(small, RailInfo{Index: 1, Count: 2}) {
		t.Fatal("small traffic should use any rail")
	}
	if a.Name() != "rail-affinity" {
		t.Fatal("name")
	}
	single := &AffinityRail{Rails: []caps.Caps{caps.MX}}
	if !single.Eligible(bulk, RailInfo{Index: 0, Count: 1}) {
		t.Fatal("single rail must accept everything")
	}
}

func TestSingleQueue(t *testing.T) {
	s := SingleQueue{}
	for c := packet.ClassID(0); c < packet.NumClasses; c++ {
		for ch := 0; ch < 4; ch++ {
			if !s.Allowed(c, ch, 4) {
				t.Fatal("single queue refused")
			}
		}
	}
	s.Observe(&packet.Packet{}) // no-op, must not panic
	if s.Name() != "classes-single" {
		t.Fatal("name")
	}
}

func TestReservedControl(t *testing.T) {
	r := ReservedControl{}
	if !r.Allowed(packet.ClassControl, 0, 4) {
		t.Fatal("control refused its lane")
	}
	if r.Allowed(packet.ClassControl, 1, 4) {
		t.Fatal("control strayed off its lane")
	}
	if r.Allowed(packet.ClassBulk, 0, 4) {
		t.Fatal("bulk on the control lane")
	}
	if !r.Allowed(packet.ClassBulk, 3, 4) {
		t.Fatal("bulk refused a data lane")
	}
	if !r.Allowed(packet.ClassSmall, 0, 4) || !r.Allowed(packet.ClassSmall, 2, 4) {
		t.Fatal("small should use any lane")
	}
	// Degenerate single-channel NIC: no segregation possible.
	if !r.Allowed(packet.ClassBulk, 0, 1) {
		t.Fatal("single channel must accept everything")
	}
	r.Observe(&packet.Packet{})
	if r.Name() != "classes-reserved" {
		t.Fatal("name")
	}
}

func TestAdaptiveClassesRepartitions(t *testing.T) {
	a := NewAdaptiveClasses(10)
	if a.BulkShare() != 0.5 {
		t.Fatalf("initial share = %v", a.BulkShare())
	}
	// A bulk-heavy phase: 9 bulk + 1 control per window.
	for i := 0; i < 10; i++ {
		cls := packet.ClassBulk
		if i == 0 {
			cls = packet.ClassControl
		}
		a.Observe(&packet.Packet{Class: cls})
	}
	if a.BulkShare() != 0.9 {
		t.Fatalf("share after bulk phase = %v, want 0.9", a.BulkShare())
	}
	// With 4 channels and 90% bulk, channels 1..3 are bulk's, 0 latency's.
	if !a.Allowed(packet.ClassBulk, 3, 4) || !a.Allowed(packet.ClassBulk, 1, 4) {
		t.Fatal("bulk denied its channels")
	}
	if a.Allowed(packet.ClassBulk, 0, 4) {
		t.Fatal("bulk took the last latency channel")
	}
	if !a.Allowed(packet.ClassControl, 0, 4) {
		t.Fatal("control denied its channel")
	}

	// A latency-heavy phase flips the split.
	for i := 0; i < 10; i++ {
		a.Observe(&packet.Packet{Class: packet.ClassControl})
	}
	if a.BulkShare() != 0 {
		t.Fatalf("share after control phase = %v", a.BulkShare())
	}
	if !a.Allowed(packet.ClassBulk, 3, 4) {
		t.Fatal("bulk must always keep at least one channel")
	}
	if a.Allowed(packet.ClassBulk, 2, 4) {
		t.Fatal("bulk kept channels it should have ceded")
	}
	if !a.Allowed(packet.ClassControl, 2, 4) {
		t.Fatal("control denied reclaimed channel")
	}
	if a.Name() != "classes-adaptive" {
		t.Fatal("name")
	}
	if !a.Allowed(packet.ClassBulk, 0, 1) {
		t.Fatal("single channel must accept everything")
	}
}

func TestThresholdProtocol(t *testing.T) {
	tp := ThresholdProtocol{}
	small := &packet.Packet{Payload: make([]byte, 100)}
	big := &packet.Packet{Payload: make([]byte, 64<<10)}
	if tp.UseRendezvous(small, caps.MX) {
		t.Fatal("small packet sent rendezvous")
	}
	if !tp.UseRendezvous(big, caps.MX) {
		t.Fatal("64KiB should exceed MX threshold")
	}
	express := &packet.Packet{Payload: make([]byte, 64<<10), Recv: packet.RecvExpress}
	if tp.UseRendezvous(express, caps.MX) {
		t.Fatal("express packet may never go rendezvous")
	}
	// Override shrinks the threshold.
	low := ThresholdProtocol{Override: 64}
	if !low.UseRendezvous(small, caps.MX) {
		t.Fatal("override threshold ignored")
	}
	if tp.Name() != "proto-threshold" {
		t.Fatal("name")
	}
}

func TestEagerAlways(t *testing.T) {
	e := EagerAlways{}
	big := &packet.Packet{Payload: make([]byte, 1<<20)}
	if e.UseRendezvous(big, caps.MX) {
		t.Fatal("eager-always used rendezvous")
	}
	if e.Name() != "proto-eager" {
		t.Fatal("name")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := map[string]bool{"fifo": true, "aggregate": true, "aggregate-intraflow": true, "search": true, "adaptive": true}
	found := 0
	for _, n := range names {
		if want[n] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("registry names = %v, missing predefined bundles", names)
	}
	b, err := New("aggregate")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "aggregate" || b.Builder.Name() != "aggregate" {
		t.Fatalf("bundle = %+v", b)
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown bundle accepted")
	}
	// Fresh instances each time (stateful policies must not be shared).
	a1, _ := New("adaptive")
	a2, _ := New("adaptive")
	if a1.Classes == a2.Classes {
		t.Fatal("adaptive bundles share state")
	}
}

func TestRegisterValidation(t *testing.T) {
	if err := Register("", func() Bundle { return Bundle{} }); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := Register("x", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := Register("x", func() Bundle { return Bundle{} }); err == nil {
		t.Fatal("bundle with nil components accepted")
	}
	// Extension path: a custom bundle registers and instantiates.
	err := Register("custom-test", func() Bundle {
		return Bundle{
			Builder:  NewAggregate(),
			Rail:     PinnedRail{},
			Classes:  SingleQueue{},
			Protocol: EagerAlways{},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("custom-test")
	if err != nil || b.Protocol.Name() != "proto-eager" {
		t.Fatalf("custom bundle broken: %v %+v", err, b)
	}
}
