package strategy

import (
	"math"
	"testing"

	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// Tests for the SetWeights input surface: sanitization of hostile vectors,
// edge-case shapes, the atomic-snapshot zero-alloc guarantee, and the
// placer/weight-generation contract the engine's frame cache builds on.

// TestScheduledRailNonFiniteWeightsSanitized pins the fix for the silent
// striping collapse: a +Inf weight used to be admitted verbatim, making the
// stripe total non-finite so the weighted walk fell through and every bulk
// transfer landed on the last rail. Non-finite entries now sanitize to the
// bandwidth default.
func TestScheduledRailNonFiniteWeightsSanitized(t *testing.T) {
	s := NewScheduledRail(homogeneousRails(3))
	def := s.Weights()
	s.SetWeights([]float64{math.Inf(1), math.NaN(), math.Inf(-1)})
	got := s.Weights()
	for i, v := range got {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("weight %d is non-finite after sanitization: %v", i, got)
		}
		if v != def[i] {
			t.Fatalf("weight %d = %v, want bandwidth default %v", i, v, def[i])
		}
	}
	// A single poisoned entry among honest ones must not starve the honest
	// rails either (the collapse sent everything to the last rail). The
	// honest entries match the bandwidth default the poisoned one sanitizes
	// to, so proportional placement means every rail carries traffic.
	s.SetWeights([]float64{math.Inf(1), def[1], def[2]})
	counts := stripeCountsProp(s, 3, 300, 7, 1)
	if counts == nil {
		t.Fatal("bulk transfer not placed on exactly one rail")
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("rail %d starved after non-finite entry: counts %v", i, counts)
		}
	}
}

// TestScheduledRailSetWeightsEdgeCases covers the input shapes the
// controller can produce under churn: vectors longer than the rail table,
// all-negative, all-zero, and zero-duration flap sequences where weights
// are rewritten many times with no placement read in between.
func TestScheduledRailSetWeightsEdgeCases(t *testing.T) {
	s := NewScheduledRail(homogeneousRails(2))
	def := s.Weights()

	s.SetWeights([]float64{1, 2, 3, 4, 5}) // longer than rails: extras dropped
	if w := s.Weights(); len(w) != 2 || w[0] != 1 || w[1] != 2 {
		t.Fatalf("overlong input: weights = %v, want [1 2]", w)
	}

	s.SetWeights([]float64{-1, -2}) // all-negative: every entry keeps its default
	if w := s.Weights(); w[0] != def[0] || w[1] != def[1] {
		t.Fatalf("all-negative input: weights = %v, want defaults %v", w, def)
	}

	s.SetWeights([]float64{0, 0}) // all-zero: defaults restored, never a dead scheduler
	if w := s.Weights(); w[0] != def[0] || w[1] != def[1] {
		t.Fatalf("all-zero input: weights = %v, want defaults %v", w, def)
	}

	// Zero-duration flap storm: the last write wins, wholesale.
	for i := 0; i < 100; i++ {
		s.SetWeights([]float64{1, 0})
		s.SetWeights([]float64{0, 1})
	}
	s.SetWeights([]float64{3, 4})
	if w := s.Weights(); w[0] != 3 || w[1] != 4 {
		t.Fatalf("after flap sequence: weights = %v, want [3 4]", w)
	}
	counts := stripeCountsProp(s, 2, 700, 3, 9)
	if counts == nil {
		t.Fatal("bulk transfer not placed on exactly one rail")
	}
	if ideal := 700.0 * 3 / 7; math.Abs(float64(counts[0])-ideal) > 4 {
		t.Fatalf("post-flap stripe split %v, want ~3:4 of 700", counts)
	}
}

// TestScheduledRailEnvelopeUnderWeightChurn is the ROADMAP-mandated
// property: across arbitrary SetWeights sequences — including pathological
// entries, wrong lengths, and zero-duration flaps — the weights in effect
// stay finite and the next placements stay within the documented stripe-
// discrepancy envelope of their proportional share.
func TestScheduledRailEnvelopeUnderWeightChurn(t *testing.T) {
	const envelope = 4.0
	rng := simnet.NewRNG(20260807)
	for trial := 0; trial < 150; trial++ {
		railN := rng.Range(2, 4)
		s := NewScheduledRail(homogeneousRails(railN))
		for step, steps := 0, rng.Range(1, 8); step < steps; step++ {
			w := make([]float64, rng.Range(0, railN+2))
			for i := range w {
				switch rng.Intn(6) {
				case 0:
					w[i] = 0
				case 1:
					w[i] = -rng.Float64()
				case 2:
					w[i] = math.Inf(1)
				case 3:
					w[i] = math.NaN()
				default:
					w[i] = 0.05 + rng.Float64()
				}
			}
			s.SetWeights(w)
		}
		eff := s.Weights()
		total := 0.0
		for i, v := range eff {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("trial %d: effective weight %d invalid: %v", trial, i, eff)
			}
			total += v
		}
		if total <= 0 {
			t.Fatalf("trial %d: no positive weight survived: %v", trial, eff)
		}
		n := rng.Range(32, 1024)
		counts := stripeCountsProp(s, railN, n, packet.FlowID(trial+1), uint64(trial))
		if counts == nil {
			t.Fatalf("trial %d: transfer not placed on exactly one rail", trial)
		}
		for i, c := range counts {
			ideal := float64(n) * eff[i] / total
			if d := math.Abs(float64(c) - ideal); d > envelope {
				t.Fatalf("trial %d: rail %d count %d vs ideal %.1f (n=%d, weights %v): discrepancy %.2f > %v",
					trial, i, c, ideal, n, eff, d, envelope)
			}
		}
	}
}

// TestScheduledRailWeightGenAndPlacer pins the BulkPlacer contract the
// engine's per-frame placement cache depends on: generations are nonzero,
// move on every SetWeights, never collide across instances, and BulkRail
// agrees with the per-rail Eligible verdicts it replaces.
func TestScheduledRailWeightGenAndPlacer(t *testing.T) {
	s := NewScheduledRail(homogeneousRails(3))
	g0 := s.WeightGen()
	if g0 == 0 {
		t.Fatal("weight generation must be nonzero (0 is the cache sentinel)")
	}
	s.SetWeights([]float64{1, 2, 3})
	g1 := s.WeightGen()
	if g1 == g0 {
		t.Fatal("SetWeights did not move the weight generation")
	}
	if other := NewScheduledRail(homogeneousRails(3)); other.WeightGen() == g0 || other.WeightGen() == g1 {
		t.Fatal("weight generations collide across instances")
	}
	for seq := 0; seq < 64; seq++ {
		p := &packet.Packet{Class: packet.ClassBulk, Flow: 5, Msg: 11, Seq: seq}
		target := s.BulkRail(p, 3)
		if target < 0 || target > 2 {
			t.Fatalf("BulkRail out of range: %d", target)
		}
		for ri := 0; ri < 3; ri++ {
			if got := s.Eligible(p, RailInfo{Index: ri, Count: 3}); got != (ri == target) {
				t.Fatalf("seq %d: Eligible(rail %d) = %v, BulkRail = %d", seq, ri, got, target)
			}
		}
	}
	p := &packet.Packet{Class: packet.ClassBulk, Flow: 5, Msg: 11, Seq: 0}
	if got := s.BulkRail(p, 4); got != -1 {
		t.Fatalf("mismatched rail table: BulkRail = %d, want -1", got)
	}
	if got := s.BulkRail(p, 1); got != -1 {
		t.Fatalf("single rail: BulkRail = %d, want -1", got)
	}
}

// TestScheduledRailRefusalClassification pins EligibleWeighted's verdicts:
// only refusals a SetWeights call could lift are weight-bound.
func TestScheduledRailRefusalClassification(t *testing.T) {
	rails := schedRails() // hetero: rail 0 low-latency, rails 1,2 fat (16K eager cap)
	s := NewScheduledRail(rails)
	info := func(ri int) RailInfo { return RailInfo{Index: ri, Count: 3, Caps: rails[ri]} }

	ctrl := &packet.Packet{Class: packet.ClassControl}
	if ok, wb := s.EligibleWeighted(ctrl, info(1)); ok || wb {
		t.Fatalf("control off the latency rail: (ok=%v, weightBound=%v), want structural refusal", ok, wb)
	}

	over := &packet.Packet{Class: packet.ClassSmall, Payload: make([]byte, 20*1024)}
	if ok, wb := s.EligibleWeighted(over, info(1)); ok || wb {
		t.Fatalf("aggregate over the eager cap: (ok=%v, weightBound=%v), want structural refusal", ok, wb)
	}

	s.SetWeights([]float64{1, 0, 1}) // drain rail 1
	fits := &packet.Packet{Class: packet.ClassSmall, Payload: make([]byte, 1024)}
	if ok, wb := s.EligibleWeighted(fits, info(1)); ok || !wb {
		t.Fatalf("drained rail: (ok=%v, weightBound=%v), want weight-bound refusal", ok, wb)
	}

	bulk := &packet.Packet{Class: packet.ClassBulk, Flow: 1, Msg: 1, Seq: 1}
	target := s.BulkRail(bulk, 3)
	for ri := 1; ri <= 2; ri++ {
		if ri == target {
			continue
		}
		if ok, wb := s.EligibleWeighted(bulk, info(ri)); ok || !wb {
			t.Fatalf("bulk striped elsewhere: (ok=%v, weightBound=%v), want weight-bound refusal", ok, wb)
		}
	}
}

// TestScheduledRailZeroAllocs pins the snapshot swap's whole point: the
// hot-path placement reads — Eligible for every class, the stripe walk,
// BulkRail — allocate nothing and take no locks. (The engine-side gate in
// internal/perf covers the same path through the pump; this one isolates
// the policy.)
func TestScheduledRailZeroAllocs(t *testing.T) {
	rails := schedRails()
	s := NewScheduledRail(rails)
	s.SetWeights([]float64{1, 2, 3})
	bulk := &packet.Packet{Class: packet.ClassBulk, Flow: 3, Msg: 5, Seq: 9}
	small := &packet.Packet{Class: packet.ClassSmall, Payload: make([]byte, 1024)}
	ctrl := &packet.Packet{Class: packet.ClassControl}
	sink := false
	allocs := testing.AllocsPerRun(1000, func() {
		for ri := 0; ri < 3; ri++ {
			ri := RailInfo{Index: ri, Count: 3, Caps: rails[ri]}
			sink = s.Eligible(bulk, ri) || sink
			sink = s.Eligible(small, ri) || sink
			sink = s.Eligible(ctrl, ri) || sink
		}
		sink = s.BulkRail(bulk, 3) >= 0 || sink
		bulk.Seq++
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("rail scheduling hot path allocates: %.1f allocs/op, want 0", allocs)
	}
}

// FuzzSetWeights feeds raw float bit patterns (every NaN payload, both
// infinities, subnormals, negative zero) through SetWeights and checks the
// scheduler's invariants hold for whatever survives sanitization.
func FuzzSetWeights(f *testing.F) {
	f.Add(uint64(0x7FF0000000000000), uint64(0xFFF8000000000000), uint64(0x3FE0000000000000), uint8(3))
	f.Add(uint64(0x8000000000000000), uint64(0x0000000000000001), uint64(0x7FF0000000000001), uint8(2))
	f.Add(uint64(0), uint64(0), uint64(0), uint8(4))
	f.Fuzz(func(t *testing.T, a, b, c uint64, nRaw uint8) {
		railN := 2 + int(nRaw%3)
		s := NewScheduledRail(homogeneousRails(railN))
		s.SetWeights([]float64{math.Float64frombits(a), math.Float64frombits(b), math.Float64frombits(c)})
		eff := s.Weights()
		if len(eff) != railN {
			t.Fatalf("weights length %d, want %d", len(eff), railN)
		}
		anyPositive := false
		for i, v := range eff {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("weight %d invalid after sanitization: %v", i, eff)
			}
			anyPositive = anyPositive || v > 0
		}
		if !anyPositive {
			t.Fatalf("sanitization produced a dead scheduler: %v", eff)
		}
		for seq := 0; seq < 32; seq++ {
			p := &packet.Packet{Class: packet.ClassBulk, Flow: 9, Msg: packet.MsgID(a % 1000), Seq: seq}
			placed := -1
			for ri := 0; ri < railN; ri++ {
				if s.Eligible(p, RailInfo{Index: ri, Count: railN}) {
					if placed != -1 {
						t.Fatalf("seq %d eligible on rails %d and %d", seq, placed, ri)
					}
					placed = ri
				}
			}
			if placed == -1 {
				t.Fatalf("seq %d eligible nowhere", seq)
			}
		}
	})
}
