package strategy

import (
	"testing"

	"newmad/internal/caps"
	"newmad/internal/packet"
)

func schedRails() []caps.Caps {
	// rail 0: low-latency, low-bandwidth; rails 1,2: fat, slower-to-launch
	// pipes with a tighter eager limit (a heterogeneous technology mix).
	lo := caps.MX
	lo.Name = "lo"
	lo.WireLatency = 500 // lowest PostOverhead+WireLatency of the three
	lo.Bandwidth = 100e6
	lo.MaxAggregate = 32 * 1024
	b1 := caps.Elan
	b1.Name = "big1"
	b1.WireLatency = 4000
	b1.Bandwidth = 900e6
	b1.MaxAggregate = 16 * 1024
	b2 := b1
	b2.Name = "big2"
	return []caps.Caps{lo, b1, b2}
}

func TestScheduledRailControlPinsToLowLatency(t *testing.T) {
	rails := schedRails()
	s := NewScheduledRail(rails)
	ctrl := &packet.Packet{Class: packet.ClassControl}
	for i := range rails {
		got := s.Eligible(ctrl, RailInfo{Index: i, Count: len(rails), Caps: rails[i]})
		if got != (i == 0) {
			t.Fatalf("control on rail %d: eligible=%v", i, got)
		}
	}
}

func TestScheduledRailBulkStripesAcrossFatRails(t *testing.T) {
	rails := schedRails()
	s := NewScheduledRail(rails)
	hits := make([]int, len(rails))
	for msg := 0; msg < 200; msg++ {
		p := &packet.Packet{Class: packet.ClassBulk, Flow: 7, Msg: packet.MsgID(msg)}
		chosen := -1
		for i := range rails {
			if s.Eligible(p, RailInfo{Index: i, Count: len(rails), Caps: rails[i]}) {
				if chosen != -1 {
					t.Fatalf("bulk transfer msg=%d eligible on rails %d and %d (striping must pick one)", msg, chosen, i)
				}
				chosen = i
			}
		}
		if chosen == -1 {
			t.Fatalf("bulk transfer msg=%d eligible nowhere", msg)
		}
		hits[chosen]++
	}
	if hits[0] != 0 {
		t.Fatalf("heterogeneous node striped %d bulk transfers onto the latency rail", hits[0])
	}
	if hits[1] == 0 || hits[2] == 0 {
		t.Fatalf("bulk not striped: distribution %v", hits)
	}
}

func TestScheduledRailHomogeneousBulkUsesEveryRail(t *testing.T) {
	rails := caps.RailProfiles(caps.TCP, 2)
	s := NewScheduledRail(rails)
	hits := make([]int, len(rails))
	for msg := 0; msg < 200; msg++ {
		p := &packet.Packet{Class: packet.ClassBulk, Flow: 3, Msg: packet.MsgID(msg)}
		for i := range rails {
			if s.Eligible(p, RailInfo{Index: i, Count: len(rails), Caps: rails[i]}) {
				hits[i]++
			}
		}
	}
	if hits[0] == 0 || hits[1] == 0 {
		t.Fatalf("homogeneous rails must both carry bulk: distribution %v", hits)
	}
}

func TestScheduledRailSmallRespectsPerRailCaps(t *testing.T) {
	rails := schedRails()
	s := NewScheduledRail(rails)
	// Elan's MaxAggregate is 16 KiB: a 20 KiB eager packet may not overflow
	// onto the fat rails, but the low-latency rail (MX, 32 KiB) admits it.
	big := &packet.Packet{Class: packet.ClassSmall, Flow: 1, Payload: make([]byte, 20*1024)}
	if !s.Eligible(big, RailInfo{Index: 0, Count: 3, Caps: rails[0]}) {
		t.Fatal("low-latency rail must always admit small eager traffic")
	}
	for i := 1; i < 3; i++ {
		if s.Eligible(big, RailInfo{Index: i, Count: 3, Caps: rails[i]}) {
			t.Fatalf("rail %d admitted a packet beyond its MaxAggregate", i)
		}
	}
	small := &packet.Packet{Class: packet.ClassSmall, Flow: 1, Payload: make([]byte, 512)}
	for i := 0; i < 3; i++ {
		if !s.Eligible(small, RailInfo{Index: i, Count: 3, Caps: rails[i]}) {
			t.Fatalf("rail %d rejected an in-cap small packet", i)
		}
	}
}

func TestScheduledRailWeights(t *testing.T) {
	rails := caps.RailProfiles(caps.TCP, 2)
	s := NewScheduledRail(rails)

	// Draining rail 1: all bulk lands on rail 0, small overflow stops.
	s.SetWeights([]float64{1, 0})
	small := &packet.Packet{Class: packet.ClassSmall, Flow: 2, Payload: make([]byte, 256)}
	if s.Eligible(small, RailInfo{Index: 1, Count: 2, Caps: rails[1]}) {
		t.Fatal("zero-weight rail still admits small overflow")
	}
	for msg := 0; msg < 50; msg++ {
		p := &packet.Packet{Class: packet.ClassBulk, Flow: 2, Msg: packet.MsgID(msg)}
		if s.Eligible(p, RailInfo{Index: 1, Count: 2, Caps: rails[1]}) {
			t.Fatal("zero-weight rail still receives bulk stripes")
		}
		if !s.Eligible(p, RailInfo{Index: 0, Count: 2, Caps: rails[0]}) {
			t.Fatal("remaining rail must absorb the stripe")
		}
	}

	// All-zero weights are rejected: defaults restored.
	s.SetWeights([]float64{0, 0})
	w := s.Weights()
	if w[0] <= 0 || w[1] <= 0 {
		t.Fatalf("all-zero weights not restored to defaults: %v", w)
	}

	// Short weight vectors keep defaults for the missing entries.
	s.SetWeights([]float64{5})
	w = s.Weights()
	if w[0] != 5 || w[1] != caps.TCP.Bandwidth {
		t.Fatalf("partial SetWeights = %v", w)
	}
}

func TestScheduledRailSingleRailAdmitsEverything(t *testing.T) {
	rails := caps.RailProfiles(caps.TCP, 1)
	s := NewScheduledRail(rails)
	for _, class := range []packet.ClassID{packet.ClassControl, packet.ClassSmall, packet.ClassBulk, packet.ClassRMA} {
		p := &packet.Packet{Class: class, Flow: 1, Payload: make([]byte, 1<<20)}
		if !s.Eligible(p, RailInfo{Index: 0, Count: 1, Caps: rails[0]}) {
			t.Fatalf("single rail rejected class %v", class)
		}
	}
}
