package strategy

import (
	"sync"

	"newmad/internal/caps"
	"newmad/internal/packet"
)

// --- Rail policies ---------------------------------------------------------

// PinnedRail is the one-to-one mapping the paper demotes to "one mere
// scheduling policy": each flow is statically assigned to one rail by flow
// id. With a single rail it degenerates to "everything eligible".
type PinnedRail struct{}

// Name returns "rail-pinned".
func (PinnedRail) Name() string { return "rail-pinned" }

// Eligible pins flow f to rail f mod Count.
func (PinnedRail) Eligible(p *packet.Packet, rail RailInfo) bool {
	if rail.Count <= 1 {
		return true
	}
	return int(p.Flow)%rail.Count == rail.Index
}

// SharedRail pools every rail: any packet may travel on any NIC, so an
// idle NIC always finds work — the paper's dynamic load balancing across
// multiple resources, including NICs of different technologies.
type SharedRail struct{}

// Name returns "rail-shared".
func (SharedRail) Name() string { return "rail-shared" }

// Eligible admits everything.
func (SharedRail) Eligible(*packet.Packet, RailInfo) bool { return true }

// AffinityRail sends latency-sensitive classes on the lowest-latency rail
// and bulk on the highest-bandwidth rail, while letting either overflow to
// the other when classes are quiet — a heterogeneous-technology policy for
// MX+Elan style nodes.
type AffinityRail struct {
	// Rails must describe every rail of the node, indexed like RailInfo.
	Rails []caps.Caps
}

// Name returns "rail-affinity".
func (a *AffinityRail) Name() string { return "rail-affinity" }

// Eligible prefers strict placement but only forbids the clearly wrong
// rail: bulk may not occupy the lowest-latency rail when a higher-bandwidth
// rail exists; control may not occupy the highest-bandwidth rail unless it
// is also the lowest-latency one.
func (a *AffinityRail) Eligible(p *packet.Packet, rail RailInfo) bool {
	if len(a.Rails) <= 1 {
		return true
	}
	fastest, lowest := a.extremes()
	switch p.Class {
	case packet.ClassBulk, packet.ClassRMA:
		return rail.Index != lowest || lowest == fastest
	case packet.ClassControl:
		return rail.Index != fastest || lowest == fastest
	default:
		return true
	}
}

func (a *AffinityRail) extremes() (fastestBW, lowestLat int) {
	for i, c := range a.Rails {
		if c.Bandwidth > a.Rails[fastestBW].Bandwidth {
			fastestBW = i
		}
		if c.PostOverhead+c.WireLatency < a.Rails[lowestLat].PostOverhead+a.Rails[lowestLat].WireLatency {
			lowestLat = i
		}
	}
	return
}

// --- Class policies --------------------------------------------------------

// SingleQueue lets every class use every channel — no traffic segregation
// (the baseline for E5).
type SingleQueue struct{}

// Name returns "classes-single".
func (SingleQueue) Name() string { return "classes-single" }

// Allowed admits every class on every channel.
func (SingleQueue) Allowed(packet.ClassID, int, int) bool { return true }

// Observe ignores traffic.
func (SingleQueue) Observe(*packet.Packet) {}

// ReservedControl dedicates channel 0 to control/signalling traffic and
// keeps bulk off it, so a stream of large sends can never queue ahead of a
// latency-critical token — the paper's class-to-channel assignment.
type ReservedControl struct{}

// Name returns "classes-reserved".
func (ReservedControl) Name() string { return "classes-reserved" }

// Allowed reserves channel 0: control stays on its dedicated lane (which
// is what preserves the latency guarantee), small traffic may go anywhere,
// and bulk/RMA are confined to the remaining channels.
func (ReservedControl) Allowed(class packet.ClassID, ch, numCh int) bool {
	if numCh <= 1 {
		return true
	}
	switch class {
	case packet.ClassControl:
		return ch == 0
	case packet.ClassSmall:
		return true
	default: // bulk, rma
		return ch != 0
	}
}

// Observe ignores traffic.
func (ReservedControl) Observe(*packet.Packet) {}

// AdaptiveClasses re-partitions channels between the latency classes
// (control+small) and the throughput classes (bulk+rma) in proportion to
// recently observed traffic, re-assigning resources as the application's
// phases change (E10). It is safe for concurrent Observe/Allowed.
type AdaptiveClasses struct {
	// Window is how many packets form one observation period.
	Window int

	mu        sync.Mutex
	seen      int
	latCount  int
	bulkCount int
	// bulkShare is the fraction of channels currently granted to
	// throughput classes, updated each window.
	bulkShare float64
}

// NewAdaptiveClasses returns an adaptive policy with the given window
// (packets per adaptation period; <=0 means 256).
func NewAdaptiveClasses(window int) *AdaptiveClasses {
	if window <= 0 {
		window = 256
	}
	return &AdaptiveClasses{Window: window, bulkShare: 0.5}
}

// Name returns "classes-adaptive".
func (a *AdaptiveClasses) Name() string { return "classes-adaptive" }

// Observe counts traffic and re-partitions at window boundaries.
func (a *AdaptiveClasses) Observe(p *packet.Packet) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seen++
	switch p.Class {
	case packet.ClassBulk, packet.ClassRMA:
		a.bulkCount++
	default:
		a.latCount++
	}
	if a.seen >= a.Window {
		total := a.bulkCount + a.latCount
		if total > 0 {
			a.bulkShare = float64(a.bulkCount) / float64(total)
		}
		a.seen, a.bulkCount, a.latCount = 0, 0, 0
	}
}

// BulkShare returns the current fraction of channels granted to bulk.
func (a *AdaptiveClasses) BulkShare() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bulkShare
}

// Allowed splits channels [0, split) for latency classes and [split,
// numCh) for throughput classes, where split tracks the observed mix; each
// side always keeps at least one channel.
func (a *AdaptiveClasses) Allowed(class packet.ClassID, ch, numCh int) bool {
	if numCh <= 1 {
		return true
	}
	a.mu.Lock()
	share := a.bulkShare
	a.mu.Unlock()
	bulkChans := int(share*float64(numCh) + 0.5)
	if bulkChans < 1 {
		bulkChans = 1
	}
	if bulkChans > numCh-1 {
		bulkChans = numCh - 1
	}
	split := numCh - bulkChans // channels [split, numCh) are bulk's
	switch class {
	case packet.ClassBulk, packet.ClassRMA:
		return ch >= split
	default:
		return ch < split
	}
}

// --- Protocol policies -----------------------------------------------------

// ThresholdProtocol switches to rendezvous above a size threshold: the
// driver profile's RndvThreshold by default, or Override when positive.
// Express packets are never eligible regardless (also enforced upstream).
type ThresholdProtocol struct {
	// Override replaces the capability record's threshold when > 0.
	Override int
}

// Name returns "proto-threshold".
func (ThresholdProtocol) Name() string { return "proto-threshold" }

// UseRendezvous applies the effective threshold.
func (t ThresholdProtocol) UseRendezvous(p *packet.Packet, c caps.Caps) bool {
	if packet.EagerOnly(p) {
		return false
	}
	thr := c.RndvThreshold
	if t.Override > 0 {
		thr = t.Override
	}
	return p.Size() > thr
}

// EagerAlways never uses rendezvous — the ablation baseline for E8.
type EagerAlways struct{}

// Name returns "proto-eager".
func (EagerAlways) Name() string { return "proto-eager" }

// UseRendezvous always declines.
func (EagerAlways) UseRendezvous(*packet.Packet, caps.Caps) bool { return false }
