package strategy

import (
	"reflect"
	"strings"
	"testing"

	"newmad/internal/simnet"
)

func TestBuiltinTuningsRegistered(t *testing.T) {
	names := TuningNames()
	for _, want := range []string{"latency", "throughput", "balanced"} {
		tn, err := TuningByName(want)
		if err != nil {
			t.Fatalf("builtin tuning %q missing: %v (have %v)", want, err, names)
		}
		if _, err := New(tn.Bundle); err != nil {
			t.Fatalf("tuning %q names uninstantiable bundle: %v", want, err)
		}
	}
	// The latency point must be delay-free and the throughput point must
	// not: the controller's whole premise is that these differ.
	lat, _ := TuningByName("latency")
	thr, _ := TuningByName("throughput")
	if lat.NagleDelay != 0 {
		t.Fatalf("latency tuning has artificial delay %v", lat.NagleDelay)
	}
	if thr.NagleDelay == 0 {
		t.Fatal("throughput tuning has no artificial delay")
	}
	if thr.Lookahead != 0 {
		t.Fatalf("throughput tuning bounds lookahead to %d", thr.Lookahead)
	}
}

func TestRegisterTuningValidation(t *testing.T) {
	cases := []struct {
		name string
		tune Tuning
		want string
	}{
		{"empty name", Tuning{Bundle: "aggregate"}, "empty name"},
		{"no bundle", Tuning{Name: "x"}, "names no bundle"},
		{"unknown bundle", Tuning{Name: "x", Bundle: "nope"}, "unregistered bundle"},
		{"negative knob", Tuning{Name: "x", Bundle: "aggregate", Lookahead: -1}, "negative knob"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := RegisterTuning(tc.tune)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("RegisterTuning = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestRegisterTuningRoundTrip(t *testing.T) {
	in := Tuning{
		Name: "test-custom", Bundle: "fifo",
		Lookahead: 4, NagleDelay: 2 * simnet.Microsecond,
		NagleFlushCount: 6, SearchBudget: 8, RdvThreshold: 1024,
		RailWeights: []float64{2, 1},
	}
	if err := RegisterTuning(in); err != nil {
		t.Fatal(err)
	}
	out, err := TuningByName("test-custom")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	found := false
	for _, n := range TuningNames() {
		if n == "test-custom" {
			found = true
		}
	}
	if !found {
		t.Fatal("test-custom not listed in TuningNames")
	}
}
