package strategy

import (
	"fmt"
	"sort"
	"sync"

	"newmad/internal/simnet"
)

// The tuning registry extends the strategy database from policy *structure*
// (which builder, which rail/class/protocol policies) to policy *operating
// points*: one Tuning is a complete runtime configuration of an engine —
// bundle plus every runtime-tunable scalar. The adaptive controller
// (internal/control) selects among registered tunings as the observed
// traffic regime shifts, the same way engines select bundles by name; the
// registry keeps that selectable set easily extendable, mirroring the
// paper's "database of predefined strategies".

// Tuning is one named, complete operating point for an engine.
type Tuning struct {
	// Name identifies the tuning in the registry and in experiment rows.
	Name string
	// Bundle names the strategy bundle (must be registered).
	Bundle string
	// Lookahead bounds the backlog view per plan (0 = unbounded).
	Lookahead int
	// NagleDelay/NagleFlushCount configure the artificial delay (0 = send
	// immediately / core.DefaultNagleFlushCount).
	NagleDelay      simnet.Duration
	NagleFlushCount int
	// SearchBudget bounds rearrangement evaluations (0 = builder default).
	SearchBudget int
	// RdvThreshold overrides the eager/rendezvous switchover (0 = bundle
	// policy / driver default).
	RdvThreshold int
	// RailWeights, when non-empty, sets the per-rail scheduling weights on
	// bundles whose rail policy is weight-tunable (RailWeightSetter);
	// engines with a weight-free rail policy ignore it. Entries must be
	// non-negative; a 0 drains traffic off that rail.
	RailWeights []float64
}

// Validate reports the first inconsistency in the tuning.
func (t Tuning) Validate() error {
	switch {
	case t.Name == "":
		return fmt.Errorf("strategy: tuning with empty name")
	case t.Bundle == "":
		return fmt.Errorf("strategy: tuning %q names no bundle", t.Name)
	case t.Lookahead < 0 || t.NagleDelay < 0 || t.NagleFlushCount < 0 ||
		t.SearchBudget < 0 || t.RdvThreshold < 0:
		return fmt.Errorf("strategy: tuning %q has a negative knob", t.Name)
	}
	for _, w := range t.RailWeights {
		if w < 0 {
			return fmt.Errorf("strategy: tuning %q has a negative rail weight", t.Name)
		}
	}
	regMu.Lock()
	_, ok := registry[t.Bundle]
	regMu.Unlock()
	if !ok {
		return fmt.Errorf("strategy: tuning %q names unregistered bundle %q", t.Name, t.Bundle)
	}
	return nil
}

var (
	tuneMu  sync.Mutex
	tunings = map[string]Tuning{}
)

// RegisterTuning adds (or replaces) a tuning in the registry.
func RegisterTuning(t Tuning) error {
	if err := t.Validate(); err != nil {
		return err
	}
	tuneMu.Lock()
	defer tuneMu.Unlock()
	tunings[t.Name] = t
	return nil
}

// MustRegisterTuning panics on RegisterTuning error, for init-time tunings.
func MustRegisterTuning(t Tuning) {
	if err := RegisterTuning(t); err != nil {
		panic(err)
	}
}

// TuningByName returns the named tuning.
func TuningByName(name string) (Tuning, error) {
	tuneMu.Lock()
	t, ok := tunings[name]
	tuneMu.Unlock()
	if !ok {
		return Tuning{}, fmt.Errorf("strategy: unknown tuning %q (have %v)", name, TuningNames())
	}
	return t, nil
}

// TuningNames returns the registered tuning names, sorted.
func TuningNames() []string {
	tuneMu.Lock()
	defer tuneMu.Unlock()
	names := make([]string, 0, len(tunings))
	for n := range tunings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	// latency: react immediately and keep frames small — the operating
	// point for request-response traffic, where any artificial delay lands
	// on the critical path twice per round trip and deep aggregation only
	// postpones the head packet's delivery.
	MustRegisterTuning(Tuning{
		Name:       "latency",
		Bundle:     "aggregate",
		Lookahead:  2,
		NagleDelay: 0,
	})
	// throughput: maximize aggregation — unbounded lookahead, an artificial
	// delay with a high flush count so sparse stretches still coalesce, and
	// the adaptive class partitioning for multi-channel NICs.
	MustRegisterTuning(Tuning{
		Name:            "throughput",
		Bundle:          "adaptive",
		Lookahead:       0,
		NagleDelay:      16 * simnet.Microsecond,
		NagleFlushCount: 32,
		SearchBudget:    32,
	})
	// balanced: the compromise default — moderate delay and window; decent
	// everywhere, optimal nowhere (which is exactly what E11 measures).
	MustRegisterTuning(Tuning{
		Name:            "balanced",
		Bundle:          "aggregate",
		Lookahead:       16,
		NagleDelay:      4 * simnet.Microsecond,
		NagleFlushCount: 8,
	})
}
