package strategy

import (
	"fmt"
	"sort"
	"sync"
)

// The strategy database. The paper: "The database of predefined strategies
// can be easily extended." Registering a bundle is all an extension needs;
// engines and the bench harness look strategies up by name.

var (
	regMu    sync.Mutex
	registry = map[string]func() Bundle{}
)

// Register adds a bundle factory under its name. Factories (rather than
// instances) are stored because some policies are stateful (AdaptiveClasses)
// and each engine needs its own. Re-registering a name replaces it.
func Register(name string, factory func() Bundle) error {
	if name == "" {
		return fmt.Errorf("strategy: empty bundle name")
	}
	if factory == nil {
		return fmt.Errorf("strategy: nil factory for %q", name)
	}
	b := factory()
	if b.Builder == nil || b.Rail == nil || b.Classes == nil || b.Protocol == nil {
		return fmt.Errorf("strategy: bundle %q has nil components", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = factory
	return nil
}

// MustRegister panics on Register error, for init-time bundles.
func MustRegister(name string, factory func() Bundle) {
	if err := Register(name, factory); err != nil {
		panic(err)
	}
}

// New instantiates a fresh copy of the named bundle.
func New(name string) (Bundle, error) {
	regMu.Lock()
	f, ok := registry[name]
	regMu.Unlock()
	if !ok {
		return Bundle{}, fmt.Errorf("strategy: unknown bundle %q (have %v)", name, Names())
	}
	b := f()
	b.Name = name
	return b, nil
}

// Names returns the registered bundle names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	// fifo: the previous-Madeleine baseline — deterministic per-flow
	// handling, flows pinned one-to-one onto rails, one shared queue, the
	// driver's native rendezvous threshold.
	MustRegister("fifo", func() Bundle {
		return Bundle{
			Builder:  FIFO{},
			Rail:     PinnedRail{},
			Classes:  SingleQueue{},
			Protocol: ThresholdProtocol{},
		}
	})
	// aggregate: the paper's engine — cross-flow aggregation, pooled
	// rails, reserved control lane.
	MustRegister("aggregate", func() Bundle {
		return Bundle{
			Builder:  NewAggregate(),
			Rail:     SharedRail{},
			Classes:  ReservedControl{},
			Protocol: ThresholdProtocol{},
		}
	})
	// aggregate-intraflow: ablation — aggregation without flow mixing.
	MustRegister("aggregate-intraflow", func() Bundle {
		return Bundle{
			Builder:  &Aggregate{CrossFlow: false},
			Rail:     SharedRail{},
			Classes:  ReservedControl{},
			Protocol: ThresholdProtocol{},
		}
	})
	// search: bounded-rearrangement search (E6).
	MustRegister("search", func() Bundle {
		return Bundle{
			Builder:  NewBoundedSearch(16),
			Rail:     SharedRail{},
			Classes:  ReservedControl{},
			Protocol: ThresholdProtocol{},
		}
	})
	// adaptive: aggregation with adaptive class re-partitioning (E10).
	MustRegister("adaptive", func() Bundle {
		return Bundle{
			Builder:  NewAggregate(),
			Rail:     SharedRail{},
			Classes:  NewAdaptiveClasses(0),
			Protocol: ThresholdProtocol{},
		}
	})
}
