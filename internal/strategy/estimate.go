package strategy

import (
	"newmad/internal/caps"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// Cost estimation.
//
// Builders score candidate plans with the very formula the NIC model
// charges (see nicsim.NIC.Post), so a plan's predicted benefit and its
// simulated outcome agree by construction. What strategies trade off:
//
//   - each frame pays α (PostOverhead + injection setup) once, however
//     many sub-packets it carries — the win of aggregation;
//   - each sub-packet pays SubHeaderSize bytes of framing — a small,
//     growing tax;
//   - aggregation on gather hardware costs descriptor writes; without
//     gather it costs a staging memcpy of the whole payload — the
//     capability-parameterization axis (E7).

// StageCost returns the host-side preparation cost of sending pkts as one
// frame: zero for a single packet, gather descriptors or a staging copy
// for an aggregate, per the capability record.
func StageCost(c caps.Caps, m memsim.Model, pkts []*packet.Packet) simnet.Duration {
	if len(pkts) <= 1 {
		return 0
	}
	if c.Gather() {
		return m.GatherCost(len(pkts))
	}
	total := 0
	for _, p := range pkts {
		total += p.Size()
	}
	return m.CopyCost(total)
}

// FrameOccupancy returns the time the send channel is held by a frame
// carrying pkts (host preparation + post + injection + serialization),
// mirroring nicsim's charge.
func FrameOccupancy(c caps.Caps, m memsim.Model, pkts []*packet.Packet) simnet.Duration {
	payload := 0
	for _, p := range pkts {
		payload += p.Size()
	}
	wire := packet.HeaderSize + len(pkts)*packet.SubHeaderSize + payload + c.PacketHeader
	if c.MTU > 0 && wire > c.MTU {
		segs := (wire + c.MTU - 1) / c.MTU
		wire += (segs - 1) * c.PacketHeader
	}
	d := StageCost(c, m, pkts) + c.PostOverhead
	if payload <= c.PIOMax {
		d += simnet.Duration(payload) * c.PIOCostPerByte
	} else {
		d += c.DMASetup
	}
	return d + simnet.BandwidthTime(wire, c.Bandwidth)
}

// SeparateOccupancy returns the channel time of sending each packet as its
// own frame back to back — the FIFO baseline the Score field compares
// against.
func SeparateOccupancy(c caps.Caps, m memsim.Model, pkts []*packet.Packet) simnet.Duration {
	var d simnet.Duration
	for _, p := range pkts {
		d += FrameOccupancy(c, m, []*packet.Packet{p})
	}
	return d
}

// ScorePlan fills a plan's HostExtra and Score from the cost model.
func ScorePlan(c caps.Caps, m memsim.Model, plan *Plan) {
	plan.HostExtra = StageCost(c, m, plan.Packets)
	plan.Score = SeparateOccupancy(c, m, plan.Packets) - FrameOccupancy(c, m, plan.Packets)
}
