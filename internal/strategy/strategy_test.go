package strategy

import (
	"testing"
	"testing/quick"

	"newmad/internal/caps"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

var (
	mxCaps = caps.MX
	mem    = memsim.DefaultModel()
)

// mkBacklog builds packets with ascending SubmitSeq; spec is (flow, dst,
// size) triples.
func mkBacklog(spec ...[3]int) []*packet.Packet {
	out := make([]*packet.Packet, 0, len(spec))
	for i, s := range spec {
		out = append(out, &packet.Packet{
			Flow: packet.FlowID(s[0]), Msg: 1, Seq: i, Src: 0,
			Dst: packet.NodeID(s[1]), Class: packet.ClassSmall,
			Payload:   make([]byte, s[2]),
			SubmitSeq: uint64(i + 1),
		})
	}
	return out
}

func ctxWith(backlog []*packet.Packet) *Context {
	return &Context{Caps: mxCaps, Mem: mem, Backlog: backlog}
}

func TestFIFOTakesHeadOnly(t *testing.T) {
	b := FIFO{}
	if b.Build(ctxWith(nil)) != nil {
		t.Fatal("plan from empty backlog")
	}
	backlog := mkBacklog([3]int{1, 1, 64}, [3]int{2, 1, 64})
	plan := b.Build(ctxWith(backlog))
	if len(plan.Packets) != 1 || plan.Packets[0] != backlog[0] {
		t.Fatalf("fifo took %d packets", len(plan.Packets))
	}
	if plan.HostExtra != 0 {
		t.Fatal("single packet should have no staging cost")
	}
	if b.Name() != "fifo" {
		t.Fatal("name")
	}
}

func TestAggregateMixesFlows(t *testing.T) {
	backlog := mkBacklog(
		[3]int{1, 1, 64}, [3]int{2, 1, 64}, [3]int{3, 1, 64}, [3]int{4, 1, 64})
	plan := NewAggregate().Build(ctxWith(backlog))
	if len(plan.Packets) != 4 {
		t.Fatalf("aggregated %d of 4 same-dst packets", len(plan.Packets))
	}
	if !packet.OrderedSubset(plan.Packets) {
		t.Fatal("plan violates intra-flow order")
	}
	if plan.Score <= 0 {
		t.Fatalf("aggregation of 4 small packets scored %v, want positive", plan.Score)
	}
}

func TestAggregateRespectsDestination(t *testing.T) {
	backlog := mkBacklog([3]int{1, 1, 64}, [3]int{2, 2, 64}, [3]int{3, 1, 64})
	plan := NewAggregate().Build(ctxWith(backlog))
	if len(plan.Packets) != 2 {
		t.Fatalf("plan has %d packets, want head-dst pair", len(plan.Packets))
	}
	for _, p := range plan.Packets {
		if p.Dst != 1 {
			t.Fatal("foreign destination aggregated")
		}
	}
}

func TestAggregateCrossDestinationPacketsAreIndependent(t *testing.T) {
	// Flow 2's first packet goes to dst 2; its second to dst 1. They are
	// different connections with independent sequence spaces, so the dst-1
	// aggregate may legally include flow 2's dst-1 packet.
	backlog := mkBacklog([3]int{1, 1, 64}, [3]int{2, 2, 64}, [3]int{2, 1, 64})
	plan := NewAggregate().Build(ctxWith(backlog))
	if len(plan.Packets) != 2 {
		t.Fatalf("plan took %d packets, want dst-1 pair across connections", len(plan.Packets))
	}
	if !packet.OrderedSubset(plan.Packets) {
		t.Fatal("ordering oracle rejects the plan")
	}
}

func TestAggregateRespectsIntraConnectionOrder(t *testing.T) {
	// Same flow, same destination: once a packet is skipped (too big for
	// the remaining frame budget), later packets of that connection must
	// not be taken.
	backlog := mkBacklog(
		[3]int{1, 1, 64},
		[3]int{2, 1, 40 << 10}, // flow 2 to dst 1: exceeds MaxAggregate with head
		[3]int{2, 1, 64},       // flow 2 to dst 1 again: must NOT overtake
		[3]int{3, 1, 64})
	plan := NewAggregate().Build(ctxWith(backlog))
	for _, p := range plan.Packets {
		if p.Flow == 2 && p.Size() == 64 {
			t.Fatal("later flow-2 packet overtook its skipped predecessor")
		}
	}
	if !packet.OrderedSubset(plan.Packets) {
		t.Fatal("ordering oracle rejects the plan")
	}
}

func TestAggregateRespectsMaxIOV(t *testing.T) {
	spec := make([][3]int, 0, 20)
	for i := 0; i < 20; i++ {
		spec = append(spec, [3]int{i + 1, 1, 16})
	}
	plan := NewAggregate().Build(ctxWith(mkBacklog(spec...)))
	if len(plan.Packets) != mxCaps.MaxIOV {
		t.Fatalf("aggregated %d, want MaxIOV=%d", len(plan.Packets), mxCaps.MaxIOV)
	}
}

func TestAggregateRespectsMaxAggregate(t *testing.T) {
	// Two 20 KiB packets exceed MX's 32 KiB frame limit.
	backlog := mkBacklog([3]int{1, 1, 20 << 10}, [3]int{2, 1, 20 << 10})
	plan := NewAggregate().Build(ctxWith(backlog))
	if len(plan.Packets) != 1 {
		t.Fatalf("aggregated %d packets beyond MaxAggregate", len(plan.Packets))
	}
}

func TestAggregateCopyOnlyDriverStillAggregates(t *testing.T) {
	// Elan has MaxIOV=1: aggregation happens by copy, so the count is
	// byte-limited, not slot-limited, and HostExtra charges the memcpy.
	backlog := mkBacklog(
		[3]int{1, 1, 256}, [3]int{2, 1, 256}, [3]int{3, 1, 256}, [3]int{4, 1, 256})
	ctx := &Context{Caps: caps.Elan, Mem: mem, Backlog: backlog}
	plan := NewAggregate().Build(ctx)
	if len(plan.Packets) != 4 {
		t.Fatalf("copy-based aggregation took %d", len(plan.Packets))
	}
	wantCopy := mem.CopyCost(4 * 256)
	if plan.HostExtra != wantCopy {
		t.Fatalf("HostExtra = %v, want copy cost %v", plan.HostExtra, wantCopy)
	}
}

func TestAggregateGatherHostExtra(t *testing.T) {
	backlog := mkBacklog([3]int{1, 1, 64}, [3]int{2, 1, 64})
	plan := NewAggregate().Build(ctxWith(backlog))
	if plan.HostExtra != mem.GatherCost(2) {
		t.Fatalf("HostExtra = %v, want gather cost %v", plan.HostExtra, mem.GatherCost(2))
	}
}

func TestAggregateIntraflowVariant(t *testing.T) {
	a := &Aggregate{CrossFlow: false}
	if a.Name() != "aggregate-intraflow" {
		t.Fatal("name")
	}
	backlog := mkBacklog([3]int{1, 1, 64}, [3]int{2, 1, 64}, [3]int{1, 1, 64})
	plan := a.Build(ctxWith(backlog))
	if len(plan.Packets) != 2 {
		t.Fatalf("intraflow variant took %d", len(plan.Packets))
	}
	for _, p := range plan.Packets {
		if p.Flow != 1 {
			t.Fatal("foreign flow in intraflow plan")
		}
	}
}

func TestAggregateMaxPacketsOption(t *testing.T) {
	a := &Aggregate{CrossFlow: true, MaxPackets: 2}
	backlog := mkBacklog([3]int{1, 1, 8}, [3]int{2, 1, 8}, [3]int{3, 1, 8})
	plan := a.Build(ctxWith(backlog))
	if len(plan.Packets) != 2 {
		t.Fatalf("MaxPackets ignored: %d", len(plan.Packets))
	}
}

func TestAggregateEagerOnlyOption(t *testing.T) {
	a := &Aggregate{CrossFlow: true, EagerOnlyAggregation: true}
	backlog := mkBacklog([3]int{1, 1, 8}, [3]int{2, 1, 8}, [3]int{3, 1, 8})
	backlog[1].Class = packet.ClassBulk
	plan := a.Build(ctxWith(backlog))
	if len(plan.Packets) != 2 {
		t.Fatalf("took %d", len(plan.Packets))
	}
	for _, p := range plan.Packets {
		if p.Class == packet.ClassBulk {
			t.Fatal("bulk pulled into eager aggregate")
		}
	}
}

func TestBoundedSearchFindsBetterDestination(t *testing.T) {
	// Head goes to dst 1 alone; dst 2 has 8 aggregatable packets. With
	// enough budget, search should pick the dst-2 aggregate (higher
	// score); with budget 1 it can only consider the head.
	spec := [][3]int{{1, 1, 64}}
	for i := 0; i < 8; i++ {
		spec = append(spec, [3]int{i + 2, 2, 64})
	}
	backlog := mkBacklog(spec...)

	rich := &Context{Caps: mxCaps, Mem: mem, Backlog: backlog, Budget: 64}
	plan := NewBoundedSearch(0).Build(rich)
	if plan.Packets[0].Dst != 2 || len(plan.Packets) != 8 {
		t.Fatalf("budget=64 chose dst=%d n=%d, want dst-2 aggregate of 8", plan.Packets[0].Dst, len(plan.Packets))
	}

	poor := &Context{Caps: mxCaps, Mem: mem, Backlog: backlog, Budget: 1}
	plan = NewBoundedSearch(0).Build(poor)
	if plan.Evaluated != 1 {
		t.Fatalf("budget=1 evaluated %d", plan.Evaluated)
	}
	if plan.Packets[0].Dst != 1 {
		t.Fatal("budget=1 should only have examined the head candidate")
	}
}

func TestBoundedSearchRespectsBudget(t *testing.T) {
	spec := make([][3]int, 0, 30)
	for i := 0; i < 30; i++ {
		spec = append(spec, [3]int{i + 1, (i % 5) + 1, 64})
	}
	backlog := mkBacklog(spec...)
	for _, budget := range []int{1, 2, 4, 8, 16} {
		ctx := &Context{Caps: mxCaps, Mem: mem, Backlog: backlog, Budget: budget}
		plan := NewBoundedSearch(0).Build(ctx)
		if plan == nil {
			t.Fatalf("budget %d: nil plan", budget)
		}
		if plan.Evaluated > budget {
			t.Fatalf("budget %d: evaluated %d", budget, plan.Evaluated)
		}
		if !packet.OrderedSubset(plan.Packets) {
			t.Fatalf("budget %d: unordered plan", budget)
		}
	}
}

func TestBoundedSearchEmptyAndDefaults(t *testing.T) {
	s := NewBoundedSearch(-3)
	if s.DefaultBudget != 16 {
		t.Fatal("bad default budget clamp")
	}
	if s.Build(ctxWith(nil)) != nil {
		t.Fatal("plan from empty backlog")
	}
	if s.Name() != "search" {
		t.Fatal("name")
	}
}

// Property: for arbitrary backlogs, every builder emits plans that (a)
// respect intra-flow order, (b) share one destination, and (c) stay within
// the capability limits.
func TestBuilderInvariantsProperty(t *testing.T) {
	builders := []PlanBuilder{FIFO{}, NewAggregate(), &Aggregate{CrossFlow: false}, NewBoundedSearch(8)}
	f := func(seed uint64, n uint8) bool {
		rng := simnet.NewRNG(seed)
		count := int(n%24) + 1
		backlog := make([]*packet.Packet, 0, count)
		for i := 0; i < count; i++ {
			backlog = append(backlog, &packet.Packet{
				Flow:      packet.FlowID(rng.Intn(4) + 1),
				Msg:       1,
				Seq:       i,
				Dst:       packet.NodeID(rng.Intn(3) + 1),
				Class:     packet.ClassID(rng.Intn(int(packet.NumClasses))),
				Payload:   make([]byte, rng.Intn(4096)),
				SubmitSeq: uint64(i + 1),
			})
		}
		for _, b := range builders {
			plan := b.Build(ctxWith(backlog))
			if plan == nil || len(plan.Packets) == 0 {
				return false
			}
			if !packet.OrderedSubset(plan.Packets) {
				return false
			}
			dst := plan.Packets[0].Dst
			size := 0
			for _, p := range plan.Packets {
				if p.Dst != dst {
					return false
				}
				size += p.Size()
			}
			if size > mxCaps.MaxAggregate && len(plan.Packets) > 1 {
				return false
			}
			if len(plan.Packets) > mxCaps.MaxIOV {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatorMatchesAggregationIntuition(t *testing.T) {
	pkts := mkBacklog([3]int{1, 1, 64}, [3]int{2, 1, 64}, [3]int{3, 1, 64})
	agg := FrameOccupancy(mxCaps, mem, pkts)
	sep := SeparateOccupancy(mxCaps, mem, pkts)
	if agg >= sep {
		t.Fatalf("aggregate occupancy %v !< separate %v", agg, sep)
	}
	// Score consistency.
	plan := &Plan{Packets: pkts}
	ScorePlan(mxCaps, mem, plan)
	if plan.Score != sep-agg {
		t.Fatalf("score %v != %v", plan.Score, sep-agg)
	}
}

func TestEstimatorPIOBoundary(t *testing.T) {
	small := mkBacklog([3]int{1, 1, 32})
	big := mkBacklog([3]int{1, 1, 4096})
	smallOcc := FrameOccupancy(mxCaps, mem, small)
	bigOcc := FrameOccupancy(mxCaps, mem, big)
	if smallOcc >= bigOcc {
		t.Fatal("PIO send should be cheaper than large DMA send")
	}
}
