// Package strategy is the paper's "database of predefined strategies": the
// pluggable decision components of the optimization engine, and a registry
// that makes the set easily extendable.
//
// A strategy bundle answers the four questions the optimizer faces:
//
//   - PlanBuilder — a send channel just became idle; which waiting packets
//     travel next, combined how? (fifo, greedy aggregation, bounded search)
//   - RailPolicy — which NIC(s) may a packet use in a multi-rail node?
//     (pinned one-to-one, shared pool, class affinity)
//   - ClassPolicy — which channels of a NIC may a traffic class occupy?
//     (single queue, reserved control lane, adaptive re-partitioning)
//   - ProtocolPolicy — eager or rendezvous for a given packet?
//
// The optimizing layer (internal/core) owns *when* these run — on NIC idle
// upcalls, per the paper's central idea — and the constraint rules they
// must respect live in internal/packet. Strategies are pure decision logic
// and hold no engine state, so one bundle instance can serve many engines.
package strategy

import (
	"newmad/internal/caps"
	"newmad/internal/memsim"
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// Context is the information available to a PlanBuilder when a channel of
// one NIC becomes idle.
type Context struct {
	// Now is the current (virtual or wall) time.
	Now simnet.Time
	// Caps/Mem describe the NIC whose channel went idle.
	Caps caps.Caps
	Mem  memsim.Model
	// Backlog is the view of waiting packets eligible for this NIC, in
	// submission order. Builders must not mutate it. On a sharded engine
	// this is one shard's eligible view, not the whole node's: the engine
	// shards by destination, so everything aggregatable into one frame
	// (one destination's flows) is always visible together, and a builder
	// never needs to look past the slice it was given.
	Backlog []*packet.Packet
	// Budget bounds how many candidate arrangements the builder may
	// evaluate (the paper's future-work question, reproduced by E6).
	// Zero means "builder's default".
	Budget int
}

// Plan is a builder's answer: the sub-packets of the next frame, in order,
// plus the estimated host-side preparation cost.
type Plan struct {
	// Packets travel as one frame; they must satisfy
	// packet.OrderedSubset and share one destination.
	Packets []*packet.Packet
	// HostExtra is the staging cost (copy/gather) the engine charges the
	// channel, from the same estimator strategies score with.
	HostExtra simnet.Duration
	// Score is the estimated time saved versus sending the packets
	// separately (diagnostic; the engine does not re-rank plans).
	Score simnet.Duration
	// Evaluated counts candidate arrangements examined, the x-axis of the
	// rearrangement-bounding experiment.
	Evaluated int
}

// TotalBytes returns the summed payload size of the plan.
func (p *Plan) TotalBytes() int {
	n := 0
	for _, pkt := range p.Packets {
		n += pkt.Size()
	}
	return n
}

// PlanBuilder chooses the contents of the next frame for an idle channel.
type PlanBuilder interface {
	// Name identifies the builder in the registry and in experiment rows.
	Name() string
	// Build returns the next plan, or nil when the backlog is empty or the
	// builder prefers to wait. Build must not mutate the backlog.
	Build(ctx *Context) *Plan
}

// RailInfo describes one NIC of a multi-rail node to a RailPolicy.
type RailInfo struct {
	// Index and Count position this rail among the node's rails (sorted
	// deterministically by the engine).
	Index int
	Count int
	// Caps is the rail's capability record.
	Caps caps.Caps
}

// RailPolicy decides which rails a packet may travel on.
type RailPolicy interface {
	Name() string
	// Eligible reports whether p may be sent on the given rail.
	Eligible(p *packet.Packet, rail RailInfo) bool
}

// ClassPolicy decides which send channels of a NIC a traffic class may
// occupy — the paper's assignment of multiplexing units to traffic classes.
type ClassPolicy interface {
	Name() string
	// Allowed reports whether class may use channel ch of numCh.
	Allowed(class packet.ClassID, ch, numCh int) bool
	// Observe feeds traffic back to adaptive policies; static policies
	// ignore it.
	Observe(p *packet.Packet)
}

// ProtocolPolicy decides eager versus rendezvous per packet. The engine
// additionally enforces the hard constraint that express packets stay
// eager regardless of the policy's answer.
type ProtocolPolicy interface {
	Name() string
	// UseRendezvous reports whether p should travel by rendezvous given
	// the capability record of the rail it will use.
	UseRendezvous(p *packet.Packet, c caps.Caps) bool
}

// Bundle is one complete strategy: a named combination of the four
// policies. The registry stores bundles; engines are configured with one
// and may switch at runtime (dynamic policy change, E10).
type Bundle struct {
	Name     string
	Builder  PlanBuilder
	Rail     RailPolicy
	Classes  ClassPolicy
	Protocol ProtocolPolicy
}
