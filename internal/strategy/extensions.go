package strategy

import (
	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// Extension strategies. These are not described in the paper; they are the
// proof of its extensibility claim ("the database of predefined strategies
// can be easily extended") and the subjects of the ablation benchmarks.

// Densest is a plan builder that targets the *densest* destination — the
// one with the most aggregatable waiting bytes — instead of the backlog
// head's destination. Pure density maximizes per-frame amortization but
// can starve a lone packet to a quiet destination, so a starvation bound
// forces the head out once it has waited MaxAge.
type Densest struct {
	// MaxAge bounds how long the backlog head may be deferred in favor of
	// denser destinations (0 = 50 µs).
	MaxAge simnet.Duration
}

// NewDensest returns the builder with the default starvation bound.
func NewDensest() *Densest { return &Densest{MaxAge: 50 * simnet.Microsecond} }

// Name returns "densest".
func (d *Densest) Name() string { return "densest" }

// Build picks the destination with the most waiting payload bytes, unless
// the head packet has aged past the starvation bound.
func (d *Densest) Build(ctx *Context) *Plan {
	if len(ctx.Backlog) == 0 {
		return nil
	}
	maxAge := d.MaxAge
	if maxAge <= 0 {
		maxAge = 50 * simnet.Microsecond
	}
	head := ctx.Backlog[0]
	target := head.Dst
	if ctx.Now.Sub(head.Enqueued) < maxAge {
		// Head not yet starving: pick the densest destination.
		bytes := map[packet.NodeID]int{}
		for _, p := range ctx.Backlog {
			bytes[p.Dst] += p.Size()
		}
		best := -1
		for _, p := range ctx.Backlog { // deterministic iteration order
			if b := bytes[p.Dst]; b > best {
				best = b
				target = p.Dst
			}
		}
	}
	lim := packet.AggregateLimits{MaxIOV: ctx.Caps.MaxIOV, MaxAggregate: ctx.Caps.MaxAggregate}
	plan := &Plan{Evaluated: 1}
	size := 0
	blocked := map[packet.FlowID]bool{}
	for _, p := range ctx.Backlog {
		if p.Dst != target {
			continue
		}
		if blocked[p.Flow] {
			continue
		}
		if !packet.CanAppend(p, len(plan.Packets), size, target, lim) {
			blocked[p.Flow] = true
			continue
		}
		plan.Packets = append(plan.Packets, p)
		size += p.Size()
	}
	if len(plan.Packets) == 0 {
		// The densest destination was blocked entirely (e.g. byte limit);
		// fall back to the head.
		plan.Packets = ctx.Backlog[:1:1]
	}
	ScorePlan(ctx.Caps, ctx.Mem, plan)
	return plan
}

// WeightedRail splits flows across rails in proportion to rail bandwidth:
// a static compromise between pinned (no adaptivity) and shared (full
// pooling). Flow f goes to the rail owning the f-th slice of the total
// bandwidth. Unlike SharedRail it keeps flows affine to one rail (warm
// receiver caches); unlike PinnedRail it does not treat a 250 MB/s rail
// and a 900 MB/s rail as equals.
type WeightedRail struct {
	// Bandwidths per rail index; zero entries default to 1.
	Bandwidths []float64
}

// Name returns "rail-weighted".
func (w *WeightedRail) Name() string { return "rail-weighted" }

// Eligible maps the flow onto the bandwidth-proportional rail.
func (w *WeightedRail) Eligible(p *packet.Packet, rail RailInfo) bool {
	if rail.Count <= 1 {
		return true
	}
	total := 0.0
	weights := make([]float64, rail.Count)
	for i := 0; i < rail.Count; i++ {
		bw := 1.0
		if i < len(w.Bandwidths) && w.Bandwidths[i] > 0 {
			bw = w.Bandwidths[i]
		}
		weights[i] = bw
		total += bw
	}
	// Deterministic slot assignment: hash the flow into [0, total).
	x := float64(uint32(p.Flow)*2654435761%1024) / 1024 * total
	for i, bw := range weights {
		x -= bw
		if x < 0 {
			return i == rail.Index
		}
	}
	return rail.Index == rail.Count-1
}

func init() {
	// densest: throughput-greedy aggregation with a starvation bound.
	MustRegister("densest", func() Bundle {
		return Bundle{
			Builder:  NewDensest(),
			Rail:     SharedRail{},
			Classes:  ReservedControl{},
			Protocol: ThresholdProtocol{},
		}
	})
}
