package strategy

import (
	"newmad/internal/packet"
)

// flowSet is an allocation-free small set of flow ids. A single plan only
// ever blocks the handful of connections it skipped within, which fits a
// stack array in the steady state; pathological fan-in spills to a map.
// Builders are shared across engines, so the set lives on the Build stack,
// never on the builder.
type flowSet struct {
	n     int
	small [16]packet.FlowID
	spill map[packet.FlowID]bool
}

func (s *flowSet) add(f packet.FlowID) {
	if s.spill != nil {
		s.spill[f] = true
		return
	}
	if s.n < len(s.small) {
		s.small[s.n] = f
		s.n++
		return
	}
	s.spill = make(map[packet.FlowID]bool, 2*len(s.small))
	for _, v := range s.small {
		s.spill[v] = true
	}
	s.spill[f] = true
}

func (s *flowSet) has(f packet.FlowID) bool {
	if s.spill != nil {
		return s.spill[f]
	}
	for i := 0; i < s.n; i++ {
		if s.small[i] == f {
			return true
		}
	}
	return false
}

// nodeSet is the same small-set idea for destination node ids.
type nodeSet struct {
	n     int
	small [16]packet.NodeID
	spill map[packet.NodeID]bool
}

func (s *nodeSet) add(d packet.NodeID) {
	if s.spill != nil {
		s.spill[d] = true
		return
	}
	if s.n < len(s.small) {
		s.small[s.n] = d
		s.n++
		return
	}
	s.spill = make(map[packet.NodeID]bool, 2*len(s.small))
	for _, v := range s.small {
		s.spill[v] = true
	}
	s.spill[d] = true
}

func (s *nodeSet) has(d packet.NodeID) bool {
	if s.spill != nil {
		return s.spill[d]
	}
	for i := 0; i < s.n; i++ {
		if s.small[i] == d {
			return true
		}
	}
	return false
}

// planCapHint bounds the Packets preallocation: big enough that typical
// aggregates never regrow, small enough that a deep backlog doesn't cost
// an oversized slice per pump.
func planCapHint(backlog int) int {
	if backlog > 64 {
		return 64
	}
	return backlog
}

// FIFO is the previous-Madeleine baseline builder: send the oldest waiting
// packet, alone. Deterministic flow handling, no cross-flow optimization —
// exactly the behaviour the paper's engine replaces.
type FIFO struct{}

// Name returns "fifo".
func (FIFO) Name() string { return "fifo" }

// Build takes the backlog head as a single-packet plan.
func (FIFO) Build(ctx *Context) *Plan {
	if len(ctx.Backlog) == 0 {
		return nil
	}
	plan := &Plan{Packets: ctx.Backlog[:1:1], Evaluated: 1}
	ScorePlan(ctx.Caps, ctx.Mem, plan)
	return plan
}

// Aggregate is the paper's headline builder: starting from the oldest
// waiting packet, greedily append every later packet bound for the same
// destination that the capability record admits — mixing packets from
// several independent communication flows into one network transaction.
//
// Scanning the backlog in submission order and never skipping *within* a
// flow preserves the intra-flow FIFO constraint by construction (appending
// a flow's packets in encounter order is exactly their submission order).
type Aggregate struct {
	// CrossFlow, when false, restricts aggregation to packets of the same
	// flow as the head packet (the intra-flow-only ablation of E1).
	CrossFlow bool
	// MaxPackets caps sub-packets per frame (0 = capability-driven only).
	MaxPackets int
	// EagerOnlyAggregation, when true, refuses to pull ClassBulk packets
	// into aggregates (bulk rides alone); the default pulls everything the
	// caps admit.
	EagerOnlyAggregation bool
}

// NewAggregate returns the default cross-flow aggregation builder.
func NewAggregate() *Aggregate { return &Aggregate{CrossFlow: true} }

// Name returns "aggregate" (or the ablation variant name).
func (a *Aggregate) Name() string {
	if !a.CrossFlow {
		return "aggregate-intraflow"
	}
	return "aggregate"
}

// Build greedily collects the head packet's destination.
func (a *Aggregate) Build(ctx *Context) *Plan {
	if len(ctx.Backlog) == 0 {
		return nil
	}
	head := ctx.Backlog[0]
	lim := packet.AggregateLimits{MaxIOV: ctx.Caps.MaxIOV, MaxAggregate: ctx.Caps.MaxAggregate}
	pkts := make([]*packet.Packet, 1, planCapHint(len(ctx.Backlog)))
	pkts[0] = head
	plan := &Plan{Packets: pkts, Evaluated: 1}
	size := head.Size()
	// blockedFlows records connections where we had to skip a same-
	// destination packet: taking a later packet of such a connection would
	// reorder within it. Packets to *other* destinations skip freely
	// (different connection, no shared order).
	var blockedFlows flowSet
	for _, p := range ctx.Backlog[1:] {
		if a.MaxPackets > 0 && len(plan.Packets) >= a.MaxPackets {
			break
		}
		if p.Dst != head.Dst {
			continue
		}
		if blockedFlows.has(p.Flow) {
			continue
		}
		if !a.CrossFlow && p.Flow != head.Flow {
			continue
		}
		if a.EagerOnlyAggregation && p.Class == packet.ClassBulk {
			blockedFlows.add(p.Flow)
			continue
		}
		if !packet.CanAppend(p, len(plan.Packets), size, head.Dst, lim) {
			blockedFlows.add(p.Flow)
			continue
		}
		plan.Packets = append(plan.Packets, p)
		size += p.Size()
	}
	ScorePlan(ctx.Caps, ctx.Mem, plan)
	return plan
}

// BoundedSearch evaluates several candidate arrangements — different
// destination choices and aggregate lengths — under an explicit budget,
// reproducing the paper's future-work question of bounding the number of
// data rearrangements the optimizer considers.
//
// Candidates examined, in order, until the budget runs out:
//
//	for each distinct destination in backlog order:
//	  for each prefix length L = all, all/2, all/4, ..., 1 of the greedy
//	  collection for that destination:
//	    score the candidate
//
// The candidate with the best score-per-occupancy is chosen, except that a
// candidate that would starve the backlog head for a different destination
// is only taken when its score strictly exceeds the head candidate's (the
// head must not be starved forever; the engine also ages packets).
type BoundedSearch struct {
	// DefaultBudget applies when the context does not set one.
	DefaultBudget int
}

// NewBoundedSearch returns a search builder with the given default budget.
func NewBoundedSearch(budget int) *BoundedSearch {
	if budget < 1 {
		budget = 16
	}
	return &BoundedSearch{DefaultBudget: budget}
}

// Name returns "search".
func (s *BoundedSearch) Name() string { return "search" }

// Build enumerates candidates within the budget and returns the best.
func (s *BoundedSearch) Build(ctx *Context) *Plan {
	if len(ctx.Backlog) == 0 {
		return nil
	}
	budget := ctx.Budget
	if budget <= 0 {
		budget = s.DefaultBudget
	}
	lim := packet.AggregateLimits{MaxIOV: ctx.Caps.MaxIOV, MaxAggregate: ctx.Caps.MaxAggregate}
	head := ctx.Backlog[0]

	var best *Plan
	evaluated := 0

	consider := func(cand *Plan) {
		evaluated++
		cand.Evaluated = evaluated
		ScorePlan(ctx.Caps, ctx.Mem, cand)
		if best == nil {
			best = cand
			return
		}
		// Prefer higher score; tie-break toward the head packet's
		// destination to avoid starvation.
		if cand.Score > best.Score ||
			(cand.Score == best.Score && cand.Packets[0] == head && best.Packets[0] != head) {
			best = cand
		}
	}

	// Distinct destinations in backlog order.
	var seen nodeSet
dests:
	for _, p0 := range ctx.Backlog {
		if seen.has(p0.Dst) {
			continue
		}
		seen.add(p0.Dst)
		full := s.collect(ctx.Backlog, p0.Dst, lim)
		if len(full) == 0 {
			continue
		}
		for l := len(full); l >= 1; l = l / 2 {
			cand := &Plan{Packets: full[:l:l]}
			consider(cand)
			if evaluated >= budget {
				break dests
			}
			if l == 1 {
				break
			}
		}
	}
	if best != nil {
		best.Evaluated = evaluated
	}
	return best
}

// collect is the greedy same-destination gather respecting intra-
// connection order (skip a connection once one of its same-destination
// packets is skipped; other destinations are other connections and skip
// freely).
func (s *BoundedSearch) collect(backlog []*packet.Packet, dst packet.NodeID, lim packet.AggregateLimits) []*packet.Packet {
	out := make([]*packet.Packet, 0, planCapHint(len(backlog)))
	size := 0
	var blocked flowSet
	for _, p := range backlog {
		if p.Dst != dst {
			continue
		}
		if blocked.has(p.Flow) {
			continue
		}
		if !packet.CanAppend(p, len(out), size, dst, lim) {
			blocked.add(p.Flow)
			continue
		}
		out = append(out, p)
		size += p.Size()
	}
	return out
}
