package strategy

import (
	"newmad/internal/packet"
)

// FIFO is the previous-Madeleine baseline builder: send the oldest waiting
// packet, alone. Deterministic flow handling, no cross-flow optimization —
// exactly the behaviour the paper's engine replaces.
type FIFO struct{}

// Name returns "fifo".
func (FIFO) Name() string { return "fifo" }

// Build takes the backlog head as a single-packet plan.
func (FIFO) Build(ctx *Context) *Plan {
	if len(ctx.Backlog) == 0 {
		return nil
	}
	plan := &Plan{Packets: ctx.Backlog[:1:1], Evaluated: 1}
	ScorePlan(ctx.Caps, ctx.Mem, plan)
	return plan
}

// Aggregate is the paper's headline builder: starting from the oldest
// waiting packet, greedily append every later packet bound for the same
// destination that the capability record admits — mixing packets from
// several independent communication flows into one network transaction.
//
// Scanning the backlog in submission order and never skipping *within* a
// flow preserves the intra-flow FIFO constraint by construction (appending
// a flow's packets in encounter order is exactly their submission order).
type Aggregate struct {
	// CrossFlow, when false, restricts aggregation to packets of the same
	// flow as the head packet (the intra-flow-only ablation of E1).
	CrossFlow bool
	// MaxPackets caps sub-packets per frame (0 = capability-driven only).
	MaxPackets int
	// EagerOnlyAggregation, when true, refuses to pull ClassBulk packets
	// into aggregates (bulk rides alone); the default pulls everything the
	// caps admit.
	EagerOnlyAggregation bool
}

// NewAggregate returns the default cross-flow aggregation builder.
func NewAggregate() *Aggregate { return &Aggregate{CrossFlow: true} }

// Name returns "aggregate" (or the ablation variant name).
func (a *Aggregate) Name() string {
	if !a.CrossFlow {
		return "aggregate-intraflow"
	}
	return "aggregate"
}

// Build greedily collects the head packet's destination.
func (a *Aggregate) Build(ctx *Context) *Plan {
	if len(ctx.Backlog) == 0 {
		return nil
	}
	head := ctx.Backlog[0]
	lim := packet.AggregateLimits{MaxIOV: ctx.Caps.MaxIOV, MaxAggregate: ctx.Caps.MaxAggregate}
	plan := &Plan{Packets: []*packet.Packet{head}, Evaluated: 1}
	size := head.Size()
	// blockedFlows records connections where we had to skip a same-
	// destination packet: taking a later packet of such a connection would
	// reorder within it. Packets to *other* destinations skip freely
	// (different connection, no shared order).
	blockedFlows := map[packet.FlowID]bool{}
	for _, p := range ctx.Backlog[1:] {
		if a.MaxPackets > 0 && len(plan.Packets) >= a.MaxPackets {
			break
		}
		if p.Dst != head.Dst {
			continue
		}
		if blockedFlows[p.Flow] {
			continue
		}
		if !a.CrossFlow && p.Flow != head.Flow {
			continue
		}
		if a.EagerOnlyAggregation && p.Class == packet.ClassBulk {
			blockedFlows[p.Flow] = true
			continue
		}
		if !packet.CanAppend(p, len(plan.Packets), size, head.Dst, lim) {
			blockedFlows[p.Flow] = true
			continue
		}
		plan.Packets = append(plan.Packets, p)
		size += p.Size()
	}
	ScorePlan(ctx.Caps, ctx.Mem, plan)
	return plan
}

// BoundedSearch evaluates several candidate arrangements — different
// destination choices and aggregate lengths — under an explicit budget,
// reproducing the paper's future-work question of bounding the number of
// data rearrangements the optimizer considers.
//
// Candidates examined, in order, until the budget runs out:
//
//	for each distinct destination in backlog order:
//	  for each prefix length L = all, all/2, all/4, ..., 1 of the greedy
//	  collection for that destination:
//	    score the candidate
//
// The candidate with the best score-per-occupancy is chosen, except that a
// candidate that would starve the backlog head for a different destination
// is only taken when its score strictly exceeds the head candidate's (the
// head must not be starved forever; the engine also ages packets).
type BoundedSearch struct {
	// DefaultBudget applies when the context does not set one.
	DefaultBudget int
}

// NewBoundedSearch returns a search builder with the given default budget.
func NewBoundedSearch(budget int) *BoundedSearch {
	if budget < 1 {
		budget = 16
	}
	return &BoundedSearch{DefaultBudget: budget}
}

// Name returns "search".
func (s *BoundedSearch) Name() string { return "search" }

// Build enumerates candidates within the budget and returns the best.
func (s *BoundedSearch) Build(ctx *Context) *Plan {
	if len(ctx.Backlog) == 0 {
		return nil
	}
	budget := ctx.Budget
	if budget <= 0 {
		budget = s.DefaultBudget
	}
	lim := packet.AggregateLimits{MaxIOV: ctx.Caps.MaxIOV, MaxAggregate: ctx.Caps.MaxAggregate}
	head := ctx.Backlog[0]

	var best *Plan
	evaluated := 0

	consider := func(cand *Plan) {
		evaluated++
		cand.Evaluated = evaluated
		ScorePlan(ctx.Caps, ctx.Mem, cand)
		if best == nil {
			best = cand
			return
		}
		// Prefer higher score; tie-break toward the head packet's
		// destination to avoid starvation.
		if cand.Score > best.Score ||
			(cand.Score == best.Score && cand.Packets[0] == head && best.Packets[0] != head) {
			best = cand
		}
	}

	// Distinct destinations in backlog order.
	seen := map[packet.NodeID]bool{}
dests:
	for _, p0 := range ctx.Backlog {
		if seen[p0.Dst] {
			continue
		}
		seen[p0.Dst] = true
		full := s.collect(ctx.Backlog, p0.Dst, lim)
		if len(full) == 0 {
			continue
		}
		for l := len(full); l >= 1; l = l / 2 {
			cand := &Plan{Packets: full[:l:l]}
			consider(cand)
			if evaluated >= budget {
				break dests
			}
			if l == 1 {
				break
			}
		}
	}
	if best != nil {
		best.Evaluated = evaluated
	}
	return best
}

// collect is the greedy same-destination gather respecting intra-
// connection order (skip a connection once one of its same-destination
// packets is skipped; other destinations are other connections and skip
// freely).
func (s *BoundedSearch) collect(backlog []*packet.Packet, dst packet.NodeID, lim packet.AggregateLimits) []*packet.Packet {
	var out []*packet.Packet
	size := 0
	blocked := map[packet.FlowID]bool{}
	for _, p := range backlog {
		if p.Dst != dst {
			continue
		}
		if blocked[p.Flow] {
			continue
		}
		if !packet.CanAppend(p, len(out), size, dst, lim) {
			blocked[p.Flow] = true
			continue
		}
		out = append(out, p)
		size += p.Size()
	}
	return out
}
