package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"newmad/internal/core"
)

// Prometheus text exposition, hand-written against the v0.0.4 format so
// the repo stays stdlib-only. Histograms are rendered as cumulative
// buckets at the log2 upper bounds the stats.Histogram actually keeps
// (le="1", le="2", le="4", ... le="+Inf"), so a scraper's
// histogram_quantile sees the true bucket layout rather than a lossy
// re-binning.

// promName lowercases and maps every non-[a-z0-9_] byte to '_' — the
// stats.Set convention is dotted names ("chaos.faults.raildrop"), the
// Prometheus convention is underscores.
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		case c >= 'A' && c <= 'Z':
			b.WriteByte(c - 'A' + 'a')
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promHead(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promHist writes one histogram family sample set under name with the
// given label pairs (already formatted as `k="v"` fragments).
func promHist(w io.Writer, name, labels string, hs HistStat) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for _, b := range hs.Bkts {
		cum += b.N
		// Bucket idx holds values < 2^idx (idx 0 holds [0,1)), so the
		// inclusive upper bound le=2^idx covers it.
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, math.Pow(2, float64(b.Idx)), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, hs.Count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, hs.Sum, name, hs.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, hs.Sum, name, labels, hs.Count)
	}
}

// engineCounter rows shared by node and fleet rendering.
type promRow struct {
	name, help string
	v          uint64
}

func engineRows(t FleetTotals) []promRow {
	return []promRow{
		{"newmad_submitted_total", "Packets submitted by the application.", t.Submitted},
		{"newmad_submitted_bytes_total", "Payload bytes submitted.", t.SubmittedBytes},
		{"newmad_delivered_total", "Packets delivered to receive handlers.", t.Delivered},
		{"newmad_frames_posted_total", "Wire frames posted across all rails.", t.FramesPosted},
		{"newmad_packets_sent_total", "Packets carried by posted frames.", t.PacketsSent},
		{"newmad_aggregates_total", "Frames that carried more than one packet.", t.Aggregates},
		{"newmad_idle_upcalls_total", "NIC-idle scheduler activations.", t.IdleUpcalls},
		{"newmad_frames_reclaimed_total", "Frames handed back by failing rails.", t.FramesReclaimed},
		{"newmad_failovers_total", "Frames re-posted on a live rail after reclaim.", t.Failovers},
		{"newmad_rdv_retries_total", "Rendezvous RTS retries fired.", t.RdvRetries},
		{"newmad_rail_downs_total", "Rail peer-down events.", t.RailDowns},
	}
}

// WriteProm renders one node's snapshot in Prometheus text format.
func WriteProm(w io.Writer, ns NodeSnapshot) {
	m := &ns.Metrics
	var t FleetTotals
	t.add(m)
	for _, r := range engineRows(t) {
		promHead(w, r.name, "counter", r.help)
		fmt.Fprintf(w, "%s %d\n", r.name, r.v)
	}

	promHead(w, "newmad_backlog", "gauge", "Packets waiting in the send backlog.")
	fmt.Fprintf(w, "newmad_backlog %d\n", m.Backlog)
	promHead(w, "newmad_failover_queued", "gauge", "Frames waiting for any rail to their peer.")
	fmt.Fprintf(w, "newmad_failover_queued %d\n", m.FailoverQueued)

	if len(m.RailFrames) > 0 {
		promHead(w, "newmad_rail_frames_total", "counter", "Frames posted per rail.")
		for i, v := range m.RailFrames {
			fmt.Fprintf(w, "newmad_rail_frames_total{rail=\"%d\"} %d\n", i, v)
		}
	}

	if len(ns.Spans) > 0 {
		promHead(w, "newmad_span_ns", "histogram", "Packet lifecycle span latency in nanoseconds.")
		for _, sp := range ns.Spans {
			labels := fmt.Sprintf("span=%q,class=%q,rail=\"%d\"", sp.Span, sp.Class, sp.Rail)
			promHist(w, "newmad_span_ns", labels, sp.HistStat)
		}
	}
	writeTenantProm(w, m.Tenants)

	writeSetProm(w, ns.Counters, ns.Gauges, ns.Hists)
}

// WriteFleetProm renders the fleet roll-up in Prometheus text format.
func WriteFleetProm(w io.Writer, fs FleetSnapshot) {
	for _, r := range engineRows(fs.Totals) {
		promHead(w, r.name, "counter", r.help)
		fmt.Fprintf(w, "%s %d\n", r.name, r.v)
	}
	promHead(w, "newmad_fleet_nodes", "gauge", "Engines registered in this fleet.")
	fmt.Fprintf(w, "newmad_fleet_nodes %d\n", fs.Nodes)

	if len(fs.Spans) > 0 {
		promHead(w, "newmad_span_ns", "histogram", "Fleet-wide packet lifecycle span latency in nanoseconds.")
		for _, sp := range fs.Spans {
			labels := fmt.Sprintf("span=%q,class=%q,rail=\"%d\"", sp.Span, sp.Class, sp.Rail)
			promHist(w, "newmad_span_ns", labels, sp.HistStat)
		}
	}
	writeTenantProm(w, fs.Tenants)
	writeSetProm(w, fs.Counters, fs.Gauges, fs.Hists)
}

// writeTenantProm renders the per-tenant admission families — one sample
// per tenant, labeled tenant="N". Absent entirely when admission control
// is disabled, so quota-free deployments see no dead series.
func writeTenantProm(w io.Writer, tenants []core.TenantMetrics) {
	if len(tenants) == 0 {
		return
	}
	type tenantRow struct {
		name, typ, help string
		v               func(*core.TenantMetrics) string
	}
	rows := []tenantRow{
		{"newmad_tenant_submitted_total", "counter", "Packets admitted per tenant.",
			func(t *core.TenantMetrics) string { return fmt.Sprintf("%d", t.Submitted) }},
		{"newmad_tenant_throttled_total", "counter", "Packets refused by the tenant's rate limit.",
			func(t *core.TenantMetrics) string { return fmt.Sprintf("%d", t.Throttled) }},
		{"newmad_tenant_quota_refused_total", "counter", "Packets refused by the tenant's backlog quota.",
			func(t *core.TenantMetrics) string { return fmt.Sprintf("%d", t.OverQuota) }},
		{"newmad_tenant_backlog", "gauge", "Packets the tenant has queued but unplanned.",
			func(t *core.TenantMetrics) string { return fmt.Sprintf("%d", t.Backlog) }},
		{"newmad_tenant_rate_pps", "gauge", "The tenant's admission rate currently in effect (0 = unlimited).",
			func(t *core.TenantMetrics) string { return fmt.Sprintf("%g", t.RatePPS) }},
	}
	for _, r := range rows {
		promHead(w, r.name, r.typ, r.help)
		for i := range tenants {
			fmt.Fprintf(w, "%s{tenant=\"%d\"} %s\n", r.name, tenants[i].Tenant, r.v(&tenants[i]))
		}
	}
}

// writeSetProm renders a snapshot's stats.Set maps, one Prometheus
// family per name.
func writeSetProm(w io.Writer, ctrs map[string]uint64, gauges map[string]float64, hists map[string]HistStat) {
	for _, n := range sortedKeys(ctrs) {
		pn := "newmad_" + promName(n) + "_total"
		promHead(w, pn, "counter", "Experiment counter "+n+".")
		fmt.Fprintf(w, "%s %d\n", pn, ctrs[n])
	}
	for _, n := range sortedKeys(gauges) {
		pn := "newmad_" + promName(n)
		promHead(w, pn, "gauge", "Experiment gauge "+n+".")
		fmt.Fprintf(w, "%s %g\n", pn, gauges[n])
	}
	for _, n := range sortedKeys(hists) {
		pn := "newmad_" + promName(n)
		promHead(w, pn, "histogram", "Experiment histogram "+n+".")
		promHist(w, pn, "", hists[n])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
