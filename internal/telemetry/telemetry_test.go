package telemetry_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"newmad/internal/exp"
	"newmad/internal/packet"
	"newmad/internal/stats"
	"newmad/internal/telemetry"
)

// rig builds a small cluster, pushes msgs packets from every node to its
// successor, runs it dry and returns a populated registry.
func rig(t *testing.T, nodes, msgs int) (*exp.Rig, *telemetry.Registry) {
	t.Helper()
	r, err := exp.NewRig(exp.RigOptions{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < nodes; n++ {
		src := packet.NodeID(n)
		dst := packet.NodeID((n + 1) % nodes)
		for q := 0; q < msgs; q++ {
			p := &packet.Packet{
				Flow: packet.FlowID(n + 1), Msg: packet.MsgID(q), Seq: q, Last: true,
				Src: src, Dst: dst, Class: packet.ClassSmall,
				Payload: make([]byte, 128),
			}
			if err := r.Engines[src].Submit(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.Cl.Eng.Run()

	reg := telemetry.NewRegistry()
	for n := 0; n < nodes; n++ {
		role := "worker"
		if n == 0 {
			role = "leader"
		}
		reg.Register(telemetry.Source{
			Node:   packet.NodeID(n),
			Role:   role,
			Engine: r.Engines[packet.NodeID(n)],
		})
	}
	reg.SetFleetStats(r.Cl.Stats)
	return r, reg
}

func TestNodeSnapshot(t *testing.T) {
	r, reg := rig(t, 3, 16)
	ns, ok := reg.Snapshot(0)
	if !ok {
		t.Fatal("node 0 not registered")
	}
	if ns.Schema != telemetry.Schema || ns.Node != 0 || ns.Role != "leader" {
		t.Fatalf("snapshot header wrong: %+v", ns)
	}
	if ns.Metrics.Submitted != 16 {
		t.Fatalf("submitted = %d, want 16", ns.Metrics.Submitted)
	}
	var qw, e2e uint64
	for _, sp := range ns.Spans {
		switch sp.Span {
		case "queue_wait":
			qw += sp.Count
		case "e2e":
			e2e += sp.Count
		}
		if sp.Class == "" {
			t.Fatalf("span %q missing class name", sp.Span)
		}
	}
	if qw != 16 {
		t.Fatalf("queue-wait samples = %d, want 16", qw)
	}
	if e2e != 16 { // node 0 receives node 2's 16 packets
		t.Fatalf("e2e samples = %d, want 16", e2e)
	}
	if _, ok := reg.Snapshot(99); ok {
		t.Fatal("snapshot of unknown node succeeded")
	}
	_ = r
}

func TestFleetRollup(t *testing.T) {
	r, reg := rig(t, 4, 8)
	fs := reg.Fleet()
	if fs.Nodes != 4 {
		t.Fatalf("fleet nodes = %d", fs.Nodes)
	}
	if fs.Totals.Submitted != 32 || fs.Totals.Delivered != 32 {
		t.Fatalf("fleet totals: %+v", fs.Totals)
	}
	if fs.SpanTotal("e2e").Count() != 32 {
		t.Fatalf("fleet e2e count = %d, want 32", fs.SpanTotal("e2e").Count())
	}
	if fs.SpanTotal("e2e").Quantile(0.99) <= 0 {
		t.Fatal("fleet e2e p99 is zero")
	}

	// Role roll-up: 1 leader + 3 workers, every node saw 8 deliveries.
	if len(fs.Roles) != 2 {
		t.Fatalf("roles = %d, want 2", len(fs.Roles))
	}
	byRole := map[string]telemetry.RoleRollup{}
	for _, rr := range fs.Roles {
		byRole[rr.Role] = rr
	}
	if byRole["leader"].Nodes != 1 || byRole["worker"].Nodes != 3 {
		t.Fatalf("role node counts: %+v", byRole)
	}
	if byRole["worker"].Totals.Delivered != 24 {
		t.Fatalf("worker deliveries = %d, want 24", byRole["worker"].Totals.Delivered)
	}
	var workerE2E uint64
	for _, sp := range byRole["worker"].Spans {
		if sp.Span == "e2e" {
			workerE2E = sp.Count
		}
	}
	if workerE2E != 24 {
		t.Fatalf("worker merged e2e count = %d, want 24", workerE2E)
	}

	// The shared cluster stats set rides along once, at fleet level.
	if len(fs.Hists) == 0 && len(fs.Counters) == 0 {
		t.Log("cluster stats set empty (acceptable), counters:", fs.Counters)
	}

	// JSON round-trip: the wire form reconstructs mergeable histograms.
	raw, err := json.Marshal(fs)
	if err != nil {
		t.Fatal(err)
	}
	var back telemetry.FleetSnapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if got := back.SpanTotal("e2e").Count(); got != 32 {
		t.Fatalf("round-tripped e2e count = %d, want 32", got)
	}
	_ = r
}

func TestHistStatRoundTrip(t *testing.T) {
	h := &stats.Histogram{}
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	hs := telemetry.HistStatOf(h)
	if hs.Count != 1000 || hs.P50 <= 0 || hs.P99 < hs.P50 {
		t.Fatalf("bad summary: %+v", hs)
	}
	back := hs.Histogram()
	if back.Count() != 1000 || back.Sum() != h.Sum() {
		t.Fatalf("reconstruction lost mass: count=%d sum=%g", back.Count(), back.Sum())
	}
	// Bucket-level reconstruction keeps quantiles within a 2x band.
	q, want := back.Quantile(0.5), h.Quantile(0.5)
	if q < want/2 || q > want*2 {
		t.Fatalf("round-trip p50 %g vs %g", q, want)
	}
}

func TestPromExposition(t *testing.T) {
	_, reg := rig(t, 2, 8)
	ns, _ := reg.Snapshot(1)
	var b strings.Builder
	telemetry.WriteProm(&b, ns)
	out := b.String()

	for _, want := range []string{
		"# TYPE newmad_submitted_total counter",
		"newmad_submitted_total 8",
		"# TYPE newmad_span_ns histogram",
		`newmad_span_ns_bucket{span="e2e",class="small",rail="0",le="+Inf"} 8`,
		"# TYPE newmad_backlog gauge",
		"newmad_backlog 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q in:\n%s", want, out)
		}
	}

	// Cumulative bucket counts never decrease and end at _count.
	var prev uint64
	for _, ln := range strings.Split(out, "\n") {
		if !strings.HasPrefix(ln, `newmad_span_ns_bucket{span="e2e"`) {
			continue
		}
		var n uint64
		if _, err := fmt.Sscanf(ln[strings.LastIndex(ln, "} ")+2:], "%d", &n); err != nil {
			t.Fatalf("unparseable sample %q: %v", ln, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative at %q", ln)
		}
		prev = n
	}
	if prev != 8 {
		t.Fatalf("final cumulative bucket = %d, want 8", prev)
	}

	var fb strings.Builder
	telemetry.WriteFleetProm(&fb, reg.Fleet())
	if !strings.Contains(fb.String(), "newmad_fleet_nodes 2") {
		t.Fatalf("fleet prom missing node gauge:\n%s", fb.String())
	}
}

func TestHTTPServer(t *testing.T) {
	_, reg := rig(t, 2, 4)
	srv := telemetry.NewServer(reg, 0)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "newmad_span_ns_bucket") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if code, body := get("/metrics?node=1"); code != 200 || !strings.Contains(body, "newmad_delivered_total 4") {
		t.Fatalf("/metrics?node=1: %d\n%s", code, body)
	}
	if code, _ := get("/metrics?node=7"); code != 404 {
		t.Fatalf("/metrics?node=7 returned %d, want 404", code)
	}

	code, body := get("/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json: %d", code)
	}
	var ns telemetry.NodeSnapshot
	if err := json.Unmarshal([]byte(body), &ns); err != nil {
		t.Fatalf("/metrics.json not a NodeSnapshot: %v", err)
	}
	if ns.Schema != telemetry.Schema || ns.Metrics.Submitted != 4 {
		t.Fatalf("unexpected snapshot: %+v", ns)
	}

	code, body = get("/fleet.json")
	if code != 200 {
		t.Fatalf("/fleet.json: %d", code)
	}
	var fs telemetry.FleetSnapshot
	if err := json.Unmarshal([]byte(body), &fs); err != nil {
		t.Fatal(err)
	}
	if fs.Nodes != 2 || fs.SpanTotal("e2e").Count() != 8 {
		t.Fatalf("fleet over HTTP: nodes=%d e2e=%d", fs.Nodes, fs.SpanTotal("e2e").Count())
	}

	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: %d", code)
	}
}
