package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"newmad/internal/packet"
)

// Server exposes one registry over HTTP. Each cluster node runs its own
// Server (default node = its own ID) against the shared registry, so any
// node's endpoint can answer for the whole mesh:
//
//	/metrics            Prometheus text for one node (?node=ID, default below)
//	/metrics.json       NodeSnapshot JSON for one node
//	/fleet              Prometheus text for the fleet roll-up
//	/fleet.json         FleetSnapshot JSON
//	/debug/pprof/...    net/http/pprof (explicitly registered — the
//	                    server uses its own mux, not http.DefaultServeMux)
//	/debug/vars         expvar
type Server struct {
	reg  *Registry
	node packet.NodeID
	ln   net.Listener
	srv  *http.Server
}

// NewServer builds a server over reg whose parameterless /metrics
// answers for defaultNode.
func NewServer(reg *Registry, defaultNode packet.NodeID) *Server {
	s := &Server{reg: reg, node: defaultNode}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/fleet", s.handleFleet)
	mux.HandleFunc("/fleet.json", s.handleFleetJSON)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	s.srv = &http.Server{Handler: mux}
	return s
}

// Handler returns the server's mux for tests and embedding.
func (s *Server) Handler() http.Handler { return s.srv.Handler }

// Listen binds addr (e.g. "127.0.0.1:0") and serves in the background
// until Close. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.srv.Serve(ln) //nolint:errcheck — Serve returns ErrServerClosed on Close
	return ln.Addr().String(), nil
}

// Addr returns the bound address, empty before Listen.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.ln == nil {
		return nil
	}
	return s.srv.Close()
}

// pick resolves the ?node= query, falling back to the server's default.
func (s *Server) pick(r *http.Request) (packet.NodeID, bool) {
	q := r.URL.Query().Get("node")
	if q == "" {
		return s.node, true
	}
	var id int32
	if _, err := fmt.Sscanf(q, "%d", &id); err != nil {
		return 0, false
	}
	return packet.NodeID(id), true
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	node, ok := s.pick(r)
	if !ok {
		http.Error(w, "bad node", http.StatusBadRequest)
		return
	}
	ns, ok := s.reg.Snapshot(node)
	if !ok {
		http.Error(w, "unknown node", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteProm(w, ns)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	node, ok := s.pick(r)
	if !ok {
		http.Error(w, "bad node", http.StatusBadRequest)
		return
	}
	ns, ok := s.reg.Snapshot(node)
	if !ok {
		http.Error(w, "unknown node", http.StatusNotFound)
		return
	}
	writeJSON(w, ns)
}

func (s *Server) handleFleet(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteFleetProm(w, s.reg.Fleet())
}

func (s *Server) handleFleetJSON(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.reg.Fleet())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck — client gone is not our error
}
