// Package telemetry is the observability surface over the optimizer
// fleet: a Registry aggregates every engine's metrics snapshot, latency
// spans and shared counter sets into uniform, JSON-able snapshots, rolls
// a whole testnet up into one fleet view (per-role quantile merge via
// stats.Histogram.Merge), and exposes it all over HTTP as Prometheus text
// and JSON alongside net/http/pprof and expvar (http.go, prom.go).
//
// The division of labor with the datapath: engines observe into sharded
// stats.Spans cells (internal/core) and never format anything; this
// package does all naming, quantile math and serialization at scrape
// time, outside the engine lock.
package telemetry

import (
	"sort"
	"sync"

	"newmad/internal/core"
	"newmad/internal/packet"
	"newmad/internal/stats"
)

// Schema identifies the snapshot JSON layout.
const Schema = "newmad-telemetry/v1"

// Source is one observed engine: the handle the Registry scrapes.
type Source struct {
	// Node is the engine's node ID (the registry key).
	Node packet.NodeID
	// Role is the topology role ("leader", "worker", ...); roles group
	// the fleet roll-up. Empty is a valid role.
	Role string
	// Engine supplies Metrics and latency spans (required).
	Engine *core.Engine
	// Stats, when non-nil, contributes the node's counter/histogram/gauge
	// set to its snapshot. Leave nil when the set is shared across nodes
	// (the testnet's fleet-wide set) — register it once with
	// SetFleetStats instead, or every node would re-report it.
	Stats *stats.Set
	// Extra, when non-nil, contributes additional counters (chaos fault
	// totals, ledger accounting) to this node's snapshot at scrape time.
	Extra func() map[string]uint64
}

// Registry aggregates sources into snapshots. Safe for concurrent use;
// scraping never blocks an engine beyond its own metric mutexes.
type Registry struct {
	mu         sync.Mutex
	sources    []Source
	byNode     map[packet.NodeID]int
	fleetStats *stats.Set
	fleetExtra func() map[string]uint64
	scratch    core.Metrics // serially reused under mu for roll-ups
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byNode: make(map[packet.NodeID]int)}
}

// Register adds (or replaces) a source.
func (r *Registry) Register(s Source) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byNode[s.Node]; ok {
		r.sources[i] = s
		return
	}
	r.byNode[s.Node] = len(r.sources)
	r.sources = append(r.sources, s)
}

// SetFleetStats registers a counter set shared by the whole fleet (the
// testnet's single stats.Set); it is reported once per fleet snapshot
// instead of once per node.
func (r *Registry) SetFleetStats(s *stats.Set) {
	r.mu.Lock()
	r.fleetStats = s
	r.mu.Unlock()
}

// SetFleetExtra registers a fleet-level counter callback (ledger
// accounting, chaos totals), reported in fleet snapshots.
func (r *Registry) SetFleetExtra(fn func() map[string]uint64) {
	r.mu.Lock()
	r.fleetExtra = fn
	r.mu.Unlock()
}

// Nodes returns the registered node IDs, ascending.
func (r *Registry) Nodes() []packet.NodeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]packet.NodeID, 0, len(r.sources))
	for _, s := range r.sources {
		out = append(out, s.Node)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r *Registry) source(node packet.NodeID) (Source, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i, ok := r.byNode[node]
	if !ok {
		return Source{}, false
	}
	return r.sources[i], true
}

// Bucket is one log2 histogram bucket in wire form: bucket 0 holds
// [0,1), bucket idx>0 holds [2^(idx-1), 2^idx).
type Bucket struct {
	Idx int    `json:"idx"`
	N   uint64 `json:"n"`
}

// HistStat is the JSON form of one histogram: the quantiles a human
// reads plus the mergeable bucket counts a roll-up needs.
type HistStat struct {
	Count uint64   `json:"count"`
	Sum   float64  `json:"sum"`
	Min   float64  `json:"min"`
	Max   float64  `json:"max"`
	Mean  float64  `json:"mean"`
	P50   float64  `json:"p50"`
	P95   float64  `json:"p95"`
	P99   float64  `json:"p99"`
	Bkts  []Bucket `json:"buckets,omitempty"`
}

// HistStatOf summarizes h.
func HistStatOf(h *stats.Histogram) HistStat {
	hs := HistStat{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	b := h.Buckets()
	if len(b) > 0 {
		idxs := make([]int, 0, len(b))
		for i := range b {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		hs.Bkts = make([]Bucket, 0, len(idxs))
		for _, i := range idxs {
			hs.Bkts = append(hs.Bkts, Bucket{Idx: i, N: b[i]})
		}
	}
	return hs
}

// Histogram reconstructs a mergeable histogram from the wire form — the
// client side (madmon, fleet roll-ups across JSON boundaries) merges
// these with stats.Histogram.Merge for honest cross-node quantiles.
func (hs HistStat) Histogram() *stats.Histogram {
	b := make(map[int]uint64, len(hs.Bkts))
	for _, bk := range hs.Bkts {
		b[bk.Idx] = bk.N
	}
	return stats.FromBuckets(b, hs.Count, hs.Sum, hs.Min, hs.Max)
}

// SpanStat is one latency-span cell: which lifecycle leg, for which
// traffic class, on which rail, with the distribution in nanoseconds.
type SpanStat struct {
	Span  string `json:"span"`
	Class string `json:"class"`
	Rail  int    `json:"rail"`
	HistStat
}

// NodeSnapshot is one engine's uniform telemetry snapshot.
type NodeSnapshot struct {
	Schema   string              `json:"schema"`
	Node     int32               `json:"node"`
	Role     string              `json:"role,omitempty"`
	NowNs    int64               `json:"now_ns"`
	Metrics  core.Metrics        `json:"metrics"`
	Spans    []SpanStat          `json:"spans,omitempty"`
	Counters map[string]uint64   `json:"counters,omitempty"`
	Gauges   map[string]float64  `json:"gauges,omitempty"`
	Hists    map[string]HistStat `json:"hists,omitempty"`
}

// spanStats renders an engine's span family.
func spanStats(e *core.Engine) []SpanStat {
	cells := e.Spans().Snapshot()
	out := make([]SpanStat, 0, len(cells))
	for _, c := range cells {
		out = append(out, SpanStat{
			Span:     core.SpanKind(c.Kind).String(),
			Class:    packet.ClassID(c.Class).String(),
			Rail:     c.Rail,
			HistStat: HistStatOf(c.Hist),
		})
	}
	return out
}

// setStats renders a stats.Set into snapshot maps.
func setStats(s *stats.Set) (ctrs map[string]uint64, gauges map[string]float64, hists map[string]HistStat) {
	cn, hn, gn := s.Names()
	if len(cn) > 0 {
		ctrs = make(map[string]uint64, len(cn))
		for _, n := range cn {
			ctrs[n] = s.CounterValue(n)
		}
	}
	if len(gn) > 0 {
		gauges = make(map[string]float64, len(gn))
		for _, n := range gn {
			v, _ := s.Gauge(n)
			gauges[n] = v
		}
	}
	if len(hn) > 0 {
		hists = make(map[string]HistStat, len(hn))
		for _, n := range hn {
			hists[n] = HistStatOf(s.Histogram(n))
		}
	}
	return
}

// Snapshot scrapes one node.
func (r *Registry) Snapshot(node packet.NodeID) (NodeSnapshot, bool) {
	s, ok := r.source(node)
	if !ok {
		return NodeSnapshot{}, false
	}
	return snapshotSource(s), true
}

func snapshotSource(s Source) NodeSnapshot {
	ns := NodeSnapshot{
		Schema:  Schema,
		Node:    int32(s.Node),
		Role:    s.Role,
		Metrics: s.Engine.Metrics(),
		Spans:   spanStats(s.Engine),
	}
	ns.NowNs = int64(ns.Metrics.Now)
	if s.Stats != nil {
		ns.Counters, ns.Gauges, ns.Hists = setStats(s.Stats)
	}
	if s.Extra != nil {
		if ns.Counters == nil {
			ns.Counters = make(map[string]uint64)
		}
		for k, v := range s.Extra() {
			ns.Counters[k] = v
		}
	}
	return ns
}

// SnapshotAll scrapes every node, ascending by node ID.
func (r *Registry) SnapshotAll() []NodeSnapshot {
	r.mu.Lock()
	srcs := append([]Source(nil), r.sources...)
	r.mu.Unlock()
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].Node < srcs[j].Node })
	out := make([]NodeSnapshot, 0, len(srcs))
	for _, s := range srcs {
		out = append(out, snapshotSource(s))
	}
	return out
}

// FleetTotals is the fleet's (or one role's) summed engine activity.
type FleetTotals struct {
	Submitted       uint64 `json:"submitted"`
	SubmittedBytes  uint64 `json:"submitted_bytes"`
	Delivered       uint64 `json:"delivered"`
	FramesPosted    uint64 `json:"frames_posted"`
	PacketsSent     uint64 `json:"packets_sent"`
	Aggregates      uint64 `json:"aggregates"`
	IdleUpcalls     uint64 `json:"idle_upcalls"`
	Backlog         int    `json:"backlog"`
	FailoverQueued  int    `json:"failover_queued"`
	FramesReclaimed uint64 `json:"frames_reclaimed"`
	Failovers       uint64 `json:"failovers"`
	RdvRetries      uint64 `json:"rdv_retries"`
	RailDowns       uint64 `json:"rail_downs"`
	// PumpShards sums the engines' pump-shard counts, so a fleet mixing
	// sharded wall-clock nodes with serialized sim nodes is legible from
	// the roll-up alone (per-node counts are in each NodeSnapshot).
	PumpShards uint64 `json:"pump_shards"`
}

func (t *FleetTotals) add(m *core.Metrics) {
	t.Submitted += m.Submitted
	t.SubmittedBytes += m.SubmittedBytes
	t.Delivered += m.Delivered
	t.FramesPosted += m.FramesPosted
	t.PacketsSent += m.PacketsSent
	t.Aggregates += m.Aggregates
	t.IdleUpcalls += m.IdleUpcalls
	t.Backlog += m.Backlog
	t.FailoverQueued += m.FailoverQueued
	t.FramesReclaimed += m.FramesReclaimed
	t.Failovers += m.Failovers
	t.RdvRetries += m.RdvRetries
	for _, d := range m.RailDowns {
		t.RailDowns += d
	}
	t.PumpShards += uint64(m.Shards)
}

// RoleRollup is one role's merged view: summed totals plus per-span
// histograms merged across the role's nodes (class and rail collapsed,
// so a 1000-node role stays a handful of entries).
type RoleRollup struct {
	Role   string      `json:"role"`
	Nodes  int         `json:"nodes"`
	Totals FleetTotals `json:"totals"`
	Spans  []SpanStat  `json:"spans,omitempty"`
}

// FleetSnapshot is the whole registry rolled into one document: fleet
// totals, fleet-wide span cells (merged across nodes, keyed by
// span/class/rail), per-role roll-ups, and the shared counter set.
type FleetSnapshot struct {
	Schema string       `json:"schema"`
	NowNs  int64        `json:"now_ns"`
	Nodes  int          `json:"nodes"`
	Totals FleetTotals  `json:"totals"`
	Spans  []SpanStat   `json:"spans,omitempty"`
	Roles  []RoleRollup `json:"roles,omitempty"`
	// Tenants is the per-tenant admission roll-up, summed across engines
	// (counters and backlog add; the quota echo fields carry one engine's
	// sample — quota tables are nominally homogeneous, and a control loop
	// retuning one engine makes the echo a representative, not a total).
	// Ordered by tenant ID. Empty when no engine has admission enabled.
	Tenants  []core.TenantMetrics `json:"tenants,omitempty"`
	Counters map[string]uint64    `json:"counters,omitempty"`
	Gauges   map[string]float64   `json:"gauges,omitempty"`
	Hists    map[string]HistStat  `json:"hists,omitempty"`
}

// spanCellKey keys the fleet-wide merge.
type spanCellKey struct {
	kind, class, rail int
}

// Fleet rolls every registered engine into one snapshot. Histograms
// merge via stats.Histogram.Merge — counts and buckets are exact, and
// quantiles of the merged distribution come from merged reservoirs (or
// bucket interpolation beyond reservoir capacity), not from averaging
// per-node quantiles.
func (r *Registry) Fleet() FleetSnapshot {
	r.mu.Lock()
	srcs := append([]Source(nil), r.sources...)
	fleetStats := r.fleetStats
	fleetExtra := r.fleetExtra
	r.mu.Unlock()

	fs := FleetSnapshot{Schema: Schema, Nodes: len(srcs)}
	cells := make(map[spanCellKey]*stats.Histogram)
	type roleAcc struct {
		nodes  int
		totals FleetTotals
		spans  []*stats.Histogram // per span kind
	}
	roles := make(map[string]*roleAcc)
	tenants := make(map[packet.TenantID]*core.TenantMetrics)

	var m core.Metrics
	for _, s := range srcs {
		s.Engine.MetricsInto(&m)
		if int64(m.Now) > fs.NowNs {
			fs.NowNs = int64(m.Now)
		}
		fs.Totals.add(&m)
		for _, tm := range m.Tenants {
			acc := tenants[tm.Tenant]
			if acc == nil {
				cp := tm
				tenants[tm.Tenant] = &cp
				continue
			}
			acc.Submitted += tm.Submitted
			acc.Throttled += tm.Throttled
			acc.OverQuota += tm.OverQuota
			acc.Backlog += tm.Backlog
		}
		ra := roles[s.Role]
		if ra == nil {
			ra = &roleAcc{spans: make([]*stats.Histogram, int(core.NumSpanKinds))}
			for i := range ra.spans {
				ra.spans[i] = &stats.Histogram{}
			}
			roles[s.Role] = ra
		}
		ra.nodes++
		ra.totals.add(&m)
		for _, c := range s.Engine.Spans().Snapshot() {
			key := spanCellKey{c.Kind, c.Class, c.Rail}
			if cells[key] == nil {
				cells[key] = &stats.Histogram{}
			}
			cells[key].Merge(c.Hist)
			if c.Kind < len(ra.spans) {
				ra.spans[c.Kind].Merge(c.Hist)
			}
		}
	}

	keys := make([]spanCellKey, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.class != b.class {
			return a.class < b.class
		}
		return a.rail < b.rail
	})
	for _, k := range keys {
		fs.Spans = append(fs.Spans, SpanStat{
			Span:     core.SpanKind(k.kind).String(),
			Class:    packet.ClassID(k.class).String(),
			Rail:     k.rail,
			HistStat: HistStatOf(cells[k]),
		})
	}

	roleNames := make([]string, 0, len(roles))
	for n := range roles {
		roleNames = append(roleNames, n)
	}
	sort.Strings(roleNames)
	for _, n := range roleNames {
		ra := roles[n]
		rr := RoleRollup{Role: n, Nodes: ra.nodes, Totals: ra.totals}
		for k, h := range ra.spans {
			if h.Count() == 0 {
				continue
			}
			rr.Spans = append(rr.Spans, SpanStat{
				Span:     core.SpanKind(k).String(),
				Class:    "all",
				Rail:     -1,
				HistStat: HistStatOf(h),
			})
		}
		fs.Roles = append(fs.Roles, rr)
	}

	tenantIDs := make([]int, 0, len(tenants))
	for t := range tenants {
		tenantIDs = append(tenantIDs, int(t))
	}
	sort.Ints(tenantIDs)
	for _, t := range tenantIDs {
		fs.Tenants = append(fs.Tenants, *tenants[packet.TenantID(t)])
	}

	if fleetStats != nil {
		fs.Counters, fs.Gauges, fs.Hists = setStats(fleetStats)
	}
	if fleetExtra != nil {
		if fs.Counters == nil {
			fs.Counters = make(map[string]uint64)
		}
		for k, v := range fleetExtra() {
			fs.Counters[k] = v
		}
	}
	return fs
}

// SpanTotal returns the fleet snapshot's merged histogram for one span
// kind across every class and rail — convenience for assertions like
// "the fleet observed deliveries".
func (fs *FleetSnapshot) SpanTotal(span string) *stats.Histogram {
	out := &stats.Histogram{}
	for _, s := range fs.Spans {
		if s.Span == span {
			out.Merge(s.Histogram())
		}
	}
	return out
}
