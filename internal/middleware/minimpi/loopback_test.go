package minimpi

import (
	"testing"
	"time"

	"newmad/internal/caps"
	"newmad/internal/core"
	"newmad/internal/drivers"
	"newmad/internal/mad"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/simnet"
	"newmad/internal/strategy"
)

// TestCollectivesOverRealSockets runs the MPI middleware over the real TCP
// loopback driver: the whole stack — packing API, optimizer, protocol
// engines, wire codec — in wall-clock time with concurrent goroutine
// upcalls. A barrier plus an allreduce across three endpoints is a
// complete correctness workout: tag matching, ordered flows, collective
// trees and bidirectional traffic all at once.
func TestCollectivesOverRealSockets(t *testing.T) {
	const n = 3
	nodes, cleanup, err := drivers.NewLoopbackCluster(n, caps.TCP)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	rt := simnet.NewRealRuntime()

	worlds := make([]*World, n)
	for i := 0; i < n; i++ {
		node := packet.NodeID(i)
		b, err := strategy.New("aggregate")
		if err != nil {
			t.Fatal(err)
		}
		s, err := mad.Bind(node, func(deliver proto.DeliverFunc) (*core.Engine, error) {
			return core.New(node, core.Options{
				Bundle:     b,
				Runtime:    rt,
				Rails:      []drivers.Driver{nodes[i]},
				Deliver:    deliver,
				NagleDelay: simnet.FromWall(100 * time.Microsecond),
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		w, err := New(s, n)
		if err != nil {
			t.Fatal(err)
		}
		worlds[i] = w
	}

	// Barrier, then allreduce, chained per rank; all ranks report results.
	type result struct {
		rank int
		vec  []int64
	}
	results := make(chan result, n)
	for r := 0; r < n; r++ {
		r := r
		go func() {
			worlds[r].Barrier(func() {
				worlds[r].Allreduce([]int64{int64(r + 1)}, OpSum, func(vec []int64) {
					results <- result{r, vec}
				})
			})
		}()
	}

	want := int64(1 + 2 + 3)
	seen := 0
	for seen < n {
		select {
		case res := <-results:
			if len(res.vec) != 1 || res.vec[0] != want {
				t.Fatalf("rank %d allreduce = %v, want [%d]", res.rank, res.vec, want)
			}
			seen++
		case <-time.After(20 * time.Second):
			t.Fatalf("collectives stalled with %d of %d results", seen, n)
		}
	}
}
