package minimpi

import "fmt"

// Additional collectives: scatter and all-to-all. Both are dense traffic
// generators — alltoall in particular creates n×(n−1) concurrent flows in
// one call, the heaviest cross-flow pressure any middleware in this repo
// produces.

const (
	tagScatterBase  = int64(5) << 40
	tagAlltoallBase = int64(6) << 40
)

// Scatter distributes chunks[i] from the root to rank i; done fires on
// every rank with its chunk (the root's own chunk arrives without a
// network hop). Non-root callers pass nil chunks.
func (w *World) Scatter(root int, chunks [][]byte, done func(chunk []byte)) {
	if root < 0 || root >= w.size {
		panic(fmt.Sprintf("minimpi: scatter root %d out of range", root))
	}
	w.mu.Lock()
	w.collSeq++
	tag := tagScatterBase + int64(w.collSeq)
	w.mu.Unlock()

	if w.rank == root {
		if len(chunks) != w.size {
			panic(fmt.Sprintf("minimpi: scatter needs %d chunks, got %d", w.size, len(chunks)))
		}
		for r := 0; r < w.size; r++ {
			if r == root {
				continue
			}
			if err := w.Send(r, tag, chunks[r]); err != nil {
				panic(fmt.Sprintf("minimpi: scatter send: %v", err))
			}
		}
		done(chunks[root])
		return
	}
	w.Recv(root, tag, func(_ int, _ int64, data []byte) { done(data) })
}

// Alltoall performs the complete exchange: rank i sends send[j] to rank j
// and done fires with recv where recv[j] is the chunk rank j sent to this
// rank. The diagonal (send[rank]) is delivered locally.
func (w *World) Alltoall(send [][]byte, done func(recv [][]byte)) {
	if len(send) != w.size {
		panic(fmt.Sprintf("minimpi: alltoall needs %d chunks, got %d", w.size, len(send)))
	}
	w.mu.Lock()
	w.collSeq++
	tag := tagAlltoallBase + int64(w.collSeq)
	w.mu.Unlock()

	recv := make([][]byte, w.size)
	recv[w.rank] = send[w.rank]
	if w.size == 1 {
		done(recv)
		return
	}
	remaining := w.size - 1
	for from := 0; from < w.size; from++ {
		if from == w.rank {
			continue
		}
		from := from
		w.Recv(from, tag, func(src int, _ int64, data []byte) {
			recv[src] = data
			remaining--
			if remaining == 0 {
				done(recv)
			}
		})
	}
	for to := 0; to < w.size; to++ {
		if to == w.rank {
			continue
		}
		if err := w.Send(to, tag, send[to]); err != nil {
			panic(fmt.Sprintf("minimpi: alltoall send: %v", err))
		}
	}
}
