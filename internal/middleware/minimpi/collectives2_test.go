package minimpi

import (
	"bytes"
	"fmt"
	"testing"
)

func TestScatter(t *testing.T) {
	for _, n := range []int{2, 4, 5} {
		j := newJob(t, n)
		root := n / 2
		chunks := make([][]byte, n)
		for i := range chunks {
			chunks[i] = []byte(fmt.Sprintf("chunk-for-%d", i))
		}
		got := make([][]byte, n)
		for r := 0; r < n; r++ {
			r := r
			var in [][]byte
			if r == root {
				in = chunks
			}
			j.worlds[r].Scatter(root, in, func(c []byte) { got[r] = c })
		}
		j.cl.Eng.Run()
		for r := 0; r < n; r++ {
			want := fmt.Sprintf("chunk-for-%d", r)
			if string(got[r]) != want {
				t.Fatalf("n=%d rank %d got %q, want %q", n, r, got[r], want)
			}
		}
	}
}

func TestScatterValidation(t *testing.T) {
	j := newJob(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong chunk count accepted")
		}
	}()
	j.worlds[0].Scatter(0, [][]byte{{1}}, func([]byte) {})
}

func TestAlltoall(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6} {
		j := newJob(t, n)
		results := make([][][]byte, n)
		for r := 0; r < n; r++ {
			r := r
			send := make([][]byte, n)
			for to := 0; to < n; to++ {
				send[to] = []byte(fmt.Sprintf("%d->%d", r, to))
			}
			j.worlds[r].Alltoall(send, func(recv [][]byte) { results[r] = recv })
		}
		j.cl.Eng.Run()
		for r := 0; r < n; r++ {
			if results[r] == nil {
				t.Fatalf("n=%d rank %d never completed", n, r)
			}
			for from := 0; from < n; from++ {
				want := fmt.Sprintf("%d->%d", from, r)
				if string(results[r][from]) != want {
					t.Fatalf("n=%d rank %d from %d: got %q want %q",
						n, r, from, results[r][from], want)
				}
			}
		}
	}
}

func TestAlltoallAggregatesAcrossFlows(t *testing.T) {
	// Several concurrent exchanges of small chunks keep every NIC busy, so
	// later sends accumulate as backlog and the optimizer finds cross-flow
	// aggregation material (tags keep the exchanges separate).
	const n, concurrent = 6, 4
	j := newJob(t, n)
	doneCount := 0
	for round := 0; round < concurrent; round++ {
		for r := 0; r < n; r++ {
			send := make([][]byte, n)
			for to := range send {
				send[to] = bytes.Repeat([]byte{byte(r)}, 64)
			}
			j.worlds[r].Alltoall(send, func([][]byte) { doneCount++ })
		}
	}
	j.cl.Eng.Run()
	if doneCount != n*concurrent {
		t.Fatalf("completed %d of %d", doneCount, n*concurrent)
	}
	if j.cl.Stats.CounterValue("core.aggregates") == 0 {
		t.Fatal("alltoall produced no aggregation")
	}
}

func TestRepeatedAlltoall(t *testing.T) {
	const n, rounds = 3, 4
	j := newJob(t, n)
	counts := make([]int, n)
	var again func(r int)
	again = func(r int) {
		send := make([][]byte, n)
		for to := range send {
			send[to] = []byte{byte(counts[r])}
		}
		j.worlds[r].Alltoall(send, func([][]byte) {
			counts[r]++
			if counts[r] < rounds {
				again(r)
			}
		})
	}
	for r := 0; r < n; r++ {
		again(r)
	}
	j.cl.Eng.Run()
	for r, c := range counts {
		if c != rounds {
			t.Fatalf("rank %d completed %d rounds", r, c)
		}
	}
}
