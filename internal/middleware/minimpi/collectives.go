package minimpi

import (
	"encoding/binary"
	"fmt"
)

// Collective operations over binomial trees and dissemination patterns.
// Tags above the reserved base never collide with application tags: Send
// rejects negative tags and the collective tags use the top bit range.

const (
	tagBarrierBase = int64(1) << 40
	tagBcastBase   = int64(2) << 40
	tagReduceBase  = int64(3) << 40
	tagGatherBase  = int64(4) << 40
)

// Barrier completes (calls done) after every rank has entered the barrier.
// It uses the dissemination algorithm: ceil(log2(n)) rounds, each rank
// sending a token to rank+2^k and awaiting one from rank-2^k. Tokens are
// tiny express control messages — the latency-critical traffic class.
func (w *World) Barrier(done func()) {
	if w.size == 1 {
		done()
		return
	}
	w.mu.Lock()
	w.barrierSeq++
	seq := w.barrierSeq
	w.mu.Unlock()

	var round func(k int)
	round = func(k int) {
		dist := 1 << k
		if dist >= w.size {
			done()
			return
		}
		to := (w.rank + dist) % w.size
		from := (w.rank - dist + w.size) % w.size
		tag := tagBarrierBase + int64(seq)<<8 + int64(k)
		if err := w.Send(to, tag, nil); err != nil {
			panic(fmt.Sprintf("minimpi: barrier send: %v", err))
		}
		w.Recv(from, tag, func(int, int64, []byte) { round(k + 1) })
	}
	round(0)
}

// Bcast distributes root's data to all ranks along a binomial tree; done
// receives the data on every rank (including root).
func (w *World) Bcast(root int, data []byte, done func(data []byte)) {
	if root < 0 || root >= w.size {
		panic(fmt.Sprintf("minimpi: bcast root %d out of range", root))
	}
	w.mu.Lock()
	w.collSeq++
	tag := tagBcastBase + int64(w.collSeq)
	w.mu.Unlock()

	// Ranks are renumbered relative to the root; vrank 0 is the root.
	vrank := (w.rank - root + w.size) % w.size
	forward := func(payload []byte) {
		// Binomial tree: the children of vrank are vrank | 1<<k for every
		// k strictly above vrank's highest set bit (all k for the root).
		hi := -1
		for b := vrank; b > 0; b >>= 1 {
			hi++
		}
		for k := hi + 1; ; k++ {
			child := vrank | 1<<k
			if child >= w.size {
				break
			}
			real := (child + root) % w.size
			if err := w.Send(real, tag, payload); err != nil {
				panic(fmt.Sprintf("minimpi: bcast send: %v", err))
			}
		}
		done(payload)
	}
	if vrank == 0 {
		forward(data)
		return
	}
	w.Recv(AnySource, tag, func(_ int, _ int64, payload []byte) { forward(payload) })
}

// ReduceOp combines two operand slices element-wise into the first.
type ReduceOp func(acc, in []int64)

// OpSum adds element-wise.
func OpSum(acc, in []int64) {
	for i := range acc {
		acc[i] += in[i]
	}
}

// OpMax keeps the element-wise maximum.
func OpMax(acc, in []int64) {
	for i := range acc {
		if in[i] > acc[i] {
			acc[i] = in[i]
		}
	}
}

// Reduce combines each rank's vector with op down a binomial tree; done
// fires on the root with the result (other ranks get done(nil)).
func (w *World) Reduce(root int, vec []int64, op ReduceOp, done func(result []int64)) {
	if root < 0 || root >= w.size {
		panic(fmt.Sprintf("minimpi: reduce root %d out of range", root))
	}
	w.mu.Lock()
	w.collSeq++
	tag := tagReduceBase + int64(w.collSeq)
	w.mu.Unlock()

	vrank := (w.rank - root + w.size) % w.size
	acc := append([]int64(nil), vec...)

	// Children of vrank in the binomial reduce tree: vrank | 1<<k below
	// vrank's lowest set bit; count them first, then absorb that many
	// messages.
	expect := 0
	for k := 0; ; k++ {
		child := vrank | 1<<k
		if vrank&(1<<k) != 0 {
			break
		}
		if child >= w.size {
			break
		}
		if child != vrank {
			expect++
		}
	}

	finish := func() {
		if vrank == 0 {
			done(acc)
			return
		}
		// Send to parent: clear the lowest set bit.
		parent := vrank & (vrank - 1)
		real := (parent + root) % w.size
		if err := w.Send(real, tag, encodeVec(acc)); err != nil {
			panic(fmt.Sprintf("minimpi: reduce send: %v", err))
		}
		done(nil)
	}
	if expect == 0 {
		finish()
		return
	}
	remaining := expect
	var absorb func(int, int64, []byte)
	absorb = func(_ int, _ int64, payload []byte) {
		op(acc, decodeVec(payload))
		remaining--
		if remaining == 0 {
			finish()
			return
		}
		w.Recv(AnySource, tag, absorb)
	}
	w.Recv(AnySource, tag, absorb)
}

// Allreduce is Reduce to rank 0 followed by Bcast; done fires everywhere
// with the combined vector.
func (w *World) Allreduce(vec []int64, op ReduceOp, done func(result []int64)) {
	w.Reduce(0, vec, op, func(result []int64) {
		if w.rank == 0 {
			w.Bcast(0, encodeVec(result), func(data []byte) { done(decodeVec(data)) })
		} else {
			w.Bcast(0, nil, func(data []byte) { done(decodeVec(data)) })
		}
	})
}

// Gather collects each rank's vector at the root (simple linear gather;
// fine at the scales simulated). done fires on the root with vectors
// indexed by rank, and with nil elsewhere.
func (w *World) Gather(root int, vec []int64, done func(all [][]int64)) {
	w.mu.Lock()
	w.collSeq++
	tag := tagGatherBase + int64(w.collSeq)
	w.mu.Unlock()
	if w.rank != root {
		if err := w.Send(root, tag, encodeVec(vec)); err != nil {
			panic(fmt.Sprintf("minimpi: gather send: %v", err))
		}
		done(nil)
		return
	}
	all := make([][]int64, w.size)
	all[root] = append([]int64(nil), vec...)
	remaining := w.size - 1
	if remaining == 0 {
		done(all)
		return
	}
	var absorb func(src int, _ int64, payload []byte)
	absorb = func(src int, _ int64, payload []byte) {
		all[src] = decodeVec(payload)
		remaining--
		if remaining == 0 {
			done(all)
			return
		}
		w.Recv(AnySource, tag, absorb)
	}
	w.Recv(AnySource, tag, absorb)
}

func encodeVec(v []int64) []byte {
	out := make([]byte, 8*len(v))
	for i, x := range v {
		binary.BigEndian.PutUint64(out[i*8:], uint64(x))
	}
	return out
}

func decodeVec(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.BigEndian.Uint64(b[i*8:]))
	}
	return out
}
