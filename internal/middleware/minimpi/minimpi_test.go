package minimpi

import (
	"bytes"
	"fmt"
	"testing"

	"newmad/internal/caps"
	"newmad/internal/core"
	"newmad/internal/drivers"
	"newmad/internal/mad"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/strategy"
)

// job builds an n-rank world over a simulated MX cluster.
type job struct {
	cl     *drivers.Cluster
	worlds []*World
}

func newJob(t *testing.T, n int) *job {
	t.Helper()
	cl, err := drivers.NewCluster(n, caps.MX)
	if err != nil {
		t.Fatal(err)
	}
	j := &job{cl: cl}
	for i := 0; i < n; i++ {
		node := packet.NodeID(i)
		b, err := strategy.New("aggregate")
		if err != nil {
			t.Fatal(err)
		}
		s, err := mad.Bind(node, func(deliver proto.DeliverFunc) (*core.Engine, error) {
			return core.New(node, core.Options{
				Bundle:  b,
				Runtime: cl.Eng,
				Rails:   []drivers.Driver{cl.Driver(node, "mx")},
				Deliver: deliver,
				Stats:   cl.Stats,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		w, err := New(s, n)
		if err != nil {
			t.Fatal(err)
		}
		j.worlds = append(j.worlds, w)
	}
	return j
}

func TestNewValidation(t *testing.T) {
	j := newJob(t, 2)
	if _, err := New(j.worlds[0].session, 0); err == nil {
		t.Fatal("zero-size world accepted")
	}
	if j.worlds[0].Rank() != 0 || j.worlds[1].Rank() != 1 || j.worlds[0].Size() != 2 {
		t.Fatal("rank/size accessors broken")
	}
}

func TestSendRecvBasic(t *testing.T) {
	j := newJob(t, 2)
	var got []byte
	var gotSrc int
	var gotTag int64
	j.worlds[1].Recv(0, 7, func(src int, tag int64, data []byte) {
		gotSrc, gotTag, got = src, tag, data
	})
	if err := j.worlds[0].Send(1, 7, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	j.cl.Eng.Run()
	if gotSrc != 0 || gotTag != 7 || string(got) != "payload" {
		t.Fatalf("recv = src %d tag %d %q", gotSrc, gotTag, got)
	}
}

func TestSendValidation(t *testing.T) {
	j := newJob(t, 2)
	if err := j.worlds[0].Send(0, 1, nil); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := j.worlds[0].Send(5, 1, nil); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if err := j.worlds[0].Send(1, -2, nil); err == nil {
		t.Fatal("negative tag accepted")
	}
}

func TestUnexpectedMessageQueue(t *testing.T) {
	j := newJob(t, 2)
	// Message arrives before the receive is posted.
	if err := j.worlds[0].Send(1, 3, []byte("early")); err != nil {
		t.Fatal(err)
	}
	j.cl.Eng.Run()
	_, unexpected := j.worlds[1].Pending()
	if unexpected != 1 {
		t.Fatalf("unexpected queue = %d", unexpected)
	}
	var got []byte
	j.worlds[1].Recv(AnySource, AnyTag, func(_ int, _ int64, data []byte) { got = data })
	if string(got) != "early" {
		t.Fatalf("late recv got %q", got)
	}
	p, u := j.worlds[1].Pending()
	if p != 0 || u != 0 {
		t.Fatal("queues not drained")
	}
}

func TestTagAndSourceMatching(t *testing.T) {
	j := newJob(t, 3)
	var order []string
	j.worlds[2].Recv(1, 5, func(src int, tag int64, _ []byte) {
		order = append(order, fmt.Sprintf("from1tag5"))
	})
	j.worlds[2].Recv(0, AnyTag, func(src int, tag int64, _ []byte) {
		order = append(order, fmt.Sprintf("from0tag%d", tag))
	})
	if err := j.worlds[0].Send(2, 9, nil); err != nil {
		t.Fatal(err)
	}
	if err := j.worlds[1].Send(2, 5, nil); err != nil {
		t.Fatal(err)
	}
	j.cl.Eng.Run()
	if len(order) != 2 {
		t.Fatalf("matched %d", len(order))
	}
	seen := map[string]bool{}
	for _, o := range order {
		seen[o] = true
	}
	if !seen["from1tag5"] || !seen["from0tag9"] {
		t.Fatalf("order = %v", order)
	}
}

func TestZeroByteMessage(t *testing.T) {
	j := newJob(t, 2)
	called := false
	j.worlds[1].Recv(0, 1, func(_ int, _ int64, data []byte) {
		called = true
		if len(data) != 0 {
			t.Errorf("data = %v", data)
		}
	})
	if err := j.worlds[0].Send(1, 1, nil); err != nil {
		t.Fatal(err)
	}
	j.cl.Eng.Run()
	if !called {
		t.Fatal("zero-byte message lost")
	}
}

func TestBarrier(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		j := newJob(t, n)
		done := make([]bool, n)
		for r := 0; r < n; r++ {
			r := r
			j.worlds[r].Barrier(func() { done[r] = true })
		}
		j.cl.Eng.Run()
		for r, d := range done {
			if !d {
				t.Fatalf("n=%d: rank %d stuck in barrier", n, r)
			}
		}
	}
}

func TestBarrierSingleRank(t *testing.T) {
	cl, _ := drivers.NewCluster(2, caps.MX)
	b, _ := strategy.New("aggregate")
	s, err := mad.Bind(0, func(deliver proto.DeliverFunc) (*core.Engine, error) {
		return core.New(0, core.Options{
			Bundle: b, Runtime: cl.Eng,
			Rails:   []drivers.Driver{cl.Driver(0, "mx")},
			Deliver: deliver,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := New(s, 1)
	called := false
	w.Barrier(func() { called = true })
	if !called {
		t.Fatal("1-rank barrier should complete synchronously")
	}
}

func TestRepeatedBarriers(t *testing.T) {
	const n, rounds = 4, 5
	j := newJob(t, n)
	counts := make([]int, n)
	var enter func(r int)
	enter = func(r int) {
		j.worlds[r].Barrier(func() {
			counts[r]++
			if counts[r] < rounds {
				enter(r)
			}
		})
	}
	for r := 0; r < n; r++ {
		enter(r)
	}
	j.cl.Eng.Run()
	for r, c := range counts {
		if c != rounds {
			t.Fatalf("rank %d completed %d barriers", r, c)
		}
	}
}

func TestBcast(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		for root := 0; root < n; root += n/2 + 1 {
			j := newJob(t, n)
			payload := bytes.Repeat([]byte{0xCD}, 1000)
			got := make([][]byte, n)
			for r := 0; r < n; r++ {
				r := r
				var data []byte
				if r == root {
					data = payload
				}
				j.worlds[r].Bcast(root, data, func(d []byte) { got[r] = d })
			}
			j.cl.Eng.Run()
			for r := 0; r < n; r++ {
				if !bytes.Equal(got[r], payload) {
					t.Fatalf("n=%d root=%d rank=%d: bcast data wrong (%d bytes)", n, root, r, len(got[r]))
				}
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{2, 3, 4, 6} {
		j := newJob(t, n)
		var result []int64
		for r := 0; r < n; r++ {
			r := r
			vec := []int64{int64(r + 1), int64(10 * (r + 1))}
			j.worlds[r].Reduce(0, vec, OpSum, func(res []int64) {
				if r == 0 {
					result = res
				}
			})
		}
		j.cl.Eng.Run()
		wantA := int64(n * (n + 1) / 2)
		if result == nil || result[0] != wantA || result[1] != 10*wantA {
			t.Fatalf("n=%d: reduce = %v, want [%d %d]", n, result, wantA, 10*wantA)
		}
	}
}

func TestReduceMax(t *testing.T) {
	j := newJob(t, 4)
	var result []int64
	for r := 0; r < 4; r++ {
		r := r
		j.worlds[r].Reduce(0, []int64{int64(r * r)}, OpMax, func(res []int64) {
			if r == 0 {
				result = res
			}
		})
	}
	j.cl.Eng.Run()
	if result == nil || result[0] != 9 {
		t.Fatalf("max = %v", result)
	}
}

func TestAllreduce(t *testing.T) {
	const n = 5
	j := newJob(t, n)
	results := make([][]int64, n)
	for r := 0; r < n; r++ {
		r := r
		j.worlds[r].Allreduce([]int64{1, int64(r)}, OpSum, func(res []int64) { results[r] = res })
	}
	j.cl.Eng.Run()
	wantB := int64(0 + 1 + 2 + 3 + 4)
	for r := 0; r < n; r++ {
		if results[r] == nil || results[r][0] != n || results[r][1] != wantB {
			t.Fatalf("rank %d allreduce = %v", r, results[r])
		}
	}
}

func TestGather(t *testing.T) {
	const n = 4
	j := newJob(t, n)
	var all [][]int64
	for r := 0; r < n; r++ {
		r := r
		j.worlds[r].Gather(2, []int64{int64(r * 100)}, func(a [][]int64) {
			if r == 2 {
				all = a
			}
		})
	}
	j.cl.Eng.Run()
	if all == nil {
		t.Fatal("gather root got nothing")
	}
	for r := 0; r < n; r++ {
		if len(all[r]) != 1 || all[r][0] != int64(r*100) {
			t.Fatalf("gather[%d] = %v", r, all[r])
		}
	}
}

func TestHaloExchangePattern(t *testing.T) {
	// The classic stencil neighbor exchange: every rank sends to left and
	// right neighbors (ring) and receives from both — a workload whose
	// small messages from many flows is exactly the paper's target.
	const n = 6
	j := newJob(t, n)
	received := make([]int, n)
	for r := 0; r < n; r++ {
		r := r
		left, right := (r-1+n)%n, (r+1)%n
		j.worlds[r].Recv(left, 100, func(int, int64, []byte) { received[r]++ })
		j.worlds[r].Recv(right, 101, func(int, int64, []byte) { received[r]++ })
		if err := j.worlds[r].Send(right, 100, make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
		if err := j.worlds[r].Send(left, 101, make([]byte, 512)); err != nil {
			t.Fatal(err)
		}
	}
	j.cl.Eng.Run()
	for r, c := range received {
		if c != 2 {
			t.Fatalf("rank %d received %d halos", r, c)
		}
	}
}
