// Package minimpi is a small message-passing middleware in the style of
// MPI point-to-point and collective operations, built on the Madeleine
// packing API. It is one of the three middleware substrates that generate
// the concurrent structured flows the paper's optimizer feeds on.
//
// The API is callback-based rather than blocking because the engine runs
// to completion inside a discrete-event simulation: a Recv posts a request
// that is matched against inbound messages, and the callback fires during
// the simulation run (or, over the loopback driver, whenever the message
// lands).
//
// Wire format per message: fragment 0 (express) is an 16-byte header
// carrying the tag and payload size; fragment 1 (cheaper) is the payload.
// Exactly the header/body split §3 of the paper describes.
package minimpi

import (
	"encoding/binary"
	"fmt"
	"sync"

	"newmad/internal/mad"
	"newmad/internal/packet"
)

// AnyTag matches any tag in Recv.
const AnyTag int64 = -1

// AnySource matches any source rank in Recv.
const AnySource = -1

// World is one rank's endpoint of an n-rank job.
type World struct {
	session *mad.Session
	rank    int
	size    int
	channel *mad.Channel

	mu         sync.Mutex
	posted     []*recvReq // posted receives awaiting messages
	unexpected []*envelope
	barrierSeq int
	collSeq    int
}

type recvReq struct {
	src int
	tag int64
	cb  func(src int, tag int64, data []byte)
}

type envelope struct {
	src  int
	tag  int64
	data []byte
}

// New creates the world endpoint for this session. size is the number of
// ranks; ranks are node ids 0..size-1 (one rank per node).
func New(session *mad.Session, size int) (*World, error) {
	rank := int(session.Node())
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("minimpi: node %d outside world of %d ranks", rank, size)
	}
	w := &World{
		session: session,
		rank:    rank,
		size:    size,
		channel: session.Channel("minimpi"),
	}
	w.channel.OnMessage(w.onMessage)
	return w, nil
}

// Rank returns this process's rank.
func (w *World) Rank() int { return w.rank }

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

const headerLen = 16

// Send posts a message to rank dst with the given tag. It returns once the
// message is handed to the optimizer (eager semantics; completion of the
// wire transfer is the engine's business).
func (w *World) Send(dst int, tag int64, data []byte) error {
	if dst < 0 || dst >= w.size || dst == w.rank {
		return fmt.Errorf("minimpi: bad destination rank %d", dst)
	}
	if tag < 0 {
		return fmt.Errorf("minimpi: negative tags are reserved")
	}
	var hdr [headerLen]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(tag))
	binary.BigEndian.PutUint64(hdr[8:], uint64(len(data)))
	conn := w.channel.Connect(packet.NodeID(dst))
	m := conn.BeginPacking()
	m.Pack(hdr[:], mad.SendSafer, mad.RecvExpress)
	if len(data) > 0 {
		m.Pack(data, mad.SendCheaper, mad.RecvCheaper)
	}
	m.EndPacking()
	return nil
}

// Recv posts a receive for (src, tag); cb fires when a matching message
// arrives (possibly immediately, from the unexpected queue). src may be
// AnySource and tag may be AnyTag.
func (w *World) Recv(src int, tag int64, cb func(src int, tag int64, data []byte)) {
	if cb == nil {
		panic("minimpi: nil receive callback")
	}
	w.mu.Lock()
	for i, env := range w.unexpected {
		if matches(src, tag, env.src, env.tag) {
			w.unexpected = append(w.unexpected[:i], w.unexpected[i+1:]...)
			w.mu.Unlock()
			cb(env.src, env.tag, env.data)
			return
		}
	}
	w.posted = append(w.posted, &recvReq{src: src, tag: tag, cb: cb})
	w.mu.Unlock()
}

func matches(wantSrc int, wantTag int64, src int, tag int64) bool {
	if wantSrc != AnySource && wantSrc != src {
		return false
	}
	if wantTag != AnyTag && wantTag != tag {
		return false
	}
	return true
}

func (w *World) onMessage(src packet.NodeID, msg *mad.Incoming) {
	if len(msg.Fragments) < 1 || len(msg.Fragments[0]) != headerLen {
		panic(fmt.Sprintf("minimpi: malformed message from %d: %d fragments", src, len(msg.Fragments)))
	}
	tag := int64(binary.BigEndian.Uint64(msg.Fragments[0][0:]))
	size := int(binary.BigEndian.Uint64(msg.Fragments[0][8:]))
	var data []byte
	if size > 0 {
		if len(msg.Fragments) < 2 || len(msg.Fragments[1]) != size {
			panic(fmt.Sprintf("minimpi: header announced %d bytes, got %v fragments", size, len(msg.Fragments)))
		}
		data = msg.Fragments[1]
	}
	env := &envelope{src: int(src), tag: tag, data: data}

	w.mu.Lock()
	for i, req := range w.posted {
		if matches(req.src, req.tag, env.src, env.tag) {
			w.posted = append(w.posted[:i], w.posted[i+1:]...)
			w.mu.Unlock()
			req.cb(env.src, env.tag, env.data)
			return
		}
	}
	w.unexpected = append(w.unexpected, env)
	w.mu.Unlock()
}

// Pending returns (posted receives, unexpected messages) — test oracle for
// quiescence.
func (w *World) Pending() (posted, unexpected int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.posted), len(w.unexpected)
}
