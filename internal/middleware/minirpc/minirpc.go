// Package minirpc is a small remote-procedure-call middleware over the
// Madeleine packing API — the second middleware substrate of the
// reproduction, standing in for the CORBA/Java-RMI style of traffic the
// paper's introduction cites.
//
// Each call packs a request message of two fragments: an express header
// (call id + method name) that lets the server dispatch before the
// arguments finish arriving, and the argument bytes. The response mirrors
// it. Many calls may be outstanding; responses correlate by call id.
// Request/response traffic from concurrent clients is exactly the kind of
// irregular multi-flow load cross-flow aggregation feeds on.
package minirpc

import (
	"encoding/binary"
	"fmt"
	"sync"

	"newmad/internal/mad"
	"newmad/internal/packet"
)

// Handler serves one method: it receives the argument bytes and returns
// the result bytes.
type Handler func(src packet.NodeID, args []byte) []byte

// Peer is one node's RPC endpoint: client and server in one.
type Peer struct {
	session *mad.Session
	reqCh   *mad.Channel
	respCh  *mad.Channel

	mu       sync.Mutex
	handlers map[string]Handler
	nextID   uint64
	pending  map[uint64]func(result []byte, err error)
}

// New creates the endpoint. All nodes must create their RPC peers with the
// same channel-creation order (SPMD convention).
func New(session *mad.Session) *Peer {
	p := &Peer{
		session:  session,
		reqCh:    session.Channel("minirpc.req"),
		respCh:   session.Channel("minirpc.resp"),
		handlers: make(map[string]Handler),
		pending:  make(map[uint64]func([]byte, error)),
	}
	p.reqCh.OnMessage(p.onRequest)
	p.respCh.OnMessage(p.onResponse)
	return p
}

// Register installs the handler for a method name. Registering twice
// replaces the handler.
func (p *Peer) Register(method string, h Handler) {
	if h == nil {
		panic("minirpc: nil handler")
	}
	p.mu.Lock()
	p.handlers[method] = h
	p.mu.Unlock()
}

// reqHeader: id(8) | methodLen(2) | method bytes. Status codes for the
// response header.
const (
	statusOK      = 0
	statusNoSuchM = 1
)

// Call invokes method on node dst. done fires with the result (or an
// error for unknown methods). Multiple calls may be outstanding.
func (p *Peer) Call(dst packet.NodeID, method string, args []byte, done func(result []byte, err error)) {
	if done == nil {
		panic("minirpc: nil completion")
	}
	if len(method) > 1<<15 {
		panic("minirpc: method name too long")
	}
	p.mu.Lock()
	p.nextID++
	id := p.nextID
	p.pending[id] = done
	p.mu.Unlock()

	hdr := make([]byte, 10+len(method))
	binary.BigEndian.PutUint64(hdr[0:], id)
	binary.BigEndian.PutUint16(hdr[8:], uint16(len(method)))
	copy(hdr[10:], method)

	conn := p.reqCh.Connect(dst)
	m := conn.BeginPacking()
	m.Pack(hdr, mad.SendSafer, mad.RecvExpress)
	m.Pack(args, mad.SendCheaper, mad.RecvCheaper)
	m.EndPacking()
}

// Outstanding returns the number of calls awaiting responses.
func (p *Peer) Outstanding() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending)
}

func (p *Peer) onRequest(src packet.NodeID, msg *mad.Incoming) {
	if len(msg.Fragments) != 2 {
		panic(fmt.Sprintf("minirpc: request with %d fragments", len(msg.Fragments)))
	}
	hdr := msg.Fragments[0]
	if len(hdr) < 10 {
		panic("minirpc: short request header")
	}
	id := binary.BigEndian.Uint64(hdr[0:])
	mlen := int(binary.BigEndian.Uint16(hdr[8:]))
	if len(hdr) != 10+mlen {
		panic("minirpc: request header length mismatch")
	}
	method := string(hdr[10:])
	args := msg.Fragments[1]

	p.mu.Lock()
	h := p.handlers[method]
	p.mu.Unlock()

	status := byte(statusOK)
	var result []byte
	if h == nil {
		status = statusNoSuchM
	} else {
		result = h(src, args)
	}

	rhdr := make([]byte, 9)
	binary.BigEndian.PutUint64(rhdr[0:], id)
	rhdr[8] = status
	conn := p.respCh.Connect(src)
	m := conn.BeginPacking()
	m.Pack(rhdr, mad.SendSafer, mad.RecvExpress)
	m.Pack(result, mad.SendCheaper, mad.RecvCheaper)
	m.EndPacking()
}

func (p *Peer) onResponse(src packet.NodeID, msg *mad.Incoming) {
	if len(msg.Fragments) != 2 {
		panic(fmt.Sprintf("minirpc: response with %d fragments", len(msg.Fragments)))
	}
	hdr := msg.Fragments[0]
	if len(hdr) != 9 {
		panic("minirpc: short response header")
	}
	id := binary.BigEndian.Uint64(hdr[0:])
	status := hdr[8]
	result := msg.Fragments[1]

	p.mu.Lock()
	done, ok := p.pending[id]
	if ok {
		delete(p.pending, id)
	}
	p.mu.Unlock()
	if !ok {
		panic(fmt.Sprintf("minirpc: response for unknown call %d", id))
	}
	if status == statusNoSuchM {
		done(nil, fmt.Errorf("minirpc: no such method on node %d", src))
		return
	}
	done(result, nil)
}
