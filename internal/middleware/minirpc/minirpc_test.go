package minirpc

import (
	"bytes"
	"fmt"
	"testing"

	"newmad/internal/caps"
	"newmad/internal/core"
	"newmad/internal/drivers"
	"newmad/internal/mad"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/strategy"
)

type rig struct {
	cl    *drivers.Cluster
	peers []*Peer
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	cl, err := drivers.NewCluster(n, caps.MX)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{cl: cl}
	for i := 0; i < n; i++ {
		node := packet.NodeID(i)
		b, err := strategy.New("aggregate")
		if err != nil {
			t.Fatal(err)
		}
		s, err := mad.Bind(node, func(deliver proto.DeliverFunc) (*core.Engine, error) {
			return core.New(node, core.Options{
				Bundle:  b,
				Runtime: cl.Eng,
				Rails:   []drivers.Driver{cl.Driver(node, "mx")},
				Deliver: deliver,
				Stats:   cl.Stats,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		r.peers = append(r.peers, New(s))
	}
	return r
}

func TestBasicCall(t *testing.T) {
	r := newRig(t, 2)
	r.peers[1].Register("echo", func(src packet.NodeID, args []byte) []byte {
		return append([]byte("echo:"), args...)
	})
	var result []byte
	var callErr error
	r.peers[0].Call(1, "echo", []byte("hi"), func(res []byte, err error) {
		result, callErr = res, err
	})
	r.cl.Eng.Run()
	if callErr != nil {
		t.Fatal(callErr)
	}
	if string(result) != "echo:hi" {
		t.Fatalf("result = %q", result)
	}
	if r.peers[0].Outstanding() != 0 {
		t.Fatal("call still pending")
	}
}

func TestUnknownMethod(t *testing.T) {
	r := newRig(t, 2)
	var callErr error
	r.peers[0].Call(1, "missing", nil, func(_ []byte, err error) { callErr = err })
	r.cl.Eng.Run()
	if callErr == nil {
		t.Fatal("unknown method did not error")
	}
}

func TestManyOutstandingCalls(t *testing.T) {
	r := newRig(t, 2)
	r.peers[1].Register("double", func(_ packet.NodeID, args []byte) []byte {
		out := make([]byte, len(args))
		for i, b := range args {
			out[i] = b * 2
		}
		return out
	})
	const n = 40
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		i := i
		r.peers[0].Call(1, "double", []byte{byte(i)}, func(res []byte, err error) {
			if err != nil {
				t.Error(err)
			}
			results[i] = res
		})
	}
	if r.peers[0].Outstanding() != n {
		t.Fatalf("outstanding = %d", r.peers[0].Outstanding())
	}
	r.cl.Eng.Run()
	for i, res := range results {
		if len(res) != 1 || res[0] != byte(i*2) {
			t.Fatalf("call %d result = %v", i, res)
		}
	}
	// Concurrent small calls should have aggregated.
	if r.cl.Stats.CounterValue("core.aggregates") == 0 {
		t.Fatal("rpc storm produced no aggregation")
	}
}

func TestBidirectionalCalls(t *testing.T) {
	r := newRig(t, 2)
	for i := 0; i < 2; i++ {
		i := i
		r.peers[i].Register("who", func(_ packet.NodeID, _ []byte) []byte {
			return []byte(fmt.Sprintf("node%d", i))
		})
	}
	var a, b []byte
	r.peers[0].Call(1, "who", nil, func(res []byte, _ error) { a = res })
	r.peers[1].Call(0, "who", nil, func(res []byte, _ error) { b = res })
	r.cl.Eng.Run()
	if string(a) != "node1" || string(b) != "node0" {
		t.Fatalf("a=%q b=%q", a, b)
	}
}

func TestNestedCallFromHandler(t *testing.T) {
	// A handler on node 1 calls node 2 before answering — re-entrant use
	// of the stack from a delivery context.
	r := newRig(t, 3)
	r.peers[2].Register("leaf", func(_ packet.NodeID, args []byte) []byte {
		return append(args, '!')
	})
	r.peers[1].Register("relay", func(src packet.NodeID, args []byte) []byte {
		// Handlers must return synchronously, so the relay pattern posts
		// the downstream call and stitches the reply via a second RPC
		// back to the origin. Register the continuation first.
		r.peers[1].Call(2, "leaf", args, func(res []byte, err error) {
			if err != nil {
				t.Error(err)
				return
			}
			r.peers[1].Call(0, "notify", res, func([]byte, error) {})
		})
		return []byte("relayed")
	})
	var notified []byte
	r.peers[0].Register("notify", func(_ packet.NodeID, args []byte) []byte {
		notified = append([]byte(nil), args...)
		return nil
	})
	var direct []byte
	r.peers[0].Call(1, "relay", []byte("x"), func(res []byte, _ error) { direct = res })
	r.cl.Eng.Run()
	if string(direct) != "relayed" {
		t.Fatalf("direct = %q", direct)
	}
	if string(notified) != "x!" {
		t.Fatalf("notified = %q", notified)
	}
}

func TestLargeArgsAndResults(t *testing.T) {
	r := newRig(t, 2)
	big := bytes.Repeat([]byte{0xEE}, 200<<10)
	r.peers[1].Register("sum", func(_ packet.NodeID, args []byte) []byte {
		var s byte
		for _, b := range args {
			s += b
		}
		return bytes.Repeat([]byte{s}, 100<<10)
	})
	var res []byte
	r.peers[0].Call(1, "sum", big, func(out []byte, err error) {
		if err != nil {
			t.Error(err)
		}
		res = out
	})
	r.cl.Eng.Run()
	if len(res) != 100<<10 {
		t.Fatalf("result size = %d", len(res))
	}
	// 200 KiB args exceed the MX rendezvous threshold.
	if r.cl.Stats.CounterValue("core.rdv_started") == 0 {
		t.Fatal("large args did not use rendezvous")
	}
}

func TestRegisterValidation(t *testing.T) {
	r := newRig(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("nil handler accepted")
		}
	}()
	r.peers[0].Register("x", nil)
}
