// Package minidsm is a page-based distributed-shared-memory middleware —
// the third middleware substrate of the reproduction. It generates the mix
// the paper's scheduler is designed around: bulk page transfers over the
// put/get (RMA) class plus small invalidation/notice messages over the
// control class, all multiplexed with whatever else the node is sending.
//
// Design: home-based pages with read caching and write invalidation.
// Every page has a home node (round-robin by page id). Reads fetch the
// page from its home with an RMA get and cache it, registering as a sharer
// with the home; writes go to the home with an RMA put, and the home then
// sends invalidations to all other sharers. Consistency is deliberately
// weak (a write completes when the home acknowledges the put; invalidations
// propagate asynchronously) — matching the DSM systems of the paper's era
// rather than providing sequential consistency.
package minidsm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"newmad/internal/mad"
	"newmad/internal/packet"
)

// windowID is the RMA window each node exposes its homed pages through.
const windowID int32 = 0x05111

// control message opcodes (first byte of the control fragment).
const (
	opReadNotice  = 1 // payload: page(8) — "I now cache this page"
	opWriteNotice = 2 // payload: page(8) — "I wrote this page, invalidate sharers"
	opInvalidate  = 3 // payload: page(8) — "drop your copy"
)

// DSM is one node's endpoint of the shared memory space.
type DSM struct {
	session *mad.Session
	ctrl    *mad.Channel
	nodes   int
	pages   int
	pageSz  int

	mu     sync.Mutex
	window []byte            // backing store for pages homed here
	homed  map[int]int       // page -> offset into window
	cache  map[int][]byte    // read cache of remote pages
	share  map[int]sharerSet // for homed pages: nodes caching them
	// counters for tests and experiments
	invalidationsSent uint64
	invalidationsRcvd uint64
	cacheHits         uint64
	cacheMisses       uint64
}

type sharerSet map[packet.NodeID]bool

// New creates the endpoint for a space of pages×pageSize bytes shared by
// the given number of nodes. Page p is homed on node p mod nodes. All
// nodes must construct their DSM with identical geometry.
func New(session *mad.Session, nodes, pages, pageSize int) (*DSM, error) {
	if nodes < 2 || pages < 1 || pageSize < 1 {
		return nil, fmt.Errorf("minidsm: bad geometry nodes=%d pages=%d pageSize=%d", nodes, pages, pageSize)
	}
	d := &DSM{
		session: session,
		ctrl:    session.Channel("minidsm.ctrl"),
		nodes:   nodes,
		pages:   pages,
		pageSz:  pageSize,
		homed:   make(map[int]int),
		cache:   make(map[int][]byte),
		share:   make(map[int]sharerSet),
	}
	self := int(session.Node())
	count := 0
	for p := 0; p < pages; p++ {
		if p%nodes == self {
			d.homed[p] = count * pageSize
			d.share[p] = make(sharerSet)
			count++
		}
	}
	d.window = make([]byte, count*pageSize)
	session.Engine().RegisterWindow(windowID, d.window)
	d.ctrl.OnMessage(d.onControl)
	return d, nil
}

// home returns the home node of page p.
func (d *DSM) home(p int) packet.NodeID { return packet.NodeID(p % d.nodes) }

// PageSize returns the page granularity.
func (d *DSM) PageSize() int { return d.pageSz }

// Stats returns (invalidations sent, received, cache hits, misses).
func (d *DSM) Stats() (invSent, invRcvd, hits, misses uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.invalidationsSent, d.invalidationsRcvd, d.cacheHits, d.cacheMisses
}

// Read obtains the current contents of page p; done receives a snapshot
// (caller may retain it). Cached pages return synchronously.
func (d *DSM) Read(p int, done func(data []byte)) error {
	if err := d.checkPage(p); err != nil {
		return err
	}
	if done == nil {
		return fmt.Errorf("minidsm: Read requires a callback")
	}
	d.mu.Lock()
	if off, ok := d.homed[p]; ok {
		// Local home: serve directly.
		snap := append([]byte(nil), d.window[off:off+d.pageSz]...)
		d.cacheHits++
		d.mu.Unlock()
		done(snap)
		return nil
	}
	if data, ok := d.cache[p]; ok {
		snap := append([]byte(nil), data...)
		d.cacheHits++
		d.mu.Unlock()
		done(snap)
		return nil
	}
	d.cacheMisses++
	d.mu.Unlock()

	home := d.home(p)
	off := int64(d.remoteOffset(p))
	// Register as sharer first (control class), then fetch the page.
	d.sendCtrl(home, opReadNotice, p)
	return d.session.Engine().Get(home, windowID, off, d.pageSz, func(data []byte) {
		d.mu.Lock()
		d.cache[p] = append([]byte(nil), data...)
		d.mu.Unlock()
		done(append([]byte(nil), data...))
	})
}

// Write stores data into page p at offset off; done fires when the home
// has acknowledged the write. The writer's own cache is updated in place;
// other sharers receive invalidations.
func (d *DSM) Write(p int, off int, data []byte, done func()) error {
	if err := d.checkPage(p); err != nil {
		return err
	}
	if off < 0 || off+len(data) > d.pageSz {
		return fmt.Errorf("minidsm: write [%d,%d) outside page of %d bytes", off, off+len(data), d.pageSz)
	}
	d.mu.Lock()
	if winOff, ok := d.homed[p]; ok {
		// Local home: write through and invalidate sharers directly.
		copy(d.window[winOff+off:], data)
		sharers := d.sharersLocked(p, d.session.Node())
		d.mu.Unlock()
		d.invalidate(p, sharers)
		if done != nil {
			done()
		}
		return nil
	}
	// Update own cached copy if present.
	if cached, ok := d.cache[p]; ok {
		copy(cached[off:], data)
	}
	d.mu.Unlock()

	home := d.home(p)
	base := int64(d.remoteOffset(p))
	return d.session.Engine().Put(home, windowID, base+int64(off), data, func() {
		// Home has the bytes; now ask it to invalidate other sharers.
		d.sendCtrl(home, opWriteNotice, p)
		if done != nil {
			done()
		}
	})
}

// remoteOffset computes the offset of page p inside its home's window:
// the index of p among the pages homed on that node, times the page size.
func (d *DSM) remoteOffset(p int) int {
	return (p / d.nodes) * d.pageSz
}

func (d *DSM) checkPage(p int) error {
	if p < 0 || p >= d.pages {
		return fmt.Errorf("minidsm: page %d outside [0,%d)", p, d.pages)
	}
	return nil
}

// sendCtrl emits a one-fragment control message about page p.
func (d *DSM) sendCtrl(dst packet.NodeID, op byte, page int) {
	var buf [9]byte
	buf[0] = op
	binary.BigEndian.PutUint64(buf[1:], uint64(page))
	conn := d.ctrl.Connect(dst)
	m := conn.BeginPacking()
	m.PackClass(buf[:], mad.SendSafer, mad.RecvExpress, packet.ClassControl)
	m.EndPacking()
}

// sharersLocked snapshots the sharers of a homed page, excluding one node.
// The result is sorted: map iteration order must not leak into the message
// schedule, or simulation runs stop being reproducible.
func (d *DSM) sharersLocked(p int, except packet.NodeID) []packet.NodeID {
	var out []packet.NodeID
	for n := range d.share[p] {
		if n != except {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// invalidate sends an invalidation to each sharer and forgets them.
func (d *DSM) invalidate(p int, sharers []packet.NodeID) {
	for _, n := range sharers {
		d.sendCtrl(n, opInvalidate, p)
		d.mu.Lock()
		d.invalidationsSent++
		delete(d.share[p], n)
		d.mu.Unlock()
	}
}

func (d *DSM) onControl(src packet.NodeID, msg *mad.Incoming) {
	if len(msg.Fragments) != 1 || len(msg.Fragments[0]) != 9 {
		panic(fmt.Sprintf("minidsm: malformed control message from %d", src))
	}
	op := msg.Fragments[0][0]
	page := int(binary.BigEndian.Uint64(msg.Fragments[0][1:]))
	switch op {
	case opReadNotice:
		d.mu.Lock()
		set, ok := d.share[page]
		if !ok {
			d.mu.Unlock()
			panic(fmt.Sprintf("minidsm: read notice for page %d not homed here", page))
		}
		set[src] = true
		d.mu.Unlock()
	case opWriteNotice:
		d.mu.Lock()
		if _, ok := d.share[page]; !ok {
			d.mu.Unlock()
			panic(fmt.Sprintf("minidsm: write notice for page %d not homed here", page))
		}
		sharers := d.sharersLocked(page, src)
		d.mu.Unlock()
		d.invalidate(page, sharers)
	case opInvalidate:
		d.mu.Lock()
		delete(d.cache, page)
		d.invalidationsRcvd++
		d.mu.Unlock()
	default:
		panic(fmt.Sprintf("minidsm: unknown control op %d", op))
	}
}
