package minidsm

import (
	"bytes"
	"testing"

	"newmad/internal/caps"
	"newmad/internal/core"
	"newmad/internal/drivers"
	"newmad/internal/mad"
	"newmad/internal/packet"
	"newmad/internal/proto"
	"newmad/internal/strategy"
)

type rig struct {
	cl   *drivers.Cluster
	dsms []*DSM
}

func newRig(t *testing.T, nodes, pages, pageSize int) *rig {
	t.Helper()
	cl, err := drivers.NewCluster(nodes, caps.MX)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{cl: cl}
	for i := 0; i < nodes; i++ {
		node := packet.NodeID(i)
		b, err := strategy.New("aggregate")
		if err != nil {
			t.Fatal(err)
		}
		s, err := mad.Bind(node, func(deliver proto.DeliverFunc) (*core.Engine, error) {
			return core.New(node, core.Options{
				Bundle:  b,
				Runtime: cl.Eng,
				Rails:   []drivers.Driver{cl.Driver(node, "mx")},
				Deliver: deliver,
				Stats:   cl.Stats,
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		d, err := New(s, nodes, pages, pageSize)
		if err != nil {
			t.Fatal(err)
		}
		r.dsms = append(r.dsms, d)
	}
	return r
}

func TestGeometryValidation(t *testing.T) {
	r := newRig(t, 2, 4, 256)
	if _, err := New(r.dsms[0].session, 1, 4, 256); err == nil {
		t.Fatal("single-node DSM accepted")
	}
	if _, err := New(r.dsms[0].session, 2, 0, 256); err == nil {
		t.Fatal("zero pages accepted")
	}
	if r.dsms[0].PageSize() != 256 {
		t.Fatal("page size accessor")
	}
	if err := r.dsms[0].Read(99, func([]byte) {}); err == nil {
		t.Fatal("out-of-range page accepted")
	}
	if err := r.dsms[0].Write(0, 200, make([]byte, 100), nil); err == nil {
		t.Fatal("out-of-page write accepted")
	}
	if err := r.dsms[0].Read(0, nil); err == nil {
		t.Fatal("nil read callback accepted")
	}
}

func TestLocalHomeReadWrite(t *testing.T) {
	r := newRig(t, 2, 4, 128)
	// Page 0 homes on node 0.
	done := false
	if err := r.dsms[0].Write(0, 5, []byte("local"), func() { done = true }); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("local write should complete synchronously")
	}
	var got []byte
	if err := r.dsms[0].Read(0, func(d []byte) { got = d }); err != nil {
		t.Fatal(err)
	}
	if string(got[5:10]) != "local" {
		t.Fatalf("read back %q", got[5:10])
	}
}

func TestRemoteReadWriteRoundTrip(t *testing.T) {
	r := newRig(t, 2, 4, 128)
	// Page 1 homes on node 1; node 0 writes then reads.
	wrote := false
	if err := r.dsms[0].Write(1, 0, []byte("remote-data"), func() { wrote = true }); err != nil {
		t.Fatal(err)
	}
	r.cl.Eng.Run()
	if !wrote {
		t.Fatal("remote write never acknowledged")
	}
	var got []byte
	if err := r.dsms[0].Read(1, func(d []byte) { got = d }); err != nil {
		t.Fatal(err)
	}
	r.cl.Eng.Run()
	if got == nil || string(got[:11]) != "remote-data" {
		t.Fatalf("read = %q", got)
	}
	// Second read hits the cache synchronously.
	var second []byte
	if err := r.dsms[0].Read(1, func(d []byte) { second = d }); err != nil {
		t.Fatal(err)
	}
	if second == nil {
		t.Fatal("cached read was not synchronous")
	}
	_, _, hits, misses := r.dsms[0].Stats()
	if hits < 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestInvalidationProtocol(t *testing.T) {
	r := newRig(t, 3, 6, 64)
	// Page 2 homes on node 2. Nodes 0 and 1 both read (becoming sharers).
	for n := 0; n < 2; n++ {
		if err := r.dsms[n].Read(2, func([]byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	r.cl.Eng.Run()

	// Node 0 writes the page: node 1's copy must be invalidated.
	if err := r.dsms[0].Write(2, 0, []byte("new!"), nil); err != nil {
		t.Fatal(err)
	}
	r.cl.Eng.Run()

	invSent, _, _, _ := r.dsms[2].Stats()
	if invSent == 0 {
		t.Fatal("home sent no invalidations")
	}
	_, invRcvd, _, _ := r.dsms[1].Stats()
	if invRcvd == 0 {
		t.Fatal("sharer received no invalidation")
	}

	// Node 1 re-reads: must miss the cache and see the new data.
	var got []byte
	if err := r.dsms[1].Read(2, func(d []byte) { got = d }); err != nil {
		t.Fatal(err)
	}
	r.cl.Eng.Run()
	if got == nil || string(got[:4]) != "new!" {
		t.Fatalf("stale read after invalidation: %q", got)
	}
}

func TestWriterCacheUpdatedInPlace(t *testing.T) {
	r := newRig(t, 2, 4, 64)
	// Node 0 caches page 1, then writes it: its own copy updates without
	// an invalidation round trip.
	if err := r.dsms[0].Read(1, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	r.cl.Eng.Run()
	if err := r.dsms[0].Write(1, 0, []byte("self"), nil); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if err := r.dsms[0].Read(1, func(d []byte) { got = d }); err != nil {
		t.Fatal(err)
	}
	if got == nil || string(got[:4]) != "self" {
		t.Fatalf("writer's own cache stale: %q", got)
	}
}

func TestManyPagesRoundRobinHoming(t *testing.T) {
	const nodes, pages, psz = 3, 9, 32
	r := newRig(t, nodes, pages, psz)
	// Write a distinct pattern into every page from node 0; read each
	// back from node 1 and verify.
	for p := 0; p < pages; p++ {
		pattern := bytes.Repeat([]byte{byte(p + 1)}, 8)
		if err := r.dsms[0].Write(p, 0, pattern, nil); err != nil {
			t.Fatal(err)
		}
	}
	r.cl.Eng.Run()
	got := make([][]byte, pages)
	for p := 0; p < pages; p++ {
		p := p
		if err := r.dsms[1].Read(p, func(d []byte) { got[p] = d }); err != nil {
			t.Fatal(err)
		}
	}
	r.cl.Eng.Run()
	for p := 0; p < pages; p++ {
		want := byte(p + 1)
		if got[p] == nil || got[p][0] != want || got[p][7] != want {
			t.Fatalf("page %d = %v, want pattern %d", p, got[p][:8], want)
		}
	}
}

func TestDSMTrafficMixesClasses(t *testing.T) {
	// DSM activity must generate both RMA traffic and control traffic —
	// the heterogeneous mix the traffic-class experiments rely on.
	r := newRig(t, 2, 4, 4096)
	for i := 0; i < 4; i++ {
		if err := r.dsms[0].Write(1, 0, bytes.Repeat([]byte{1}, 4096), nil); err != nil {
			t.Fatal(err)
		}
		if err := r.dsms[1].Read(0, func([]byte) {}); err != nil {
			t.Fatal(err)
		}
	}
	r.cl.Eng.Run()
	if r.cl.Stats.CounterValue("core.rma_puts") == 0 {
		t.Fatal("no RMA puts")
	}
	if r.cl.Stats.CounterValue("core.rma_gets") == 0 {
		t.Fatal("no RMA gets")
	}
	if r.cl.Stats.CounterValue("core.submitted") == 0 {
		t.Fatal("no control messages")
	}
}
