// Package trace is the engine's flight recorder: a bounded ring of typed
// events that reconstructs what the optimizer did and why — which packets
// waited, what each idle upcall pulled, how frames were composed — without
// perturbing the simulation (recording is allocation-light and reading is
// offline).
//
// A Recorder is optional: engines run with a nil recorder by default, and
// every Record call on a nil recorder is a no-op, so tracing costs nothing
// unless requested (madsim -trace, tests, debugging sessions).
package trace

import (
	"fmt"
	"strings"
	"sync"

	"newmad/internal/packet"
	"newmad/internal/simnet"
)

// Kind classifies events.
type Kind uint8

// Event kinds, in rough lifecycle order of a packet.
const (
	// KindSubmit: a packet entered the waiting list.
	KindSubmit Kind = iota
	// KindNagleArm: a submission armed the artificial delay.
	KindNagleArm
	// KindNagleFire: the delay expired and triggered a pump.
	KindNagleFire
	// KindIdle: a send channel became idle (the optimizer trigger).
	KindIdle
	// KindPlan: the strategy composed a frame from the backlog.
	KindPlan
	// KindPost: a frame was handed to a driver channel.
	KindPost
	// KindRecv: a frame arrived from the fabric.
	KindRecv
	// KindDeliver: a packet was delivered in order to the upper layer.
	KindDeliver
	// KindRdv: a rendezvous protocol step (start/grant).
	KindRdv
	// KindPolicy: the strategy bundle was switched at runtime.
	KindPolicy
	// KindFault: a failure event — a peer went down, frames were reclaimed
	// from a dead connection, a rendezvous timed out and retried, or the
	// chaos layer injected a fault.
	KindFault
	kindMax
)

// String returns the event mnemonic.
func (k Kind) String() string {
	names := [...]string{"SUBMIT", "NAGLE+", "NAGLE!", "IDLE", "PLAN", "POST", "RECV", "DELIVER", "RDV", "POLICY", "FAULT"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded occurrence.
type Event struct {
	At   simnet.Time
	Kind Kind
	Node packet.NodeID
	// Flow/Seq identify the subject packet when applicable.
	Flow packet.FlowID
	Seq  int
	// A and B carry kind-specific integers (rail/channel, frame sizes,
	// packet counts, budgets) as documented per recording site.
	A, B int
	// Note is a short free-form annotation.
	Note string
}

// String renders one line of trace.
func (e Event) String() string {
	subject := ""
	if e.Flow != 0 || e.Seq != 0 {
		subject = fmt.Sprintf(" f%d/#%d", e.Flow, e.Seq)
	}
	note := ""
	if e.Note != "" {
		note = " " + e.Note
	}
	return fmt.Sprintf("%12v n%d %-8s%s a=%d b=%d%s", e.At, e.Node, e.Kind, subject, e.A, e.B, note)
}

// Recorder is a fixed-capacity ring of events. The zero value is unusable;
// create with New. All methods are safe for concurrent use (the loopback
// driver records from several goroutines). A nil *Recorder ignores all
// calls.
type Recorder struct {
	mu    sync.Mutex
	buf   []Event
	next  uint64 // total events ever recorded
	onrec func(Event)
}

// New returns a recorder keeping the last capacity events (min 16).
func New(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	return &Recorder{buf: make([]Event, 0, capacity)}
}

// Record appends an event, evicting the oldest beyond capacity.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next%uint64(cap(r.buf))] = e
	}
	r.next++
	cb := r.onrec
	r.mu.Unlock()
	if cb != nil {
		cb(e)
	}
}

// OnRecord installs a live tap (e.g. streaming trace printing). Pass nil
// to remove it.
func (r *Recorder) OnRecord(fn func(Event)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.onrec = fn
	r.mu.Unlock()
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns the number of events ever recorded (including evicted).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Events returns the retained events oldest-first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	c := uint64(cap(r.buf))
	start := r.next % c
	for i := uint64(0); i < c; i++ {
		out = append(out, r.buf[(start+i)%c])
	}
	return out
}

// KindMask is a set of event kinds packed into one word (kindMax ≤ 64).
type KindMask uint64

// MaskOf builds the mask selecting exactly the given kinds.
func MaskOf(kinds ...Kind) KindMask {
	var m KindMask
	for _, k := range kinds {
		if k < kindMax {
			m |= 1 << k
		}
	}
	return m
}

// Has reports whether the mask selects k.
func (m KindMask) Has(k Kind) bool { return m&(1<<k) != 0 }

// Filter returns retained events of the given kinds (all when empty),
// oldest-first. The kind set is a bitmask, not a map: Filter runs inside
// assertion loops over large testnet traces, where a per-call map
// allocation is pure overhead.
func (r *Recorder) Filter(kinds ...Kind) []Event {
	want := MaskOf(kinds...)
	var out []Event
	for _, e := range r.Events() {
		if want == 0 || want.Has(e.Kind) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the retained events as a timeline.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary tallies retained events per kind.
func (r *Recorder) Summary() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}
