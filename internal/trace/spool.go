package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The flight-recorder spool: the in-memory ring keeps the last capacity
// events, the spool persists them as JSONL so a post-mortem survives the
// process. Two sinks share the format:
//
//   - Spool streams every recorded event to a bounded, rotating file pair
//     (attach one to a Recorder via OnRecord for an always-on disk tail);
//   - DumpAnomaly writes the current ring contents of a set of recorders
//     in one shot — the "something just went wrong, freeze the evidence"
//     path used by the testnet ledger and the chaos soaks.

// spoolRecord is the stable JSONL schema of one event. Kind travels as
// its mnemonic so dumps grep well; the numeric fields are the Event's,
// widened to fixed-size integers.
type spoolRecord struct {
	At   int64  `json:"at"`
	Kind string `json:"kind"`
	Node int32  `json:"node"`
	Flow int32  `json:"flow,omitempty"`
	Seq  int    `json:"seq,omitempty"`
	A    int    `json:"a,omitempty"`
	B    int    `json:"b,omitempty"`
	Note string `json:"note,omitempty"`
}

func recordOf(e Event) spoolRecord {
	return spoolRecord{
		At:   int64(e.At),
		Kind: e.Kind.String(),
		Node: int32(e.Node),
		Flow: int32(e.Flow),
		Seq:  e.Seq,
		A:    e.A,
		B:    e.B,
		Note: e.Note,
	}
}

// Spool is a bounded, rotating JSONL event sink. It keeps at most two
// generations on disk — <name>.jsonl (current) and <name>.1.jsonl
// (previous) — rotating when the current file passes maxBytes, so the
// disk footprint is bounded by ~2×maxBytes regardless of run length.
// Write is safe for concurrent use.
type Spool struct {
	mu      sync.Mutex
	path    string // current file
	prev    string // rotated-out file
	max     int64
	f       *os.File
	written int64
	dropped uint64
}

// DefaultSpoolBytes bounds one spool generation when NewSpool is given a
// non-positive limit.
const DefaultSpoolBytes = 4 << 20

// NewSpool creates (or truncates) dir/<name>.jsonl and returns the sink.
// maxBytes ≤ 0 uses DefaultSpoolBytes.
func NewSpool(dir, name string, maxBytes int64) (*Spool, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultSpoolBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: spool dir: %w", err)
	}
	path := filepath.Join(dir, name+".jsonl")
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: spool: %w", err)
	}
	return &Spool{
		path: path,
		prev: filepath.Join(dir, name+".1.jsonl"),
		max:  maxBytes,
		f:    f,
	}, nil
}

// Write appends one event. Errors are absorbed into a drop counter — the
// spool rides the datapath's OnRecord tap, which must never propagate a
// disk failure into the engine.
func (s *Spool) Write(e Event) {
	if s == nil {
		return
	}
	buf, err := json.Marshal(recordOf(e))
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		s.dropped++
		return
	}
	if s.written+int64(len(buf)) > s.max {
		if err := s.rotateLocked(); err != nil {
			s.dropped++
			return
		}
	}
	n, err := s.f.Write(buf)
	s.written += int64(n)
	if err != nil {
		s.dropped++
	}
}

// rotateLocked moves the current generation to .1 and starts a fresh one.
func (s *Spool) rotateLocked() error {
	s.f.Close()
	s.f = nil
	if err := os.Rename(s.path, s.prev); err != nil {
		return err
	}
	f, err := os.Create(s.path)
	if err != nil {
		return err
	}
	s.f = f
	s.written = 0
	return nil
}

// Attach installs the spool as r's OnRecord tap. One spool per recorder:
// this replaces any previous tap.
func (s *Spool) Attach(r *Recorder) { r.OnRecord(s.Write) }

// Dropped returns how many events failed to reach disk.
func (s *Spool) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Path returns the current generation's file path.
func (s *Spool) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// Close flushes and closes the current generation.
func (s *Spool) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// DumpAnomaly freezes the evidence after a correctness anomaly (a lost,
// duplicated or misrouted packet): for each involved node it writes the
// last lastN ring events of that node's recorder as JSONL under a fresh
// directory dir/<reason>-XXXX/node-<id>.jsonl, and returns the directory.
// lastN ≤ 0 dumps each full ring. Nodes with a nil recorder are skipped.
// The directory name is uniqued by os.MkdirTemp, so repeated anomalies in
// one run never overwrite each other.
func DumpAnomaly(dir, reason string, nodes map[int]*Recorder, lastN int) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("trace: anomaly dir: %w", err)
	}
	out, err := os.MkdirTemp(dir, sanitize(reason)+"-")
	if err != nil {
		return "", fmt.Errorf("trace: anomaly dir: %w", err)
	}
	for id, r := range nodes {
		if r == nil {
			continue
		}
		evs := r.Events()
		if lastN > 0 && len(evs) > lastN {
			evs = evs[len(evs)-lastN:]
		}
		var buf []byte
		for _, e := range evs {
			line, err := json.Marshal(recordOf(e))
			if err != nil {
				continue
			}
			buf = append(buf, line...)
			buf = append(buf, '\n')
		}
		name := filepath.Join(out, fmt.Sprintf("node-%d.jsonl", id))
		if err := os.WriteFile(name, buf, 0o644); err != nil {
			return out, fmt.Errorf("trace: anomaly dump %s: %w", name, err)
		}
	}
	return out, nil
}

// sanitize keeps the reason filesystem-safe.
func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "anomaly"
	}
	return string(out)
}
