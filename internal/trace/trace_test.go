package trace

import (
	"strings"
	"sync"
	"testing"

	"newmad/internal/packet"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindSubmit}) // must not panic
	r.OnRecord(func(Event) {})
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("nil recorder reports events")
	}
	if r.Events() != nil {
		t.Fatal("nil recorder returns events")
	}
}

func TestRecordAndRead(t *testing.T) {
	r := New(64)
	for i := 0; i < 5; i++ {
		r.Record(Event{At: 100, Kind: KindSubmit, Node: 1, Flow: packet.FlowID(i), Seq: i})
	}
	if r.Len() != 5 || r.Total() != 5 {
		t.Fatalf("len=%d total=%d", r.Len(), r.Total())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.Seq != i {
			t.Fatalf("events out of order: %v", evs)
		}
	}
}

func TestRingEviction(t *testing.T) {
	r := New(16)
	for i := 0; i < 40; i++ {
		r.Record(Event{Seq: i})
	}
	if r.Len() != 16 {
		t.Fatalf("len = %d, want 16", r.Len())
	}
	if r.Total() != 40 {
		t.Fatalf("total = %d", r.Total())
	}
	evs := r.Events()
	if evs[0].Seq != 24 || evs[15].Seq != 39 {
		t.Fatalf("ring kept wrong window: first=%d last=%d", evs[0].Seq, evs[15].Seq)
	}
}

func TestMinimumCapacityClamped(t *testing.T) {
	r := New(1)
	for i := 0; i < 20; i++ {
		r.Record(Event{Seq: i})
	}
	if r.Len() != 16 {
		t.Fatalf("len = %d, want clamped 16", r.Len())
	}
}

func TestFilterAndSummary(t *testing.T) {
	r := New(64)
	r.Record(Event{Kind: KindSubmit})
	r.Record(Event{Kind: KindPlan})
	r.Record(Event{Kind: KindPlan})
	r.Record(Event{Kind: KindPost})
	if got := len(r.Filter(KindPlan)); got != 2 {
		t.Fatalf("filter plan = %d", got)
	}
	if got := len(r.Filter()); got != 4 {
		t.Fatalf("filter all = %d", got)
	}
	s := r.Summary()
	if s[KindPlan] != 2 || s[KindSubmit] != 1 || s[KindPost] != 1 {
		t.Fatalf("summary = %v", s)
	}
}

func TestOnRecordTap(t *testing.T) {
	r := New(16)
	var tapped []Event
	r.OnRecord(func(e Event) { tapped = append(tapped, e) })
	r.Record(Event{Kind: KindIdle})
	r.OnRecord(nil)
	r.Record(Event{Kind: KindIdle})
	if len(tapped) != 1 {
		t.Fatalf("tap saw %d events", len(tapped))
	}
}

func TestDumpAndStrings(t *testing.T) {
	r := New(16)
	r.Record(Event{At: 1500, Kind: KindPlan, Node: 2, Flow: 3, Seq: 4, A: 5, B: 6, Note: "aggregate"})
	out := r.Dump()
	for _, want := range []string{"PLAN", "n2", "f3/#4", "a=5", "b=6", "aggregate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	for k := Kind(0); k < kindMax; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no mnemonic", k)
		}
	}
	if !strings.Contains(Kind(77).String(), "77") {
		t.Fatal("unknown kind string")
	}
}

// TestRingWraparoundOrdering pins Events' oldest-first contract at every
// phase of ring occupancy: partially filled, exactly full, and mid-wrap at
// several offsets — the reconstruction indexes by next%cap, which is easy
// to get off by one.
func TestRingWraparoundOrdering(t *testing.T) {
	const capacity = 16
	for _, total := range []int{1, capacity - 1, capacity, capacity + 1, capacity + 7, 3 * capacity, 3*capacity + 5} {
		r := New(capacity)
		for i := 0; i < total; i++ {
			r.Record(Event{Seq: i})
		}
		evs := r.Events()
		wantLen := total
		if wantLen > capacity {
			wantLen = capacity
		}
		if len(evs) != wantLen {
			t.Fatalf("total=%d: len=%d, want %d", total, len(evs), wantLen)
		}
		first := total - wantLen
		for i, e := range evs {
			if e.Seq != first+i {
				t.Fatalf("total=%d: events[%d].Seq=%d, want %d (window %v)", total, i, e.Seq, first+i, evs)
			}
		}
	}
}

func TestKindMask(t *testing.T) {
	m := MaskOf(KindPlan, KindPost)
	if !m.Has(KindPlan) || !m.Has(KindPost) || m.Has(KindSubmit) {
		t.Fatalf("mask = %b", m)
	}
	if MaskOf() != 0 {
		t.Fatal("empty mask not zero")
	}
	if MaskOf(Kind(200)) != 0 {
		t.Fatal("out-of-range kind set a bit")
	}
	// The satellite's point: building the kind set allocates nothing.
	if n := testing.AllocsPerRun(100, func() { _ = MaskOf(KindPlan, KindRecv, KindFault) }); n != 0 {
		t.Fatalf("MaskOf allocates %v/op", n)
	}
}

// TestConcurrentRecordEventsOnRecord drives Record, Events, Filter and
// OnRecord swaps from separate goroutines; run under -race this is the
// recorder's concurrency contract.
func TestConcurrentRecordEventsOnRecord(t *testing.T) {
	r := New(64)
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 2000; i++ {
				r.Record(Event{Kind: Kind(i % int(kindMax)), Seq: i, Node: packet.NodeID(g)})
			}
		}(g)
	}
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Events()
				_ = r.Filter(KindPlan, KindRecv)
				_ = r.Len()
			}
		}
	}()
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				if i%2 == 0 {
					r.OnRecord(func(Event) {})
				} else {
					r.OnRecord(nil)
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	readers.Wait()
	if r.Total() != 8000 {
		t.Fatalf("total = %d", r.Total())
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(Event{Kind: KindRecv})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 8000 {
		t.Fatalf("total = %d", r.Total())
	}
	if r.Len() != 128 {
		t.Fatalf("len = %d", r.Len())
	}
}
