package trace

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readLines(t *testing.T, path string) []spoolRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	var out []spoolRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec spoolRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out
}

func TestSpoolWritesJSONL(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSpool(dir, "flight", 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Write(Event{At: 42, Kind: KindDeliver, Node: 3, Flow: 7, Seq: 9, A: 128, Note: "x"})
	s.Write(Event{At: 43, Kind: KindFault, Node: 3})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs := readLines(t, s.Path())
	if len(recs) != 2 {
		t.Fatalf("lines = %d", len(recs))
	}
	r0 := recs[0]
	if r0.At != 42 || r0.Kind != "DELIVER" || r0.Node != 3 || r0.Flow != 7 || r0.Seq != 9 || r0.A != 128 || r0.Note != "x" {
		t.Fatalf("record = %+v", r0)
	}
	if recs[1].Kind != "FAULT" {
		t.Fatalf("record 1 = %+v", recs[1])
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
}

func TestSpoolRotationBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	const maxBytes = 512
	s, err := NewSpool(dir, "flight", maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		s.Write(Event{At: 1, Kind: KindRecv, Node: 1, Seq: i, Note: "padpadpadpad"})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	cur, err := os.Stat(filepath.Join(dir, "flight.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	prev, err := os.Stat(filepath.Join(dir, "flight.1.jsonl"))
	if err != nil {
		t.Fatalf("rotation never happened: %v", err)
	}
	if cur.Size() > maxBytes || prev.Size() > maxBytes {
		t.Fatalf("generation exceeds bound: cur=%d prev=%d", cur.Size(), prev.Size())
	}
	// The newest events live in the current generation.
	recs := readLines(t, s.Path())
	if len(recs) == 0 || recs[len(recs)-1].Seq != 199 {
		t.Fatalf("current generation tail = %+v", recs)
	}
}

func TestSpoolAttachTapsRecorder(t *testing.T) {
	dir := t.TempDir()
	s, err := NewSpool(dir, "tap", 0)
	if err != nil {
		t.Fatal(err)
	}
	r := New(16)
	s.Attach(r)
	for i := 0; i < 40; i++ { // beyond ring capacity: the spool keeps them all
		r.Record(Event{Kind: KindPost, Seq: i})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs := readLines(t, s.Path())
	if len(recs) != 40 {
		t.Fatalf("spool lines = %d, want all 40 (ring only keeps 16)", len(recs))
	}
	// Writes after Close are absorbed, not crashed on.
	r.Record(Event{Kind: KindPost})
	if s.Dropped() != 1 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
}

func TestDumpAnomaly(t *testing.T) {
	dir := t.TempDir()
	r1, r2 := New(32), New(32)
	for i := 0; i < 20; i++ {
		r1.Record(Event{Kind: KindSubmit, Node: 1, Seq: i})
	}
	r2.Record(Event{Kind: KindFault, Node: 2, Note: "lost"})
	out, err := DumpAnomaly(dir, "lost/frames", map[int]*Recorder{1: r1, 2: r2, 3: nil}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(filepath.Base(out), "lost_frames-") {
		t.Fatalf("dump dir = %s", out)
	}
	recs1 := readLines(t, filepath.Join(out, "node-1.jsonl"))
	if len(recs1) != 8 || recs1[0].Seq != 12 || recs1[7].Seq != 19 {
		t.Fatalf("node-1 dump = %+v", recs1)
	}
	recs2 := readLines(t, filepath.Join(out, "node-2.jsonl"))
	if len(recs2) != 1 || recs2[0].Note != "lost" {
		t.Fatalf("node-2 dump = %+v", recs2)
	}
	if _, err := os.Stat(filepath.Join(out, "node-3.jsonl")); !os.IsNotExist(err) {
		t.Fatal("nil recorder produced a file")
	}
	// A second anomaly with the same reason lands in a distinct directory.
	out2, err := DumpAnomaly(dir, "lost/frames", map[int]*Recorder{2: r2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out2 == out {
		t.Fatal("anomaly dirs collide")
	}
}
