// Package caps defines the driver capability records that parameterize the
// newmad optimization engine, together with a database of predefined
// profiles for the network technologies the paper discusses (Myrinet/MX,
// Quadrics/Elan, InfiniBand) and two commodity substitutes (TCP/GigE and an
// emulated WAN).
//
// The paper's first design rule is that "all these decisions must be
// consistent with the capabilities of the underlying network drivers": a
// strategy may only plan a gather-send if the driver supports enough iovec
// entries, may only choose PIO below the PIO size limit, and so on. Every
// such decision point in internal/strategy reads from a Caps value, never
// from technology-specific code.
package caps

import (
	"fmt"
	"sort"

	"newmad/internal/simnet"
)

// Caps describes what one network driver/NIC pair can do and what it costs.
// All durations are virtual time.
type Caps struct {
	// Name identifies the profile ("mx", "elan", ...).
	Name string

	// --- Per-request overheads -------------------------------------------

	// PostOverhead is the host-side cost of posting any send request to the
	// NIC (doorbell write, descriptor build). This is the α that
	// aggregation amortizes.
	PostOverhead simnet.Duration
	// WireLatency is the one-way propagation + switching latency.
	WireLatency simnet.Duration
	// RecvOverhead is the receiver-side per-packet cost (demux, completion).
	RecvOverhead simnet.Duration
	// PacketHeader is the on-wire framing overhead in bytes added to every
	// network transaction (not to every aggregated sub-packet; sub-packet
	// framing is the optimizer's own wire format and accounted separately).
	PacketHeader int

	// --- Bandwidths --------------------------------------------------------

	// Bandwidth is the link serialization rate in bytes/second.
	Bandwidth float64

	// --- Transfer modes ----------------------------------------------------

	// PIOMax is the largest payload the driver will send by programmed I/O.
	// PIO has no DMA setup cost but occupies the host CPU; the model charges
	// PIOCostPerByte on the host side instead of DMA setup.
	PIOMax         int
	PIOCostPerByte simnet.Duration
	// DMASetup is the fixed cost of programming a DMA descriptor; DMA
	// requires registered (pinned) memory.
	DMASetup simnet.Duration

	// --- Aggregation-relevant limits --------------------------------------

	// MaxIOV is the number of gather entries one send can carry; 1 means no
	// gather/scatter, so aggregation must stage through a copy.
	MaxIOV int
	// MaxAggregate is the largest frame the driver accepts for an eager /
	// aggregated send; larger messages must use rendezvous.
	MaxAggregate int
	// MTU is the wire maximum transfer unit; frames beyond it are segmented
	// by the link layer (cost modeled per segment by nicsim).
	MTU int

	// --- Protocols ---------------------------------------------------------

	// RndvThreshold is the payload size above which the driver's native
	// rendezvous protocol beats eager+copy (profile default; strategies may
	// override per the rndvswitch ablation).
	RndvThreshold int
	// RDMA reports whether the NIC supports true remote put/get (Elan, IB).
	RDMA bool
	// RDMASetup is the cost of initiating an RDMA operation when RDMA is
	// true.
	RDMASetup simnet.Duration

	// --- Multiplexing ------------------------------------------------------

	// Channels is the number of independent virtualized send units the NIC
	// exposes (the "network multiplexing units" the paper pools together).
	Channels int

	// --- Wire emulation ----------------------------------------------------

	// EmulateWire asks real-socket drivers to enforce this record's wire
	// model: each posted frame occupies its send unit for
	// (size+PacketHeader)/Bandwidth of wall-clock time, shared across the
	// rail like a NIC's serialization pipe. A plain TCP rail then
	// reproduces the bandwidth class of the technology it stands in for,
	// which is what makes heterogeneous multi-rail scenarios expressible
	// on localhost sockets (exp X4). Profiles without the flag run at host
	// speed; simulated drivers ignore it (they always model the wire).
	EmulateWire bool
}

// Validate reports the first inconsistency in the capability record.
func (c Caps) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("caps: empty profile name")
	case c.Bandwidth <= 0:
		return fmt.Errorf("caps %s: bandwidth must be positive", c.Name)
	case c.PostOverhead < 0 || c.WireLatency < 0 || c.RecvOverhead < 0:
		return fmt.Errorf("caps %s: negative overhead", c.Name)
	case c.MaxIOV < 1:
		return fmt.Errorf("caps %s: MaxIOV must be >= 1", c.Name)
	case c.MaxAggregate < 1:
		return fmt.Errorf("caps %s: MaxAggregate must be >= 1", c.Name)
	case c.MTU < 64:
		return fmt.Errorf("caps %s: MTU %d unreasonably small", c.Name, c.MTU)
	case c.Channels < 1:
		return fmt.Errorf("caps %s: need at least one channel", c.Name)
	case c.PIOMax < 0:
		return fmt.Errorf("caps %s: negative PIOMax", c.Name)
	case c.RndvThreshold < 0:
		return fmt.Errorf("caps %s: negative RndvThreshold", c.Name)
	case c.RDMA && c.RDMASetup <= 0:
		return fmt.Errorf("caps %s: RDMA advertised without RDMASetup cost", c.Name)
	}
	return nil
}

// Gather reports whether the driver can gather multiple iovecs in hardware.
func (c Caps) Gather() bool { return c.MaxIOV > 1 }

// SendCost estimates the host+wire time for one network transaction of n
// payload bytes (excluding queuing). It is the cost model strategies use to
// score candidate plans; nicsim charges the same formula, so plan scores and
// simulated outcomes agree by construction.
func (c Caps) SendCost(n int) simnet.Duration {
	total := n + c.PacketHeader
	d := c.PostOverhead
	if n <= c.PIOMax {
		d += simnet.Duration(n) * c.PIOCostPerByte
	} else {
		d += c.DMASetup
	}
	d += simnet.BandwidthTime(total, c.Bandwidth)
	d += c.WireLatency + c.RecvOverhead
	return d
}

// Rail derives the capability record for rail k of a multi-rail node: the
// same limits and costs under a distinct name ("tcp.r0", "tcp.r1", ...), so
// several rails built from one base profile stay individually addressable —
// drivers require distinct rail names and per-rail statistics are keyed by
// profile name.
func (c Caps) Rail(k int) Caps {
	c.Name = fmt.Sprintf("%s.r%d", c.Name, k)
	return c
}

// RailProfiles derives n uniquely named per-rail variants of base — the
// homogeneous multi-rail case (n identical NICs). Heterogeneous nodes build
// their profile list by hand from distinct base profiles instead.
func RailProfiles(base Caps, n int) []Caps {
	out := make([]Caps, n)
	for i := range out {
		out[i] = base.Rail(i)
	}
	return out
}

// String renders a single-line summary.
func (c Caps) String() string {
	return fmt.Sprintf("%s: α=%v wire=%v bw=%.0fMB/s pio<=%dB iov=%d agg<=%dB rndv>%dB rdma=%v ch=%d",
		c.Name, c.PostOverhead, c.WireLatency, c.Bandwidth/1e6, c.PIOMax,
		c.MaxIOV, c.MaxAggregate, c.RndvThreshold, c.RDMA, c.Channels)
}

// Predefined profiles. Numbers are representative of published 2006-era
// microbenchmarks (MX over Myrinet-2000, QsNetII Elan4, Mellanox IB SDR,
// GigE TCP); the reproduction depends on their relative shape, not their
// absolute values.
var (
	// MX models Myrinet-2000 with the MX driver: ~3 µs short-message
	// latency, 250 MB/s, rich gather support, 32 KiB eager limit.
	MX = Caps{
		Name:           "mx",
		PostOverhead:   900 * simnet.Nanosecond,
		WireLatency:    1700 * simnet.Nanosecond,
		RecvOverhead:   500 * simnet.Nanosecond,
		PacketHeader:   16,
		Bandwidth:      250e6,
		PIOMax:         128,
		PIOCostPerByte: 2 * simnet.Nanosecond,
		DMASetup:       600 * simnet.Nanosecond,
		MaxIOV:         16,
		MaxAggregate:   32 * 1024,
		MTU:            4096,
		RndvThreshold:  32 * 1024,
		RDMA:           false,
		Channels:       4,
	}

	// Elan models Quadrics QsNetII Elan4: ~1.5 µs latency, 900 MB/s, large
	// PIO window, true RDMA, but no gather on DMA sends (aggregation must
	// copy through a staging buffer).
	Elan = Caps{
		Name:           "elan",
		PostOverhead:   400 * simnet.Nanosecond,
		WireLatency:    800 * simnet.Nanosecond,
		RecvOverhead:   300 * simnet.Nanosecond,
		PacketHeader:   8,
		Bandwidth:      900e6,
		PIOMax:         2048,
		PIOCostPerByte: 1 * simnet.Nanosecond,
		DMASetup:       500 * simnet.Nanosecond,
		MaxIOV:         1,
		MaxAggregate:   16 * 1024,
		MTU:            4096,
		RndvThreshold:  16 * 1024,
		RDMA:           true,
		RDMASetup:      700 * simnet.Nanosecond,
		Channels:       4,
	}

	// IB models InfiniBand SDR 4x verbs: ~4 µs latency, ~950 MB/s, 4-entry
	// SGE lists, RDMA.
	IB = Caps{
		Name:           "ib",
		PostOverhead:   1300 * simnet.Nanosecond,
		WireLatency:    2400 * simnet.Nanosecond,
		RecvOverhead:   700 * simnet.Nanosecond,
		PacketHeader:   32,
		Bandwidth:      950e6,
		PIOMax:         0, // verbs has inline sends; modeled via PIOMax=188 in IBInline
		PIOCostPerByte: 0,
		DMASetup:       900 * simnet.Nanosecond,
		MaxIOV:         4,
		MaxAggregate:   8 * 1024,
		MTU:            2048,
		RndvThreshold:  8 * 1024,
		RDMA:           true,
		RDMASetup:      1100 * simnet.Nanosecond,
		Channels:       8,
	}

	// TCP models kernel TCP over gigabit Ethernet on the same 2006 nodes:
	// tens of microseconds of stack latency, 117 MB/s.
	TCP = Caps{
		Name:           "tcp",
		PostOverhead:   9 * simnet.Microsecond,
		WireLatency:    28 * simnet.Microsecond,
		RecvOverhead:   8 * simnet.Microsecond,
		PacketHeader:   66,
		Bandwidth:      117e6,
		PIOMax:         0,
		PIOCostPerByte: 0,
		DMASetup:       2 * simnet.Microsecond,
		MaxIOV:         64, // writev
		MaxAggregate:   64 * 1024,
		MTU:            1500,
		RndvThreshold:  64 * 1024,
		RDMA:           false,
		Channels:       2,
	}

	// WAN models an emulated wide-area path (the calibration note's
	// "emulated WAN"): 5 ms one-way latency, 100 MB/s. Aggregation gains
	// are dramatic here because α (effectively the RTT share) dominates.
	WAN = Caps{
		Name:           "wan",
		PostOverhead:   10 * simnet.Microsecond,
		WireLatency:    5 * simnet.Millisecond,
		RecvOverhead:   10 * simnet.Microsecond,
		PacketHeader:   66,
		Bandwidth:      100e6,
		PIOMax:         0,
		PIOCostPerByte: 0,
		DMASetup:       2 * simnet.Microsecond,
		MaxIOV:         64,
		MaxAggregate:   256 * 1024,
		MTU:            1500,
		RndvThreshold:  256 * 1024,
		RDMA:           false,
		Channels:       2,
	}
)

// registry is the capability database; Register extends it, mirroring the
// paper's "easily extendable database" requirement at the capability level.
var registry = map[string]Caps{}

func init() {
	for _, c := range []Caps{MX, Elan, IB, TCP, WAN} {
		MustRegister(c)
	}
	// IBInline is IB with verbs inline sends enabled (payload copied into
	// the descriptor, skipping one DMA read) — used by the PIO/DMA
	// threshold ablation in E7.
	inline := IB
	inline.Name = "ib-inline"
	inline.PIOMax = 188
	inline.PIOCostPerByte = 1 * simnet.Nanosecond
	MustRegister(inline)
}

// Register adds a profile to the database. Re-registering a name replaces
// the profile (useful in tests); invalid profiles are rejected.
func Register(c Caps) error {
	if err := c.Validate(); err != nil {
		return err
	}
	registry[c.Name] = c
	return nil
}

// MustRegister is Register, panicking on error; for init-time profiles.
func MustRegister(c Caps) {
	if err := Register(c); err != nil {
		panic(err)
	}
}

// Lookup returns the named profile.
func Lookup(name string) (Caps, bool) {
	c, ok := registry[name]
	return c, ok
}

// Names returns the sorted profile names in the database.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
